#!/bin/sh
# check.sh — the repo's fast correctness gate (`make check`).
#
#   gofmt -l .                            formatting drift fails the gate
#   go vet ./...                          static analysis
#   go build ./...                        everything compiles
#   go test ./...                         tier-1 suite
#   go test -race ./internal/harness/... ./internal/core/...
#                                         engine + rig + observer attach
#                                         paths under the race detector
#                                         (the parallel engine's safety
#                                         precondition)
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
    echo "gofmt needed on:" >&2
    echo "$fmt" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test"
go test ./...

echo "== go test -race ./internal/harness/... ./internal/core/..."
go test -race ./internal/harness/... ./internal/core/...

echo "check: ok"
