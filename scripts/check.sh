#!/bin/sh
# check.sh — the repo's fast correctness gate (`make check`).
#
#   gofmt -l .                            formatting drift fails the gate
#   go vet ./...                          static analysis
#   go build ./...                        everything compiles
#   go test ./...                         tier-1 suite
#   go test -race ./internal/harness/... ./internal/core/... ./internal/fleet/...
#                                         engine + rig + observer attach
#                                         + lockstep cluster paths under
#                                         the race detector (the parallel
#                                         engine's safety precondition)
#   go test -cover (floors)               per-package coverage floors on
#                                         the packages where a silent
#                                         regression is most dangerous
#   doclint                               every exported identifier in
#                                         internal/ebpf carries a doc
#                                         comment (scripts/doclint)
#   bench smoke                           the substrate benchmarks that
#                                         scripts/bench.sh records run
#                                         for one iteration each
#   fleet smoke                           the same cluster sweep at
#                                         -parallel 1 and 2 must print
#                                         byte-identical output
#   cardinality smoke                     the quick sketch sweep must
#                                         match its checked-in golden
#                                         rendering byte-for-byte
#   waitstates smoke                      the quick wait-state sweep
#                                         must match its checked-in
#                                         golden rendering byte-for-byte
#   attribution smoke                     the quick fault-attribution
#                                         matrix and autoscale table
#                                         must match their checked-in
#                                         golden renderings
#   examples smoke                        build and run every examples/*
#                                         binary with tiny parameters so
#                                         the documented entry points
#                                         cannot rot
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
    echo "gofmt needed on:" >&2
    echo "$fmt" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== doclint (internal/ebpf)"
# Exported identifiers in the VM package must carry doc comments; the
# two-backend API surface is documented by contract (see
# scripts/doclint).
go run ./scripts/doclint ./internal/ebpf

echo "== go build"
go build ./...

echo "== go test"
go test ./...

echo "== go test -race ./internal/harness/... ./internal/core/... ./internal/fleet/..."
# The race-instrumented harness suite runs ~10x slower than native on a
# single core; give it explicit headroom past go test's 10m default.
go test -race -timeout 20m ./internal/harness/... ./internal/core/... ./internal/fleet/...

echo "== go test -cover (floors)"
# cover_floor <pkg> <floor-pct> fails the gate when the package's
# statement coverage drops below the floor.
cover_floor() {
    pkg=$1
    floor=$2
    line=$(go test -cover "$pkg")
    pct=$(echo "$line" | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p')
    if [ -z "$pct" ]; then
        echo "no coverage reported for $pkg:" >&2
        echo "$line" >&2
        exit 1
    fi
    if [ "$(awk -v p="$pct" -v f="$floor" 'BEGIN { print (p >= f) ? "ok" : "low" }')" != ok ]; then
        echo "coverage for $pkg is ${pct}%, below the ${floor}% floor" >&2
        exit 1
    fi
    echo "$pkg: ${pct}% (floor ${floor}%)"
}
cover_floor ./internal/ebpf 70
cover_floor ./internal/probes 70
cover_floor ./internal/core 70
cover_floor ./internal/faults 70
cover_floor ./internal/stats 70
cover_floor ./internal/trace 70
cover_floor ./internal/telemetry 70
cover_floor ./internal/resilience 70
cover_floor ./internal/fleet 70
cover_floor ./internal/control 70

echo "== bench smoke (substrate benches, 1 iteration)"
# Every microbenchmark scripts/bench.sh records must still run; a
# broken bench would otherwise surface only at `make bench` time. One
# iteration each — this checks they execute, not their numbers.
go test -run '^$' -benchtime 1x \
    -bench '^(BenchmarkEBPFInterpreterListing1|BenchmarkEBPFCompiledListing1|BenchmarkEBPFVerifier|BenchmarkSimulatorEventThroughput|BenchmarkKernelSyscallPath)$' \
    . >/dev/null
go test -run '^$' -benchtime 1x -bench '^(BenchmarkRingbufThroughput|BenchmarkSketchHotPath)$' \
    ./internal/ebpf/ >/dev/null
go test -run '^$' -benchtime 1x -bench '^BenchmarkWaitStateHotPath$' \
    ./internal/probes/ >/dev/null
go test -run '^$' -benchtime 1x -bench '^BenchmarkDetectorHotPath$' \
    ./internal/control/ >/dev/null
go test -run '^$' -benchtime 1x -bench '^BenchmarkFleetEpochs$' \
    ./internal/fleet/ >/dev/null

echo "== fleet smoke (cluster sweep, parallel vs sequential)"
# The fleet layer's determinism contract, exercised against the real
# binary: the same cluster sweep at -parallel 1 and -parallel 2 must
# print byte-identical output.
fldir=$(mktemp -d)
go build -o "$fldir/reqlens" ./cmd/reqlens
"$fldir/reqlens" fleet -quick -nodes 6 -epochs 4 -parallel 1 >"$fldir/seq.out"
"$fldir/reqlens" fleet -quick -nodes 6 -epochs 4 -parallel 2 >"$fldir/par.out"
if ! diff -u "$fldir/seq.out" "$fldir/par.out"; then
    echo "fleet sweep diverged between -parallel 1 and -parallel 2" >&2
    rm -rf "$fldir"
    exit 1
fi
echo "   parallel vs sequential fleet sweep: byte-identical"
rm -rf "$fldir"

echo "== cardinality smoke (sketch sweep vs golden)"
# The sketch pipeline's end-to-end contract against the real binary:
# the quick cardinality sweep (compiled sketch helpers, Zipf stream,
# bound/recall columns) must match the checked-in rendering
# byte-for-byte. `make golden` regenerates the fixture after an
# intentional change.
cddir=$(mktemp -d)
go build -o "$cddir/reqlens" ./cmd/reqlens
"$cddir/reqlens" cardinality -quick >"$cddir/card.out"
if ! diff -u internal/harness/testdata/golden/cardinality.txt "$cddir/card.out"; then
    echo "cardinality output diverged from golden (make golden if intentional)" >&2
    rm -rf "$cddir"
    exit 1
fi
echo "   cardinality sweep vs golden: byte-identical"
rm -rf "$cddir"

echo "== waitstates smoke (wait-state sweep vs golden)"
# The wait-state pipeline's end-to-end contract against the real
# binary: the quick silo sweep (sched-probe decomposition table + fault
# diagnosis + folded stacks) must match the checked-in rendering
# byte-for-byte. `make golden` regenerates the fixture after an
# intentional change.
wsdir=$(mktemp -d)
go build -o "$wsdir/reqlens" ./cmd/reqlens
"$wsdir/reqlens" waitstates -quick -workload silo >"$wsdir/ws.out"
if ! diff -u internal/harness/testdata/golden/waitstates.txt "$wsdir/ws.out"; then
    echo "waitstates output diverged from golden (make golden if intentional)" >&2
    rm -rf "$wsdir"
    exit 1
fi
echo "   wait-state sweep vs golden: byte-identical"
rm -rf "$wsdir"

echo "== attribution smoke (fault matrix vs golden)"
# The closed-loop control path's end-to-end contract against the real
# binary: the quick supervised attribution matrix (online detector +
# cause attributor over injected faults, scored against ground truth)
# must match the checked-in rendering byte-for-byte. `make golden`
# regenerates the fixture after an intentional change.
atdir=$(mktemp -d)
go build -o "$atdir/reqlens" ./cmd/reqlens
"$atdir/reqlens" attribution -quick -trials 2 >"$atdir/attr.out"
if ! diff -u internal/harness/testdata/golden/attribution.txt "$atdir/attr.out"; then
    echo "attribution output diverged from golden (make golden if intentional)" >&2
    rm -rf "$atdir"
    exit 1
fi
"$atdir/reqlens" autoscale -quick >"$atdir/auto.out"
if ! diff -u internal/harness/testdata/golden/autoscale.txt "$atdir/auto.out"; then
    echo "autoscale output diverged from golden (make golden if intentional)" >&2
    rm -rf "$atdir"
    exit 1
fi
echo "   attribution matrix + autoscale vs golden: byte-identical"
rm -rf "$atdir"

echo "== resilience smoke (kill -9 mid-sweep, resume, diff)"
# The supervision stack's end-to-end contract, exercised against the
# real binary: a journaled sweep is SIGKILLed after its first
# checkpoint lands, resumed from the (possibly torn) journal, and the
# resumed output must be byte-identical to an uninterrupted run.
rsdir=$(mktemp -d)
go build -o "$rsdir/reqlens" ./cmd/reqlens
"$rsdir/reqlens" fig2 -quick -workload silo -seed 42 >"$rsdir/full.out"
"$rsdir/reqlens" fig2 -quick -workload silo -seed 42 \
    -journal "$rsdir/run.jsonl" -parallel 2 >/dev/null &
pid=$!
# Kill as soon as the first checkpoint is durably in the journal.
for _ in $(seq 1 600); do
    if grep -q '"kind":"checkpoint"' "$rsdir/run.jsonl" 2>/dev/null; then
        break
    fi
    sleep 0.1
done
kill -9 "$pid" 2>/dev/null || true
wait "$pid" 2>/dev/null || true
if ! grep -q '"kind":"checkpoint"' "$rsdir/run.jsonl"; then
    # The quick sweep can outrun the poll loop; a completed journal
    # still exercises the resume path (all points cached).
    echo "   (sweep finished before the kill; resuming a complete journal)"
fi
"$rsdir/reqlens" resume -journal "$rsdir/run.jsonl" >"$rsdir/resumed.out" 2>/dev/null
if ! diff -u "$rsdir/full.out" "$rsdir/resumed.out"; then
    echo "resumed output diverged from the uninterrupted run" >&2
    rm -rf "$rsdir"
    exit 1
fi
echo "   kill -9 + resume: byte-identical"
rm -rf "$rsdir"

echo "== examples smoke"
# Build every example binary, then run each with parameters small enough
# to keep the leg under a couple of minutes. Output is discarded; a
# non-zero exit fails the gate.
exdir=$(mktemp -d)
trap 'rm -rf "$exdir"' EXIT
go build -o "$exdir" ./examples/...
for ex in examples/*/; do
    name=$(basename "$ex")
    case "$name" in
    parallel-sweep)      args="-parallel 2" ;;
    netem-robustness)    args="-parallel 2" ;;
    telemetry-dashboard) args="-interval 200ms" ;;
    streaming-monitor)   args="-ring 65536" ;;
    fleet-monitor)       args="-nodes 8 -epochs 3" ;;
    *)                   args="" ;;
    esac
    echo "-- $name $args"
    # shellcheck disable=SC2086 # args is a deliberate word list
    "$exdir/$name" $args >/dev/null
done

echo "check: ok"
