// Command doclint flags exported identifiers that lack a doc comment.
// It is the `make check` leg that keeps godoc coverage from rotting in
// the packages whose API surface the docs lean on (internal/ebpf's
// backend and stats types in particular).
//
// Usage: doclint <dir> [<dir>...]
//
// Each directory is parsed as one package (test files excluded); every
// exported top-level declaration — types, funcs, methods on exported
// types, and each exported const/var name or struct field — must carry
// a doc comment. Violations print as file:line: identifier and make the
// process exit non-zero.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doclint <dir> [<dir>...]")
		os.Exit(2)
	}
	bad := 0
	for _, dir := range os.Args[1:] {
		bad += lintDir(dir)
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "doclint: %d exported identifier(s) without doc comments\n", bad)
		os.Exit(1)
	}
}

// lintDir parses every non-test .go file in dir and reports exported
// declarations missing doc comments. Returns the violation count.
func lintDir(dir string) int {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		fmt.Fprintf(os.Stderr, "doclint: %s: %v\n", dir, err)
		return 1
	}
	bad := 0
	report := func(pos token.Pos, what string) {
		fmt.Printf("%s: %s\n", fset.Position(pos), what)
		bad++
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() || !exportedRecv(d) {
						continue
					}
					if d.Doc == nil {
						report(d.Pos(), "exported func "+d.Name.Name)
					}
				case *ast.GenDecl:
					bad += lintGen(d, report)
				}
			}
		}
	}
	return bad
}

// exportedRecv reports whether a func decl is a plain function or a
// method on an exported receiver type; methods on unexported types are
// not part of the package API.
func exportedRecv(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.IsExported()
	}
	return true
}

// lintGen checks a const/var/type block: the block doc covers a single
// spec, otherwise each exported spec (and each exported field of an
// exported struct) needs its own comment.
func lintGen(d *ast.GenDecl, report func(token.Pos, string)) int {
	bad := 0
	r := func(pos token.Pos, what string) {
		report(pos, what)
		bad++
	}
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if !s.Name.IsExported() {
				continue
			}
			if d.Doc == nil && s.Doc == nil {
				r(s.Pos(), "exported type "+s.Name.Name)
			}
			if st, ok := s.Type.(*ast.StructType); ok {
				for _, fld := range st.Fields.List {
					for _, name := range fld.Names {
						if name.IsExported() && fld.Doc == nil && fld.Comment == nil {
							r(name.Pos(), "exported field "+s.Name.Name+"."+name.Name)
						}
					}
				}
			}
		case *ast.ValueSpec:
			for _, name := range s.Names {
				if !name.IsExported() {
					continue
				}
				// A doc comment on the block or the spec (or a trailing
				// line comment) covers the name.
				if d.Doc == nil && s.Doc == nil && s.Comment == nil {
					r(name.Pos(), "exported const/var "+name.Name)
				}
			}
		}
	}
	return bad
}
