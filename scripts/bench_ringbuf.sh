#!/bin/sh
# bench_ringbuf.sh — run the ring-buffer throughput benchmark and write
# the result as BENCH_ringbuf.json in the repo root (`make bench` runs
# this after the general benchmark pass).
#
# The JSON records the benchmark's ns/op, MB/s, and allocation profile so
# successive PRs can diff producer-path cost.
set -eu

cd "$(dirname "$0")/.."

out=$(go test -run '^$' -bench BenchmarkRingbufThroughput -benchmem ./internal/ebpf/)
echo "$out"

# A -benchmem line looks like:
#   BenchmarkRingbufThroughput-8  N  ns/op  MB/s  B/op  allocs/op
echo "$out" | awk '
/^BenchmarkRingbufThroughput/ {
    name = $1
    iters = $2
    nsop = $3
    mbs = ""
    bop = ""
    allocs = ""
    for (i = 4; i <= NF; i++) {
        if ($(i+1) == "MB/s")      mbs = $i
        if ($(i+1) == "B/op")      bop = $i
        if ($(i+1) == "allocs/op") allocs = $i
    }
    printf "{\n"
    printf "  \"benchmark\": \"%s\",\n", name
    printf "  \"iterations\": %s,\n", iters
    printf "  \"ns_per_op\": %s,\n", nsop
    printf "  \"mb_per_s\": %s,\n", (mbs == "" ? "null" : mbs)
    printf "  \"bytes_per_op\": %s,\n", (bop == "" ? "null" : bop)
    printf "  \"allocs_per_op\": %s\n", (allocs == "" ? "null" : allocs)
    printf "}\n"
    found = 1
}
END { if (!found) exit 1 }
' > BENCH_ringbuf.json

echo "wrote BENCH_ringbuf.json:"
cat BENCH_ringbuf.json
