#!/bin/sh
# bench.sh — run the substrate microbenchmarks and write one
# BENCH_<name>.json per benchmark in the repo root, so successive PRs
# can diff hot-path cost. `make bench` runs this after the general
# figure-regeneration pass; `scripts/bench.sh <name>` regenerates a
# single file (e.g. `scripts/bench.sh ringbuf`).
#
# Each JSON records the benchmark's iterations and ns/op plus every
# extra metric the benchmark reports (MB/s, B/op, allocs/op, insns/op,
# ...) under a snake_case key.
set -eu

cd "$(dirname "$0")/.."

# registry: name|benchmark function|package
BENCHES="
ringbuf|BenchmarkRingbufThroughput|./internal/ebpf/
sketch|BenchmarkSketchHotPath|./internal/ebpf/
waitstate|BenchmarkWaitStateHotPath|./internal/probes/
control|BenchmarkDetectorHotPath|./internal/control/
interpreter|BenchmarkEBPFInterpreterListing1|.
jit|BenchmarkEBPFCompiledListing1|.
verifier|BenchmarkEBPFVerifier|.
sim|BenchmarkSimulatorEventThroughput|.
syscall|BenchmarkKernelSyscallPath|.
"

filter="${1:-}"
matched=0

# fleet is special-cased: BenchmarkFleetEpochs runs one sub-benchmark
# per cluster size, and BENCH_fleet.json records the whole scaling
# series (node_epochs/s and events/s vs node count) as a JSON array.
if [ -z "$filter" ] || [ "$filter" = fleet ]; then
    matched=1
    out=$(go test -run '^$' -bench '^BenchmarkFleetEpochs$' -benchmem ./internal/fleet/)
    echo "$out"
    echo "$out" | awk '
    BEGIN { printf "{\n  \"benchmark\": \"BenchmarkFleetEpochs\",\n  \"points\": [" }
    $1 ~ /^BenchmarkFleetEpochs\/nodes=/ {
        n = $1
        sub(/^.*nodes=/, "", n)
        sub(/-.*$/, "", n)
        printf "%s\n    {\"nodes\": %s, \"iterations\": %s", sep, n, $2
        sep = ","
        for (i = 3; i + 1 <= NF; i += 2) {
            key = $(i + 1)
            if (key == "ns/op")          key = "ns_per_op"
            else if (key == "B/op")      key = "bytes_per_op"
            else if (key == "allocs/op") key = "allocs_per_op"
            else {
                gsub(/\//, "_per_", key)
                gsub(/[^A-Za-z0-9_]/, "_", key)
            }
            printf ", \"%s\": %s", key, $i
        }
        printf "}"
        found = 1
    }
    END { if (!found) exit 1; printf "\n  ]\n}\n" }
    ' > BENCH_fleet.json
    echo "wrote BENCH_fleet.json:"
    cat BENCH_fleet.json
fi

for line in $BENCHES; do
    name=${line%%|*}
    rest=${line#*|}
    bench=${rest%%|*}
    pkg=${rest#*|}
    if [ -n "$filter" ] && [ "$filter" != "$name" ]; then
        continue
    fi
    matched=1
    out=$(go test -run '^$' -bench "^${bench}\$" -benchmem "$pkg")
    echo "$out"

    # A benchmark line is `Name-P  iters  value unit  value unit ...`;
    # map each unit to a stable snake_case JSON key.
    echo "$out" | awk -v bench="$bench" '
    $1 == bench || $1 ~ "^" bench "-" {
        printf "{\n  \"benchmark\": \"%s\",\n  \"iterations\": %s", $1, $2
        for (i = 3; i + 1 <= NF; i += 2) {
            key = $(i + 1)
            if (key == "ns/op")          key = "ns_per_op"
            else if (key == "MB/s")      key = "mb_per_s"
            else if (key == "B/op")      key = "bytes_per_op"
            else if (key == "allocs/op") key = "allocs_per_op"
            else {
                gsub(/\//, "_per_", key)
                gsub(/[^A-Za-z0-9_]/, "_", key)
            }
            printf ",\n  \"%s\": %s", key, $i
        }
        printf "\n}\n"
        found = 1
        exit
    }
    END { if (!found) exit 1 }
    ' > "BENCH_${name}.json"

    echo "wrote BENCH_${name}.json:"
    cat "BENCH_${name}.json"
done

if [ "$matched" -eq 0 ]; then
    echo "bench.sh: unknown benchmark \"$filter\"" >&2
    exit 2
fi
