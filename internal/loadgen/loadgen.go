package loadgen

import (
	"math/rand"
	"time"

	"reqlens/internal/kernel"
	"reqlens/internal/netsim"
	"reqlens/internal/sim"
	"reqlens/internal/stats"
)

// Options configures a client.
type Options struct {
	Rate    float64 // offered load, requests per second
	Conns   int     // connection pool size
	ReqSize int     // request bytes

	// Generators is the number of load-generating threads splitting Rate
	// (default 4). Each paces against its own schedule and catches up in
	// a burst when it falls behind — the behaviour of real loader threads
	// starved for CPU on a co-located, saturated machine (the paper runs
	// client and server containers on one host, Section IV-A).
	Generators int
	// PerOpCost is the client CPU burned per send and per receive
	// (request serialization, response parsing). On a co-located client
	// this couples loader pacing to server saturation.
	PerOpCost time.Duration
	// Poisson selects exponential interarrival gaps; the default is
	// uniform pacing per generator, as fixed-rate loaders do.
	Poisson bool

	// CaptureArrivals, when positive, records the virtual send time of
	// up to that many requests (in request-ID order), independent of
	// measurement windows. Arrivals returns them; determinism tests
	// compare the sequences across runs.
	CaptureArrivals int
}

// Client is one open-loop load generator attached to a workload.
type Client struct {
	k    *kernel.Kernel
	proc *kernel.Process
	rng  *rand.Rand
	opts Options

	conns  []*netsim.Sock
	sentAt map[uint64]sim.Time
	nextID uint64

	measuring bool
	measStart sim.Time
	sent      uint64
	completed uint64
	hist      *stats.Histogram
	lifetime  uint64 // responses ever received

	arrivals []sim.Time // first CaptureArrivals send times
}

// New connects a client to the listener with opts.Conns connections and
// starts the generator and receiver threads. Traffic begins immediately.
func New(k *kernel.Kernel, l *netsim.Listener, opts Options) *Client {
	if opts.Conns <= 0 {
		opts.Conns = 8
	}
	if opts.ReqSize <= 0 {
		opts.ReqSize = 128
	}
	c := &Client{
		k:      k,
		proc:   k.NewProcess("client"),
		rng:    k.Env().NewRNG(),
		opts:   opts,
		sentAt: make(map[uint64]sim.Time),
		hist:   stats.NewHistogram(),
	}

	ready := 0
	for i := 0; i < opts.Conns; i++ {
		c.proc.SpawnThread("conn", func(t *kernel.Thread) {
			s := l.Dial(t)
			c.conns = append(c.conns, s)
			ready++
			// Receiver loop: blocking recv, match by request ID.
			for {
				m := s.Recv(t, kernel.SysRecvfrom)
				if c.opts.PerOpCost > 0 {
					t.Compute(c.opts.PerOpCost) // parse the response
				}
				c.onResponse(t.Now(), m)
			}
		})
	}

	gens := opts.Generators
	if gens <= 0 {
		gens = 4
	}
	for g := 0; g < gens; g++ {
		g := g
		c.proc.SpawnThread("generator", func(t *kernel.Thread) {
			// Let connections establish before offering load.
			for ready < opts.Conns {
				t.Sleep(100 * time.Microsecond)
			}
			if c.opts.Rate <= 0 {
				return
			}
			perGen := c.opts.Rate / float64(gens)
			// Stagger generator phases so fixed-rate pacing interleaves
			// instead of firing in lockstep.
			next := t.Now().Add(time.Duration(float64(g) / perGen / float64(gens) * float64(time.Second)))
			for i := g; ; i += gens {
				var gap time.Duration
				if c.opts.Poisson {
					gap = time.Duration(c.rng.ExpFloat64() / perGen * float64(time.Second))
				} else {
					gap = time.Duration(float64(time.Second) / perGen)
				}
				next = next.Add(gap)
				if now := t.Now(); next > now {
					t.Sleep(next.Sub(now))
				}
				// When behind schedule (CPU starvation on a co-located,
				// saturated host) requests fire back-to-back to catch up.
				if c.opts.PerOpCost > 0 {
					t.Compute(c.opts.PerOpCost) // build the request
				}
				s := c.conns[i%len(c.conns)]
				c.nextID++
				id := c.nextID
				c.sentAt[id] = t.Now()
				if len(c.arrivals) < c.opts.CaptureArrivals {
					c.arrivals = append(c.arrivals, t.Now())
				}
				if c.measuring {
					c.sent++
				}
				s.Send(t, kernel.SysSendto, &netsim.Message{ID: id, Size: c.opts.ReqSize})
			}
		})
	}
	return c
}

func (c *Client) onResponse(now sim.Time, m *netsim.Message) {
	c.lifetime++
	sent, ok := c.sentAt[m.ID]
	if !ok {
		return
	}
	delete(c.sentAt, m.ID)
	if c.measuring {
		c.completed++
		c.hist.RecordDuration(now.Sub(sent))
	}
}

// StartMeasurement clears counters and begins a measurement window.
func (c *Client) StartMeasurement() {
	c.measuring = true
	c.measStart = c.k.Env().Now()
	c.sent = 0
	c.completed = 0
	c.hist.Reset()
}

// Results summarizes a measurement window.
type Results struct {
	Offered   float64 // configured open-loop rate
	SentRPS   float64 // requests actually issued per second
	RealRPS   float64 // responses completed per second (RPS_real)
	Completed uint64
	Window    time.Duration
	Mean      time.Duration
	P50       time.Duration
	P99       time.Duration
	P999      time.Duration
	Max       time.Duration
}

// Snapshot ends nothing; it reads the current window's results.
func (c *Client) Snapshot() Results {
	now := c.k.Env().Now()
	win := now.Sub(c.measStart)
	r := Results{
		Offered:   c.opts.Rate,
		Completed: c.completed,
		Window:    win,
		Mean:      time.Duration(c.hist.Mean()),
		P50:       time.Duration(c.hist.Quantile(0.50)),
		P99:       time.Duration(c.hist.Quantile(0.99)),
		P999:      time.Duration(c.hist.Quantile(0.999)),
		Max:       time.Duration(c.hist.Max()),
	}
	if win > 0 {
		r.RealRPS = float64(c.completed) / win.Seconds()
		r.SentRPS = float64(c.sent) / win.Seconds()
	}
	return r
}

// TGID returns the client process's thread-group id. Attribution
// experiments allowlist it when computing foreign syscall share: a
// co-located load generator's syscalls are expected traffic, not a
// foreign tenant's.
func (c *Client) TGID() int { return c.proc.TGID() }

// Completed returns the number of responses received in the current
// measurement window.
func (c *Client) Completed() uint64 { return c.completed }

// Lifetime returns responses received since the client started.
func (c *Client) Lifetime() uint64 { return c.lifetime }

// Outstanding returns requests awaiting responses.
func (c *Client) Outstanding() int { return len(c.sentAt) }

// Arrivals returns the captured send times (up to
// Options.CaptureArrivals entries, in send order). The returned slice
// is a copy.
func (c *Client) Arrivals() []sim.Time {
	out := make([]sim.Time, len(c.arrivals))
	copy(out, c.arrivals)
	return out
}
