package loadgen

import (
	"math"
	"testing"
	"time"

	"reqlens/internal/kernel"
	"reqlens/internal/machine"
	"reqlens/internal/netsim"
	"reqlens/internal/sim"
)

// echoServer accepts connections and echoes each request after delay.
func echoServer(k *kernel.Kernel, n *netsim.Network, delay time.Duration, cfg netsim.Config) *netsim.Listener {
	l := n.Listen(cfg)
	proc := k.NewProcess("echo")
	proc.SpawnThread("acceptor", func(t *kernel.Thread) {
		for {
			s := l.Accept(t)
			proc.SpawnThread("conn", func(t *kernel.Thread) {
				for {
					m := s.Recv(t, kernel.SysRead)
					if delay > 0 {
						t.Compute(delay)
					}
					s.Send(t, kernel.SysWrite, &netsim.Message{ID: m.ID, Size: 64})
				}
			})
		}
	})
	return l
}

func rig() (*sim.Env, *kernel.Kernel, *netsim.Network) {
	env := sim.NewEnv(19)
	prof := machine.Profile{
		Name: "t", Sockets: 1, CoresPerSock: 8, ThreadsPerCore: 1,
		TimeSlice: time.Millisecond,
	}
	return env, kernel.New(env, prof), netsim.New(env)
}

func TestOpenLoopRateAchieved(t *testing.T) {
	env, k, n := rig()
	l := echoServer(k, n, 10*time.Microsecond, netsim.Config{})
	c := New(k, l, Options{Rate: 2000, Conns: 8})
	env.RunFor(200 * time.Millisecond)
	c.StartMeasurement()
	env.RunFor(time.Second)
	r := c.Snapshot()
	if math.Abs(r.SentRPS-2000) > 100 {
		t.Fatalf("SentRPS = %v, want ~2000", r.SentRPS)
	}
	if math.Abs(r.RealRPS-2000) > 100 {
		t.Fatalf("RealRPS = %v, want ~2000", r.RealRPS)
	}
	if r.Completed < 1800 {
		t.Fatalf("Completed = %d", r.Completed)
	}
	if r.Window < 990*time.Millisecond {
		t.Fatalf("Window = %v", r.Window)
	}
}

func TestLatencyIncludesNetworkDelay(t *testing.T) {
	env, k, n := rig()
	l := echoServer(k, n, 0, netsim.Config{Delay: 5 * time.Millisecond})
	c := New(k, l, Options{Rate: 200, Conns: 4})
	env.RunFor(100 * time.Millisecond)
	c.StartMeasurement()
	env.RunFor(500 * time.Millisecond)
	r := c.Snapshot()
	// RTT = 2 x 5ms plus processing.
	if r.P50 < 10*time.Millisecond || r.P50 > 12*time.Millisecond {
		t.Fatalf("P50 = %v, want ~10ms RTT", r.P50)
	}
	if r.P99 < r.P50 || r.Max < r.P99 || r.Mean <= 0 {
		t.Fatalf("inconsistent percentiles: %+v", r)
	}
}

func TestLossInflatesTailOnly(t *testing.T) {
	run := func(loss float64) Results {
		env, k, n := rig()
		l := echoServer(k, n, 0, netsim.Config{Delay: time.Millisecond, Loss: loss, RTO: 50 * time.Millisecond})
		c := New(k, l, Options{Rate: 500, Conns: 16})
		env.RunFor(100 * time.Millisecond)
		c.StartMeasurement()
		env.RunFor(2 * time.Second)
		r := c.Snapshot()
		env.Shutdown()
		return r
	}
	clean := run(0)
	lossy := run(0.01)
	if lossy.P99 < 4*clean.P99 {
		t.Fatalf("1%% loss should inflate p99: clean=%v lossy=%v", clean.P99, lossy.P99)
	}
	// Median barely moves, throughput preserved.
	if lossy.P50 > 3*clean.P50 {
		t.Fatalf("p50 moved too much under loss: clean=%v lossy=%v", clean.P50, lossy.P50)
	}
	if math.Abs(lossy.RealRPS-clean.RealRPS) > 0.1*clean.RealRPS {
		t.Fatalf("loss should not change throughput: clean=%v lossy=%v", clean.RealRPS, lossy.RealRPS)
	}
}

func TestPoissonVsUniformPacing(t *testing.T) {
	gaps := func(poisson bool) float64 {
		env, k, n := rig()
		l := n.Listen(netsim.Config{})
		// Sink server: accept and swallow requests, recording arrivals.
		var arrivals []sim.Time
		proc := k.NewProcess("sink")
		proc.SpawnThread("acceptor", func(t *kernel.Thread) {
			for {
				s := l.Accept(t)
				proc.SpawnThread("conn", func(t *kernel.Thread) {
					for {
						s.Recv(t, kernel.SysRead)
						arrivals = append(arrivals, t.Now())
					}
				})
			}
		})
		New(k, l, Options{Rate: 1000, Conns: 4, Poisson: poisson, Generators: 2})
		env.RunFor(2 * time.Second)
		env.Shutdown()
		// Coefficient of variation of interarrival gaps.
		var sum, sumSq float64
		var prev sim.Time = -1
		cnt := 0.0
		for _, a := range arrivals {
			if prev >= 0 {
				d := float64(a - prev)
				sum += d
				sumSq += d * d
				cnt++
			}
			prev = a
		}
		mean := sum / cnt
		return (sumSq/cnt - mean*mean) / (mean * mean)
	}
	uniformCV2 := gaps(false)
	poissonCV2 := gaps(true)
	if poissonCV2 < 0.5 {
		t.Fatalf("poisson CV^2 = %v, want ~1", poissonCV2)
	}
	if uniformCV2 > poissonCV2/2 {
		t.Fatalf("uniform pacing CV^2 = %v should be well below poisson %v", uniformCV2, poissonCV2)
	}
}

func TestPerOpCostConsumesClientCPU(t *testing.T) {
	env, k, n := rig()
	l := echoServer(k, n, 0, netsim.Config{})
	c := New(k, l, Options{Rate: 1000, Conns: 4, PerOpCost: 100 * time.Microsecond})
	env.RunFor(time.Second)
	var clientCPU time.Duration
	for _, th := range c.proc.Threads() {
		clientCPU += th.CPUTime()
	}
	env.Shutdown()
	// ~1000 req/s x (send+recv) x 100us = 0.2 CPU-seconds/second.
	if clientCPU < 100*time.Millisecond {
		t.Fatalf("client CPU = %v, expected substantial per-op cost", clientCPU)
	}
}

func TestOutstandingAndLifetime(t *testing.T) {
	env, k, n := rig()
	l := echoServer(k, n, 100*time.Microsecond, netsim.Config{})
	c := New(k, l, Options{Rate: 1000, Conns: 4})
	env.RunFor(500 * time.Millisecond)
	if c.Lifetime() == 0 {
		t.Fatal("no responses received")
	}
	if c.Outstanding() > 50 {
		t.Fatalf("outstanding = %d at low load", c.Outstanding())
	}
}

func TestZeroRateClientIdles(t *testing.T) {
	env, k, n := rig()
	l := echoServer(k, n, 0, netsim.Config{})
	c := New(k, l, Options{Rate: 0, Conns: 2})
	env.RunFor(100 * time.Millisecond)
	if c.Lifetime() != 0 {
		t.Fatal("zero-rate client sent requests")
	}
}
