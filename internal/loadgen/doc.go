// Package loadgen drives workloads with an open-loop client — the load
// model that pushes a server past saturation regardless of its response
// rate, as the paper's sweeps require. It measures the ground-truth
// request rate (RPS_real, the "benchmark-reported RPS" of Fig. 2) and
// client-perceived latency percentiles, including every network effect
// (delay, loss, retransmission) — the truth column every figure pairs
// against the in-kernel estimate.
//
// Key entry points:
//
//   - New(k, listener, opts) — start a client on a kernel machine
//     against a server's netsim listener. Options selects the offered
//     Rate, connection count, request size, per-op client CPU cost
//     (nonzero when co-located with the server, as the paper's
//     containers are), and paced vs Poisson interarrivals.
//   - Client.StartMeasurement — reset measurement state at a window
//     boundary; Client.Snapshot — RealRPS and latency percentiles
//     (Results.P50/P99 feed the QoS verdicts of Figs. 3-5).
//
// The harness co-locates the client with the server by default
// (matching the paper's same-host container placement) and offers
// separate-machine and Poisson variants as ablations
// (ExpOptions.SeparateClient, ExpOptions.Poisson).
package loadgen
