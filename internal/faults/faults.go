package faults

import (
	"fmt"
	"time"

	"reqlens/internal/netsim"
)

// Kind selects one injector mechanism.
type Kind int

const (
	// CPUOffline removes CPUs from dispatch for the fault window
	// (hotplug): busy CPUs finish their occupant, then idle.
	CPUOffline Kind = iota
	// MigrationStorm periodically flushes every CPU's affinity so the
	// next dispatch on each CPU pays the full context-switch cost.
	MigrationStorm
	// ClockJitter warps the tracepoint clock seen by eBPF programs by a
	// random non-negative, monotonicity-preserving skew per read.
	ClockJitter
	// NoisyNeighbor runs a background tenant process whose threads flood
	// the kernel with send-family syscalls and burn CPU, stressing both
	// the scheduler and the probes' tgid-filter fast path.
	NoisyNeighbor
	// RingStall pauses the streaming observer's ring-buffer consumer for
	// the fault window, building producer-side pressure (drops once the
	// ring fills).
	RingStall
	// ProbeChurn detaches the batch probes at the window start and
	// reattaches them at the end, as an agent restart would.
	ProbeChurn
)

func (k Kind) String() string {
	switch k {
	case CPUOffline:
		return "cpu-offline"
	case MigrationStorm:
		return "migration-storm"
	case ClockJitter:
		return "clock-jitter"
	case NoisyNeighbor:
		return "noisy-neighbor"
	case RingStall:
		return "ring-stall"
	case ProbeChurn:
		return "probe-churn"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Fault is one scheduled injection. Zero parameter values take
// per-kind defaults (see withDefaults).
type Fault struct {
	Kind  Kind
	Start time.Duration // offset from Arm
	// Duration of the injection window; 0 means "until Clear".
	Duration time.Duration

	CPUs      int           // CPUOffline: how many CPUs to remove
	Threads   int           // NoisyNeighbor: tenant thread count
	Period    time.Duration // MigrationStorm flush interval / NoisyNeighbor pacing
	Burn      time.Duration // NoisyNeighbor per-iteration CPU burn
	Amplitude time.Duration // ClockJitter maximum skew per read
}

// withDefaults fills zero parameters with the calibrated defaults used
// by the standard plans.
func (f Fault) withDefaults() Fault {
	if f.CPUs <= 0 {
		f.CPUs = 2
	}
	if f.Threads <= 0 {
		f.Threads = 4
	}
	if f.Period <= 0 {
		switch f.Kind {
		case MigrationStorm:
			f.Period = 500 * time.Microsecond
		default:
			f.Period = 120 * time.Microsecond
		}
	}
	if f.Burn <= 0 {
		f.Burn = 30 * time.Microsecond
	}
	if f.Amplitude <= 0 {
		f.Amplitude = 5 * time.Microsecond
	}
	return f
}

// Plan is a named, composable schedule of injectors plus an optional
// netem link configuration (the paper's network-side perturbation).
// The zero Plan is the fault-free baseline.
type Plan struct {
	Name string
	// Seed drives every injector's private randomness. Two runs of the
	// same plan on the same rig seed replay identical perturbations.
	Seed int64
	// Netem, when non-zero, replaces the experiment's link shaping for
	// the whole run (netem is a link property, not a windowed event).
	Netem netsim.Config
	// Faults are applied via Arm in schedule order.
	Faults []Fault
}

// Empty reports whether the plan perturbs nothing.
func (p Plan) Empty() bool { return len(p.Faults) == 0 && !p.HasNetem() }

// HasNetem reports whether the plan carries a link configuration.
func (p Plan) HasNetem() bool { return p.Netem != (netsim.Config{}) }

// Validate rejects malformed schedules before any event is armed.
func (p Plan) Validate() error {
	for i, f := range p.Faults {
		if f.Kind < CPUOffline || f.Kind > ProbeChurn {
			return fmt.Errorf("faults: plan %q fault %d: unknown kind %d", p.Name, i, int(f.Kind))
		}
		if f.Start < 0 || f.Duration < 0 {
			return fmt.Errorf("faults: plan %q fault %d (%v): negative schedule", p.Name, i, f.Kind)
		}
	}
	return nil
}

// Baseline is the explicit fault-free plan.
func Baseline() Plan { return Plan{Name: "baseline"} }

// DelayPlan shapes the link with added one-way delay (Table II style).
func DelayPlan(d time.Duration) Plan {
	return Plan{Name: fmt.Sprintf("delay-%v", d), Netem: netsim.Config{Delay: d}}
}

// LossPlan shapes the link with random packet loss (Table II style).
func LossPlan(loss float64) Plan {
	return Plan{Name: fmt.Sprintf("loss-%g%%", loss*100), Netem: netsim.Config{Loss: loss}}
}

// CPUOfflinePlan removes n CPUs for the whole armed window.
func CPUOfflinePlan(n int) Plan {
	return Plan{Name: fmt.Sprintf("cpu-off-%d", n), Seed: 11,
		Faults: []Fault{{Kind: CPUOffline, CPUs: n}}}
}

// MigrationStormPlan flushes CPU affinity every period for the whole
// armed window.
func MigrationStormPlan(period time.Duration) Plan {
	return Plan{Name: fmt.Sprintf("migrate-%v", period), Seed: 12,
		Faults: []Fault{{Kind: MigrationStorm, Period: period}}}
}

// ClockJitterPlan warps the tracepoint clock by up to amp per read.
func ClockJitterPlan(amp time.Duration) Plan {
	return Plan{Name: fmt.Sprintf("jitter-%v", amp), Seed: 13,
		Faults: []Fault{{Kind: ClockJitter, Amplitude: amp}}}
}

// NoisyNeighborPlan floods the kernel with a background tenant.
func NoisyNeighborPlan(threads int) Plan {
	return Plan{Name: fmt.Sprintf("neighbor-%d", threads), Seed: 14,
		Faults: []Fault{{Kind: NoisyNeighbor, Threads: threads}}}
}

// RingStallPlan pauses the streaming consumer for dur starting at start.
func RingStallPlan(start, dur time.Duration) Plan {
	return Plan{Name: "ring-stall", Seed: 15,
		Faults: []Fault{{Kind: RingStall, Start: start, Duration: dur}}}
}

// ProbeChurnPlan detaches the probes at start and reattaches after dur.
func ProbeChurnPlan(start, dur time.Duration) Plan {
	return Plan{Name: "probe-churn", Seed: 16,
		Faults: []Fault{{Kind: ProbeChurn, Start: start, Duration: dur}}}
}

// StandardPlans is the library the robustness matrix and CLI use: the
// paper's two netem settings plus one plan per kernel-side injector at
// calibrated severities.
func StandardPlans() []Plan {
	return []Plan{
		DelayPlan(10 * time.Millisecond),
		LossPlan(0.01),
		CPUOfflinePlan(2),
		MigrationStormPlan(500 * time.Microsecond),
		ClockJitterPlan(5 * time.Microsecond),
		NoisyNeighborPlan(4),
		ProbeChurnPlan(5*time.Millisecond, 15*time.Millisecond),
	}
}
