package faults

import (
	"fmt"
	"time"

	"reqlens/internal/netsim"
)

// Kind selects one injector mechanism.
type Kind int

const (
	// CPUOffline removes CPUs from dispatch for the fault window
	// (hotplug): busy CPUs finish their occupant, then idle.
	CPUOffline Kind = iota
	// MigrationStorm periodically flushes every CPU's affinity so the
	// next dispatch on each CPU pays the full context-switch cost.
	MigrationStorm
	// ClockJitter warps the tracepoint clock seen by eBPF programs by a
	// random non-negative, monotonicity-preserving skew per read.
	ClockJitter
	// NoisyNeighbor runs a background tenant process whose threads flood
	// the kernel with send-family syscalls and burn CPU, stressing both
	// the scheduler and the probes' tgid-filter fast path.
	NoisyNeighbor
	// RingStall pauses the streaming observer's ring-buffer consumer for
	// the fault window, building producer-side pressure (drops once the
	// ring fills).
	RingStall
	// ProbeChurn detaches the batch probes at the window start and
	// reattaches them at the end, as an agent restart would.
	ProbeChurn
	// NetemShift reshapes every network link to the fault's Netem config
	// for the window (a mid-run `tc qdisc change`), restoring the links'
	// original shaping at the end. Unlike Plan.Netem — which is a
	// whole-run link property — NetemShift gives network degradation a
	// ground-truth onset time, which the attribution experiments need.
	NetemShift
)

func (k Kind) String() string {
	switch k {
	case CPUOffline:
		return "cpu-offline"
	case MigrationStorm:
		return "migration-storm"
	case ClockJitter:
		return "clock-jitter"
	case NoisyNeighbor:
		return "noisy-neighbor"
	case RingStall:
		return "ring-stall"
	case ProbeChurn:
		return "probe-churn"
	case NetemShift:
		return "netem-shift"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Fault is one scheduled injection. Zero parameter values take
// per-kind defaults (see withDefaults).
type Fault struct {
	Kind  Kind
	Start time.Duration // offset from Arm
	// Duration of the injection window; 0 means "until Clear".
	Duration time.Duration

	CPUs      int           // CPUOffline: how many CPUs to remove
	Threads   int           // NoisyNeighbor: tenant thread count
	Period    time.Duration // MigrationStorm flush interval / NoisyNeighbor pacing
	Burn      time.Duration // NoisyNeighbor per-iteration CPU burn
	Amplitude time.Duration // ClockJitter maximum skew per read
	Netem     netsim.Config // NetemShift: link config for the window
}

// withDefaults fills zero parameters with the calibrated defaults used
// by the standard plans.
func (f Fault) withDefaults() Fault {
	if f.CPUs <= 0 {
		f.CPUs = 2
	}
	if f.Threads <= 0 {
		f.Threads = 4
	}
	if f.Period <= 0 {
		switch f.Kind {
		case MigrationStorm:
			f.Period = 500 * time.Microsecond
		default:
			f.Period = 120 * time.Microsecond
		}
	}
	if f.Burn <= 0 {
		f.Burn = 30 * time.Microsecond
	}
	if f.Amplitude <= 0 {
		f.Amplitude = 5 * time.Microsecond
	}
	return f
}

// Plan is a named, composable schedule of injectors plus an optional
// netem link configuration (the paper's network-side perturbation).
// The zero Plan is the fault-free baseline.
type Plan struct {
	Name string
	// Seed drives every injector's private randomness. Two runs of the
	// same plan on the same rig seed replay identical perturbations.
	Seed int64
	// Netem, when non-zero, replaces the experiment's link shaping for
	// the whole run (netem is a link property, not a windowed event).
	Netem netsim.Config
	// Faults are applied via Arm in schedule order.
	Faults []Fault
}

// Empty reports whether the plan perturbs nothing.
func (p Plan) Empty() bool { return len(p.Faults) == 0 && !p.HasNetem() }

// HasNetem reports whether the plan carries a link configuration.
func (p Plan) HasNetem() bool { return p.Netem != (netsim.Config{}) }

// Validate rejects malformed schedules before any event is armed.
func (p Plan) Validate() error {
	for i, f := range p.Faults {
		if f.Kind < CPUOffline || f.Kind > NetemShift {
			return fmt.Errorf("faults: plan %q fault %d: unknown kind %d", p.Name, i, int(f.Kind))
		}
		if f.Start < 0 || f.Duration < 0 {
			return fmt.Errorf("faults: plan %q fault %d (%v): negative schedule", p.Name, i, f.Kind)
		}
		if f.Kind == NetemShift && f.Netem == (netsim.Config{}) {
			return fmt.Errorf("faults: plan %q fault %d: netem-shift with zero link config", p.Name, i)
		}
	}
	return nil
}

// Window is one ground-truth active interval of a scheduled fault,
// relative to the Arm time. Open windows (Duration 0) run until Clear.
// Periodic faults (MigrationStorm, NoisyNeighbor) count their whole
// armed span as active: Period paces perturbations within the window,
// it does not gate activity on and off.
type Window struct {
	Kind  Kind
	Start time.Duration
	End   time.Duration // exclusive; meaningful only when !Open
	Open  bool          // no scheduled end: active until Clear
}

// Contains reports whether offset t (relative to Arm) falls inside the
// window.
func (w Window) Contains(t time.Duration) bool {
	if t < w.Start {
		return false
	}
	return w.Open || t < w.End
}

// Windows returns the plan's ground-truth active intervals, one per
// scheduled fault in schedule order — the supervision labels the
// attribution scorer grades against, derived from the same Start and
// Duration the controller arms, so scorer and injector cannot drift.
// Plan.Netem is not a window: whole-run link shaping has no onset.
func (p Plan) Windows() []Window {
	if len(p.Faults) == 0 {
		return nil
	}
	out := make([]Window, len(p.Faults))
	for i, f := range p.Faults {
		out[i] = Window{Kind: f.Kind, Start: f.Start, End: f.Start + f.Duration, Open: f.Duration == 0}
	}
	return out
}

// Baseline is the explicit fault-free plan.
func Baseline() Plan { return Plan{Name: "baseline"} }

// DelayPlan shapes the link with added one-way delay (Table II style).
func DelayPlan(d time.Duration) Plan {
	return Plan{Name: fmt.Sprintf("delay-%v", d), Netem: netsim.Config{Delay: d}}
}

// LossPlan shapes the link with random packet loss (Table II style).
func LossPlan(loss float64) Plan {
	return Plan{Name: fmt.Sprintf("loss-%g%%", loss*100), Netem: netsim.Config{Loss: loss}}
}

// CPUOfflinePlan removes n CPUs for the whole armed window.
func CPUOfflinePlan(n int) Plan {
	return Plan{Name: fmt.Sprintf("cpu-off-%d", n), Seed: 11,
		Faults: []Fault{{Kind: CPUOffline, CPUs: n}}}
}

// MigrationStormPlan flushes CPU affinity every period for the whole
// armed window.
func MigrationStormPlan(period time.Duration) Plan {
	return Plan{Name: fmt.Sprintf("migrate-%v", period), Seed: 12,
		Faults: []Fault{{Kind: MigrationStorm, Period: period}}}
}

// ClockJitterPlan warps the tracepoint clock by up to amp per read.
func ClockJitterPlan(amp time.Duration) Plan {
	return Plan{Name: fmt.Sprintf("jitter-%v", amp), Seed: 13,
		Faults: []Fault{{Kind: ClockJitter, Amplitude: amp}}}
}

// NoisyNeighborPlan floods the kernel with a background tenant.
func NoisyNeighborPlan(threads int) Plan {
	return Plan{Name: fmt.Sprintf("neighbor-%d", threads), Seed: 14,
		Faults: []Fault{{Kind: NoisyNeighbor, Threads: threads}}}
}

// RingStallPlan pauses the streaming consumer for dur starting at start.
func RingStallPlan(start, dur time.Duration) Plan {
	return Plan{Name: "ring-stall", Seed: 15,
		Faults: []Fault{{Kind: RingStall, Start: start, Duration: dur}}}
}

// ProbeChurnPlan detaches the probes at start and reattaches after dur.
func ProbeChurnPlan(start, dur time.Duration) Plan {
	return Plan{Name: "probe-churn", Seed: 16,
		Faults: []Fault{{Kind: ProbeChurn, Start: start, Duration: dur}}}
}

// NetemShiftPlan reshapes every link to cfg from start for dur
// (0 = until Clear) — the windowed counterpart of DelayPlan/LossPlan.
func NetemShiftPlan(start, dur time.Duration, cfg netsim.Config) Plan {
	return Plan{Name: "netem-shift", Seed: 17,
		Faults: []Fault{{Kind: NetemShift, Start: start, Duration: dur, Netem: cfg}}}
}

// StandardPlans is the library the robustness matrix and CLI use: the
// paper's two netem settings plus one plan per kernel-side injector at
// calibrated severities.
func StandardPlans() []Plan {
	return []Plan{
		DelayPlan(10 * time.Millisecond),
		LossPlan(0.01),
		CPUOfflinePlan(2),
		MigrationStormPlan(500 * time.Microsecond),
		ClockJitterPlan(5 * time.Microsecond),
		NoisyNeighborPlan(4),
		ProbeChurnPlan(5*time.Millisecond, 15*time.Millisecond),
	}
}
