package faults

import (
	"reflect"
	"testing"
	"time"

	"reqlens/internal/kernel"
	"reqlens/internal/machine"
	"reqlens/internal/netsim"
	"reqlens/internal/sim"
)

func testKernel(ncpu int) (*sim.Env, *kernel.Kernel) {
	env := sim.NewEnv(1)
	prof := machine.Profile{
		Name: "test", Sockets: 1, CoresPerSock: ncpu, ThreadsPerCore: 1,
		TimeSlice: time.Millisecond,
	}
	return env, kernel.New(env, prof)
}

type fakeProbes struct {
	detaches, reattaches int
	attached             bool
}

func (f *fakeProbes) Detach()         { f.detaches++; f.attached = false }
func (f *fakeProbes) Reattach() error { f.reattaches++; f.attached = true; return nil }

func TestValidate(t *testing.T) {
	env, k := testKernel(2)
	defer env.Shutdown()
	cases := []struct {
		name string
		plan Plan
		tgt  Target
	}{
		{"nil kernel", Baseline(), Target{}},
		{"unknown kind", Plan{Faults: []Fault{{Kind: Kind(99)}}}, Target{Kernel: k}},
		{"negative start", Plan{Faults: []Fault{{Kind: CPUOffline, Start: -1}}}, Target{Kernel: k}},
		{"churn without probes", ProbeChurnPlan(0, time.Millisecond), Target{Kernel: k}},
	}
	for _, c := range cases {
		if _, err := Arm(c.plan, c.tgt); err == nil {
			t.Errorf("%s: Arm accepted invalid input", c.name)
		}
	}
}

// TestArmClearLeavesNoTrace arms a multi-fault plan and clears it before
// any fault starts: no events may remain pending and nothing may have
// been applied.
func TestArmClearLeavesNoTrace(t *testing.T) {
	env, k := testKernel(4)
	defer env.Shutdown()
	plan := Plan{Name: "mix", Seed: 9, Faults: []Fault{
		{Kind: CPUOffline, Start: time.Second, Duration: time.Second},
		{Kind: MigrationStorm, Start: time.Second},
		{Kind: ClockJitter, Start: time.Second},
		{Kind: NoisyNeighbor, Start: time.Second},
		{Kind: RingStall, Start: time.Second, Duration: time.Second},
	}}
	before := env.Pending()
	c := MustArm(plan, Target{Kernel: k})
	c.Clear()
	c.Clear() // idempotent
	if got := env.Pending(); got != before {
		t.Fatalf("pending events after arm+clear = %d, want %d", got, before)
	}
	if len(c.Applied()) != 0 {
		t.Fatalf("cleared plan applied faults: %v", c.Applied())
	}
	env.RunFor(3 * time.Second)
	if k.OnlineCPUs() != 4 || k.Tracer().Runs() != 0 {
		t.Fatal("cleared plan still perturbed the kernel")
	}
}

func TestCPUOfflineWindow(t *testing.T) {
	env, k := testKernel(4)
	defer env.Shutdown()
	plan := Plan{Faults: []Fault{{Kind: CPUOffline, Start: time.Millisecond, Duration: 2 * time.Millisecond, CPUs: 2}}}
	MustArm(plan, Target{Kernel: k})
	var during, after int
	env.Schedule(1500*time.Microsecond, func() { during = k.OnlineCPUs() })
	env.Schedule(3500*time.Microsecond, func() { after = k.OnlineCPUs() })
	env.RunFor(5 * time.Millisecond)
	if during != 2 || after != 4 {
		t.Fatalf("online CPUs during/after window = %d/%d, want 2/4", during, after)
	}
}

func TestMigrationStormTicksAndStops(t *testing.T) {
	env, k := testKernel(2)
	defer env.Shutdown()
	plan := Plan{Faults: []Fault{{Kind: MigrationStorm, Period: time.Millisecond, Duration: 5 * time.Millisecond}}}
	c := MustArm(plan, Target{Kernel: k})
	env.RunFor(20 * time.Millisecond)
	got := c.Applied()["affinity-flush"]
	if got < 4 || got > 6 {
		t.Fatalf("storm flushed %d times over a 5ms window at 1ms period", got)
	}
}

func TestClockJitterBoundedMonotone(t *testing.T) {
	env, k := testKernel(1)
	defer env.Shutdown()
	amp := 5 * time.Microsecond
	c := MustArm(ClockJitterPlan(amp), Target{Kernel: k})
	var last uint64
	for i := 0; i < 200; i++ {
		env.RunFor(time.Microsecond)
		raw := uint64(env.Now())
		got := k.Tracer().KtimeGetNS()
		if got < last {
			t.Fatalf("warped clock went backwards: %d after %d", got, last)
		}
		if got < raw {
			t.Fatalf("warped clock %d below raw %d", got, raw)
		}
		if got > raw+uint64(amp) && got != last {
			t.Fatalf("skew out of range: raw=%d got=%d", raw, got)
		}
		last = got
	}
	c.Clear()
	if got, raw := k.Tracer().KtimeGetNS(), uint64(env.Now()); got != raw {
		t.Fatalf("clock still warped after Clear: %d != %d", got, raw)
	}
}

// TestClockJitterReplay arms the same plan on two identical kernels and
// checks the warped readings match call-for-call.
func TestClockJitterReplay(t *testing.T) {
	read := func() []uint64 {
		env, k := testKernel(1)
		defer env.Shutdown()
		MustArm(ClockJitterPlan(3*time.Microsecond), Target{Kernel: k})
		var out []uint64
		for i := 0; i < 50; i++ {
			env.RunFor(time.Microsecond)
			out = append(out, k.Tracer().KtimeGetNS())
		}
		return out
	}
	if a, b := read(), read(); !reflect.DeepEqual(a, b) {
		t.Fatalf("jitter sequence not reproducible:\n%v\n%v", a, b)
	}
}

func TestNoisyNeighborFloodsThenStops(t *testing.T) {
	env, k := testKernel(2)
	defer env.Shutdown()
	var calls int
	k.Tracer().AddListener(func(ev kernel.SyscallEvent) {
		if ev.Enter && ev.Thread.Process().Name() == "neighbor" {
			calls++
		}
	})
	plan := Plan{Faults: []Fault{{
		Kind: NoisyNeighbor, Start: time.Millisecond, Duration: 4 * time.Millisecond,
		Threads: 2, Period: 200 * time.Microsecond, Burn: 20 * time.Microsecond,
	}}}
	MustArm(plan, Target{Kernel: k})
	env.RunFor(5 * time.Millisecond)
	during := calls
	if during == 0 {
		t.Fatal("neighbor generated no syscalls during its window")
	}
	env.RunFor(5 * time.Millisecond)
	// At most one in-flight iteration lands after the window closes.
	if calls > during+2 {
		t.Fatalf("neighbor kept running after window: %d -> %d", during, calls)
	}
}

func TestProbeChurnDetachesAndReattaches(t *testing.T) {
	env, k := testKernel(1)
	defer env.Shutdown()
	probes := &fakeProbes{attached: true}
	plan := ProbeChurnPlan(time.Millisecond, 2*time.Millisecond)
	MustArm(plan, Target{Kernel: k, Probes: probes})
	var midAttached bool
	env.Schedule(2*time.Millisecond, func() { midAttached = probes.attached })
	env.RunFor(5 * time.Millisecond)
	if midAttached {
		t.Fatal("probes still attached inside churn window")
	}
	if probes.detaches != 1 || probes.reattaches != 1 || !probes.attached {
		t.Fatalf("churn bookkeeping: %+v", probes)
	}
}

func TestRingStallWindow(t *testing.T) {
	env, k := testKernel(1)
	defer env.Shutdown()
	c := MustArm(RingStallPlan(time.Millisecond, 2*time.Millisecond), Target{Kernel: k})
	var during, after bool
	env.Schedule(2*time.Millisecond, func() { during = c.RingStalled() })
	env.Schedule(4*time.Millisecond, func() { after = c.RingStalled() })
	env.RunFor(5 * time.Millisecond)
	if !during || after {
		t.Fatalf("RingStalled during/after = %v/%v, want true/false", during, after)
	}
}

// TestClearUndoesActiveFaults opens indefinite faults (Duration 0) and
// checks Clear restores the kernel mid-window.
func TestClearUndoesActiveFaults(t *testing.T) {
	env, k := testKernel(4)
	defer env.Shutdown()
	probes := &fakeProbes{attached: true}
	plan := Plan{Seed: 3, Faults: []Fault{
		{Kind: CPUOffline, CPUs: 2},
		{Kind: ClockJitter},
		{Kind: MigrationStorm},
		{Kind: ProbeChurn},
		{Kind: RingStall},
	}}
	c := MustArm(plan, Target{Kernel: k, Probes: probes})
	env.RunFor(2 * time.Millisecond)
	if k.OnlineCPUs() != 2 || probes.attached || !c.RingStalled() {
		t.Fatalf("faults not active: cpus=%d probes=%+v", k.OnlineCPUs(), probes)
	}
	c.Clear()
	if k.OnlineCPUs() != 4 || !probes.attached || c.RingStalled() {
		t.Fatalf("Clear did not restore: cpus=%d probes=%+v stalled=%v",
			k.OnlineCPUs(), probes, c.RingStalled())
	}
	if got, raw := k.Tracer().KtimeGetNS(), uint64(env.Now()); got != raw {
		t.Fatalf("clock still warped after Clear")
	}
	flushes := c.Applied()["affinity-flush"]
	env.RunFor(5 * time.Millisecond)
	if c.Applied()["affinity-flush"] != flushes {
		t.Fatal("storm still ticking after Clear")
	}
}

// TestPlanWindows: ground-truth intervals come straight from the
// schedule — closed windows carry [Start, Start+Duration), open ones
// (Duration 0) run until Clear.
func TestPlanWindows(t *testing.T) {
	if w := Baseline().Windows(); w != nil {
		t.Fatalf("baseline Windows() = %v, want nil", w)
	}
	plan := Plan{Faults: []Fault{
		{Kind: CPUOffline, Start: time.Second, Duration: 2 * time.Second},
		{Kind: NoisyNeighbor, Start: 500 * time.Millisecond},
	}}
	want := []Window{
		{Kind: CPUOffline, Start: time.Second, End: 3 * time.Second},
		{Kind: NoisyNeighbor, Start: 500 * time.Millisecond, End: 500 * time.Millisecond, Open: true},
	}
	if got := plan.Windows(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Windows() = %v, want %v", got, want)
	}
}

func TestWindowContains(t *testing.T) {
	closed := Window{Kind: CPUOffline, Start: time.Second, End: 3 * time.Second}
	for _, c := range []struct {
		at   time.Duration
		want bool
	}{
		{0, false}, {time.Second, true}, {2 * time.Second, true},
		{3 * time.Second, false}, {4 * time.Second, false},
	} {
		if got := closed.Contains(c.at); got != c.want {
			t.Errorf("closed.Contains(%v) = %v, want %v", c.at, got, c.want)
		}
	}
	open := Window{Kind: NoisyNeighbor, Start: time.Second, End: time.Second, Open: true}
	if open.Contains(500*time.Millisecond) || !open.Contains(time.Hour) {
		t.Fatal("open window must contain everything from Start on")
	}
}

// TestNetemShiftWindow: the link override appears at the window start
// and is removed at the end; arming requires a target network and a
// non-zero config.
func TestNetemShiftWindow(t *testing.T) {
	env, k := testKernel(2)
	defer env.Shutdown()
	net := netsim.New(env)
	cfg := netsim.Config{Delay: 10 * time.Millisecond}

	if _, err := Arm(NetemShiftPlan(0, time.Second, cfg), Target{Kernel: k}); err == nil {
		t.Fatal("Arm accepted netem-shift without a target network")
	}
	bad := Plan{Faults: []Fault{{Kind: NetemShift}}}
	if _, err := Arm(bad, Target{Kernel: k, Net: net}); err == nil {
		t.Fatal("Arm accepted netem-shift with a zero link config")
	}

	plan := NetemShiftPlan(time.Millisecond, 2*time.Millisecond, cfg)
	c := MustArm(plan, Target{Kernel: k, Net: net})
	var during, after bool
	env.Schedule(1500*time.Microsecond, func() { during = net.Shaped() })
	env.Schedule(3500*time.Microsecond, func() { after = net.Shaped() })
	env.RunFor(5 * time.Millisecond)
	if !during || after {
		t.Fatalf("Shaped() during/after window = %v/%v, want true/false", during, after)
	}
	if got := c.Applied()["netem-shift"]; got != 1 {
		t.Fatalf("applied netem-shift %d times, want 1", got)
	}
}

// TestNetemShiftClearRestores: Clear mid-window removes the override.
func TestNetemShiftClearRestores(t *testing.T) {
	env, k := testKernel(2)
	defer env.Shutdown()
	net := netsim.New(env)
	c := MustArm(NetemShiftPlan(0, 0, netsim.Config{Loss: 0.5}), Target{Kernel: k, Net: net})
	env.RunFor(time.Millisecond)
	if !net.Shaped() {
		t.Fatal("open netem-shift window not applied")
	}
	c.Clear()
	if net.Shaped() {
		t.Fatal("Clear left the link override in place")
	}
}
