package faults

import (
	"fmt"
	"math/rand"
	"time"

	"reqlens/internal/kernel"
	"reqlens/internal/netsim"
	"reqlens/internal/sim"
)

// ProbeSet is the slice of the observer API ProbeChurn needs; the core
// package's Observer satisfies it.
type ProbeSet interface {
	Detach()
	Reattach() error
}

// Target names what a plan perturbs.
type Target struct {
	// Kernel is the machine whose scheduler and tracer the injectors
	// hook (required).
	Kernel *kernel.Kernel
	// Probes is the attached batch observer, required only for plans
	// containing ProbeChurn faults.
	Probes ProbeSet
	// Net is the network whose links NetemShift reshapes, required only
	// for plans containing NetemShift faults.
	Net *netsim.Network
}

// injector is one armed fault instance with its private random stream.
type injector struct {
	f      Fault
	rng    *rand.Rand
	active bool
	stop   bool       // polled by NoisyNeighbor tenant threads
	tick   *sim.Event // MigrationStorm's pending flush
}

// Controller is an armed plan: it owns the scheduled events and can
// undo everything with Clear.
type Controller struct {
	plan    Plan
	tgt     Target
	events  []*sim.Event
	injs    []*injector
	stalls  int // active RingStall windows
	applied map[string]int
	lastErr error
	cleared bool
}

// faultSeed derives an injector's private seed from the plan seed and
// fault index only, so streams are independent of arming order and of
// every other RNG in the simulation.
func faultSeed(seed int64, i int) int64 {
	x := uint64(seed)*0x9E3779B97F4A7C15 + uint64(i+1)*0xBF58476D1CE4E5B9
	x ^= x >> 31
	return int64(x & (1<<63 - 1))
}

// Arm validates plan and schedules its faults on tgt's event loop at
// offsets relative to now. It consumes no simulation entropy: arming
// (or arming then clearing) never changes what an unfaulted run sees.
func Arm(plan Plan, tgt Target) (*Controller, error) {
	if tgt.Kernel == nil {
		return nil, fmt.Errorf("faults: plan %q: nil target kernel", plan.Name)
	}
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	for _, f := range plan.Faults {
		if f.Kind == ProbeChurn && tgt.Probes == nil {
			return nil, fmt.Errorf("faults: plan %q: probe-churn needs an attached observer", plan.Name)
		}
		if f.Kind == NetemShift && tgt.Net == nil {
			return nil, fmt.Errorf("faults: plan %q: netem-shift needs a target network", plan.Name)
		}
	}
	c := &Controller{plan: plan, tgt: tgt, applied: make(map[string]int)}
	env := tgt.Kernel.Env()
	for i, f := range plan.Faults {
		inj := &injector{f: f.withDefaults(), rng: rand.New(rand.NewSource(faultSeed(plan.Seed, i)))}
		c.injs = append(c.injs, inj)
		c.events = append(c.events, env.Schedule(f.Start, func() { c.start(inj) }))
		if f.Duration > 0 {
			c.events = append(c.events, env.Schedule(f.Start+f.Duration, func() { c.end(inj) }))
		}
	}
	return c, nil
}

// MustArm is Arm but panics on error.
func MustArm(plan Plan, tgt Target) *Controller {
	c, err := Arm(plan, tgt)
	if err != nil {
		panic(err)
	}
	return c
}

func (c *Controller) note(what string) { c.applied[what]++ }

func (c *Controller) start(inj *injector) {
	if inj.active || c.cleared {
		return
	}
	inj.active = true
	c.note(inj.f.Kind.String())
	k := c.tgt.Kernel
	switch inj.f.Kind {
	case CPUOffline:
		k.OfflineCPUs(inj.f.CPUs)
	case MigrationStorm:
		c.flush(inj)
	case ClockJitter:
		amp := int64(inj.f.Amplitude)
		var last uint64
		k.Tracer().SetClockWarp(func(raw uint64) uint64 {
			// Non-negative skew, floored at the previous reading:
			// jitter must not make the probe clock run backwards or
			// the probes' unsigned deltas would wrap.
			out := raw + uint64(inj.rng.Int63n(amp))
			if out < last {
				out = last
			}
			last = out
			return out
		})
	case NoisyNeighbor:
		c.spawnNeighbor(inj)
	case RingStall:
		c.stalls++
	case ProbeChurn:
		c.tgt.Probes.Detach()
	case NetemShift:
		c.tgt.Net.Reshape(inj.f.Netem)
	}
}

func (c *Controller) end(inj *injector) {
	if !inj.active {
		return
	}
	inj.active = false
	k := c.tgt.Kernel
	switch inj.f.Kind {
	case CPUOffline:
		// Restores every offlined CPU: concurrent CPUOffline windows
		// do not compose (the standard plans never overlap them).
		k.OnlineAllCPUs()
	case MigrationStorm:
		if inj.tick != nil {
			inj.tick.Cancel()
			inj.tick = nil
		}
	case ClockJitter:
		k.Tracer().SetClockWarp(nil)
	case NoisyNeighbor:
		inj.stop = true
	case RingStall:
		c.stalls--
	case ProbeChurn:
		if err := c.tgt.Probes.Reattach(); err != nil {
			c.lastErr = err
		}
	case NetemShift:
		c.tgt.Net.ClearReshape()
	}
}

// flush performs one affinity flush and schedules the next.
func (c *Controller) flush(inj *injector) {
	if !inj.active || c.cleared {
		return
	}
	c.tgt.Kernel.FlushCPUAffinity()
	c.note("affinity-flush")
	inj.tick = c.tgt.Kernel.Env().Schedule(inj.f.Period, func() { c.flush(inj) })
}

// spawnNeighbor launches the background tenant: Threads phase-staggered
// threads, each looping a send-family syscall with a CPU burn, paced at
// Period. They stop at the fault window's end (or Clear).
func (c *Controller) spawnNeighbor(inj *injector) {
	proc := c.tgt.Kernel.NewProcess("neighbor")
	for i := 0; i < inj.f.Threads; i++ {
		phase := time.Duration(i) * inj.f.Period / time.Duration(inj.f.Threads)
		proc.SpawnThread(fmt.Sprintf("noise%d", i), func(t *kernel.Thread) {
			t.Sleep(phase)
			for !inj.stop {
				t.InvokeFast(kernel.SysSendto, [6]uint64{}, func() int64 {
					t.Compute(inj.f.Burn)
					return 0
				})
				t.Sleep(inj.f.Period)
			}
		})
	}
}

// RingStalled reports whether a RingStall window is open; the harness
// skips streaming drains while true.
func (c *Controller) RingStalled() bool { return c.stalls > 0 }

// Plan returns the armed plan.
func (c *Controller) Plan() Plan { return c.plan }

// Applied returns activation counts per injector kind (plus one
// "affinity-flush" entry per storm tick), for reports and tests.
func (c *Controller) Applied() map[string]int {
	out := make(map[string]int, len(c.applied))
	for k, v := range c.applied {
		out[k] = v
	}
	return out
}

// Err returns the first undo failure (probe reattach), if any.
func (c *Controller) Err() error { return c.lastErr }

// Clear cancels every pending injection and undoes the active ones,
// returning the kernel to its unfaulted configuration. Idempotent.
func (c *Controller) Clear() {
	if c.cleared {
		return
	}
	c.cleared = true
	for _, ev := range c.events {
		ev.Cancel()
	}
	for _, inj := range c.injs {
		if inj.active {
			c.end(inj)
		}
	}
}
