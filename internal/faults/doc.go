// Package faults is the deterministic fault-injection subsystem: it
// perturbs the kernel side of the simulation on a seed-driven schedule
// and lets experiments measure whether the probe-derived metrics stay
// put.
//
// A Plan is a composable schedule of injectors — CPU hotplug/offline
// windows, thread-migration storms, clock jitter on the tracepoint
// timestamp, noisy-neighbor syscall floods from a background tenant,
// ring-buffer pressure stalls, and mid-run probe detach/reattach — plus
// an optional netem link configuration for the paper's original
// network-side perturbations. Arm schedules a plan's faults on a target
// kernel's event loop; Clear cancels pending injections and undoes
// active ones.
//
// Determinism: every injector draws randomness from a private stream
// derived only from (Plan.Seed, fault index), never from the
// simulation's root RNG, and arming a plan schedules events without
// consuming entropy. Arming and immediately clearing a plan therefore
// leaves the simulation bit-identical to never having armed it, and a
// given (plan, rig seed) pair replays the exact same perturbation
// sequence on every run and at any harness Parallelism.
package faults
