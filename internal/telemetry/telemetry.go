package telemetry

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// This file is the metrics registry: named, typed instruments with a
// lock-free hot path. Two properties are load-bearing for the rest of
// the repo:
//
//   - Nil safety. Every instrument method and every Registry method is a
//     no-op (or zero) on a nil receiver. Instrumented code therefore
//     holds plain instrument pointers that stay nil when telemetry is
//     disabled, and the disabled hot path costs one predictable nil
//     check — no branches on a config struct, no interface calls, no
//     allocation. The golden-window tests pin that this path cannot
//     perturb results.
//
//   - Commutative merges. Counters and histograms fold by addition and
//     gauges by summation, so per-rig registries merged into a run-level
//     registry produce totals independent of completion order — the
//     parallel engine can merge points as they finish and still report
//     deterministic counts for a fixed seed.

// Counter is a monotonically increasing uint64, safe for concurrent use.
// A nil *Counter discards all updates.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous int64 value, safe for concurrent use. A nil
// *Gauge discards all updates.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add moves the value by d (negative to decrement).
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v.Add(d)
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// FloatGauge is an instantaneous float64 value, safe for concurrent
// use. It exists for the scrape/merge plane: per-node exporters publish
// derived request-level signals (observed RPS, send-delta variance)
// that have no exact integer representation. A nil *FloatGauge discards
// all updates.
type FloatGauge struct {
	bits atomic.Uint64 // math.Float64bits of the value
}

// Set replaces the value.
func (g *FloatGauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add moves the value by d. Unlike Set it takes the registration mutex
// path's atomicity per call, not across calls: concurrent Adds are each
// applied exactly once (CAS loop).
func (g *FloatGauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *FloatGauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram bucket geometry: 64 base-2 exponents x histSub linear
// sub-buckets, the same log-linear scheme as stats.Histogram but with
// atomic buckets and a coarser sub-bucket count (worst-case relative
// quantile error 1/histSub = 12.5%), keeping one histogram at ~4 KiB.
const (
	histExps = 64
	histSub  = 8
	histSubL = 3 // log2(histSub)
)

// Histogram is a log-linear histogram of non-negative int64 observations
// (typically nanoseconds), safe for concurrent use. A nil *Histogram
// discards all updates.
type Histogram struct {
	buckets [histExps * histSub]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Int64
	max     atomic.Int64
}

func histIndex(v int64) int {
	if v < histSub {
		return int(v)
	}
	exp := 63 - leadingZeros64(uint64(v))
	shift := exp - histSubL
	sub := int((uint64(v) >> uint(shift)) & (histSub - 1))
	return exp*histSub + sub
}

// histLow returns the lower bound of bucket i.
func histLow(i int) int64 {
	exp, sub := i/histSub, i%histSub
	if exp == 0 {
		return int64(sub)
	}
	shift := exp - histSubL
	if shift < 0 {
		shift = 0
	}
	return (int64(1) << uint(exp)) | (int64(sub) << uint(shift))
}

// histHigh returns the largest observation mapping to bucket i — the
// bucket's inclusive `le` bound in the Prometheus export. Using the
// next *index*'s lower bound instead would be wrong: indexes whose
// exponent is below histSubL are unoccupiable (small values map to the
// linear 0..histSub-1 range), so the next occupied bucket is not always
// the next index, and bounds emitted that way go out of order around
// the linear/log seam. TestPromRoundTripProperty pins the ordering.
func histHigh(i int) int64 {
	exp, sub := i/histSub, i%histSub
	if exp < histSubL {
		// Linear region: one integer per bucket (indexes histSub..
		// histSub*histSubL-1 are unoccupiable and never emitted).
		return int64(i)
	}
	shift := exp - histSubL
	return (int64(1) << uint(exp)) + (int64(sub+1) << uint(shift)) - 1
}

func leadingZeros64(x uint64) int {
	n := 0
	for x&(1<<63) == 0 {
		x <<= 1
		n++
		if n == 64 {
			break
		}
	}
	return n
}

// Observe records one value. Negative values count as zero.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[histIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations (0 on nil).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Max returns the largest observation (0 on nil or empty).
func (h *Histogram) Max() int64 {
	if h == nil {
		return 0
	}
	return h.max.Load()
}

// Mean returns the mean observation (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(n)
}

// Quantile returns an approximation of the q-th quantile (lower bucket
// bound, clamped to Max).
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(q*float64(total) + 0.5)
	if target == 0 {
		target = 1
	}
	if target >= total {
		return h.max.Load() // the top quantile is tracked exactly
	}
	var seen uint64
	for i := range h.buckets {
		c := h.buckets[i].Load()
		if c == 0 {
			continue
		}
		seen += c
		if seen >= target {
			v := histLow(i)
			if m := h.max.Load(); v > m {
				v = m
			}
			return v
		}
	}
	return h.max.Load()
}

// merge folds o into h (bucket-wise addition; commutative).
func (h *Histogram) merge(o *Histogram) {
	for i := range h.buckets {
		if c := o.buckets[i].Load(); c > 0 {
			h.buckets[i].Add(c)
		}
	}
	h.count.Add(o.count.Load())
	h.sum.Add(o.sum.Load())
	for {
		om, cur := o.max.Load(), h.max.Load()
		if om <= cur || h.max.CompareAndSwap(cur, om) {
			return
		}
	}
}

// Registry is a named set of instruments. Registration (the Counter,
// Gauge and Histogram lookups) takes a mutex; instrument updates are
// lock-free. A nil *Registry returns nil instruments from every lookup,
// so a single nil check at wiring time disables a whole subsystem's
// telemetry at zero ongoing cost.
type Registry struct {
	mu          sync.Mutex
	counters    map[string]*Counter
	gauges      map[string]*Gauge
	floatGauges map[string]*FloatGauge
	histograms  map[string]*Histogram
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters:    make(map[string]*Counter),
		gauges:      make(map[string]*Gauge),
		floatGauges: make(map[string]*FloatGauge),
		histograms:  make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it on
// first use. Returns nil on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use. Returns nil on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// FloatGauge returns the float gauge registered under name, creating it
// on first use. Returns nil on a nil registry.
func (r *Registry) FloatGauge(name string) *FloatGauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.floatGauges[name]
	if !ok {
		g = &FloatGauge{}
		r.floatGauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it on
// first use. Returns nil on a nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Merge folds every instrument of o into r: counters and histograms add,
// gauges sum. Merging is commutative, so folding per-rig registries into
// a run-level registry yields completion-order-independent totals. Nil
// receiver or nil argument is a no-op.
func (r *Registry) Merge(o *Registry) {
	if r == nil || o == nil {
		return
	}
	// Snapshot o's instrument tables under its lock, then fold without
	// holding both locks at once.
	o.mu.Lock()
	counters := make(map[string]*Counter, len(o.counters))
	for k, v := range o.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(o.gauges))
	for k, v := range o.gauges {
		gauges[k] = v
	}
	fgauges := make(map[string]*FloatGauge, len(o.floatGauges))
	for k, v := range o.floatGauges {
		fgauges[k] = v
	}
	hists := make(map[string]*Histogram, len(o.histograms))
	for k, v := range o.histograms {
		hists[k] = v
	}
	o.mu.Unlock()

	for name, c := range counters {
		r.Counter(name).Add(c.Value())
	}
	for name, g := range gauges {
		r.Gauge(name).Add(g.Value())
	}
	for name, g := range fgauges {
		r.FloatGauge(name).Add(g.Value())
	}
	for name, h := range hists {
		r.Histogram(name).merge(h)
	}
}

// Snapshot flattens the registry into a name -> value map: counters and
// gauges directly, histograms expanded into _count, _sum and _max
// entries. Returns nil on a nil or empty registry — convenient for
// attaching to journal spans.
func (r *Registry) Snapshot() map[string]float64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counters)+len(r.gauges)+len(r.floatGauges)+len(r.histograms) == 0 {
		return nil
	}
	out := make(map[string]float64, len(r.counters)+len(r.gauges)+len(r.floatGauges)+3*len(r.histograms))
	for name, c := range r.counters {
		out[name] = float64(c.Value())
	}
	for name, g := range r.gauges {
		out[name] = float64(g.Value())
	}
	for name, g := range r.floatGauges {
		out[name] = g.Value()
	}
	for name, h := range r.histograms {
		out[name+"_count"] = float64(h.Count())
		out[name+"_sum"] = float64(h.Sum())
		out[name+"_max"] = float64(h.Max())
	}
	return out
}

// names returns the sorted instrument names of each kind (for
// deterministic export ordering).
func (r *Registry) names() (counters, gauges, fgauges, hists []string) {
	for name := range r.counters {
		counters = append(counters, name)
	}
	for name := range r.gauges {
		gauges = append(gauges, name)
	}
	for name := range r.floatGauges {
		fgauges = append(fgauges, name)
	}
	for name := range r.histograms {
		hists = append(hists, name)
	}
	sort.Strings(counters)
	sort.Strings(gauges)
	sort.Strings(fgauges)
	sort.Strings(hists)
	return
}
