package telemetry

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"
	"testing"
)

// The fleet aggregation plane scrapes each node's WriteProm text and
// reconstructs values with ParseProm; a lossy round trip would silently
// corrupt every rollup. These tests pin the contract:
//
//   - every counter, gauge and float-gauge value survives write->parse
//     bit-exactly (float gauges via shortest-form 'g' formatting,
//     integers via base-10 within float64's exact range),
//   - histogram _sum and _count are exact and the le-labelled buckets
//     are emitted in increasing-bound order with non-decreasing
//     cumulative counts capped by _count,
//   - serialization is canonical: equal registries produce identical
//     bytes, so scrape comparisons can be byte-level.

// TestPromRoundTripProperty drives randomized registries through
// WriteProm -> ParseProm and checks every reconstructed value against
// the live instrument.
func TestPromRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		r := New()
		type inst struct {
			name string
			want float64
		}
		var insts []inst

		for i, n := 0, rng.Intn(6); i < n; i++ {
			name := fmt.Sprintf("ctr_%d", i)
			v := rng.Uint64() >> uint(11+rng.Intn(40)) // keep within float64's exact range
			r.Counter(name).Add(v)
			insts = append(insts, inst{name, float64(v)})
		}
		for i, n := 0, rng.Intn(6); i < n; i++ {
			name := fmt.Sprintf("gauge_%d", i)
			v := rng.Int63n(1<<52) - 1<<51
			r.Gauge(name).Set(v)
			insts = append(insts, inst{name, float64(v)})
		}
		for i, n := 0, rng.Intn(6); i < n; i++ {
			name := fmt.Sprintf("fgauge_%d", i)
			// Exercise the formats a node exporter actually emits:
			// rates, variances, tiny and huge magnitudes, negatives.
			v := math.Exp(rng.Float64()*40-20) * float64(1-2*rng.Intn(2))
			if rng.Intn(8) == 0 {
				v = 0
			}
			r.FloatGauge(name).Set(v)
			insts = append(insts, inst{name, v})
		}
		nhist := rng.Intn(3)
		for i := 0; i < nhist; i++ {
			h := r.Histogram(fmt.Sprintf("hist_%d", i))
			for o, n := 0, rng.Intn(200); o < n; o++ {
				h.Observe(rng.Int63n(1 << uint(1+rng.Intn(40))))
			}
		}

		var buf bytes.Buffer
		if err := r.WriteProm(&buf); err != nil {
			t.Fatalf("trial %d: WriteProm: %v", trial, err)
		}
		got, err := ParseProm(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("trial %d: ParseProm: %v\n%s", trial, err, buf.String())
		}

		for _, in := range insts {
			v, ok := got[in.name]
			if !ok {
				t.Fatalf("trial %d: %s missing from parsed export", trial, in.name)
			}
			if v != in.want { // bit-exact, not approximate
				t.Fatalf("trial %d: %s round-tripped %v -> %v", trial, in.name, in.want, v)
			}
		}
		for i := 0; i < nhist; i++ {
			name := fmt.Sprintf("hist_%d", i)
			h := r.Histogram(name)
			if got[name+"_sum"] != float64(h.Sum()) || got[name+"_count"] != float64(h.Count()) {
				t.Fatalf("trial %d: %s sum/count mismatch: parsed (%v, %v) want (%d, %d)",
					trial, name, got[name+"_sum"], got[name+"_count"], h.Sum(), h.Count())
			}
			checkBucketOrdering(t, buf.String(), name, h.Count())
		}

		// Canonical bytes: re-serializing the same registry must be
		// byte-identical (the scraper diffs exports directly).
		var again bytes.Buffer
		if err := r.WriteProm(&again); err != nil {
			t.Fatalf("trial %d: WriteProm (second): %v", trial, err)
		}
		if !bytes.Equal(buf.Bytes(), again.Bytes()) {
			t.Fatalf("trial %d: serialization is not canonical", trial)
		}
	}
}

// checkBucketOrdering scans the raw export for one histogram's
// le-labelled bucket lines and asserts increasing bounds, non-decreasing
// cumulative counts, and a final +Inf bucket equal to _count.
func checkBucketOrdering(t *testing.T, export, name string, count uint64) {
	t.Helper()
	prefix := name + "_bucket{le=\""
	lastBound := int64(-1)
	lastCum := uint64(0)
	sawInf := false
	for _, line := range strings.Split(export, "\n") {
		if !strings.HasPrefix(line, prefix) {
			continue
		}
		rest := strings.TrimPrefix(line, prefix)
		end := strings.Index(rest, "\"}")
		if end < 0 {
			t.Fatalf("%s: malformed bucket line %q", name, line)
		}
		bound, cumStr := rest[:end], strings.TrimSpace(rest[end+2:])
		cum, err := strconv.ParseUint(cumStr, 10, 64)
		if err != nil {
			t.Fatalf("%s: bad cumulative count in %q: %v", name, line, err)
		}
		if cum < lastCum {
			t.Fatalf("%s: cumulative counts decreased (%d after %d) in %q", name, cum, lastCum, line)
		}
		lastCum = cum
		if bound == "+Inf" {
			sawInf = true
			if cum != count {
				t.Fatalf("%s: +Inf bucket %d != count %d", name, cum, count)
			}
			continue
		}
		if sawInf {
			t.Fatalf("%s: finite bucket after +Inf: %q", name, line)
		}
		b, err := strconv.ParseInt(bound, 10, 64)
		if err != nil {
			t.Fatalf("%s: bad bound in %q: %v", name, line, err)
		}
		if b <= lastBound {
			t.Fatalf("%s: bucket bounds not increasing (%d after %d)", name, b, lastBound)
		}
		lastBound = b
	}
	if count > 0 && !sawInf {
		t.Fatalf("%s: no +Inf bucket in export", name)
	}
}

// TestFloatGaugeFormatPinned pins the exact float syntax WriteProm
// emits: strconv.FormatFloat(v, 'g', -1, 64), whose shortest form is
// guaranteed to parse back to the identical bits.
func TestFloatGaugeFormatPinned(t *testing.T) {
	r := New()
	cases := []float64{0, 1, -1, 0.1, 2.5e-09, 1.2345678901234567e+17, 62000.25}
	for i, v := range cases {
		r.FloatGauge(fmt.Sprintf("f_%02d", i)).Set(v)
	}
	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	for i, v := range cases {
		want := fmt.Sprintf("f_%02d %s\n", i, strconv.FormatFloat(v, 'g', -1, 64))
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("export missing pinned line %q:\n%s", want, buf.String())
		}
	}
	got, err := ParseProm(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range cases {
		name := fmt.Sprintf("f_%02d", i)
		if math.Float64bits(got[name]) != math.Float64bits(v) {
			t.Fatalf("%s: parsed %v, want %v (bit-exact)", name, got[name], v)
		}
	}
}

// TestFloatGaugeMergeAndSnapshot covers the registry plumbing the fleet
// merge path relies on: float gauges merge by addition and appear in
// Snapshot.
func TestFloatGaugeMergeAndSnapshot(t *testing.T) {
	a, b := New(), New()
	a.FloatGauge("x").Set(1.5)
	b.FloatGauge("x").Set(2.25)
	b.FloatGauge("y").Add(3)
	a.Merge(b)
	if v := a.FloatGauge("x").Value(); v != 3.75 {
		t.Fatalf("merged x = %v, want 3.75", v)
	}
	snap := a.Snapshot()
	if snap["x"] != 3.75 || snap["y"] != 3 {
		t.Fatalf("snapshot = %v", snap)
	}

	var nilReg *Registry
	if g := nilReg.FloatGauge("z"); g != nil {
		t.Fatal("nil registry must return nil float gauge")
	}
	var nilG *FloatGauge
	nilG.Set(1)
	nilG.Add(1)
	if nilG.Value() != 0 {
		t.Fatal("nil float gauge must read zero")
	}
}
