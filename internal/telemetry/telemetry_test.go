package telemetry

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z")
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(-1)
	h.Observe(100)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 || h.Max() != 0 {
		t.Fatal("nil instruments must read zero")
	}
	if h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Fatal("nil histogram stats must read zero")
	}
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshot must be nil")
	}
	r.Merge(New())
	New().Merge(r)
	if err := r.WriteProm(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}

func TestCounterGauge(t *testing.T) {
	r := New()
	c := r.Counter("reqs_total")
	c.Inc()
	c.Add(9)
	if c.Value() != 10 {
		t.Fatalf("counter = %d, want 10", c.Value())
	}
	if r.Counter("reqs_total") != c {
		t.Fatal("same name must return the same counter")
	}
	g := r.Gauge("inflight")
	g.Set(4)
	g.Add(-3)
	if g.Value() != 1 {
		t.Fatalf("gauge = %d, want 1", g.Value())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := New()
	h := r.Histogram("lat_ns")
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	h.Observe(-5) // counts as zero
	if h.Count() != 1001 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Max() != 1000 {
		t.Fatalf("max = %d", h.Max())
	}
	p50 := h.Quantile(0.5)
	// Log-linear buckets: worst-case relative error 1/histSub.
	if p50 < 350 || p50 > 650 {
		t.Fatalf("p50 = %d, want ~500", p50)
	}
	if q := h.Quantile(1); q != 1000 {
		t.Fatalf("p100 = %d, want 1000 (clamped to max)", q)
	}
	if h.Quantile(0) == 0 && h.Count() > 0 && h.Quantile(0) > h.Max() {
		t.Fatal("q0 out of range")
	}
	if m := h.Mean(); m < 400 || m > 600 {
		t.Fatalf("mean = %v", m)
	}
}

func TestMergeCommutative(t *testing.T) {
	build := func(seed int64) *Registry {
		r := New()
		r.Counter("events").Add(uint64(10 * seed))
		r.Gauge("depth").Add(seed)
		h := r.Histogram("wall")
		for v := int64(1); v <= 100*seed; v++ {
			h.Observe(v)
		}
		return r
	}
	a, b, c := build(1), build(2), build(3)

	ab := New()
	ab.Merge(a)
	ab.Merge(b)
	ab.Merge(c)
	ba := New()
	ba.Merge(c)
	ba.Merge(b)
	ba.Merge(a)

	sa, sb := ab.Snapshot(), ba.Snapshot()
	if len(sa) != len(sb) {
		t.Fatalf("snapshot sizes differ: %d vs %d", len(sa), len(sb))
	}
	for k, v := range sa {
		if sb[k] != v {
			t.Fatalf("merge not commutative at %s: %v vs %v", k, v, sb[k])
		}
	}
	if sa["events"] != 60 || sa["depth"] != 6 || sa["wall_count"] != 600 {
		t.Fatalf("merged totals wrong: %v", sa)
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := New()
	c := r.Counter("n")
	h := r.Histogram("h")
	g := r.Gauge("g")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(int64(i))
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("hist count = %d, want 8000", h.Count())
	}
	if g.Value() != 0 {
		t.Fatalf("gauge = %d, want 0", g.Value())
	}
}

func TestWritePromRoundTrip(t *testing.T) {
	r := New()
	r.Counter("sim_events_total").Add(1234)
	r.Gauge("points_in_flight").Set(3)
	h := r.Histogram("point_wall_ns")
	h.Observe(100)
	h.Observe(200000)

	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"# TYPE sim_events_total counter",
		"sim_events_total 1234",
		"# TYPE points_in_flight gauge",
		"points_in_flight 3",
		"# TYPE point_wall_ns histogram",
		`point_wall_ns_bucket{le="+Inf"} 2`,
		"point_wall_ns_sum 200100",
		"point_wall_ns_count 2",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("prom output missing %q:\n%s", want, text)
		}
	}

	parsed, err := ParseProm(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if parsed["sim_events_total"] != 1234 {
		t.Fatalf("parsed counter = %v", parsed["sim_events_total"])
	}
	if parsed["points_in_flight"] != 3 {
		t.Fatalf("parsed gauge = %v", parsed["points_in_flight"])
	}
	if parsed["point_wall_ns_count"] != 2 {
		t.Fatalf("parsed hist count = %v", parsed["point_wall_ns_count"])
	}
	if parsed[`point_wall_ns_bucket{le="+Inf"}`] != 2 {
		t.Fatalf("parsed +Inf bucket = %v", parsed[`point_wall_ns_bucket{le="+Inf"}`])
	}

	// Deterministic ordering: two registries with equal contents must
	// serialize byte-identically.
	var buf2 bytes.Buffer
	r2 := New()
	r2.Merge(r)
	if err := r2.WriteProm(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Fatal("equal registries serialized differently")
	}
}

func TestParsePromErrors(t *testing.T) {
	if _, err := ParseProm(strings.NewReader("novalue")); err == nil {
		t.Fatal("want error for line without value")
	}
	if _, err := ParseProm(strings.NewReader("x notanumber")); err == nil {
		t.Fatal("want error for non-numeric value")
	}
	m, err := ParseProm(strings.NewReader("\n# comment\n\nx 1\n"))
	if err != nil || m["x"] != 1 {
		t.Fatalf("parse = %v, %v", m, err)
	}
}

func TestHistogramBucketsCoverRange(t *testing.T) {
	h := New().Histogram("h")
	vals := []int64{0, 1, 7, 8, 9, 255, 256, 1 << 20, 1 << 40, 1<<62 + 12345}
	for _, v := range vals {
		h.Observe(v)
	}
	if h.Count() != uint64(len(vals)) {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Max() != 1<<62+12345 {
		t.Fatalf("max = %d", h.Max())
	}
	// Quantile must stay within [0, max] everywhere.
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
		v := h.Quantile(q)
		if v < 0 || v > h.Max() {
			t.Fatalf("quantile(%v) = %d out of range", q, v)
		}
	}
}
