// Package telemetry is reqlens's self-observation layer: a
// zero-dependency metrics registry and span journal for watching the
// simulator stack itself (event loop, scheduler, eBPF VM, ring buffers,
// experiment engine) the way the paper's probes watch a server.
//
// The package mirrors the paper's constraint on its own tooling: the
// observed system must not notice the observer. Concretely:
//
//   - Disabled is free. Every instrument and the registry itself are
//     nil-safe; instrumented hot paths hold nil pointers when telemetry
//     is off, so the only residual cost is a nil check. Nothing here is
//     consulted by simulation logic, so enabling telemetry cannot change
//     experiment results either (the golden-window and parallel
//     determinism tests in internal/harness pin both properties).
//
//   - Hot-path updates are lock-free. Counters and gauges are single
//     atomics; histograms are log-linear atomic bucket arrays
//     (12.5% worst-case quantile error). Registration takes a mutex but
//     happens once, at wiring time.
//
//   - Merges are commutative. Per-rig registries fold into a run-level
//     registry by addition, so totals are independent of the parallel
//     engine's completion order.
//
// Entry points: New (registry), Registry.WriteProm (Prometheus text
// export), NewJournal/Begin/End (JSONL run journal), ReadJournal and
// RenderJournal (the `reqlens telemetry` subcommand).
package telemetry
