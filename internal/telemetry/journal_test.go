package telemetry

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestJournalNilSafety(t *testing.T) {
	var j *Journal
	sp := j.Begin(KindPoint, "x")
	if sp != nil {
		t.Fatal("nil journal must return nil span")
	}
	sp.End(map[string]float64{"a": 1}) // must not panic
}

func TestJournalRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)

	exp := j.Begin(KindExperiment, "fig2 silo")
	pt := j.Begin(KindPoint, "silo level=0.50")
	win := j.Begin(KindWindow, "silo level=0.50 win=0")
	win.End(nil)
	pt.End(map[string]float64{"sim_events_total": 42, "ringbuf_records_dropped_total": 3})
	exp.End(nil)

	recs, err := ReadJournal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("records = %d, want 3", len(recs))
	}
	// Completion order: window, point, experiment.
	if recs[0].Kind != KindWindow || recs[1].Kind != KindPoint || recs[2].Kind != KindExperiment {
		t.Fatalf("kinds = %s,%s,%s", recs[0].Kind, recs[1].Kind, recs[2].Kind)
	}
	if recs[1].Metrics["sim_events_total"] != 42 {
		t.Fatalf("point metrics lost: %v", recs[1].Metrics)
	}
	if recs[1].Name != "silo level=0.50" {
		t.Fatalf("name = %q", recs[1].Name)
	}
	for _, r := range recs {
		if r.StartNS < 0 || r.DurNS < 0 {
			t.Fatalf("negative timing in %+v", r)
		}
	}
	// Span nesting: the experiment span must contain the point span.
	if recs[2].StartNS > recs[1].StartNS {
		t.Fatal("experiment started after its point")
	}
}

func TestJournalConcurrentEmits(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				j.Begin(KindPoint, "p").End(map[string]float64{"w": float64(w)})
			}
		}(w)
	}
	wg.Wait()
	recs, err := ReadJournal(&buf)
	if err != nil {
		t.Fatalf("interleaved writes corrupted the journal: %v", err)
	}
	if len(recs) != 400 {
		t.Fatalf("records = %d, want 400", len(recs))
	}
}

func TestReadJournalErrors(t *testing.T) {
	if _, err := ReadJournal(strings.NewReader("{not json\n")); err == nil {
		t.Fatal("want error on malformed line")
	}
	recs, err := ReadJournal(strings.NewReader("\n\n"))
	if err != nil || len(recs) != 0 {
		t.Fatalf("blank journal: %v, %v", recs, err)
	}
}

func TestRenderJournal(t *testing.T) {
	if out := RenderJournal(nil, 0); !strings.Contains(out, "empty") {
		t.Fatalf("empty render = %q", out)
	}

	var buf bytes.Buffer
	j := NewJournal(&buf)
	exp := j.Begin(KindExperiment, "fig2 silo")
	for i := 0; i < 3; i++ {
		pt := j.Begin(KindPoint, "silo level="+string(rune('1'+i)))
		j.Begin(KindWindow, "w").End(nil)
		pt.End(map[string]float64{
			"sim_events_total":              1000,
			"vm_instructions_total":         500,
			"ringbuf_records_dropped_total": float64(i),
		})
	}
	exp.End(nil)
	recs, err := ReadJournal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	out := RenderJournal(recs, 2)
	for _, want := range []string{"phase", "experiment", "point", "window", "slowest points (top 2)", "sim events"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	// Drops column: 0+1+2 = 3 across the point phase.
	if !strings.Contains(out, "3") {
		t.Fatalf("render missing drop sum:\n%s", out)
	}
}
