package telemetry

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestJournalNilSafety(t *testing.T) {
	var j *Journal
	sp := j.Begin(KindPoint, "x")
	if sp != nil {
		t.Fatal("nil journal must return nil span")
	}
	sp.End(map[string]float64{"a": 1}) // must not panic
}

func TestJournalRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)

	exp := j.Begin(KindExperiment, "fig2 silo")
	pt := j.Begin(KindPoint, "silo level=0.50")
	win := j.Begin(KindWindow, "silo level=0.50 win=0")
	win.End(nil)
	pt.End(map[string]float64{"sim_events_total": 42, "ringbuf_records_dropped_total": 3})
	exp.End(nil)

	recs, err := ReadJournal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("records = %d, want 3", len(recs))
	}
	// Completion order: window, point, experiment.
	if recs[0].Kind != KindWindow || recs[1].Kind != KindPoint || recs[2].Kind != KindExperiment {
		t.Fatalf("kinds = %s,%s,%s", recs[0].Kind, recs[1].Kind, recs[2].Kind)
	}
	if recs[1].Metrics["sim_events_total"] != 42 {
		t.Fatalf("point metrics lost: %v", recs[1].Metrics)
	}
	if recs[1].Name != "silo level=0.50" {
		t.Fatalf("name = %q", recs[1].Name)
	}
	for _, r := range recs {
		if r.StartNS < 0 || r.DurNS < 0 {
			t.Fatalf("negative timing in %+v", r)
		}
	}
	// Span nesting: the experiment span must contain the point span.
	if recs[2].StartNS > recs[1].StartNS {
		t.Fatal("experiment started after its point")
	}
}

func TestJournalConcurrentEmits(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				j.Begin(KindPoint, "p").End(map[string]float64{"w": float64(w)})
			}
		}(w)
	}
	wg.Wait()
	recs, err := ReadJournal(&buf)
	if err != nil {
		t.Fatalf("interleaved writes corrupted the journal: %v", err)
	}
	if len(recs) != 400 {
		t.Fatalf("records = %d, want 400", len(recs))
	}
}

func TestReadJournalErrors(t *testing.T) {
	// A malformed line followed by a well-formed one is corruption.
	corrupt := "{not json\n" + `{"kind":"point","name":"p","start_ns":1,"dur_ns":1}` + "\n"
	if _, err := ReadJournal(strings.NewReader(corrupt)); err == nil {
		t.Fatal("want error on mid-file malformed line")
	}
	recs, err := ReadJournal(strings.NewReader("\n\n"))
	if err != nil || len(recs) != 0 {
		t.Fatalf("blank journal: %v, %v", recs, err)
	}
}

// TestReadJournalTornTail: a writer killed mid-append leaves a partial
// final line; the reader drops it and keeps everything before it.
func TestReadJournalTornTail(t *testing.T) {
	whole := `{"kind":"checkpoint","name":"a","start_ns":1,"status":"ok"}` + "\n"
	for _, tail := range []string{
		`{"kind":"checkpo`,          // torn mid-key
		`{"kind":"checkpoint","na`,  // torn mid-record
		"{not json",                 // garbage tail
		`{"kind":"checkpo` + "\n\n", // torn line then blank lines
	} {
		recs, err := ReadJournal(strings.NewReader(whole + tail))
		if err != nil {
			t.Fatalf("tail %q must be tolerated: %v", tail, err)
		}
		if len(recs) != 1 || recs[0].Name != "a" {
			t.Fatalf("tail %q: records = %+v", tail, recs)
		}
	}
	// A journal that is nothing but a torn line reads as empty.
	recs, err := ReadJournal(strings.NewReader("{not json\n"))
	if err != nil || len(recs) != 0 {
		t.Fatalf("lone torn line: %v, %v", recs, err)
	}
}

// TestFileJournalAtomicCheckpoints: every checkpoint is appended and
// fsynced whole, so after each Checkpoint call the on-disk journal is
// complete and parseable up to and including that checkpoint.
func TestFileJournalAtomicCheckpoints(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("journal file must exist immediately: %v", err)
	}

	j.RunHeader("fig2", []string{"-workload", "silo", "-seed", "42"})
	for i := 0; i < 3; i++ {
		j.Checkpoint(Record{
			Name: "silo level=" + string(rune('1'+i)), Index: i, Seed: 42,
			Attempts: 1, Status: CheckpointOK,
			Result: json.RawMessage(`{"v":` + string(rune('0'+i)) + `}`),
		})
		// After each checkpoint the path must hold a complete journal.
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		recs, err := ReadJournal(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("after checkpoint %d: %v", i, err)
		}
		if len(recs) != i+2 {
			t.Fatalf("after checkpoint %d: %d records", i, len(recs))
		}
	}
	// Span records buffer until Close.
	j.Begin(KindPoint, "tail").End(nil)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	recs, err := ReadJournal(bytes.NewReader(data))
	if err != nil || len(recs) != 5 {
		t.Fatalf("final journal: %d records, %v", len(recs), err)
	}

	hdr, ok := LastRunHeader(recs)
	if !ok || hdr.Name != "fig2" || len(hdr.Args) != 4 {
		t.Fatalf("run header = %+v, %v", hdr, ok)
	}
	cps := Checkpoints(recs)
	if len(cps) != 3 {
		t.Fatalf("checkpoints = %v", cps)
	}
	cp := cps[CheckpointKey("", "silo level=2")]
	if cp.Index != 1 || cp.Seed != 42 || string(cp.Result) != `{"v":1}` {
		t.Fatalf("checkpoint = %+v", cp)
	}
	// No temp file left behind.
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file lingers: %v", err)
	}
}

// TestResumeJournalPreserves: reopening a journal for a resumed run
// keeps the prior run's records on disk — before the resumed process
// writes anything, after a simulated second kill, and with a torn tail
// normalized away so later appends cannot strand a malformed line
// mid-file.
func TestResumeJournalPreserves(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.RunHeader("fig2", []string{"-seed", "42"})
	j.Checkpoint(Record{Name: "a", Seed: 42, Status: CheckpointOK, Result: json.RawMessage(`{"v":1}`)})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the tail as a SIGKILL mid-append would.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"kind":"checkpo`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, err := ResumeJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	// The prior run's records must be readable immediately, before the
	// resumed run emits anything (the second-kill crash window).
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := ReadJournal(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || len(Checkpoints(recs)) != 1 {
		t.Fatalf("prior records lost on reopen: %+v", recs)
	}

	// New records append after the preserved ones.
	j2.RunHeader("fig2", []string{"-seed", "42"})
	j2.Checkpoint(Record{Name: "b", Seed: 42, Status: CheckpointOK, Result: json.RawMessage(`{"v":2}`)})
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	data, _ = os.ReadFile(path)
	recs, err = ReadJournal(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("resumed journal unreadable (stranded torn line?): %v", err)
	}
	if len(recs) != 4 || len(Checkpoints(recs)) != 2 {
		t.Fatalf("resumed journal = %+v", recs)
	}
	if hdr, ok := LastRunHeader(recs); !ok || hdr.Name != "fig2" {
		t.Fatalf("run header = %+v, %v", hdr, ok)
	}
}

// TestCheckpointsSemantics: failed checkpoints are excluded, a later
// checkpoint for the same (experiment, label) wins (resume-of-resume),
// and the same label under different experiments stays distinct — two
// experiments in one journal must not shadow each other's results.
func TestCheckpointsSemantics(t *testing.T) {
	recs := []Record{
		{Kind: KindCheckpoint, Name: "a", Status: CheckpointFailed, Error: "boom"},
		{Kind: KindCheckpoint, Name: "b", Status: CheckpointOK, Index: 1},
		{Kind: KindCheckpoint, Name: "b", Status: CheckpointOK, Index: 2},
		{Kind: KindCheckpoint, Experiment: "sweep", Name: "b", Status: CheckpointOK, Index: 7},
		{Kind: KindPoint, Name: "c"},
	}
	cps := Checkpoints(recs)
	if len(cps) != 2 {
		t.Fatalf("checkpoints = %v", cps)
	}
	if cps[CheckpointKey("", "b")].Index != 2 {
		t.Fatalf("last checkpoint must win: %+v", cps[CheckpointKey("", "b")])
	}
	if cps[CheckpointKey("sweep", "b")].Index != 7 {
		t.Fatalf("experiment namespace collapsed: %+v", cps)
	}
	if _, ok := LastRunHeader(recs); ok {
		t.Fatal("no run header present")
	}
}

// TestRenderJournalUnknownKinds: checkpoint/run records flow through the
// renderer's generic phase path without crashing it.
func TestRenderJournalCheckpointKinds(t *testing.T) {
	recs := []Record{
		{Kind: KindRun, Name: "fig2"},
		{Kind: KindCheckpoint, Name: "a", Status: CheckpointOK},
		{Kind: KindPoint, Name: "a", DurNS: 100},
	}
	out := RenderJournal(recs, 5)
	for _, want := range []string{"checkpoint", "run", "point"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestRenderJournal(t *testing.T) {
	if out := RenderJournal(nil, 0); !strings.Contains(out, "empty") {
		t.Fatalf("empty render = %q", out)
	}

	var buf bytes.Buffer
	j := NewJournal(&buf)
	exp := j.Begin(KindExperiment, "fig2 silo")
	for i := 0; i < 3; i++ {
		pt := j.Begin(KindPoint, "silo level="+string(rune('1'+i)))
		j.Begin(KindWindow, "w").End(nil)
		pt.End(map[string]float64{
			"sim_events_total":              1000,
			"vm_instructions_total":         500,
			"ringbuf_records_dropped_total": float64(i),
		})
	}
	exp.End(nil)
	recs, err := ReadJournal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	out := RenderJournal(recs, 2)
	for _, want := range []string{"phase", "experiment", "point", "window", "slowest points (top 2)", "sim events"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	// Drops column: 0+1+2 = 3 across the point phase.
	if !strings.Contains(out, "3") {
		t.Fatalf("render missing drop sum:\n%s", out)
	}
}
