package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Span kinds emitted by the harness. The hierarchy is
// experiment -> point (one workload x level on a private rig) -> window
// (one estimation window inside a point).
const (
	KindExperiment = "experiment"
	KindPoint      = "point"
	KindWindow     = "window"
)

// Record is one completed span in the run journal: a JSONL line carrying
// monotonic wall-clock timing and, for point spans, a snapshot of the
// rig's metric registry. Journals describe the *execution* of a run
// (real time, real scheduling) and are therefore not deterministic;
// experiment results never read them.
type Record struct {
	Kind    string             `json:"kind"`
	Name    string             `json:"name"`
	StartNS int64              `json:"start_ns"` // monotonic ns since journal creation
	DurNS   int64              `json:"dur_ns"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Start returns the span start as a duration since journal creation.
func (r Record) Start() time.Duration { return time.Duration(r.StartNS) }

// Dur returns the span duration.
func (r Record) Dur() time.Duration { return time.Duration(r.DurNS) }

// Journal serializes span records to an io.Writer as JSONL. It is safe
// for concurrent use (the parallel engine completes points on several
// goroutines); records are written whole, one per line, in completion
// order. A nil *Journal discards everything, which is how telemetry
// stays out of undashboarded runs.
type Journal struct {
	mu    sync.Mutex
	w     io.Writer
	epoch time.Time
}

// NewJournal returns a journal writing to w. Timestamps are monotonic
// durations since this call.
func NewJournal(w io.Writer) *Journal {
	return &Journal{w: w, epoch: time.Now()}
}

// Span is an open interval started by Begin. End emits the record. A nil
// *Span (from a nil journal) is inert.
type Span struct {
	j     *Journal
	kind  string
	name  string
	start time.Duration
}

// Begin opens a span of the given kind. Returns nil (inert) on a nil
// journal.
func (j *Journal) Begin(kind, name string) *Span {
	if j == nil {
		return nil
	}
	return &Span{j: j, kind: kind, name: name, start: time.Since(j.epoch)}
}

// End closes the span and writes its record, attaching the given metric
// snapshot (may be nil). No-op on a nil span.
func (s *Span) End(metrics map[string]float64) {
	if s == nil {
		return
	}
	now := time.Since(s.j.epoch)
	s.j.emit(Record{
		Kind:    s.kind,
		Name:    s.name,
		StartNS: int64(s.start),
		DurNS:   int64(now - s.start),
		Metrics: metrics,
	})
}

func (j *Journal) emit(rec Record) {
	line, err := json.Marshal(rec)
	if err != nil {
		return // a map[string]float64 cannot fail to marshal; defensive
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.w.Write(line)
	j.w.Write([]byte{'\n'})
}

// ReadJournal parses a JSONL journal back into records, in file order.
// Blank lines are skipped; a malformed line is an error.
func ReadJournal(r io.Reader) ([]Record, error) {
	var out []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var rec Record
		if err := json.Unmarshal([]byte(text), &rec); err != nil {
			return nil, fmt.Errorf("telemetry: journal line %d: %v", line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// journalDropKeys are the metric names whose sum across point spans is
// reported as "drops" in the phase table.
var journalDropKeys = []string{"ringbuf_records_dropped_total", "stream_dropped_total"}

// RenderJournal formats a journal as (1) a per-phase summary — span
// count, total/mean/max wall-clock, simulated events folded, ring drops
// — and (2) the top-N slowest point spans with their headline metrics.
func RenderJournal(recs []Record, topN int) string {
	if topN <= 0 {
		topN = 10
	}
	var b strings.Builder
	if len(recs) == 0 {
		return "journal: empty\n"
	}

	// Phase table, in hierarchy order then any unknown kinds.
	order := []string{KindExperiment, KindPoint, KindWindow}
	byKind := map[string][]Record{}
	for _, r := range recs {
		byKind[r.Kind] = append(byKind[r.Kind], r)
	}
	var kinds []string
	for _, k := range order {
		if len(byKind[k]) > 0 {
			kinds = append(kinds, k)
		}
	}
	var extra []string
	for k := range byKind {
		known := false
		for _, o := range order {
			if k == o {
				known = true
			}
		}
		if !known {
			extra = append(extra, k)
		}
	}
	sort.Strings(extra)
	kinds = append(kinds, extra...)

	fmt.Fprintf(&b, "%-10s | %5s | %10s | %10s | %10s | %12s | %8s\n",
		"phase", "spans", "total", "mean", "max", "sim events", "drops")
	for _, k := range kinds {
		rs := byKind[k]
		var total, max time.Duration
		var events, drops float64
		for _, r := range rs {
			d := r.Dur()
			total += d
			if d > max {
				max = d
			}
			events += r.Metrics["sim_events_total"]
			for _, key := range journalDropKeys {
				drops += r.Metrics[key]
			}
		}
		mean := total / time.Duration(len(rs))
		fmt.Fprintf(&b, "%-10s | %5d | %10v | %10v | %10v | %12.0f | %8.0f\n",
			k, len(rs), total.Round(time.Microsecond), mean.Round(time.Microsecond),
			max.Round(time.Microsecond), events, drops)
	}

	// Throughput: simulated events per wall-clock second over point spans
	// (each point runs on a private rig, so sums are meaningful).
	points := byKind[KindPoint]
	if len(points) > 0 {
		var wall time.Duration
		var events float64
		for _, r := range points {
			wall += r.Dur()
			events += r.Metrics["sim_events_total"]
		}
		if wall > 0 && events > 0 {
			fmt.Fprintf(&b, "point throughput: %.0f sim events/s of wall-clock\n", events/wall.Seconds())
		}

		sorted := append([]Record(nil), points...)
		sort.Slice(sorted, func(i, j int) bool {
			if sorted[i].DurNS != sorted[j].DurNS {
				return sorted[i].DurNS > sorted[j].DurNS
			}
			return sorted[i].Name < sorted[j].Name
		})
		if len(sorted) > topN {
			sorted = sorted[:topN]
		}
		fmt.Fprintf(&b, "\nslowest points (top %d):\n", len(sorted))
		fmt.Fprintf(&b, "%-36s | %10s | %12s | %10s | %8s\n",
			"point", "wall", "sim events", "vm insns", "drops")
		for _, r := range sorted {
			var drops float64
			for _, key := range journalDropKeys {
				drops += r.Metrics[key]
			}
			fmt.Fprintf(&b, "%-36s | %10v | %12.0f | %10.0f | %8.0f\n",
				r.Name, r.Dur().Round(time.Microsecond),
				r.Metrics["sim_events_total"], r.Metrics["vm_instructions_total"], drops)
		}
	}
	return b.String()
}
