package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
	"time"
)

// Span kinds emitted by the harness. The hierarchy is
// experiment -> point (one workload x level on a private rig) -> window
// (one estimation window inside a point). Beside the spans, two marker
// kinds make a journal a checkpoint log: a run header identifying the
// invocation, and one checkpoint per completed (or abandoned) point
// carrying the point's serialized result so an interrupted run can be
// resumed without recomputing it.
const (
	KindExperiment = "experiment"
	KindPoint      = "point"
	KindWindow     = "window"
	KindRun        = "run"        // run header: command name + args
	KindCheckpoint = "checkpoint" // one completed/failed point + result
)

// Checkpoint statuses.
const (
	CheckpointOK     = "ok"     // Result holds the point's serialized value
	CheckpointFailed = "failed" // Error holds the failure; the point must re-run
)

// Record is one completed span in the run journal: a JSONL line carrying
// monotonic wall-clock timing and, for point spans, a snapshot of the
// rig's metric registry. Journals describe the *execution* of a run
// (real time, real scheduling) and are therefore not deterministic;
// experiment results never read them.
type Record struct {
	Kind    string             `json:"kind"`
	Name    string             `json:"name"`
	StartNS int64              `json:"start_ns"` // monotonic ns since journal creation
	DurNS   int64              `json:"dur_ns"`
	Metrics map[string]float64 `json:"metrics,omitempty"`

	// Checkpoint/run-header payload; zero on plain span records. Name
	// carries the point label (checkpoints) or command name (run
	// headers), so old readers render these records harmlessly.
	Experiment string          `json:"experiment,omitempty"` // experiment scope the point belongs to
	Index      int             `json:"index,omitempty"`      // point index within its batch
	Seed       int64           `json:"seed,omitempty"`       // root seed the result derives from
	Attempts   int             `json:"attempts,omitempty"`   // supervisor attempts consumed
	Status     string          `json:"status,omitempty"`     // CheckpointOK or CheckpointFailed
	Error      string          `json:"error,omitempty"`      // failure rendering (status failed)
	Args       []string        `json:"args,omitempty"`       // run header: invocation flags
	Result     json.RawMessage `json:"result,omitempty"`     // the point's serialized value
}

// Start returns the span start as a duration since journal creation.
func (r Record) Start() time.Duration { return time.Duration(r.StartNS) }

// Dur returns the span duration.
func (r Record) Dur() time.Duration { return time.Duration(r.DurNS) }

// Journal serializes span records as JSONL. It is safe for concurrent
// use (the parallel engine completes points on several goroutines);
// records are written whole, one per line, in completion order. A nil
// *Journal discards everything, which is how telemetry stays out of
// undashboarded runs.
//
// Two backing modes:
//
//   - Stream mode (NewJournal): records append to an io.Writer as they
//     are emitted. A crash can tear the final line; ReadJournal
//     tolerates that.
//   - File mode (OpenJournal / ResumeJournal): the journal owns an
//     append-mode file. Durability-bearing records — run headers,
//     checkpoints, experiment spans — append the pending tail and
//     fsync, so after Checkpoint returns the point survives SIGKILL. A
//     kill mid-append can tear at most the final line, which
//     ReadJournal drops; every record behind the last fsync is intact.
//     Each record's bytes are written exactly once, so a long sweep
//     pays O(journal) total I/O, not O(journal^2). Window/point spans
//     buffer between flushes; losing an unflushed span tail costs
//     observability, never resumability.
type Journal struct {
	mu    sync.Mutex
	w     io.Writer // stream mode; nil in file mode
	epoch time.Time

	// File mode state.
	f       *os.File // append-mode journal file
	pending []byte   // span records awaiting the next durable flush
	err     error    // first write error, surfaced by Close
}

// NewJournal returns a stream-mode journal writing to w. Timestamps are
// monotonic durations since this call.
func NewJournal(w io.Writer) *Journal {
	return &Journal{w: w, epoch: time.Now()}
}

// OpenJournal returns a file-mode journal persisted at path (see
// Journal). Any previous contents are truncated — a fresh run owns its
// journal; `reqlens resume` uses ResumeJournal to preserve the run it
// is resuming. The file is created (empty) immediately so a crash
// before the first record still leaves a readable journal.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	return &Journal{f: f, epoch: time.Now()}, nil
}

// ResumeJournal reopens an existing journal for a resumed run: the
// prior run's records are preserved and new records append after them.
// The old contents are normalized once with write-temp-then-rename —
// parsing drops a torn tail line so later appends cannot strand a
// malformed line mid-file — and are never rewritten again. This is how
// `reqlens resume` keeps the checkpoints it is replaying: a resumed
// process killed before it re-checkpoints anything still leaves the
// original run's checkpoints on disk.
func ResumeJournal(path string) (*Journal, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	recs, err := ReadJournal(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	var buf []byte
	for _, rec := range recs {
		line, err := json.Marshal(rec)
		if err != nil {
			return nil, err
		}
		buf = append(buf, line...)
		buf = append(buf, '\n')
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return nil, err
	}
	if err := os.Rename(tmp, path); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &Journal{f: f, epoch: time.Now()}, nil
}

// syncLocked appends the pending records to the file and fsyncs,
// making everything emitted so far durable. Callers hold j.mu.
func (j *Journal) syncLocked() {
	if len(j.pending) > 0 {
		if _, err := j.f.Write(j.pending); err != nil {
			if j.err == nil {
				j.err = err
			}
			return
		}
		j.pending = j.pending[:0]
	}
	if err := j.f.Sync(); err != nil && j.err == nil {
		j.err = err
	}
}

// Close flushes a file-mode journal's buffered tail, closes the file,
// and reports the first error any write hit. Stream-mode journals and
// nil journals return nil (the caller owns the writer).
func (j *Journal) Close() error {
	if j == nil || j.f == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.syncLocked()
	if err := j.f.Close(); err != nil && j.err == nil {
		j.err = err
	}
	return j.err
}

// RunHeader records the invocation this journal checkpoints: the
// command name and its argument list, which `resume` replays to
// reconstruct the run's configuration. Flushed atomically in file mode.
// No-op on a nil journal.
func (j *Journal) RunHeader(name string, args []string) {
	if j == nil {
		return
	}
	j.emit(Record{Kind: KindRun, Name: name, Args: args,
		StartNS: int64(time.Since(j.epoch))})
}

// Checkpoint records one completed (or abandoned) point. The record's
// Kind is forced to KindCheckpoint and its timestamp to now; everything
// else — label in Name, Experiment, Index, Seed, Status, Result or
// Error — is the caller's. Appended and fsynced in file mode, so after
// Checkpoint returns the point survives SIGKILL. No-op on a nil
// journal.
func (j *Journal) Checkpoint(rec Record) {
	if j == nil {
		return
	}
	rec.Kind = KindCheckpoint
	rec.StartNS = int64(time.Since(j.epoch))
	j.emit(rec)
}

// Span is an open interval started by Begin. End emits the record. A nil
// *Span (from a nil journal) is inert.
type Span struct {
	j     *Journal
	kind  string
	name  string
	start time.Duration
}

// Begin opens a span of the given kind. Returns nil (inert) on a nil
// journal.
func (j *Journal) Begin(kind, name string) *Span {
	if j == nil {
		return nil
	}
	return &Span{j: j, kind: kind, name: name, start: time.Since(j.epoch)}
}

// End closes the span and writes its record, attaching the given metric
// snapshot (may be nil). No-op on a nil span.
func (s *Span) End(metrics map[string]float64) {
	if s == nil {
		return
	}
	now := time.Since(s.j.epoch)
	s.j.emit(Record{
		Kind:    s.kind,
		Name:    s.name,
		StartNS: int64(s.start),
		DurNS:   int64(now - s.start),
		Metrics: metrics,
	})
}

func (j *Journal) emit(rec Record) {
	line, err := json.Marshal(rec)
	if err != nil {
		return // a map[string]float64 cannot fail to marshal; defensive
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f != nil {
		j.pending = append(j.pending, line...)
		j.pending = append(j.pending, '\n')
		// Only durability-bearing records pay the write+fsync; span
		// records ride along on the next flush or Close.
		switch rec.Kind {
		case KindRun, KindCheckpoint, KindExperiment:
			j.syncLocked()
		}
		return
	}
	j.w.Write(line)
	j.w.Write([]byte{'\n'})
}

// ReadJournal parses a JSONL journal back into records, in file order.
// Blank lines are skipped. A malformed *final* line is a torn tail — a
// writer killed mid-append — and is silently dropped: everything before
// it is intact and a resume proceeds from the last whole record.
// Malformed lines followed by well-formed ones are real corruption and
// error out.
func ReadJournal(r io.Reader) ([]Record, error) {
	var out []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	tornLine := 0 // most recent malformed line, pending a verdict
	var tornErr error
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if tornErr != nil {
			// The malformed line was not last: corruption, not a tear.
			return nil, fmt.Errorf("telemetry: journal line %d: %v", tornLine, tornErr)
		}
		var rec Record
		if err := json.Unmarshal([]byte(text), &rec); err != nil {
			tornLine, tornErr = line, err
			continue
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// LastRunHeader returns the most recent run-header record, if any. A
// journal written by one invocation has exactly one; resumed runs
// append their own, and the latest wins.
func LastRunHeader(recs []Record) (Record, bool) {
	for i := len(recs) - 1; i >= 0; i-- {
		if recs[i].Kind == KindRun {
			return recs[i], true
		}
	}
	return Record{}, false
}

// CheckpointKey composes the resume-map key for a checkpoint: the
// experiment scope plus the point label. Point labels are only unique
// within one experiment's batch — sweeps and agreement runs both label
// points "<workload> level=X" — so a journal covering several
// experiments (`reqlens all`) must key checkpoints by both, or a
// later experiment's checkpoint would shadow an earlier one's and
// resume would replay the wrong record's bytes. The separator is a NUL
// byte, which no human-readable scope or label contains.
func CheckpointKey(experiment, label string) string {
	return experiment + "\x00" + label
}

// Checkpoints indexes a journal's successful checkpoints by
// CheckpointKey(experiment, label), last record winning (a resumed run
// re-emits checkpoints for cached points, so resume-of-resume sees a
// complete set). Failed checkpoints are excluded — those points must
// re-run.
func Checkpoints(recs []Record) map[string]Record {
	out := map[string]Record{}
	for _, r := range recs {
		if r.Kind == KindCheckpoint && r.Status == CheckpointOK {
			out[CheckpointKey(r.Experiment, r.Name)] = r
		}
	}
	return out
}

// journalDropKeys are the metric names whose sum across point spans is
// reported as "drops" in the phase table.
var journalDropKeys = []string{"ringbuf_records_dropped_total", "stream_dropped_total"}

// RenderJournal formats a journal as (1) a per-phase summary — span
// count, total/mean/max wall-clock, simulated events folded, ring drops
// — and (2) the top-N slowest point spans with their headline metrics.
func RenderJournal(recs []Record, topN int) string {
	if topN <= 0 {
		topN = 10
	}
	var b strings.Builder
	if len(recs) == 0 {
		return "journal: empty\n"
	}

	// Phase table, in hierarchy order then any unknown kinds.
	order := []string{KindExperiment, KindPoint, KindWindow}
	byKind := map[string][]Record{}
	for _, r := range recs {
		byKind[r.Kind] = append(byKind[r.Kind], r)
	}
	var kinds []string
	for _, k := range order {
		if len(byKind[k]) > 0 {
			kinds = append(kinds, k)
		}
	}
	var extra []string
	for k := range byKind {
		known := false
		for _, o := range order {
			if k == o {
				known = true
			}
		}
		if !known {
			extra = append(extra, k)
		}
	}
	sort.Strings(extra)
	kinds = append(kinds, extra...)

	fmt.Fprintf(&b, "%-10s | %5s | %10s | %10s | %10s | %12s | %8s\n",
		"phase", "spans", "total", "mean", "max", "sim events", "drops")
	for _, k := range kinds {
		rs := byKind[k]
		var total, max time.Duration
		var events, drops float64
		for _, r := range rs {
			d := r.Dur()
			total += d
			if d > max {
				max = d
			}
			events += r.Metrics["sim_events_total"]
			for _, key := range journalDropKeys {
				drops += r.Metrics[key]
			}
		}
		mean := total / time.Duration(len(rs))
		fmt.Fprintf(&b, "%-10s | %5d | %10v | %10v | %10v | %12.0f | %8.0f\n",
			k, len(rs), total.Round(time.Microsecond), mean.Round(time.Microsecond),
			max.Round(time.Microsecond), events, drops)
	}

	// Throughput: simulated events per wall-clock second over point spans
	// (each point runs on a private rig, so sums are meaningful).
	points := byKind[KindPoint]
	if len(points) > 0 {
		var wall time.Duration
		var events float64
		for _, r := range points {
			wall += r.Dur()
			events += r.Metrics["sim_events_total"]
		}
		if wall > 0 && events > 0 {
			fmt.Fprintf(&b, "point throughput: %.0f sim events/s of wall-clock\n", events/wall.Seconds())
		}

		sorted := append([]Record(nil), points...)
		sort.Slice(sorted, func(i, j int) bool {
			if sorted[i].DurNS != sorted[j].DurNS {
				return sorted[i].DurNS > sorted[j].DurNS
			}
			return sorted[i].Name < sorted[j].Name
		})
		if len(sorted) > topN {
			sorted = sorted[:topN]
		}
		fmt.Fprintf(&b, "\nslowest points (top %d):\n", len(sorted))
		fmt.Fprintf(&b, "%-36s | %10s | %12s | %10s | %8s\n",
			"point", "wall", "sim events", "vm insns", "drops")
		for _, r := range sorted {
			var drops float64
			for _, key := range journalDropKeys {
				drops += r.Metrics[key]
			}
			fmt.Fprintf(&b, "%-36s | %10v | %12.0f | %10.0f | %8.0f\n",
				r.Name, r.Dur().Round(time.Microsecond),
				r.Metrics["sim_events_total"], r.Metrics["vm_instructions_total"], drops)
		}
	}
	return b.String()
}
