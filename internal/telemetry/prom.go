package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteProm renders the registry in the Prometheus text exposition
// format (version 0.0.4): counters and gauges as single samples,
// histograms as cumulative le-labelled buckets plus _sum and _count.
// Output is sorted by instrument name within each kind, so two
// registries with equal contents serialize byte-identically.
//
// The serialization is pinned lossless for ParseProm: integer-valued
// instruments print in base 10 (exact for every counter a simulation
// can reach) and float gauges print with strconv.FormatFloat(v, 'g',
// -1, 64) — the shortest representation that parses back to the same
// float64 bit pattern. The fleet scrape/merge plane depends on this
// round trip; TestPromRoundTripProperty enforces it. A nil registry
// writes nothing.
func (r *Registry) WriteProm(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	bw := bufio.NewWriter(w)
	counters, gauges, fgauges, hists := r.names()
	for _, name := range counters {
		fmt.Fprintf(bw, "# TYPE %s counter\n%s %d\n", name, name, r.counters[name].Value())
	}
	for _, name := range gauges {
		fmt.Fprintf(bw, "# TYPE %s gauge\n%s %d\n", name, name, r.gauges[name].Value())
	}
	for _, name := range fgauges {
		fmt.Fprintf(bw, "# TYPE %s gauge\n%s %s\n", name, name,
			strconv.FormatFloat(r.floatGauges[name].Value(), 'g', -1, 64))
	}
	for _, name := range hists {
		h := r.histograms[name]
		fmt.Fprintf(bw, "# TYPE %s histogram\n", name)
		var cum uint64
		for i := range h.buckets {
			c := h.buckets[i].Load()
			if c == 0 {
				continue
			}
			cum += c
			if i+1 >= len(h.buckets) {
				continue // top bucket has no finite bound; +Inf covers it
			}
			fmt.Fprintf(bw, "%s_bucket{le=\"%d\"} %d\n", name, histHigh(i), cum)
		}
		fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count())
		fmt.Fprintf(bw, "%s_sum %d\n", name, h.Sum())
		fmt.Fprintf(bw, "%s_count %d\n", name, h.Count())
	}
	return bw.Flush()
}

// ParseProm reads Prometheus text format back into a flat
// name -> value map (labels, if any, stay part of the key). It accepts
// exactly what WriteProm emits plus blank lines, and is what the
// round-trip tests and the journal tooling use — not a general
// Prometheus parser.
func ParseProm(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		// name{labels} value | name value — the value is the last
		// space-separated field.
		i := strings.LastIndexByte(text, ' ')
		if i < 0 {
			return nil, fmt.Errorf("telemetry: prom line %d: no value in %q", line, text)
		}
		name := strings.TrimSpace(text[:i])
		v, err := strconv.ParseFloat(text[i+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("telemetry: prom line %d: bad value %q: %v", line, text[i+1:], err)
		}
		out[name] = v
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
