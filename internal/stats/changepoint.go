package stats

import "math"

// Streaming changepoint primitives for the closed-loop control layer
// (internal/control): a one-sided CUSUM and a two-sided EWMA control
// chart, both operating on standardized residuals so callers choose the
// signal transform (the saturation detector feeds log2 variance ratios)
// and the primitives stay unit-free. Both are O(1) state, O(1) per
// sample, and allocation-free — they run once per estimation window on
// the monitoring hot path.

// CUSUM is a one-sided (upper) cumulative-sum changepoint detector on a
// standardized stream: S <- max(0, S + x - Drift), alarm while
// S > Threshold. With x ~ N(0,1) residuals, Drift k is half the mean
// shift (in sigmas) the chart is tuned to catch and Threshold h trades
// detection delay against in-control false alarms (average run length
// grows roughly exponentially in h). The zero value is unusable; use
// NewCUSUM or set both parameters.
type CUSUM struct {
	// Drift is the per-sample slack k subtracted before accumulating:
	// residuals below it never grow the statistic.
	Drift float64
	// Threshold is the alarm level h on the accumulated statistic.
	Threshold float64

	stat float64
}

// NewCUSUM returns a detector with the given drift (k) and threshold
// (h). Non-positive parameters take the conventional defaults k=0.5,
// h=5 (tuned for ~1-sigma-resolution shifts on standardized input).
func NewCUSUM(drift, threshold float64) *CUSUM {
	if drift <= 0 {
		drift = 0.5
	}
	if threshold <= 0 {
		threshold = 5
	}
	return &CUSUM{Drift: drift, Threshold: threshold}
}

// Observe folds one standardized residual and reports whether the
// statistic is above the alarm threshold. The statistic keeps
// accumulating while the shift persists and drains at Drift per sample
// once the stream returns to baseline — Observe keeps reporting true
// until it has drained below the threshold.
func (c *CUSUM) Observe(x float64) bool {
	c.stat += x - c.Drift
	if c.stat < 0 {
		c.stat = 0
	}
	return c.stat > c.Threshold
}

// Stat returns the current cumulative-sum statistic.
func (c *CUSUM) Stat() float64 { return c.stat }

// Reset clears the statistic (after a handled alarm).
func (c *CUSUM) Reset() { c.stat = 0 }

// EWMA is a two-sided exponentially-weighted moving-average control
// chart on a standardized stream: Z <- (1-Lambda)*Z + Lambda*x, alarm
// while |Z| > Limit * sigma_Z, with sigma_Z = sqrt(Lambda/(2-Lambda))
// the chart's asymptotic standard deviation under N(0,1) input. Smaller
// Lambda smooths harder (catches small persistent shifts, reacts
// slower); Limit plays the role of the control-limit width L.
type EWMA struct {
	// Lambda is the smoothing weight of the newest sample, in (0, 1].
	Lambda float64
	// Limit is the alarm level in units of the chart's asymptotic
	// standard deviation.
	Limit float64

	z float64
}

// NewEWMA returns a chart with the given smoothing weight and control
// limit. Out-of-range parameters take the conventional defaults
// lambda=0.25, limit=4.
func NewEWMA(lambda, limit float64) *EWMA {
	if lambda <= 0 || lambda > 1 {
		lambda = 0.25
	}
	if limit <= 0 {
		limit = 4
	}
	return &EWMA{Lambda: lambda, Limit: limit}
}

// sigma returns the chart's asymptotic standard deviation under unit-
// variance input.
func (e *EWMA) sigma() float64 {
	return math.Sqrt(e.Lambda / (2 - e.Lambda))
}

// Observe folds one standardized residual and reports whether the
// smoothed value sits outside the control limits (in either direction —
// the chart flags distribution shifts, not just increases).
func (e *EWMA) Observe(x float64) bool {
	e.z = (1-e.Lambda)*e.z + e.Lambda*x
	lim := e.Limit * e.sigma()
	return e.z > lim || e.z < -lim
}

// Value returns the current smoothed value Z.
func (e *EWMA) Value() float64 { return e.z }

// Reset clears the smoothed value.
func (e *EWMA) Reset() { e.z = 0 }
