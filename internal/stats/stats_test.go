package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) == math.IsNaN(b)
	}
	return math.Abs(a-b) <= tol
}

func TestOnlineBasics(t *testing.T) {
	var o Online
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		o.Add(x)
	}
	if o.N() != 8 {
		t.Fatalf("N = %d", o.N())
	}
	if !almost(o.Mean(), 5, 1e-12) {
		t.Fatalf("Mean = %v", o.Mean())
	}
	if !almost(o.Variance(), 4, 1e-12) {
		t.Fatalf("Variance = %v", o.Variance())
	}
	if !almost(o.Stddev(), 2, 1e-12) {
		t.Fatalf("Stddev = %v", o.Stddev())
	}
	if o.Min() != 2 || o.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v", o.Min(), o.Max())
	}
}

func TestOnlineEmptyAndSingle(t *testing.T) {
	var o Online
	if o.Mean() != 0 || o.Variance() != 0 {
		t.Fatal("zero-value accumulator should report zeros")
	}
	o.Add(3)
	if o.Variance() != 0 || o.SampleVariance() != 0 {
		t.Fatal("single sample has zero variance")
	}
	if o.Mean() != 3 {
		t.Fatalf("Mean = %v", o.Mean())
	}
}

func TestOnlineMergeMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var whole, a, b Online
	for i := 0; i < 1000; i++ {
		x := rng.NormFloat64()*3 + 10
		whole.Add(x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(b)
	if a.N() != whole.N() {
		t.Fatalf("merged N = %d, want %d", a.N(), whole.N())
	}
	if !almost(a.Mean(), whole.Mean(), 1e-9) {
		t.Fatalf("merged mean %v vs %v", a.Mean(), whole.Mean())
	}
	if !almost(a.Variance(), whole.Variance(), 1e-9) {
		t.Fatalf("merged var %v vs %v", a.Variance(), whole.Variance())
	}
	if a.Min() != whole.Min() || a.Max() != whole.Max() {
		t.Fatal("merged min/max mismatch")
	}
}

func TestOnlineMergeEmptySides(t *testing.T) {
	var a, b Online
	b.Add(5)
	b.Add(7)
	a.Merge(b)
	if a.N() != 2 || !almost(a.Mean(), 6, 1e-12) {
		t.Fatalf("merge into empty: N=%d mean=%v", a.N(), a.Mean())
	}
	var c Online
	a.Merge(c)
	if a.N() != 2 {
		t.Fatal("merging empty changed N")
	}
}

// Property: Welford variance equals the naive two-pass variance.
func TestPropertyWelfordMatchesTwoPass(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) < 2 {
			return true
		}
		var o Online
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
			o.Add(xs[i])
		}
		m := Mean(xs)
		var ss float64
		for _, x := range xs {
			ss += (x - m) * (x - m)
		}
		want := ss / float64(len(xs))
		return almost(o.Variance(), want, 1e-6*(1+want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMomentVariance(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 100}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	var o Online
	for _, x := range xs {
		o.Add(x)
	}
	got := MomentVariance(sum, sumSq, uint64(len(xs)))
	if !almost(got, o.Variance(), 1e-9) {
		t.Fatalf("MomentVariance = %v, want %v", got, o.Variance())
	}
	if MomentVariance(0, 0, 0) != 0 {
		t.Fatal("empty moment variance should be 0")
	}
	// Cancellation guard: identical values must give exactly 0, never
	// a small negative.
	if v := MomentVariance(3e9, 3e18*3, 3); v < 0 {
		t.Fatalf("negative variance %v", v)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	if got := Quantile(xs, 0.5); got != 35 {
		t.Fatalf("median = %v", got)
	}
	if got := Quantile(xs, 0); got != 15 {
		t.Fatalf("q0 = %v", got)
	}
	if got := Quantile(xs, 1); got != 50 {
		t.Fatalf("q1 = %v", got)
	}
	if got := Quantile(xs, 0.25); got != 20 {
		t.Fatalf("q25 = %v", got)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("empty quantile should be NaN")
	}
	// Input must be unchanged.
	ys := []float64{3, 1, 2}
	Quantile(ys, 0.5)
	if ys[0] != 3 || ys[1] != 1 || ys[2] != 2 {
		t.Fatal("Quantile mutated input")
	}
}

func TestQuantilesBatch(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	got := Quantiles(xs, 0, 0.5, 1)
	if got[0] != 1 || got[2] != 10 {
		t.Fatalf("Quantiles = %v", got)
	}
	if !almost(got[1], 5.5, 1e-12) {
		t.Fatalf("median = %v", got[1])
	}
}

func TestNormalize(t *testing.T) {
	got := Normalize([]float64{10, 20, 30})
	want := []float64{0, 0.5, 1}
	for i := range want {
		if !almost(got[i], want[i], 1e-12) {
			t.Fatalf("Normalize = %v", got)
		}
	}
	constant := Normalize([]float64{5, 5, 5})
	for _, v := range constant {
		if v != 0 {
			t.Fatal("constant series should normalize to zeros")
		}
	}
	if len(Normalize(nil)) != 0 {
		t.Fatal("empty input")
	}
}

func TestNormalizeByMax(t *testing.T) {
	got := NormalizeByMax([]float64{1, 2, 4})
	if got[0] != 0.25 || got[1] != 0.5 || got[2] != 1 {
		t.Fatalf("NormalizeByMax = %v", got)
	}
	zeros := NormalizeByMax([]float64{0, 0})
	if zeros[0] != 0 || zeros[1] != 0 {
		t.Fatal("all-zero series")
	}
}

func TestFitLinearPerfectLine(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{3, 5, 7, 9, 11} // y = 2x+1
	f := FitLinear(x, y)
	if !almost(f.Slope, 2, 1e-12) || !almost(f.Intercept, 1, 1e-12) {
		t.Fatalf("fit = %+v", f)
	}
	if !almost(f.R2, 1, 1e-12) {
		t.Fatalf("R2 = %v", f.R2)
	}
	res := f.Residuals(x, y)
	for _, r := range res {
		if !almost(r, 0, 1e-9) {
			t.Fatalf("residuals = %v", res)
		}
	}
}

func TestFitLinearNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var x, y []float64
	for i := 0; i < 500; i++ {
		xi := float64(i)
		x = append(x, xi)
		y = append(y, 3*xi+40+rng.NormFloat64()*5)
	}
	f := FitLinear(x, y)
	if !almost(f.Slope, 3, 0.05) {
		t.Fatalf("slope = %v", f.Slope)
	}
	if f.R2 < 0.99 {
		t.Fatalf("R2 = %v, want > 0.99 for tight line", f.R2)
	}
}

func TestFitLinearDegenerate(t *testing.T) {
	f := FitLinear([]float64{1}, []float64{2})
	if f.Slope != 0 || f.N != 1 {
		t.Fatalf("single point fit = %+v", f)
	}
	f = FitLinear([]float64{2, 2, 2}, []float64{1, 5, 9})
	if f.Slope != 0 || !almost(f.Intercept, 5, 1e-12) {
		t.Fatalf("vertical data fit = %+v", f)
	}
	f = FitLinear([]float64{1, 2, 3}, []float64{4, 4, 4})
	if f.R2 != 1 || f.Slope != 0 {
		t.Fatalf("horizontal data fit = %+v", f)
	}
}

func TestFitLinearMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch should panic")
		}
	}()
	FitLinear([]float64{1}, []float64{1, 2})
}

func TestPearsonSign(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	up := []float64{2, 4, 6, 8}
	down := []float64{8, 6, 4, 2}
	if p := Pearson(x, up); !almost(p, 1, 1e-9) {
		t.Fatalf("Pearson up = %v", p)
	}
	if p := Pearson(x, down); !almost(p, -1, 1e-9) {
		t.Fatalf("Pearson down = %v", p)
	}
}

// Property: R2 is always within [0,1] and invariant to affine rescaling
// of x.
func TestPropertyR2Bounds(t *testing.T) {
	f := func(raw []int8) bool {
		if len(raw) < 3 {
			return true
		}
		x := make([]float64, len(raw))
		y := make([]float64, len(raw))
		for i, r := range raw {
			x[i] = float64(i)
			y[i] = float64(r)
		}
		f1 := FitLinear(x, y)
		if f1.R2 < -1e-9 || f1.R2 > 1+1e-9 {
			return false
		}
		x2 := make([]float64, len(x))
		for i := range x {
			x2[i] = 7*x[i] - 3
		}
		f2 := FitLinear(x2, y)
		return almost(f1.R2, f2.R2, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
