package stats

import (
	"math/rand"
	"testing"
)

// noise returns n seeded standard-normal samples.
func noise(seed int64, n int) []float64 {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	return xs
}

// stepAt adds a constant shift to xs from index t0 on (a saturation
// onset: the monitored mean jumps and stays).
func stepAt(xs []float64, t0 int, shift float64) []float64 {
	out := make([]float64, len(xs))
	copy(out, xs)
	for i := t0; i < len(out); i++ {
		out[i] += shift
	}
	return out
}

// rampAt adds a linearly growing shift from index t0 on (a slow drift
// into saturation).
func rampAt(xs []float64, t0 int, perSample float64) []float64 {
	out := make([]float64, len(xs))
	copy(out, xs)
	for i := t0; i < len(out); i++ {
		out[i] += float64(i-t0+1) * perSample
	}
	return out
}

// firstAlarm drives a detector over xs and returns the index of the
// first alarm, or -1.
func firstAlarm(observe func(float64) bool, xs []float64) int {
	for i, x := range xs {
		if observe(x) {
			return i
		}
	}
	return -1
}

// TestCUSUMFalsePositiveRate: on pure in-control noise the chart must
// essentially never alarm — across 100 independent 1000-sample streams
// (100k in-control samples) at k=0.5, h=12 the in-control average run
// length is ~3e5 (ARL ~ (exp(2kh)-2kh-1)/(2k^2)), so the expected alarm
// count over the whole corpus is ~0.3; allow at most one tripped
// stream. A drain bug (statistic not clamping, drift not subtracted)
// would trip dozens.
func TestCUSUMFalsePositiveRate(t *testing.T) {
	trips := 0
	for seed := int64(0); seed < 100; seed++ {
		c := NewCUSUM(0.5, 12)
		if firstAlarm(c.Observe, noise(seed, 1000)) >= 0 {
			trips++
		}
	}
	if trips > 1 {
		t.Fatalf("CUSUM(0.5, 12) tripped on %d/100 in-control streams; want <= 1", trips)
	}
}

// TestCUSUMStepDetectionDelay: a 3-sigma step must be caught quickly on
// every stream — the statistic grows by ~2.5 per sample under the
// shift, so h=12 is crossed in about 5 samples; allow 12 for unlucky
// noise. This is the detection-delay half of the delay/false-positive
// trade the control layer leans on.
func TestCUSUMStepDetectionDelay(t *testing.T) {
	const t0 = 500
	for seed := int64(0); seed < 50; seed++ {
		c := NewCUSUM(0.5, 12)
		at := firstAlarm(c.Observe, stepAt(noise(seed, 1000), t0, 3))
		if at < t0 {
			t.Fatalf("seed %d: alarm at %d, before the step at %d", seed, at, t0)
		}
		if delay := at - t0; delay > 12 {
			t.Fatalf("seed %d: detection delay %d samples for a 3-sigma step; want <= 12", seed, delay)
		}
	}
}

// TestCUSUMThresholdTrade: raising the threshold must not shorten the
// detection delay (monotone trade between delay and false positives).
func TestCUSUMThresholdTrade(t *testing.T) {
	const t0 = 500
	xs := stepAt(noise(7, 2000), t0, 2)
	prev := -1
	for _, h := range []float64{2, 4, 8, 16} {
		c := NewCUSUM(0.5, h)
		at := firstAlarm(c.Observe, xs)
		if at < 0 {
			t.Fatalf("h=%v: 2-sigma step never detected", h)
		}
		if at < prev {
			t.Fatalf("h=%v: alarm at %d earlier than lower threshold's %d", h, at, prev)
		}
		prev = at
	}
}

// TestCUSUMRampDetection: a slow drift (0.1 sigma per sample) is caught
// once the accumulated shift clears the slack, and the alarm drains
// again after the signal returns to baseline.
func TestCUSUMRampDetection(t *testing.T) {
	const t0 = 300
	c := NewCUSUM(0.5, 8)
	at := firstAlarm(c.Observe, rampAt(noise(11, 600), t0, 0.1))
	if at < t0 {
		t.Fatalf("alarm at %d precedes ramp start %d", at, t0)
	}
	if delay := at - t0; delay > 60 {
		t.Fatalf("ramp detection delay %d samples; want <= 60", delay)
	}

	// Recovery: feed baseline noise until the statistic drains.
	rec := noise(13, 1000)
	cleared := false
	for _, x := range rec {
		if !c.Observe(x) {
			cleared = true
			break
		}
	}
	if !cleared {
		t.Fatal("statistic never drained after the shift ended")
	}
}

// TestCUSUMResetAndStat: Reset clears the statistic; Stat tracks it.
func TestCUSUMResetAndStat(t *testing.T) {
	c := NewCUSUM(0.5, 1)
	c.Observe(5)
	if c.Stat() <= 0 {
		t.Fatalf("Stat() = %v after a large residual; want > 0", c.Stat())
	}
	c.Reset()
	if c.Stat() != 0 {
		t.Fatalf("Stat() = %v after Reset; want 0", c.Stat())
	}
	if c.Observe(-3); c.Stat() != 0 {
		t.Fatalf("negative residuals must clamp at 0, got %v", c.Stat())
	}
}

// TestCUSUMDefaults: non-positive construction parameters take the
// conventional k=0.5, h=5.
func TestCUSUMDefaults(t *testing.T) {
	c := NewCUSUM(0, 0)
	if c.Drift != 0.5 || c.Threshold != 5 {
		t.Fatalf("defaults = (%v, %v); want (0.5, 5)", c.Drift, c.Threshold)
	}
	e := NewEWMA(0, 0)
	if e.Lambda != 0.25 || e.Limit != 4 {
		t.Fatalf("EWMA defaults = (%v, %v); want (0.25, 4)", e.Lambda, e.Limit)
	}
}

// TestEWMAFalsePositiveRate mirrors the CUSUM test: the two-sided chart
// at L=6 must essentially never alarm in control.
func TestEWMAFalsePositiveRate(t *testing.T) {
	trips := 0
	for seed := int64(0); seed < 100; seed++ {
		e := NewEWMA(0.25, 6)
		if firstAlarm(e.Observe, noise(seed, 1000)) >= 0 {
			trips++
		}
	}
	if trips > 1 {
		t.Fatalf("EWMA(0.25, 6) tripped on %d/100 in-control streams; want <= 1", trips)
	}
}

// TestEWMATwoSided: the chart catches shifts in both directions — the
// property the detector's poll-duration channel needs, since a netem
// onset can move the slack signal either way.
func TestEWMATwoSided(t *testing.T) {
	const t0 = 500
	for _, shift := range []float64{3, -3} {
		e := NewEWMA(0.25, 6)
		at := firstAlarm(e.Observe, stepAt(noise(3, 1000), t0, shift))
		if at < t0 {
			t.Fatalf("shift %v: alarm at %d before the step at %d", shift, at, t0)
		}
		if delay := at - t0; delay > 20 {
			t.Fatalf("shift %v: detection delay %d samples; want <= 20", shift, delay)
		}
	}
}

// TestEWMAValueTracksMean: after a long constant input the smoothed
// value converges to it.
func TestEWMAValueTracksMean(t *testing.T) {
	e := NewEWMA(0.25, 1e9) // never alarm; just smooth
	for i := 0; i < 200; i++ {
		e.Observe(2)
	}
	if v := e.Value(); v < 1.99 || v > 2.01 {
		t.Fatalf("Value() = %v after constant 2s; want ~2", v)
	}
	e.Reset()
	if e.Value() != 0 {
		t.Fatalf("Value() = %v after Reset; want 0", e.Value())
	}
}

// TestChangepointZeroAlloc pins both hot paths allocation-free — they
// run once per estimation window inside the monitoring loop.
func TestChangepointZeroAlloc(t *testing.T) {
	c := NewCUSUM(0.5, 8)
	e := NewEWMA(0.25, 6)
	xs := noise(17, 64)
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		x := xs[i%len(xs)]
		i++
		c.Observe(x)
		e.Observe(x)
	})
	if allocs != 0 {
		t.Fatalf("changepoint Observe allocates %.1f/op; want 0", allocs)
	}
}
