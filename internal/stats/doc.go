// Package stats provides the statistical machinery used throughout the
// reproduction, mirroring the paper's evaluation methodology (Section
// IV-B): streaming moment accumulators, quantile estimation over
// log-scaled histograms, and ordinary least squares regression with
// R-squared and residual extraction (the Fig. 2 / Table II fit).
//
// Key entry points:
//
//   - FitLinear(x, y) — OLS fit; LinearFit carries Slope, Intercept,
//     R2, and Residuals (Fig. 2 regresses RPS_obsv against RPS_real).
//   - NewHistogram — log-bucketed latency histogram with Quantile; the
//     load generator's p50/p99 come from here.
//   - Online — Welford streaming mean/variance; MomentVariance computes
//     Eq. 2's E[dt^2] - E[dt]^2 from in-map sums, exactly as the eBPF
//     side accumulates them.
//   - Mean, Quantile(s), Pearson, Normalize(ByMax) — small helpers the
//     renderers and tests share.
//
// Everything here is pure computation: no simulation state, safe for
// concurrent use on distinct data.
package stats
