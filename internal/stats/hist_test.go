package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 || h.Max() != 0 || h.Min() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func TestHistogramExactSmallValues(t *testing.T) {
	h := NewHistogram()
	for v := int64(0); v < histSubBuckets; v++ {
		h.Record(v)
	}
	if h.Min() != 0 || h.Max() != histSubBuckets-1 {
		t.Fatalf("min/max = %d/%d", h.Min(), h.Max())
	}
	if got := h.Quantile(0.0); got != 0 {
		t.Fatalf("q0 = %d", got)
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	h := NewHistogram()
	h.Record(-5)
	if h.Min() != 0 {
		t.Fatalf("negative should clamp to 0, min = %d", h.Min())
	}
}

func TestHistogramMeanExact(t *testing.T) {
	h := NewHistogram()
	vals := []int64{100, 200, 300, 1000, 5000}
	var sum int64
	for _, v := range vals {
		h.Record(v)
		sum += v
	}
	want := float64(sum) / float64(len(vals))
	if h.Mean() != want {
		t.Fatalf("Mean = %v, want %v", h.Mean(), want)
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	h := NewHistogram()
	var raw []float64
	for i := 0; i < 50000; i++ {
		// Lognormal-ish latency distribution, scale ~1ms.
		v := int64(math.Exp(rng.NormFloat64()*0.7+13) + 1000)
		h.Record(v)
		raw = append(raw, float64(v))
	}
	sort.Float64s(raw)
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		exact := quantileSorted(raw, q)
		got := float64(h.Quantile(q))
		relErr := math.Abs(got-exact) / exact
		if relErr > 0.05 {
			t.Fatalf("q=%v: hist %v vs exact %v (rel err %.3f)", q, got, exact, relErr)
		}
	}
}

func TestHistogramRecordDuration(t *testing.T) {
	h := NewHistogram()
	h.RecordDuration(3 * time.Millisecond)
	if h.Max() != int64(3*time.Millisecond) {
		t.Fatalf("Max = %d", h.Max())
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b, whole := NewHistogram(), NewHistogram(), NewHistogram()
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 2000; i++ {
		v := int64(rng.Intn(1_000_000) + 1)
		whole.Record(v)
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
	}
	a.Merge(b)
	if a.Count() != whole.Count() {
		t.Fatalf("merged count %d vs %d", a.Count(), whole.Count())
	}
	if a.Max() != whole.Max() || a.Min() != whole.Min() {
		t.Fatal("merged min/max mismatch")
	}
	for _, q := range []float64{0.5, 0.99} {
		if a.Quantile(q) != whole.Quantile(q) {
			t.Fatalf("merged q%v mismatch: %d vs %d", q, a.Quantile(q), whole.Quantile(q))
		}
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram()
	h.Record(123456)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Fatal("Reset did not clear histogram")
	}
	h.Record(7)
	if h.Min() != 7 {
		t.Fatalf("Min after reset+record = %d", h.Min())
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram()
	h.Record(int64(time.Millisecond))
	if s := h.String(); s == "" {
		t.Fatal("empty String()")
	}
}

// Property: quantile estimates are monotone in q and bounded by [min,max].
func TestPropertyHistogramQuantileMonotone(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		h := NewHistogram()
		for _, r := range raw {
			h.Record(int64(r))
		}
		prev := int64(-1)
		for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
			v := h.Quantile(q)
			if v < prev || v < h.Min() || v > h.Max() {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: a recorded value's bucket lower bound never exceeds the value,
// and the bucket's relative width is bounded (~1/subBuckets above 2^6).
func TestPropertyHistogramBucketError(t *testing.T) {
	f := func(v uint32) bool {
		x := int64(v)
		e, s := histBucket(x)
		lo := histBucketLow(e, s)
		if lo > x {
			return false
		}
		if x >= 64 {
			// relative error of the bucket floor
			if float64(x-lo)/float64(x) > 2.0/histSubBuckets {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
