package stats

import (
	"fmt"
	"math"
	"sort"
)

// Online accumulates count, mean and variance of a stream in one pass
// using Welford's algorithm. The zero value is ready to use.
type Online struct {
	n    uint64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds x into the accumulator.
func (o *Online) Add(x float64) {
	o.n++
	if o.n == 1 {
		o.min, o.max = x, x
	} else {
		if x < o.min {
			o.min = x
		}
		if x > o.max {
			o.max = x
		}
	}
	d := x - o.mean
	o.mean += d / float64(o.n)
	o.m2 += d * (x - o.mean)
}

// Merge folds another accumulator into o (parallel Welford merge).
func (o *Online) Merge(p Online) {
	if p.n == 0 {
		return
	}
	if o.n == 0 {
		*o = p
		return
	}
	n1, n2 := float64(o.n), float64(p.n)
	d := p.mean - o.mean
	o.m2 += p.m2 + d*d*n1*n2/(n1+n2)
	o.mean += d * n2 / (n1 + n2)
	o.n += p.n
	if p.min < o.min {
		o.min = p.min
	}
	if p.max > o.max {
		o.max = p.max
	}
}

// N returns the number of samples.
func (o *Online) N() uint64 { return o.n }

// Mean returns the running mean, or 0 with no samples.
func (o *Online) Mean() float64 { return o.mean }

// Variance returns the population variance, or 0 with fewer than 2 samples.
func (o *Online) Variance() float64 {
	if o.n < 2 {
		return 0
	}
	return o.m2 / float64(o.n)
}

// SampleVariance returns the n-1 variance, or 0 with fewer than 2 samples.
func (o *Online) SampleVariance() float64 {
	if o.n < 2 {
		return 0
	}
	return o.m2 / float64(o.n-1)
}

// Stddev returns the population standard deviation.
func (o *Online) Stddev() float64 { return math.Sqrt(o.Variance()) }

// Min returns the smallest sample, or 0 with no samples.
func (o *Online) Min() float64 { return o.min }

// Max returns the largest sample, or 0 with no samples.
func (o *Online) Max() float64 { return o.max }

// Reset clears the accumulator.
func (o *Online) Reset() { *o = Online{} }

// MomentVariance computes var = E[x^2] - E[x]^2 from raw first and second
// moment sums, exactly as the paper's Eq. 2 computes it inside eBPF map
// space. count is the number of samples behind the sums.
func MomentVariance(sum, sumSq float64, count uint64) float64 {
	if count == 0 {
		return 0
	}
	n := float64(count)
	mean := sum / n
	v := sumSq/n - mean*mean
	if v < 0 { // guard tiny negative from cancellation
		return 0
	}
	return v
}

// Quantile returns the q-th quantile (0<=q<=1) of xs using linear
// interpolation between closest ranks. It sorts a copy; xs is unchanged.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return quantileSorted(s, q)
}

func quantileSorted(s []float64, q float64) float64 {
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Quantiles returns several quantiles in one sort pass.
func Quantiles(xs []float64, qs ...float64) []float64 {
	out := make([]float64, len(qs))
	if len(xs) == 0 {
		for i := range out {
			out[i] = math.NaN()
		}
		return out
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	for i, q := range qs {
		out[i] = quantileSorted(s, q)
	}
	return out
}

// Mean returns the arithmetic mean of xs, or NaN when empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Normalize scales xs into [0,1] by its own min/max. A constant series
// maps to all zeros. The input is unchanged; a new slice is returned.
func Normalize(xs []float64) []float64 {
	out := make([]float64, len(xs))
	if len(xs) == 0 {
		return out
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	span := hi - lo
	for i, x := range xs {
		if span == 0 {
			out[i] = 0
		} else {
			out[i] = (x - lo) / span
		}
	}
	return out
}

// NormalizeByMax scales xs by its maximum (keeping zero at zero), the
// normalization the paper uses for variance and duration plots.
func NormalizeByMax(xs []float64) []float64 {
	out := make([]float64, len(xs))
	hi := 0.0
	for _, x := range xs {
		if x > hi {
			hi = x
		}
	}
	for i, x := range xs {
		if hi == 0 {
			out[i] = 0
		} else {
			out[i] = x / hi
		}
	}
	return out
}

// LinearFit is an ordinary least squares fit y = Slope*x + Intercept.
type LinearFit struct {
	Slope     float64
	Intercept float64
	R2        float64
	N         int
}

// FitLinear computes the OLS fit of y on x. Panics if the lengths differ;
// returns a zero fit for fewer than 2 points or zero x-variance.
func FitLinear(x, y []float64) LinearFit {
	if len(x) != len(y) {
		panic(fmt.Sprintf("stats: FitLinear length mismatch %d vs %d", len(x), len(y)))
	}
	n := float64(len(x))
	if len(x) < 2 {
		return LinearFit{N: len(x)}
	}
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var sxx, sxy, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return LinearFit{Intercept: my, N: len(x)}
	}
	slope := sxy / sxx
	fit := LinearFit{Slope: slope, Intercept: my - slope*mx, N: len(x)}
	if syy == 0 {
		fit.R2 = 1
	} else {
		// R^2 = 1 - SSE/SST for the fitted line.
		sse := syy - slope*sxy
		fit.R2 = 1 - sse/syy
	}
	return fit
}

// Predict evaluates the fitted line at x.
func (f LinearFit) Predict(x float64) float64 { return f.Slope*x + f.Intercept }

// Residuals returns y[i] - Predict(x[i]) for each point, the quantity
// plotted in the paper's Fig. 2 residual panels.
func (f LinearFit) Residuals(x, y []float64) []float64 {
	if len(x) != len(y) {
		panic("stats: Residuals length mismatch")
	}
	out := make([]float64, len(x))
	for i := range x {
		out[i] = y[i] - f.Predict(x[i])
	}
	return out
}

// Pearson returns the Pearson correlation coefficient of x and y.
func Pearson(x, y []float64) float64 {
	f := FitLinear(x, y)
	if f.Slope < 0 {
		return -math.Sqrt(f.R2)
	}
	return math.Sqrt(f.R2)
}
