package stats

import (
	"fmt"
	"math"
	"time"
)

// Histogram is a log-scaled latency histogram (HDR-style) covering
// 1 ns .. ~1193 h with bounded relative error, suitable for streaming
// p50/p99/p99.9 extraction without retaining samples.
//
// Values are bucketed into 64 exponents x subBuckets linear sub-buckets,
// giving a worst-case relative quantile error of 1/subBuckets.
type Histogram struct {
	counts [64][histSubBuckets]uint64
	total  uint64
	sum    float64
	max    int64
	min    int64
}

const histSubBuckets = 32

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{min: math.MaxInt64}
}

// Record adds one observation of v nanoseconds. Negative values count
// as zero.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	e, s := histBucket(v)
	h.counts[e][s]++
	h.total++
	h.sum += float64(v)
	if v > h.max {
		h.max = v
	}
	if v < h.min {
		h.min = v
	}
}

// RecordDuration adds one observation of d.
func (h *Histogram) RecordDuration(d time.Duration) { h.Record(int64(d)) }

func histBucket(v int64) (exp, sub int) {
	if v < histSubBuckets {
		return 0, int(v)
	}
	exp = 63 - leadingZeros64(uint64(v))
	// Keep the top log2(subBuckets) bits after the leading one.
	shift := exp - 5 // log2(histSubBuckets) == 5
	if shift < 0 {
		shift = 0
	}
	sub = int((uint64(v) >> uint(shift)) & (histSubBuckets - 1))
	return exp, sub
}

func histBucketLow(exp, sub int) int64 {
	if exp == 0 {
		return int64(sub)
	}
	shift := exp - 5
	if shift < 0 {
		shift = 0
	}
	return (int64(1) << uint(exp)) | (int64(sub) << uint(shift))
}

func leadingZeros64(x uint64) int {
	n := 0
	if x == 0 {
		return 64
	}
	for x&(1<<63) == 0 {
		x <<= 1
		n++
	}
	return n
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.total }

// Sum returns the sum of all observations (ns).
func (h *Histogram) Sum() float64 { return h.sum }

// Mean returns the mean observation in nanoseconds.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Max returns the largest recorded value (exact).
func (h *Histogram) Max() int64 {
	if h.total == 0 {
		return 0
	}
	return h.max
}

// Min returns the smallest recorded value (exact).
func (h *Histogram) Min() int64 {
	if h.total == 0 {
		return 0
	}
	return h.min
}

// Quantile returns an approximation of the q-th quantile in nanoseconds.
func (h *Histogram) Quantile(q float64) int64 {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(math.Ceil(q * float64(h.total)))
	if target == 0 {
		target = 1
	}
	var seen uint64
	for e := 0; e < 64; e++ {
		for s := 0; s < histSubBuckets; s++ {
			c := h.counts[e][s]
			if c == 0 {
				continue
			}
			seen += c
			if seen >= target {
				v := histBucketLow(e, s)
				if v > h.max {
					v = h.max
				}
				if v < h.min {
					v = h.min
				}
				return v
			}
		}
	}
	return h.max
}

// P99 is shorthand for Quantile(0.99), the paper's headline tail metric.
func (h *Histogram) P99() int64 { return h.Quantile(0.99) }

// Merge folds another histogram into h.
func (h *Histogram) Merge(o *Histogram) {
	for e := range o.counts {
		for s := range o.counts[e] {
			h.counts[e][s] += o.counts[e][s]
		}
	}
	h.total += o.total
	h.sum += o.sum
	if o.total > 0 {
		if o.max > h.max {
			h.max = o.max
		}
		if o.min < h.min {
			h.min = o.min
		}
	}
}

// Reset clears the histogram.
func (h *Histogram) Reset() { *h = Histogram{min: math.MaxInt64} }

// String summarizes the distribution.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v max=%v",
		h.total, time.Duration(h.Mean()), time.Duration(h.Quantile(0.5)),
		time.Duration(h.P99()), time.Duration(h.Max()))
}
