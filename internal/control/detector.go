package control

import (
	"fmt"
	"math"
	"time"

	"reqlens/internal/stats"
	"reqlens/internal/telemetry"
)

// Sample is one estimation window's probe read-out, the detector's only
// input — all three fields come from the in-kernel probes, never from
// client-side ground truth.
type Sample struct {
	SendVarUS2 float64 // Eq. 2 variance of send deltas (µs²)
	RPS        float64 // Eq. 1 send-rate estimate (req/s)
	PollMeanNS float64 // Fig. 4 mean epoll_wait duration (ns)
}

// Signal names which chart raised an alarm.
type Signal int

const (
	// SignalVariance is the CUSUM chart on log₂ send-delta variance —
	// the paper's knee detector, sensitive to the upward variance
	// explosion at saturation.
	SignalVariance Signal = iota
	// SignalPoll is the two-sided EWMA chart on log₂ poll duration —
	// sensitive to slack collapsing (overload) or the poll distribution
	// shifting under network degradation.
	SignalPoll
)

func (s Signal) String() string {
	switch s {
	case SignalVariance:
		return "variance"
	case SignalPoll:
		return "poll"
	}
	return fmt.Sprintf("signal(%d)", int(s))
}

// Alarm is one tripped detection with its timestamp.
type Alarm struct {
	At     time.Duration // sim offset passed to Observe
	Window int           // 0-based index of the tripping sample
	Signal Signal        // which chart tripped (variance wins ties)
	Score  float64       // the tripping chart's statistic
}

// DetectorConfig tunes the online saturation detector. The zero value
// takes calibrated defaults.
type DetectorConfig struct {
	// Warmup is how many leading samples train the baseline before the
	// charts arm; during warmup Observe never alarms. Default 8.
	Warmup int
	// VarDrift and VarThreshold are the CUSUM k and h on standardized
	// log₂ send-delta variance. Defaults 0.5 and 6.
	VarDrift, VarThreshold float64
	// PollLambda and PollLimit are the EWMA smoothing weight and
	// control-limit width on standardized log₂ poll duration. Defaults
	// 0.3 and 7.
	PollLambda, PollLimit float64
	// Telemetry, when non-nil, receives control_samples_total and
	// control_alarms_total counters.
	Telemetry *telemetry.Registry
}

func (c DetectorConfig) withDefaults() DetectorConfig {
	if c.Warmup <= 0 {
		c.Warmup = 8
	}
	if c.VarDrift <= 0 {
		c.VarDrift = 0.5
	}
	if c.VarThreshold <= 0 {
		c.VarThreshold = 6
	}
	if c.PollLambda <= 0 {
		c.PollLambda = 0.3
	}
	if c.PollLimit <= 0 {
		c.PollLimit = 7
	}
	return c
}

// sigmaFloor keeps standardization sane when the warmup baseline is
// near-constant (a perfectly paced workload has tiny log-variance
// spread): residuals are measured against at least this many log₂
// units, so a genuine regime change still standardizes to a large
// value while quantization noise does not. Calibration: healthy poll
// baselines spread ~0.03 log₂ units window-to-window, and the subtlest
// real fault worth catching (5% loss on a 10ms link) shifts the poll
// mean by ~0.36 — a floor of 0.1 keeps that shift above the EWMA limit
// (z ≈ 3.6) while healthy jitter stays an order of magnitude below it.
const sigmaFloor = 0.1

// SaturationDetector consumes per-window Samples and raises typed
// alarms once a chart leaves its self-calibrated baseline. It is
// allocation-free per Observe.
type SaturationDetector struct {
	cfg DetectorConfig

	varBase  stats.Online // warmup baseline of log₂(SendVarUS2+1)
	pollBase stats.Online // warmup baseline of log₂(PollMeanNS+1)
	cusum    *stats.CUSUM
	ewma     *stats.EWMA

	n int // samples consumed

	telSamples *telemetry.Counter
	telAlarms  *telemetry.Counter
}

// NewSaturationDetector builds a detector; zero config fields take the
// calibrated defaults.
func NewSaturationDetector(cfg DetectorConfig) *SaturationDetector {
	cfg = cfg.withDefaults()
	return &SaturationDetector{
		cfg:        cfg,
		cusum:      stats.NewCUSUM(cfg.VarDrift, cfg.VarThreshold),
		ewma:       stats.NewEWMA(cfg.PollLambda, cfg.PollLimit),
		telSamples: cfg.Telemetry.Counter("control_samples_total"),
		telAlarms:  cfg.Telemetry.Counter("control_alarms_total"),
	}
}

// Warmed reports whether the baseline is trained and the charts are
// armed.
func (d *SaturationDetector) Warmed() bool { return d.n >= d.cfg.Warmup }

// Windows returns how many samples the detector has consumed.
func (d *SaturationDetector) Windows() int { return d.n }

// standardize returns x's residual against base, with the floored
// sigma.
func standardize(x float64, base *stats.Online) float64 {
	sigma := base.Stddev()
	if sigma < sigmaFloor {
		sigma = sigmaFloor
	}
	return (x - base.Mean()) / sigma
}

// Observe folds one window's sample. During warmup it trains the
// baseline and never alarms; afterwards it standardizes the sample
// against the frozen baseline and reports the first chart that trips
// (variance wins when both do).
func (d *SaturationDetector) Observe(at time.Duration, s Sample) (Alarm, bool) {
	d.telSamples.Inc()
	w := d.n
	d.n++
	varLog := math.Log2(s.SendVarUS2 + 1)
	pollLog := math.Log2(s.PollMeanNS + 1)
	if w < d.cfg.Warmup {
		d.varBase.Add(varLog)
		d.pollBase.Add(pollLog)
		return Alarm{}, false
	}
	varTrip := d.cusum.Observe(standardize(varLog, &d.varBase))
	pollTrip := d.ewma.Observe(standardize(pollLog, &d.pollBase))
	switch {
	case varTrip:
		d.telAlarms.Inc()
		return Alarm{At: at, Window: w, Signal: SignalVariance, Score: d.cusum.Stat()}, true
	case pollTrip:
		d.telAlarms.Inc()
		return Alarm{At: at, Window: w, Signal: SignalPoll, Score: d.ewma.Value()}, true
	}
	return Alarm{}, false
}

// Reset clears the charts and the baseline for a fresh run.
func (d *SaturationDetector) Reset() {
	d.varBase.Reset()
	d.pollBase.Reset()
	d.cusum.Reset()
	d.ewma.Reset()
	d.n = 0
}
