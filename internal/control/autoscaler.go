package control

import (
	"time"

	"reqlens/internal/telemetry"
)

// Action is an autoscaler verdict for one observation window.
type Action int

const (
	ActionNone Action = iota
	ActionScaleUp
	ActionScaleDown
)

func (a Action) String() string {
	switch a {
	case ActionScaleUp:
		return "scale-up"
	case ActionScaleDown:
		return "scale-down"
	}
	return "none"
}

// Decision is one committed capacity change.
type Decision struct {
	At          time.Duration // when the decision was taken
	Action      Action
	From, To    int           // capacity in CPUs
	EffectiveAt time.Duration // when the new capacity lands (At+Latency for ups)
	Reason      string        // "alarm", "low-slack", or "high-slack"
}

// AutoscalerConfig tunes the closed-loop capacity controller. Zero
// fields take calibrated defaults.
type AutoscalerConfig struct {
	// Min and Max bound capacity in CPUs. Defaults 1 and 8.
	Min, Max int
	// StepUp and StepDown are CPUs added/removed per decision.
	// Scale-ups are deliberately larger than scale-downs (fast to
	// recover, slow to give back). Defaults 2 and 1.
	StepUp, StepDown int
	// LowSlack and HighSlack are the hysteresis band on the poll-slack
	// estimate in [0,1]: below LowSlack the pool grows, above HighSlack
	// it shrinks, and in between it holds — the dead band that stops
	// limit cycling. Defaults 0.10 and 0.60.
	LowSlack, HighSlack float64
	// Cooldown is the minimum spacing between decisions. Default 2s.
	Cooldown time.Duration
	// Latency models scale-up actuation delay (VM boot, pod schedule):
	// an up-decision's capacity lands at At+Latency, and no further
	// decision is taken while one is in flight. Scale-downs are
	// immediate (releasing capacity is cheap). Default 0.
	Latency time.Duration
	// Telemetry, when non-nil, receives control_scale_ups_total and
	// control_scale_downs_total counters.
	Telemetry *telemetry.Registry
}

func (c AutoscalerConfig) withDefaults() AutoscalerConfig {
	if c.Min <= 0 {
		c.Min = 1
	}
	if c.Max <= 0 {
		c.Max = 8
	}
	if c.Max < c.Min {
		c.Max = c.Min
	}
	if c.StepUp <= 0 {
		c.StepUp = 2
	}
	if c.StepDown <= 0 {
		c.StepDown = 1
	}
	if c.LowSlack <= 0 {
		c.LowSlack = 0.10
	}
	if c.HighSlack <= 0 {
		c.HighSlack = 0.60
	}
	if c.HighSlack <= c.LowSlack {
		c.HighSlack = c.LowSlack + 0.25
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 2 * time.Second
	}
	return c
}

// Autoscaler is a deterministic hysteresis controller over whole-CPU
// capacity. Feed it one observation per window; it returns at most one
// Decision, which the caller actuates (kernel.SetOnlineCPUs at
// EffectiveAt). Allocation-free per Observe.
type Autoscaler struct {
	cfg AutoscalerConfig
	cur int // target capacity (includes in-flight ups)

	lastAt  time.Duration // last decision time
	decided bool          // a decision has been taken (arms cooldown)
	pending time.Duration // in-flight scale-up lands at this offset
	inFlit  bool

	telUps   *telemetry.Counter
	telDowns *telemetry.Counter
}

// NewAutoscaler builds a controller starting at start CPUs (clamped to
// the configured bounds).
func NewAutoscaler(start int, cfg AutoscalerConfig) *Autoscaler {
	cfg = cfg.withDefaults()
	if start < cfg.Min {
		start = cfg.Min
	}
	if start > cfg.Max {
		start = cfg.Max
	}
	return &Autoscaler{
		cfg:      cfg,
		cur:      start,
		telUps:   cfg.Telemetry.Counter("control_scale_ups_total"),
		telDowns: cfg.Telemetry.Counter("control_scale_downs_total"),
	}
}

// Target returns the current target capacity, counting in-flight ups.
func (a *Autoscaler) Target() int { return a.cur }

// Observe folds one window: alarmed is the detector's verdict and
// slack the poll-based headroom estimate in [0,1]. It returns a
// Decision when the controller commits a change this window.
func (a *Autoscaler) Observe(at time.Duration, alarmed bool, slack float64) (Decision, bool) {
	if a.inFlit {
		if at < a.pending {
			return Decision{}, false // actuation in flight: hold
		}
		a.inFlit = false
	}
	if a.decided && at-a.lastAt < a.cfg.Cooldown {
		return Decision{}, false
	}
	switch {
	case alarmed || slack < a.cfg.LowSlack:
		if a.cur >= a.cfg.Max {
			return Decision{}, false
		}
		to := a.cur + a.cfg.StepUp
		if to > a.cfg.Max {
			to = a.cfg.Max
		}
		reason := "low-slack"
		if alarmed {
			reason = "alarm"
		}
		d := Decision{At: at, Action: ActionScaleUp, From: a.cur, To: to,
			EffectiveAt: at + a.cfg.Latency, Reason: reason}
		a.cur = to
		a.lastAt = at
		a.decided = true
		if a.cfg.Latency > 0 {
			a.pending = d.EffectiveAt
			a.inFlit = true
		}
		a.telUps.Inc()
		return d, true
	case !alarmed && slack > a.cfg.HighSlack:
		if a.cur <= a.cfg.Min {
			return Decision{}, false
		}
		to := a.cur - a.cfg.StepDown
		if to < a.cfg.Min {
			to = a.cfg.Min
		}
		d := Decision{At: at, Action: ActionScaleDown, From: a.cur, To: to,
			EffectiveAt: at, Reason: "high-slack"}
		a.cur = to
		a.lastAt = at
		a.decided = true
		a.telDowns.Inc()
		return d, true
	}
	return Decision{}, false
}
