package control

import (
	"math/rand"
	"testing"
	"time"

	"reqlens/internal/telemetry"
)

// healthySample synthesizes one in-control window read-out: variance,
// rate, and poll mean jittering a few percent around fixed operating
// points.
func healthySample(rng *rand.Rand) Sample {
	return Sample{
		SendVarUS2: 400 * (1 + 0.05*rng.NormFloat64()),
		RPS:        50_000 * (1 + 0.02*rng.NormFloat64()),
		PollMeanNS: 80_000 * (1 + 0.05*rng.NormFloat64()),
	}
}

func TestDetectorWarmupNeverAlarms(t *testing.T) {
	d := NewSaturationDetector(DetectorConfig{Warmup: 10})
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10; i++ {
		// Wild inputs during warmup must train, not trip.
		s := Sample{SendVarUS2: float64(1 + i*1000), PollMeanNS: float64(1 + i*100000)}
		_ = s
		if _, ok := d.Observe(time.Duration(i)*time.Second, healthySample(rng)); ok {
			t.Fatalf("alarm during warmup window %d", i)
		}
	}
	if !d.Warmed() {
		t.Fatal("detector not warmed after Warmup samples")
	}
	if d.Windows() != 10 {
		t.Fatalf("Windows() = %d, want 10", d.Windows())
	}
}

func TestDetectorHealthyStreamStaysQuiet(t *testing.T) {
	d := NewSaturationDetector(DetectorConfig{})
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		if a, ok := d.Observe(time.Duration(i)*100*time.Millisecond, healthySample(rng)); ok {
			t.Fatalf("false alarm at window %d: %+v", i, a)
		}
	}
}

func TestDetectorCatchesVarianceKnee(t *testing.T) {
	d := NewSaturationDetector(DetectorConfig{})
	rng := rand.New(rand.NewSource(3))
	const onset = 30
	for i := 0; i < onset; i++ {
		if _, ok := d.Observe(time.Duration(i)*time.Second, healthySample(rng)); ok {
			t.Fatalf("false alarm at healthy window %d", i)
		}
	}
	for i := onset; i < onset+20; i++ {
		s := healthySample(rng)
		s.SendVarUS2 *= 50 // the paper's variance explosion at the knee
		if a, ok := d.Observe(time.Duration(i)*time.Second, s); ok {
			if a.Signal != SignalVariance {
				t.Fatalf("knee attributed to %v, want variance", a.Signal)
			}
			if a.Window < onset || a.At != time.Duration(a.Window)*time.Second {
				t.Fatalf("alarm stamped window %d at %v", a.Window, a.At)
			}
			if a.Window-onset > 6 {
				t.Fatalf("detection delay %d windows, want <= 6", a.Window-onset)
			}
			return
		}
	}
	t.Fatal("50x variance knee never detected")
}

func TestDetectorCatchesPollShift(t *testing.T) {
	d := NewSaturationDetector(DetectorConfig{})
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 30; i++ {
		d.Observe(time.Duration(i)*time.Second, healthySample(rng))
	}
	for i := 30; i < 60; i++ {
		s := healthySample(rng)
		s.PollMeanNS *= 40 // netem-style poll inflation, variance intact
		if a, ok := d.Observe(time.Duration(i)*time.Second, s); ok {
			if a.Signal != SignalPoll {
				t.Fatalf("poll shift attributed to %v", a.Signal)
			}
			return
		}
	}
	t.Fatal("40x poll shift never detected")
}

func TestDetectorReset(t *testing.T) {
	d := NewSaturationDetector(DetectorConfig{Warmup: 2})
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 5; i++ {
		d.Observe(time.Duration(i), healthySample(rng))
	}
	d.Reset()
	if d.Warmed() || d.Windows() != 0 {
		t.Fatal("Reset left detector state behind")
	}
}

func TestDetectorTelemetry(t *testing.T) {
	reg := telemetry.New()
	d := NewSaturationDetector(DetectorConfig{Warmup: 2, Telemetry: reg})
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 4; i++ {
		d.Observe(time.Duration(i), healthySample(rng))
	}
	s := healthySample(rng)
	s.SendVarUS2 *= 1e6
	for i := 4; i < 12; i++ {
		d.Observe(time.Duration(i), s)
	}
	snap := reg.Snapshot()
	if snap["control_samples_total"] != 12 {
		t.Fatalf("control_samples_total = %v, want 12", snap["control_samples_total"])
	}
	if snap["control_alarms_total"] == 0 {
		t.Fatal("control_alarms_total stayed zero through a 1e6x knee")
	}
}

func TestSignalAndCauseStrings(t *testing.T) {
	if SignalVariance.String() != "variance" || SignalPoll.String() != "poll" {
		t.Fatal("Signal strings")
	}
	if Signal(9).String() != "signal(9)" || Cause(9).String() != "cause(9)" {
		t.Fatal("out-of-range strings")
	}
	want := []string{"overload", "netem", "noisy-neighbor", "cpu-offline"}
	for i, c := range Causes() {
		if c.String() != want[i] {
			t.Fatalf("Causes()[%d] = %v, want %v", i, c, want[i])
		}
	}
	if CauseNone.String() != "none" {
		t.Fatal("CauseNone string")
	}
}

// baselineEvidence is a healthy operating point: mostly on-CPU or
// blocked on idle waits, no queueing, no foreign traffic.
func baselineEvidence() Evidence {
	return Evidence{OnCPUShare: 0.45, RunnableShare: 0.02, BlockedShare: 0.53,
		ForeignShare: 0.01, RPS: 50_000, SendVarUS2: 400, PollMeanNS: 80_000}
}

func learnedAttributor() *Attributor {
	a := NewAttributor(AttributorConfig{})
	for i := 0; i < 10; i++ {
		a.Learn(baselineEvidence())
	}
	return a
}

func TestAttributorClassifies(t *testing.T) {
	cases := []struct {
		name string
		post Evidence
		want Cause
	}{
		{"overload", Evidence{OnCPUShare: 0.70, RunnableShare: 0.20, BlockedShare: 0.10,
			ForeignShare: 0.01, RPS: 90_000}, CauseOverload},
		{"netem", Evidence{OnCPUShare: 0.25, RunnableShare: 0.03, BlockedShare: 0.72,
			ForeignShare: 0.01, RPS: 48_000}, CauseNetem},
		{"noisy-neighbor", Evidence{OnCPUShare: 0.40, RunnableShare: 0.25, BlockedShare: 0.35,
			ForeignShare: 0.40, RPS: 40_000}, CauseNoisyNeighbor},
		{"cpu-offline", Evidence{OnCPUShare: 0.50, RunnableShare: 0.30, BlockedShare: 0.20,
			ForeignShare: 0.01, RPS: 45_000}, CauseCPUOffline},
		// Loss-style netem: every share sits at baseline but polls
		// stretched — the elimination rule's poll arm.
		{"netem-loss", Evidence{OnCPUShare: 0.44, RunnableShare: 0.02, BlockedShare: 0.54,
			ForeignShare: 0.01, RPS: 49_000, SendVarUS2: 450, PollMeanNS: 110_000}, CauseNetem},
		// Jitter-style netem: shares and polls at baseline, only the
		// send-delta variance blew up — the elimination rule's
		// variance arm.
		{"netem-jitter", Evidence{OnCPUShare: 0.45, RunnableShare: 0.02, BlockedShare: 0.54,
			ForeignShare: 0.01, RPS: 50_000, SendVarUS2: 5_000, PollMeanNS: 82_000}, CauseNetem},
	}
	for _, c := range cases {
		a := learnedAttributor()
		for i := 0; i < 5; i++ {
			a.Note(c.post)
		}
		if got := a.Classify(); got != c.want {
			t.Errorf("%s: Classify() = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestAttributorNothingNoted(t *testing.T) {
	a := learnedAttributor()
	if got := a.Classify(); got != CauseNone {
		t.Fatalf("Classify() with nothing noted = %v, want none", got)
	}
	// Post-alarm evidence identical to baseline matches no rule.
	a.Note(baselineEvidence())
	if got := a.Classify(); got != CauseNone {
		t.Fatalf("Classify() on baseline-shaped evidence = %v, want none", got)
	}
	if a.Noted() != 1 {
		t.Fatalf("Noted() = %d, want 1", a.Noted())
	}
	a.Reset()
	if a.Noted() != 0 {
		t.Fatal("Reset left noted windows behind")
	}
}

func TestAutoscalerHysteresisAndCooldown(t *testing.T) {
	a := NewAutoscaler(4, AutoscalerConfig{Min: 2, Max: 8, Cooldown: 2 * time.Second})
	at := func(s int) time.Duration { return time.Duration(s) * time.Second }

	// Dead band: no alarm, slack inside [low, high] — hold.
	if _, ok := a.Observe(at(0), false, 0.30); ok {
		t.Fatal("scaled inside the dead band")
	}
	// Alarm: scale up by StepUp.
	d, ok := a.Observe(at(1), true, 0.30)
	if !ok || d.Action != ActionScaleUp || d.From != 4 || d.To != 6 || d.Reason != "alarm" {
		t.Fatalf("alarm decision = %+v, ok=%v", d, ok)
	}
	// Cooldown: an immediate follow-up alarm is held.
	if _, ok := a.Observe(at(2), true, 0.05); ok {
		t.Fatal("decision inside cooldown")
	}
	// Past cooldown: low slack scales up again, capped at Max.
	d, ok = a.Observe(at(4), false, 0.05)
	if !ok || d.To != 8 || d.Reason != "low-slack" {
		t.Fatalf("low-slack decision = %+v, ok=%v", d, ok)
	}
	// At Max: further pressure is a no-op.
	if _, ok := a.Observe(at(7), true, 0.01); ok {
		t.Fatal("scaled above Max")
	}
	// High slack: scale down by StepDown, immediately effective.
	d, ok = a.Observe(at(10), false, 0.80)
	if !ok || d.Action != ActionScaleDown || d.From != 8 || d.To != 7 || d.EffectiveAt != at(10) {
		t.Fatalf("scale-down decision = %+v, ok=%v", d, ok)
	}
	if a.Target() != 7 {
		t.Fatalf("Target() = %d, want 7", a.Target())
	}
}

func TestAutoscalerActuationLatency(t *testing.T) {
	a := NewAutoscaler(2, AutoscalerConfig{Min: 1, Max: 8,
		Cooldown: time.Second, Latency: 3 * time.Second})
	d, ok := a.Observe(0, true, 0)
	if !ok || d.EffectiveAt != 3*time.Second {
		t.Fatalf("up decision = %+v, want EffectiveAt=3s", d)
	}
	// While the up is in flight, nothing else may be decided — even
	// past the cooldown.
	if _, ok := a.Observe(2*time.Second, true, 0); ok {
		t.Fatal("decision while actuation in flight")
	}
	// Once landed (and past cooldown), decisions resume.
	if _, ok := a.Observe(4*time.Second, true, 0); !ok {
		t.Fatal("no decision after actuation landed")
	}
}

func TestAutoscalerBounds(t *testing.T) {
	a := NewAutoscaler(99, AutoscalerConfig{Min: 2, Max: 4, Cooldown: time.Second})
	if a.Target() != 4 {
		t.Fatalf("start clamped to %d, want Max=4", a.Target())
	}
	a = NewAutoscaler(0, AutoscalerConfig{Min: 2, Max: 4, Cooldown: time.Second})
	if a.Target() != 2 {
		t.Fatalf("start clamped to %d, want Min=2", a.Target())
	}
	// At Min, high slack is a no-op.
	if _, ok := a.Observe(0, false, 0.99); ok {
		t.Fatal("scaled below Min")
	}
}

// TestControlZeroAlloc pins the whole per-window control path
// allocation-free: detector, attributor, and autoscaler Observe.
func TestControlZeroAlloc(t *testing.T) {
	d := NewSaturationDetector(DetectorConfig{Warmup: 4})
	at := NewAttributor(AttributorConfig{})
	sc := NewAutoscaler(4, AutoscalerConfig{})
	s := Sample{SendVarUS2: 400, RPS: 50_000, PollMeanNS: 80_000}
	e := baselineEvidence()
	var i int
	allocs := testing.AllocsPerRun(1000, func() {
		i++
		d.Observe(time.Duration(i), s)
		at.Note(e)
		at.Classify()
		sc.Observe(time.Duration(i), false, 0.3)
	})
	if allocs != 0 {
		t.Fatalf("control hot path allocates %.1f/op; want 0", allocs)
	}
}

// BenchmarkDetectorHotPath is the detector-throughput benchmark
// exported to BENCH_control.json (samples/s).
func BenchmarkDetectorHotPath(b *testing.B) {
	d := NewSaturationDetector(DetectorConfig{})
	s := Sample{SendVarUS2: 400, RPS: 50_000, PollMeanNS: 80_000}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Observe(time.Duration(i), s)
	}
}
