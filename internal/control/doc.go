// Package control closes the loop on the paper's feedback-free
// saturation signals: it turns per-window probe read-outs into typed
// alarms, alarms into cause attributions, and attributions into
// capacity actions — all deterministic and driven entirely inside the
// simulation clock.
//
// Three pieces compose:
//
//   - SaturationDetector wraps the streaming changepoint primitives in
//     internal/stats (a one-sided CUSUM on the Eq. 2 send-delta
//     variance, a two-sided EWMA chart on the Fig. 4 poll-slack
//     signal). It self-calibrates on a short healthy warmup, then
//     standardizes each window against that baseline — no offline
//     training, no client feedback, exactly the deployment the paper
//     argues for.
//
//   - Attributor classifies a confirmed alarm into a cause class by
//     fusing the three deployed signal families: the variance knee
//     (what tripped), the wait-state shares from the sched probes
//     (netem inflates blocked time; CPU contention inflates runnable,
//     per DESIGN.md §10), and the sketch-level TopOffenders from the
//     attribution probes (a noisy neighbor is visible as foreign-tgid
//     syscall share, per §9). harness.AttributionMatrix scores its
//     precision and recall against ground-truth fault windows.
//
//   - Autoscaler maps detector state plus the poll-slack estimate onto
//     whole-CPU capacity steps with hysteresis bands, a cooldown, and
//     modeled actuation latency; kernel.SetOnlineCPUs is the actuator.
//     harness.AutoscaleScenario measures QoS recovery time as a
//     function of that latency.
//
// Everything on the per-window path is allocation-free: the detector,
// attributor, and autoscaler each hold O(1) state and perform O(1)
// work per Observe, pinned by testing.AllocsPerRun.
package control
