package control

import "fmt"

// Cause is the attributed root-cause class of a saturation alarm.
type Cause int

const (
	// CauseNone means no degradation was attributed (healthy run, or
	// the evidence matched no class).
	CauseNone Cause = iota
	// CauseOverload: offered load exceeds capacity — observed send rate
	// surges above the healthy baseline while runnable share inflates.
	CauseOverload
	// CauseNetem: network delay/loss — blocked share inflates while
	// runnable share stays near baseline (the server waits on the wire,
	// not on a CPU; DESIGN.md §10).
	CauseNetem
	// CauseNoisyNeighbor: a co-located tenant steals capacity — its
	// syscalls appear as foreign-tgid share in the attribution
	// sketches (DESIGN.md §9) alongside runnable inflation.
	CauseNoisyNeighbor
	// CauseCPUOffline: capacity shrank — runnable share inflates while
	// the observed rate holds or drops (no surge, no foreign traffic).
	CauseCPUOffline
)

func (c Cause) String() string {
	switch c {
	case CauseNone:
		return "none"
	case CauseOverload:
		return "overload"
	case CauseNetem:
		return "netem"
	case CauseNoisyNeighbor:
		return "noisy-neighbor"
	case CauseCPUOffline:
		return "cpu-offline"
	}
	return fmt.Sprintf("cause(%d)", int(c))
}

// Causes lists the fault classes in rendering order.
func Causes() []Cause {
	return []Cause{CauseOverload, CauseNetem, CauseNoisyNeighbor, CauseCPUOffline}
}

// Evidence is one window's fused probe read-out, the attributor's
// input. Shares are fractions of the window (wait-state probes);
// ForeignShare is the non-server fraction of sketch-attributed syscall
// counts; RPS is the Eq. 1 estimate.
type Evidence struct {
	OnCPUShare    float64
	RunnableShare float64
	BlockedShare  float64
	ForeignShare  float64
	RPS           float64
	SendVarUS2    float64 // Eq. 2 send-delta variance (µs²)
	PollMeanNS    float64 // Fig. 4 mean epoll_wait duration (ns)
}

// AttributorConfig holds the decision thresholds, all deltas against
// the learned healthy baseline. Zero fields take calibrated defaults.
type AttributorConfig struct {
	// ForeignJump: foreign syscall share must rise by this much to
	// blame a noisy neighbor. Default 0.10.
	ForeignJump float64
	// BlockedJump: blocked share must rise by this much to blame the
	// network. Default 0.08.
	BlockedJump float64
	// RunnableJump separates CPU-contention causes from network ones.
	// Default 0.05.
	RunnableJump float64
	// RPSSurge: observed rate must exceed baseline by this fraction to
	// blame overload rather than shrunk capacity. Default 0.20.
	RPSSurge float64
	// PollStretch: the mean poll duration must exceed baseline by this
	// multiple to blame the network when no share moved. Every
	// CPU-side cause (overload, offline cores, a noisy tenant)
	// *shortens* polls — work piles up and epoll_wait returns ready —
	// so polls stretching with flat shares leaves only the wire.
	// Default 1.2.
	PollStretch float64
	// VarRatio: the send-delta variance must exceed baseline by this
	// multiple for the variance-knee fallback (network degradation that
	// perturbs timing without any CPU-side signature — jitter, say —
	// moves no share at all, only the variance). Default 2.
	VarRatio float64
}

func (c AttributorConfig) withDefaults() AttributorConfig {
	if c.ForeignJump <= 0 {
		c.ForeignJump = 0.10
	}
	if c.BlockedJump <= 0 {
		c.BlockedJump = 0.08
	}
	if c.RunnableJump <= 0 {
		c.RunnableJump = 0.05
	}
	if c.RPSSurge <= 0 {
		c.RPSSurge = 0.20
	}
	if c.PollStretch <= 0 {
		c.PollStretch = 1.2
	}
	if c.VarRatio <= 0 {
		c.VarRatio = 2
	}
	return c
}

// evidenceMean accumulates running means of Evidence fields.
type evidenceMean struct {
	n                                                    float64
	oncpu, runnable, blocked, foreign, rps, varus2, poll float64
}

func (m *evidenceMean) add(e Evidence) {
	m.n++
	m.oncpu += (e.OnCPUShare - m.oncpu) / m.n
	m.runnable += (e.RunnableShare - m.runnable) / m.n
	m.blocked += (e.BlockedShare - m.blocked) / m.n
	m.foreign += (e.ForeignShare - m.foreign) / m.n
	m.rps += (e.RPS - m.rps) / m.n
	m.varus2 += (e.SendVarUS2 - m.varus2) / m.n
	m.poll += (e.PollMeanNS - m.poll) / m.n
}

// Attributor fuses wait-state, sketch, and rate evidence into a cause
// class. Feed the healthy phase through Learn, the post-alarm windows
// through Note, then Classify — classifying window means rather than a
// single window makes the verdict robust to one noisy read-out.
// Allocation-free per call.
type Attributor struct {
	cfg        AttributorConfig
	base, post evidenceMean
}

// NewAttributor builds an attributor; zero config fields take the
// calibrated defaults.
func NewAttributor(cfg AttributorConfig) *Attributor {
	return &Attributor{cfg: cfg.withDefaults()}
}

// Learn folds one healthy-baseline window.
func (a *Attributor) Learn(e Evidence) { a.base.add(e) }

// Note folds one post-alarm window.
func (a *Attributor) Note(e Evidence) { a.post.add(e) }

// Noted returns how many post-alarm windows have been folded.
func (a *Attributor) Noted() int { return int(a.post.n) }

// Classify returns the cause class of the noted degradation, or
// CauseNone when nothing was noted or no rule matches. Rules fire in
// specificity order:
//
//  1. Foreign syscall share jumped → noisy neighbor. Checked first
//     because a heavy tenant also steals CPU (runnable inflates) and
//     depresses the observed rate, mimicking cpu-offline on the
//     wait-state axis alone; the sketches disambiguate.
//  2. Blocked share jumped without a runnable jump → netem. Network
//     degradation parks the server in socket waits, off the run queue.
//  3. Runnable share jumped with an RPS surge → overload; without one
//     → cpu-offline (demand is unchanged, capacity shrank, so the
//     observed rate cannot rise).
//  4. No share moved but polls stretched past PollStretch times
//     baseline, or the send-delta variance rose past VarRatio times
//     baseline → netem. Every CPU-side cause *shortens* polls (work
//     piles up, epoll_wait returns ready) and a tenant would have shown
//     in the sketches, so timing degradation with flat shares leaves
//     only the wire — loss stalls stretch the waits, jitter inflates
//     the variance.
func (a *Attributor) Classify() Cause {
	if a.post.n == 0 {
		return CauseNone
	}
	runnableUp := a.post.runnable-a.base.runnable > a.cfg.RunnableJump
	switch {
	case a.post.foreign-a.base.foreign > a.cfg.ForeignJump:
		return CauseNoisyNeighbor
	case a.post.blocked-a.base.blocked > a.cfg.BlockedJump && !runnableUp:
		return CauseNetem
	case runnableUp && a.post.rps > a.base.rps*(1+a.cfg.RPSSurge):
		return CauseOverload
	case runnableUp:
		return CauseCPUOffline
	case a.post.poll > a.cfg.PollStretch*a.base.poll && a.base.poll > 0:
		return CauseNetem
	case a.post.varus2 > a.cfg.VarRatio*a.base.varus2 && a.base.varus2 > 0:
		return CauseNetem
	}
	return CauseNone
}

// Reset clears both phases for a fresh run.
func (a *Attributor) Reset() {
	a.base = evidenceMean{}
	a.post = evidenceMean{}
}
