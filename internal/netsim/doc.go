// Package netsim simulates the network substrate between clients and
// servers: message-oriented connections with tc-netem-style delay,
// jitter and loss, TCP-like in-order delivery with RTO-based
// retransmission, listeners with accept queues, and epoll/select
// readiness — everything the paper's Section V network-robustness
// experiments manipulate.
//
// The crucial property reproduced here is the asymmetry the paper
// reports in Fig. 5: a lost packet delays the *client's* perception of
// the response by one or more RTOs (and everything behind it, by
// head-of-line blocking), while the *server's* syscall cadence is
// untouched — the send syscall already happened. That is why Eq. 1 and
// the Fig. 3/4 signals survive netem (Table II) yet cannot replace
// failure detection (Section V-A).
//
// Key entry points:
//
//   - New(env) — build a Network on a sim.Env; Network.Listen creates a
//     Listener over a Config-shaped link, Listener.Dial/Accept connect
//     Sock pairs, Network.NewEpoll builds a readiness multiplexer.
//   - Config — netem knobs: Delay, Jitter, Loss, and RTO (shrinking RTO
//     to fast-retransmit scale is the datagram ablation).
//   - Sock.Send / TryRecv — message I/O issued through a kernel.Thread
//     so every operation appears as a syscall to the tracepoints.
//   - Epoll — readiness multiplexing; epoll wait durations are the raw
//     material of the Fig. 4 slack signal. EAGAIN mirrors the kernel's
//     would-block return.
//
// internal/workloads wires servers to listeners; internal/loadgen
// drives the client side.
package netsim
