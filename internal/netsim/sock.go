package netsim

import (
	"reqlens/internal/kernel"
	"reqlens/internal/sim"
)

// EAGAIN is the non-blocking "no data" return value.
const EAGAIN = -11

// endpoint is the receive side of one connection direction: a FIFO of
// delivered messages plus the readers and pollers to wake on delivery.
type endpoint struct {
	queue   []*Message
	readers []*sim.Waker
	sock    *Sock
}

func (e *endpoint) deliver(m *Message) {
	e.queue = append(e.queue, m)
	for _, w := range e.readers {
		w.Wake()
	}
	e.readers = e.readers[:0]
	if e.sock != nil {
		for _, ep := range e.sock.epolls {
			ep.notify()
		}
	}
}

// Sock is one side of an established connection.
type Sock struct {
	net    *Network
	fd     int
	rx     *endpoint
	tx     *pipe
	epolls []*Epoll
	peerFD int
}

// FD returns the socket's file descriptor number.
func (s *Sock) FD() int { return s.fd }

// Readable reports whether a message is waiting (without a syscall).
func (s *Sock) Readable() bool { return len(s.rx.queue) > 0 }

// QueueLen returns the number of queued messages (diagnostics).
func (s *Sock) QueueLen() int { return len(s.rx.queue) }

// NewConn creates an established connection: (a, b) are the two sides,
// each direction shaped by cfg. Used directly by tests; workloads
// usually go through Listen/Dial/Accept.
func (n *Network) NewConn(cfg Config) (a, b *Sock) {
	a = &Sock{net: n, fd: n.fd(), rx: &endpoint{}}
	b = &Sock{net: n, fd: n.fd(), rx: &endpoint{}}
	a.rx.sock = a
	b.rx.sock = b
	a.tx = &pipe{net: n, cfg: cfg, dst: b.rx}
	b.tx = &pipe{net: n, cfg: cfg, dst: a.rx}
	a.peerFD = b.fd
	b.peerFD = a.fd
	return a, b
}

// Send transmits m to the peer as syscall nr (sendto/sendmsg/write). It
// never blocks: buffers are unbounded, as for a server whose responses
// fit the socket buffer.
func (s *Sock) Send(t *kernel.Thread, nr int, m *Message) int64 {
	return t.Invoke(nr, [6]uint64{uint64(s.fd), uint64(m.Size)}, func() int64 {
		s.tx.send(m)
		return int64(m.Size)
	})
}

// TryRecv performs a non-blocking receive as syscall nr (read/recvfrom/
// recvmsg), returning EAGAIN when no message is queued — the pattern of
// epoll-driven servers.
func (s *Sock) TryRecv(t *kernel.Thread, nr int) (*Message, int64) {
	var m *Message
	ret := t.Invoke(nr, [6]uint64{uint64(s.fd)}, func() int64 {
		if len(s.rx.queue) == 0 {
			return EAGAIN
		}
		m = s.rx.queue[0]
		s.rx.queue = s.rx.queue[1:]
		return int64(m.Size)
	})
	return m, ret
}

// Recv performs a blocking receive as syscall nr: the syscall's duration
// includes the wait for data.
func (s *Sock) Recv(t *kernel.Thread, nr int) *Message {
	var m *Message
	t.Invoke(nr, [6]uint64{uint64(s.fd)}, func() int64 {
		for len(s.rx.queue) == 0 {
			s.rx.readers = append(s.rx.readers, t.Waker())
			t.Park()
		}
		m = s.rx.queue[0]
		s.rx.queue = s.rx.queue[1:]
		return int64(m.Size)
	})
	return m
}

// SendBypass transmits without any syscall: the io_uring-style
// kernel-bypass path of the paper's Section V-C limitation study.
func (s *Sock) SendBypass(m *Message) {
	s.tx.send(m)
}

// RecvBypass blocks for a message without any syscall (io_uring-style
// completion-queue wait).
func (s *Sock) RecvBypass(t *kernel.Thread) *Message {
	for len(s.rx.queue) == 0 {
		s.rx.readers = append(s.rx.readers, t.Waker())
		t.Park()
	}
	m := s.rx.queue[0]
	s.rx.queue = s.rx.queue[1:]
	return m
}

// TryRecvBypass pops a message without blocking or syscalls.
func (s *Sock) TryRecvBypass() *Message {
	if len(s.rx.queue) == 0 {
		return nil
	}
	m := s.rx.queue[0]
	s.rx.queue = s.rx.queue[1:]
	return m
}

// Listener accepts incoming connections.
type Listener struct {
	net     *Network
	cfg     Config
	pending []*Sock // server-side socks awaiting accept
	waiters []*sim.Waker
	epolls  []*Epoll
}

// Listen creates a listener whose accepted connections are shaped by cfg.
func (n *Network) Listen(cfg Config) *Listener {
	return &Listener{net: n, cfg: cfg}
}

// Dial connects a client thread to l: it issues the socket syscall,
// creates the connection pair, and enqueues the server side on the
// accept queue after one propagation delay. The client side is returned
// immediately (simplified handshake).
func (l *Listener) Dial(t *kernel.Thread) *Sock {
	var client *Sock
	t.Invoke(kernel.SysSocket, [6]uint64{}, func() int64 {
		var server *Sock
		client, server = l.net.NewConn(l.cfg)
		l.net.env.Post(l.net.effective(l.cfg).Delay, func() {
			l.pending = append(l.pending, server)
			for _, w := range l.waiters {
				w.Wake()
			}
			l.waiters = l.waiters[:0]
			for _, ep := range l.epolls {
				ep.notify()
			}
		})
		return int64(client.fd)
	})
	return client
}

// Accept blocks in an accept syscall until a connection is pending and
// returns the server-side socket.
func (l *Listener) Accept(t *kernel.Thread) *Sock {
	var s *Sock
	t.Invoke(kernel.SysAccept, [6]uint64{}, func() int64 {
		for len(l.pending) == 0 {
			l.waiters = append(l.waiters, t.Waker())
			t.Park()
		}
		s = l.pending[0]
		l.pending = l.pending[1:]
		return int64(s.fd)
	})
	return s
}

// TryAccept accepts without blocking, returning nil when no connection
// is pending.
func (l *Listener) TryAccept(t *kernel.Thread) *Sock {
	var s *Sock
	t.Invoke(kernel.SysAccept, [6]uint64{}, func() int64 {
		if len(l.pending) == 0 {
			return EAGAIN
		}
		s = l.pending[0]
		l.pending = l.pending[1:]
		return int64(s.fd)
	})
	return s
}

// Pending returns the accept-queue depth (diagnostics).
func (l *Listener) Pending() int { return len(l.pending) }
