package netsim

import (
	"math/rand"
	"time"

	"reqlens/internal/sim"
)

// Config is the per-link netem configuration (applied to each direction
// of a connection).
type Config struct {
	Delay  time.Duration // one-way propagation delay
	Jitter time.Duration // uniform extra delay in [0, Jitter)
	Loss   float64       // per-packet loss probability
	RTO    time.Duration // retransmission timeout (default 200ms)
	// BytesPerNS is the link rate; 0 means 10 Gbit/s.
	BytesPerNS float64
}

// DefaultRTO is Linux's minimum TCP retransmission timeout.
const DefaultRTO = 200 * time.Millisecond

func (c Config) rto() time.Duration {
	if c.RTO <= 0 {
		return DefaultRTO
	}
	return c.RTO
}

func (c Config) txTime(size int) time.Duration {
	rate := c.BytesPerNS
	if rate <= 0 {
		rate = 1.25 // 10 Gbit/s in bytes per nanosecond
	}
	return time.Duration(float64(size) / rate)
}

// Network owns connections and the shared randomness for loss/jitter.
type Network struct {
	env    *sim.Env
	rng    *rand.Rand
	nextFD int

	// shape, when non-nil, overrides every link's configuration — the
	// `tc qdisc change` analogue used for mid-run netem fault windows.
	shape *Config

	// global accounting for tests and reports
	packetsSent uint64
	packetsLost uint64
}

// New creates a network on env.
func New(env *sim.Env) *Network {
	return &Network{env: env, rng: env.NewRNG(), nextFD: 3}
}

// Env returns the simulation environment.
func (n *Network) Env() *sim.Env { return n.env }

// PacketsSent returns the number of message transmissions attempted.
func (n *Network) PacketsSent() uint64 { return n.packetsSent }

// PacketsLost returns the number of first-transmission losses.
func (n *Network) PacketsLost() uint64 { return n.packetsLost }

func (n *Network) fd() int {
	n.nextFD++
	return n.nextFD
}

// Reshape overrides the configuration of every link — existing
// connections and ones dialed later — until ClearReshape, the way
// `tc qdisc change` swaps a live qdisc. In-flight messages keep the
// delivery times computed at send; only subsequent sends see cfg.
// Reshape consumes no randomness by itself, so reshaping to the same
// configuration is behaviour-neutral.
func (n *Network) Reshape(cfg Config) {
	n.shape = &cfg
}

// ClearReshape removes the Reshape override, returning every link to
// the configuration it was created with. No-op when nothing is shaped.
func (n *Network) ClearReshape() {
	n.shape = nil
}

// Shaped reports whether a Reshape override is in effect.
func (n *Network) Shaped() bool { return n.shape != nil }

// effective resolves a link's active configuration under any override.
func (n *Network) effective(cfg Config) Config {
	if n.shape != nil {
		return *n.shape
	}
	return cfg
}

// Message is one request or response payload in flight.
type Message struct {
	ID      uint64
	Size    int
	SentAt  sim.Time
	Payload any
}

// pipe is one direction of a connection: it applies netem policy and
// releases messages to the destination endpoint in order.
type pipe struct {
	net         *Network
	cfg         Config
	dst         *endpoint
	lastRelease sim.Time
	prevSend    sim.Time
	hasPrev     bool
}

// send schedules delivery of m according to delay, jitter, loss with
// TCP-like loss recovery, and head-of-line ordering.
//
// Loss recovery follows the two TCP regimes: on a busy pipelined
// connection, later segments generate duplicate ACKs and a loss recovers
// by fast retransmit in about one RTT; on a sparse connection a lost
// segment has nothing behind it and must wait out the retransmission
// timer (min 200ms on Linux), with exponential backoff on repeat loss.
// The regime split is why the paper's loss experiments barely perturb a
// 62k-RPS memcached yet wreck a 21-RPS inference server's tail.
func (p *pipe) send(m *Message) {
	cfg := p.net.effective(p.cfg)
	now := p.net.env.Now()
	gap := now.Sub(p.prevSend)
	dense := p.hasPrev && gap < 2*cfg.Delay+time.Millisecond
	p.prevSend = now
	p.hasPrev = true
	m.SentAt = now
	p.net.packetsSent++

	// Count retransmissions: each (re)transmission is lost independently.
	retx := 0
	for cfg.Loss > 0 && p.net.rng.Float64() < cfg.Loss {
		if retx == 0 {
			p.net.packetsLost++
		}
		retx++
		if retx > 16 { // give up resampling; deliver on the next try
			break
		}
	}
	var retxDelay time.Duration
	if retx > 0 {
		rto := cfg.rto()
		for i := 0; i < retx; i++ {
			if i == 0 && dense {
				// Fast retransmit: ~1 RTT once dup-ACKs arrive.
				fast := 2 * cfg.Delay
				if fast < time.Millisecond {
					fast = time.Millisecond
				}
				retxDelay += fast
				continue
			}
			// Timer path: RTO, then 2*RTO, 4*RTO, ...
			retxDelay += rto
			rto *= 2
		}
	}
	delay := cfg.Delay + cfg.txTime(m.Size) + retxDelay
	if cfg.Jitter > 0 {
		delay += time.Duration(p.net.rng.Float64() * float64(cfg.Jitter))
	}

	arrival := now.Add(delay)
	if arrival < p.lastRelease {
		arrival = p.lastRelease // in-order delivery: HOL blocking
	}
	p.lastRelease = arrival
	p.net.env.PostAt(arrival, func() { p.dst.deliver(m) })
}
