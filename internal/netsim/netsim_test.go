package netsim

import (
	"testing"
	"time"

	"reqlens/internal/kernel"
	"reqlens/internal/machine"
	"reqlens/internal/sim"
)

func testRig(ncpu int) (*sim.Env, *kernel.Kernel, *Network) {
	env := sim.NewEnv(7)
	prof := machine.Profile{
		Name: "t", Sockets: 1, CoresPerSock: ncpu, ThreadsPerCore: 1,
		TimeSlice: time.Millisecond,
	}
	k := kernel.New(env, prof)
	return env, k, New(env)
}

func TestSendRecvAcrossConn(t *testing.T) {
	env, k, n := testRig(2)
	a, b := n.NewConn(Config{Delay: time.Millisecond})
	p := k.NewProcess("p")
	var got *Message
	var recvAt sim.Time
	p.SpawnThread("rx", func(th *kernel.Thread) {
		got = b.Recv(th, kernel.SysRecvfrom)
		recvAt = th.Now()
	})
	p.SpawnThread("tx", func(th *kernel.Thread) {
		a.Send(th, kernel.SysSendto, &Message{ID: 1, Size: 100})
	})
	env.Run()
	if got == nil || got.ID != 1 {
		t.Fatalf("got = %+v", got)
	}
	if recvAt < sim.Time(time.Millisecond) {
		t.Fatalf("received at %v, before the 1ms propagation delay", recvAt)
	}
}

func TestInOrderDelivery(t *testing.T) {
	env, k, n := testRig(2)
	a, b := n.NewConn(Config{Delay: 100 * time.Microsecond})
	p := k.NewProcess("p")
	var ids []uint64
	p.SpawnThread("rx", func(th *kernel.Thread) {
		for i := 0; i < 10; i++ {
			ids = append(ids, b.Recv(th, kernel.SysRead).ID)
		}
	})
	p.SpawnThread("tx", func(th *kernel.Thread) {
		for i := 0; i < 10; i++ {
			a.Send(th, kernel.SysWrite, &Message{ID: uint64(i), Size: 64})
		}
	})
	env.Run()
	for i, id := range ids {
		if id != uint64(i) {
			t.Fatalf("out of order: %v", ids)
		}
	}
}

func TestTryRecvEAGAIN(t *testing.T) {
	env, k, n := testRig(1)
	_, b := n.NewConn(Config{})
	p := k.NewProcess("p")
	var ret int64
	p.SpawnThread("rx", func(th *kernel.Thread) {
		_, ret = b.TryRecv(th, kernel.SysRead)
	})
	env.Run()
	if ret != EAGAIN {
		t.Fatalf("TryRecv on empty = %d, want EAGAIN", ret)
	}
}

func TestLossDelaysDeliveryByRTO(t *testing.T) {
	// With Loss=1 capped at 16 retransmissions the message still arrives,
	// after the cumulative backoff. Use a 50% loss and verify that some
	// messages arrive much later than the base delay while all arrive.
	env, k, n := testRig(2)
	// Sparse sends (10ms apart > 2*delay+1ms) keep the RTO path active.
	a, b := n.NewConn(Config{Delay: time.Millisecond, Loss: 0.5, RTO: 10 * time.Millisecond})
	p := k.NewProcess("p")
	const N = 100
	var arrivals []sim.Time
	p.SpawnThread("rx", func(th *kernel.Thread) {
		for i := 0; i < N; i++ {
			b.Recv(th, kernel.SysRead)
			arrivals = append(arrivals, th.Now())
		}
	})
	p.SpawnThread("tx", func(th *kernel.Thread) {
		for i := 0; i < N; i++ {
			a.Send(th, kernel.SysWrite, &Message{ID: uint64(i), Size: 64})
			th.Sleep(10 * time.Millisecond)
		}
	})
	env.Run()
	if len(arrivals) != N {
		t.Fatalf("only %d/%d messages arrived", len(arrivals), N)
	}
	if n.PacketsLost() == 0 {
		t.Fatal("no packets recorded lost at 50% loss")
	}
	late := 0
	for i, at := range arrivals {
		sent := sim.Time(i) * sim.Time(10*time.Millisecond)
		if at.Sub(sent) > 5*time.Millisecond {
			late++
		}
	}
	if late == 0 {
		t.Fatal("no RTO-delayed deliveries at 50% loss")
	}
}

func TestFastRetransmitOnDenseConnection(t *testing.T) {
	// Back-to-back sends on a lossy link recover in ~1 RTT, not an RTO.
	// Low loss keeps double-loss (which rightly falls back to the RTO
	// timer, as in TCP) out of the picture.
	env, k, n := testRig(2)
	a, b := n.NewConn(Config{Delay: time.Millisecond, Loss: 0.02, RTO: 200 * time.Millisecond})
	p := k.NewProcess("p")
	const N = 300
	var worst time.Duration
	p.SpawnThread("rx", func(th *kernel.Thread) {
		for i := 0; i < N; i++ {
			m := b.Recv(th, kernel.SysRead)
			if d := th.Now().Sub(m.SentAt); d > worst {
				worst = d
			}
		}
	})
	p.SpawnThread("tx", func(th *kernel.Thread) {
		for i := 0; i < N; i++ {
			a.Send(th, kernel.SysWrite, &Message{ID: uint64(i), Size: 64})
			th.Sleep(200 * time.Microsecond) // dense: well under 2*delay
		}
	})
	env.Run()
	if worst >= 100*time.Millisecond {
		t.Fatalf("worst sojourn %v: dense traffic should fast-retransmit, not RTO", worst)
	}
	if worst < 2*time.Millisecond {
		t.Fatalf("worst sojourn %v: losses should still cost ~RTT", worst)
	}
}

func TestZeroLossNoRetransmits(t *testing.T) {
	env, k, n := testRig(2)
	a, b := n.NewConn(Config{Delay: time.Millisecond})
	p := k.NewProcess("p")
	var spread time.Duration
	p.SpawnThread("rx", func(th *kernel.Thread) {
		first := b.Recv(th, kernel.SysRead)
		_ = first
		t0 := th.Now()
		for i := 1; i < 50; i++ {
			b.Recv(th, kernel.SysRead)
		}
		spread = th.Now().Sub(t0)
	})
	p.SpawnThread("tx", func(th *kernel.Thread) {
		for i := 0; i < 50; i++ {
			a.Send(th, kernel.SysWrite, &Message{ID: uint64(i), Size: 64})
		}
	})
	env.Run()
	if n.PacketsLost() != 0 {
		t.Fatal("lossless link recorded losses")
	}
	// All 50 sends happen back-to-back; with fixed delay they arrive in a
	// tight burst.
	if spread > time.Millisecond {
		t.Fatalf("arrival spread %v too wide for lossless fixed-delay link", spread)
	}
}

func TestHeadOfLineBlocking(t *testing.T) {
	// Message 0 is lost (forced) while message 1 is not; in-order
	// delivery must hold message 1 back behind message 0.
	env, k, n := testRig(2)
	// Construct loss deterministically: full loss for exactly the first
	// send by toggling the config around sends.
	a, b := n.NewConn(Config{Delay: time.Millisecond, RTO: 20 * time.Millisecond})
	p := k.NewProcess("p")
	var arrivals []sim.Time
	p.SpawnThread("rx", func(th *kernel.Thread) {
		for i := 0; i < 2; i++ {
			b.Recv(th, kernel.SysRead)
			arrivals = append(arrivals, th.Now())
		}
	})
	p.SpawnThread("tx", func(th *kernel.Thread) {
		a.tx.cfg.Loss = 1 // first message: guaranteed lost 16 times
		a.Send(th, kernel.SysWrite, &Message{ID: 0, Size: 64})
		a.tx.cfg.Loss = 0
		a.Send(th, kernel.SysWrite, &Message{ID: 1, Size: 64})
	})
	env.Run()
	if len(arrivals) != 2 {
		t.Fatalf("arrivals = %v", arrivals)
	}
	if arrivals[1] < arrivals[0] {
		t.Fatal("in-order delivery violated")
	}
	// Message 1 would arrive at ~1ms alone; HOL pushes it past 20ms.
	if arrivals[1] < sim.Time(20*time.Millisecond) {
		t.Fatalf("message 1 at %v, expected HOL delay behind lost message 0", arrivals[1])
	}
}

func TestListenerDialAccept(t *testing.T) {
	env, k, n := testRig(2)
	l := n.Listen(Config{Delay: time.Millisecond})
	srv := k.NewProcess("srv")
	cli := k.NewProcess("cli")
	var srvSock, cliSock *Sock
	srv.SpawnThread("acceptor", func(th *kernel.Thread) {
		srvSock = l.Accept(th)
	})
	cli.SpawnThread("dialer", func(th *kernel.Thread) {
		cliSock = l.Dial(th)
		cliSock.Send(th, kernel.SysSendto, &Message{ID: 9, Size: 10})
	})
	var got *Message
	srv.SpawnThread("reader", func(th *kernel.Thread) {
		th.Sleep(10 * time.Millisecond)
		if srvSock != nil {
			got, _ = srvSock.TryRecv(th, kernel.SysRead)
		}
	})
	env.Run()
	if srvSock == nil || cliSock == nil {
		t.Fatal("connection not established")
	}
	if got == nil || got.ID != 9 {
		t.Fatalf("server read %+v", got)
	}
}

func TestTryAccept(t *testing.T) {
	env, k, n := testRig(1)
	l := n.Listen(Config{})
	p := k.NewProcess("p")
	var first, second *Sock
	p.SpawnThread("t", func(th *kernel.Thread) {
		first = l.TryAccept(th) // nothing pending
		l.Dial(th)
		th.Sleep(time.Millisecond)
		second = l.TryAccept(th)
	})
	env.Run()
	if first != nil {
		t.Fatal("TryAccept on empty queue should be nil")
	}
	if second == nil {
		t.Fatal("TryAccept after dial should succeed")
	}
}

func TestEpollWaitReadiness(t *testing.T) {
	env, k, n := testRig(2)
	a, b := n.NewConn(Config{Delay: time.Millisecond})
	ep := n.NewEpoll()
	p := k.NewProcess("p")
	var ready []*Sock
	var wakeAt sim.Time
	p.SpawnThread("poller", func(th *kernel.Thread) {
		ep.Add(th, b)
		ready = ep.Wait(th, kernel.SysEpollWait, 0)
		wakeAt = th.Now()
	})
	p.SpawnThread("tx", func(th *kernel.Thread) {
		th.Sleep(5 * time.Millisecond)
		a.Send(th, kernel.SysWrite, &Message{ID: 1, Size: 8})
	})
	env.Run()
	if len(ready) != 1 || ready[0] != b {
		t.Fatalf("ready = %v", ready)
	}
	if wakeAt < sim.Time(6*time.Millisecond) {
		t.Fatalf("woke at %v, want >= 6ms (send at 5ms + 1ms delay)", wakeAt)
	}
}

func TestEpollWaitTimeout(t *testing.T) {
	env, k, n := testRig(1)
	_, b := n.NewConn(Config{})
	ep := n.NewEpoll()
	p := k.NewProcess("p")
	var ready []*Sock
	var wakeAt sim.Time
	p.SpawnThread("poller", func(th *kernel.Thread) {
		ep.Add(nil, b)
		ready = ep.Wait(th, kernel.SysEpollWait, 3*time.Millisecond)
		wakeAt = th.Now()
	})
	env.Run()
	if len(ready) != 0 {
		t.Fatalf("ready = %v, want timeout", ready)
	}
	if wakeAt < sim.Time(3*time.Millisecond) {
		t.Fatalf("timeout fired early at %v", wakeAt)
	}
}

func TestEpollImmediateReadiness(t *testing.T) {
	env, k, n := testRig(2)
	a, b := n.NewConn(Config{})
	ep := n.NewEpoll()
	p := k.NewProcess("p")
	var dur time.Duration
	p.SpawnThread("tx", func(th *kernel.Thread) {
		a.Send(th, kernel.SysWrite, &Message{ID: 1, Size: 8})
	})
	p.SpawnThread("poller", func(th *kernel.Thread) {
		th.Sleep(time.Millisecond) // data already queued
		ep.Add(nil, b)
		t0 := th.Now()
		ep.Wait(th, kernel.SysEpollWait, 0)
		dur = th.Now().Sub(t0)
	})
	env.Run()
	if dur > 100*time.Microsecond {
		t.Fatalf("epoll_wait on ready socket took %v, should be immediate", dur)
	}
}

func TestEpollListenerReadiness(t *testing.T) {
	env, k, n := testRig(2)
	l := n.Listen(Config{})
	ep := n.NewEpoll()
	p := k.NewProcess("p")
	accepted := false
	p.SpawnThread("srv", func(th *kernel.Thread) {
		ep.AddListener(th, l)
		ep.Wait(th, kernel.SysEpollWait, 0)
		if l.TryAccept(th) != nil {
			accepted = true
		}
	})
	p.SpawnThread("cli", func(th *kernel.Thread) {
		th.Sleep(2 * time.Millisecond)
		l.Dial(th)
	})
	env.Run()
	if !accepted {
		t.Fatal("listener readiness did not wake epoll")
	}
}

func TestSelectSyscallNumberUsed(t *testing.T) {
	env, k, n := testRig(2)
	a, b := n.NewConn(Config{})
	ep := n.NewEpoll()
	var sawSelect bool
	k.Tracer().AddListener(func(ev kernel.SyscallEvent) {
		if ev.NR == kernel.SysSelect {
			sawSelect = true
		}
	})
	p := k.NewProcess("p")
	p.SpawnThread("poller", func(th *kernel.Thread) {
		ep.Add(nil, b)
		ep.Wait(th, kernel.SysSelect, 0)
	})
	p.SpawnThread("tx", func(th *kernel.Thread) {
		a.Send(th, kernel.SysWrite, &Message{Size: 1})
	})
	env.Run()
	if !sawSelect {
		t.Fatal("select syscall number not propagated to tracepoints")
	}
}

func TestJitterSpreadsArrivals(t *testing.T) {
	env, k, n := testRig(2)
	a, b := n.NewConn(Config{Delay: time.Millisecond, Jitter: 2 * time.Millisecond})
	p := k.NewProcess("p")
	var gaps []time.Duration
	p.SpawnThread("rx", func(th *kernel.Thread) {
		prev := sim.Time(-1)
		for i := 0; i < 100; i++ {
			b.Recv(th, kernel.SysRead)
			if prev >= 0 {
				gaps = append(gaps, th.Now().Sub(prev))
			}
			prev = th.Now()
		}
	})
	p.SpawnThread("tx", func(th *kernel.Thread) {
		for i := 0; i < 100; i++ {
			a.Send(th, kernel.SysWrite, &Message{ID: uint64(i), Size: 8})
			th.Sleep(time.Millisecond)
		}
	})
	env.Run()
	varied := 0
	for _, g := range gaps {
		if g != time.Millisecond {
			varied++
		}
	}
	if varied == 0 {
		t.Fatal("jitter produced perfectly regular arrivals")
	}
}

func TestBypassPathsSkipSyscalls(t *testing.T) {
	env, k, n := testRig(2)
	a, b := n.NewConn(Config{Delay: time.Millisecond})
	var seen int
	k.Tracer().AddListener(func(kernel.SyscallEvent) { seen++ })
	p := k.NewProcess("p")
	var got *Message
	p.SpawnThread("rx", func(th *kernel.Thread) {
		got = b.RecvBypass(th)
	})
	p.SpawnThread("tx", func(th *kernel.Thread) {
		a.SendBypass(&Message{ID: 5, Size: 10})
	})
	env.Run()
	if got == nil || got.ID != 5 {
		t.Fatalf("bypass delivery failed: %+v", got)
	}
	if seen != 0 {
		t.Fatalf("bypass path made %d syscalls, want 0", seen)
	}
}

func TestTryRecvBypass(t *testing.T) {
	env, k, n := testRig(1)
	a, b := n.NewConn(Config{})
	p := k.NewProcess("p")
	var empty, full *Message
	p.SpawnThread("t", func(th *kernel.Thread) {
		empty = b.TryRecvBypass()
		a.SendBypass(&Message{ID: 3, Size: 1})
		th.Sleep(time.Millisecond)
		full = b.TryRecvBypass()
	})
	env.Run()
	if empty != nil {
		t.Fatal("TryRecvBypass on empty queue should be nil")
	}
	if full == nil || full.ID != 3 {
		t.Fatalf("TryRecvBypass = %+v", full)
	}
}

func TestEpollTotalQueued(t *testing.T) {
	env, k, n := testRig(2)
	a, b := n.NewConn(Config{})
	ep := n.NewEpoll()
	ep.Add(nil, b)
	p := k.NewProcess("p")
	p.SpawnThread("tx", func(th *kernel.Thread) {
		for i := 0; i < 7; i++ {
			a.Send(th, kernel.SysWrite, &Message{ID: uint64(i), Size: 8})
		}
	})
	env.Run()
	if got := ep.TotalQueued(); got != 7 {
		t.Fatalf("TotalQueued = %d, want 7", got)
	}
	if b.QueueLen() != 7 {
		t.Fatalf("QueueLen = %d", b.QueueLen())
	}
}

func TestPacketAccounting(t *testing.T) {
	env, k, n := testRig(2)
	a, _ := n.NewConn(Config{})
	p := k.NewProcess("p")
	p.SpawnThread("tx", func(th *kernel.Thread) {
		for i := 0; i < 5; i++ {
			a.Send(th, kernel.SysWrite, &Message{Size: 8})
		}
	})
	env.Run()
	if n.PacketsSent() != 5 || n.PacketsLost() != 0 {
		t.Fatalf("sent=%d lost=%d", n.PacketsSent(), n.PacketsLost())
	}
}

func TestSockFDsDistinct(t *testing.T) {
	_, _, n := testRig(1)
	a, b := n.NewConn(Config{})
	c, d := n.NewConn(Config{})
	fds := map[int]bool{a.FD(): true, b.FD(): true, c.FD(): true, d.FD(): true}
	if len(fds) != 4 {
		t.Fatal("fd collision")
	}
}

// TestReshapeOverridesAndRestores: Reshape swaps every link's shaping
// mid-run (messages sent under the override see the new delay) and
// ClearReshape returns links to their creation config.
func TestReshapeOverridesAndRestores(t *testing.T) {
	env, k, n := testRig(2)
	a, b := n.NewConn(Config{Delay: time.Millisecond})
	p := k.NewProcess("p")
	var recvAt [3]sim.Time
	p.SpawnThread("rx", func(th *kernel.Thread) {
		for i := range recvAt {
			b.Recv(th, kernel.SysRecvfrom)
			recvAt[i] = th.Now()
		}
	})
	p.SpawnThread("tx", func(th *kernel.Thread) {
		a.Send(th, kernel.SysSendto, &Message{ID: 1, Size: 64})
		th.Sleep(10 * time.Millisecond)
		n.Reshape(Config{Delay: 20 * time.Millisecond})
		a.Send(th, kernel.SysSendto, &Message{ID: 2, Size: 64})
		th.Sleep(40 * time.Millisecond)
		n.ClearReshape()
		a.Send(th, kernel.SysSendto, &Message{ID: 3, Size: 64})
	})
	env.Run()
	if recvAt[0] > sim.Time(2*time.Millisecond) {
		t.Fatalf("pre-shape delivery at %v, want ~1ms", recvAt[0])
	}
	if shaped := recvAt[1].Sub(sim.Time(10 * time.Millisecond)); shaped < 20*time.Millisecond {
		t.Fatalf("shaped delivery took %v, want >= the 20ms override", shaped)
	}
	if restored := recvAt[2].Sub(sim.Time(50 * time.Millisecond)); restored > 2*time.Millisecond {
		t.Fatalf("post-clear delivery took %v, want the original ~1ms", restored)
	}
	if n.Shaped() {
		t.Fatal("Shaped() true after ClearReshape")
	}
}

// TestReshapeAppliesToNewConns: connections dialed under an override
// are shaped by it too (the override is network-wide, not per-link).
func TestReshapeAppliesToNewConns(t *testing.T) {
	env, k, n := testRig(2)
	n.Reshape(Config{Delay: 5 * time.Millisecond})
	a, b := n.NewConn(Config{})
	p := k.NewProcess("p")
	var recvAt sim.Time
	p.SpawnThread("rx", func(th *kernel.Thread) {
		b.Recv(th, kernel.SysRecvfrom)
		recvAt = th.Now()
	})
	p.SpawnThread("tx", func(th *kernel.Thread) {
		a.Send(th, kernel.SysSendto, &Message{ID: 1, Size: 64})
	})
	env.Run()
	if recvAt < sim.Time(5*time.Millisecond) {
		t.Fatalf("delivery at %v under a 5ms override", recvAt)
	}
}
