package netsim

import (
	"time"

	"reqlens/internal/kernel"
	"reqlens/internal/sim"
)

// Epoll is an epoll instance (or, with the select syscall number, a
// select-style readiness wait — Tailbench's legacy path in the paper).
// Threads block in Wait until a registered socket or listener becomes
// readable or the timeout expires; the duration of that syscall is the
// paper's saturation-slack signal (Fig. 4).
type Epoll struct {
	net       *Network
	socks     []*Sock
	listeners []*Listener
	waiters   []*sim.Waker
}

// NewEpoll creates an epoll instance.
func (n *Network) NewEpoll() *Epoll {
	return &Epoll{net: n}
}

// Add registers s for readiness. When t is non-nil an epoll_ctl syscall
// is issued (visible in traces, as in the paper's Fig. 1 setup phase).
func (ep *Epoll) Add(t *kernel.Thread, s *Sock) {
	reg := func() int64 {
		ep.socks = append(ep.socks, s)
		s.epolls = append(s.epolls, ep)
		return 0
	}
	if t != nil {
		t.Invoke(kernel.SysEpollCtl, [6]uint64{uint64(s.fd)}, reg)
	} else {
		reg()
	}
	if s.Readable() {
		ep.notify() // data arrived before registration
	}
}

// AddListener registers l for accept-readiness.
func (ep *Epoll) AddListener(t *kernel.Thread, l *Listener) {
	reg := func() int64 {
		ep.listeners = append(ep.listeners, l)
		l.epolls = append(l.epolls, ep)
		return 0
	}
	if t != nil {
		t.Invoke(kernel.SysEpollCtl, [6]uint64{}, reg)
	} else {
		reg()
	}
}

// notify wakes all waiters; they re-check readiness.
func (ep *Epoll) notify() {
	for _, w := range ep.waiters {
		w.Wake()
	}
	ep.waiters = ep.waiters[:0]
}

// TotalQueued sums the receive-queue depths of all registered sockets —
// the backlog a server's queue-maintenance pass must walk.
func (ep *Epoll) TotalQueued() int {
	n := 0
	for _, s := range ep.socks {
		n += len(s.rx.queue)
	}
	return n
}

// ready collects readable sockets.
func (ep *Epoll) ready() []*Sock {
	var out []*Sock
	for _, s := range ep.socks {
		if s.Readable() {
			out = append(out, s)
		}
	}
	return out
}

// readyCount also counts pending listeners.
func (ep *Epoll) readyCount() int {
	n := len(ep.ready())
	for _, l := range ep.listeners {
		n += len(l.pending)
	}
	return n
}

// Wait blocks as syscall nr (SysEpollWait or SysSelect) until readiness
// or timeout (timeout <= 0 waits forever). It returns the readable
// sockets; an empty slice means the timeout fired.
func (ep *Epoll) Wait(t *kernel.Thread, nr int, timeout time.Duration) []*Sock {
	var out []*Sock
	t.Invoke(nr, [6]uint64{}, func() int64 {
		var timeoutEv *sim.Event
		deadline := sim.Time(-1)
		if timeout > 0 {
			deadline = t.Now().Add(timeout)
		}
		for {
			if n := ep.readyCount(); n > 0 {
				out = ep.ready()
				if timeoutEv != nil {
					timeoutEv.Cancel()
				}
				return int64(n)
			}
			if deadline >= 0 && t.Now() >= deadline {
				return 0
			}
			ep.waiters = append(ep.waiters, t.Waker())
			if deadline >= 0 && timeoutEv == nil {
				timeoutEv = t.Waker().WakeAfter(deadline.Sub(t.Now()))
			}
			t.Park()
		}
	})
	return out
}
