// Package sim provides the deterministic discrete-event simulation core
// every other subsystem runs on.
//
// An Env owns a virtual clock and an event heap. Simulated concurrent
// activities are modeled as Procs: goroutines that are resumed one at a
// time by the event loop, so that for a fixed seed every run is
// bit-for-bit reproducible. All inter-proc wake-ups travel through the
// event heap (ordered by virtual time, then insertion sequence), never
// by direct goroutine-to-goroutine handoff. Randomness is drawn from
// per-component streams derived via Env.NewRNG, so adding a component
// never perturbs the draws seen by another.
//
// This determinism is what lets the reproduction make paper-grade
// claims: reruns are exact, A/B comparisons (e.g. the Section VI probe
// overhead study) share identical arrival sequences, and the harness's
// parallel experiment engine can fan independent simulations across OS
// threads while guaranteeing bit-identical results (each Env is
// confined to the goroutines it spawned; nothing is shared).
//
// Key entry points:
//
//   - NewEnv(seed) — build an environment; Env.Run / RunFor / RunUntil
//     drive it; Env.Schedule posts events.
//   - Env.Spawn — start a Proc (a simulated thread of control); Proc
//     offers Sleep, Park, and Wakers for inter-proc signaling.
//   - Env.NewRNG — derive an independent deterministic random stream.
//   - Env.Shutdown — terminate all procs and reclaim their goroutines
//     (a Rig's Close calls this).
//
// In paper terms this package replaces real wall-clock execution on the
// authors' testbed; everything the probes timestamp (syscall enter/exit,
// Section III) reads the virtual clock.
package sim
