package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestClockStartsAtZero(t *testing.T) {
	e := NewEnv(1)
	if e.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", e.Now())
	}
}

func TestScheduleOrdering(t *testing.T) {
	e := NewEnv(1)
	var got []int
	e.Schedule(30*time.Nanosecond, func() { got = append(got, 3) })
	e.Schedule(10*time.Nanosecond, func() { got = append(got, 1) })
	e.Schedule(20*time.Nanosecond, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != Time(30) {
		t.Fatalf("final Now() = %v, want 30ns", e.Now())
	}
}

func TestTieBreakBySequence(t *testing.T) {
	e := NewEnv(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5*time.Nanosecond, func() { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events ran out of insertion order: %v", got)
		}
	}
}

func TestCancel(t *testing.T) {
	e := NewEnv(1)
	fired := false
	ev := e.Schedule(time.Nanosecond, func() { fired = true })
	ev.Cancel()
	e.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
	if !ev.Canceled() {
		t.Fatal("Canceled() = false after Cancel")
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEnv(1)
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.Schedule(-time.Nanosecond, func() {})
}

func TestRunUntilStopsAtBoundary(t *testing.T) {
	e := NewEnv(1)
	var fired []Time
	e.Schedule(10*time.Nanosecond, func() { fired = append(fired, e.Now()) })
	e.Schedule(20*time.Nanosecond, func() { fired = append(fired, e.Now()) })
	e.RunUntil(Time(15))
	if len(fired) != 1 {
		t.Fatalf("fired %d events, want 1", len(fired))
	}
	if e.Now() != Time(15) {
		t.Fatalf("Now() = %v, want 15", e.Now())
	}
	e.RunUntil(Time(25))
	if len(fired) != 2 {
		t.Fatalf("fired %d events total, want 2", len(fired))
	}
}

func TestProcSleep(t *testing.T) {
	e := NewEnv(1)
	var wakes []Time
	e.Spawn("sleeper", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(100 * time.Nanosecond)
			wakes = append(wakes, p.Now())
		}
	})
	e.Run()
	want := []Time{100, 200, 300}
	if len(wakes) != len(want) {
		t.Fatalf("wakes = %v, want %v", wakes, want)
	}
	for i := range want {
		if wakes[i] != want[i] {
			t.Fatalf("wakes = %v, want %v", wakes, want)
		}
	}
}

func TestProcsInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		e := NewEnv(42)
		var log []string
		for _, name := range []string{"a", "b", "c"} {
			name := name
			e.Spawn(name, func(p *Proc) {
				for i := 0; i < 5; i++ {
					p.Sleep(time.Duration(10+len(name)) * time.Nanosecond)
					log = append(log, name)
				}
			})
		}
		e.Run()
		return log
	}
	first := run()
	for trial := 0; trial < 5; trial++ {
		if got := run(); len(got) != len(first) {
			t.Fatalf("nondeterministic length: %d vs %d", len(got), len(first))
		} else {
			for i := range got {
				if got[i] != first[i] {
					t.Fatalf("nondeterministic interleaving at %d: %v vs %v", i, got, first)
				}
			}
		}
	}
}

func TestParkAndWake(t *testing.T) {
	e := NewEnv(1)
	var acc []Time
	var w *Waker
	e.Spawn("consumer", func(p *Proc) {
		w = p.NewWaker()
		p.Park()
		acc = append(acc, p.Now())
	})
	e.Spawn("producer", func(p *Proc) {
		p.Sleep(500 * time.Nanosecond)
		w.Wake()
	})
	e.Run()
	if len(acc) != 1 || acc[0] != Time(500) {
		t.Fatalf("consumer woke at %v, want [500]", acc)
	}
}

func TestWakeAfterCancelable(t *testing.T) {
	e := NewEnv(1)
	woke := Time(-1)
	e.Spawn("p", func(p *Proc) {
		w := p.NewWaker()
		ev := w.WakeAfter(1000 * time.Nanosecond) // timeout
		e.Schedule(100*time.Nanosecond, func() { ev.Cancel(); w.Wake() })
		p.Park()
		woke = p.Now()
		p.Sleep(2000 * time.Nanosecond) // outlive the canceled timeout
	})
	e.Run()
	if woke != Time(100) {
		t.Fatalf("woke at %v, want 100", woke)
	}
}

func TestShutdownDrainsProcs(t *testing.T) {
	e := NewEnv(1)
	e.Spawn("forever", func(p *Proc) {
		for {
			p.Sleep(time.Second)
		}
	})
	e.Spawn("parked", func(p *Proc) {
		p.Park() // never woken
	})
	e.RunFor(3 * time.Second)
	if e.LiveProcs() != 2 {
		t.Fatalf("LiveProcs = %d, want 2", e.LiveProcs())
	}
	e.Shutdown()
	if e.LiveProcs() != 0 {
		t.Fatalf("LiveProcs after Shutdown = %d, want 0", e.LiveProcs())
	}
}

func TestNewRNGStreamsIndependent(t *testing.T) {
	e1 := NewEnv(7)
	e2 := NewEnv(7)
	a1, b1 := e1.NewRNG(), e1.NewRNG()
	a2, b2 := e2.NewRNG(), e2.NewRNG()
	for i := 0; i < 100; i++ {
		if a1.Int63() != a2.Int63() || b1.Int63() != b2.Int63() {
			t.Fatal("equal seeds should give equal streams")
		}
	}
}

// Property: for any batch of delays, events fire in nondecreasing time
// order and the clock never goes backwards.
func TestPropertyMonotonicClock(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEnv(3)
		last := Time(-1)
		ok := true
		for _, d := range delays {
			e.Schedule(time.Duration(d)*time.Nanosecond, func() {
				if e.Now() < last {
					ok = false
				}
				last = e.Now()
			})
		}
		e.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: RunUntil(t) leaves Now()==t and never executes events beyond t.
func TestPropertyRunUntilBoundary(t *testing.T) {
	f := func(delays []uint16, horizon uint16) bool {
		e := NewEnv(5)
		bad := false
		for _, d := range delays {
			e.Schedule(time.Duration(d)*time.Nanosecond, func() {
				if e.Now() > Time(horizon) {
					bad = true
				}
			})
		}
		e.RunUntil(Time(horizon))
		return !bad && e.Now() == Time(horizon)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeHelpers(t *testing.T) {
	tt := Time(1_500_000_000)
	if tt.Seconds() != 1.5 {
		t.Fatalf("Seconds() = %v, want 1.5", tt.Seconds())
	}
	if tt.Add(500*time.Millisecond) != Time(2_000_000_000) {
		t.Fatal("Add wrong")
	}
	if tt.Sub(Time(500_000_000)) != time.Second {
		t.Fatal("Sub wrong")
	}
	if tt.String() != "1.5s" {
		t.Fatalf("String() = %q", tt.String())
	}
}

func TestSpawnFromProc(t *testing.T) {
	e := NewEnv(1)
	var childRan Time = -1
	e.Spawn("parent", func(p *Proc) {
		p.Sleep(10 * time.Nanosecond)
		e.Spawn("child", func(c *Proc) {
			c.Sleep(5 * time.Nanosecond)
			childRan = c.Now()
		})
		p.Sleep(100 * time.Nanosecond)
	})
	e.Run()
	if childRan != Time(15) {
		t.Fatalf("child ran at %v, want 15", childRan)
	}
}
