package sim

import (
	"testing"
	"time"
)

// lockstepCounters builds n envs, each with a self-rescheduling tick
// that increments its slot, and returns the envs plus the counters.
func lockstepCounters(n int, period time.Duration) ([]*Env, []int) {
	envs := make([]*Env, n)
	counts := make([]int, n)
	for i := 0; i < n; i++ {
		i := i
		e := NewEnv(int64(100 + i))
		var tick func()
		tick = func() {
			counts[i]++
			e.Post(period, tick)
		}
		e.Post(period, tick)
		envs[i] = e
	}
	return envs, counts
}

// TestLockstepShardingInvariance is the structural determinism claim:
// advancing the same set of envs with 1 worker or many produces
// identical per-env states.
func TestLockstepShardingInvariance(t *testing.T) {
	const n = 9
	run := func(workers int) ([]int, []Time) {
		ls := NewLockstep(workers)
		envs, counts := lockstepCounters(n, time.Millisecond)
		for _, e := range envs {
			ls.Add(e)
		}
		// Mixed per-env targets, then a common barrier.
		targets := make([]Time, n)
		for i := range targets {
			targets[i] = Time(time.Duration(10+i) * time.Millisecond)
		}
		ls.Advance(targets)
		ls.AdvanceAll(Time(50 * time.Millisecond))
		nows := make([]Time, n)
		for i, e := range envs {
			nows[i] = e.Now()
		}
		ls.Shutdown()
		return counts, nows
	}

	c1, t1 := run(1)
	c4, t4 := run(4)
	c16, t16 := run(16)
	for i := 0; i < n; i++ {
		if c1[i] != c4[i] || c1[i] != c16[i] {
			t.Fatalf("env %d: tick counts diverge across worker counts: %d/%d/%d", i, c1[i], c4[i], c16[i])
		}
		if t1[i] != t4[i] || t1[i] != t16[i] || t1[i] != Time(50*time.Millisecond) {
			t.Fatalf("env %d: clocks diverge: %v/%v/%v", i, t1[i], t4[i], t16[i])
		}
		if c1[i] != 50 {
			t.Fatalf("env %d: expected 50 ticks by 50ms, got %d", i, c1[i])
		}
	}
}

// TestLockstepPanicPropagation: a panic inside any env surfaces on the
// calling goroutine, and with several panicking envs the lowest index
// wins regardless of worker count.
func TestLockstepPanicPropagation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ls := NewLockstep(workers)
		const n = 6
		envs := make([]*Env, n)
		for i := 0; i < n; i++ {
			i := i
			e := NewEnv(int64(i))
			if i == 2 || i == 4 {
				e.Post(time.Millisecond, func() { panic(i) })
			}
			envs[i] = e
			ls.Add(e)
		}
		func() {
			defer func() {
				v := recover()
				if v != 2 {
					t.Fatalf("workers=%d: recovered %v, want panic from env 2", workers, v)
				}
			}()
			ls.AdvanceAll(Time(10 * time.Millisecond))
			t.Fatalf("workers=%d: Advance did not propagate the panic", workers)
		}()
		ls.Shutdown()
	}
}

// TestLockstepSharedClock: one expired budget clock aborts every env's
// advance cooperatively.
func TestLockstepSharedClock(t *testing.T) {
	ls := NewLockstep(2)
	envs, _ := lockstepCounters(4, 10*time.Microsecond)
	for _, e := range envs {
		ls.Add(e)
	}
	c := NewClock(0) // no wall deadline; expires only explicitly
	ls.SetClock(c)
	c.Expire()
	defer ls.Shutdown()
	defer func() {
		if _, ok := recover().(Timeout); !ok {
			t.Fatal("expected a sim.Timeout panic from the expired shared clock")
		}
	}()
	ls.AdvanceAll(Time(time.Second))
	t.Fatal("advance should have tripped the budget check")
}

// TestLockstepTargetMismatch pins the misuse guard.
func TestLockstepTargetMismatch(t *testing.T) {
	ls := NewLockstep(1)
	ls.Add(NewEnv(1))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on target/env length mismatch")
		}
	}()
	ls.Advance(make([]Time, 3))
}
