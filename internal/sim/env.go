package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"

	"reqlens/internal/telemetry"
)

// Time is a point in virtual time, in nanoseconds since simulation start.
type Time int64

// Add returns the time d after t.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration from u to t.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Seconds returns t expressed in seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// String formats t as a duration since simulation start.
func (t Time) String() string { return time.Duration(t).String() }

// Event is a scheduled callback. It can be canceled before it fires.
type Event struct {
	at       Time
	seq      uint64
	fn       func()
	canceled bool
	poolable bool // fire-and-forget (Post/PostAt): recycled after firing
	index    int  // heap index, -1 once popped
}

// Cancel prevents the event from firing. Canceling an already-fired or
// already-canceled event is a no-op.
func (e *Event) Cancel() { e.canceled = true }

// Canceled reports whether Cancel was called.
func (e *Event) Canceled() bool { return e.canceled }

// At returns the virtual time the event is scheduled for.
func (e *Event) At() Time { return e.at }

// Env is a discrete-event simulation environment.
type Env struct {
	now      Time
	seq      uint64
	events   eventHeap
	rng      *rand.Rand
	park     chan struct{} // running proc -> event loop handoff
	procs    map[*Proc]struct{}
	stopping bool
	executed uint64

	// clock, when non-nil, is the cooperative execution budget: Step
	// checks it every clockCheckEvery events and panics with Timeout
	// once it expires (see clock.go). Nil — the default — keeps the
	// event loop on a single nil check.
	clock *Clock

	// telEvents mirrors executed into a telemetry counter when the
	// environment is instrumented; nil (a no-op) otherwise. Telemetry is
	// write-only from the simulation's point of view, so instrumenting an
	// environment cannot change its event order or results.
	telEvents *telemetry.Counter

	// free is the recycle list for fire-and-forget events (Post/PostAt).
	// Step returns a poolable event here after it fires, so a steady-state
	// simulation reuses a small working set of Events instead of pressuring
	// the garbage collector once per event. Events handed out by
	// Schedule/ScheduleAt are never pooled: their handles escape to callers
	// who may hold them past the fire time (Cancel, At), so recycling one
	// would let a stale handle cancel an unrelated reused event.
	free []*Event
}

// NewEnv returns an environment with the virtual clock at zero. The seed
// feeds every RNG stream derived via NewRNG, so equal seeds give equal runs.
func NewEnv(seed int64) *Env {
	return &Env{
		rng:   rand.New(rand.NewSource(seed)),
		park:  make(chan struct{}),
		procs: make(map[*Proc]struct{}),
	}
}

// Now returns the current virtual time.
func (e *Env) Now() Time { return e.now }

// Instrument wires the environment's hot-path counters into r
// (sim_events_total: events popped off the heap). A nil registry leaves
// the environment uninstrumented — the disabled path costs one nil check
// per event.
func (e *Env) Instrument(r *telemetry.Registry) {
	e.telEvents = r.Counter("sim_events_total")
}

// Executed returns the number of events processed so far.
func (e *Env) Executed() uint64 { return e.executed }

// NewRNG returns an independent deterministic random stream derived from
// the environment seed. Components should each hold their own stream so
// that adding a component does not perturb the draws seen by others.
func (e *Env) NewRNG() *rand.Rand {
	return rand.New(rand.NewSource(e.rng.Int63()))
}

// Schedule arranges for fn to run at now+d. It returns the event so the
// caller may cancel it. Scheduling in the past panics: it would break
// the monotonicity of virtual time.
func (e *Env) Schedule(d time.Duration, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: schedule %v in the past", d))
	}
	return e.ScheduleAt(e.now.Add(d), fn)
}

// ScheduleAt arranges for fn to run at absolute virtual time t.
func (e *Env) ScheduleAt(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, e.now))
	}
	e.seq++
	ev := &Event{at: t, seq: e.seq, fn: fn}
	heap.Push(&e.events, ev)
	return ev
}

// Post arranges for fn to run at now+d, like Schedule, but returns no
// handle: the event cannot be canceled, and in exchange the environment
// recycles its Event allocation after it fires. Hot paths that schedule
// unconditionally (proc wakeups, packet delivery) should prefer Post;
// steady-state posting allocates nothing. Posting in the past panics.
func (e *Env) Post(d time.Duration, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: schedule %v in the past", d))
	}
	e.PostAt(e.now.Add(d), fn)
}

// PostAt arranges for fn to run at absolute virtual time t with no
// cancellation handle; see Post.
func (e *Env) PostAt(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, e.now))
	}
	e.seq++
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		*ev = Event{at: t, seq: e.seq, fn: fn, poolable: true}
	} else {
		ev = &Event{at: t, seq: e.seq, fn: fn, poolable: true}
	}
	heap.Push(&e.events, ev)
}

// Step runs the single next event, advancing the clock to it. It returns
// false when no events remain. With a Clock attached, every
// clockCheckEvery-th step first verifies the execution budget and
// panics with Timeout when it is exhausted — the cooperative
// cancellation point that lets a supervisor abandon a hung rig.
func (e *Env) Step() bool {
	if e.clock != nil && e.executed&(clockCheckEvery-1) == 0 && e.clock.Expired() {
		panic(Timeout{At: e.now, Events: e.executed})
	}
	for e.events.Len() > 0 {
		ev := heap.Pop(&e.events).(*Event)
		if ev.canceled {
			continue
		}
		e.now = ev.at
		e.executed++
		e.telEvents.Inc()
		fn := ev.fn
		if ev.poolable {
			// Recycle before running fn: the callback may itself Post, and
			// handing the slot back first lets a self-rescheduling tick
			// reuse its own Event. Poolable events have no outside handle,
			// so nothing can observe the reuse.
			ev.fn = nil
			e.free = append(e.free, ev)
		}
		fn()
		return true
	}
	return false
}

// Run processes events until the heap is empty.
func (e *Env) Run() {
	for e.Step() {
	}
}

// RunUntil processes events with timestamps <= t, then sets the clock to
// t. Events scheduled beyond t remain pending.
func (e *Env) RunUntil(t Time) {
	for {
		ev := e.peek()
		if ev == nil || ev.at > t {
			break
		}
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// RunFor advances the simulation by d.
func (e *Env) RunFor(d time.Duration) { e.RunUntil(e.now.Add(d)) }

func (e *Env) peek() *Event {
	for e.events.Len() > 0 {
		ev := e.events[0]
		if ev.canceled {
			heap.Pop(&e.events)
			continue
		}
		return ev
	}
	return nil
}

// Pending returns the number of live (non-canceled) scheduled events.
func (e *Env) Pending() int {
	n := 0
	for _, ev := range e.events {
		if !ev.canceled {
			n++
		}
	}
	return n
}

// LiveProcs returns the number of procs that have started and not finished.
func (e *Env) LiveProcs() int { return len(e.procs) }

// Shutdown terminates every live proc and drains their goroutines. Procs
// blocked in Sleep, Park, or any derived primitive are woken and unwound
// via a panic that the proc wrapper recovers. After Shutdown the
// environment must not be reused.
func (e *Env) Shutdown() {
	e.stopping = true
	for len(e.procs) > 0 {
		for p := range e.procs {
			// A proc whose spawn event never fired (e.g. the execution
			// budget expired before the loop ran it) has no goroutine to
			// unwind; activating it would block on its resume channel
			// forever. Just unregister it.
			if !p.started {
				delete(e.procs, p)
				continue
			}
			if p.waiting {
				p.activate()
			}
		}
	}
}

// eventHeap orders events by (time, sequence).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index, h[j].index = i, j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}
