package sim

import (
	"fmt"
	"sort"
	"sync"
)

// This file is the shared-clock multi-kernel scheduling primitive the
// fleet layer runs on. A cluster simulation holds one Env per node —
// each a private, fully deterministic timeline — and needs to advance
// all of them to common (or per-node) instants: every node reaches its
// scrape time before the aggregation plane reads its export. Lockstep
// does exactly that, optionally sharding the advances across a bounded
// worker pool.
//
// Determinism under sharding is structural, not accidental: an Env is
// single-threaded and shares no mutable state with any other Env, each
// Env is advanced by exactly one worker per round, and the barrier at
// the end of Advance means no reader observes an Env mid-advance. The
// worker count therefore cannot influence any simulated result — only
// wall-clock time — which is the fleet's sibling of the point engine's
// parallelism invariant.

// Lockstep advances a set of independent environments round by round.
// The zero value is unusable; use NewLockstep.
type Lockstep struct {
	envs    []*Env
	workers int
}

// NewLockstep returns a coordinator over no environments. workers
// bounds how many environments advance concurrently per round: <= 1
// runs them sequentially on the calling goroutine (the degenerate,
// trivially deterministic case).
func NewLockstep(workers int) *Lockstep {
	if workers < 1 {
		workers = 1
	}
	return &Lockstep{workers: workers}
}

// Add registers an environment and returns its index. Environments must
// not share state (procs, kernels, networks) with each other.
func (l *Lockstep) Add(e *Env) int {
	l.envs = append(l.envs, e)
	return len(l.envs) - 1
}

// Len returns the number of registered environments.
func (l *Lockstep) Len() int { return len(l.envs) }

// Env returns the i-th registered environment.
func (l *Lockstep) Env(i int) *Env { return l.envs[i] }

// SetClock attaches one shared execution-budget clock to every
// registered environment. Under a supervised fleet point this is what
// makes a deadline kill cooperative across the whole cluster: the first
// event loop to notice expiry unwinds, and every other environment's
// next budget check trips on the same clock.
func (l *Lockstep) SetClock(c *Clock) {
	for _, e := range l.envs {
		e.SetClock(c)
	}
}

// envPanic carries a panic out of a worker goroutine with the index of
// the environment that raised it.
type envPanic struct {
	idx int
	val any
}

// Advance runs every environment i to targets[i] (RunUntil semantics:
// events at or before the target fire, then the clock snaps to it) and
// returns when all have arrived — the barrier the aggregation plane
// reads behind. len(targets) must equal Len.
//
// Panics raised inside an environment (sim.Timeout from a budget
// expiry, or a workload bug) are re-raised on the calling goroutine
// after the round drains, so a supervisor's recover still sees them;
// when several environments panic in one round the lowest-indexed one
// wins, making the propagated value independent of worker scheduling.
func (l *Lockstep) Advance(targets []Time) {
	if len(targets) != len(l.envs) {
		panic(fmt.Sprintf("sim: Lockstep.Advance: %d targets for %d envs", len(targets), len(l.envs)))
	}
	if l.workers == 1 || len(l.envs) == 1 {
		for i, e := range l.envs {
			e.RunUntil(targets[i])
		}
		return
	}

	var (
		mu     sync.Mutex
		panics []envPanic
		wg     sync.WaitGroup
		idx    = make(chan int)
	)
	workers := l.workers
	if workers > len(l.envs) {
		workers = len(l.envs)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				func(i int) {
					defer func() {
						if v := recover(); v != nil {
							mu.Lock()
							panics = append(panics, envPanic{i, v})
							mu.Unlock()
						}
					}()
					l.envs[i].RunUntil(targets[i])
				}(i)
			}
		}()
	}
	for i := range l.envs {
		idx <- i
	}
	close(idx)
	wg.Wait()

	if len(panics) > 0 {
		sort.Slice(panics, func(a, b int) bool { return panics[a].idx < panics[b].idx })
		panic(panics[0].val)
	}
}

// AdvanceAll advances every environment to the same instant t.
func (l *Lockstep) AdvanceAll(t Time) {
	targets := make([]Time, len(l.envs))
	for i := range targets {
		targets[i] = t
	}
	l.Advance(targets)
}

// Shutdown terminates every registered environment (Env.Shutdown), in
// index order. Safe after a panic unwound out of Advance: environments
// that never started or were mid-advance drain cleanly.
func (l *Lockstep) Shutdown() {
	for _, e := range l.envs {
		e.Shutdown()
	}
}
