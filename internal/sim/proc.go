package sim

import "time"

// killed is the sentinel panic value used to unwind a proc during Shutdown.
type killed struct{}

// Proc is a simulated thread of control. Its body runs on a dedicated
// goroutine, but the event loop resumes at most one proc at a time, so
// proc code needs no locking against other procs and execution order is
// fully determined by the event heap.
type Proc struct {
	env       *Env
	name      string
	resume    chan struct{}
	waiting   bool // parked, waiting for activate
	started   bool // the body goroutine exists (its spawn event has fired)
	done      bool
	activate0 func() // p.activate hoisted once; Sleep posts it without allocating
}

// Spawn starts a new proc whose body begins executing at the current
// virtual time (after already-scheduled events at this time).
func (e *Env) Spawn(name string, body func(*Proc)) *Proc {
	p := &Proc{env: e, name: name, resume: make(chan struct{})}
	p.activate0 = p.activate
	e.procs[p] = struct{}{}
	p.waiting = true
	e.Post(0, func() {
		p.started = true
		go func() {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(killed); !ok {
						panic(r)
					}
				}
				p.done = true
				delete(e.procs, p)
				e.park <- struct{}{}
			}()
			<-p.resume
			p.waiting = false
			if e.stopping {
				panic(killed{})
			}
			body(p)
		}()
		// Hand control to the new goroutine and wait for it to park.
		p.resume <- struct{}{}
		<-e.park
	})
	return p
}

// Name returns the proc's diagnostic name.
func (p *Proc) Name() string { return p.name }

// Env returns the owning environment.
func (p *Proc) Env() *Env { return p.env }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.env.now }

// activate resumes a parked proc and blocks until it parks again or
// finishes. It must only be called from event-loop context (inside an
// event callback), never from another proc's body.
func (p *Proc) activate() {
	if p.done || !p.waiting {
		return
	}
	p.waiting = false
	p.resume <- struct{}{}
	<-p.env.park
}

// yield parks the proc and returns control to the event loop. The proc
// resumes when some event calls activate. Must be called from the proc's
// own goroutine.
func (p *Proc) yield() {
	p.waiting = true
	p.env.park <- struct{}{}
	<-p.resume
	if p.env.stopping {
		panic(killed{})
	}
}

// Sleep suspends the proc for virtual duration d.
func (p *Proc) Sleep(d time.Duration) {
	p.env.Post(d, p.activate0)
	p.yield()
}

// Park suspends the proc until another component wakes it via the
// returned Waker. A proc parked without a pending waker event stays
// parked until Shutdown.
func (p *Proc) Park() {
	p.yield()
}

// Waker wakes a parked proc through the event heap. Multiple Wake calls
// before the proc runs collapse into one resume.
type Waker struct {
	p       *Proc
	pending bool
	fire    func() // hoisted wake callback; Wake posts it without allocating
}

// NewWaker returns a Waker bound to p.
func (p *Proc) NewWaker() *Waker {
	w := &Waker{p: p}
	w.fire = func() {
		w.pending = false
		w.p.activate()
	}
	return w
}

// Wake schedules the proc to resume at the current virtual time. Safe to
// call from any proc body or event callback.
func (w *Waker) Wake() {
	if w.pending || w.p.done {
		return
	}
	w.pending = true
	w.p.env.Post(0, w.fire)
}

// WakeAfter schedules the proc to resume after d. It returns the event
// so callers may cancel the wake-up (e.g. a timeout raced by readiness).
func (w *Waker) WakeAfter(d time.Duration) *Event {
	return w.p.env.Schedule(d, func() { w.p.activate() })
}
