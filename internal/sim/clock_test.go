package sim

import (
	"testing"
	"time"
)

// TestClockExpiryUnwindsRun pins the cooperative-cancellation contract:
// an expired clock makes the event loop panic with a typed Timeout at
// the next budget check, and the panic carries the virtual time the run
// had reached.
func TestClockExpiryUnwindsRun(t *testing.T) {
	env := NewEnv(1)
	c := NewClock(0) // no wall deadline; expired explicitly below
	env.SetClock(c)

	// A self-rescheduling event: the heap never drains, like a hung rig.
	var tick func()
	tick = func() { env.Schedule(time.Microsecond, tick) }
	env.Schedule(0, tick)

	c.Expire()
	defer func() {
		r := recover()
		to, ok := r.(Timeout)
		if !ok {
			t.Fatalf("recover = %v (%T), want sim.Timeout", r, r)
		}
		if to.Error() == "" {
			t.Fatal("Timeout must describe itself")
		}
	}()
	env.RunFor(time.Second)
	t.Fatal("run with an expired clock must not complete")
}

// TestClockWallDeadline exercises the time-based expiry path: a clock
// with a tiny budget kills a busy run, while a generous one never
// perturbs it.
func TestClockWallDeadline(t *testing.T) {
	busy := func(c *Clock) (panicked bool) {
		env := NewEnv(2)
		env.SetClock(c)
		var tick func()
		tick = func() { env.Schedule(time.Nanosecond, tick) }
		env.Schedule(0, tick)
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(Timeout); !ok {
					t.Fatalf("unexpected panic %v", r)
				}
				panicked = true
			}
		}()
		env.RunFor(100 * time.Microsecond) // ~100k events if unbudgeted
		return false
	}

	if !busy(NewClock(time.Nanosecond)) {
		t.Fatal("1ns budget must expire a busy run")
	}
	if busy(NewClock(time.Hour)) {
		t.Fatal("generous budget must not fire")
	}
	if busy(nil) {
		t.Fatal("nil clock must never expire")
	}
}

// TestShutdownBeforeProcStart: a budget that expires before the event
// loop ever runs leaves spawned procs' start events unfired — their
// goroutines don't exist yet. Shutdown must unregister them instead of
// blocking forever on their resume channels.
func TestShutdownBeforeProcStart(t *testing.T) {
	env := NewEnv(4)
	c := NewClock(0)
	env.SetClock(c)
	env.Spawn("never-started", func(p *Proc) { p.Park() })
	c.Expire()
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer env.Shutdown()
		defer func() {
			if _, ok := recover().(Timeout); !ok {
				t.Error("expected Timeout")
			}
		}()
		env.RunFor(time.Second)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Shutdown deadlocked on a never-started proc")
	}
	if env.LiveProcs() != 0 {
		t.Fatalf("live procs after shutdown: %d", env.LiveProcs())
	}
}

// TestClockNilSafety: nil clocks are inert on every method.
func TestClockNilSafety(t *testing.T) {
	var c *Clock
	c.Expire()
	if c.Expired() {
		t.Fatal("nil clock expired")
	}
	if NewClock(-1).Expired() {
		t.Fatal("non-positive budget must mean no deadline")
	}
}

// TestClockDoesNotPerturbResults: the same seed with and without an
// unexpired clock executes the identical event sequence.
func TestClockDoesNotPerturbResults(t *testing.T) {
	run := func(c *Clock) (Time, uint64) {
		env := NewEnv(3)
		env.SetClock(c)
		n := 0
		var tick func()
		tick = func() {
			n++
			if n < 1000 {
				env.Schedule(time.Duration(env.NewRNG().Intn(100))*time.Nanosecond, tick)
			}
		}
		env.Schedule(0, tick)
		env.Run()
		return env.Now(), env.Executed()
	}
	t1, n1 := run(nil)
	t2, n2 := run(NewClock(time.Hour))
	if t1 != t2 || n1 != n2 {
		t.Fatalf("clock perturbed the run: (%v,%d) vs (%v,%d)", t1, n1, t2, n2)
	}
}
