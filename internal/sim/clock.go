package sim

import (
	"fmt"
	"sync/atomic"
	"time"
)

// This file is the cooperative execution budget for a simulation run.
// A rig is pure computation — nothing inside it blocks on the outside
// world — so a "hung" rig is really a rig whose event heap keeps
// producing work faster than wall-clock time retires it (an overloaded
// queue that never drains, a fault plan that floods the scheduler).
// Such a rig cannot be preempted from outside without leaking its proc
// goroutines; instead the event loop itself checks a Clock every
// clockCheckEvery events and unwinds with a typed Timeout panic the
// moment the budget is gone. The supervisor (internal/resilience)
// recovers that panic into a deadline-kill; deferred rig.Close calls on
// the unwinding stack shut the environment down cleanly.
//
// Determinism: the clock is read-only to the simulation — expiry either
// never fires (results identical to an unbudgeted run) or abandons the
// whole run. There is no path by which wall-clock time influences a
// completed result.

// clockCheckEvery is the event cadence of the budget check (power of
// two, so the test is a mask). Checking every event would put a
// time.Now() on the hot path; every 256th event bounds detection
// latency to a few microseconds of simulated work while keeping the
// common case at one nil check.
const clockCheckEvery = 256

// Timeout is the panic value the event loop raises when the
// environment's Clock budget expires. It records where virtual time had
// reached so deadline kills are attributable ("stuck at 14s of warmup"
// reads very differently from "stuck at 0"). It implements error so
// supervisors can wrap it directly.
type Timeout struct {
	At     Time   // virtual time when the budget check fired
	Events uint64 // events executed when it fired
}

func (t Timeout) Error() string {
	return fmt.Sprintf("sim: execution budget exhausted at t=%v after %d events", t.At, t.Events)
}

// Clock is a cooperative wall-clock execution budget for one simulation
// run. The event loop of an Env carrying a Clock checks it periodically
// and panics with Timeout once it reports expiry; a nil *Clock never
// expires, so unbudgeted environments stay on the plain path.
//
// A Clock expires either by its wall deadline passing or by an explicit
// Expire call (a watchdog abandoning the run from outside, or a chaos
// injector simulating a hang). Expiry is one-way: once expired, a Clock
// stays expired.
type Clock struct {
	deadline time.Time // zero = no wall deadline
	expired  atomic.Bool
}

// NewClock returns a clock that expires once budget of wall-clock time
// has passed. A non-positive budget yields a clock with no deadline —
// it expires only via Expire.
func NewClock(budget time.Duration) *Clock {
	c := &Clock{}
	if budget > 0 {
		c.deadline = time.Now().Add(budget)
	}
	return c
}

// Expire forces the clock into the expired state immediately. Safe for
// concurrent use and on a nil receiver (no-op).
func (c *Clock) Expire() {
	if c != nil {
		c.expired.Store(true)
	}
}

// Expired reports whether the budget is gone. Nil receivers never
// expire. The wall-deadline comparison is latched, so Expired stays
// true once it has been observed true.
func (c *Clock) Expired() bool {
	if c == nil {
		return false
	}
	if c.expired.Load() {
		return true
	}
	if !c.deadline.IsZero() && time.Now().After(c.deadline) {
		c.expired.Store(true)
		return true
	}
	return false
}

// SetClock attaches a cooperative execution budget to the environment.
// Pass nil to detach. The budget is checked every clockCheckEvery
// events; see Clock.
func (e *Env) SetClock(c *Clock) { e.clock = c }
