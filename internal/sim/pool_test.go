package sim

import (
	"testing"
	"time"
)

// TestPostZeroAllocs pins the fire-and-forget hot path at zero
// allocations per event once the free list is warm: a self-reposting
// tick must reuse its own Event.
func TestPostZeroAllocs(t *testing.T) {
	e := NewEnv(1)
	n := 0
	var tick func()
	tick = func() {
		n++
		e.Post(time.Microsecond, tick)
	}
	e.Post(0, tick)
	// Warm up: allocate the Event, the heap slice, and the free list.
	for i := 0; i < 64; i++ {
		e.Step()
	}
	allocs := testing.AllocsPerRun(1000, func() { e.Step() })
	if allocs != 0 {
		t.Fatalf("steady-state Post/Step allocated %v allocs/op, want 0", allocs)
	}
}

// TestSleepZeroAllocs pins Proc.Sleep at zero allocations per cycle:
// the activate callback is hoisted at Spawn and posted fire-and-forget.
func TestSleepZeroAllocs(t *testing.T) {
	e := NewEnv(1)
	cycles := 0
	e.Spawn("sleeper", func(p *Proc) {
		for {
			p.Sleep(time.Microsecond)
			cycles++ // safe: the event loop resumes one proc at a time
		}
	})
	step := func() {
		start := cycles
		for cycles == start {
			if !e.Step() {
				t.Fatal("event heap drained")
			}
		}
	}
	for i := 0; i < 64; i++ {
		step() // warm up free list and heap capacity
	}
	allocs := testing.AllocsPerRun(1000, step)
	if allocs != 0 {
		t.Fatalf("steady-state Sleep allocated %v allocs/op, want 0", allocs)
	}
}

// TestPostRecyclesEvents verifies the Event recycle loop: a fired
// poolable event lands on the free list and the next Post reuses it.
func TestPostRecyclesEvents(t *testing.T) {
	e := NewEnv(1)
	fn := func() {}
	e.Post(0, fn)
	ev1 := e.events[0]
	if !ev1.poolable {
		t.Fatal("Post produced a non-poolable event")
	}
	e.Step()
	if len(e.free) != 1 {
		t.Fatalf("free list has %d events after fire, want 1", len(e.free))
	}
	if e.free[0].fn != nil {
		t.Fatal("recycled event retains its callback")
	}
	e.Post(0, fn)
	if len(e.free) != 0 {
		t.Fatalf("free list has %d events after reuse, want 0", len(e.free))
	}
	if ev2 := e.events[0]; ev2 != ev1 {
		t.Fatal("Post allocated a fresh Event instead of reusing the free list")
	}
}

// TestScheduleEventsNotPooled verifies that cancelable events handed
// out by Schedule never enter the recycle loop: a caller holding the
// handle past the fire time must not be able to cancel a reused slot.
func TestScheduleEventsNotPooled(t *testing.T) {
	e := NewEnv(1)
	ev := e.Schedule(0, func() {})
	if ev.poolable {
		t.Fatal("Schedule produced a poolable event")
	}
	e.Step()
	if len(e.free) != 0 {
		t.Fatalf("free list has %d events, want 0: Schedule events must not be recycled", len(e.free))
	}
	ev.Cancel() // stale cancel after fire: must stay a harmless no-op
	e.Post(0, func() {})
	if e.events[0].canceled {
		t.Fatal("stale Cancel leaked into a pooled event")
	}
}

// TestPostOrderingMatchesSchedule verifies Post events interleave with
// Schedule events in strict submission (seq) order at equal timestamps,
// so switching a call site to Post cannot perturb determinism.
func TestPostOrderingMatchesSchedule(t *testing.T) {
	e := NewEnv(1)
	var got []int
	e.Schedule(10*time.Nanosecond, func() { got = append(got, 0) })
	e.Post(10*time.Nanosecond, func() { got = append(got, 1) })
	e.Schedule(10*time.Nanosecond, func() { got = append(got, 2) })
	e.Post(5*time.Nanosecond, func() { got = append(got, 3) })
	e.Run()
	want := []int{3, 0, 1, 2}
	for i := range want {
		if i >= len(got) || got[i] != want[i] {
			t.Fatalf("fire order %v, want %v", got, want)
		}
	}
}

// TestPostPastPanics mirrors the Schedule contract: posting in the past
// breaks virtual-time monotonicity and must panic.
func TestPostPastPanics(t *testing.T) {
	e := NewEnv(1)
	defer func() {
		if recover() == nil {
			t.Fatal("Post(-1ns) did not panic")
		}
	}()
	e.Post(-time.Nanosecond, func() {})
}
