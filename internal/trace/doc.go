// Package trace collects and analyzes syscall event streams: the
// userspace side of the paper's methodology. It offers a ground-truth
// recorder (a kernel listener, used to validate the eBPF path), delta
// extraction over sorted traces (Section III "Observability Through
// Syscall Statistics"), enter/exit pairing for durations, and the
// setup / request-processing / shutdown phase classification of Fig. 1.
//
// Key entry points:
//
//   - NewRecorder(k, tgid, limit) — subscribe to a kernel's tracepoints
//     directly (no eBPF), the oracle the probe tests compare against.
//   - Segment(events) — Fig. 1's lifecycle phases (PhaseSetup /
//     PhaseRequest / PhaseShutdown); PhaseOf and RequestOriented
//     classify single syscalls; CountByName builds the census.
//   - Deltas / EnterTimes / PairDurations — the Section III statistics
//     pipeline over sorted events.
//   - ReconstructRequests — per-request timelines from single-threaded
//     handlers' syscall streams (the Section III special case, with the
//     documented breakdown on pipelined drains); ServiceTimes extracts
//     their durations.
//   - Render — the ASCII trace dump behind `cmd/tracedump`.
//
// harness.Fig1 feeds a StreamProbe capture through Segment and
// CountByName to regenerate the paper's Fig. 1.
package trace
