package trace

import (
	"strings"
	"testing"
	"time"

	"reqlens/internal/kernel"
	"reqlens/internal/machine"
	"reqlens/internal/sim"
)

func rig() (*sim.Env, *kernel.Kernel) {
	env := sim.NewEnv(13)
	prof := machine.Profile{
		Name: "t", Sockets: 1, CoresPerSock: 2, ThreadsPerCore: 1,
		TimeSlice: time.Millisecond,
	}
	return env, kernel.New(env, prof)
}

func TestRecorderCapturesAndFilters(t *testing.T) {
	env, k := rig()
	srv := k.NewProcess("srv")
	other := k.NewProcess("other")
	rec := NewRecorder(k, srv.TGID(), 0)
	srv.SpawnThread("w", func(th *kernel.Thread) {
		th.Invoke(kernel.SysRecvfrom, [6]uint64{}, func() int64 { return 10 })
	})
	other.SpawnThread("n", func(th *kernel.Thread) {
		th.Invoke(kernel.SysSendto, [6]uint64{}, func() int64 { return 10 })
	})
	env.Run()
	evs := rec.Events()
	if len(evs) != 2 {
		t.Fatalf("captured %d events, want 2 (other tgid filtered)", len(evs))
	}
	if evs[0].TGID() != srv.TGID() {
		t.Fatal("wrong tgid captured")
	}
	rec.Reset()
	if len(rec.Events()) != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestRecorderLimit(t *testing.T) {
	env, k := rig()
	srv := k.NewProcess("srv")
	rec := NewRecorder(k, 0, 3)
	srv.SpawnThread("w", func(th *kernel.Thread) {
		for i := 0; i < 10; i++ {
			th.Invoke(kernel.SysRead, [6]uint64{}, func() int64 { return 0 })
		}
	})
	env.Run()
	if len(rec.Events()) != 3 {
		t.Fatalf("limit not enforced: %d", len(rec.Events()))
	}
}

func syntheticEvents() []Event {
	mk := func(at int64, tid int, nr int, enter bool) Event {
		return Event{Time: sim.Time(at), PidTgid: 7<<32 | uint64(tid), NR: nr, Enter: enter}
	}
	return []Event{
		mk(0, 1, kernel.SysSocket, true),
		mk(10, 1, kernel.SysSocket, false),
		mk(20, 1, kernel.SysBind, true),
		mk(30, 1, kernel.SysBind, false),
		mk(100, 1, kernel.SysEpollWait, true),
		mk(400, 1, kernel.SysEpollWait, false),
		mk(410, 1, kernel.SysRecvfrom, true),
		mk(420, 1, kernel.SysRecvfrom, false),
		mk(500, 1, kernel.SysSendto, true),
		mk(510, 1, kernel.SysSendto, false),
		mk(600, 1, kernel.SysSendto, true),
		mk(610, 1, kernel.SysSendto, false),
	}
}

func TestEnterTimesAndDeltas(t *testing.T) {
	evs := syntheticEvents()
	ts := EnterTimes(evs, kernel.SendFamily)
	if len(ts) != 2 || ts[0] != 500 || ts[1] != 600 {
		t.Fatalf("EnterTimes = %v", ts)
	}
	ds := Deltas(ts)
	if len(ds) != 1 || ds[0] != 100 {
		t.Fatalf("Deltas = %v", ds)
	}
	if Deltas(ts[:1]) != nil {
		t.Fatal("single timestamp should give no deltas")
	}
}

func TestPairDurations(t *testing.T) {
	evs := syntheticEvents()
	ds := PairDurations(evs, kernel.PollFamily)
	if len(ds) != 1 || ds[0] != 300*time.Nanosecond {
		t.Fatalf("poll durations = %v", ds)
	}
	all := PairDurations(evs, func(int) bool { return true })
	if len(all) != 6 {
		t.Fatalf("paired %d calls, want 6", len(all))
	}
}

func TestPairDurationsPerThread(t *testing.T) {
	// Overlapping calls on two threads must pair within each thread.
	mk := func(at int64, tid int, enter bool) Event {
		return Event{Time: sim.Time(at), PidTgid: 7<<32 | uint64(tid), NR: kernel.SysEpollWait, Enter: enter}
	}
	evs := []Event{
		mk(0, 1, true),
		mk(5, 2, true),
		mk(100, 1, false), // thread 1: 100
		mk(205, 2, false), // thread 2: 200
	}
	ds := PairDurations(evs, kernel.PollFamily)
	if len(ds) != 2 || ds[0] != 100*time.Nanosecond || ds[1] != 200*time.Nanosecond {
		t.Fatalf("durations = %v", ds)
	}
}

func TestCountByName(t *testing.T) {
	counts := CountByName(syntheticEvents())
	if counts["sendto"] != 2 || counts["recvfrom"] != 1 || counts["socket"] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestPhaseClassification(t *testing.T) {
	if PhaseOf(kernel.SysSocket) != PhaseSetup {
		t.Fatal("socket should be setup")
	}
	if PhaseOf(kernel.SysRecvfrom) != PhaseRequest {
		t.Fatal("recvfrom should be request")
	}
	if PhaseOf(kernel.SysFutex) != PhaseOther {
		t.Fatal("futex should be other")
	}
	if !RequestOriented(kernel.SysEpollWait) || RequestOriented(kernel.SysBind) {
		t.Fatal("RequestOriented classification")
	}
}

func TestSegment(t *testing.T) {
	segs := Segment(syntheticEvents())
	if len(segs) != 2 {
		t.Fatalf("segments = %+v", segs)
	}
	if segs[0].Phase != PhaseSetup || segs[0].Calls != 2 {
		t.Fatalf("first segment = %+v", segs[0])
	}
	if segs[1].Phase != PhaseRequest || segs[1].Calls != 4 {
		t.Fatalf("second segment = %+v", segs[1])
	}
}

func TestRenderAndString(t *testing.T) {
	out := Render(syntheticEvents(), 3)
	if !strings.Contains(out, "socket") || !strings.Contains(out, "more events") {
		t.Fatalf("render = %q", out)
	}
	full := Render(syntheticEvents(), 0)
	if strings.Count(full, "\n") != 12 {
		t.Fatalf("full render lines = %d", strings.Count(full, "\n"))
	}
	if !strings.Contains(syntheticEvents()[0].String(), "enter socket") {
		t.Fatalf("event string = %q", syntheticEvents()[0].String())
	}
}

func TestFilter(t *testing.T) {
	evs := syntheticEvents()
	sends := Filter(evs, func(e Event) bool { return kernel.SendFamily(e.NR) })
	if len(sends) != 4 {
		t.Fatalf("filtered = %d, want 4 (2 enters + 2 exits)", len(sends))
	}
}
