package trace

import (
	"testing"
	"time"

	"reqlens/internal/kernel"
	"reqlens/internal/sim"
)

// cycle appends one poll->recv->send request cycle for tid starting at t.
func cycle(evs []Event, tid int, t int64, wait, service int64) []Event {
	mk := func(at int64, nr int, enter bool) Event {
		return Event{Time: sim.Time(at), PidTgid: 7<<32 | uint64(tid), NR: nr, Enter: enter}
	}
	return append(evs,
		mk(t, kernel.SysEpollWait, true),
		mk(t+wait, kernel.SysEpollWait, false),
		mk(t+wait+1, kernel.SysRecvfrom, true),
		mk(t+wait+2, kernel.SysRecvfrom, false),
		mk(t+wait+service-1, kernel.SysSendto, true),
		mk(t+wait+service, kernel.SysSendto, false),
	)
}

func TestReconstructSingleThreadCycle(t *testing.T) {
	var evs []Event
	evs = cycle(evs, 1, 0, 100, 50)
	evs = cycle(evs, 1, 200, 30, 70)
	reqs := ReconstructRequests(evs)
	if len(reqs) != 2 {
		t.Fatalf("reconstructed %d requests, want 2", len(reqs))
	}
	if reqs[0].Idle() != 101*time.Nanosecond {
		t.Fatalf("idle = %v", reqs[0].Idle())
	}
	if reqs[0].Service() != 49*time.Nanosecond {
		t.Fatalf("service = %v", reqs[0].Service())
	}
	if reqs[1].Service() != 69*time.Nanosecond {
		t.Fatalf("service2 = %v", reqs[1].Service())
	}
	st := ServiceTimes(reqs)
	if len(st) != 2 || st[0] != reqs[0].Service() {
		t.Fatalf("ServiceTimes = %v", st)
	}
}

func TestReconstructInterleavedThreads(t *testing.T) {
	// Two threads interleave in time; per-thread reconstruction must not
	// cross-pair.
	var evs []Event
	evs = cycle(evs, 1, 0, 100, 50)
	evs = cycle(evs, 2, 25, 60, 200)
	// Sort by time to mimic a merged trace.
	for i := range evs {
		for j := i + 1; j < len(evs); j++ {
			if evs[j].Time < evs[i].Time {
				evs[i], evs[j] = evs[j], evs[i]
			}
		}
	}
	reqs := ReconstructRequests(evs)
	if len(reqs) != 2 {
		t.Fatalf("reconstructed %d requests, want 2", len(reqs))
	}
	for _, r := range reqs {
		switch r.TID {
		case 1:
			if r.Service() != 49*time.Nanosecond {
				t.Fatalf("tid1 service = %v", r.Service())
			}
		case 2:
			if r.Service() != 199*time.Nanosecond {
				t.Fatalf("tid2 service = %v", r.Service())
			}
		default:
			t.Fatalf("unexpected tid %d", r.TID)
		}
	}
}

func TestReconstructAbandonsPipelinedDrains(t *testing.T) {
	// One poll followed by two recvs (drain loop): not the simple cycle;
	// the paper says reconstruction is impractical here, so we emit
	// nothing rather than a wrong pairing.
	mk := func(at int64, nr int, enter bool) Event {
		return Event{Time: sim.Time(at), PidTgid: 7<<32 | 1, NR: nr, Enter: enter}
	}
	evs := []Event{
		mk(0, kernel.SysEpollWait, true),
		mk(10, kernel.SysEpollWait, false),
		mk(11, kernel.SysRecvfrom, true),
		mk(12, kernel.SysRecvfrom, false),
		mk(13, kernel.SysRecvfrom, true), // second recv: drain
		mk(14, kernel.SysRecvfrom, false),
		mk(20, kernel.SysSendto, true),
		mk(21, kernel.SysSendto, false),
	}
	if reqs := ReconstructRequests(evs); len(reqs) != 0 {
		t.Fatalf("pipelined drain should reconstruct nothing, got %+v", reqs)
	}
}

func TestReconstructIgnoresSendWithoutRecv(t *testing.T) {
	mk := func(at int64, nr int, enter bool) Event {
		return Event{Time: sim.Time(at), PidTgid: 7<<32 | 1, NR: nr, Enter: enter}
	}
	evs := []Event{
		mk(0, kernel.SysSendto, true),
		mk(1, kernel.SysSendto, false),
	}
	if reqs := ReconstructRequests(evs); len(reqs) != 0 {
		t.Fatalf("orphan send reconstructed: %+v", reqs)
	}
}
