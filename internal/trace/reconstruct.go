package trace

import (
	"time"

	"reqlens/internal/kernel"
	"reqlens/internal/sim"
)

// Request is one reconstructed request-handling episode from a
// single-threaded handler's syscall timeline (the paper's Fig. 1(c)
// case): poll-wait -> recv -> [compute] -> send.
type Request struct {
	TID       int
	WaitStart sim.Time // poll enter (idle begins)
	RecvAt    sim.Time // recv enter (request available)
	SendAt    sim.Time // send enter (response leaves)
	SendDone  sim.Time // send exit
}

// Idle is the time spent waiting for the request (poll duration part).
func (r Request) Idle() time.Duration { return r.RecvAt.Sub(r.WaitStart) }

// Service is the paper's service-time estimate: recv to send completion.
func (r Request) Service() time.Duration { return r.SendDone.Sub(r.RecvAt) }

// ReconstructRequests rebuilds per-request timelines from a syscall
// event stream, independently per thread. It implements the paper's
// Section III observation: when one thread handles a whole request, the
// recv and send syscalls pair up and yield service time directly. The
// reconstruction is conservative — an episode is emitted only when the
// poll -> recv -> send sequence appears in order on one thread; anything
// else (multi-thread handoff, pipelined drains where one poll feeds many
// recvs) contributes nothing, which is exactly the paper's point about
// the approach breaking down beyond simple servers.
func ReconstructRequests(events []Event) []Request {
	type threadState struct {
		havePoll bool
		haveRecv bool
		cur      Request
	}
	states := make(map[uint64]*threadState)
	var out []Request
	for _, e := range events {
		st := states[e.PidTgid]
		if st == nil {
			st = &threadState{}
			states[e.PidTgid] = st
		}
		switch {
		case kernel.PollFamily(e.NR) && e.Enter:
			st.havePoll = true
			st.haveRecv = false
			st.cur = Request{TID: e.TID(), WaitStart: e.Time}
		case kernel.RecvFamily(e.NR) && e.Enter && st.havePoll:
			if st.haveRecv {
				// Second recv after one poll: pipelined drain, not the
				// simple single-request cycle; abandon the episode.
				st.havePoll = false
				st.haveRecv = false
				continue
			}
			st.haveRecv = true
			st.cur.RecvAt = e.Time
		case kernel.SendFamily(e.NR) && st.havePoll && st.haveRecv:
			if e.Enter {
				st.cur.SendAt = e.Time
				continue
			}
			if st.cur.SendAt == 0 {
				continue
			}
			st.cur.SendDone = e.Time
			out = append(out, st.cur)
			st.havePoll = false
			st.haveRecv = false
		}
	}
	return out
}

// ServiceTimes extracts the service durations of reconstructed requests.
func ServiceTimes(reqs []Request) []time.Duration {
	out := make([]time.Duration, len(reqs))
	for i, r := range reqs {
		out[i] = r.Service()
	}
	return out
}
