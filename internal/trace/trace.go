package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"reqlens/internal/kernel"
	"reqlens/internal/sim"
)

// Event is one syscall boundary crossing.
type Event struct {
	Time    sim.Time
	PidTgid uint64
	NR      int
	Enter   bool
	Ret     int64
}

// TID returns the thread id half of PidTgid.
func (e Event) TID() int { return int(uint32(e.PidTgid)) }

// TGID returns the process id half of PidTgid.
func (e Event) TGID() int { return int(e.PidTgid >> 32) }

// String renders the event as a trace line.
func (e Event) String() string {
	dir := "exit "
	if e.Enter {
		dir = "enter"
	}
	return fmt.Sprintf("%12v tid=%-6d %s %-12s ret=%d",
		time.Duration(e.Time), e.TID(), dir, kernel.SyscallName(e.NR), e.Ret)
}

// Recorder captures ground-truth events for one process (tgid) or all
// (tgid = 0) via a kernel listener. Unlike an eBPF probe it charges no
// cost to the traced threads, which makes it the reference for overhead
// and accuracy comparisons.
type Recorder struct {
	tgid   int
	events []Event
	limit  int
}

// NewRecorder attaches a recorder to k. limit caps retained events
// (0 = unlimited).
func NewRecorder(k *kernel.Kernel, tgid int, limit int) *Recorder {
	r := &Recorder{tgid: tgid, limit: limit}
	k.Tracer().AddListener(func(ev kernel.SyscallEvent) {
		if r.tgid != 0 && ev.Thread.Process().TGID() != r.tgid {
			return
		}
		if r.limit > 0 && len(r.events) >= r.limit {
			return
		}
		r.events = append(r.events, Event{
			Time:    ev.Time,
			PidTgid: ev.Thread.PidTgid(),
			NR:      ev.NR,
			Enter:   ev.Enter,
			Ret:     ev.Ret,
		})
	})
	return r
}

// Events returns the captured stream in time order.
func (r *Recorder) Events() []Event { return r.events }

// Reset discards captured events.
func (r *Recorder) Reset() { r.events = r.events[:0] }

// Filter returns the events matching pred.
func Filter(events []Event, pred func(Event) bool) []Event {
	var out []Event
	for _, e := range events {
		if pred(e) {
			out = append(out, e)
		}
	}
	return out
}

// EnterTimes extracts the entry timestamps of syscalls selected by nrPred,
// aggregated across all threads into one sorted trace — the paper's
// "consider the application as a whole" strategy.
func EnterTimes(events []Event, nrPred func(int) bool) []sim.Time {
	var ts []sim.Time
	for _, e := range events {
		if e.Enter && nrPred(e.NR) {
			ts = append(ts, e.Time)
		}
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	return ts
}

// Deltas returns consecutive differences of a sorted timestamp series,
// in nanoseconds.
func Deltas(ts []sim.Time) []float64 {
	if len(ts) < 2 {
		return nil
	}
	out := make([]float64, len(ts)-1)
	for i := 1; i < len(ts); i++ {
		out[i-1] = float64(ts[i] - ts[i-1])
	}
	return out
}

// PairDurations matches sys_enter/sys_exit pairs per thread for syscalls
// selected by nrPred and returns the call durations.
func PairDurations(events []Event, nrPred func(int) bool) []time.Duration {
	open := make(map[uint64]sim.Time) // pid_tgid -> enter time
	var out []time.Duration
	for _, e := range events {
		if !nrPred(e.NR) {
			continue
		}
		if e.Enter {
			open[e.PidTgid] = e.Time
			continue
		}
		if start, ok := open[e.PidTgid]; ok {
			out = append(out, e.Time.Sub(start))
			delete(open, e.PidTgid)
		}
	}
	return out
}

// CountByName tallies events (enters only) per syscall name.
func CountByName(events []Event) map[string]uint64 {
	out := make(map[string]uint64)
	for _, e := range events {
		if e.Enter {
			out[kernel.SyscallName(e.NR)]++
		}
	}
	return out
}

// Phase classifies syscalls by lifecycle role, as in Fig. 1.
type Phase int

// Phases of an application's syscall stream.
const (
	PhaseSetup   Phase = iota // socket/bind/listen/accept/epoll_ctl/mmap/open
	PhaseRequest              // recv/send/poll: the request-processing loop
	PhaseOther
)

func (p Phase) String() string {
	switch p {
	case PhaseSetup:
		return "setup"
	case PhaseRequest:
		return "request"
	}
	return "other"
}

// PhaseOf classifies one syscall number.
func PhaseOf(nr int) Phase {
	switch nr {
	case kernel.SysSocket, kernel.SysBind, kernel.SysListen, kernel.SysAccept,
		kernel.SysEpollCtl, kernel.SysMmap, kernel.SysOpenat, kernel.SysClone:
		return PhaseSetup
	}
	if kernel.RecvFamily(nr) || kernel.SendFamily(nr) || kernel.PollFamily(nr) {
		return PhaseRequest
	}
	return PhaseOther
}

// RequestOriented reports whether nr belongs to the "extracted subset"
// of Fig. 1(c): the syscalls used for request-level observability.
func RequestOriented(nr int) bool { return PhaseOf(nr) == PhaseRequest }

// PhaseSummary describes one contiguous run of same-phase syscalls.
type PhaseSummary struct {
	Phase Phase
	Start sim.Time
	End   sim.Time
	Calls int
}

// Segment compresses an event stream into contiguous phase runs — the
// structure visible in Fig. 1(b): a setup burst, then the long
// request-processing phase.
func Segment(events []Event) []PhaseSummary {
	var out []PhaseSummary
	for _, e := range events {
		if !e.Enter {
			continue
		}
		p := PhaseOf(e.NR)
		if n := len(out); n > 0 && out[n-1].Phase == p {
			out[n-1].End = e.Time
			out[n-1].Calls++
			continue
		}
		out = append(out, PhaseSummary{Phase: p, Start: e.Time, End: e.Time, Calls: 1})
	}
	return out
}

// Render formats events as a readable trace, capped at limit lines
// (0 = all).
func Render(events []Event, limit int) string {
	var b strings.Builder
	for i, e := range events {
		if limit > 0 && i >= limit {
			fmt.Fprintf(&b, "... %d more events\n", len(events)-limit)
			break
		}
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}
