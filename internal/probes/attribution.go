package probes

import (
	"encoding/binary"
	"fmt"
	"time"

	"reqlens/internal/ebpf"
	"reqlens/internal/kernel"
)

// Map fds used inside the attribution program.
const (
	fdAttrSyscalls = 1 // CMS: syscall count per tgid
	fdAttrSends    = 2 // CMS: send-family syscall count per tgid
	fdAttrTime     = 3 // CMS: summed inter-syscall gap (ns) per tgid
	fdAttrTop      = 4 // HashPipe: top-K candidate tgids
	fdAttrLast     = 5 // LRU: last syscall timestamp per thread
	fdAttrExact    = 6 // optional oracle: exact syscall count per tgid
)

// AttributionConfig sizes the sketch maps of an AttributionProbe. The
// zero value takes the defaults below, chosen so the whole per-node
// state (three CMS rows of 2048x4 u64 plus a 4x64 pipe) is ~100 KiB —
// small enough to pin per node, accurate to εN = N·e/2048 per query.
type AttributionConfig struct {
	// SendSyscalls is the send family counted into the Sends sketch
	// (default: sendto, sendmsg, write — the paper's response markers).
	SendSyscalls []int
	// CMSWidth and CMSDepth size all three count-min sketches
	// (default 2048x4: ε ≈ 0.13%, δ ≈ 1.8%).
	CMSWidth, CMSDepth int
	// TopStages and TopSlots size the HashPipe candidate table
	// (default 4 stages x 64 slots).
	TopStages, TopSlots int
	// LastEntries bounds the per-thread last-timestamp LRU map
	// (default 512 threads before eviction).
	LastEntries int
	// Oracle additionally maintains an exact per-tgid syscall counter
	// in a plain hash map — the ground truth the sketch read-out is
	// validated against. Costs exact-map memory; off in production.
	Oracle bool
	// OracleEntries bounds the oracle map (default 4096 tgids).
	OracleEntries int
}

func (c AttributionConfig) withDefaults() AttributionConfig {
	if len(c.SendSyscalls) == 0 {
		c.SendSyscalls = []int{kernel.SysSendto, kernel.SysSendmsg, kernel.SysWrite}
	}
	if c.CMSWidth == 0 {
		c.CMSWidth = 2048
	}
	if c.CMSDepth == 0 {
		c.CMSDepth = 4
	}
	if c.TopStages == 0 {
		c.TopStages = 4
	}
	if c.TopSlots == 0 {
		c.TopSlots = 64
	}
	if c.LastEntries == 0 {
		c.LastEntries = 512
	}
	if c.OracleEntries == 0 {
		c.OracleEntries = 4096
	}
	return c
}

// AttributionProbe attributes syscall activity to processes wholly in
// map space: one raw_syscalls:sys_enter program, unfiltered by tgid,
// feeding three count-min sketches (total syscalls, send-family
// syscalls, summed inter-syscall gap per tgid) and a HashPipe that
// tracks the top-K candidate tgids. Userspace never walks a per-PID
// hash map; it clones the sketches and asks them.
type AttributionProbe struct {
	// Syscalls counts every syscall per tgid.
	Syscalls *ebpf.CMS
	// Sends counts send-family syscalls per tgid (RPS attribution).
	Sends *ebpf.CMS
	// TimeNS sums the inter-syscall gap per tgid (time attribution).
	TimeNS *ebpf.CMS
	// Top is the candidate table read for top-K offenders.
	Top *ebpf.HashPipe
	// Last holds the per-thread last-syscall timestamp the gap is
	// computed against (LRU, so thread churn evicts instead of erroring).
	Last *ebpf.LRUHashMap
	// Exact is the ground-truth per-tgid counter, nil unless
	// AttributionConfig.Oracle was set.
	Exact *ebpf.HashMap

	prog *ebpf.Program
	link *kernel.Link
	cfg  AttributionConfig
}

// NewAttributionProbe builds and verifies the attribution program.
func NewAttributionProbe(name string, cfg AttributionConfig) (*AttributionProbe, error) {
	cfg = cfg.withDefaults()
	if len(cfg.SendSyscalls) > 4 {
		return nil, fmt.Errorf("probes: need 1..4 send syscall numbers, got %d", len(cfg.SendSyscalls))
	}
	p := &AttributionProbe{
		Syscalls: ebpf.NewCMS(name+"_syscalls", 8, cfg.CMSWidth, cfg.CMSDepth),
		Sends:    ebpf.NewCMS(name+"_sends", 8, cfg.CMSWidth, cfg.CMSDepth),
		TimeNS:   ebpf.NewCMS(name+"_time", 8, cfg.CMSWidth, cfg.CMSDepth),
		Top:      ebpf.NewHashPipe(name+"_top", 8, cfg.TopStages, cfg.TopSlots),
		Last:     ebpf.NewLRUHashMap(name+"_last", 8, 8, cfg.LastEntries),
		cfg:      cfg,
	}
	maps := map[int32]ebpf.Map{
		fdAttrSyscalls: p.Syscalls,
		fdAttrSends:    p.Sends,
		fdAttrTime:     p.TimeNS,
		fdAttrTop:      p.Top,
		fdAttrLast:     p.Last,
	}
	if cfg.Oracle {
		p.Exact = ebpf.NewHashMap(name+"_exact", 8, 8, cfg.OracleEntries)
		maps[fdAttrExact] = p.Exact
	}

	// Frame layout: tgid key at -8, pid_tgid (thread) key at -16, the
	// clock reading at -24 (value for the last-ts update), and the
	// oracle's initial count at -32.
	a := ebpf.NewAssembler()
	emitTgidFilter(a, 0) // R6 = ctx, R9 = pid_tgid; no tgid filter
	a.Emit(
		ebpf.Mov64Reg(ebpf.R7, ebpf.R9),
		ebpf.Rsh64Imm(ebpf.R7, 32),
		ebpf.StoreMem(ebpf.R10, -8, ebpf.R7, ebpf.SizeDW),
		ebpf.StoreMem(ebpf.R10, -16, ebpf.R9, ebpf.SizeDW),
	)
	// syscalls[tgid] += 1; top-K candidates[tgid] += 1
	a.EmitWide(ebpf.LoadMapFD(ebpf.R1, fdAttrSyscalls))
	a.Emit(
		ebpf.Mov64Reg(ebpf.R2, ebpf.R10),
		ebpf.Add64Imm(ebpf.R2, -8),
		ebpf.Mov64Imm(ebpf.R3, 1),
		ebpf.Call(ebpf.HelperCMSUpdate),
	)
	a.EmitWide(ebpf.LoadMapFD(ebpf.R1, fdAttrTop))
	a.Emit(
		ebpf.Mov64Reg(ebpf.R2, ebpf.R10),
		ebpf.Add64Imm(ebpf.R2, -8),
		ebpf.Mov64Imm(ebpf.R3, 1),
		ebpf.Call(ebpf.HelperHashPipeInsert),
	)
	// time[tgid] += now - last[thread], when a previous call was seen
	a.Emit(
		ebpf.Call(ebpf.HelperKtimeGetNS),
		ebpf.Mov64Reg(ebpf.R8, ebpf.R0),
		ebpf.StoreMem(ebpf.R10, -24, ebpf.R8, ebpf.SizeDW),
	)
	a.EmitWide(ebpf.LoadMapFD(ebpf.R1, fdAttrLast))
	a.Emit(
		ebpf.Mov64Reg(ebpf.R2, ebpf.R10),
		ebpf.Add64Imm(ebpf.R2, -16),
		ebpf.Call(ebpf.HelperMapLookupElem),
	)
	a.JumpImm(ebpf.JmpJEQ, ebpf.R0, 0, "nolast")
	a.Emit(
		ebpf.LoadMem(ebpf.R7, ebpf.R0, 0, ebpf.SizeDW),
		ebpf.Mov64Reg(ebpf.R3, ebpf.R8),
		ebpf.Sub64Reg(ebpf.R3, ebpf.R7),
	)
	a.EmitWide(ebpf.LoadMapFD(ebpf.R1, fdAttrTime))
	a.Emit(
		ebpf.Mov64Reg(ebpf.R2, ebpf.R10),
		ebpf.Add64Imm(ebpf.R2, -8),
		ebpf.Call(ebpf.HelperCMSUpdate),
	)
	a.Label("nolast")
	// last[thread] = now
	a.EmitWide(ebpf.LoadMapFD(ebpf.R1, fdAttrLast))
	a.Emit(
		ebpf.Mov64Reg(ebpf.R2, ebpf.R10),
		ebpf.Add64Imm(ebpf.R2, -16),
		ebpf.Mov64Reg(ebpf.R3, ebpf.R10),
		ebpf.Add64Imm(ebpf.R3, -24),
		ebpf.Mov64Imm(ebpf.R4, 0),
		ebpf.Call(ebpf.HelperMapUpdateElem),
	)
	if cfg.Oracle {
		// exact[tgid]++ (insert 1 on first sight)
		a.EmitWide(ebpf.LoadMapFD(ebpf.R1, fdAttrExact))
		a.Emit(
			ebpf.Mov64Reg(ebpf.R2, ebpf.R10),
			ebpf.Add64Imm(ebpf.R2, -8),
			ebpf.Call(ebpf.HelperMapLookupElem),
		)
		a.JumpImm(ebpf.JmpJEQ, ebpf.R0, 0, "exinit")
		a.Emit(
			ebpf.LoadMem(ebpf.R1, ebpf.R0, 0, ebpf.SizeDW),
			ebpf.Add64Imm(ebpf.R1, 1),
			ebpf.StoreMem(ebpf.R0, 0, ebpf.R1, ebpf.SizeDW),
		)
		a.Jump("exdone")
		a.Label("exinit")
		a.Emit(ebpf.StoreImm(ebpf.R10, -32, 1, ebpf.SizeDW))
		a.EmitWide(ebpf.LoadMapFD(ebpf.R1, fdAttrExact))
		a.Emit(
			ebpf.Mov64Reg(ebpf.R2, ebpf.R10),
			ebpf.Add64Imm(ebpf.R2, -8),
			ebpf.Mov64Reg(ebpf.R3, ebpf.R10),
			ebpf.Add64Imm(ebpf.R3, -32),
			ebpf.Mov64Imm(ebpf.R4, 0),
			ebpf.Call(ebpf.HelperMapUpdateElem),
		)
		a.Label("exdone")
	}
	// sends[tgid] += 1, only for the send family
	emitSyscallFilter(a, cfg.SendSyscalls)
	a.EmitWide(ebpf.LoadMapFD(ebpf.R1, fdAttrSends))
	a.Emit(
		ebpf.Mov64Reg(ebpf.R2, ebpf.R10),
		ebpf.Add64Imm(ebpf.R2, -8),
		ebpf.Mov64Imm(ebpf.R3, 1),
		ebpf.Call(ebpf.HelperCMSUpdate),
	)
	a.Label("out")
	a.Emit(ebpf.Mov64Imm(ebpf.R0, 0), ebpf.Exit())

	prog, err := ebpf.Load(ebpf.ProgramSpec{
		Name:    name,
		Insns:   a.MustAssemble(),
		Maps:    maps,
		CtxSize: kernel.SysEnterCtxSize,
	})
	if err != nil {
		return nil, err
	}
	p.prog = prog
	return p, nil
}

// MustNewAttributionProbe panics on build failure.
func MustNewAttributionProbe(name string, cfg AttributionConfig) *AttributionProbe {
	p, err := NewAttributionProbe(name, cfg)
	if err != nil {
		panic(err)
	}
	return p
}

// Program returns the verified program (for disassembly/inspection).
func (p *AttributionProbe) Program() *ebpf.Program { return p.prog }

// Attach hooks the probe to raw_syscalls:sys_enter.
func (p *AttributionProbe) Attach(tr *kernel.Tracer) error {
	l, err := tr.Attach(kernel.RawSysEnter, p.prog)
	if err != nil {
		return err
	}
	p.link = l
	return nil
}

// Detach removes the probe.
func (p *AttributionProbe) Detach() {
	if p.link != nil {
		p.link.Detach()
		p.link = nil
	}
}

// Bytes returns the sketch-side map footprint (excludes the thread LRU
// and any oracle map).
func (p *AttributionProbe) Bytes() int {
	return p.Syscalls.Bytes() + p.Sends.Bytes() + p.TimeNS.Bytes() + p.Top.Bytes()
}

// Sketches clones the probe's sketch state — a consistent scrape the
// caller owns, safe to merge with other nodes' scrapes while the probe
// keeps counting.
func (p *AttributionProbe) Sketches() AttrSketches {
	return AttrSketches{
		Syscalls: p.Syscalls.Clone(),
		Sends:    p.Sends.Clone(),
		TimeNS:   p.TimeNS.Clone(),
		Top:      p.Top.Clone(),
	}
}

// ExactCounts reads the oracle map into a per-tgid count table.
// Returns nil when the probe was built without Oracle.
func (p *AttributionProbe) ExactCounts() map[uint64]uint64 {
	if p.Exact == nil {
		return nil
	}
	out := make(map[uint64]uint64, p.Exact.Len())
	for _, k := range p.Exact.Keys() {
		v, _ := p.Exact.Lookup(k)
		out[binary.LittleEndian.Uint64(k)] = binary.LittleEndian.Uint64(v)
	}
	return out
}

// TGIDKey encodes a tgid as the 8-byte little-endian sketch key used
// by the attribution program.
func TGIDKey(tgid uint64) []byte {
	k := make([]byte, 8)
	binary.LittleEndian.PutUint64(k, tgid)
	return k
}

// AttrSketches is one scrape of attribution state — per node, or the
// fleet-level merge of many nodes. Because count-min merge is
// element-wise addition and HashPipe merge is a deterministic
// union-reinsert, merging per-node scrapes in node-ID order yields the
// same bytes on every aggregator.
type AttrSketches struct {
	// Syscalls estimates total syscalls per tgid.
	Syscalls *ebpf.CMS
	// Sends estimates send-family syscalls per tgid.
	Sends *ebpf.CMS
	// TimeNS estimates the summed inter-syscall gap per tgid.
	TimeNS *ebpf.CMS
	// Top ranks candidate tgids by syscall count.
	Top *ebpf.HashPipe
}

// Merge folds another scrape into s. Geometries must match.
func (s AttrSketches) Merge(o AttrSketches) error {
	if err := s.Syscalls.Merge(o.Syscalls); err != nil {
		return err
	}
	if err := s.Sends.Merge(o.Sends); err != nil {
		return err
	}
	if err := s.TimeNS.Merge(o.TimeNS); err != nil {
		return err
	}
	return s.Top.Merge(o.Top)
}

// Clone deep-copies the scrape — the accumulator a rollup fold starts
// from, so merging never mutates the per-node scrapes it reads.
func (s AttrSketches) Clone() AttrSketches {
	return AttrSketches{
		Syscalls: s.Syscalls.Clone(),
		Sends:    s.Sends.Clone(),
		TimeNS:   s.TimeNS.Clone(),
		Top:      s.Top.Clone(),
	}
}

// Offender is one top-K attribution row: a process and its estimated
// activity, all read from sketches.
type Offender struct {
	// TGID identifies the process.
	TGID uint64
	// Syscalls is the count-min estimate of its total syscalls.
	Syscalls uint64
	// Sends is the count-min estimate of its send-family syscalls.
	Sends uint64
	// Busy is the count-min estimate of its summed inter-syscall gap.
	Busy time.Duration
}

// TopOffenders returns the K busiest tgids by syscall count: HashPipe
// supplies the candidates, the count-min sketches supply the per-tgid
// estimates. Deterministic (the pipe's ranking is count-desc with a
// key-bytes tie-break).
func (s AttrSketches) TopOffenders(k int) []Offender {
	top := s.Top.TopK(k)
	out := make([]Offender, len(top))
	for i, e := range top {
		out[i] = Offender{
			TGID:     binary.LittleEndian.Uint64(e.Key),
			Syscalls: s.Syscalls.Estimate(e.Key),
			Sends:    s.Sends.Estimate(e.Key),
			Busy:     time.Duration(s.TimeNS.Estimate(e.Key)),
		}
	}
	return out
}

// Bytes returns the scrape's total sketch footprint.
func (s AttrSketches) Bytes() int {
	return s.Syscalls.Bytes() + s.Sends.Bytes() + s.TimeNS.Bytes() + s.Top.Bytes()
}
