package probes

import (
	"encoding/binary"
	"fmt"

	"reqlens/internal/ebpf"
	"reqlens/internal/kernel"
)

// Map fds used inside the probe programs.
const (
	fdStats   = 1
	fdStart   = 2
	fdRingbuf = 3
)

// emitTgidFilter emits the common prologue: save ctx in R6, load
// pid_tgid, keep the thread id in R9, extract the tgid into R7 and jump
// to "out" unless it matches. tgid==0 disables filtering.
func emitTgidFilter(a *ebpf.Assembler, tgid int) {
	a.Emit(ebpf.Mov64Reg(ebpf.R6, ebpf.R1)) // R6 = ctx
	a.Emit(ebpf.Call(ebpf.HelperGetCurrentPidTgid))
	a.Emit(ebpf.Mov64Reg(ebpf.R9, ebpf.R0)) // R9 = pid_tgid
	if tgid == 0 {
		return
	}
	a.Emit(
		ebpf.Mov64Reg(ebpf.R7, ebpf.R0),
		ebpf.Rsh64Imm(ebpf.R7, 32),
	)
	a.JumpImm(ebpf.JmpJNE, ebpf.R7, int32(tgid), "out")
}

// emitSyscallFilter jumps to "match" when ctx->id is one of nrs, else
// falls through to a jump to "out".
func emitSyscallFilter(a *ebpf.Assembler, nrs []int) {
	a.Emit(ebpf.LoadMem(ebpf.R8, ebpf.R6, int16(kernel.CtxOffID), ebpf.SizeDW))
	for _, nr := range nrs {
		a.JumpImm(ebpf.JmpJEQ, ebpf.R8, int32(nr), "match")
	}
	a.Jump("out")
	a.Label("match")
}

// DeltaStats value layout (one ArrayMap slot, 48 bytes).
const (
	dsOffCount   = 0  // number of deltas accumulated
	dsOffSumNS   = 8  // sum of deltas, ns
	dsOffSumSqUS = 16 // sum of squared deltas, us^2 (us units avoid u64 overflow)
	dsOffFirstTS = 24 // timestamp of first matched call
	dsOffLastTS  = 32 // timestamp of most recent matched call
	dsOffCalls   = 40 // total matched calls (deltas + 1 once warm)
	dsValueSize  = 48
)

// DeltaProbe accumulates inter-call deltas of a syscall family in kernel
// space. The stream variant additionally emits one fixed-size MetricEvent
// per matched call into a shared ring buffer.
type DeltaProbe struct {
	Stats *ebpf.ArrayMap
	Ring  *ebpf.RingBuf // nil for the batch (aggregate-only) variant
	prog  *ebpf.Program
	link  *kernel.Link
	nrs   []int
}

// NewDeltaProbe builds and verifies the delta program for the syscall
// numbers in nrs (1..4 entries), filtered to tgid (0 = all processes).
func NewDeltaProbe(name string, tgid int, nrs []int) (*DeltaProbe, error) {
	return newDeltaProbe(name, tgid, nrs, nil)
}

// NewDeltaProbeStream is NewDeltaProbe plus event streaming: every matched
// call also commits an EventDelta record (ts, pid_tgid, nr, delta) into
// ring, alongside the unchanged aggregate-map updates. The warmup call —
// the first match, which defines no delta — is emitted with the First
// flag so the consumer can reconstruct the aggregate state exactly.
func NewDeltaProbeStream(name string, tgid int, nrs []int, ring *ebpf.RingBuf) (*DeltaProbe, error) {
	if ring == nil {
		return nil, fmt.Errorf("probes: stream delta probe requires a ring buffer")
	}
	return newDeltaProbe(name, tgid, nrs, ring)
}

func newDeltaProbe(name string, tgid int, nrs []int, ring *ebpf.RingBuf) (*DeltaProbe, error) {
	if len(nrs) == 0 || len(nrs) > 4 {
		return nil, fmt.Errorf("probes: need 1..4 syscall numbers, got %d", len(nrs))
	}
	stats := ebpf.NewArrayMap(name+"_stats", dsValueSize, 1)
	maps := map[int32]ebpf.Map{fdStats: stats}

	// Event record scratch at the top of the frame, [-EventSize, 0). The
	// stats key slot at -4 overlaps the value field; both branches store
	// the value after the key is consumed by the lookup.
	const rec = -int16(EventSize)

	a := ebpf.NewAssembler()
	emitTgidFilter(a, tgid)
	emitSyscallFilter(a, nrs)

	if ring != nil {
		maps[fdRingbuf] = ring
		// pid_tgid must be captured before R9 is reused for the clock.
		a.Emit(ebpf.StoreMem(ebpf.R10, rec+evOffPidTgid, ebpf.R9, ebpf.SizeDW))
	}
	a.Emit(ebpf.Call(ebpf.HelperKtimeGetNS))
	a.Emit(ebpf.Mov64Reg(ebpf.R9, ebpf.R0)) // R9 = now (thread id no longer needed)
	if ring != nil {
		a.Emit(
			ebpf.StoreMem(ebpf.R10, rec+evOffTS, ebpf.R9, ebpf.SizeDW),
			ebpf.StoreMem(ebpf.R10, rec+evOffNR, ebpf.R8, ebpf.SizeDW),
			ebpf.StoreImm(ebpf.R10, rec+evOffNR+4, evMetaDelta, ebpf.SizeW),
		)
	}

	// stats = lookup(&key0)
	a.Emit(ebpf.StoreImm(ebpf.R10, -4, 0, ebpf.SizeW))
	a.EmitWide(ebpf.LoadMapFD(ebpf.R1, fdStats))
	a.Emit(
		ebpf.Mov64Reg(ebpf.R2, ebpf.R10),
		ebpf.Add64Imm(ebpf.R2, -4),
		ebpf.Call(ebpf.HelperMapLookupElem),
	)
	a.JumpImm(ebpf.JmpJEQ, ebpf.R0, 0, "out")
	// R0 = &stats value. R7 = old call count; bump total calls.
	a.Emit(
		ebpf.LoadMem(ebpf.R7, ebpf.R0, dsOffCalls, ebpf.SizeDW),
		ebpf.Mov64Reg(ebpf.R1, ebpf.R7),
		ebpf.Add64Imm(ebpf.R1, 1),
		ebpf.StoreMem(ebpf.R0, dsOffCalls, ebpf.R1, ebpf.SizeDW),
	)
	// R2 = previous last_ts; last_ts = now.
	a.Emit(
		ebpf.LoadMem(ebpf.R2, ebpf.R0, dsOffLastTS, ebpf.SizeDW),
		ebpf.StoreMem(ebpf.R0, dsOffLastTS, ebpf.R9, ebpf.SizeDW),
	)
	// First matched call (old count was 0): record first_ts, no delta
	// yet. The call counter, not last_ts, distinguishes the first sample:
	// a timestamp of 0 is a legal clock reading.
	a.JumpImm(ebpf.JmpJNE, ebpf.R7, 0, "delta")
	a.Emit(ebpf.StoreMem(ebpf.R0, dsOffFirstTS, ebpf.R9, ebpf.SizeDW))
	if ring != nil {
		a.Emit(
			ebpf.StoreImm(ebpf.R10, rec+evOffNR+4, evMetaDeltaFirst, ebpf.SizeW),
			ebpf.StoreImm(ebpf.R10, rec+evOffValue, 0, ebpf.SizeDW),
		)
		emitEventOutput(a, rec)
	}
	a.Jump("out")

	a.Label("delta")
	// R3 = delta = now - prev
	a.Emit(
		ebpf.Mov64Reg(ebpf.R3, ebpf.R9),
		ebpf.Sub64Reg(ebpf.R3, ebpf.R2),
	)
	if ring != nil {
		a.Emit(ebpf.StoreMem(ebpf.R10, rec+evOffValue, ebpf.R3, ebpf.SizeDW))
	}
	// count++
	a.Emit(
		ebpf.LoadMem(ebpf.R4, ebpf.R0, dsOffCount, ebpf.SizeDW),
		ebpf.Add64Imm(ebpf.R4, 1),
		ebpf.StoreMem(ebpf.R0, dsOffCount, ebpf.R4, ebpf.SizeDW),
	)
	// sum_ns += delta
	a.Emit(
		ebpf.LoadMem(ebpf.R4, ebpf.R0, dsOffSumNS, ebpf.SizeDW),
		ebpf.Add64Reg(ebpf.R4, ebpf.R3),
		ebpf.StoreMem(ebpf.R0, dsOffSumNS, ebpf.R4, ebpf.SizeDW),
	)
	// sumsq_us2 += (delta/1000)^2
	a.Emit(
		ebpf.Div64Imm(ebpf.R3, 1000),
		ebpf.Mov64Reg(ebpf.R5, ebpf.R3),
		ebpf.Mul64Reg(ebpf.R5, ebpf.R3),
		ebpf.LoadMem(ebpf.R4, ebpf.R0, dsOffSumSqUS, ebpf.SizeDW),
		ebpf.Add64Reg(ebpf.R4, ebpf.R5),
		ebpf.StoreMem(ebpf.R0, dsOffSumSqUS, ebpf.R4, ebpf.SizeDW),
	)
	if ring != nil {
		emitEventOutput(a, rec)
	}

	a.Label("out")
	a.Emit(ebpf.Mov64Imm(ebpf.R0, 0), ebpf.Exit())

	prog, err := ebpf.Load(ebpf.ProgramSpec{
		Name:    name,
		Insns:   a.MustAssemble(),
		Maps:    maps,
		CtxSize: kernel.SysEnterCtxSize,
	})
	if err != nil {
		return nil, err
	}
	return &DeltaProbe{Stats: stats, Ring: ring, prog: prog, nrs: nrs}, nil
}

// MustNewDeltaProbe panics on build failure.
func MustNewDeltaProbe(name string, tgid int, nrs []int) *DeltaProbe {
	p, err := NewDeltaProbe(name, tgid, nrs)
	if err != nil {
		panic(err)
	}
	return p
}

// Program returns the verified program (for disassembly/inspection).
func (p *DeltaProbe) Program() *ebpf.Program { return p.prog }

// Syscalls returns the traced syscall numbers.
func (p *DeltaProbe) Syscalls() []int { return p.nrs }

// Attach hooks the probe to raw_syscalls:sys_enter.
func (p *DeltaProbe) Attach(tr *kernel.Tracer) error {
	l, err := tr.Attach(kernel.RawSysEnter, p.prog)
	if err != nil {
		return err
	}
	p.link = l
	return nil
}

// Detach removes the probe.
func (p *DeltaProbe) Detach() {
	if p.link != nil {
		p.link.Detach()
		p.link = nil
	}
}

// DeltaSnapshot is a userspace copy of the in-kernel accumulator.
type DeltaSnapshot struct {
	Count   uint64 // deltas accumulated
	SumNS   uint64 // sum of deltas in ns
	SumSqUS uint64 // sum of squared deltas in us^2
	FirstTS uint64
	LastTS  uint64
	Calls   uint64 // matched syscalls
}

// Snapshot reads the accumulator.
func (p *DeltaProbe) Snapshot() DeltaSnapshot {
	v := p.Stats.At(0)
	return DeltaSnapshot{
		Count:   binary.LittleEndian.Uint64(v[dsOffCount:]),
		SumNS:   binary.LittleEndian.Uint64(v[dsOffSumNS:]),
		SumSqUS: binary.LittleEndian.Uint64(v[dsOffSumSqUS:]),
		FirstTS: binary.LittleEndian.Uint64(v[dsOffFirstTS:]),
		LastTS:  binary.LittleEndian.Uint64(v[dsOffLastTS:]),
		Calls:   binary.LittleEndian.Uint64(v[dsOffCalls:]),
	}
}

// Reset zeroes the accumulator (a userspace map write, as a monitoring
// agent would do between windows).
func (p *DeltaProbe) Reset() {
	v := p.Stats.At(0)
	for i := range v {
		v[i] = 0
	}
}

// Sub returns the delta-window between two cumulative snapshots
// (s - prev), with first/last timestamps narrowed to the window.
func (s DeltaSnapshot) Sub(prev DeltaSnapshot) DeltaSnapshot {
	return DeltaSnapshot{
		Count:   s.Count - prev.Count,
		SumNS:   s.SumNS - prev.SumNS,
		SumSqUS: s.SumSqUS - prev.SumSqUS,
		FirstTS: prev.LastTS,
		LastTS:  s.LastTS,
		Calls:   s.Calls - prev.Calls,
	}
}

// MeanDeltaNS returns the mean inter-call gap in nanoseconds.
func (s DeltaSnapshot) MeanDeltaNS() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.SumNS) / float64(s.Count)
}

// RateObsv implements the paper's Eq. 1: calls per second estimated as
// r / (t_r - t_1), i.e. the reciprocal of the mean delta.
func (s DeltaSnapshot) RateObsv() float64 {
	if s.Count == 0 || s.LastTS <= s.FirstTS {
		return 0
	}
	return float64(s.Count) / (float64(s.LastTS-s.FirstTS) / 1e9)
}

// VarianceUS2 implements the paper's Eq. 2 in microsecond^2 units:
// var = E[d^2] - E[d]^2 over the inter-call deltas.
func (s DeltaSnapshot) VarianceUS2() float64 {
	if s.Count == 0 {
		return 0
	}
	n := float64(s.Count)
	meanSq := s.MeanDeltaNS() / 1000
	v := float64(s.SumSqUS)/n - meanSq*meanSq
	if v < 0 {
		return 0
	}
	return v
}
