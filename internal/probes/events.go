package probes

import (
	"encoding/binary"
	"fmt"

	"reqlens/internal/ebpf"
	"reqlens/internal/sim"
)

// MetricEvent kinds, carried in the high half of the record's NR word.
const (
	EventDelta = 1 // inter-call delta from a DeltaProbe stream variant
	EventPoll  = 2 // completed poll duration from a PollProbe stream variant
)

// Fixed metric-event record layout (4 x u64, 32 bytes). Unlike the raw
// StreamProbe trace record, this is the production shape: one bounded
// record per *metric observation*, not per syscall edge.
const (
	evOffTS      = 0  // ktime of the observation
	evOffPidTgid = 8  // tgid<<32 | tid of the calling thread
	evOffNR      = 16 // low 32: syscall nr; high 32: kind + flags
	evOffValue   = 24 // delta ns (EventDelta) or duration ns (EventPoll)

	// EventSize is the wire size of one metric event record.
	EventSize = 32
)

// Meta encoding in the high 32 bits of the NR word.
const (
	evMetaFirst     = 1 << 0 // delta warmup call: no value yet
	evMetaKindShift = 8

	evMetaDelta      = EventDelta << evMetaKindShift
	evMetaDeltaFirst = evMetaDelta | evMetaFirst
	evMetaPoll       = EventPoll << evMetaKindShift
)

// MetricEvent is one decoded fixed-size metric record from the streaming
// probe variants.
type MetricEvent struct {
	Time    sim.Time
	PidTgid uint64
	NR      int
	Kind    uint8  // EventDelta or EventPoll
	First   bool   // EventDelta only: warmup call carrying no delta
	Value   uint64 // delta ns or poll duration ns; 0 when First
}

// TID returns the thread id half of PidTgid.
func (e MetricEvent) TID() int { return int(uint32(e.PidTgid)) }

// TGID returns the process id half of PidTgid.
func (e MetricEvent) TGID() int { return int(e.PidTgid >> 32) }

// DecodeEvent parses one raw ring-buffer record.
func DecodeEvent(rec []byte) (MetricEvent, error) {
	if len(rec) != EventSize {
		return MetricEvent{}, fmt.Errorf("probes: metric event record is %d bytes, want %d", len(rec), EventSize)
	}
	nrWord := binary.LittleEndian.Uint64(rec[evOffNR:])
	meta := uint32(nrWord >> 32)
	return MetricEvent{
		Time:    sim.Time(binary.LittleEndian.Uint64(rec[evOffTS:])),
		PidTgid: binary.LittleEndian.Uint64(rec[evOffPidTgid:]),
		NR:      int(uint32(nrWord)),
		Kind:    uint8(meta >> evMetaKindShift),
		First:   meta&evMetaFirst != 0,
		Value:   binary.LittleEndian.Uint64(rec[evOffValue:]),
	}, nil
}

// DecodeEvents parses a Drain batch, skipping malformed records.
func DecodeEvents(raw [][]byte) []MetricEvent {
	out := make([]MetricEvent, 0, len(raw))
	for _, r := range raw {
		ev, err := DecodeEvent(r)
		if err != nil {
			continue
		}
		out = append(out, ev)
	}
	return out
}

// emitEventOutput emits the ringbuf_output call submitting the EventSize
// record assembled on the stack at frame offset rec. Clobbers R0-R5; the
// drop case (full ring) is accounted by the map, so the return value is
// deliberately ignored — probes must never fail the traced syscall.
func emitEventOutput(a *ebpf.Assembler, rec int16) {
	a.EmitWide(ebpf.LoadMapFD(ebpf.R1, fdRingbuf))
	a.Emit(
		ebpf.Mov64Reg(ebpf.R2, ebpf.R10),
		ebpf.Add64Imm(ebpf.R2, int32(rec)),
		ebpf.Mov64Imm(ebpf.R3, EventSize),
		ebpf.Mov64Imm(ebpf.R4, 0),
		ebpf.Call(ebpf.HelperRingbufOutput),
	)
}
