package probes

import (
	"math"
	"testing"
	"time"

	"reqlens/internal/kernel"
)

func TestHistProbeBucketsDurations(t *testing.T) {
	env, k := rig(2)
	srv := k.NewProcess("srv")
	probe := MustNewHistProbe("poll", srv.TGID(), []int{kernel.SysEpollWait})
	if err := probe.Attach(k.Tracer()); err != nil {
		t.Fatal(err)
	}
	// 10 polls of ~100us (bucket 6: 64..128us) and 5 of ~5ms
	// (bucket 12: 4096..8192us).
	srv.SpawnThread("w", func(th *kernel.Thread) {
		for i := 0; i < 10; i++ {
			th.Invoke(kernel.SysEpollWait, [6]uint64{}, func() int64 {
				th.Sleep(100 * time.Microsecond)
				return 0
			})
		}
		for i := 0; i < 5; i++ {
			th.Invoke(kernel.SysEpollWait, [6]uint64{}, func() int64 {
				th.Sleep(5 * time.Millisecond)
				return 0
			})
		}
	})
	env.Run()
	if k.Tracer().RunErrors() != 0 {
		t.Fatalf("probe faults: %v", k.Tracer().LastError())
	}
	counts := probe.Snapshot()
	if counts[6] != 10 {
		t.Fatalf("bucket 6 (64-128us) = %d, want 10; all: %v", counts[6], counts)
	}
	if counts[12] != 5 {
		t.Fatalf("bucket 12 (4-8ms) = %d, want 5; all: %v", counts[12], counts)
	}
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total != 15 {
		t.Fatalf("total = %d, want 15", total)
	}

	// Quantiles from the log2 histogram.
	p50 := QuantileUS(counts, 0.5)
	if p50 < 64 || p50 > 181 {
		t.Fatalf("p50 = %v us, want in the 100us bucket", p50)
	}
	p99 := QuantileUS(counts, 0.99)
	if p99 < 4096 || p99 > 11586 {
		t.Fatalf("p99 = %v us, want in the 5ms bucket", p99)
	}
	probe.Reset()
	if got := probe.Snapshot(); got[6] != 0 || got[12] != 0 {
		t.Fatal("Reset did not clear buckets")
	}
}

func TestHistProbeSubMicrosecondGoesToBucketZero(t *testing.T) {
	env, k := rig(1)
	srv := k.NewProcess("srv")
	probe := MustNewHistProbe("poll", srv.TGID(), []int{kernel.SysEpollWait})
	if err := probe.Attach(k.Tracer()); err != nil {
		t.Fatal(err)
	}
	srv.SpawnThread("w", func(th *kernel.Thread) {
		th.Invoke(kernel.SysEpollWait, [6]uint64{}, func() int64 {
			th.Sleep(200 * time.Nanosecond)
			return 0
		})
	})
	env.Run()
	counts := probe.Snapshot()
	if counts[0] != 1 {
		t.Fatalf("bucket 0 = %d, want the sub-us duration; all: %v", counts[0], counts)
	}
}

func TestQuantileUSEmpty(t *testing.T) {
	var empty [histBuckets]uint64
	if got := QuantileUS(empty, 0.5); got != 0 {
		t.Fatalf("empty quantile = %v", got)
	}
}

func TestQuantileUSMonotone(t *testing.T) {
	var counts [histBuckets]uint64
	counts[3], counts[7], counts[15] = 10, 10, 10
	prev := 0.0
	for _, q := range []float64{0.1, 0.4, 0.7, 0.99} {
		v := QuantileUS(counts, q)
		if v < prev {
			t.Fatalf("quantiles not monotone at q=%v: %v < %v", q, v, prev)
		}
		prev = v
	}
	if math.IsNaN(prev) {
		t.Fatal("NaN quantile")
	}
}
