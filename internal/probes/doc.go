// Package probes contains the eBPF programs of the paper's
// methodology, written against the reqlens assembler and loaded through
// the verifier:
//
//   - DeltaProbe: in-kernel inter-syscall delta statistics for a
//     syscall family (count, sum, sum of squares, first/last
//     timestamps) — the machinery behind Eq. 1 (RPS_obsv = 1/mean
//     delta, Fig. 2) and Eq. 2 (variance of deltas, Fig. 3) computed
//     entirely in map space.
//   - PollProbe: Listing 1 generalized — entry/exit timestamp pairing
//     for poll syscalls (epoll_wait/select), accumulating call
//     durations for the saturation-slack signal (Fig. 4).
//   - StreamProbe: raw sys_enter/sys_exit records emitted to a ring
//     buffer for userspace analysis (the paper's initial exploration
//     mode, and Fig. 1's trace; `cmd/tracedump`).
//   - HistProbe: beyond the paper's minimum, a bcc-style in-kernel log2
//     latency histogram with atomically bumped bucket counters;
//     QuantileUS interpolates quantiles from the buckets.
//
// DeltaProbe and PollProbe also come in event-streaming variants
// (NewDeltaProbeStream / NewPollProbeStream): the same programs
// additionally commit one fixed 32-byte MetricEvent record (timestamp,
// pid_tgid, syscall nr, delta/duration) into a shared ring buffer via
// bpf_ringbuf_output, alongside the unchanged aggregate-map updates.
// DecodeEvents parses a drained batch; folding the events with the
// probes' own integer arithmetic reconstructs the aggregate maps
// bit-for-bit when the ring never overflowed.
//
// All programs filter by tgid in-kernel, exactly as the paper's Listing
// 1 filters PID_TGID, so an attached probe observes one application.
//
// Key entry points: NewDeltaProbe / NewPollProbe / NewStreamProbe /
// NewHistProbe (and their Must variants) construct a probe; Attach
// loads it on a kernel.Tracer; Snapshot (or Drain, for the stream)
// reads the in-map state. internal/core composes Delta and Poll probes
// into the windowed Observer API most callers want — and their
// streaming variants into StreamObserver.
package probes
