package probes

import (
	"encoding/binary"
	"testing"
	"time"

	"reqlens/internal/ebpf"
	"reqlens/internal/kernel"
	"reqlens/internal/workloads"
)

func TestWaitStateProbeVerifies(t *testing.T) {
	p := MustNewWaitStateProbe("ws", WaitStateConfig{})
	if p.SwitchProgram().Len() == 0 || p.WakeupProgram().Len() == 0 {
		t.Fatal("empty program")
	}
	if p.SwitchProgram().Disassemble() == "" || p.WakeupProgram().Disassemble() == "" {
		t.Fatal("no disassembly")
	}
	if p.Bytes() <= 0 {
		t.Fatal("no map footprint")
	}
}

func TestWaitStateProgramsRejectWrongTracepoint(t *testing.T) {
	_, k := rig(1)
	p := MustNewWaitStateProbe("ws", WaitStateConfig{})
	if _, err := k.Tracer().Attach(kernel.RawSysEnter, p.SwitchProgram()); err == nil {
		t.Fatal("sys_enter accepted a sched_switch-sized program")
	}
	if _, err := k.Tracer().Attach(kernel.SchedSwitch, p.WakeupProgram()); err == nil {
		t.Fatal("sched_switch accepted a sched_wakeup-sized program")
	}
}

func TestWaitStateAccountsComputeAndQueue(t *testing.T) {
	env, k := rig(1) // one CPU so two computing threads must share it
	p1 := k.NewProcess("p1")
	p2 := k.NewProcess("p2")
	probe := MustNewWaitStateProbe("ws", WaitStateConfig{})
	if err := probe.Attach(k.Tracer()); err != nil {
		t.Fatal(err)
	}
	const work = 10 * time.Millisecond
	p1.SpawnThread("a", func(th *kernel.Thread) { th.Compute(work) })
	p2.SpawnThread("b", func(th *kernel.Thread) { th.Compute(work) })
	env.Run()
	if k.Tracer().RunErrors() != 0 {
		t.Fatalf("probe faults: %v", k.Tracer().LastError())
	}
	snap := probe.Snapshot()
	for _, proc := range []*kernel.Process{p1, p2} {
		w, ok := snap[uint64(proc.TGID())]
		if !ok {
			t.Fatalf("no wait-state row for %s", proc.Name())
		}
		// On-CPU time is the requested compute plus the probe cost folded
		// into the timeslices.
		if got := time.Duration(w.OnCPUNS); got < work || got > work+work/10 {
			t.Fatalf("%s on-CPU = %v, want ~%v", proc.Name(), got, work)
		}
		// With a 1ms timeslice the loser of each quantum waits roughly as
		// long as it runs.
		if got := time.Duration(w.RunnableNS); got < work/2 {
			t.Fatalf("%s runnable = %v, want at least %v", proc.Name(), got, work/2)
		}
	}
}

func TestWaitStateAccountsBlockedSleep(t *testing.T) {
	env, k := rig(2)
	proc := k.NewProcess("p")
	probe := MustNewWaitStateProbe("ws", WaitStateConfig{})
	if err := probe.Attach(k.Tracer()); err != nil {
		t.Fatal(err)
	}
	const pause = 5 * time.Millisecond
	proc.SpawnThread("w", func(th *kernel.Thread) {
		th.Compute(time.Millisecond)
		th.Sleep(pause)
		th.Compute(time.Millisecond)
	})
	env.Run()
	if k.Tracer().RunErrors() != 0 {
		t.Fatalf("probe faults: %v", k.Tracer().LastError())
	}
	w := probe.Snapshot()[uint64(proc.TGID())]
	if got := time.Duration(w.BlockedNS); got < pause || got > pause+pause/10 {
		t.Fatalf("blocked = %v, want ~%v", got, pause)
	}
	if got := time.Duration(w.OnCPUNS); got < 2*time.Millisecond {
		t.Fatalf("on-CPU = %v, want >= 2ms", got)
	}
}

// The three states partition a thread's life between its first and last
// scheduler transition: an uncontended single-thread run must account
// (nearly) every nanosecond of it.
func TestWaitStateSumMatchesElapsed(t *testing.T) {
	env, k := rig(2)
	proc := k.NewProcess("p")
	probe := MustNewWaitStateProbe("ws", WaitStateConfig{})
	if err := probe.Attach(k.Tracer()); err != nil {
		t.Fatal(err)
	}
	var span time.Duration
	proc.SpawnThread("w", func(th *kernel.Thread) {
		start := th.Now()
		for i := 0; i < 50; i++ {
			th.Compute(200 * time.Microsecond)
			th.Sleep(100 * time.Microsecond)
		}
		th.Compute(time.Microsecond) // close the final blocked interval
		span = time.Duration(th.Now() - start)
	})
	env.Run()
	w := probe.Snapshot()[uint64(proc.TGID())]
	total := time.Duration(w.TotalNS())
	// The final on-CPU interval is still open at shutdown; everything
	// else must be covered.
	if diff := span - total; diff < 0 || diff > 50*time.Microsecond {
		t.Fatalf("states cover %v of %v elapsed (diff %v)", total, span, diff)
	}
}

func TestWaitSnapshotSubWindows(t *testing.T) {
	a := WaitSnapshot{
		1: {OnCPUNS: 100, RunnableNS: 50, BlockedNS: 10},
		2: {OnCPUNS: 7},
	}
	b := WaitSnapshot{
		1: {OnCPUNS: 160, RunnableNS: 70, BlockedNS: 10},
		2: {OnCPUNS: 7},
		3: {BlockedNS: 9},
	}
	d := b.Sub(a)
	if got := d[1]; got != (WaitTimes{OnCPUNS: 60, RunnableNS: 20}) {
		t.Fatalf("window for tgid 1 = %+v", got)
	}
	if _, ok := d[2]; ok {
		t.Fatal("idle tgid should be dropped from the window")
	}
	if got := d[3]; got != (WaitTimes{BlockedNS: 9}) {
		t.Fatalf("window for tgid 3 = %+v", got)
	}
	if d[1].TotalNS() != 80 {
		t.Fatalf("TotalNS = %d", d[1].TotalNS())
	}
}

// switchCtx builds a sched_switch ctx handing the CPU from prev to next.
func switchCtx(prev, next uint64, prevState uint64) []byte {
	ctx := make([]byte, kernel.SchedSwitchCtxSize)
	binary.LittleEndian.PutUint64(ctx[kernel.CtxOffPrevPidTgid:], prev)
	binary.LittleEndian.PutUint64(ctx[kernel.CtxOffPrevState:], prevState)
	binary.LittleEndian.PutUint64(ctx[kernel.CtxOffNextPidTgid:], next)
	return ctx
}

// With a TrackTGID, foreign transitions must leave no trace and the
// tracked process must still be fully accounted from either side of a
// switch.
func TestWaitStateTrackTGID(t *testing.T) {
	p := MustNewWaitStateProbe("ws", WaitStateConfig{TrackTGID: 7})
	env := &ebpf.FixedEnv{}
	const ours, theirA, theirB = 7<<32 | 70, 9<<32 | 90, 10<<32 | 91
	env.TimeNS = 1000
	if _, _, err := p.SwitchProgram().Run(switchCtx(theirA, theirB, kernel.TaskRunning), env); err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.WakeupProgram().Run(switchCtx(theirA, 0, 0)[:kernel.SchedWakeupCtxSize], env); err != nil {
		t.Fatal(err)
	}
	if p.State.Len() != 0 {
		t.Fatalf("foreign transitions left %d state rows", p.State.Len())
	}
	// theirA hands the CPU to us: only our on-CPU interval opens.
	env.TimeNS = 2000
	p.SwitchProgram().Run(switchCtx(theirA, ours, kernel.TaskRunning), env)
	if p.State.Len() != 1 {
		t.Fatalf("tracked switch-in left %d state rows, want 1", p.State.Len())
	}
	// We hand it back: our interval closes, nothing opens for theirB.
	env.TimeNS = 2500
	p.SwitchProgram().Run(switchCtx(ours, theirB, kernel.TaskRunning), env)
	snap := p.Snapshot()
	if got := snap[7].OnCPUNS; got != 500 {
		t.Fatalf("tracked on-CPU = %d, want 500", got)
	}
	for _, tgid := range []uint64{9, 10} {
		if _, ok := snap[tgid]; ok {
			t.Fatalf("foreign tgid %d accounted", tgid)
		}
	}
}

// Steady state — every thread and tgid already known to the maps — must
// stay off the allocator on the compiled backend (the interpreter pays
// a fixed per-run VM-state cost by design; see TestCompiledRunZeroAllocs
// for the split). On both backends the maps must stop growing: the
// state machine only overwrites existing entries, never delete/insert
// cycles.
func TestWaitStateHotPathAllocFree(t *testing.T) {
	for _, be := range []ebpf.Backend{ebpf.BackendInterpreter, ebpf.BackendCompiled} {
		prev := ebpf.SetDefaultBackend(be)
		p := MustNewWaitStateProbe("ws", WaitStateConfig{})
		ebpf.SetDefaultBackend(prev)
		env := &ebpf.FixedEnv{}
		const t1, t2 = 5<<32 | 1, 6<<32 | 2
		a := switchCtx(t1, t2, kernel.TaskRunning)
		b := switchCtx(t2, t1, kernel.TaskRunning)
		// Warm: seed the state entries and both tgids' accumulators.
		for i := 0; i < 4; i++ {
			env.TimeNS += 1000
			for _, ctx := range [][]byte{a, b} {
				if _, _, err := p.SwitchProgram().Run(ctx, env); err != nil {
					t.Fatal(err)
				}
			}
		}
		warmLen := p.State.Len()
		for i := 0; i < 200; i++ {
			env.TimeNS += 1000
			p.SwitchProgram().Run(a, env)
			p.SwitchProgram().Run(b, env)
		}
		if got := p.State.Len(); got != warmLen {
			t.Fatalf("backend %v: state map grew %d -> %d in steady state", be, warmLen, got)
		}
		if be != ebpf.BackendCompiled {
			continue
		}
		allocs := testing.AllocsPerRun(200, func() {
			env.TimeNS += 1000
			p.SwitchProgram().Run(a, env)
			p.SwitchProgram().Run(b, env)
		})
		if allocs != 0 {
			t.Fatalf("%v allocs/run on the warm compiled switch path", allocs)
		}
	}
}

// BenchmarkWaitStateHotPath drives the sched_switch program the way the
// tracer does at saturation — two threads trading a CPU — and reports
// the modeled per-event probe cost plus the implied CPU overhead at
// memcached's paper-calibrated event rate (FailureRPS × the ~3 sched
// events each request's syscall computes generate per core schedule).
func BenchmarkWaitStateHotPath(b *testing.B) {
	p := MustNewWaitStateProbe("ws", WaitStateConfig{})
	env := &ebpf.FixedEnv{}
	const t1, t2 = 5<<32 | 1, 6<<32 | 2
	x := switchCtx(t1, t2, kernel.TaskRunning)
	y := switchCtx(t2, t1, kernel.TaskRunning)
	ctxs := [2][]byte{x, y}
	var insns, helpers uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env.TimeNS += 1000
		_, st, err := p.SwitchProgram().Run(ctxs[i&1], env)
		if err != nil {
			b.Fatal(err)
		}
		insns += uint64(st.Instructions)
		helpers += uint64(st.HelperCalls)
	}
	b.StopTimer()
	n := float64(b.N)
	b.ReportMetric(float64(insns)/n, "insns/op")
	// The kernel's probe cost model: 15ns trampoline + 1ns/insn +
	// 10ns/helper, matching internal/kernel's charging.
	modeled := 15 + float64(insns)/n + 10*float64(helpers)/n
	b.ReportMetric(modeled, "modeled_ns/event")
	// Overhead share at memcached saturation: FailureRPS requests/s, ~3
	// sched events per request-serving compute, across the calibrated
	// 8-core server.
	rate := workloads.DataCaching().FailureRPS * 3
	pct := 100 * modeled * rate / 1e9 / float64(workloads.ServerCores)
	b.ReportMetric(pct, "memcached_overhead_%")
}

// BenchmarkWaitStateFilteredMiss pins the early-exit path: with a
// TrackTGID set, somebody else's context switch must cost a
// load-shift-compare pair and no helper calls.
func BenchmarkWaitStateFilteredMiss(b *testing.B) {
	p := MustNewWaitStateProbe("ws", WaitStateConfig{TrackTGID: 42})
	env := &ebpf.FixedEnv{}
	ctx := switchCtx(5<<32|1, 6<<32|2, kernel.TaskRunning)
	var insns, helpers uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, st, err := p.SwitchProgram().Run(ctx, env)
		if err != nil {
			b.Fatal(err)
		}
		insns += uint64(st.Instructions)
		helpers += uint64(st.HelperCalls)
	}
	b.StopTimer()
	n := float64(b.N)
	b.ReportMetric(float64(insns)/n, "insns/op")
	b.ReportMetric(15+float64(insns)/n+10*float64(helpers)/n, "modeled_ns/event")
}
