package probes

import (
	"testing"
	"time"

	"reqlens/internal/ebpf"
	"reqlens/internal/kernel"
)

// foldDelta replays EventDelta records into the cumulative aggregate
// state, using the same integer arithmetic the in-kernel program uses.
func foldDelta(evs []MetricEvent) DeltaSnapshot {
	var s DeltaSnapshot
	for _, ev := range evs {
		if ev.Kind != EventDelta {
			continue
		}
		s.Calls++
		s.LastTS = uint64(ev.Time)
		if ev.First {
			s.FirstTS = uint64(ev.Time)
			continue
		}
		s.Count++
		s.SumNS += ev.Value
		us := ev.Value / 1000
		s.SumSqUS += us * us
	}
	return s
}

func TestDeltaProbeStreamMatchesAggregates(t *testing.T) {
	env, k := rig(2)
	srv := k.NewProcess("srv")
	ring := ebpf.NewRingBuf("ring", 1<<20)
	probe, err := NewDeltaProbeStream("send", srv.TGID(), []int{kernel.SysSendto}, ring)
	if err != nil {
		t.Fatal(err)
	}
	if err := probe.Attach(k.Tracer()); err != nil {
		t.Fatal(err)
	}
	srv.SpawnThread("w", func(th *kernel.Thread) {
		// Bursty cadence so SumSqUS exercises the integer quantization.
		for i := 0; i < 200; i++ {
			th.Invoke(kernel.SysSendto, [6]uint64{}, func() int64 { return 64 })
			if i%2 == 0 {
				th.Sleep(137 * time.Microsecond)
			} else {
				th.Sleep(1900 * time.Microsecond)
			}
		}
	})
	env.Run()
	if k.Tracer().RunErrors() != 0 {
		t.Fatalf("probe faults: %v", k.Tracer().LastError())
	}
	evs := DecodeEvents(ring.Drain())
	if len(evs) != 200 {
		t.Fatalf("events = %d, want one per matched call", len(evs))
	}
	if !evs[0].First || evs[0].Value != 0 {
		t.Fatalf("first event = %+v, want First with no value", evs[0])
	}
	for _, ev := range evs {
		if ev.NR != kernel.SysSendto || ev.Kind != EventDelta {
			t.Fatalf("event = %+v", ev)
		}
		if ev.TGID() != srv.TGID() {
			t.Fatalf("TGID = %d, want %d", ev.TGID(), srv.TGID())
		}
	}
	// The event stream must reconstruct the aggregate map bit-for-bit.
	if got, want := foldDelta(evs), probe.Snapshot(); got != want {
		t.Fatalf("folded events = %+v\naggregate map = %+v", got, want)
	}
	if ring.Dropped() != 0 {
		t.Fatalf("dropped %d events", ring.Dropped())
	}
}

func TestPollProbeStreamMatchesAggregates(t *testing.T) {
	env, k := rig(2)
	srv := k.NewProcess("srv")
	ring := ebpf.NewRingBuf("ring", 1<<20)
	probe, err := NewPollProbeStream("poll", srv.TGID(), []int{kernel.SysEpollWait}, ring)
	if err != nil {
		t.Fatal(err)
	}
	if err := probe.Attach(k.Tracer()); err != nil {
		t.Fatal(err)
	}
	srv.SpawnThread("w", func(th *kernel.Thread) {
		for i := 0; i < 50; i++ {
			th.Invoke(kernel.SysEpollWait, [6]uint64{}, func() int64 {
				th.Sleep(time.Duration(200+10*i) * time.Microsecond)
				return 1
			})
			th.Sleep(100 * time.Microsecond)
		}
	})
	env.Run()
	if k.Tracer().RunErrors() != 0 {
		t.Fatalf("probe faults: %v", k.Tracer().LastError())
	}
	evs := DecodeEvents(ring.Drain())
	if len(evs) != 50 {
		t.Fatalf("events = %d, want one per completed poll", len(evs))
	}
	var got PollSnapshot
	for _, ev := range evs {
		if ev.Kind != EventPoll || ev.NR != kernel.SysEpollWait || ev.First {
			t.Fatalf("event = %+v", ev)
		}
		got.Count++
		got.SumNS += ev.Value
	}
	if want := probe.Snapshot(); got != want {
		t.Fatalf("folded events = %+v, aggregate map = %+v", got, want)
	}
}

func TestStreamVariantsRequireRing(t *testing.T) {
	if _, err := NewDeltaProbeStream("x", 0, []int{1}, nil); err == nil {
		t.Fatal("nil ring should fail")
	}
	if _, err := NewPollProbeStream("x", 0, []int{1}, nil); err == nil {
		t.Fatal("nil ring should fail")
	}
}

func TestDecodeEventRejectsBadSize(t *testing.T) {
	if _, err := DecodeEvent(make([]byte, EventSize-1)); err == nil {
		t.Fatal("short record should fail")
	}
	if evs := DecodeEvents([][]byte{make([]byte, 3), make([]byte, EventSize)}); len(evs) != 1 {
		t.Fatalf("DecodeEvents kept %d records, want 1", len(evs))
	}
}
