package probes

import (
	"math"
	"testing"
	"time"

	"reqlens/internal/kernel"
	"reqlens/internal/machine"
	"reqlens/internal/sim"
)

func rig(ncpu int) (*sim.Env, *kernel.Kernel) {
	env := sim.NewEnv(11)
	prof := machine.Profile{
		Name: "t", Sockets: 1, CoresPerSock: ncpu, ThreadsPerCore: 1,
		TimeSlice: time.Millisecond,
	}
	return env, kernel.New(env, prof)
}

func TestDeltaProbeVerifies(t *testing.T) {
	p := MustNewDeltaProbe("send", 4242, []int{kernel.SysSendto, kernel.SysSendmsg})
	if p.Program().Len() == 0 {
		t.Fatal("empty program")
	}
	if got := p.Program().Disassemble(); got == "" {
		t.Fatal("no disassembly")
	}
}

func TestDeltaProbeBadNRCount(t *testing.T) {
	if _, err := NewDeltaProbe("x", 0, nil); err == nil {
		t.Fatal("expected error for zero syscalls")
	}
	if _, err := NewDeltaProbe("x", 0, []int{1, 2, 3, 4, 5}); err == nil {
		t.Fatal("expected error for five syscalls")
	}
}

func TestDeltaProbeCountsRegularSends(t *testing.T) {
	env, k := rig(2)
	srv := k.NewProcess("srv")
	probe := MustNewDeltaProbe("send", srv.TGID(), []int{kernel.SysSendto})
	if err := probe.Attach(k.Tracer()); err != nil {
		t.Fatal(err)
	}
	const N = 101
	const gap = 500 * time.Microsecond
	srv.SpawnThread("w", func(th *kernel.Thread) {
		for i := 0; i < N; i++ {
			th.Invoke(kernel.SysSendto, [6]uint64{}, func() int64 { return 64 })
			th.Sleep(gap)
		}
	})
	env.Run()
	s := probe.Snapshot()
	if s.Calls != N {
		t.Fatalf("Calls = %d, want %d", s.Calls, N)
	}
	if s.Count != N-1 {
		t.Fatalf("Count = %d, want %d deltas", s.Count, N-1)
	}
	mean := s.MeanDeltaNS()
	if math.Abs(mean-float64(gap)) > float64(gap)*0.02 {
		t.Fatalf("mean delta = %v, want ~%v", time.Duration(mean), gap)
	}
	// Eq. 1: rate = 1/mean delta = 2000/s.
	rate := s.RateObsv()
	if math.Abs(rate-2000) > 50 {
		t.Fatalf("RateObsv = %v, want ~2000", rate)
	}
	// Perfectly regular sends: variance ~ 0.
	if v := s.VarianceUS2(); v > 5 {
		t.Fatalf("variance = %v us^2, want ~0 for regular cadence", v)
	}
	if k.Tracer().RunErrors() != 0 {
		t.Fatalf("probe faults: %v", k.Tracer().LastError())
	}
}

func TestDeltaProbeVarianceDetectsBurstiness(t *testing.T) {
	env, k := rig(2)
	srv := k.NewProcess("srv")
	probe := MustNewDeltaProbe("send", srv.TGID(), []int{kernel.SysSendto})
	if err := probe.Attach(k.Tracer()); err != nil {
		t.Fatal(err)
	}
	srv.SpawnThread("w", func(th *kernel.Thread) {
		// Bursty: alternating 100us and 2ms gaps (same mean as ~1.05ms).
		for i := 0; i < 200; i++ {
			th.Invoke(kernel.SysSendto, [6]uint64{}, func() int64 { return 64 })
			if i%2 == 0 {
				th.Sleep(100 * time.Microsecond)
			} else {
				th.Sleep(2 * time.Millisecond)
			}
		}
	})
	env.Run()
	v := probe.Snapshot().VarianceUS2()
	// Deltas alternate 100us/2000us: var = (950us)^2 = 902500 us^2.
	if v < 500_000 {
		t.Fatalf("variance = %v us^2, want large for bursty cadence", v)
	}
}

func TestDeltaProbeFiltersOtherProcesses(t *testing.T) {
	env, k := rig(2)
	srv := k.NewProcess("srv")
	other := k.NewProcess("other")
	probe := MustNewDeltaProbe("send", srv.TGID(), []int{kernel.SysSendto})
	if err := probe.Attach(k.Tracer()); err != nil {
		t.Fatal(err)
	}
	other.SpawnThread("noise", func(th *kernel.Thread) {
		for i := 0; i < 50; i++ {
			th.Invoke(kernel.SysSendto, [6]uint64{}, func() int64 { return 1 })
			th.Sleep(time.Millisecond)
		}
	})
	srv.SpawnThread("w", func(th *kernel.Thread) {
		for i := 0; i < 10; i++ {
			th.Invoke(kernel.SysSendto, [6]uint64{}, func() int64 { return 1 })
			th.Sleep(time.Millisecond)
		}
	})
	env.Run()
	if s := probe.Snapshot(); s.Calls != 10 {
		t.Fatalf("Calls = %d, want 10 (other process filtered)", s.Calls)
	}
}

func TestDeltaProbeFiltersOtherSyscalls(t *testing.T) {
	env, k := rig(2)
	srv := k.NewProcess("srv")
	probe := MustNewDeltaProbe("send", srv.TGID(), []int{kernel.SysSendmsg})
	if err := probe.Attach(k.Tracer()); err != nil {
		t.Fatal(err)
	}
	srv.SpawnThread("w", func(th *kernel.Thread) {
		for i := 0; i < 10; i++ {
			th.Invoke(kernel.SysRead, [6]uint64{}, func() int64 { return 1 })
			th.Invoke(kernel.SysSendmsg, [6]uint64{}, func() int64 { return 1 })
			th.Sleep(time.Millisecond)
		}
	})
	env.Run()
	if s := probe.Snapshot(); s.Calls != 10 {
		t.Fatalf("Calls = %d, want 10 (read filtered out)", s.Calls)
	}
}

func TestDeltaSnapshotWindows(t *testing.T) {
	env, k := rig(2)
	srv := k.NewProcess("srv")
	probe := MustNewDeltaProbe("send", srv.TGID(), []int{kernel.SysSendto})
	if err := probe.Attach(k.Tracer()); err != nil {
		t.Fatal(err)
	}
	srv.SpawnThread("w", func(th *kernel.Thread) {
		for i := 0; i < 100; i++ {
			th.Invoke(kernel.SysSendto, [6]uint64{}, func() int64 { return 1 })
			th.Sleep(time.Millisecond)
		}
	})
	var win DeltaSnapshot
	env.Schedule(50*time.Millisecond, func() {
		win = probe.Snapshot()
	})
	env.Run()
	final := probe.Snapshot()
	tail := final.Sub(win)
	if tail.Count+win.Count != final.Count {
		t.Fatal("window counts do not add up")
	}
	if tail.RateObsv() < 900 || tail.RateObsv() > 1100 {
		t.Fatalf("window rate = %v, want ~1000", tail.RateObsv())
	}
}

func TestDeltaProbeReset(t *testing.T) {
	env, k := rig(1)
	srv := k.NewProcess("srv")
	probe := MustNewDeltaProbe("send", srv.TGID(), []int{kernel.SysSendto})
	if err := probe.Attach(k.Tracer()); err != nil {
		t.Fatal(err)
	}
	srv.SpawnThread("w", func(th *kernel.Thread) {
		th.Invoke(kernel.SysSendto, [6]uint64{}, func() int64 { return 1 })
	})
	env.Run()
	probe.Reset()
	if s := probe.Snapshot(); s.Calls != 0 || s.Count != 0 {
		t.Fatal("Reset did not clear stats")
	}
}

func TestPollProbeMeasuresDuration(t *testing.T) {
	env, k := rig(2)
	srv := k.NewProcess("srv")
	probe := MustNewPollProbe("poll", srv.TGID(), []int{kernel.SysEpollWait})
	if err := probe.Attach(k.Tracer()); err != nil {
		t.Fatal(err)
	}
	const waitDur = 7 * time.Millisecond
	srv.SpawnThread("w", func(th *kernel.Thread) {
		for i := 0; i < 20; i++ {
			th.Invoke(kernel.SysEpollWait, [6]uint64{}, func() int64 {
				th.Sleep(waitDur) // idle wait inside the syscall
				return 0
			})
		}
	})
	env.Run()
	s := probe.Snapshot()
	if s.Count != 20 {
		t.Fatalf("Count = %d, want 20", s.Count)
	}
	mean := time.Duration(s.MeanNS())
	if mean < waitDur || mean > waitDur+time.Millisecond {
		t.Fatalf("mean poll duration = %v, want ~%v", mean, waitDur)
	}
	if k.Tracer().RunErrors() != 0 {
		t.Fatalf("probe faults: %v", k.Tracer().LastError())
	}
	if probe.Start.Len() != 0 {
		t.Fatalf("start map leaked %d entries", probe.Start.Len())
	}
}

func TestPollProbeConcurrentThreadsDoNotCollide(t *testing.T) {
	env, k := rig(4)
	srv := k.NewProcess("srv")
	probe := MustNewPollProbe("poll", srv.TGID(), []int{kernel.SysEpollWait})
	if err := probe.Attach(k.Tracer()); err != nil {
		t.Fatal(err)
	}
	// Two threads with different, overlapping wait durations.
	for i, d := range []time.Duration{4 * time.Millisecond, 8 * time.Millisecond} {
		d := d
		_ = i
		srv.SpawnThread("w", func(th *kernel.Thread) {
			for j := 0; j < 10; j++ {
				th.Invoke(kernel.SysEpollWait, [6]uint64{}, func() int64 {
					th.Sleep(d)
					return 0
				})
			}
		})
	}
	env.Run()
	s := probe.Snapshot()
	if s.Count != 20 {
		t.Fatalf("Count = %d, want 20", s.Count)
	}
	mean := time.Duration(s.MeanNS())
	want := 6 * time.Millisecond // average of 4ms and 8ms
	if mean < want-time.Millisecond || mean > want+time.Millisecond {
		t.Fatalf("mean = %v, want ~%v (per-thread keying)", mean, want)
	}
}

func TestPollProbeSelectVariant(t *testing.T) {
	env, k := rig(1)
	srv := k.NewProcess("srv")
	probe := MustNewPollProbe("poll", srv.TGID(), []int{kernel.SysEpollWait, kernel.SysSelect})
	if err := probe.Attach(k.Tracer()); err != nil {
		t.Fatal(err)
	}
	srv.SpawnThread("w", func(th *kernel.Thread) {
		th.Invoke(kernel.SysSelect, [6]uint64{}, func() int64 {
			th.Sleep(3 * time.Millisecond)
			return 0
		})
	})
	env.Run()
	if s := probe.Snapshot(); s.Count != 1 {
		t.Fatalf("select not counted: %+v", s)
	}
}

func TestStreamProbeRoundTrip(t *testing.T) {
	env, k := rig(2)
	srv := k.NewProcess("srv")
	probe := MustNewStreamProbe("raw", srv.TGID(), 1<<20)
	if err := probe.Attach(k.Tracer()); err != nil {
		t.Fatal(err)
	}
	srv.SpawnThread("w", func(th *kernel.Thread) {
		th.Invoke(kernel.SysRecvfrom, [6]uint64{}, func() int64 { return 128 })
		th.Invoke(kernel.SysSendto, [6]uint64{}, func() int64 { return 256 })
	})
	env.Run()
	evs := probe.Drain()
	if len(evs) != 4 {
		t.Fatalf("events = %d, want 4 (2 enters + 2 exits)", len(evs))
	}
	if !evs[0].Enter || evs[0].NR != kernel.SysRecvfrom {
		t.Fatalf("first event = %+v", evs[0])
	}
	if evs[1].Enter || evs[1].Ret != 128 {
		t.Fatalf("second event = %+v", evs[1])
	}
	if evs[3].Ret != 256 {
		t.Fatalf("last event = %+v", evs[3])
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Time < evs[i-1].Time {
			t.Fatal("events out of time order")
		}
	}
	if evs[0].TGID() != srv.TGID() {
		t.Fatalf("TGID = %d, want %d", evs[0].TGID(), srv.TGID())
	}
	if probe.Dropped() != 0 {
		t.Fatal("unexpected drops")
	}
}

func TestStreamProbeDropsWhenFull(t *testing.T) {
	env, k := rig(1)
	srv := k.NewProcess("srv")
	// Each 40-byte record costs 48 bytes with its header: room for 2.
	probe := MustNewStreamProbe("raw", srv.TGID(), 128)
	if err := probe.Attach(k.Tracer()); err != nil {
		t.Fatal(err)
	}
	srv.SpawnThread("w", func(th *kernel.Thread) {
		for i := 0; i < 5; i++ {
			th.Invoke(kernel.SysRead, [6]uint64{}, func() int64 { return 0 })
		}
	})
	env.Run()
	if probe.Dropped() == 0 {
		t.Fatal("tiny ring buffer should drop records")
	}
	if len(probe.Drain()) != 2 {
		t.Fatal("expected exactly 2 retained records")
	}
}

func TestProbeOverheadSmall(t *testing.T) {
	// With all three probes attached, per-syscall probe cost must stay
	// well under typical service times — the Section VI claim.
	env, k := rig(2)
	srv := k.NewProcess("srv")
	d := MustNewDeltaProbe("send", srv.TGID(), []int{kernel.SysSendto})
	p := MustNewPollProbe("poll", srv.TGID(), []int{kernel.SysEpollWait})
	if err := d.Attach(k.Tracer()); err != nil {
		t.Fatal(err)
	}
	if err := p.Attach(k.Tracer()); err != nil {
		t.Fatal(err)
	}
	var th *kernel.Thread
	th = srv.SpawnThread("w", func(t *kernel.Thread) {
		for i := 0; i < 1000; i++ {
			t.Invoke(kernel.SysSendto, [6]uint64{}, func() int64 { return 1 })
		}
	})
	env.Run()
	per := th.ProbeCost() / 1000
	if per > 3*time.Microsecond {
		t.Fatalf("probe cost per syscall = %v, too high", per)
	}
	if per == 0 {
		t.Fatal("no probe cost charged")
	}
}
