package probes

import (
	"encoding/binary"
	"fmt"
	"math"

	"reqlens/internal/ebpf"
	"reqlens/internal/kernel"
)

// histBuckets is the number of log2 buckets: bucket i counts durations
// in [2^i, 2^(i+1)) microseconds (bucket 0 additionally catches < 1us).
const histBuckets = 32

// HistProbe measures poll-syscall durations into a log2 histogram kept
// entirely in kernel space — the classic bcc "funclatency"-style
// distribution, here applied to the paper's slack signal so userspace
// can read percentiles of idleness, not just the mean. Bucket counters
// are bumped with atomic adds (BPF_XADD), as real histogram probes do.
type HistProbe struct {
	Buckets *ebpf.ArrayMap // histBuckets x u64 counters
	Start   *ebpf.HashMap
	enter   *ebpf.Program
	exit    *ebpf.Program
	links   []*kernel.Link
}

// NewHistProbe builds the histogram probe for the poll syscalls in nrs,
// filtered to tgid (0 = all).
func NewHistProbe(name string, tgid int, nrs []int) (*HistProbe, error) {
	if len(nrs) == 0 || len(nrs) > 4 {
		return nil, fmt.Errorf("probes: need 1..4 syscall numbers, got %d", len(nrs))
	}
	buckets := ebpf.NewArrayMap(name+"_hist", 8, histBuckets)
	start := ebpf.NewHashMap(name+"_start", 8, 8, 4096)
	maps := map[int32]ebpf.Map{fdStats: buckets, fdStart: start}

	// sys_enter: start[pid_tgid] = now (same as PollProbe's entry half).
	a := ebpf.NewAssembler()
	emitTgidFilter(a, tgid)
	emitSyscallFilter(a, nrs)
	a.Emit(ebpf.Call(ebpf.HelperKtimeGetNS))
	a.Emit(
		ebpf.StoreMem(ebpf.R10, -8, ebpf.R9, ebpf.SizeDW),
		ebpf.StoreMem(ebpf.R10, -16, ebpf.R0, ebpf.SizeDW),
	)
	a.EmitWide(ebpf.LoadMapFD(ebpf.R1, fdStart))
	a.Emit(
		ebpf.Mov64Reg(ebpf.R2, ebpf.R10),
		ebpf.Add64Imm(ebpf.R2, -8),
		ebpf.Mov64Reg(ebpf.R3, ebpf.R10),
		ebpf.Add64Imm(ebpf.R3, -16),
		ebpf.Mov64Imm(ebpf.R4, int32(ebpf.UpdateAny)),
		ebpf.Call(ebpf.HelperMapUpdateElem),
	)
	a.Label("out")
	a.Emit(ebpf.Mov64Imm(ebpf.R0, 0), ebpf.Exit())
	enter, err := ebpf.Load(ebpf.ProgramSpec{
		Name: name + "_enter", Insns: a.MustAssemble(),
		Maps: maps, CtxSize: kernel.SysEnterCtxSize,
	})
	if err != nil {
		return nil, err
	}

	// sys_exit: duration -> log2 bucket -> atomic increment. The log2 is
	// the standard unrolled shift ladder (loops are forbidden).
	b := ebpf.NewAssembler()
	emitTgidFilter(b, tgid)
	emitSyscallFilter(b, nrs)
	b.Emit(ebpf.StoreMem(ebpf.R10, -8, ebpf.R9, ebpf.SizeDW))
	b.EmitWide(ebpf.LoadMapFD(ebpf.R1, fdStart))
	b.Emit(
		ebpf.Mov64Reg(ebpf.R2, ebpf.R10),
		ebpf.Add64Imm(ebpf.R2, -8),
		ebpf.Call(ebpf.HelperMapLookupElem),
	)
	b.JumpImm(ebpf.JmpJEQ, ebpf.R0, 0, "out")
	b.Emit(ebpf.LoadMem(ebpf.R7, ebpf.R0, 0, ebpf.SizeDW))
	b.Emit(ebpf.Call(ebpf.HelperKtimeGetNS))
	b.Emit(
		ebpf.Mov64Reg(ebpf.R8, ebpf.R0),
		ebpf.Sub64Reg(ebpf.R8, ebpf.R7),
		ebpf.Div64Imm(ebpf.R8, 1000), // ns -> us
	)
	// delete start[pid_tgid]
	b.EmitWide(ebpf.LoadMapFD(ebpf.R1, fdStart))
	b.Emit(
		ebpf.Mov64Reg(ebpf.R2, ebpf.R10),
		ebpf.Add64Imm(ebpf.R2, -8),
		ebpf.Call(ebpf.HelperMapDeleteElem),
	)
	// R6 = log2(R8), unrolled: steps of 16, 8, 4, 2, 1.
	b.Emit(ebpf.Mov64Imm(ebpf.R6, 0))
	for _, step := range []int{16, 8, 4, 2, 1} {
		skip := fmt.Sprintf("s%d", step)
		limit := int32(1) << uint(step)
		b.JumpImm(ebpf.JmpJLT, ebpf.R8, limit, skip)
		b.Emit(
			ebpf.Rsh64Imm(ebpf.R8, int32(step)),
			ebpf.Add64Imm(ebpf.R6, int32(step)),
		)
		b.Label(skip)
	}
	// Clamp and use as array index.
	b.JumpImm(ebpf.JmpJLT, ebpf.R6, histBuckets, "inrange")
	b.Emit(ebpf.Mov64Imm(ebpf.R6, histBuckets-1))
	b.Label("inrange")
	b.Emit(ebpf.StoreMem(ebpf.R10, -4, ebpf.R6, ebpf.SizeW))
	b.EmitWide(ebpf.LoadMapFD(ebpf.R1, fdStats))
	b.Emit(
		ebpf.Mov64Reg(ebpf.R2, ebpf.R10),
		ebpf.Add64Imm(ebpf.R2, -4),
		ebpf.Call(ebpf.HelperMapLookupElem),
	)
	b.JumpImm(ebpf.JmpJEQ, ebpf.R0, 0, "out")
	b.Emit(
		ebpf.Mov64Imm(ebpf.R1, 1),
		ebpf.AtomicAdd64(ebpf.R0, 0, ebpf.R1),
	)
	b.Label("out")
	b.Emit(ebpf.Mov64Imm(ebpf.R0, 0), ebpf.Exit())
	exit, err := ebpf.Load(ebpf.ProgramSpec{
		Name: name + "_exit", Insns: b.MustAssemble(),
		Maps: maps, CtxSize: kernel.SysExitCtxSize,
	})
	if err != nil {
		return nil, err
	}
	return &HistProbe{Buckets: buckets, Start: start, enter: enter, exit: exit}, nil
}

// MustNewHistProbe panics on build failure.
func MustNewHistProbe(name string, tgid int, nrs []int) *HistProbe {
	p, err := NewHistProbe(name, tgid, nrs)
	if err != nil {
		panic(err)
	}
	return p
}

// ExitProgram returns the sys_exit half (the interesting one).
func (p *HistProbe) ExitProgram() *ebpf.Program { return p.exit }

// Attach hooks both programs.
func (p *HistProbe) Attach(tr *kernel.Tracer) error {
	le, err := tr.Attach(kernel.RawSysEnter, p.enter)
	if err != nil {
		return err
	}
	lx, err := tr.Attach(kernel.RawSysExit, p.exit)
	if err != nil {
		le.Detach()
		return err
	}
	p.links = []*kernel.Link{le, lx}
	return nil
}

// Detach removes both programs.
func (p *HistProbe) Detach() {
	for _, l := range p.links {
		l.Detach()
	}
	p.links = nil
}

// Snapshot returns the per-bucket counts: Counts[i] holds durations in
// [2^i, 2^(i+1)) microseconds.
func (p *HistProbe) Snapshot() [histBuckets]uint64 {
	var out [histBuckets]uint64
	for i := 0; i < histBuckets; i++ {
		out[i] = binary.LittleEndian.Uint64(p.Buckets.At(i))
	}
	return out
}

// Reset zeroes the histogram.
func (p *HistProbe) Reset() {
	for i := 0; i < histBuckets; i++ {
		v := p.Buckets.At(i)
		for j := range v {
			v[j] = 0
		}
	}
}

// QuantileUS estimates the q-th quantile in microseconds from the log2
// buckets (geometric midpoint of the selected bucket).
func QuantileUS(counts [histBuckets]uint64, q float64) float64 {
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(total)))
	if target == 0 {
		target = 1
	}
	var seen uint64
	for i, c := range counts {
		seen += c
		if seen >= target {
			lo := math.Exp2(float64(i))
			return lo * math.Sqrt2 // geometric midpoint of [2^i, 2^(i+1))
		}
	}
	return math.Exp2(histBuckets)
}
