package probes

import (
	"encoding/binary"

	"reqlens/internal/ebpf"
	"reqlens/internal/kernel"
	"reqlens/internal/sim"
)

// StreamEvent is one decoded raw-trace record.
type StreamEvent struct {
	Time    sim.Time
	PidTgid uint64
	NR      int
	Enter   bool
	Ret     int64 // valid for exit records
}

// TID returns the thread id half of PidTgid.
func (e StreamEvent) TID() int { return int(uint32(e.PidTgid)) }

// TGID returns the process id half of PidTgid.
func (e StreamEvent) TGID() int { return int(e.PidTgid >> 32) }

// streamRecSize is the wire size of one ring buffer record:
// ts, pid_tgid, id, kind, ret (5 x u64).
const streamRecSize = 40

// StreamProbe streams every syscall enter/exit of one process to a ring
// buffer — the paper's "initially, we streamed all available eBPF trace
// data to user space" mode, and the source of Fig. 1.
type StreamProbe struct {
	Ring  *ebpf.RingBuf
	enter *ebpf.Program
	exit  *ebpf.Program
	links []*kernel.Link
}

// buildStreamProg builds the enter or exit variant.
func buildStreamProg(name string, tgid int, isEnter bool) []ebpf.Instruction {
	a := ebpf.NewAssembler()
	emitTgidFilter(a, tgid)
	// Record layout on the stack at [-40, 0):
	//   -40 ts, -32 pid_tgid, -24 id, -16 kind, -8 ret
	a.Emit(ebpf.Call(ebpf.HelperKtimeGetNS))
	a.Emit(
		ebpf.StoreMem(ebpf.R10, -40, ebpf.R0, ebpf.SizeDW),
		ebpf.StoreMem(ebpf.R10, -32, ebpf.R9, ebpf.SizeDW),
		ebpf.LoadMem(ebpf.R2, ebpf.R6, int16(kernel.CtxOffID), ebpf.SizeDW),
		ebpf.StoreMem(ebpf.R10, -24, ebpf.R2, ebpf.SizeDW),
	)
	if isEnter {
		a.Emit(
			ebpf.StoreImm(ebpf.R10, -16, 1, ebpf.SizeDW),
			ebpf.StoreImm(ebpf.R10, -8, 0, ebpf.SizeDW),
		)
	} else {
		a.Emit(
			ebpf.StoreImm(ebpf.R10, -16, 0, ebpf.SizeDW),
			ebpf.LoadMem(ebpf.R3, ebpf.R6, int16(kernel.CtxOffRet), ebpf.SizeDW),
			ebpf.StoreMem(ebpf.R10, -8, ebpf.R3, ebpf.SizeDW),
		)
	}
	a.EmitWide(ebpf.LoadMapFD(ebpf.R1, fdRingbuf))
	a.Emit(
		ebpf.Mov64Reg(ebpf.R2, ebpf.R10),
		ebpf.Add64Imm(ebpf.R2, -40),
		ebpf.Mov64Imm(ebpf.R3, streamRecSize),
		ebpf.Mov64Imm(ebpf.R4, 0),
		ebpf.Call(ebpf.HelperRingbufOutput),
	)
	a.Label("out")
	a.Emit(ebpf.Mov64Imm(ebpf.R0, 0), ebpf.Exit())
	return a.MustAssemble()
}

// NewStreamProbe builds the streaming probe pair for tgid (0 = all),
// with a ring buffer of capacity bytes.
func NewStreamProbe(name string, tgid int, capacity int) (*StreamProbe, error) {
	ring := ebpf.NewRingBuf(name+"_ring", capacity)
	maps := map[int32]ebpf.Map{fdRingbuf: ring}
	enter, err := ebpf.Load(ebpf.ProgramSpec{
		Name: name + "_enter", Insns: buildStreamProg(name, tgid, true),
		Maps: maps, CtxSize: kernel.SysEnterCtxSize,
	})
	if err != nil {
		return nil, err
	}
	exit, err := ebpf.Load(ebpf.ProgramSpec{
		Name: name + "_exit", Insns: buildStreamProg(name, tgid, false),
		Maps: maps, CtxSize: kernel.SysExitCtxSize,
	})
	if err != nil {
		return nil, err
	}
	return &StreamProbe{Ring: ring, enter: enter, exit: exit}, nil
}

// MustNewStreamProbe panics on build failure.
func MustNewStreamProbe(name string, tgid int, capacity int) *StreamProbe {
	p, err := NewStreamProbe(name, tgid, capacity)
	if err != nil {
		panic(err)
	}
	return p
}

// EnterProgram returns the sys_enter program.
func (p *StreamProbe) EnterProgram() *ebpf.Program { return p.enter }

// ExitProgram returns the sys_exit program.
func (p *StreamProbe) ExitProgram() *ebpf.Program { return p.exit }

// Attach hooks both programs.
func (p *StreamProbe) Attach(tr *kernel.Tracer) error {
	le, err := tr.Attach(kernel.RawSysEnter, p.enter)
	if err != nil {
		return err
	}
	lx, err := tr.Attach(kernel.RawSysExit, p.exit)
	if err != nil {
		le.Detach()
		return err
	}
	p.links = []*kernel.Link{le, lx}
	return nil
}

// Detach removes both programs.
func (p *StreamProbe) Detach() {
	for _, l := range p.links {
		l.Detach()
	}
	p.links = nil
}

// Drain decodes and removes all pending records.
func (p *StreamProbe) Drain() []StreamEvent {
	raw := p.Ring.Drain()
	out := make([]StreamEvent, 0, len(raw))
	for _, r := range raw {
		if len(r) != streamRecSize {
			continue
		}
		out = append(out, StreamEvent{
			Time:    sim.Time(binary.LittleEndian.Uint64(r[0:])),
			PidTgid: binary.LittleEndian.Uint64(r[8:]),
			NR:      int(binary.LittleEndian.Uint64(r[16:])),
			Enter:   binary.LittleEndian.Uint64(r[24:]) == 1,
			Ret:     int64(binary.LittleEndian.Uint64(r[32:])),
		})
	}
	return out
}

// Dropped returns how many records were lost to a full ring buffer.
func (p *StreamProbe) Dropped() uint64 { return p.Ring.Dropped() }
