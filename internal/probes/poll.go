package probes

import (
	"encoding/binary"
	"fmt"

	"reqlens/internal/ebpf"
	"reqlens/internal/kernel"
)

// Poll stats value layout (one ArrayMap slot, 16 bytes).
const (
	psOffCount  = 0
	psOffSumNS  = 8
	psValueSize = 16
)

// PollProbe measures the duration of poll-family syscalls per thread: the
// paper's Listing 1, generalized to accumulate count and total duration
// in kernel space. Entry timestamps are keyed by pid_tgid so concurrent
// pollers do not collide.
type PollProbe struct {
	Stats *ebpf.ArrayMap
	Start *ebpf.HashMap
	Ring  *ebpf.RingBuf // nil for the batch (aggregate-only) variant
	enter *ebpf.Program
	exit  *ebpf.Program
	links []*kernel.Link
	nrs   []int
}

// NewPollProbe builds the entry/exit program pair for the poll syscalls
// in nrs, filtered to tgid (0 = all).
func NewPollProbe(name string, tgid int, nrs []int) (*PollProbe, error) {
	return newPollProbe(name, tgid, nrs, nil)
}

// NewPollProbeStream is NewPollProbe plus event streaming: each completed
// poll also commits an EventPoll record (ts, pid_tgid, nr, duration) into
// ring, alongside the unchanged aggregate-map updates.
func NewPollProbeStream(name string, tgid int, nrs []int, ring *ebpf.RingBuf) (*PollProbe, error) {
	if ring == nil {
		return nil, fmt.Errorf("probes: stream poll probe requires a ring buffer")
	}
	return newPollProbe(name, tgid, nrs, ring)
}

func newPollProbe(name string, tgid int, nrs []int, ring *ebpf.RingBuf) (*PollProbe, error) {
	if len(nrs) == 0 || len(nrs) > 4 {
		return nil, fmt.Errorf("probes: need 1..4 syscall numbers, got %d", len(nrs))
	}
	stats := ebpf.NewArrayMap(name+"_stats", psValueSize, 1)
	start := ebpf.NewHashMap(name+"_start", 8, 8, 4096)
	maps := map[int32]ebpf.Map{fdStats: stats, fdStart: start}
	if ring != nil {
		maps[fdRingbuf] = ring
	}

	// Event record scratch below the key/value slots the exit program
	// already uses in [-16, 0).
	const rec = -16 - int16(EventSize)

	// sys_enter: start[pid_tgid] = now
	a := ebpf.NewAssembler()
	emitTgidFilter(a, tgid)
	emitSyscallFilter(a, nrs)
	a.Emit(ebpf.Call(ebpf.HelperKtimeGetNS))
	a.Emit(
		ebpf.StoreMem(ebpf.R10, -8, ebpf.R9, ebpf.SizeDW),  // key = pid_tgid
		ebpf.StoreMem(ebpf.R10, -16, ebpf.R0, ebpf.SizeDW), // value = now
	)
	a.EmitWide(ebpf.LoadMapFD(ebpf.R1, fdStart))
	a.Emit(
		ebpf.Mov64Reg(ebpf.R2, ebpf.R10),
		ebpf.Add64Imm(ebpf.R2, -8),
		ebpf.Mov64Reg(ebpf.R3, ebpf.R10),
		ebpf.Add64Imm(ebpf.R3, -16),
		ebpf.Mov64Imm(ebpf.R4, int32(ebpf.UpdateAny)),
		ebpf.Call(ebpf.HelperMapUpdateElem),
	)
	a.Label("out")
	a.Emit(ebpf.Mov64Imm(ebpf.R0, 0), ebpf.Exit())
	enter, err := ebpf.Load(ebpf.ProgramSpec{
		Name: name + "_enter", Insns: a.MustAssemble(),
		Maps: maps, CtxSize: kernel.SysEnterCtxSize,
	})
	if err != nil {
		return nil, err
	}

	// sys_exit: duration = now - start[pid_tgid]; accumulate; delete key.
	b := ebpf.NewAssembler()
	emitTgidFilter(b, tgid)
	emitSyscallFilter(b, nrs)
	if ring != nil {
		// pid_tgid and nr must be captured before R8 is reused for the
		// duration.
		b.Emit(
			ebpf.StoreMem(ebpf.R10, rec+evOffPidTgid, ebpf.R9, ebpf.SizeDW),
			ebpf.StoreMem(ebpf.R10, rec+evOffNR, ebpf.R8, ebpf.SizeDW),
			ebpf.StoreImm(ebpf.R10, rec+evOffNR+4, evMetaPoll, ebpf.SizeW),
		)
	}
	b.Emit(ebpf.StoreMem(ebpf.R10, -8, ebpf.R9, ebpf.SizeDW)) // key = pid_tgid
	b.EmitWide(ebpf.LoadMapFD(ebpf.R1, fdStart))
	b.Emit(
		ebpf.Mov64Reg(ebpf.R2, ebpf.R10),
		ebpf.Add64Imm(ebpf.R2, -8),
		ebpf.Call(ebpf.HelperMapLookupElem),
	)
	b.JumpImm(ebpf.JmpJEQ, ebpf.R0, 0, "out")              // no entry seen (attach race)
	b.Emit(ebpf.LoadMem(ebpf.R7, ebpf.R0, 0, ebpf.SizeDW)) // R7 = start ts
	b.Emit(ebpf.Call(ebpf.HelperKtimeGetNS))
	if ring != nil {
		b.Emit(ebpf.StoreMem(ebpf.R10, rec+evOffTS, ebpf.R0, ebpf.SizeDW))
	}
	b.Emit(
		ebpf.Mov64Reg(ebpf.R8, ebpf.R0),
		ebpf.Sub64Reg(ebpf.R8, ebpf.R7), // R8 = duration
	)
	if ring != nil {
		b.Emit(ebpf.StoreMem(ebpf.R10, rec+evOffValue, ebpf.R8, ebpf.SizeDW))
	}
	// delete start[pid_tgid]
	b.EmitWide(ebpf.LoadMapFD(ebpf.R1, fdStart))
	b.Emit(
		ebpf.Mov64Reg(ebpf.R2, ebpf.R10),
		ebpf.Add64Imm(ebpf.R2, -8),
		ebpf.Call(ebpf.HelperMapDeleteElem),
	)
	// stats[0]: count++, sum += duration
	b.Emit(ebpf.StoreImm(ebpf.R10, -4, 0, ebpf.SizeW))
	b.EmitWide(ebpf.LoadMapFD(ebpf.R1, fdStats))
	b.Emit(
		ebpf.Mov64Reg(ebpf.R2, ebpf.R10),
		ebpf.Add64Imm(ebpf.R2, -4),
		ebpf.Call(ebpf.HelperMapLookupElem),
	)
	b.JumpImm(ebpf.JmpJEQ, ebpf.R0, 0, "out")
	b.Emit(
		ebpf.LoadMem(ebpf.R1, ebpf.R0, psOffCount, ebpf.SizeDW),
		ebpf.Add64Imm(ebpf.R1, 1),
		ebpf.StoreMem(ebpf.R0, psOffCount, ebpf.R1, ebpf.SizeDW),
		ebpf.LoadMem(ebpf.R1, ebpf.R0, psOffSumNS, ebpf.SizeDW),
		ebpf.Add64Reg(ebpf.R1, ebpf.R8),
		ebpf.StoreMem(ebpf.R0, psOffSumNS, ebpf.R1, ebpf.SizeDW),
	)
	if ring != nil {
		emitEventOutput(b, rec)
	}
	b.Label("out")
	b.Emit(ebpf.Mov64Imm(ebpf.R0, 0), ebpf.Exit())
	exit, err := ebpf.Load(ebpf.ProgramSpec{
		Name: name + "_exit", Insns: b.MustAssemble(),
		Maps: maps, CtxSize: kernel.SysExitCtxSize,
	})
	if err != nil {
		return nil, err
	}

	return &PollProbe{Stats: stats, Start: start, Ring: ring, enter: enter, exit: exit, nrs: nrs}, nil
}

// MustNewPollProbe panics on build failure.
func MustNewPollProbe(name string, tgid int, nrs []int) *PollProbe {
	p, err := NewPollProbe(name, tgid, nrs)
	if err != nil {
		panic(err)
	}
	return p
}

// Syscalls returns the traced syscall numbers.
func (p *PollProbe) Syscalls() []int { return p.nrs }

// EnterProgram returns the sys_enter program.
func (p *PollProbe) EnterProgram() *ebpf.Program { return p.enter }

// ExitProgram returns the sys_exit program.
func (p *PollProbe) ExitProgram() *ebpf.Program { return p.exit }

// Attach hooks both programs.
func (p *PollProbe) Attach(tr *kernel.Tracer) error {
	le, err := tr.Attach(kernel.RawSysEnter, p.enter)
	if err != nil {
		return err
	}
	lx, err := tr.Attach(kernel.RawSysExit, p.exit)
	if err != nil {
		le.Detach()
		return err
	}
	p.links = []*kernel.Link{le, lx}
	return nil
}

// Detach removes both programs.
func (p *PollProbe) Detach() {
	for _, l := range p.links {
		l.Detach()
	}
	p.links = nil
}

// PollSnapshot is a userspace copy of the accumulator.
type PollSnapshot struct {
	Count uint64
	SumNS uint64
}

// Snapshot reads the accumulator.
func (p *PollProbe) Snapshot() PollSnapshot {
	v := p.Stats.At(0)
	return PollSnapshot{
		Count: binary.LittleEndian.Uint64(v[psOffCount:]),
		SumNS: binary.LittleEndian.Uint64(v[psOffSumNS:]),
	}
}

// Reset zeroes the accumulator.
func (p *PollProbe) Reset() {
	v := p.Stats.At(0)
	for i := range v {
		v[i] = 0
	}
}

// Sub returns the window between two cumulative snapshots.
func (s PollSnapshot) Sub(prev PollSnapshot) PollSnapshot {
	return PollSnapshot{Count: s.Count - prev.Count, SumNS: s.SumNS - prev.SumNS}
}

// MeanNS returns the mean poll duration in nanoseconds — the paper's
// idleness / saturation-slack signal.
func (s PollSnapshot) MeanNS() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.SumNS) / float64(s.Count)
}
