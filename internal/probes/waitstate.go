package probes

import (
	"encoding/binary"

	"reqlens/internal/ebpf"
	"reqlens/internal/kernel"
)

// Map fds used inside the wait-state programs.
const (
	fdWaitState = 1 // LRU: per-thread (since_ts, state code)
	fdWaitOnNS  = 2 // hash: on-CPU ns per tgid
	fdWaitRunNS = 3 // hash: runnable (runqueue) ns per tgid
	fdWaitBlkNS = 4 // hash: blocked ns per tgid
)

// Per-thread state codes stored in the transition map. Zero is reserved
// so a fresh (never-seen) thread can't alias a real state.
const (
	wsStateOnCPU    = 1
	wsStateRunnable = 2
	wsStateBlocked  = 3
)

// Frame layout shared by both programs: the pid_tgid key at -8, the
// tgid accumulator key at -16, the 16-byte state value in [-32,-16)
// (interval start ts at -32, state code at -24), and the accumulator's
// insert value at -40.
const (
	wsOffKey  = -8
	wsOffTgid = -16
	wsOffTS   = -32
	wsOffCode = -24
	wsOffInit = -40
)

// WaitStateConfig sizes the maps of a WaitStateProbe. The zero value
// takes the defaults below.
type WaitStateConfig struct {
	// StateEntries bounds the per-thread transition map (default 512
	// threads before LRU eviction).
	StateEntries int
	// TGIDEntries bounds each per-tgid accumulator map (default 1024
	// processes).
	TGIDEntries int
	// TrackTGID, when nonzero, restricts accounting to that process:
	// each program checks the tgids in its ctx before any helper call
	// and exits in a handful of instructions when none match — the
	// standard early-filter idiom that keeps a machine-wide sched hook
	// from taxing every foreign context switch. Zero tracks every
	// process.
	TrackTGID int
}

func (c WaitStateConfig) withDefaults() WaitStateConfig {
	if c.StateEntries == 0 {
		c.StateEntries = 512
	}
	if c.TGIDEntries == 0 {
		c.TGIDEntries = 1024
	}
	return c
}

// WaitStateProbe classifies every thread's time into on-CPU, runnable
// (waiting on the run queue) and blocked, wholly in map space: a
// sched_switch program closes on-CPU intervals for the outgoing task
// and runnable intervals for the incoming one, a sched_wakeup program
// closes blocked intervals, and each closed interval is accumulated
// into a per-tgid nanosecond counter. One LRU map carries the
// per-thread (since, state) pair — a transition is a single lookup that
// reads the closing interval and overwrites (since, code) through the
// value pointer, so the steady-state hot path costs two helper calls
// per task side and never touches the allocator.
type WaitStateProbe struct {
	// State is the per-thread transition map: pid_tgid -> (since, code).
	State *ebpf.LRUHashMap
	// OnCPUNS accumulates on-CPU nanoseconds per tgid.
	OnCPUNS *ebpf.HashMap
	// RunnableNS accumulates runqueue-wait nanoseconds per tgid.
	RunnableNS *ebpf.HashMap
	// BlockedNS accumulates blocked nanoseconds per tgid.
	BlockedNS *ebpf.HashMap

	switchProg *ebpf.Program
	wakeupProg *ebpf.Program
	links      []*kernel.Link
	cfg        WaitStateConfig
}

// emitWaitTransition emits one task's state transition as a single
// state-map lookup: on a hit the previous interval is closed (now -
// since accumulated into acc[tgid] when its code matches closeCode) and
// the next one opened by overwriting (since, code) in place through the
// value pointer — two helper calls total on the steady-state path, no
// map writes. A task with no state row yet takes the cold path: one
// update seeding (now, code) from the frame. openCode ≥ 0 is stored as
// an immediate; -1 means the caller computed a dynamic code into the
// frame slot. track, when nonzero, is the known-constant tgid of every
// task reaching this emit. Expects R7 = now, R8 = pid_tgid, the key at
// -8, the new state code at -24 and now at -32; clobbers R9 and the
// caller-saved registers. uniq disambiguates labels between expansions.
func emitWaitTransition(a *ebpf.Assembler, closeCode, openCode, accFD int32, track int, uniq string) {
	a.EmitWide(ebpf.LoadMapFD(ebpf.R1, fdWaitState))
	a.Emit(
		ebpf.Mov64Reg(ebpf.R2, ebpf.R10),
		ebpf.Add64Imm(ebpf.R2, wsOffKey),
		ebpf.Call(ebpf.HelperMapLookupElem),
	)
	a.JumpImm(ebpf.JmpJEQ, ebpf.R0, 0, uniq+"_cold")
	// Close-and-reopen in place: pull (since, code) out, then overwrite
	// with (now, new code) before the branches below clobber R0's class.
	a.Emit(
		ebpf.LoadMem(ebpf.R5, ebpf.R0, 0, ebpf.SizeDW),
		ebpf.LoadMem(ebpf.R4, ebpf.R0, 8, ebpf.SizeDW),
		ebpf.StoreMem(ebpf.R0, 0, ebpf.R7, ebpf.SizeDW),
	)
	if openCode >= 0 {
		a.Emit(ebpf.StoreImm(ebpf.R0, 8, openCode, ebpf.SizeDW))
	} else {
		a.Emit(
			ebpf.LoadMem(ebpf.R1, ebpf.R10, wsOffCode, ebpf.SizeDW),
			ebpf.StoreMem(ebpf.R0, 8, ebpf.R1, ebpf.SizeDW),
		)
	}
	a.JumpImm(ebpf.JmpJNE, ebpf.R4, closeCode, uniq+"_skip")
	// acc[tgid] += now - since, inserting on first sight
	a.Emit(
		ebpf.Mov64Reg(ebpf.R9, ebpf.R7),
		ebpf.Sub64Reg(ebpf.R9, ebpf.R5),
	)
	if track != 0 {
		a.Emit(ebpf.StoreImm(ebpf.R10, wsOffTgid, int32(track), ebpf.SizeDW))
	} else {
		a.Emit(
			ebpf.Mov64Reg(ebpf.R1, ebpf.R8),
			ebpf.Rsh64Imm(ebpf.R1, 32),
			ebpf.StoreMem(ebpf.R10, wsOffTgid, ebpf.R1, ebpf.SizeDW),
		)
	}
	a.EmitWide(ebpf.LoadMapFD(ebpf.R1, accFD))
	a.Emit(
		ebpf.Mov64Reg(ebpf.R2, ebpf.R10),
		ebpf.Add64Imm(ebpf.R2, wsOffTgid),
		ebpf.Call(ebpf.HelperMapLookupElem),
	)
	a.JumpImm(ebpf.JmpJEQ, ebpf.R0, 0, uniq+"_init")
	a.Emit(
		ebpf.LoadMem(ebpf.R1, ebpf.R0, 0, ebpf.SizeDW),
		ebpf.Add64Reg(ebpf.R1, ebpf.R9),
		ebpf.StoreMem(ebpf.R0, 0, ebpf.R1, ebpf.SizeDW),
	)
	a.Jump(uniq + "_skip")
	a.Label(uniq + "_init")
	a.Emit(ebpf.StoreMem(ebpf.R10, wsOffInit, ebpf.R9, ebpf.SizeDW))
	a.EmitWide(ebpf.LoadMapFD(ebpf.R1, accFD))
	a.Emit(
		ebpf.Mov64Reg(ebpf.R2, ebpf.R10),
		ebpf.Add64Imm(ebpf.R2, wsOffTgid),
		ebpf.Mov64Reg(ebpf.R3, ebpf.R10),
		ebpf.Add64Imm(ebpf.R3, wsOffInit),
		ebpf.Mov64Imm(ebpf.R4, int32(ebpf.UpdateAny)),
		ebpf.Call(ebpf.HelperMapUpdateElem),
	)
	a.Jump(uniq + "_skip")
	a.Label(uniq + "_cold")
	a.EmitWide(ebpf.LoadMapFD(ebpf.R1, fdWaitState))
	a.Emit(
		ebpf.Mov64Reg(ebpf.R2, ebpf.R10),
		ebpf.Add64Imm(ebpf.R2, wsOffKey),
		ebpf.Mov64Reg(ebpf.R3, ebpf.R10),
		ebpf.Add64Imm(ebpf.R3, wsOffTS),
		ebpf.Mov64Imm(ebpf.R4, int32(ebpf.UpdateAny)),
		ebpf.Call(ebpf.HelperMapUpdateElem),
	)
	a.Label(uniq + "_skip")
}

// emitWaitPrologue emits the shared post-filter entry: R7 = now and the
// state value's timestamp slot primed with now. R6 must already hold
// ctx.
func emitWaitPrologue(a *ebpf.Assembler) {
	a.Emit(
		ebpf.Call(ebpf.HelperKtimeGetNS),
		ebpf.Mov64Reg(ebpf.R7, ebpf.R0),
		ebpf.StoreMem(ebpf.R10, wsOffTS, ebpf.R7, ebpf.SizeDW),
	)
}

// emitWaitTgidGuard loads the pid_tgid at ctx offset off into reg and,
// when track is nonzero, jumps to miss unless its tgid half matches.
func emitWaitTgidGuard(a *ebpf.Assembler, reg ebpf.Register, off int, track int, miss string) {
	a.Emit(ebpf.LoadMem(reg, ebpf.R6, int16(off), ebpf.SizeDW))
	if track == 0 {
		return
	}
	a.Emit(
		ebpf.Mov64Reg(ebpf.R0, reg),
		ebpf.Rsh64Imm(ebpf.R0, 32),
	)
	a.JumpImm(ebpf.JmpJNE, ebpf.R0, int32(track), miss)
}

// NewWaitStateProbe builds and verifies the sched_switch/sched_wakeup
// program pair.
func NewWaitStateProbe(name string, cfg WaitStateConfig) (*WaitStateProbe, error) {
	cfg = cfg.withDefaults()
	p := &WaitStateProbe{
		State:      ebpf.NewLRUHashMap(name+"_state", 8, 16, cfg.StateEntries),
		OnCPUNS:    ebpf.NewHashMap(name+"_oncpu_ns", 8, 8, cfg.TGIDEntries),
		RunnableNS: ebpf.NewHashMap(name+"_runnable_ns", 8, 8, cfg.TGIDEntries),
		BlockedNS:  ebpf.NewHashMap(name+"_blocked_ns", 8, 8, cfg.TGIDEntries),
		cfg:        cfg,
	}
	maps := map[int32]ebpf.Map{
		fdWaitState: p.State,
		fdWaitOnNS:  p.OnCPUNS,
		fdWaitRunNS: p.RunnableNS,
		fdWaitBlkNS: p.BlockedNS,
	}

	// sched_switch: close the outgoing task's on-CPU interval and open
	// runnable or blocked per prev_state; close the incoming task's
	// runnable interval and open on-CPU. pid_tgid 0 is the idle task on
	// either side and is skipped. With a TrackTGID the whole program
	// bails before the first helper call unless one side is the tracked
	// process — the dominant case on a busy machine is somebody else's
	// context switch, and it must cost almost nothing.
	track := cfg.TrackTGID
	a := ebpf.NewAssembler()
	a.Emit(ebpf.Mov64Reg(ebpf.R6, ebpf.R1))
	if track != 0 {
		a.Emit(
			ebpf.LoadMem(ebpf.R0, ebpf.R6, int16(kernel.CtxOffPrevPidTgid), ebpf.SizeDW),
			ebpf.Rsh64Imm(ebpf.R0, 32),
		)
		a.JumpImm(ebpf.JmpJEQ, ebpf.R0, int32(track), "begin")
		a.Emit(
			ebpf.LoadMem(ebpf.R0, ebpf.R6, int16(kernel.CtxOffNextPidTgid), ebpf.SizeDW),
			ebpf.Rsh64Imm(ebpf.R0, 32),
		)
		a.JumpImm(ebpf.JmpJNE, ebpf.R0, int32(track), "out")
		a.Label("begin")
	}
	emitWaitPrologue(a)
	emitWaitTgidGuard(a, ebpf.R8, kernel.CtxOffPrevPidTgid, track, "next")
	if track == 0 {
		a.JumpImm(ebpf.JmpJEQ, ebpf.R8, 0, "next")
	}
	a.Emit(ebpf.StoreMem(ebpf.R10, wsOffKey, ebpf.R8, ebpf.SizeDW))
	a.Emit(ebpf.LoadMem(ebpf.R1, ebpf.R6, int16(kernel.CtxOffPrevState), ebpf.SizeDW))
	a.JumpImm(ebpf.JmpJEQ, ebpf.R1, int32(kernel.TaskRunning), "prevrq")
	a.Emit(ebpf.StoreImm(ebpf.R10, wsOffCode, wsStateBlocked, ebpf.SizeDW))
	a.Jump("prevupd")
	a.Label("prevrq")
	a.Emit(ebpf.StoreImm(ebpf.R10, wsOffCode, wsStateRunnable, ebpf.SizeDW))
	a.Label("prevupd")
	emitWaitTransition(a, wsStateOnCPU, -1, fdWaitOnNS, track, "pon")
	a.Label("next")
	emitWaitTgidGuard(a, ebpf.R8, kernel.CtxOffNextPidTgid, track, "out")
	if track == 0 {
		a.JumpImm(ebpf.JmpJEQ, ebpf.R8, 0, "out")
	}
	a.Emit(ebpf.StoreMem(ebpf.R10, wsOffKey, ebpf.R8, ebpf.SizeDW))
	a.Emit(ebpf.StoreImm(ebpf.R10, wsOffCode, wsStateOnCPU, ebpf.SizeDW))
	emitWaitTransition(a, wsStateRunnable, wsStateOnCPU, fdWaitRunNS, track, "nrun")
	a.Label("out")
	a.Emit(ebpf.Mov64Imm(ebpf.R0, 0), ebpf.Exit())
	sw, err := ebpf.Load(ebpf.ProgramSpec{
		Name: name + "_switch", Insns: a.MustAssemble(),
		Maps: maps, CtxSize: kernel.SchedSwitchCtxSize,
	})
	if err != nil {
		return nil, err
	}

	// sched_wakeup: close the task's blocked interval and open runnable.
	// The tgid guard runs before the clock helper so foreign wakeups pay
	// only the load-shift-compare.
	b := ebpf.NewAssembler()
	b.Emit(ebpf.Mov64Reg(ebpf.R6, ebpf.R1))
	emitWaitTgidGuard(b, ebpf.R8, kernel.CtxOffWakePidTgid, track, "out")
	if track == 0 {
		b.JumpImm(ebpf.JmpJEQ, ebpf.R8, 0, "out")
	}
	emitWaitPrologue(b)
	b.Emit(ebpf.StoreMem(ebpf.R10, wsOffKey, ebpf.R8, ebpf.SizeDW))
	b.Emit(ebpf.StoreImm(ebpf.R10, wsOffCode, wsStateRunnable, ebpf.SizeDW))
	emitWaitTransition(b, wsStateBlocked, wsStateRunnable, fdWaitBlkNS, track, "wblk")
	b.Label("out")
	b.Emit(ebpf.Mov64Imm(ebpf.R0, 0), ebpf.Exit())
	wk, err := ebpf.Load(ebpf.ProgramSpec{
		Name: name + "_wakeup", Insns: b.MustAssemble(),
		Maps: maps, CtxSize: kernel.SchedWakeupCtxSize,
	})
	if err != nil {
		return nil, err
	}

	p.switchProg, p.wakeupProg = sw, wk
	return p, nil
}

// MustNewWaitStateProbe panics on build failure.
func MustNewWaitStateProbe(name string, cfg WaitStateConfig) *WaitStateProbe {
	p, err := NewWaitStateProbe(name, cfg)
	if err != nil {
		panic(err)
	}
	return p
}

// SwitchProgram returns the verified sched_switch program.
func (p *WaitStateProbe) SwitchProgram() *ebpf.Program { return p.switchProg }

// WakeupProgram returns the verified sched_wakeup program.
func (p *WaitStateProbe) WakeupProgram() *ebpf.Program { return p.wakeupProg }

// Attach hooks both programs to the scheduler tracepoints.
func (p *WaitStateProbe) Attach(tr *kernel.Tracer) error {
	ls, err := tr.Attach(kernel.SchedSwitch, p.switchProg)
	if err != nil {
		return err
	}
	lw, err := tr.Attach(kernel.SchedWakeup, p.wakeupProg)
	if err != nil {
		ls.Detach()
		return err
	}
	p.links = []*kernel.Link{ls, lw}
	return nil
}

// Detach removes both programs.
func (p *WaitStateProbe) Detach() {
	for _, l := range p.links {
		l.Detach()
	}
	p.links = nil
}

// WaitTimes is one process's cumulative nanoseconds in each scheduler
// state.
type WaitTimes struct {
	OnCPUNS    uint64
	RunnableNS uint64
	BlockedNS  uint64
}

// TotalNS is the sum over the three states.
func (w WaitTimes) TotalNS() uint64 { return w.OnCPUNS + w.RunnableNS + w.BlockedNS }

// Sub returns the per-state window w - prev.
func (w WaitTimes) Sub(prev WaitTimes) WaitTimes {
	return WaitTimes{
		OnCPUNS:    w.OnCPUNS - prev.OnCPUNS,
		RunnableNS: w.RunnableNS - prev.RunnableNS,
		BlockedNS:  w.BlockedNS - prev.BlockedNS,
	}
}

// WaitSnapshot maps tgid to its cumulative per-state nanoseconds.
type WaitSnapshot map[uint64]WaitTimes

// Snapshot reads the three accumulator maps into a per-tgid table. The
// per-thread transition map's open intervals are not included: the
// snapshot counts closed intervals only, as a userspace scraper of the
// real maps would.
func (p *WaitStateProbe) Snapshot() WaitSnapshot {
	out := make(WaitSnapshot)
	read := func(m *ebpf.HashMap, set func(*WaitTimes, uint64)) {
		for _, k := range m.Keys() {
			v, _ := m.Lookup(k)
			w := out[binary.LittleEndian.Uint64(k)]
			set(&w, binary.LittleEndian.Uint64(v))
			out[binary.LittleEndian.Uint64(k)] = w
		}
	}
	read(p.OnCPUNS, func(w *WaitTimes, v uint64) { w.OnCPUNS = v })
	read(p.RunnableNS, func(w *WaitTimes, v uint64) { w.RunnableNS = v })
	read(p.BlockedNS, func(w *WaitTimes, v uint64) { w.BlockedNS = v })
	return out
}

// Sub returns the per-tgid window s - prev, dropping rows that saw no
// activity in the window.
func (s WaitSnapshot) Sub(prev WaitSnapshot) WaitSnapshot {
	out := make(WaitSnapshot, len(s))
	for tgid, w := range s {
		d := w.Sub(prev[tgid])
		if d != (WaitTimes{}) {
			out[tgid] = d
		}
	}
	return out
}

// Bytes returns the probe's total map footprint: the fixed budget that
// covers every thread and process on the node.
func (p *WaitStateProbe) Bytes() int {
	state := p.cfg.StateEntries * (8 + 16)
	acc := 3 * p.cfg.TGIDEntries * (8 + 8)
	return state + acc
}
