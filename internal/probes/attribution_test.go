package probes

import (
	"testing"
	"time"

	"reqlens/internal/kernel"
)

func TestAttributionProbeVerifies(t *testing.T) {
	p := MustNewAttributionProbe("attr", AttributionConfig{Oracle: true})
	if p.Program().Len() == 0 {
		t.Fatal("empty program")
	}
	if p.Program().Disassemble() == "" {
		t.Fatal("no disassembly")
	}
	if p.Bytes() >= 200<<10 {
		t.Fatalf("default sketch footprint %d bytes, want < 200 KiB", p.Bytes())
	}
}

// TestAttributionBlamesHotProcess drives two processes at very
// different syscall rates and checks the sketch read-out ranks the hot
// one first, with estimates matching the oracle within the εN bound.
func TestAttributionBlamesHotProcess(t *testing.T) {
	env, k := rig(2)
	hot := k.NewProcess("hot")
	cold := k.NewProcess("cold")
	probe := MustNewAttributionProbe("attr", AttributionConfig{Oracle: true})
	if err := probe.Attach(k.Tracer()); err != nil {
		t.Fatal(err)
	}
	hot.SpawnThread("w", func(th *kernel.Thread) {
		for i := 0; i < 400; i++ {
			th.Invoke(kernel.SysSendto, [6]uint64{}, func() int64 { return 64 })
			th.Sleep(100 * time.Microsecond)
		}
	})
	cold.SpawnThread("w", func(th *kernel.Thread) {
		for i := 0; i < 40; i++ {
			th.Invoke(kernel.SysRead, [6]uint64{}, func() int64 { return 64 })
			th.Sleep(time.Millisecond)
		}
	})
	env.Run()
	if k.Tracer().RunErrors() != 0 {
		t.Fatalf("probe faults: %v", k.Tracer().LastError())
	}

	s := probe.Sketches()
	top := s.TopOffenders(2)
	if len(top) < 2 {
		t.Fatalf("TopOffenders returned %d rows, want 2", len(top))
	}
	if top[0].TGID != uint64(hot.TGID()) {
		t.Fatalf("top offender tgid = %d, want hot process %d (got rows %+v)", top[0].TGID, hot.TGID(), top)
	}
	if top[0].Syscalls <= top[1].Syscalls {
		t.Fatalf("hot estimate %d not above cold estimate %d", top[0].Syscalls, top[1].Syscalls)
	}
	if top[0].Sends == 0 {
		t.Fatal("hot process shows no send-family syscalls")
	}
	if top[0].Busy <= 0 {
		t.Fatal("hot process shows no attributed time")
	}

	// Sketch estimates must bracket the oracle: never below, and
	// within εN above.
	exact := probe.ExactCounts()
	if exact == nil {
		t.Fatal("oracle map missing")
	}
	bound := s.Syscalls.ErrorBound()
	for tgid, truth := range exact {
		est := s.Syscalls.Estimate(TGIDKey(tgid))
		if est < truth {
			t.Fatalf("tgid %d: estimate %d below exact %d", tgid, est, truth)
		}
		if est-truth > bound {
			t.Fatalf("tgid %d: estimate %d exceeds exact %d by more than εN = %d", tgid, est, truth, bound)
		}
	}
}

// TestAttributionSketchesMergeAcrossNodes checks the cross-node
// read-out path: scrapes from two independent kernels merge into
// fleet-level totals equal to the sum of the parts.
func TestAttributionSketchesMergeAcrossNodes(t *testing.T) {
	run := func(sends int) (AttrSketches, uint64) {
		env, k := rig(1)
		srv := k.NewProcess("srv")
		probe := MustNewAttributionProbe("attr", AttributionConfig{})
		if err := probe.Attach(k.Tracer()); err != nil {
			t.Fatal(err)
		}
		srv.SpawnThread("w", func(th *kernel.Thread) {
			for i := 0; i < sends; i++ {
				th.Invoke(kernel.SysSendto, [6]uint64{}, func() int64 { return 64 })
				th.Sleep(200 * time.Microsecond)
			}
		})
		env.Run()
		return probe.Sketches(), uint64(srv.TGID())
	}
	a, atgid := run(100)
	b, btgid := run(300)
	estA := a.Sends.Estimate(TGIDKey(atgid))
	estB := b.Sends.Estimate(TGIDKey(btgid))
	merged := a
	if err := merged.Merge(b); err != nil {
		t.Fatal(err)
	}
	// Both kernels assign the same tgids, so the merged estimate is the
	// per-node sum — the aggregation the fleet rollup performs.
	if atgid != btgid {
		t.Fatalf("tgid mismatch across identical rigs: %d vs %d", atgid, btgid)
	}
	if got := merged.Sends.Estimate(TGIDKey(atgid)); got != estA+estB {
		t.Fatalf("merged send estimate = %d, want %d + %d", got, estA, estB)
	}
	if merged.Bytes() != b.Bytes() {
		t.Fatalf("merge changed the footprint: %d vs %d", merged.Bytes(), b.Bytes())
	}
}
