package workloads

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"reqlens/internal/kernel"
	"reqlens/internal/netsim"
)

// Model selects the request-handling thread structure.
type Model int

// Threading models observed across the paper's workloads.
const (
	// ModelWorkerPool: N threads, each owning connections; per thread:
	// poll -> recv -> compute -> send (tailbench, data caching).
	ModelWorkerPool Model = iota
	// ModelTwoStage: a front-end process forwarding to an index/backend
	// process over internal connections (CloudSuite Web Search).
	ModelTwoStage
	// ModelDispatcher: dedicated network threads receive requests and
	// send responses; separate compute workers process them (Triton).
	ModelDispatcher
	// ModelIOUring: requests move through io_uring-style submission
	// queues, bypassing recv/send syscalls entirely (Section V-C's
	// limitation case).
	ModelIOUring
)

func (m Model) String() string {
	switch m {
	case ModelWorkerPool:
		return "worker-pool"
	case ModelTwoStage:
		return "two-stage"
	case ModelDispatcher:
		return "dispatcher"
	case ModelIOUring:
		return "io_uring"
	}
	return "?"
}

// Spec describes one workload.
type Spec struct {
	Name  string
	Suite string
	Model Model

	RecvNR int // request-receiving syscall
	SendNR int // response-sending syscall
	PollNR int // readiness syscall

	Workers    int // request-processing threads
	NetThreads int // dispatcher model: network threads

	// ServiceMean/ServiceCV parameterize the lognormal per-request CPU
	// demand. For ModelTwoStage, FrontShare of the demand runs in the
	// front-end process.
	ServiceMean time.Duration
	ServiceCV   float64
	FrontShare  float64

	// FailureRPS is the paper-reported load at which the workload fails
	// QoS on the AMD server; used to place sweep ranges.
	FailureRPS float64
	// QoS is the tail-latency limit used to locate the failure point.
	QoS time.Duration

	RespSize int // response message bytes
	ReqSize  int // request message bytes

	// MaintenanceEvery triggers a queue-maintenance sweep (LRU walk, GC,
	// allocator housekeeping) after this many requests per worker; its
	// cost grows with the pending backlog, capped at MaintenanceCap, and
	// runs under the shared lock. This is the paper's "accumulation of
	// pending requests ... overloading the application's queue management
	// system": negligible below saturation, a global stall source past it.
	MaintenanceEvery   int
	MaintenancePerItem time.Duration
	MaintenanceCap     time.Duration

	// LockShare is the fraction of each request's CPU demand spent inside
	// a shared critical section (queue/LRU/index maintenance). Under CPU
	// saturation, lock-holder preemption turns this into convoys — the
	// application-level contention the paper identifies as the source of
	// the variance signal (Fig. 3). Zero models a contention-free server
	// (the paper's "simple application" case, which lacks the signal).
	LockShare float64
}

// String identifies the workload.
func (s Spec) String() string { return fmt.Sprintf("%s/%s", s.Suite, s.Name) }

// ServerCores is the CPU allocation every workload server runs with.
// Capacity is roughly ServerCores / ServiceMean requests per second.
const ServerCores = 8

// serviceFor derives the mean per-request server demand that saturates
// at the paper's failure RPS given the core allocation, accounting for
// the co-located client's per-request CPU (the paper runs client and
// server containers on one host): budget = s + 2*clientPerOp(s).
// calib derates the analytic capacity for the overheads the analytic
// formula ignores — context switches, futex convoys, maintenance sweeps,
// probe cost — so the measured failure point lands at the paper's
// failure RPS. Tuned empirically per threading model (EXPERIMENTS.md).
func serviceFor(failRPS, calib float64) time.Duration {
	budget := float64(ServerCores) / failRPS * float64(time.Second)
	s := budget / (1 + 2*clientShare)
	if clientShare*s > float64(maxClientPerOp) {
		s = budget - 2*float64(maxClientPerOp)
	}
	return time.Duration(s * calib)
}

// Client-side request handling cost: a share of the service time,
// capped — building an HTTP request does not scale with a 400ms
// inference.
const (
	clientShare    = 0.05
	maxClientPerOp = 500 * time.Microsecond
)

// ClientPerOpCost returns the co-located client's CPU cost per send and
// per receive for this workload.
func (s Spec) ClientPerOpCost() time.Duration {
	c := time.Duration(clientShare * float64(s.ServiceMean))
	if c > maxClientPerOp {
		c = maxClientPerOp
	}
	return c
}

func tailbench(name string, failRPS, cv, lockShare float64) Spec {
	mean := serviceFor(failRPS, 0.97)
	return Spec{
		Name: name, Suite: "tailbench", Model: ModelWorkerPool,
		RecvNR: kernel.SysRecvfrom, SendNR: kernel.SysSendto, PollNR: kernel.SysSelect,
		Workers:     2 * ServerCores,
		ServiceMean: mean, ServiceCV: cv,
		FailureRPS: failRPS, QoS: 10 * mean,
		ReqSize: 256, RespSize: 1024,
		LockShare:        lockShare,
		MaintenanceEvery: 64, MaintenancePerItem: 50 * time.Microsecond, MaintenanceCap: 10 * time.Millisecond,
	}
}

// ImgDNN is tailbench img-dnn: image recognition, tight service times.
func ImgDNN() Spec { return tailbench("img-dnn", 1950, 0.25, 0.08) }

// Xapian is tailbench xapian: search over an index, variable work.
func Xapian() Spec { return tailbench("xapian", 970, 0.8, 0.10) }

// Silo is tailbench silo: in-memory OLTP, short and regular.
func Silo() Spec { return tailbench("silo", 2100, 0.45, 0.12) }

// SpecJBB is tailbench specjbb: Java middleware, moderate variance.
func SpecJBB() Spec { return tailbench("specjbb", 3700, 0.6, 0.10) }

// Moses is tailbench moses: statistical machine translation, heavy tail.
func Moses() Spec { return tailbench("moses", 900, 1.1, 0.08) }

// DataCaching is CloudSuite Data Caching (memcached): epoll event-loop
// threads, read/sendmsg, very short service times.
func DataCaching() Spec {
	mean := serviceFor(62000, 0.72)
	return Spec{
		Name: "data-caching", Suite: "cloudsuite", Model: ModelWorkerPool,
		RecvNR: kernel.SysRead, SendNR: kernel.SysSendmsg, PollNR: kernel.SysEpollWait,
		Workers:     2 * ServerCores,
		ServiceMean: mean, ServiceCV: 0.6,
		FailureRPS: 62000, QoS: 10 * mean,
		ReqSize: 128, RespSize: 1024,
		LockShare:        0.10,
		MaintenanceEvery: 512, MaintenancePerItem: time.Microsecond, MaintenanceCap: 2 * time.Millisecond,
	}
}

// WebSearch is CloudSuite Web Search: front-end + index-search processes,
// read/write on both the client and the internal hop — the extra
// same-syscall traffic behind the paper's lowest R^2 (0.86).
func WebSearch() Spec {
	mean := serviceFor(420, 0.99)
	return Spec{
		Name: "web-search", Suite: "cloudsuite", Model: ModelTwoStage,
		RecvNR: kernel.SysRead, SendNR: kernel.SysWrite, PollNR: kernel.SysEpollWait,
		Workers:     2 * ServerCores,
		ServiceMean: mean, ServiceCV: 0.9, FrontShare: 0.1,
		FailureRPS: 420, QoS: 10 * mean,
		ReqSize: 512, RespSize: 4096,
		LockShare:        0.10,
		MaintenanceEvery: 64, MaintenancePerItem: 50 * time.Microsecond, MaintenanceCap: 10 * time.Millisecond,
	}
}

// TritonHTTP is the Triton inference server over HTTP: dispatcher network
// threads with recvfrom/sendto, heavyweight inference workers.
func TritonHTTP() Spec {
	mean := serviceFor(21, 0.92)
	return Spec{
		Name: "triton-http", Suite: "triton", Model: ModelDispatcher,
		RecvNR: kernel.SysRecvfrom, SendNR: kernel.SysSendto, PollNR: kernel.SysEpollWait,
		Workers: ServerCores, NetThreads: 2,
		ServiceMean: mean, ServiceCV: 0.10,
		FailureRPS: 21, QoS: 10 * mean,
		ReqSize: 16 * 1024, RespSize: 8 * 1024,
		LockShare:        0.05,
		MaintenanceEvery: 2, MaintenancePerItem: time.Millisecond, MaintenanceCap: 20 * time.Millisecond,
	}
}

// TritonGRPC is Triton over gRPC: identical structure, recvmsg/sendmsg.
func TritonGRPC() Spec {
	s := TritonHTTP()
	s.Name = "triton-grpc"
	s.RecvNR = kernel.SysRecvmsg
	s.SendNR = kernel.SysSendmsg
	return s
}

// DataCachingIOUring is the Section V-C limitation variant: the same
// event-loop cache server moved onto an io_uring-style interface, so
// request receive/send generate no traceable syscalls.
func DataCachingIOUring() Spec {
	s := DataCaching()
	s.Name = "data-caching-iouring"
	s.Model = ModelIOUring
	return s
}

// All returns the paper's nine evaluated workloads, in the paper's order.
func All() []Spec {
	return []Spec{
		ImgDNN(), Xapian(), Silo(), SpecJBB(), Moses(),
		DataCaching(), WebSearch(), TritonHTTP(), TritonGRPC(),
	}
}

// ByName returns the named workload spec.
func ByName(name string) (Spec, bool) {
	for _, s := range append(All(), DataCachingIOUring()) {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// demandSampler draws lognormal per-request CPU demands with the spec's
// mean and coefficient of variation.
type demandSampler struct {
	rng   *rand.Rand
	mu    float64
	sigma float64
}

func newDemandSampler(rng *rand.Rand, mean time.Duration, cv float64) *demandSampler {
	if cv <= 0 {
		cv = 0.01
	}
	sigma := math.Sqrt(math.Log(1 + cv*cv))
	mu := math.Log(float64(mean)) - sigma*sigma/2
	return &demandSampler{rng: rng, mu: mu, sigma: sigma}
}

func (d *demandSampler) sample() time.Duration {
	v := math.Exp(d.mu + d.sigma*d.rng.NormFloat64())
	if v < 1000 { // floor at 1us so demands stay physical
		v = 1000
	}
	return time.Duration(v)
}

// Server is a launched workload instance.
type Server interface {
	// Spec returns the workload description.
	Spec() Spec
	// Process returns the client-facing process — the probe target.
	Process() *kernel.Process
	// Listener is where clients dial.
	Listener() *netsim.Listener
}
