package workloads

import (
	"fmt"
	"time"

	"reqlens/internal/kernel"
	"reqlens/internal/netsim"
)

// ioUringServer is the Section V-C limitation case: the same event-loop
// cache server, but request receive and response send ride an io_uring-
// style submission/completion queue. The only syscall left is an
// occasional io_uring_enter when the completion queue runs dry — so the
// paper's recv/send/poll probes observe (almost) nothing, and
// syscall-derived metrics go blind.
type ioUringServer struct {
	spec     Spec
	proc     *kernel.Process
	listener *netsim.Listener
}

func (w *ioUringServer) Spec() Spec                 { return w.spec }
func (w *ioUringServer) Process() *kernel.Process   { return w.proc }
func (w *ioUringServer) Listener() *netsim.Listener { return w.listener }

func launchIOUring(k *kernel.Kernel, n *netsim.Network, spec Spec, linkCfg netsim.Config) Server {
	w := &ioUringServer{
		spec:     spec,
		proc:     k.NewProcess(spec.Name),
		listener: n.Listen(linkCfg),
	}
	demand := newDemandSampler(k.Env().NewRNG(), spec.ServiceMean, spec.ServiceCV)
	var mu kernel.Mutex

	var conns [][]*netsim.Sock // per-worker connection sets
	conns = make([][]*netsim.Sock, spec.Workers)

	for i := 0; i < spec.Workers; i++ {
		i := i
		w.proc.SpawnThread(fmt.Sprintf("worker%d", i), func(t *kernel.Thread) {
			for {
				served := 0
				for _, s := range conns[i] {
					for {
						m := s.TryRecvBypass()
						if m == nil {
							break
						}
						served++
						serveOne(t, spec, demand.sample(), &mu)
						s.SendBypass(&netsim.Message{ID: m.ID, Size: spec.RespSize, Payload: m.Payload})
					}
				}
				if served == 0 {
					// Completion queue dry: a single io_uring_enter to
					// wait, then poll the CQ again. This is the only
					// syscall footprint of the fast path.
					t.Invoke(kernel.SysIoUringEnter, [6]uint64{}, func() int64 {
						t.Sleep(200 * time.Microsecond)
						return 0
					})
				}
			}
		})
	}

	w.proc.SpawnThread("main", func(t *kernel.Thread) {
		emitSetup(t)
		for i := 0; ; i++ {
			s := w.listener.Accept(t)
			conns[i%spec.Workers] = append(conns[i%spec.Workers], s)
		}
	})
	return w
}
