// Package workloads models the paper's nine latency-sensitive
// applications (Section IV-A): five tailbench benchmarks, CloudSuite
// Data Caching and Web Search, and the Triton inference server under
// HTTP and gRPC. Each model reproduces the threading structure and the
// request-oriented syscall signature the paper reports:
//
//	tailbench     recvfrom/sendto, select        worker pool
//	data caching  read/sendmsg, epoll_wait       event-loop threads
//	web search    read/write, epoll_wait         two processes (front/index)
//	triton http   recvfrom/sendto, epoll_wait    dispatcher + workers
//	triton grpc   recvmsg/sendmsg, epoll_wait    dispatcher + workers
//
// Service-time distributions are lognormal, calibrated so each workload
// saturates near the failure RPS the paper reports for the AMD server
// (Section IV-A): img-dnn 1950, xapian 970, silo 2100, specjbb 3700,
// moses 900, data caching 62000, web search 420, triton 21. Shared-lock
// contention and backlog-proportional queue maintenance supply the
// Fig. 3 variance mechanism; DataCachingIOUring is the Section V-C
// blind-spot variant that serves traffic with (almost) no send/recv
// syscalls.
//
// Key entry points:
//
//   - All() — the nine specs; ByName, or direct constructors (ImgDNN,
//     Xapian, Silo, SpecJBB, Moses, DataCaching, WebSearch, TritonHTTP,
//     TritonGRPC, DataCachingIOUring).
//   - Spec — the workload description: syscall numbers (SendNR/RecvNR/
//     PollNR), FailureRPS, QoS limit, threading Model, service-time and
//     contention parameters.
//   - Launch(k, net, spec, linkCfg) — start the server on a kernel and
//     return the running Server (Process, Listener).
//   - ServerCores — the fixed 8-core server allocation every
//     calibration assumes.
//
// Specs are plain values: safe to copy, tweak (the ablations zero
// LockShare/MaintenanceEvery), and launch concurrently on independent
// rigs.
package workloads
