package workloads

import (
	"testing"
	"time"

	"reqlens/internal/kernel"
	"reqlens/internal/loadgen"
	"reqlens/internal/machine"
	"reqlens/internal/netsim"
	"reqlens/internal/sim"
	"reqlens/internal/trace"
)

func TestCatalog(t *testing.T) {
	all := All()
	if len(all) != 9 {
		t.Fatalf("All() = %d workloads, want the paper's 9", len(all))
	}
	seen := map[string]bool{}
	for _, s := range all {
		if seen[s.Name] {
			t.Fatalf("duplicate workload %s", s.Name)
		}
		seen[s.Name] = true
		if s.ServiceMean <= 0 || s.FailureRPS <= 0 || s.Workers <= 0 {
			t.Fatalf("%s: incomplete spec %+v", s.Name, s)
		}
		if s.QoS <= 0 {
			t.Fatalf("%s: no QoS threshold", s.Name)
		}
	}
	if _, ok := ByName("xapian"); !ok {
		t.Fatal("ByName(xapian) failed")
	}
	if _, ok := ByName("data-caching-iouring"); !ok {
		t.Fatal("ByName for the io_uring variant failed")
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("ByName(nope) should fail")
	}
}

func TestSyscallSignaturesMatchPaper(t *testing.T) {
	// Section IV-A: tailbench recvfrom/sendto + select; data caching
	// read/sendmsg + epoll; web search read/write; triton grpc
	// recvmsg/sendmsg, triton http recvfrom/sendto.
	cases := []struct {
		spec             Spec
		recv, send, poll int
	}{
		{ImgDNN(), kernel.SysRecvfrom, kernel.SysSendto, kernel.SysSelect},
		{Moses(), kernel.SysRecvfrom, kernel.SysSendto, kernel.SysSelect},
		{DataCaching(), kernel.SysRead, kernel.SysSendmsg, kernel.SysEpollWait},
		{WebSearch(), kernel.SysRead, kernel.SysWrite, kernel.SysEpollWait},
		{TritonHTTP(), kernel.SysRecvfrom, kernel.SysSendto, kernel.SysEpollWait},
		{TritonGRPC(), kernel.SysRecvmsg, kernel.SysSendmsg, kernel.SysEpollWait},
	}
	for _, c := range cases {
		if c.spec.RecvNR != c.recv || c.spec.SendNR != c.send || c.spec.PollNR != c.poll {
			t.Errorf("%s: syscall signature %d/%d/%d, want %d/%d/%d",
				c.spec.Name, c.spec.RecvNR, c.spec.SendNR, c.spec.PollNR, c.recv, c.send, c.poll)
		}
	}
}

func TestFailureRPSMatchesPaper(t *testing.T) {
	want := map[string]float64{
		"img-dnn": 1950, "xapian": 970, "silo": 2100, "specjbb": 3700,
		"moses": 900, "data-caching": 62000, "web-search": 420,
		"triton-http": 21, "triton-grpc": 21,
	}
	for _, s := range All() {
		if s.FailureRPS != want[s.Name] {
			t.Errorf("%s: FailureRPS = %v, want %v", s.Name, s.FailureRPS, want[s.Name])
		}
	}
}

func TestDemandSamplerMoments(t *testing.T) {
	env := sim.NewEnv(3)
	d := newDemandSampler(env.NewRNG(), 10*time.Millisecond, 0.5)
	var sum, sumSq float64
	const n = 20000
	for i := 0; i < n; i++ {
		v := float64(d.sample())
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	if mean < 9.5e6 || mean > 10.5e6 {
		t.Fatalf("sampled mean = %v ns, want ~10ms", time.Duration(mean))
	}
	cv := (sumSq/n - mean*mean)
	cvRatio := cv / (mean * mean)
	if cvRatio < 0.2 || cvRatio > 0.32 {
		t.Fatalf("sampled CV^2 = %v, want ~0.25", cvRatio)
	}
}

func TestDemandSamplerFloor(t *testing.T) {
	env := sim.NewEnv(4)
	d := newDemandSampler(env.NewRNG(), 2*time.Microsecond, 3.0)
	for i := 0; i < 1000; i++ {
		if v := d.sample(); v < time.Microsecond {
			t.Fatalf("demand %v below 1us floor", v)
		}
	}
}

// launchAndDrive runs a workload with a small client and returns the
// recorded server syscall trace.
func launchAndDrive(t *testing.T, spec Spec, rate float64, dur time.Duration) ([]trace.Event, float64) {
	t.Helper()
	env := sim.NewEnv(21)
	prof := machine.AMD()
	prof.Sockets, prof.CoresPerSock, prof.ThreadsPerCore = 1, ServerCores, 1
	k := kernel.New(env, prof)
	n := netsim.New(env)
	srv := Launch(k, n, spec, netsim.Config{})
	rec := trace.NewRecorder(k, srv.Process().TGID(), 0)
	cl := loadgen.New(k, srv.Listener(), loadgen.Options{
		Rate: rate, Conns: 16, ReqSize: spec.ReqSize, PerOpCost: spec.ClientPerOpCost(),
	})
	env.RunFor(dur / 2)
	cl.StartMeasurement()
	rec.Reset()
	env.RunFor(dur)
	res := cl.Snapshot()
	evs := rec.Events()
	env.Shutdown()
	return evs, res.RealRPS
}

func TestWorkerPoolServesAndUsesDeclaredSyscalls(t *testing.T) {
	spec := ImgDNN()
	rate := 0.3 * spec.FailureRPS
	evs, real := launchAndDrive(t, spec, rate, 400*time.Millisecond)
	if real < 0.8*rate || real > 1.2*rate {
		t.Fatalf("RealRPS = %v, want ~%v", real, rate)
	}
	counts := trace.CountByName(evs)
	if counts["sendto"] == 0 || counts["recvfrom"] == 0 || counts["select"] == 0 {
		t.Fatalf("missing declared syscalls: %v", counts)
	}
	if counts["epoll_wait"] != 0 {
		t.Fatalf("tailbench should poll via select, got %v", counts)
	}
	// One send per response.
	if diff := float64(counts["sendto"]) - real*0.4; diff < -0.2*real*0.4 || diff > 0.2*real*0.4 {
		t.Fatalf("sendto count %d inconsistent with RPS %v over 400ms", counts["sendto"], real)
	}
}

func TestEventLoopVariantUsesEpoll(t *testing.T) {
	spec := DataCaching()
	evs, real := launchAndDrive(t, spec, 0.2*spec.FailureRPS, 100*time.Millisecond)
	if real == 0 {
		t.Fatal("no throughput")
	}
	counts := trace.CountByName(evs)
	if counts["read"] == 0 || counts["sendmsg"] == 0 || counts["epoll_wait"] == 0 {
		t.Fatalf("missing declared syscalls: %v", counts)
	}
}

func TestTwoStageServesThroughBothProcesses(t *testing.T) {
	env := sim.NewEnv(22)
	prof := machine.AMD()
	prof.Sockets, prof.CoresPerSock, prof.ThreadsPerCore = 1, ServerCores, 1
	k := kernel.New(env, prof)
	n := netsim.New(env)
	spec := WebSearch()
	srv := Launch(k, n, spec, netsim.Config{})
	ws := srv.(*twoStage)
	frontRec := trace.NewRecorder(k, ws.front.TGID(), 0)
	backRec := trace.NewRecorder(k, ws.Backend().TGID(), 0)
	cl := loadgen.New(k, srv.Listener(), loadgen.Options{
		Rate: 0.4 * spec.FailureRPS, Conns: 16, ReqSize: spec.ReqSize,
	})
	env.RunFor(500 * time.Millisecond)
	cl.StartMeasurement()
	env.RunFor(time.Second)
	res := cl.Snapshot()
	env.Shutdown()
	if res.RealRPS < 0.3*spec.FailureRPS {
		t.Fatalf("two-stage RealRPS = %v", res.RealRPS)
	}
	fc := trace.CountByName(frontRec.Events())
	bc := trace.CountByName(backRec.Events())
	if fc["write"] == 0 || fc["read"] == 0 {
		t.Fatalf("front-end missing read/write: %v", fc)
	}
	if bc["write"] == 0 || bc["read"] == 0 {
		t.Fatalf("backend missing read/write: %v", bc)
	}
	// The front-end writes a forward plus 1-3 drifting response chunks
	// per request, so its write count runs 2-4x the backend's.
	ratio := float64(fc["write"]) / float64(bc["write"])
	if ratio < 1.6 || ratio > 4.4 {
		t.Fatalf("front/back write ratio = %v, want 2..4", ratio)
	}
}

func TestDispatcherServes(t *testing.T) {
	spec := TritonGRPC()
	evs, real := launchAndDrive(t, spec, 0.5*spec.FailureRPS, 4*time.Second)
	if real < 0.3*spec.FailureRPS {
		t.Fatalf("dispatcher RealRPS = %v", real)
	}
	counts := trace.CountByName(evs)
	if counts["recvmsg"] == 0 || counts["sendmsg"] == 0 || counts["epoll_wait"] == 0 {
		t.Fatalf("missing declared syscalls: %v", counts)
	}
	// The eventfd wake path must not pollute the send family: writes
	// exist but sendmsg counts responses.
	if counts["write"] == 0 {
		t.Fatalf("dispatcher should show eventfd writes: %v", counts)
	}
}

func TestIOUringVariantIsSyscallSilent(t *testing.T) {
	spec := DataCachingIOUring()
	evs, real := launchAndDrive(t, spec, 0.3*spec.FailureRPS, 100*time.Millisecond)
	if real < 0.2*spec.FailureRPS {
		t.Fatalf("io_uring variant RealRPS = %v", real)
	}
	counts := trace.CountByName(evs)
	if counts["read"] != 0 || counts["sendmsg"] != 0 || counts["epoll_wait"] != 0 {
		t.Fatalf("io_uring variant should not issue socket syscalls: %v", counts)
	}
	if counts["io_uring_enter"] == 0 {
		t.Fatalf("expected io_uring_enter activity: %v", counts)
	}
}

func TestLaunchPanicsOnUnknownModel(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	env := sim.NewEnv(1)
	k := kernel.New(env, machine.AMD())
	spec := ImgDNN()
	spec.Model = Model(99)
	Launch(k, netsim.New(env), spec, netsim.Config{})
}

func TestModelString(t *testing.T) {
	for m, want := range map[Model]string{
		ModelWorkerPool: "worker-pool", ModelTwoStage: "two-stage",
		ModelDispatcher: "dispatcher", ModelIOUring: "io_uring", Model(9): "?",
	} {
		if m.String() != want {
			t.Fatalf("Model(%d).String() = %q", m, m.String())
		}
	}
	if ImgDNN().String() != "tailbench/img-dnn" {
		t.Fatalf("Spec.String() = %q", ImgDNN().String())
	}
}
