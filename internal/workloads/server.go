package workloads

import (
	"fmt"
	"sync/atomic"
	"time"

	"reqlens/internal/kernel"
	"reqlens/internal/netsim"
)

// emitSetup issues the listening-socket setup sequence every server
// performs before its request loop — the Fig. 1(b) setup-phase syscalls.
func emitSetup(t *kernel.Thread) {
	for _, nr := range []int{
		kernel.SysOpenat, kernel.SysMmap, kernel.SysMmap,
		kernel.SysSocket, kernel.SysBind, kernel.SysListen,
	} {
		t.Invoke(nr, [6]uint64{}, func() int64 { return 0 })
	}
}

// Launch starts a workload server on k, listening on a connection link
// shaped by linkCfg. It spawns the model-appropriate thread structure
// and an acceptor that registers incoming connections.
func Launch(k *kernel.Kernel, n *netsim.Network, spec Spec, linkCfg netsim.Config) Server {
	switch spec.Model {
	case ModelWorkerPool:
		return launchWorkerPool(k, n, spec, linkCfg)
	case ModelTwoStage:
		return launchTwoStage(k, n, spec, linkCfg)
	case ModelDispatcher:
		return launchDispatcher(k, n, spec, linkCfg)
	case ModelIOUring:
		return launchIOUring(k, n, spec, linkCfg)
	}
	panic(fmt.Sprintf("workloads: unknown model %v", spec.Model))
}

// workerPool is the tailbench/data-caching shape: each worker thread owns
// an epoll (or select set) over a share of the connections and runs
// poll -> drain(recv -> compute -> send).
type workerPool struct {
	spec     Spec
	proc     *kernel.Process
	listener *netsim.Listener
	epolls   []*netsim.Epoll
}

func (w *workerPool) Spec() Spec                 { return w.spec }
func (w *workerPool) Process() *kernel.Process   { return w.proc }
func (w *workerPool) Listener() *netsim.Listener { return w.listener }

func launchWorkerPool(k *kernel.Kernel, n *netsim.Network, spec Spec, linkCfg netsim.Config) Server {
	w := &workerPool{
		spec:     spec,
		proc:     k.NewProcess(spec.Name),
		listener: n.Listen(linkCfg),
	}
	demand := newDemandSampler(k.Env().NewRNG(), spec.ServiceMean, spec.ServiceCV)
	var mu kernel.Mutex // shared queue/LRU maintenance lock

	for i := 0; i < spec.Workers; i++ {
		w.epolls = append(w.epolls, n.NewEpoll())
	}

	// Main thread: listening-socket setup, then worker spawn, then the
	// accept loop distributing connections round-robin over workers. The
	// setup and accept/epoll_ctl churn is Fig. 1's "setup phase".
	w.proc.SpawnThread("main", func(t *kernel.Thread) {
		emitSetup(t)
		for i := 0; i < spec.Workers; i++ {
			ep := w.epolls[i]
			w.proc.SpawnThread(fmt.Sprintf("worker%d", i), func(t *kernel.Thread) {
				sinceSweep := 0
				for {
					ready := ep.Wait(t, spec.PollNR, 0)
					for _, s := range ready {
						drainAndServe(t, s, spec, demand, &mu, ep, &sinceSweep)
					}
				}
			})
		}
		for i := 0; ; i++ {
			s := w.listener.Accept(t)
			w.epolls[i%len(w.epolls)].Add(t, s)
		}
	})
	return w
}

// drainAndServe empties one readable socket: for each queued request,
// sample CPU demand, compute (the tail of it inside the shared critical
// section), and send the response — the single-thread request cycle of
// Section III.
func drainAndServe(t *kernel.Thread, s *netsim.Sock, spec Spec, demand *demandSampler, mu *kernel.Mutex, ep *netsim.Epoll, sinceSweep *int) int {
	served := 0
	for {
		m, ret := s.TryRecv(t, spec.RecvNR)
		if ret == netsim.EAGAIN {
			return served
		}
		served++
		serveOne(t, spec, demand.sample(), mu)
		s.Send(t, spec.SendNR, &netsim.Message{ID: m.ID, Size: spec.RespSize, Payload: m.Payload})
		if spec.MaintenanceEvery > 0 {
			*sinceSweep++
			if *sinceSweep >= spec.MaintenanceEvery {
				*sinceSweep = 0
				maintain(t, spec, ep.TotalQueued(), mu)
			}
		}
	}
}

// SweepCount and SweepTimeNS accumulate maintenance-sweep diagnostics
// across all servers in the process. They are atomic because the
// harness's parallel experiment engine runs independent rigs — and thus
// independent simulations — on concurrent goroutines.
var (
	SweepCount  atomic.Int64
	SweepTimeNS atomic.Int64
)

// maintain models queue-management housekeeping (LRU walks, allocator or
// GC work) whose cost scales with the pending backlog, executed under
// the shared lock. Below saturation backlogs are tiny and this is free;
// past saturation it becomes the global stall source the paper blames
// for the variance rise ("accumulation of pending requests ...
// overloading the application's queue management system").
func maintain(t *kernel.Thread, spec Spec, backlog int, mu *kernel.Mutex) {
	cost := time.Duration(backlog) * spec.MaintenancePerItem
	if cost > spec.MaintenanceCap {
		cost = spec.MaintenanceCap
	}
	if cost <= 0 {
		return
	}
	SweepCount.Add(1)
	SweepTimeNS.Add(int64(cost))
	mu.LockSpin(t, lockSpin)
	t.Compute(cost)
	mu.Unlock(t)
}

// serveOne burns one request's CPU demand, finishing inside the shared
// critical section (response bookkeeping: LRU/queue/index maintenance).
// Under CPU saturation the lock-holder gets preempted with waiters
// parked behind it — the contention convoys behind the paper's variance
// signal.
func serveOne(t *kernel.Thread, spec Spec, d time.Duration, mu *kernel.Mutex) {
	locked := time.Duration(float64(d) * spec.LockShare)
	if locked > maxLockedSection {
		locked = maxLockedSection
	}
	t.Compute(d - locked)
	if locked > 0 && mu != nil {
		mu.LockSpin(t, lockSpin)
		t.Compute(locked)
		mu.Unlock(t)
	}
}

// Critical sections in real servers are short regardless of request
// size; the cap keeps lock-holder preemption rare-but-present, and the
// adaptive spin matches glibc's contended fast path.
const (
	maxLockedSection = 5 * time.Microsecond
	lockSpin         = 10 * time.Microsecond
)
