package workloads

import (
	"fmt"
	"time"

	"reqlens/internal/kernel"
	"reqlens/internal/netsim"
	"reqlens/internal/sim"
)

// twoStage models CloudSuite Web Search: a front-end process terminating
// client connections and an index-search process doing the heavy work,
// joined by internal connections. Both hops use read/write, so the
// send-family syscall trace of the front-end mixes client responses with
// internal forwards — the structural reason the paper measures its
// weakest RPS correlation (R^2 = 0.86) on this workload.
type twoStage struct {
	spec     Spec
	front    *kernel.Process
	back     *kernel.Process
	listener *netsim.Listener
}

func (w *twoStage) Spec() Spec                 { return w.spec }
func (w *twoStage) Process() *kernel.Process   { return w.front }
func (w *twoStage) Listener() *netsim.Listener { return w.listener }

// Backend returns the index-search process.
func (w *twoStage) Backend() *kernel.Process { return w.back }

func launchTwoStage(k *kernel.Kernel, n *netsim.Network, spec Spec, linkCfg netsim.Config) Server {
	w := &twoStage{
		spec:     spec,
		front:    k.NewProcess(spec.Name + "-front"),
		back:     k.NewProcess(spec.Name + "-index"),
		listener: n.Listen(linkCfg),
	}
	frontShare := spec.FrontShare
	if frontShare <= 0 {
		frontShare = 0.1
	}
	frontDemand := newDemandSampler(k.Env().NewRNG(),
		time.Duration(float64(spec.ServiceMean)*frontShare), spec.ServiceCV)
	backDemand := newDemandSampler(k.Env().NewRNG(),
		time.Duration(float64(spec.ServiceMean)*(1-frontShare)), spec.ServiceCV)

	// Internal hop: in-machine connections, no netem shaping.
	internal := n.Listen(netsim.Config{})

	// Backend index workers: epoll over the internal connections.
	var backMu kernel.Mutex
	backEp := n.NewEpoll()
	for i := 0; i < spec.Workers; i++ {
		w.back.SpawnThread(fmt.Sprintf("index%d", i), func(t *kernel.Thread) {
			sinceSweep := 0
			for {
				ready := backEp.Wait(t, spec.PollNR, 0)
				for _, s := range ready {
					for {
						m, ret := s.TryRecv(t, spec.RecvNR)
						if ret == netsim.EAGAIN {
							break
						}
						serveOne(t, spec, backDemand.sample(), &backMu)
						s.Send(t, spec.SendNR, &netsim.Message{ID: m.ID, Size: spec.RespSize, Payload: m.Payload})
						if spec.MaintenanceEvery > 0 {
							sinceSweep++
							if sinceSweep >= spec.MaintenanceEvery {
								sinceSweep = 0
								maintain(t, spec, backEp.TotalQueued(), &backMu)
							}
						}
					}
				}
			}
		})
	}
	w.back.SpawnThread("main", func(t *kernel.Thread) {
		emitSetup(t)
		for {
			s := internal.Accept(t)
			backEp.Add(t, s)
		}
	})

	// Front-end threads: each owns client connections and a dedicated
	// internal connection; requests are forwarded and the thread waits
	// for the index response before replying to the client.
	//
	// Responses go out in a variable number of write chunks: result-set
	// size drifts with the query mix, so the chunk count is a slowly
	// varying process (re-rolled every 50-200ms), not i.i.d. noise. This
	// drift is what decouples the front-end's write rate from the true
	// request rate and produces the paper's weakest Fig. 2 fit
	// (R^2 = 0.86) for this workload.
	var frontMu kernel.Mutex
	chunkRng := k.Env().NewRNG()
	chunkState := 0
	chunkFlip := sim.Time(0)
	chunksNow := func(now sim.Time) int {
		if now >= chunkFlip {
			chunkState = chunkRng.Intn(3)
			chunkFlip = now.Add(50*time.Millisecond +
				time.Duration(chunkRng.Int63n(int64(150*time.Millisecond))))
		}
		return 1 + chunkState
	}
	frontEps := make([]*netsim.Epoll, spec.Workers)
	for i := 0; i < spec.Workers; i++ {
		ep := n.NewEpoll()
		frontEps[i] = ep
		w.front.SpawnThread(fmt.Sprintf("front%d", i), func(t *kernel.Thread) {
			backConn := internal.Dial(t)
			sinceSweep := 0
			for {
				ready := ep.Wait(t, spec.PollNR, 0)
				for _, s := range ready {
					for {
						m, ret := s.TryRecv(t, spec.RecvNR)
						if ret == netsim.EAGAIN {
							break
						}
						if spec.MaintenanceEvery > 0 {
							sinceSweep++
							if sinceSweep >= spec.MaintenanceEvery {
								sinceSweep = 0
								maintain(t, spec, ep.TotalQueued(), &frontMu)
							}
						}
						t.Compute(frontDemand.sample())
						// Forward to the index over the internal hop
						// (same send syscall family as client responses).
						backConn.Send(t, spec.SendNR, &netsim.Message{ID: m.ID, Size: spec.ReqSize, Payload: m.Payload})
						resp := backConn.Recv(t, spec.RecvNR)
						chunks := chunksNow(t.Now())
						for c := 0; c < chunks; c++ {
							id := uint64(0) // continuation chunks carry no request id
							if c == chunks-1 {
								id = resp.ID // final chunk completes the response
							}
							s.Send(t, spec.SendNR, &netsim.Message{ID: id, Size: spec.RespSize / chunks, Payload: resp.Payload})
						}
					}
				}
			}
		})
	}
	w.front.SpawnThread("main", func(t *kernel.Thread) {
		emitSetup(t)
		for i := 0; ; i++ {
			s := w.listener.Accept(t)
			frontEps[i%len(frontEps)].Add(t, s)
		}
	})
	return w
}
