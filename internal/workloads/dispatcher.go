package workloads

import (
	"fmt"

	"reqlens/internal/kernel"
	"reqlens/internal/netsim"
	"reqlens/internal/sim"
)

// dispatcher models Triton: dedicated network threads terminate client
// connections (recv requests, send responses) while a pool of inference
// workers does the heavy compute. Completions return to the owning
// network thread through an eventfd-style notification socket (write/
// read — deliberately outside the send/recv families the probes watch,
// matching how gRPC internals are invisible to the paper's filters).
type dispatcher struct {
	spec     Spec
	proc     *kernel.Process
	listener *netsim.Listener
}

func (w *dispatcher) Spec() Spec                 { return w.spec }
func (w *dispatcher) Process() *kernel.Process   { return w.proc }
func (w *dispatcher) Listener() *netsim.Listener { return w.listener }

// workItem is a request in flight between network and worker threads.
type workItem struct {
	msg  *netsim.Message
	sock *netsim.Sock
	net  *netThread
}

// netThread owns a share of the client connections.
type netThread struct {
	ep          *netsim.Epoll
	notifyRead  *netsim.Sock // registered in ep; readable when work completes
	notifyWrite *netsim.Sock // workers write here
	completions []*workItem
}

func launchDispatcher(k *kernel.Kernel, n *netsim.Network, spec Spec, linkCfg netsim.Config) Server {
	w := &dispatcher{
		spec:     spec,
		proc:     k.NewProcess(spec.Name),
		listener: n.Listen(linkCfg),
	}
	demand := newDemandSampler(k.Env().NewRNG(), spec.ServiceMean, spec.ServiceCV)
	var mu kernel.Mutex

	nNet := spec.NetThreads
	if nNet <= 0 {
		nNet = 2
	}

	// Shared work queue between network threads and workers.
	var queue []*workItem
	var idleWorkers []*sim.Waker

	pushWork := func(it *workItem) {
		queue = append(queue, it)
		for _, wk := range idleWorkers {
			wk.Wake()
		}
		idleWorkers = idleWorkers[:0]
	}

	nets := make([]*netThread, nNet)
	for i := range nets {
		a, b := n.NewConn(netsim.Config{}) // in-process eventfd pair
		nets[i] = &netThread{ep: n.NewEpoll(), notifyRead: b, notifyWrite: a}
	}

	for i, nt := range nets {
		nt := nt
		nt.ep.Add(nil, nt.notifyRead)
		w.proc.SpawnThread(fmt.Sprintf("net%d", i), func(t *kernel.Thread) {
			for {
				ready := nt.ep.Wait(t, spec.PollNR, 0)
				for _, s := range ready {
					if s == nt.notifyRead {
						// Drain notifications, then send completed
						// responses from this network thread.
						for {
							if _, ret := s.TryRecv(t, kernel.SysRead); ret == netsim.EAGAIN {
								break
							}
						}
						pending := nt.completions
						nt.completions = nil
						for _, it := range pending {
							it.sock.Send(t, spec.SendNR, &netsim.Message{
								ID: it.msg.ID, Size: spec.RespSize, Payload: it.msg.Payload,
							})
						}
						continue
					}
					for {
						m, ret := s.TryRecv(t, spec.RecvNR)
						if ret == netsim.EAGAIN {
							break
						}
						pushWork(&workItem{msg: m, sock: s, net: nt})
					}
				}
			}
		})
	}

	for i := 0; i < spec.Workers; i++ {
		w.proc.SpawnThread(fmt.Sprintf("infer%d", i), func(t *kernel.Thread) {
			sinceSweep := 0
			for {
				for len(queue) == 0 {
					idleWorkers = append(idleWorkers, t.Waker())
					t.Park()
				}
				it := queue[0]
				queue = queue[1:]
				sinceSweep++
				if spec.MaintenanceEvery > 0 && sinceSweep >= spec.MaintenanceEvery {
					sinceSweep = 0
					maintain(t, spec, len(queue), &mu)
				}
				serveOne(t, spec, demand.sample(), &mu)
				it.net.completions = append(it.net.completions, it)
				// eventfd-style wakeup of the owning network thread.
				it.net.notifyWrite.Send(t, kernel.SysWrite, &netsim.Message{Size: 8})
			}
		})
	}

	w.proc.SpawnThread("main", func(t *kernel.Thread) {
		emitSetup(t)
		for i := 0; ; i++ {
			s := w.listener.Accept(t)
			nets[i%len(nets)].ep.Add(t, s)
		}
	})
	return w
}
