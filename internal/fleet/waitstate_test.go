package fleet

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"reqlens/internal/workloads"
)

// waitCluster builds the wait-state cluster the tests share: two nodes
// at a comfortable level plus one driven past its capacity, so exactly
// one member should show real runqueue wait.
func waitCluster(par int) *Cluster {
	specs := []NodeSpec{
		{Workload: workloads.Silo()},
		{Workload: workloads.Xapian()},
		{Workload: workloads.Silo(), Weight: 2.2}, // hot node: ~1.3x its failure RPS
	}
	return NewCluster(Options{
		Nodes: specs,
		Level: 0.6,
		Scrape: ScrapeConfig{
			Interval: 100 * time.Millisecond,
			Skew:     20 * time.Millisecond,
		},
		TopK:        3,
		WaitStates:  true,
		Warmup:      200 * time.Millisecond,
		Parallelism: par,
	})
}

// TestFleetWaitStateRollup checks the wait-state plane end to end: with
// Options.WaitStates on, rollups rank nodes by runnable share, the
// shares are a valid decomposition, and the overdriven node tops the
// queued ranking — the cluster-level "whose p99 is the CPU's fault"
// view, from scraped exports alone.
func TestFleetWaitStateRollup(t *testing.T) {
	c := waitCluster(1)
	defer c.Close()
	rollups := c.Run(3)
	last := rollups[len(rollups)-1]
	if len(last.TopQueued) == 0 {
		t.Fatal("no queued ranking despite WaitStates on")
	}
	for _, s := range last.TopQueued {
		sum := s.OnCPUShare + s.RunnableShare + s.BlockedShare
		if sum < 1-1e-6 || sum > 1+1e-6 {
			t.Errorf("node %d shares sum to %v", s.Node, sum)
		}
	}
	for i := 1; i < len(last.TopQueued); i++ {
		if last.TopQueued[i].RunnableShare > last.TopQueued[i-1].RunnableShare {
			t.Errorf("queued ranking out of order at %d", i)
		}
	}
	if top := last.TopQueued[0]; top.Node != 2 || top.RunnableShare < 0.05 {
		t.Errorf("hot node not identified: top queued = node %d at %.3f", top.Node, top.RunnableShare)
	}
	out := RenderRollup(last)
	if !strings.Contains(out, "top queued") {
		t.Errorf("RenderRollup misses queued section:\n%s", out)
	}
}

// TestFleetWaitStateParallelDeterminism pins the rollup fold: the
// queued ranking is bit-identical at any lockstep worker count.
func TestFleetWaitStateParallelDeterminism(t *testing.T) {
	run := func(par int) []byte {
		c := waitCluster(par)
		defer c.Close()
		data, err := json.Marshal(c.Run(3))
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return data
	}
	base := run(1)
	for _, par := range []int{2, 3} {
		if got := run(par); !bytes.Equal(got, base) {
			t.Errorf("parallelism %d diverges from sequential run:\n seq: %s\n par: %s",
				par, base, got)
		}
	}
}

// TestFleetWaitStatesOffByDefault pins the opt-in: without
// Options.WaitStates there is no queued ranking — absence of the sched
// probes reads as "signal not deployed", never as zero queueing — and
// the probes' per-transition cost never perturbs default runs.
func TestFleetWaitStatesOffByDefault(t *testing.T) {
	c := NewCluster(Options{
		Nodes:       DefaultSpecs(2),
		Level:       0.5,
		Scrape:      ScrapeConfig{Interval: 100 * time.Millisecond},
		Warmup:      200 * time.Millisecond,
		Parallelism: 1,
	})
	defer c.Close()
	for _, r := range c.Run(2) {
		if r.TopQueued != nil {
			t.Fatalf("epoch %d: queued ranking present without WaitStates", r.Epoch)
		}
	}
}
