// Package fleet lifts the repo's one-rig/one-kernel core to cluster
// scale: a simulated fleet of nodes — each a private kernel + workload
// + observer + telemetry registry (harness.Node wired into a
// harness.Rig) on its own deterministic timeline — advanced in lockstep
// (sim.Lockstep), with the paper's open-loop load split across the
// nodes and a scrape/merge aggregation plane on top.
//
// The aggregation plane models a production metrics pipeline the way
// the simulation models a kernel: a Scraper pulls each node's
// Prometheus text export (telemetry.WriteProm) on a configurable
// interval, with per-node scrape-time jitter (clock skew between
// scrape targets) and deterministic scrape misses; ParseProm
// reconstructs the samples losslessly, and per-epoch Rollups compute
// the cluster view — global observed RPS, per-node saturation, top-K
// saturated and noisy nodes. Nodes whose last successful scrape is
// older than the staleness bound are marked explicitly stale and
// excluded from rollup sums — the PR 5 gap convention: a hole is
// reported as a hole, never zero-filled.
//
// Determinism survives both layers of sharding. Within a cluster, each
// node's environment is advanced by exactly one lockstep worker per
// round and shares no state with any other node, so the lockstep
// worker count cannot affect any sample. Across a sweep, each fleet
// point (one cluster per load level) is a supervised harness.RunPoints
// unit with PR 5 deadlines, retries and gap accounting.
// TestFleetParallelDeterminism pins byte-identical sweep results at
// parallelism 1, 4 and GOMAXPROCS.
package fleet
