package fleet

import (
	"fmt"
	"strings"
)

// gapMark mirrors the harness renderers' convention: data lost to
// supervision gaps or staleness reads as "missing", never as zero.
const gapMark = "—"

// RenderSweep formats a fleet sweep as a level-per-row table. Gapped
// levels print as missing rows; levels whose rollups excluded stale
// nodes carry a footnote marker so a reader never mistakes a partial
// cluster sum for a full one.
func RenderSweep(r SweepResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fleet saturation sweep (%d nodes)\n", r.Nodes)
	fmt.Fprintf(&b, "%-6s | %10s | %10s | %8s | %5s | %6s | %6s\n",
		"level", "real RPS", "obsv RPS", "mean sat", "sat#", "qos!", "missed")
	staleSeen := false
	for _, p := range r.Points {
		if p.Gap {
			fmt.Fprintf(&b, "%-6.2f | %10s | %10s | %8s | %5s | %6s | %6s\n",
				p.Level, gapMark, gapMark, gapMark, gapMark, gapMark, gapMark)
			continue
		}
		last := Rollup{}
		if len(p.Rollups) > 0 {
			last = p.Rollups[len(p.Rollups)-1]
		}
		note := ""
		if p.StaleEpochs > 0 {
			note = "*"
			staleSeen = true
		}
		fmt.Fprintf(&b, "%-6.2f | %10.1f | %9.1f%1s | %8.3f | %5d | %6d | %6d\n",
			p.Level, p.RealRPS, p.ObsvRPS, note, last.MeanSaturation,
			last.SaturatedNodes, p.QoSFails, p.MissedScrapes)
	}
	if staleSeen {
		fmt.Fprintf(&b, "* = one or more epochs excluded stale nodes from rollups (%s, not zero-filled)\n", gapMark)
	}
	if len(r.Gaps) > 0 {
		fmt.Fprintf(&b, "gaps (%s): %s\n", gapMark, strings.Join(r.Gaps, ", "))
	}
	return b.String()
}

// RenderRollup formats one scrape epoch's cluster view — the fleet
// subcommand and the fleet-monitor example print these live. Stale
// nodes are listed explicitly; their absence from the sums is the gap
// convention, so the footnote appears whenever any node is excluded.
func RenderRollup(r Rollup) string {
	var b strings.Builder
	fmt.Fprintf(&b, "epoch %d @ %v: RPS=%.1f meanSat=%.3f saturated=%d fresh=%d missed=%d\n",
		r.Epoch, r.At, r.GlobalObsvRPS, r.MeanSaturation, r.SaturatedNodes, r.Fresh, r.Missed)
	if len(r.TopSaturated) > 0 {
		b.WriteString("  top saturated:")
		for _, s := range r.TopSaturated {
			fmt.Fprintf(&b, "  node%d=%.3f", s.Node, s.Saturation)
		}
		b.WriteByte('\n')
	}
	if len(r.TopNoisy) > 0 {
		b.WriteString("  top noisy (send var us^2):")
		for _, s := range r.TopNoisy {
			fmt.Fprintf(&b, "  node%d=%.1f", s.Node, s.SendVarUS2)
		}
		b.WriteByte('\n')
	}
	if len(r.TopQueued) > 0 {
		b.WriteString("  top queued (runnable share):")
		for _, s := range r.TopQueued {
			fmt.Fprintf(&b, "  node%d=%.3f", s.Node, s.RunnableShare)
		}
		b.WriteByte('\n')
	}
	if len(r.TopOffenders) > 0 {
		b.WriteString("  top offenders (sketch-estimated):")
		for _, o := range r.TopOffenders {
			fmt.Fprintf(&b, "  tgid%d=%d syscalls (%d sends, %v busy)",
				o.TGID, o.Syscalls, o.Sends, o.Busy)
		}
		b.WriteByte('\n')
	}
	if len(r.Stale) > 0 {
		ids := make([]string, len(r.Stale))
		for i, id := range r.Stale {
			ids[i] = fmt.Sprintf("node%d", id)
		}
		fmt.Fprintf(&b, "  stale (%s, excluded from sums): %s\n", gapMark, strings.Join(ids, ", "))
	}
	return b.String()
}
