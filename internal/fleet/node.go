package fleet

import (
	"bytes"
	"math/rand"
	"time"

	"reqlens/internal/faults"
	"reqlens/internal/harness"
	"reqlens/internal/machine"
	"reqlens/internal/probes"
	"reqlens/internal/sim"
	"reqlens/internal/telemetry"
	"reqlens/internal/workloads"
)

// NodeSpec describes one cluster member. Heterogeneity is per-node:
// each member picks its own workload, hardware profile, load weight
// and (optionally) a fault plan.
type NodeSpec struct {
	// Workload is the served application. Its FailureRPS is the node's
	// nominal capacity; the cluster's open-loop load splits
	// proportionally to it.
	Workload workloads.Spec

	// Profile selects the node's hardware model (zero value = AMD).
	Profile machine.Profile

	// Weight scales the node's share of the offered load relative to
	// its capacity: 1 (the default for 0) is a fair share, >1 makes
	// this a hot node driven past its proportional allocation while the
	// rest of the fleet stays at the nominal level.
	Weight float64

	// Plan is a fault-injection schedule armed on this node after
	// warmup. The zero Plan leaves the node unfaulted. A plan carrying
	// a netem config shapes this node's link for the whole run.
	Plan faults.Plan
}

// weight resolves the default load share.
func (s NodeSpec) weight() float64 {
	if s.Weight <= 0 {
		return 1
	}
	return s.Weight
}

// DefaultSpecs returns n heterogeneous node specs cycling through the
// cheap tailbench workloads — the mix the fleet subcommand and the
// benchmarks simulate.
func DefaultSpecs(n int) []NodeSpec {
	mix := []workloads.Spec{
		workloads.Silo(), workloads.ImgDNN(), workloads.Xapian(),
		workloads.SpecJBB(), workloads.Moses(),
	}
	specs := make([]NodeSpec, n)
	for i := range specs {
		specs[i] = NodeSpec{Workload: mix[i%len(mix)]}
	}
	return specs
}

// Per-node metric names the exporter publishes on top of the rig's
// hot-path instruments. The scraper reads these back by name when
// computing rollups, so they are constants rather than inline strings.
const (
	metricObsvRPS    = "node_obsv_rps"
	metricSendVarUS2 = "node_send_var_us2"
	metricRecvVarUS2 = "node_recv_var_us2"
	metricPollMeanNS = "node_poll_mean_ns"
	metricSaturation = "node_saturation"
	metricScrapes    = "node_scrapes_total"
	metricSends      = "node_sends_total"

	// Wait-state shares of the server's scheduler-accounted time in the
	// scrape window. Exported only when the cluster runs with
	// Options.WaitStates; rollups treat their absence as "signal not
	// deployed", not as zeros.
	metricWaitOnCPU    = "node_wait_oncpu_share"
	metricWaitRunnable = "node_wait_runnable_share"
	metricWaitBlocked  = "node_wait_blocked_share"
)

// Node is one cluster member: a harness.Rig (server node + co-located
// load generator, the paper's single-host setup) on a private
// simulation timeline, plus the scrape-plane state the aggregation
// layer keeps about it.
type Node struct {
	ID   int
	Spec NodeSpec

	// Rig is the member's full single-node experiment. Rig.Reg is the
	// node's metrics registry — its "exporter endpoint".
	Rig *harness.Rig

	// Rate is the node's open-loop offered load (RPS).
	Rate float64

	// rng drives this node's scrape-plane randomness (scrape-time
	// jitter, scrape misses). It is private to the node and consumed in
	// a fixed per-epoch order, so its sequence — and therefore every
	// scrape decision — is independent of lockstep worker scheduling.
	rng *rand.Rand

	// Scrape-plane state: the last successful scrape's parsed sample
	// and sim instant, and the running miss count.
	last   Sample
	lastOK bool
	missed int

	// Sketch-plane state: the last successful scrape's attribution
	// sketches (cloned at scrape time, so rollup merges never touch
	// live probe maps). Only populated when Options.Attribution is on.
	lastAttr   probes.AttrSketches
	lastAttrOK bool
}

// newNode builds one member: its environment, rig and per-node
// registry. level is the cluster load level; the node's offered rate is
// level * FailureRPS * weight.
func newNode(id int, spec NodeSpec, seed int64, level float64, clock *sim.Clock, attribution, waitStates bool) *Node {
	reg := telemetry.New()
	rate := level * spec.Workload.FailureRPS * spec.weight()
	netem := spec.Plan.Netem // link shaping is a whole-run property
	rig := harness.NewRig(spec.Workload, harness.RigOptions{
		Seed:        seed,
		Profile:     spec.Profile,
		Netem:       netem,
		Rate:        rate,
		Probes:      true,
		Attribution: attribution,
		WaitStates:  waitStates,
		Telemetry:   reg,
		Clock:       clock,
	})
	return &Node{
		ID:   id,
		Spec: spec,
		Rig:  rig,
		Rate: rate,
		rng:  rand.New(rand.NewSource(seed ^ 0x5eed1e7)),
	}
}

// Export samples the node's observer into its registry and serializes
// the registry in Prometheus text format — one scrape response. The
// observer window spans the time since the previous successful scrape
// (missed scrapes leave the window accumulating, exactly like a real
// exporter whose caller went away).
func (n *Node) Export() []byte {
	w := n.Rig.Obs.Sample()
	reg := n.Rig.Reg
	reg.FloatGauge(metricObsvRPS).Set(w.Send.RatePerSec)
	reg.FloatGauge(metricSendVarUS2).Set(w.Send.VarianceUS2)
	reg.FloatGauge(metricRecvVarUS2).Set(w.Recv.VarianceUS2)
	reg.FloatGauge(metricPollMeanNS).Set(float64(w.Poll.MeanDuration))
	reg.FloatGauge(metricSaturation).Set(w.Send.RatePerSec / n.Spec.Workload.FailureRPS)
	if n.Rig.Wait != nil {
		on, run, blk := n.Rig.Wait.Sample().Shares()
		reg.FloatGauge(metricWaitOnCPU).Set(on)
		reg.FloatGauge(metricWaitRunnable).Set(run)
		reg.FloatGauge(metricWaitBlocked).Set(blk)
	}
	reg.Counter(metricScrapes).Inc()
	reg.Counter(metricSends).Add(w.Send.Calls)
	var buf bytes.Buffer
	if err := reg.WriteProm(&buf); err != nil {
		panic(err) // bytes.Buffer cannot fail; a failure here is a bug
	}
	return buf.Bytes()
}

// Truth is one node's ground-truth view at the end of a run — the
// client-side measurements the in-kernel aggregation plane cannot see.
type Truth struct {
	Node    int
	RealRPS float64
	P99     time.Duration
	QoSFail bool
}

// Truth snapshots the node's client-side ground truth.
func (n *Node) Truth() Truth {
	res := n.Rig.Client.Snapshot()
	return Truth{
		Node:    n.ID,
		RealRPS: res.RealRPS,
		P99:     res.P99,
		QoSFail: res.P99 > n.Spec.Workload.QoS,
	}
}
