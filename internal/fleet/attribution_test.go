package fleet

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// attrCluster builds the small attribution-enabled cluster the tests
// share: three heterogeneous nodes, short epochs, no scrape misses (so
// every epoch carries a full sketch fold).
func attrCluster(par int) *Cluster {
	return NewCluster(Options{
		Nodes: DefaultSpecs(3),
		Level: 0.5,
		Scrape: ScrapeConfig{
			Interval: 100 * time.Millisecond,
			Skew:     20 * time.Millisecond,
		},
		TopK:        3,
		Attribution: true,
		Warmup:      200 * time.Millisecond,
		Parallelism: par,
	})
}

// TestFleetAttributionRollup checks the sketch plane end to end: with
// Options.Attribution on, every epoch's rollup carries a cluster-wide
// offender ranking with non-zero sketch estimates, ordered by estimated
// syscall count.
func TestFleetAttributionRollup(t *testing.T) {
	c := attrCluster(1)
	defer c.Close()
	rollups := c.Run(3)
	for _, r := range rollups {
		if len(r.TopOffenders) == 0 {
			t.Fatalf("epoch %d: no offenders despite Attribution on", r.Epoch)
		}
		for i, o := range r.TopOffenders {
			if o.Syscalls == 0 {
				t.Errorf("epoch %d offender %d: zero syscall estimate", r.Epoch, i)
			}
			if i > 0 && o.Syscalls > r.TopOffenders[i-1].Syscalls {
				t.Errorf("epoch %d: offenders out of order at %d: %d > %d",
					r.Epoch, i, o.Syscalls, r.TopOffenders[i-1].Syscalls)
			}
		}
	}
	out := RenderRollup(rollups[len(rollups)-1])
	if !strings.Contains(out, "top offenders") {
		t.Errorf("RenderRollup misses offenders section:\n%s", out)
	}
}

// TestFleetAttributionParallelDeterminism pins the merge invariant: the
// rollup's offender ranking — a node-ID-order fold of per-node sketch
// clones — is bit-identical at any lockstep worker count.
func TestFleetAttributionParallelDeterminism(t *testing.T) {
	run := func(par int) []byte {
		c := attrCluster(par)
		defer c.Close()
		data, err := json.Marshal(c.Run(3))
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return data
	}
	base := run(1)
	for _, par := range []int{2, 3} {
		if got := run(par); !bytes.Equal(got, base) {
			t.Errorf("parallelism %d diverges from sequential run:\n seq: %s\n par: %s",
				par, base, got)
		}
	}
}

// TestFleetAttributionOffByDefault pins the opt-in: a cluster without
// Options.Attribution produces rollups with no offender section, so the
// probe's per-syscall cost never perturbs default-configuration runs.
func TestFleetAttributionOffByDefault(t *testing.T) {
	c := NewCluster(Options{
		Nodes:       DefaultSpecs(2),
		Level:       0.5,
		Scrape:      ScrapeConfig{Interval: 100 * time.Millisecond},
		Warmup:      200 * time.Millisecond,
		Parallelism: 1,
	})
	defer c.Close()
	for _, r := range c.Run(2) {
		if r.TopOffenders != nil {
			t.Fatalf("epoch %d: offenders present without Attribution", r.Epoch)
		}
	}
}
