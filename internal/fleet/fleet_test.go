package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"reqlens/internal/faults"
	"reqlens/internal/harness"
	"reqlens/internal/resilience"
	"reqlens/internal/sim"
)

// quickSweep is the reduced-scale sweep configuration the tests share:
// two levels, four heterogeneous nodes, three scrape epochs with jitter
// and a 20% miss rate, so every scrape-plane path is exercised.
func quickSweep(par int) (harness.ExpOptions, SweepOptions) {
	opt := harness.Quick()
	opt.Levels = []float64{0.3, 0.8}
	opt.Parallelism = par
	fopt := SweepOptions{
		Nodes:  DefaultSpecs(4),
		Epochs: 3,
		Scrape: ScrapeConfig{
			Interval: 100 * time.Millisecond,
			Skew:     20 * time.Millisecond,
			MissRate: 0.2,
		},
		ClusterParallelism: par,
	}
	return opt, fopt
}

// TestFleetParallelDeterminism is the tentpole invariant: a fleet sweep
// is bit-identical at any parallelism — both the engine's point workers
// and the lockstep workers inside each cluster. Serialized results are
// compared byte-for-byte at parallelism 1, 4 and GOMAXPROCS.
func TestFleetParallelDeterminism(t *testing.T) {
	run := func(par int) []byte {
		opt, fopt := quickSweep(par)
		res := Sweep(opt, fopt)
		data, err := json.Marshal(res)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return data
	}
	base := run(1)
	for _, par := range []int{4, runtime.GOMAXPROCS(0)} {
		if got := run(par); !bytes.Equal(got, base) {
			t.Errorf("parallelism %d diverges from sequential run:\n seq: %s\n par: %s",
				par, base, got)
		}
	}
}

// TestFleetSweepShape sanity-checks the sweep output: higher load means
// higher cluster throughput, every level carries its rollup series and
// per-node ground truth, and observed RPS tracks real RPS.
func TestFleetSweepShape(t *testing.T) {
	opt, fopt := quickSweep(2)
	res := Sweep(opt, fopt)
	if res.Nodes != 4 || len(res.Points) != 2 {
		t.Fatalf("unexpected shape: %d nodes, %d points", res.Nodes, len(res.Points))
	}
	lo, hi := res.Points[0], res.Points[1]
	if lo.Gap || hi.Gap {
		t.Fatalf("unexpected gaps: %+v", res.Gaps)
	}
	if len(lo.Rollups) != fopt.Epochs || len(lo.Truth) != 4 {
		t.Fatalf("level 0.3: %d rollups, %d truths", len(lo.Rollups), len(lo.Truth))
	}
	if hi.RealRPS <= lo.RealRPS {
		t.Errorf("real RPS did not grow with load: %.1f -> %.1f", lo.RealRPS, hi.RealRPS)
	}
	for _, p := range res.Points {
		if p.ObsvRPS <= 0 {
			t.Errorf("level %.2f: no observed throughput", p.Level)
		}
		ratio := p.ObsvRPS / p.RealRPS
		if ratio < 0.5 || ratio > 2.0 {
			t.Errorf("level %.2f: obsv %.1f vs real %.1f (ratio %.2f)",
				p.Level, p.ObsvRPS, p.RealRPS, ratio)
		}
	}
}

// TestFleetFaultIsolation pins the blast radius of per-node fault
// plans: arming a plan on node 0 must leave every other node's scraped
// export byte-identical to the unfaulted run — the nodes share nothing
// but the lockstep barrier.
func TestFleetFaultIsolation(t *testing.T) {
	run := func(plan faults.Plan) [][][]byte {
		specs := DefaultSpecs(3)
		specs[0].Plan = plan
		c := NewCluster(Options{
			Seed:   7,
			Nodes:  specs,
			Level:  0.5,
			Scrape: ScrapeConfig{Interval: 100 * time.Millisecond, Skew: -1},
			Warmup: 300 * time.Millisecond,
			// Parallel advancement on purpose: isolation must hold under
			// concurrent lockstep workers, not just sequentially.
			Parallelism: 3,
		})
		defer c.Close()
		epochs := make([][][]byte, 0, 3)
		for e := 0; e < 3; e++ {
			c.ScrapeEpoch()
			raws := make([][]byte, len(c.Nodes))
			for id := range c.Nodes {
				s, ok := c.Sample(id)
				if !ok {
					t.Fatalf("epoch %d: node %d never scraped", e, id)
				}
				raws[id] = append([]byte(nil), s.Raw...)
			}
			epochs = append(epochs, raws)
		}
		return epochs
	}

	clean := run(faults.Plan{})
	faulted := run(faults.NoisyNeighborPlan(4))

	node0Differs := false
	for e := range clean {
		for id := 1; id < 3; id++ {
			if !bytes.Equal(clean[e][id], faulted[e][id]) {
				t.Errorf("epoch %d: node %d export changed by a fault on node 0", e, id)
			}
		}
		if !bytes.Equal(clean[e][0], faulted[e][0]) {
			node0Differs = true
		}
	}
	if !node0Differs {
		t.Error("fault plan on node 0 left its own exports untouched; injection is dead")
	}
}

// TestScrapeMissesBecomeStaleGaps drives the plane at 100% miss rate:
// no node is ever scraped, so every rollup must report the whole fleet
// stale with zero fresh contributors — and a zero global RPS that comes
// from having no data, never from zero-filling.
func TestScrapeMissesBecomeStaleGaps(t *testing.T) {
	c := NewCluster(Options{
		Seed:   3,
		Nodes:  DefaultSpecs(2),
		Level:  0.3,
		Scrape: ScrapeConfig{Interval: 50 * time.Millisecond, MissRate: 1},
		Warmup: 200 * time.Millisecond,
	})
	defer c.Close()
	for _, r := range c.Run(2) {
		if r.Fresh != 0 || len(r.Stale) != 2 || r.Missed != 2 {
			t.Errorf("epoch %d: fresh=%d stale=%v missed=%d; want 0/[0 1]/2",
				r.Epoch, r.Fresh, r.Stale, r.Missed)
		}
		if r.GlobalObsvRPS != 0 || r.SaturatedNodes != 0 {
			t.Errorf("epoch %d: stale fleet produced non-empty sums: %+v", r.Epoch, r)
		}
		if len(r.TopSaturated) != 0 || len(r.TopNoisy) != 0 {
			t.Errorf("epoch %d: stale fleet produced rankings", r.Epoch)
		}
	}
	if c.MissedScrapes() != 4 {
		t.Errorf("missed scrapes = %d, want 4", c.MissedScrapes())
	}
}

// TestRollupExcludesStaleNotZeroFill is the white-box gap-convention
// check: a stale node contributes nothing to sums or denominators —
// excluding it is observably different from folding in a zero.
func TestRollupExcludesStaleNotZeroFill(t *testing.T) {
	at := sim.Time(0).Add(time.Second)
	staleness := 200 * time.Millisecond
	fresh := &Node{ID: 0, lastOK: true, last: Sample{Node: 0, At: at,
		Metrics: map[string]float64{metricObsvRPS: 100, metricSaturation: 0.95}}}
	aged := &Node{ID: 1, lastOK: true, last: Sample{Node: 1, At: at.Add(-time.Second),
		Metrics: map[string]float64{metricObsvRPS: 50, metricSaturation: 0.5}}}
	never := &Node{ID: 2}

	r := computeRollup(1, at, []*Node{fresh, aged, never}, 2, 0, staleness)
	if r.Fresh != 1 {
		t.Fatalf("fresh = %d, want 1", r.Fresh)
	}
	if got, want := fmt.Sprint(r.Stale), "[1 2]"; got != want {
		t.Errorf("stale = %s, want %s", got, want)
	}
	if r.GlobalObsvRPS != 100 {
		t.Errorf("global RPS = %v; stale node leaked into the sum", r.GlobalObsvRPS)
	}
	// Zero-filling the two stale nodes would drag the mean to 0.95/3;
	// the gap convention keeps the denominator at the fresh count.
	if r.MeanSaturation != 0.95 {
		t.Errorf("mean saturation = %v, want 0.95 (fresh-only denominator)", r.MeanSaturation)
	}
	if r.SaturatedNodes != 1 {
		t.Errorf("saturated = %d, want 1", r.SaturatedNodes)
	}
}

// TestTopByRanking pins the ranking order and the node-ID tie-break
// that keeps rollup rankings stable across runs.
func TestTopByRanking(t *testing.T) {
	stats := []NodeStat{
		{Node: 3, Saturation: 0.5},
		{Node: 1, Saturation: 0.9},
		{Node: 2, Saturation: 0.9},
		{Node: 0, Saturation: 0.1},
	}
	top := topBy(stats, 3, func(a, b NodeStat) bool { return a.Saturation > b.Saturation })
	got := fmt.Sprintf("%d,%d,%d", top[0].Node, top[1].Node, top[2].Node)
	if got != "1,2,3" {
		t.Errorf("ranking = %s, want 1,2,3 (ties break by node ID)", got)
	}
	if topBy(stats, 0, nil) != nil || topBy(nil, 3, nil) != nil {
		t.Error("degenerate topBy inputs should return nil")
	}
	if n := len(topBy(stats, 10, func(a, b NodeStat) bool { return a.Node < b.Node })); n != 4 {
		t.Errorf("k past len returned %d entries, want 4", n)
	}
}

// TestFleetSweepGapMarking proves a supervision-killed cluster becomes
// an explicit gap row, with its level restored for the renderer.
func TestFleetSweepGapMarking(t *testing.T) {
	opt, fopt := quickSweep(1)
	fopt.Scrape.MissRate = 0
	opt.Chaos = &resilience.Chaos{PanicNth: 2} // second point's first attempt panics
	res := Sweep(opt, fopt)
	if !res.Points[1].Gap || res.Points[1].Level != 0.8 {
		t.Fatalf("point 1 not marked as a gap: %+v", res.Points[1])
	}
	if res.Points[0].Gap {
		t.Fatalf("point 0 collaterally gapped")
	}
	if len(res.Gaps) != 1 || res.Gaps[0] != "fleet level=0.80" {
		t.Errorf("gap labels = %v", res.Gaps)
	}
	out := RenderSweep(res)
	if !strings.Contains(out, gapMark) || !strings.Contains(out, "gaps ("+gapMark+"): fleet level=0.80") {
		t.Errorf("renderer did not mark the gap:\n%s", out)
	}
}

// TestRenderStaleFootnote pins the renderer side of the staleness
// convention: a sweep whose rollups excluded stale nodes must carry the
// footnote, and a rollup's stale list must print as an explicit
// exclusion — not silently fold into the sums.
func TestRenderStaleFootnote(t *testing.T) {
	res := SweepResult{Nodes: 2, Points: []LevelPoint{
		{Level: 0.3, RealRPS: 100, ObsvRPS: 98, Rollups: []Rollup{{MeanSaturation: 0.4}}},
		{Level: 0.6, RealRPS: 200, ObsvRPS: 150, StaleEpochs: 1,
			Rollups: []Rollup{{MeanSaturation: 0.8, Stale: []int{1}}}},
	}}
	out := RenderSweep(res)
	if !strings.Contains(out, "* = one or more epochs excluded stale nodes") {
		t.Errorf("missing staleness footnote:\n%s", out)
	}
	if !strings.Contains(out, "150.0*") {
		t.Errorf("stale level's obsv cell not marked:\n%s", out)
	}

	clean := RenderSweep(SweepResult{Nodes: 2, Points: []LevelPoint{{Level: 0.3}}})
	if strings.Contains(clean, "excluded stale nodes") {
		t.Errorf("footnote printed with no stale epochs:\n%s", clean)
	}

	roll := RenderRollup(Rollup{Epoch: 2, GlobalObsvRPS: 50, Fresh: 1, Stale: []int{0, 2},
		TopSaturated: []NodeStat{{Node: 1, Saturation: 0.7}},
		TopNoisy:     []NodeStat{{Node: 1, SendVarUS2: 12.5}}})
	if !strings.Contains(roll, "stale ("+gapMark+", excluded from sums): node0, node2") {
		t.Errorf("rollup stale list not rendered:\n%s", roll)
	}
	if !strings.Contains(roll, "node1=0.700") || !strings.Contains(roll, "node1=12.5") {
		t.Errorf("rollup rankings not rendered:\n%s", roll)
	}
}

// TestNodeSpecDefaults covers weight defaulting and the heterogeneous
// default mix.
func TestNodeSpecDefaults(t *testing.T) {
	if (NodeSpec{}).weight() != 1 {
		t.Error("zero weight should default to 1")
	}
	if (NodeSpec{Weight: 2.5}).weight() != 2.5 {
		t.Error("explicit weight ignored")
	}
	specs := DefaultSpecs(7)
	if len(specs) != 7 {
		t.Fatalf("len = %d", len(specs))
	}
	if specs[0].Workload.Name == specs[1].Workload.Name {
		t.Error("default specs are not heterogeneous")
	}
	if specs[0].Workload.Name != specs[5].Workload.Name {
		t.Error("default specs should cycle the workload mix")
	}
}
