package fleet

import (
	"fmt"
	"sort"
	"time"

	"reqlens/internal/probes"
	"reqlens/internal/sim"
)

// Sample is one node's scraped, parsed export.
type Sample struct {
	Node int
	At   sim.Time // sim instant the scrape completed (includes jitter)

	// Metrics is the flat name -> value view ParseProm reconstructs
	// from the node's Prometheus text. The round-trip is lossless
	// (telemetry.WriteProm pins the formatting), so these equal the
	// exporter's values bit-for-bit.
	Metrics map[string]float64

	// Raw is the exported text itself. Tests compare it byte-for-byte
	// across runs (fault isolation, determinism); renderers ignore it.
	Raw []byte `json:"-"`
}

// NodeStat is one node's entry in a rollup ranking.
type NodeStat struct {
	Node       int
	ObsvRPS    float64
	Saturation float64 // observed RPS / the node's nominal failure RPS
	SendVarUS2 float64
	PollMeanNS float64

	// Wait-state shares of the server's scheduler-accounted time in the
	// scrape window (sum to 1). Zero-valued when the cluster runs
	// without Options.WaitStates.
	OnCPUShare    float64 `json:",omitempty"`
	RunnableShare float64 `json:",omitempty"`
	BlockedShare  float64 `json:",omitempty"`
}

// Rollup is the cluster-level view of one scrape epoch, computed purely
// from scraped samples — no ground truth. Nodes whose last successful
// scrape is older than the staleness bound contribute nothing: they are
// listed in Stale and excluded from every sum and ranking, following
// the repo's gap convention (missing data is reported missing, never
// zero-filled — a zero RPS from a silent node would read as an outage
// that never happened).
type Rollup struct {
	Epoch int
	At    sim.Time // nominal epoch instant (before per-node jitter)

	// GlobalObsvRPS sums the fresh nodes' observed RPS — the cluster
	// throughput the in-kernel plane reports.
	GlobalObsvRPS float64

	// MeanSaturation averages fresh nodes' saturation.
	MeanSaturation float64

	// SaturatedNodes counts fresh nodes at or past saturationThreshold.
	SaturatedNodes int

	// Fresh counts nodes contributing to this rollup; Stale lists the
	// node IDs excluded for staleness, in ID order. Missed counts the
	// scrapes that failed *this epoch* (a missed scrape only becomes a
	// stale mark once the node's last good sample ages past the bound).
	Fresh  int
	Stale  []int `json:",omitempty"`
	Missed int

	// TopSaturated and TopNoisy rank the fresh nodes by saturation and
	// by send-delta variance (the paper's Eq. 2 signal — the "noisy
	// node" fingerprint). Ties break by node ID, so rankings are stable
	// across runs and worker counts.
	TopSaturated []NodeStat `json:",omitempty"`
	TopNoisy     []NodeStat `json:",omitempty"`

	// TopQueued ranks the fresh nodes by runnable (runqueue-wait) share
	// — the wait-state fingerprint of a server losing its p99 to CPU
	// queueing rather than to I/O or the network. Nil unless the
	// cluster runs with Options.WaitStates: a fleet without the sched
	// probes has no queueing signal, which is different from measuring
	// zero queueing.
	TopQueued []NodeStat `json:",omitempty"`

	// TopOffenders ranks processes cluster-wide by sketch-estimated
	// syscall activity: the fresh nodes' attribution scrapes merged in
	// node-ID order (count-min merge is element-wise addition and
	// HashPipe merge a deterministic union-reinsert, so the fold is
	// commutative and bit-stable at any worker count). Nil unless the
	// cluster runs with Options.Attribution. In this model every node's
	// kernel assigns the same tgids, so a row aggregates the same
	// logical process across nodes — the "which service is hammering
	// the fleet" view.
	TopOffenders []probes.Offender `json:",omitempty"`
}

// saturationThreshold is the observed-saturation level at which a node
// counts as saturated in rollups. Slightly under 1.0: the send-rate
// estimate flattens at capacity, and the paper's failure points sit at
// the knee rather than past it.
const saturationThreshold = 0.9

// computeRollup folds the nodes' freshest samples into one epoch
// rollup. A node is stale when it has never been scraped or when its
// last successful sample is older than the staleness bound at the
// epoch's nominal instant. Nodes are folded in ID order, so float sums
// are bit-stable at any worker count.
func computeRollup(epoch int, at sim.Time, nodes []*Node, topK int, missed int, staleness time.Duration) Rollup {
	r := Rollup{Epoch: epoch, At: at, Missed: missed}
	var stats, waitStats []NodeStat
	for _, n := range nodes {
		if !n.lastOK || at.Sub(n.last.At) > staleness {
			r.Stale = append(r.Stale, n.ID)
			continue
		}
		m := n.last.Metrics
		st := NodeStat{
			Node:       n.ID,
			ObsvRPS:    m[metricObsvRPS],
			Saturation: m[metricSaturation],
			SendVarUS2: m[metricSendVarUS2],
			PollMeanNS: m[metricPollMeanNS],
		}
		if _, ok := m[metricWaitRunnable]; ok {
			st.OnCPUShare = m[metricWaitOnCPU]
			st.RunnableShare = m[metricWaitRunnable]
			st.BlockedShare = m[metricWaitBlocked]
			waitStats = append(waitStats, st)
		}
		stats = append(stats, st)
		r.GlobalObsvRPS += st.ObsvRPS
		r.MeanSaturation += st.Saturation
		if st.Saturation >= saturationThreshold {
			r.SaturatedNodes++
		}
	}
	r.Fresh = len(stats)
	if r.Fresh > 0 {
		r.MeanSaturation /= float64(r.Fresh)
	}
	r.TopSaturated = topBy(stats, topK, func(a, b NodeStat) bool { return a.Saturation > b.Saturation })
	r.TopNoisy = topBy(stats, topK, func(a, b NodeStat) bool { return a.SendVarUS2 > b.SendVarUS2 })
	r.TopQueued = topBy(waitStats, topK, func(a, b NodeStat) bool { return a.RunnableShare > b.RunnableShare })
	r.TopOffenders = mergeOffenders(nodes, at, staleness, topK)
	return r
}

// mergeOffenders folds the fresh nodes' attribution scrapes (same
// staleness predicate as the metric fold) into one cluster-wide sketch
// set and reads its top-K. The accumulator is a clone, so per-node
// scrapes survive for later epochs. Returns nil when no fresh node
// carries sketches (attribution off, or all stale).
func mergeOffenders(nodes []*Node, at sim.Time, staleness time.Duration, topK int) []probes.Offender {
	var acc probes.AttrSketches
	merged := false
	for _, n := range nodes {
		if !n.lastAttrOK || !n.lastOK || at.Sub(n.last.At) > staleness {
			continue
		}
		if !merged {
			acc = n.lastAttr.Clone()
			merged = true
			continue
		}
		if err := acc.Merge(n.lastAttr); err != nil {
			// Every node builds its sketches from the same defaulted
			// AttributionConfig; a geometry mismatch is a bug.
			panic(fmt.Sprintf("fleet: attribution merge: %v", err))
		}
	}
	if !merged {
		return nil
	}
	return acc.TopOffenders(topK)
}

// topBy returns the k highest-ranked stats under less (a strict
// "better-than" order), ties broken by node ID for run-to-run
// stability.
func topBy(stats []NodeStat, k int, better func(a, b NodeStat) bool) []NodeStat {
	if k <= 0 || len(stats) == 0 {
		return nil
	}
	s := make([]NodeStat, len(stats))
	copy(s, stats)
	sort.SliceStable(s, func(i, j int) bool {
		if better(s[i], s[j]) != better(s[j], s[i]) {
			return better(s[i], s[j])
		}
		return s[i].Node < s[j].Node
	})
	if k > len(s) {
		k = len(s)
	}
	return s[:k]
}
