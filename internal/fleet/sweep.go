package fleet

import (
	"fmt"
	"runtime"

	"reqlens/internal/harness"
)

// levelSeedStride separates the cluster seeds of a sweep's load levels
// (see nodeSeedStride in cluster.go for the intra-cluster stride).
const levelSeedStride = 1_000_003

// SweepOptions shapes the fleet saturation sweep on top of the shared
// harness.ExpOptions (which contributes Seed, Levels, Warmup,
// Parallelism and the whole supervision/telemetry/journal stack).
type SweepOptions struct {
	// Nodes are the cluster members every level runs. Empty defaults to
	// DefaultSpecs(8).
	Nodes []NodeSpec

	// Epochs is the number of scrape rounds per level (0 defaults to 8).
	Epochs int

	// Scrape configures the aggregation plane (zero values default per
	// ScrapeConfig).
	Scrape ScrapeConfig

	// TopK sizes the rollup rankings (0 defaults to 3).
	TopK int

	// ClusterParallelism bounds the lockstep workers inside each
	// cluster. 0 inherits the experiment's Parallelism (resolved like
	// the engine resolves it: 0 means GOMAXPROCS). Results are
	// identical at any setting.
	ClusterParallelism int
}

// withDefaults resolves the zero values against the experiment options.
func (f SweepOptions) withDefaults(opt harness.ExpOptions) SweepOptions {
	if len(f.Nodes) == 0 {
		f.Nodes = DefaultSpecs(8)
	}
	if f.Epochs <= 0 {
		f.Epochs = 8
	}
	if f.TopK <= 0 {
		f.TopK = 3
	}
	if f.ClusterParallelism <= 0 {
		f.ClusterParallelism = opt.Parallelism
	}
	if f.ClusterParallelism <= 0 {
		f.ClusterParallelism = runtime.GOMAXPROCS(0)
	}
	f.Scrape = f.Scrape.withDefaults()
	return f
}

// LevelPoint is one load level of a fleet sweep: the full rollup
// series the aggregation plane computed plus the per-node ground truth
// the clients measured.
type LevelPoint struct {
	Level   float64
	Nodes   int
	Rollups []Rollup
	Truth   []Truth

	// RealRPS sums the nodes' client-measured throughput; ObsvRPS is
	// the final epoch's scraped cluster throughput — the pair the
	// paper's Fig. 2 correlates, lifted to cluster scale.
	RealRPS float64
	ObsvRPS float64

	// QoSFails counts nodes whose client-side p99 violated their QoS.
	QoSFails int

	// MissedScrapes counts scrape attempts the plane lost across the
	// run; StaleEpochs counts epochs whose rollup excluded at least one
	// stale node.
	MissedScrapes int
	StaleEpochs   int

	// Gap marks a level that failed under supervision: only Level is
	// meaningful and renderers print the row as missing. Absent from
	// JSON on complete runs.
	Gap bool `json:",omitempty"`
}

// SweepResult is a fleet saturation sweep: one cluster run per load
// level, each a supervised engine point.
type SweepResult struct {
	Nodes  int
	Points []LevelPoint

	// Gaps lists the labels of levels lost to supervision. Absent from
	// JSON on complete runs.
	Gaps []string `json:",omitempty"`
}

// sweepLevel runs one cluster at one load level. Pure in (opt, fopt,
// li): the cluster seed derives from the root seed and the level index
// only, so the result is bit-identical at any engine or lockstep
// parallelism — and across supervision retries.
func sweepLevel(opt harness.ExpOptions, fopt SweepOptions, pc harness.PointCtx, li int) LevelPoint {
	level := opt.Levels[li]
	reg, done := opt.PointTelemetry(fmt.Sprintf("fleet level=%.2f", level))
	defer done()
	c := NewCluster(Options{
		Seed:        opt.Seed + int64(li)*levelSeedStride,
		Nodes:       fopt.Nodes,
		Level:       level,
		Scrape:      fopt.Scrape,
		TopK:        fopt.TopK,
		Warmup:      opt.Warmup,
		Parallelism: fopt.ClusterParallelism,
		Clock:       pc.Clock,
		Telemetry:   reg,
	})
	// Deferred so a deadline kill unwinding out of any node's event loop
	// still drains every node's goroutines instead of leaking them.
	defer c.Close()
	p := LevelPoint{
		Level:   level,
		Nodes:   len(c.Nodes),
		Rollups: c.Run(fopt.Epochs),
		Truth:   c.GroundTruth(),
	}
	for _, t := range p.Truth {
		p.RealRPS += t.RealRPS
		if t.QoSFail {
			p.QoSFails++
		}
	}
	if n := len(p.Rollups); n > 0 {
		p.ObsvRPS = p.Rollups[n-1].GlobalObsvRPS
	}
	p.MissedScrapes = c.MissedScrapes()
	for _, r := range p.Rollups {
		if len(r.Stale) > 0 {
			p.StaleEpochs++
		}
	}
	return p
}

// Sweep drives the whole fleet across load levels: at each level a
// fresh cluster of fopt.Nodes members splits level * sum(capacity)
// between them, runs fopt.Epochs scrape rounds, and reports the rollup
// series against summed ground truth. Levels run on the harness engine,
// so every cluster is a supervised point with PR 5 deadline/retry/gap
// semantics and checkpoint resume.
func Sweep(opt harness.ExpOptions, fopt SweepOptions) SweepResult {
	opt = opt.WithDefaults()
	fopt = fopt.withDefaults(opt)
	opt, sp := opt.Scope("fleet")
	defer opt.EndScope(sp)
	labels := make([]string, len(opt.Levels))
	for i, l := range opt.Levels {
		labels[i] = fmt.Sprintf("fleet level=%.2f", l)
	}
	points, st := harness.RunPoints(opt, labels,
		func(pc harness.PointCtx, li int) LevelPoint { return sweepLevel(opt, fopt, pc, li) })
	for _, g := range st.Gaps {
		if g.Index >= 0 && g.Index < len(points) {
			points[g.Index] = LevelPoint{Level: opt.Levels[g.Index], Gap: true}
		}
	}
	return SweepResult{Nodes: len(fopt.Nodes), Points: points, Gaps: st.GapLabels()}
}
