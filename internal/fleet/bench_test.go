package fleet

import (
	"fmt"
	"runtime"
	"testing"
	"time"
)

// BenchmarkFleetEpochs measures cluster simulation throughput against
// fleet size: one iteration warms a fresh cluster and drives four
// scrape epochs. Reported metrics: node_epochs/s (scrape rounds
// completed per node per second of wall clock) and events/s (simulator
// events executed across all node environments). scripts/bench.sh
// folds the per-size lines into BENCH_fleet.json.
func BenchmarkFleetEpochs(b *testing.B) {
	for _, nodes := range []int{4, 8, 16, 32} {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			var events uint64
			epochs := 0
			for i := 0; i < b.N; i++ {
				c := NewCluster(Options{
					Seed:        42,
					Nodes:       DefaultSpecs(nodes),
					Level:       0.5,
					Scrape:      ScrapeConfig{Interval: 50 * time.Millisecond},
					Warmup:      100 * time.Millisecond,
					Parallelism: runtime.GOMAXPROCS(0),
				})
				c.Run(4)
				for _, n := range c.Nodes {
					events += n.Rig.Env.Executed()
				}
				epochs += nodes * 4
				c.Close()
			}
			secs := b.Elapsed().Seconds()
			if secs > 0 {
				b.ReportMetric(float64(epochs)/secs, "node_epochs/s")
				b.ReportMetric(float64(events)/secs, "events/s")
			}
		})
	}
}
