package fleet

import (
	"bytes"
	"fmt"
	"time"

	"reqlens/internal/sim"
	"reqlens/internal/telemetry"
)

// ScrapeConfig parameterizes the aggregation plane's pull loop.
type ScrapeConfig struct {
	// Interval is the nominal scrape period (0 defaults to 250ms of
	// simulated time).
	Interval time.Duration

	// Skew bounds the per-node, per-epoch scrape-time jitter: node i's
	// epoch-k scrape lands at nominal + U[0, Skew], modeling scraper
	// fan-out and clock skew between targets. 0 defaults to
	// Interval/10; negative disables jitter.
	Skew time.Duration

	// Staleness is the maximum sample age before a node is marked
	// stale and excluded from rollups (explicit gap, never zero-fill).
	// 0 defaults to 2*Interval + Skew: one missed scrape leaves the
	// previous sample usable, two consecutive misses mark the node.
	Staleness time.Duration

	// MissRate is the probability a scrape attempt fails (exporter
	// timeout, dropped connection). Misses are drawn from each node's
	// private seeded RNG, so a given cluster seed replays the same miss
	// pattern at any parallelism.
	MissRate float64
}

// withDefaults resolves the zero values.
func (s ScrapeConfig) withDefaults() ScrapeConfig {
	if s.Interval <= 0 {
		s.Interval = 250 * time.Millisecond
	}
	if s.Skew == 0 {
		s.Skew = s.Interval / 10
	}
	if s.Skew < 0 {
		s.Skew = 0
	}
	if s.Staleness <= 0 {
		s.Staleness = 2*s.Interval + s.Skew
	}
	return s
}

// Options configures one cluster run.
type Options struct {
	// Seed is the root seed; node i derives its private simulation and
	// scrape-plane seeds from it.
	Seed int64

	// Nodes are the members. Empty is invalid.
	Nodes []NodeSpec

	// Level is the cluster load level: each node's offered rate is
	// Level * FailureRPS * Weight — the open-loop load plane split
	// proportionally to capacity.
	Level float64

	// Scrape configures the aggregation plane.
	Scrape ScrapeConfig

	// TopK sizes the rollup rankings (0 defaults to 3).
	TopK int

	// Attribution attaches the sketch-based attribution pipeline on
	// every node (RigOptions.Attribution) and folds the nodes' sketch
	// scrapes into per-epoch cluster-wide top-K offender rankings.
	// Off by default: the extra probe charges per-syscall cost to the
	// observed kernels, so enabling it perturbs (deterministically)
	// the other metrics.
	Attribution bool

	// WaitStates attaches the scheduler-state observer on every node
	// (RigOptions.WaitStates) and exports each server's on-CPU /
	// runnable / blocked shares per scrape, giving rollups a
	// queued-for-CPU ranking that separates saturated nodes from
	// delayed ones. Off by default for the same reason as Attribution:
	// the sched-hook probes charge (deterministic) cost to the observed
	// kernels.
	WaitStates bool

	// Warmup is simulated time driven before measurement and scraping
	// begin (0 defaults to 1s).
	Warmup time.Duration

	// Parallelism bounds the lockstep workers advancing node
	// simulations concurrently: 0 means one worker per node capped at
	// GOMAXPROCS-like fan-out is NOT applied here — the caller (sweep
	// or command) passes its resolved worker count; 1 is sequential.
	// Results are identical at any setting.
	Parallelism int

	// Clock, when non-nil, is a shared cooperative execution budget
	// for every node environment (supervised fleet points).
	Clock *sim.Clock

	// Telemetry, when non-nil, receives every node registry merged in
	// ID order when the cluster closes.
	Telemetry *telemetry.Registry
}

// withDefaults resolves zero values.
func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.Level <= 0 {
		o.Level = 0.5
	}
	if o.TopK <= 0 {
		o.TopK = 3
	}
	if o.Warmup <= 0 {
		o.Warmup = time.Second
	}
	if o.Parallelism < 1 {
		o.Parallelism = 1
	}
	o.Scrape = o.Scrape.withDefaults()
	return o
}

// nodeSeedStride separates node seeds within a cluster; levelSeedStride
// (in sweep.go) separates clusters within a sweep. Both are primes far
// apart so no two (level, node) pairs of a sweep collide.
const nodeSeedStride = 7919

// Cluster is N nodes on one lockstep timeline plus the scrape plane.
type Cluster struct {
	Nodes []*Node

	opt    Options
	step   *sim.Lockstep
	epoch  int
	warmed bool
}

// NewCluster builds the members and registers them with the lockstep
// coordinator. Call Warmup before Run/ScrapeEpoch, and Close when done
// (it is safe on every path, including a supervision unwind).
func NewCluster(opt Options) *Cluster {
	opt = opt.withDefaults()
	if len(opt.Nodes) == 0 {
		panic("fleet: NewCluster needs at least one node")
	}
	c := &Cluster{opt: opt, step: sim.NewLockstep(opt.Parallelism)}
	for i, spec := range opt.Nodes {
		n := newNode(i, spec, opt.Seed+int64(i)*nodeSeedStride, opt.Level, opt.Clock, opt.Attribution, opt.WaitStates)
		c.Nodes = append(c.Nodes, n)
		c.step.Add(n.Rig.Env)
	}
	return c
}

// Warmup advances every node to the warmup horizon, rebases the
// observers, starts ground-truth measurement, and arms per-node fault
// plans (so fault windows land inside the measured run, per the PR 3
// convention).
func (c *Cluster) Warmup() {
	c.step.AdvanceAll(sim.Time(0).Add(c.opt.Warmup))
	for _, n := range c.Nodes {
		n.Rig.Obs.Sample() // discard: rebase the observation window
		if n.Rig.Wait != nil {
			n.Rig.Wait.Sample() // likewise for the wait-state window
		}
		n.Rig.Client.StartMeasurement()
		if !n.Spec.Plan.Empty() {
			n.Rig.Arm(n.Spec.Plan)
		}
	}
	c.warmed = true
}

// ScrapeEpoch runs one scrape round: every node advances to its own
// jittered scrape instant (lockstep, shardable), the scraper pulls the
// arrived nodes' exports, and the epoch's rollup is computed from the
// freshest samples in node-ID order.
func (c *Cluster) ScrapeEpoch() Rollup {
	if !c.warmed {
		c.Warmup()
	}
	cfg := c.opt.Scrape
	c.epoch++
	nominal := sim.Time(0).Add(c.opt.Warmup + time.Duration(c.epoch)*cfg.Interval)

	// Draw each node's scrape-plane randomness on the coordinator
	// goroutine, in node order, from the node's private RNG: two draws
	// per node per epoch, always both, so the sequence is fixed
	// regardless of outcomes or worker scheduling.
	targets := make([]sim.Time, len(c.Nodes))
	miss := make([]bool, len(c.Nodes))
	for i, n := range c.Nodes {
		jitter := time.Duration(0)
		if cfg.Skew > 0 {
			jitter = time.Duration(n.rng.Int63n(int64(cfg.Skew) + 1))
		}
		miss[i] = n.rng.Float64() < cfg.MissRate
		targets[i] = nominal.Add(jitter)
	}
	c.step.Advance(targets)

	missed := 0
	for i, n := range c.Nodes {
		if miss[i] {
			n.missed++
			missed++
			continue // previous sample stays; ages toward staleness
		}
		raw := n.Export()
		metrics, err := telemetry.ParseProm(bytes.NewReader(raw))
		if err != nil {
			// WriteProm output is ParseProm's own format; failing to
			// read it back is a programming error, not a data error.
			panic(fmt.Sprintf("fleet: node %d export unparsable: %v", n.ID, err))
		}
		n.last = Sample{Node: n.ID, At: targets[i], Metrics: metrics, Raw: raw}
		n.lastOK = true
		if n.Rig.Attr != nil {
			// Scrape the sketch plane alongside the text plane: a
			// consistent clone this epoch's rollup (and any later one,
			// if scrapes start missing) can merge without racing the
			// probe.
			n.lastAttr = n.Rig.Attr.Scrape()
			n.lastAttrOK = true
		}
	}
	return computeRollup(c.epoch, nominal, c.Nodes, c.opt.TopK, missed, cfg.Staleness)
}

// Run warms up (if not already) and executes epochs scrape rounds,
// returning the rollup series.
func (c *Cluster) Run(epochs int) []Rollup {
	rollups := make([]Rollup, 0, epochs)
	for i := 0; i < epochs; i++ {
		rollups = append(rollups, c.ScrapeEpoch())
	}
	return rollups
}

// GroundTruth snapshots every node's client-side view, in node order.
func (c *Cluster) GroundTruth() []Truth {
	ts := make([]Truth, len(c.Nodes))
	for i, n := range c.Nodes {
		ts[i] = n.Truth()
	}
	return ts
}

// MissedScrapes sums the scrapes lost across the run.
func (c *Cluster) MissedScrapes() int {
	total := 0
	for _, n := range c.Nodes {
		total += n.missed
	}
	return total
}

// Sample returns node id's latest successful sample and whether one
// exists (tests and renderers; the rollup path reads the same state).
func (c *Cluster) Sample(id int) (Sample, bool) {
	n := c.Nodes[id]
	return n.last, n.lastOK
}

// Close merges node registries into Options.Telemetry (ID order) and
// shuts every node environment down. Safe to defer before Run: a
// supervision panic unwinding mid-epoch still drains all simulation
// goroutines.
func (c *Cluster) Close() {
	for _, n := range c.Nodes {
		c.opt.Telemetry.Merge(n.Rig.Reg)
	}
	c.step.Shutdown()
}
