// Package machine defines the hardware profiles of the paper's Table I.
//
// A Profile parameterizes the simulated kernel — socket/core/SMT
// topology, timeslice, context-switch and syscall-entry costs, and the
// eBPF per-instruction cost scale — so experiments can demonstrate the
// paper's claim that syscall-derived observability generalizes across
// hardware (TestIntelProfileAlsoWorks re-runs Fig. 2 on the second
// profile).
//
// Key entry points:
//
//   - AMD() — the AMD EPYC 7302 server the paper evaluates on (2
//     sockets x 16 cores x 2 threads, 1.5-3.0 GHz).
//   - Intel() — the Intel Xeon E5-2620 alternative (2 x 8 x 1).
//   - TableI() — renders the paper's Table I from the profiles
//     (`reqlens table1`).
//
// Experiment rigs pin the server workload to an 8-core allocation of
// the chosen profile (workloads.ServerCores), matching the paper's
// containerized placement.
package machine
