package machine

import (
	"fmt"
	"time"
)

// Profile describes one server configuration.
type Profile struct {
	Name           string
	CPUModel       string
	OS             string
	Kernel         string
	Sockets        int
	CoresPerSock   int
	ThreadsPerCore int
	MinMHz         int
	MaxMHz         int
	L1InstCache    string
	L1DataCache    string
	L2Cache        string
	L3Cache        string
	MemoryGB       int
	DiskTB         int

	// Simulation knobs derived from the hardware class.
	ContextSwitchCost time.Duration // scheduler switch overhead
	SyscallCost       time.Duration // base in-kernel cost per syscall
	TimeSlice         time.Duration // scheduler quantum
}

// LogicalCPUs returns the schedulable CPU count.
func (p Profile) LogicalCPUs() int {
	return p.Sockets * p.CoresPerSock * p.ThreadsPerCore
}

// String formats the profile as a Table I style column.
func (p Profile) String() string {
	return fmt.Sprintf("%s (%s, %d sockets x %d cores x %d threads, %d-%d MHz)",
		p.Name, p.CPUModel, p.Sockets, p.CoresPerSock, p.ThreadsPerCore, p.MinMHz, p.MaxMHz)
}

// AMD is the paper's AMD EPYC 7302 server (Table I, left column).
func AMD() Profile {
	return Profile{
		Name:           "AMD",
		CPUModel:       "AMD EPYC 7302",
		OS:             "Ubuntu 20.04.1",
		Kernel:         "5.15.0-52-generic",
		Sockets:        2,
		CoresPerSock:   16,
		ThreadsPerCore: 2,
		MinMHz:         1500,
		MaxMHz:         3000,
		L1InstCache:    "1 MB",
		L1DataCache:    "1 MB",
		L2Cache:        "16 MB",
		L3Cache:        "256 MB",
		MemoryGB:       512,
		DiskTB:         2,

		ContextSwitchCost: 1200 * time.Nanosecond,
		SyscallCost:       900 * time.Nanosecond,
		TimeSlice:         1 * time.Millisecond,
	}
}

// Intel is the paper's Intel Xeon E5-2620 server (Table I, right column).
func Intel() Profile {
	return Profile{
		Name:           "INTEL",
		CPUModel:       "Intel Xeon CPU E5-2620",
		OS:             "Red Hat 4.8.5-36",
		Kernel:         "4.20.13-1.el7.elrepo",
		Sockets:        2,
		CoresPerSock:   8,
		ThreadsPerCore: 1,
		MinMHz:         1200,
		MaxMHz:         3000,
		L1InstCache:    "32 KB",
		L1DataCache:    "32 KB",
		L2Cache:        "256 KB",
		L3Cache:        "20 MB",
		MemoryGB:       128,
		DiskTB:         2,

		ContextSwitchCost: 1600 * time.Nanosecond,
		SyscallCost:       1100 * time.Nanosecond,
		TimeSlice:         1 * time.Millisecond,
	}
}

// TableI renders the paper's Table I for both profiles.
func TableI() string {
	a, b := AMD(), Intel()
	rows := []struct {
		label  string
		av, iv string
	}{
		{"CPU Model", a.CPUModel, b.CPUModel},
		{"OS (Kernel)", fmt.Sprintf("%s (%s)", a.OS, a.Kernel), fmt.Sprintf("%s (%s)", b.OS, b.Kernel)},
		{"Sockets", fmt.Sprint(a.Sockets), fmt.Sprint(b.Sockets)},
		{"Cores/Socket", fmt.Sprint(a.CoresPerSock), fmt.Sprint(b.CoresPerSock)},
		{"Threads/Core", fmt.Sprint(a.ThreadsPerCore), fmt.Sprint(b.ThreadsPerCore)},
		{"Min/Max Frequency", fmt.Sprintf("%d/%d MHz", a.MinMHz, a.MaxMHz), fmt.Sprintf("%d/%d MHz", b.MinMHz, b.MaxMHz)},
		{"L1 Inst/Data Cache", a.L1InstCache + " / " + a.L1DataCache, b.L1InstCache + " / " + b.L1DataCache},
		{"L2 Cache", a.L2Cache, b.L2Cache},
		{"L3 Cache", a.L3Cache, b.L3Cache},
		{"Memory", fmt.Sprintf("%d GB", a.MemoryGB), fmt.Sprintf("%d GB", b.MemoryGB)},
		{"Disk", fmt.Sprintf("%d TB", a.DiskTB), fmt.Sprintf("%d TB", b.DiskTB)},
	}
	out := fmt.Sprintf("%-20s | %-35s | %-35s\n", "", "AMD", "INTEL")
	out += fmt.Sprintf("%s\n", dashes(20+3+35+3+35))
	for _, r := range rows {
		out += fmt.Sprintf("%-20s | %-35s | %-35s\n", r.label, r.av, r.iv)
	}
	return out
}

func dashes(n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = '-'
	}
	return string(b)
}
