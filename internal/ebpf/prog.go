package ebpf

import "fmt"

// ProgramSpec describes a program before loading: its instruction stream,
// the maps referenced by file descriptor, and the size of the context
// struct it will be attached against (the verifier bounds all R1-relative
// reads by it).
type ProgramSpec struct {
	Name    string
	Insns   []Instruction
	Maps    map[int32]Map
	CtxSize int
}

// Program is a verified, loaded eBPF program.
type Program struct {
	name    string
	insns   []Instruction
	maps    map[int32]Map
	ctxSize int
	runs    uint64
	vstates int // abstract states the verifier explored to admit it
}

// Load verifies and loads a program. It fails exactly when the verifier
// rejects the instruction stream.
func Load(spec ProgramSpec) (*Program, error) {
	if spec.CtxSize < 0 {
		return nil, fmt.Errorf("ebpf: negative ctx size")
	}
	maps := spec.Maps
	if maps == nil {
		maps = map[int32]Map{}
	}
	states, err := verify(spec.Insns, maps, spec.CtxSize)
	if err != nil {
		return nil, fmt.Errorf("ebpf: load %q: %w", spec.Name, err)
	}
	insns := make([]Instruction, len(spec.Insns))
	copy(insns, spec.Insns)
	return &Program{name: spec.Name, insns: insns, maps: maps, ctxSize: spec.CtxSize, vstates: states}, nil
}

// MustLoad is Load but panics on error, for statically-known programs.
func MustLoad(spec ProgramSpec) *Program {
	p, err := Load(spec)
	if err != nil {
		panic(err)
	}
	return p
}

// Name returns the program name.
func (p *Program) Name() string { return p.name }

// Len returns the instruction count (slots).
func (p *Program) Len() int { return len(p.insns) }

// CtxSize returns the context size the program was verified against.
func (p *Program) CtxSize() int { return p.ctxSize }

// Runs returns how many times the program has executed.
func (p *Program) Runs() uint64 { return p.runs }

// VerifierStates returns how many abstract states the verifier explored
// to admit this program — its one-time load cost, surfaced by the
// telemetry registry as verifier_states_total.
func (p *Program) VerifierStates() int { return p.vstates }

// Map returns the map loaded at fd, or nil.
func (p *Program) Map(fd int32) Map { return p.maps[fd] }

// Disassemble renders the loaded program.
func (p *Program) Disassemble() string { return Disassemble(p.insns) }

// Run executes the program once against ctx. The context length must
// match the spec's CtxSize. The returned RunStats lets the caller charge
// execution cost to the traced thread.
func (p *Program) Run(ctx []byte, env HelperEnv) (uint64, RunStats, error) {
	if len(ctx) != p.ctxSize {
		return 0, RunStats{}, fmt.Errorf("ebpf: run %q: ctx size %d, verified for %d", p.name, len(ctx), p.ctxSize)
	}
	p.runs++
	return p.run(ctx, env)
}

// FixedEnv is a HelperEnv with fixed values, for tests and offline runs.
type FixedEnv struct {
	TimeNS  uint64
	PidTgid uint64
	CPU     uint32
}

// KtimeGetNS returns the fixed time.
func (f *FixedEnv) KtimeGetNS() uint64 { return f.TimeNS }

// CurrentPidTgid returns the fixed pid/tgid pair.
func (f *FixedEnv) CurrentPidTgid() uint64 { return f.PidTgid }

// SMPProcessorID returns the fixed CPU number.
func (f *FixedEnv) SMPProcessorID() uint32 { return f.CPU }
