package ebpf

import "fmt"

// ProgramSpec describes a program before loading: its instruction stream,
// the maps referenced by file descriptor, the size of the context
// struct it will be attached against (the verifier bounds all R1-relative
// reads by it), and the execution backend to load it for.
type ProgramSpec struct {
	// Name labels the program in errors and diagnostics.
	Name string
	// Insns is the instruction stream submitted to the verifier.
	Insns []Instruction
	// Maps binds file descriptors (the LoadMapFD immediates) to maps.
	Maps map[int32]Map
	// CtxSize is the context struct size the program is verified
	// against.
	CtxSize int
	// Backend selects the execution backend; the zero value
	// (BackendAuto) resolves to DefaultBackend at Load time.
	Backend Backend
}

// Program is a verified, loaded eBPF program.
type Program struct {
	name    string
	insns   []Instruction
	maps    map[int32]Map
	ctxSize int
	runs    uint64
	vstates int     // abstract states the verifier explored to admit it
	backend Backend // resolved at Load: interpreter or compiled
	// Compiled backend state, nil/empty on the interpreter backend. ops
	// is the dispatch table with pairs fused and straight-line blocks
	// chained; opWeights[pc] is the dispatch-step cost of ops[pc] (see
	// vm.steps); opsSingle is the unfused one-op-per-slot table the
	// dispatch loop falls back to near budget exhaustion so budget
	// faults land on the same instruction as the interpreter's.
	ops       []cop
	opsSingle []cop
	opWeights []uint16
	rsCache   *vm // parked run state; see getVM (Run is single-goroutine, like runs)
}

// Load verifies and loads a program. It fails exactly when the verifier
// rejects the instruction stream.
func Load(spec ProgramSpec) (*Program, error) {
	if spec.CtxSize < 0 {
		return nil, fmt.Errorf("ebpf: negative ctx size")
	}
	maps := spec.Maps
	if maps == nil {
		maps = map[int32]Map{}
	}
	states, err := verify(spec.Insns, maps, spec.CtxSize)
	if err != nil {
		return nil, fmt.Errorf("ebpf: load %q: %w", spec.Name, err)
	}
	insns := make([]Instruction, len(spec.Insns))
	copy(insns, spec.Insns)
	backend := spec.Backend
	if backend == BackendAuto {
		backend = DefaultBackend()
	}
	p := &Program{name: spec.Name, insns: insns, maps: maps, ctxSize: spec.CtxSize, vstates: states, backend: backend}
	if backend == BackendCompiled {
		p.ops, p.opsSingle, p.opWeights = compileProgram(p.insns, p.maps)
	}
	return p, nil
}

// MustLoad is Load but panics on error, for statically-known programs.
func MustLoad(spec ProgramSpec) *Program {
	p, err := Load(spec)
	if err != nil {
		panic(err)
	}
	return p
}

// Name returns the program name.
func (p *Program) Name() string { return p.name }

// Len returns the instruction count (slots).
func (p *Program) Len() int { return len(p.insns) }

// CtxSize returns the context size the program was verified against.
func (p *Program) CtxSize() int { return p.ctxSize }

// Runs returns how many times the program has executed.
func (p *Program) Runs() uint64 { return p.runs }

// VerifierStates returns how many abstract states the verifier explored
// to admit this program — its one-time load cost, surfaced by the
// telemetry registry as verifier_states_total.
func (p *Program) VerifierStates() int { return p.vstates }

// Backend returns the execution backend the program was loaded for
// (never BackendAuto: auto resolves at Load time).
func (p *Program) Backend() Backend { return p.backend }

// Map returns the map loaded at fd, or nil.
func (p *Program) Map(fd int32) Map { return p.maps[fd] }

// Disassemble renders the loaded program.
func (p *Program) Disassemble() string { return Disassemble(p.insns) }

// Run executes the program once against ctx on the backend it was
// loaded for. The context length must match the spec's CtxSize. The
// returned RunStats lets the caller charge execution cost to the
// traced thread; both backends report identical stats for identical
// runs (the differential suite enforces it).
//
// Run is not safe for concurrent use of one Program (it updates the
// run counter and, on the compiled backend, recycles per-Program run
// state); each simulated CPU loads its own Program instance.
func (p *Program) Run(ctx []byte, env HelperEnv) (uint64, RunStats, error) {
	if len(ctx) != p.ctxSize {
		return 0, RunStats{}, fmt.Errorf("ebpf: run %q: ctx size %d, verified for %d", p.name, len(ctx), p.ctxSize)
	}
	p.runs++
	if p.ops != nil {
		return p.runCompiled(ctx, env)
	}
	return p.run(ctx, env)
}

// FixedEnv is a HelperEnv with fixed values, for tests and offline runs.
type FixedEnv struct {
	TimeNS  uint64 // value returned by ktime_get_ns
	PidTgid uint64 // value returned by get_current_pid_tgid
	CPU     uint32 // value returned by get_smp_processor_id
}

// KtimeGetNS returns the fixed time.
func (f *FixedEnv) KtimeGetNS() uint64 { return f.TimeNS }

// CurrentPidTgid returns the fixed pid/tgid pair.
func (f *FixedEnv) CurrentPidTgid() uint64 { return f.PidTgid }

// SMPProcessorID returns the fixed CPU number.
func (f *FixedEnv) SMPProcessorID() uint32 { return f.CPU }
