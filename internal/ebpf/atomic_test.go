package ebpf

import (
	"encoding/binary"
	"testing"
)

func TestVMAtomicAddToStack(t *testing.T) {
	prog := []Instruction{
		Mov64Imm(R2, 10),
		StoreMem(R10, -8, R2, SizeDW),
		Mov64Imm(R3, 32),
		AtomicAdd64(R10, -8, R3),
		AtomicAdd64(R10, -8, R3),
		LoadMem(R0, R10, -8, SizeDW),
		Exit(),
	}
	if got := runProg(t, prog, nil, nil); got != 74 {
		t.Fatalf("atomic add result = %d, want 74", got)
	}
}

func TestVMAtomicAdd32Truncates(t *testing.T) {
	a := NewAssembler()
	a.EmitWide(LoadImm64(R2, 0xffff_ffff))
	a.Emit(
		StoreMem(R10, -8, R2, SizeDW),
		Mov64Imm(R3, 1),
		AtomicAdd32(R10, -8, R3), // low word wraps to 0
		LoadMem(R0, R10, -8, SizeDW),
		Exit(),
	)
	if got := runProg(t, a.MustAssemble(), nil, nil); got != 0 {
		t.Fatalf("atomic add32 = %#x, want low word wrapped to 0", got)
	}
}

func TestVMAtomicAddToMapValue(t *testing.T) {
	counts := NewArrayMap("counts", 8, 1)
	a := NewAssembler()
	a.Emit(ebpfKey0()...)
	a.EmitWide(LoadMapFD(R1, 1))
	a.Emit(
		Mov64Reg(R2, R10),
		Add64Imm(R2, -4),
		Call(HelperMapLookupElem),
	)
	a.JumpImm(JmpJEQ, R0, 0, "out")
	a.Emit(
		Mov64Imm(R1, 5),
		AtomicAdd64(R0, 0, R1),
	)
	a.Label("out")
	a.Emit(Mov64Imm(R0, 0), Exit())
	p := MustLoad(ProgramSpec{Name: "t", Insns: a.MustAssemble(), Maps: map[int32]Map{1: counts}})
	for i := 0; i < 3; i++ {
		if _, _, err := p.Run(nil, testEnv); err != nil {
			t.Fatal(err)
		}
	}
	if got := binary.LittleEndian.Uint64(counts.At(0)); got != 15 {
		t.Fatalf("counter = %d, want 15", got)
	}
}

func ebpfKey0() []Instruction {
	return []Instruction{StoreImm(R10, -4, 0, SizeW)}
}

func TestVerifierAtomicRules(t *testing.T) {
	// Uninitialized target: read-modify-write of unwritten stack.
	wantReject(t, []Instruction{
		Mov64Imm(R2, 1),
		AtomicAdd64(R10, -8, R2),
		Mov64Imm(R0, 0),
		Exit(),
	}, nil, "uninitialized stack")

	// Misaligned atomic.
	wantReject(t, []Instruction{
		Mov64Imm(R2, 1),
		StoreMem(R10, -16, R2, SizeDW),
		StoreMem(R10, -8, R2, SizeDW),
		AtomicAdd64(R10, -12, R2),
		Mov64Imm(R0, 0),
		Exit(),
	}, nil, "aligned")

	// Atomic to read-only ctx.
	wantReject(t, []Instruction{
		Mov64Imm(R2, 1),
		AtomicAdd64(R1, 0, R2),
		Mov64Imm(R0, 0),
		Exit(),
	}, nil, "read-only ctx")

	// Narrow atomic widths are invalid.
	wantReject(t, []Instruction{
		Mov64Imm(R2, 1),
		StoreMem(R10, -8, R2, SizeDW),
		{Op: ClassSTX | ModeAtomic | SizeB, Dst: R10, Src: R2, Off: -8, Imm: AtomicAdd},
		Mov64Imm(R0, 0),
		Exit(),
	}, nil, "4- or 8-byte")

	// Valid atomic accepted.
	wantAccept(t, []Instruction{
		Mov64Imm(R2, 0),
		StoreMem(R10, -8, R2, SizeDW),
		Mov64Imm(R3, 1),
		AtomicAdd64(R10, -8, R3),
		LoadMem(R0, R10, -8, SizeDW),
		Exit(),
	}, nil)
}

func TestVMJmp32Comparisons(t *testing.T) {
	mk := func(op uint8, lhs uint64, rhs int32) []Instruction {
		a := NewAssembler()
		a.EmitWide(LoadImm64(R1, lhs))
		a.Emit(JmpImm32(op, R1, rhs, 1))
		a.Emit(Mov64Imm(R0, 0), Exit())
		// taken:
		insns := a.MustAssemble()
		insns = append(insns, Mov64Imm(R0, 1), Exit())
		// fix the jump to land on the taken block
		insns[2].Off = 2
		return insns
	}
	cases := []struct {
		name string
		op   uint8
		lhs  uint64
		rhs  int32
		want uint64
	}{
		// Upper 32 bits must be ignored.
		{"jeq32-ignores-high", JmpJEQ, 0xdead_0000_0005, 5, 1},
		{"jne32-low-equal", JmpJNE, 0xdead_0000_0005, 5, 0},
		{"jsgt32-signed-low", JmpJSGT, 0x0000_0000_ffff_ffff, -2, 1}, // low = -1 > -2
		{"jlt32-unsigned-low", JmpJLT, 0xffff_0000_0000_0001, 2, 1},  // low = 1 < 2
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := runProg(t, mk(c.op, c.lhs, c.rhs), nil, nil); got != c.want {
				t.Fatalf("got %d, want %d", got, c.want)
			}
		})
	}
}

func TestVerifierJmp32Rules(t *testing.T) {
	// Pointer in a 32-bit comparison is rejected.
	wantReject(t, []Instruction{
		Mov64Reg(R2, R10),
		JmpReg32(JmpJEQ, R2, R2, 0),
		Mov64Imm(R0, 0),
		Exit(),
	}, nil, "32-bit comparison")

	// Valid jmp32 accepted and explored on both edges.
	a := NewAssembler()
	a.Emit(Mov64Imm(R1, 7))
	a.Emit(JmpImm32(JmpJGT, R1, 3, 1))
	a.Emit(Mov64Imm(R0, 0))
	a.Emit(Exit())
	insns := a.MustAssemble()
	insns[1].Off = 1 // skip the zeroing mov
	insns = append(insns, Mov64Imm(R0, 1), Exit())
	// Rebuild properly with labels to avoid offset fiddling:
	b := NewAssembler()
	b.Emit(Mov64Imm(R1, 7))
	b.Emit(JmpImm32(JmpJGT, R1, 3, 2))
	b.Emit(Mov64Imm(R0, 0), Exit())
	b.Emit(Mov64Imm(R0, 1), Exit())
	wantAccept(t, b.MustAssemble(), nil)
}

func TestDisassembleNewForms(t *testing.T) {
	if got := AtomicAdd64(R1, -8, R2).String(); got != "xadddw [r1-8], r2" {
		t.Fatalf("atomic disasm = %q", got)
	}
	if got := JmpImm32(JmpJEQ, R1, 5, 2).String(); got != "jeq32 r1, 5, +2" {
		t.Fatalf("jmp32 disasm = %q", got)
	}
}

func TestLRUHashMapEviction(t *testing.T) {
	m := NewLRUHashMap("lru", 8, 8, 3)
	for i := uint64(1); i <= 3; i++ {
		if err := m.Update(u64key(i), u64key(i*10), UpdateAny); err != nil {
			t.Fatal(err)
		}
	}
	// Touch key 1 so key 2 becomes the LRU.
	if _, ok := m.Lookup(u64key(1)); !ok {
		t.Fatal("lookup 1 failed")
	}
	if err := m.Update(u64key(4), u64key(40), UpdateAny); err != nil {
		t.Fatalf("insert at capacity should evict, got %v", err)
	}
	if _, ok := m.Lookup(u64key(2)); ok {
		t.Fatal("key 2 should have been evicted (LRU)")
	}
	for _, k := range []uint64{1, 3, 4} {
		if _, ok := m.Lookup(u64key(k)); !ok {
			t.Fatalf("key %d should survive", k)
		}
	}
	if m.Evictions() != 1 {
		t.Fatalf("Evictions = %d", m.Evictions())
	}
	if m.Len() != 3 {
		t.Fatalf("Len = %d", m.Len())
	}
}

func TestLRUHashMapFlagsAndErrors(t *testing.T) {
	m := NewLRUHashMap("lru", 8, 8, 2)
	if err := m.Update(u64key(1), u64key(1), UpdateExist); err != ErrKeyNotExist {
		t.Fatalf("UpdateExist on missing: %v", err)
	}
	if err := m.Update(u64key(1), u64key(1), UpdateNoExist); err != nil {
		t.Fatal(err)
	}
	if err := m.Update(u64key(1), u64key(2), UpdateNoExist); err != ErrKeyExist {
		t.Fatalf("NoExist on present: %v", err)
	}
	if err := m.Update([]byte{1}, u64key(1), UpdateAny); err != ErrBadKeySize {
		t.Fatalf("short key: %v", err)
	}
	if err := m.Delete(u64key(1)); err != nil {
		t.Fatal(err)
	}
	if err := m.Delete(u64key(1)); err != ErrKeyNotExist {
		t.Fatalf("double delete: %v", err)
	}
}

func TestLRUHashMapUsableFromPrograms(t *testing.T) {
	// The paper's start-timestamp map as an LRU: never fails under churn.
	lru := NewLRUHashMap("start", 8, 8, 2)
	runner := func(key uint64) {
		a := NewAssembler()
		a.EmitWide(LoadImm64(R2, key))
		a.Emit(
			StoreMem(R10, -8, R2, SizeDW),
			StoreMem(R10, -16, R2, SizeDW),
		)
		a.EmitWide(LoadMapFD(R1, 1))
		a.Emit(
			Mov64Reg(R2, R10),
			Add64Imm(R2, -8),
			Mov64Reg(R3, R10),
			Add64Imm(R3, -16),
			Mov64Imm(R4, 0),
			Call(HelperMapUpdateElem),
			Mov64Reg(R0, R0),
			Exit(),
		)
		p := MustLoad(ProgramSpec{Name: "w", Insns: a.MustAssemble(), Maps: map[int32]Map{1: lru}})
		ret, _, err := p.Run(nil, testEnv)
		if err != nil {
			panic(err)
		}
		if ret != 0 {
			panic("update failed")
		}
	}
	for key := uint64(1); key <= 10; key++ {
		runner(key)
	}
	if lru.Len() != 2 || lru.Evictions() != 8 {
		t.Fatalf("len=%d evictions=%d", lru.Len(), lru.Evictions())
	}
}
