package ebpf

import (
	"strings"
	"testing"
)

// loadErr loads a program with a default 64-byte ctx and returns the error.
func loadErr(t *testing.T, insns []Instruction, maps map[int32]Map) error {
	t.Helper()
	_, err := Load(ProgramSpec{Name: "test", Insns: insns, Maps: maps, CtxSize: 64})
	return err
}

func wantReject(t *testing.T, insns []Instruction, maps map[int32]Map, substr string) {
	t.Helper()
	err := loadErr(t, insns, maps)
	if err == nil {
		t.Fatalf("verifier accepted bad program (want %q)", substr)
	}
	if !strings.Contains(err.Error(), substr) {
		t.Fatalf("error %q does not mention %q", err, substr)
	}
}

func wantAccept(t *testing.T, insns []Instruction, maps map[int32]Map) *Program {
	t.Helper()
	p, err := Load(ProgramSpec{Name: "test", Insns: insns, Maps: maps, CtxSize: 64})
	if err != nil {
		t.Fatalf("verifier rejected good program: %v", err)
	}
	return p
}

func TestVerifierAcceptsMinimal(t *testing.T) {
	wantAccept(t, []Instruction{Mov64Imm(R0, 0), Exit()}, nil)
}

func TestVerifierRejectsEmpty(t *testing.T) {
	wantReject(t, nil, nil, "empty program")
}

func TestVerifierRejectsTooLong(t *testing.T) {
	insns := make([]Instruction, MaxInstructions+1)
	for i := range insns {
		insns[i] = Mov64Imm(R0, 0)
	}
	insns[len(insns)-1] = Exit()
	wantReject(t, insns, nil, "too long")
}

func TestVerifierRejectsUninitR0AtExit(t *testing.T) {
	wantReject(t, []Instruction{Exit()}, nil, "R0")
}

func TestVerifierRejectsUninitRegisterRead(t *testing.T) {
	wantReject(t, []Instruction{
		Mov64Reg(R0, R5), // R5 never written
		Exit(),
	}, nil, "uninitialized register r5")
}

func TestVerifierRejectsFallOffEnd(t *testing.T) {
	wantReject(t, []Instruction{Mov64Imm(R0, 0)}, nil, "falls off the end")
}

func TestVerifierRejectsBackEdge(t *testing.T) {
	a := NewAssembler()
	a.Emit(Mov64Imm(R0, 0))
	a.Label("top")
	a.Emit(Add64Imm(R0, 1))
	a.JumpImm(JmpJLT, R0, 10, "top")
	a.Emit(Exit())
	wantReject(t, a.MustAssemble(), nil, "back-edge")
}

func TestVerifierRejectsInfiniteJa(t *testing.T) {
	wantReject(t, []Instruction{Ja(-1)}, nil, "back-edge")
}

func TestVerifierRejectsJumpOutOfRange(t *testing.T) {
	wantReject(t, []Instruction{
		Mov64Imm(R0, 0),
		JmpImm(JmpJEQ, R0, 0, 100),
		Exit(),
	}, nil, "out of range")
}

func TestVerifierRejectsWriteToR10(t *testing.T) {
	wantReject(t, []Instruction{Mov64Imm(R10, 0), Exit()}, nil, "frame pointer")
}

func TestVerifierRejectsDivByZeroImm(t *testing.T) {
	wantReject(t, []Instruction{
		Mov64Imm(R0, 10),
		Div64Imm(R0, 0),
		Exit(),
	}, nil, "division by zero")
	wantReject(t, []Instruction{
		Mov64Imm(R0, 10),
		Mod64Imm(R0, 0),
		Exit(),
	}, nil, "division by zero")
}

func TestVerifierRejectsUnknownHelper(t *testing.T) {
	wantReject(t, []Instruction{
		Call(9999),
		Exit(),
	}, nil, "unknown helper")
}

func TestVerifierRejectsTruncatedWideLoad(t *testing.T) {
	pair := LoadImm64(R1, 1)
	wantReject(t, []Instruction{pair[0]}, nil, "truncated lddw")
}

func TestVerifierRejectsJumpIntoWideLoad(t *testing.T) {
	a := NewAssembler()
	a.Emit(Mov64Imm(R0, 0))
	a.Emit(JmpImm(JmpJEQ, R0, 0, 1)) // jumps into the second lddw slot
	pair := LoadImm64(R1, 1)
	a.Emit(pair[0], pair[1])
	a.Emit(Exit())
	wantReject(t, a.MustAssemble(), nil, "middle of lddw")
}

func TestVerifierStackBounds(t *testing.T) {
	// In-bounds store/load is fine.
	wantAccept(t, []Instruction{
		Mov64Imm(R2, 42),
		StoreMem(R10, -8, R2, SizeDW),
		LoadMem(R0, R10, -8, SizeDW),
		Exit(),
	}, nil)
	// Below the frame.
	wantReject(t, []Instruction{
		Mov64Imm(R2, 42),
		StoreMem(R10, -(StackSize + 8), R2, SizeDW),
		Mov64Imm(R0, 0),
		Exit(),
	}, nil, "out of bounds")
	// Above the frame pointer.
	wantReject(t, []Instruction{
		Mov64Imm(R2, 42),
		StoreMem(R10, 8, R2, SizeDW),
		Mov64Imm(R0, 0),
		Exit(),
	}, nil, "out of bounds")
}

func TestVerifierRejectsUninitializedStackRead(t *testing.T) {
	wantReject(t, []Instruction{
		LoadMem(R0, R10, -8, SizeDW),
		Exit(),
	}, nil, "uninitialized stack")
}

func TestVerifierRejectsPartiallyInitializedStackRead(t *testing.T) {
	wantReject(t, []Instruction{
		Mov64Imm(R2, 1),
		StoreMem(R10, -8, R2, SizeW), // 4 of 8 bytes
		LoadMem(R0, R10, -8, SizeDW), // read all 8
		Exit(),
	}, nil, "uninitialized stack")
}

func TestVerifierCtxBounds(t *testing.T) {
	wantAccept(t, []Instruction{
		LoadMem(R0, R1, 8, SizeDW), // within 64-byte ctx
		Exit(),
	}, nil)
	wantReject(t, []Instruction{
		LoadMem(R0, R1, 60, SizeDW), // crosses the end
		Exit(),
	}, nil, "ctx access")
	wantReject(t, []Instruction{
		LoadMem(R0, R1, -4, SizeW),
		Exit(),
	}, nil, "ctx access")
}

func TestVerifierRejectsCtxWrite(t *testing.T) {
	wantReject(t, []Instruction{
		Mov64Imm(R2, 1),
		StoreMem(R1, 0, R2, SizeDW),
		Mov64Imm(R0, 0),
		Exit(),
	}, nil, "read-only ctx")
}

func TestVerifierRejectsScalarDeref(t *testing.T) {
	wantReject(t, []Instruction{
		Mov64Imm(R2, 1234),
		LoadMem(R0, R2, 0, SizeDW),
		Exit(),
	}, nil, "through scalar")
}

func mapLookupProg(nullCheck bool) []Instruction {
	a := NewAssembler()
	a.EmitWide(LoadMapFD(R1, 1))
	a.Emit(
		Mov64Imm(R2, 0),
		StoreMem(R10, -8, R2, SizeDW),
		Mov64Reg(R2, R10),
		Add64Imm(R2, -8),
	)
	a.Emit(Call(HelperMapLookupElem))
	if nullCheck {
		a.JumpImm(JmpJEQ, R0, 0, "miss")
	}
	a.Emit(LoadMem(R0, R0, 0, SizeDW))
	a.Label("miss")
	a.Emit(Exit())
	return a.MustAssemble()
}

func testMaps() map[int32]Map {
	return map[int32]Map{1: NewHashMap("m", 8, 8, 16)}
}

func TestVerifierEnforcesNullCheck(t *testing.T) {
	wantReject(t, mapLookupProg(false), testMaps(), "null check")
	wantAccept(t, mapLookupProg(true), testMaps())
}

func TestVerifierRejectsArithmeticOnMaybeNull(t *testing.T) {
	a := NewAssembler()
	a.EmitWide(LoadMapFD(R1, 1))
	a.Emit(
		Mov64Imm(R2, 0),
		StoreMem(R10, -8, R2, SizeDW),
		Mov64Reg(R2, R10),
		Add64Imm(R2, -8),
		Call(HelperMapLookupElem),
		Add64Imm(R0, 8), // arithmetic before null check
		Mov64Imm(R0, 0),
		Exit(),
	)
	wantReject(t, a.MustAssemble(), testMaps(), "null check")
}

func TestVerifierMapValueBounds(t *testing.T) {
	// Access beyond the 8-byte value after a valid null check.
	a := NewAssembler()
	a.EmitWide(LoadMapFD(R1, 1))
	a.Emit(
		Mov64Imm(R2, 0),
		StoreMem(R10, -8, R2, SizeDW),
		Mov64Reg(R2, R10),
		Add64Imm(R2, -8),
		Call(HelperMapLookupElem),
	)
	a.JumpImm(JmpJEQ, R0, 0, "miss")
	a.Emit(LoadMem(R0, R0, 8, SizeDW)) // off 8 in an 8-byte value
	a.Label("miss")
	a.Emit(Exit())
	wantReject(t, a.MustAssemble(), testMaps(), "map value access")
}

func TestVerifierRejectsUnknownMapFD(t *testing.T) {
	a := NewAssembler()
	a.EmitWide(LoadMapFD(R1, 77))
	a.Emit(Mov64Imm(R0, 0), Exit())
	wantReject(t, a.MustAssemble(), nil, "unknown map fd")
}

func TestVerifierRejectsKeyPointerToUninitStack(t *testing.T) {
	a := NewAssembler()
	a.EmitWide(LoadMapFD(R1, 1))
	a.Emit(
		Mov64Reg(R2, R10),
		Add64Imm(R2, -8), // stack bytes never written
		Call(HelperMapLookupElem),
		Mov64Imm(R0, 0),
		Exit(),
	)
	wantReject(t, a.MustAssemble(), testMaps(), "uninitialized stack")
}

func TestVerifierRejectsScalarKeyArg(t *testing.T) {
	a := NewAssembler()
	a.EmitWide(LoadMapFD(R1, 1))
	a.Emit(
		Mov64Imm(R2, 1234),
		Call(HelperMapLookupElem),
		Mov64Imm(R0, 0),
		Exit(),
	)
	wantReject(t, a.MustAssemble(), testMaps(), "must be a pointer")
}

func TestVerifierRejectsNonMapR1(t *testing.T) {
	a := NewAssembler()
	a.Emit(
		Mov64Imm(R1, 5),
		Mov64Imm(R2, 0),
		StoreMem(R10, -8, R2, SizeDW),
		Mov64Reg(R2, R10),
		Add64Imm(R2, -8),
		Call(HelperMapLookupElem),
		Mov64Imm(R0, 0),
		Exit(),
	)
	wantReject(t, a.MustAssemble(), testMaps(), "map handle")
}

func TestVerifierCallClobbersCallerSaved(t *testing.T) {
	// Using R1 after a call must fail: caller-saved registers are
	// clobbered.
	a := NewAssembler()
	a.Emit(
		Call(HelperKtimeGetNS),
		Mov64Reg(R0, R1), // R1 invalid after call
		Exit(),
	)
	wantReject(t, a.MustAssemble(), nil, "uninitialized register r1")
}

func TestVerifierCalleeSavedSurviveCall(t *testing.T) {
	a := NewAssembler()
	a.Emit(
		Mov64Reg(R6, R1), // save ctx
		Call(HelperKtimeGetNS),
		LoadMem(R0, R6, 0, SizeDW), // ctx still usable via R6
		Exit(),
	)
	wantAccept(t, a.MustAssemble(), nil)
}

func TestVerifierPointerSpillAndRestore(t *testing.T) {
	a := NewAssembler()
	a.Emit(
		Mov64Reg(R2, R10),
		Add64Imm(R2, -16),
		StoreMem(R10, -8, R2, SizeDW), // spill stack ptr
		LoadMem(R3, R10, -8, SizeDW),  // restore
		Mov64Imm(R4, 7),
		StoreMem(R3, 0, R4, SizeDW), // use restored pointer
		Mov64Imm(R0, 0),
		Exit(),
	)
	wantAccept(t, a.MustAssemble(), nil)
}

func TestVerifierRejectsMisalignedPointerSpill(t *testing.T) {
	a := NewAssembler()
	a.Emit(
		Mov64Reg(R2, R10),
		StoreMem(R10, -12, R2, SizeDW), // not 8-aligned
		Mov64Imm(R0, 0),
		Exit(),
	)
	wantReject(t, a.MustAssemble(), nil, "8-byte")
}

func TestVerifierRejectsNarrowPointerSpill(t *testing.T) {
	a := NewAssembler()
	a.Emit(
		Mov64Reg(R2, R10),
		StoreMem(R10, -8, R2, SizeW), // 4-byte pointer store
		Mov64Imm(R0, 0),
		Exit(),
	)
	wantReject(t, a.MustAssemble(), nil, "spill")
}

func TestVerifierRejectsPointerArithmeticWithUnknownScalar(t *testing.T) {
	a := NewAssembler()
	a.Emit(
		LoadMem(R2, R1, 8, SizeDW), // unknown scalar from ctx
		Mov64Reg(R3, R10),
		Add64Reg(R3, R2), // r3 = fp + unknown
		Mov64Imm(R0, 0),
		Exit(),
	)
	wantReject(t, a.MustAssemble(), nil, "unknown scalar")
}

func TestVerifierRejects32BitALUOnPointer(t *testing.T) {
	a := NewAssembler()
	a.Emit(
		Mov64Reg(R2, R10),
		Instruction{Op: ClassALU | ALUAdd | SrcK, Dst: R2, Imm: -8},
		Mov64Imm(R0, 0),
		Exit(),
	)
	wantReject(t, a.MustAssemble(), nil, "32-bit")
}

func TestVerifierAllowsStackPointerDifference(t *testing.T) {
	a := NewAssembler()
	a.Emit(
		Mov64Reg(R2, R10),
		Add64Imm(R2, -16),
		Mov64Reg(R3, R10),
		Mov64Reg(R0, R3),
		Sub64Reg(R0, R2), // fp - (fp-16) = 16
		Exit(),
	)
	wantAccept(t, a.MustAssemble(), nil)
}

func TestVerifierRejectsAddTwoPointers(t *testing.T) {
	a := NewAssembler()
	a.Emit(
		Mov64Reg(R2, R10),
		Mov64Reg(R3, R10),
		Add64Reg(R2, R3),
		Mov64Imm(R0, 0),
		Exit(),
	)
	wantReject(t, a.MustAssemble(), nil, "adding two pointers")
}

func TestVerifierRingbufChecks(t *testing.T) {
	maps := map[int32]Map{
		1: NewRingBuf("rb", 4096),
		2: NewHashMap("h", 8, 8, 4),
	}
	good := func() []Instruction {
		a := NewAssembler()
		a.Emit(
			Mov64Imm(R2, 7),
			StoreMem(R10, -16, R2, SizeDW),
			StoreMem(R10, -8, R2, SizeDW),
		)
		a.EmitWide(LoadMapFD(R1, 1))
		a.Emit(
			Mov64Reg(R2, R10),
			Add64Imm(R2, -16),
			Mov64Imm(R3, 16),
			Mov64Imm(R4, 0),
			Call(HelperRingbufOutput),
			Mov64Imm(R0, 0),
			Exit(),
		)
		return a.MustAssemble()
	}
	wantAccept(t, good(), maps)

	// ringbuf_output on a hash map must fail.
	bad := good()
	bad[3].Imm = 2 // retarget lddw map fd (insn 3 is the wide load)
	wantReject(t, bad, maps, "non-ringbuf")
}

func TestVerifierRingbufRejectsUnknownSize(t *testing.T) {
	maps := map[int32]Map{1: NewRingBuf("rb", 4096)}
	a := NewAssembler()
	a.Emit(
		Mov64Imm(R2, 7),
		StoreMem(R10, -8, R2, SizeDW),
	)
	a.EmitWide(LoadMapFD(R1, 1))
	a.Emit(
		Mov64Reg(R2, R10),
		Add64Imm(R2, -8),
		LoadMem(R3, R2, 0, SizeDW), // size from memory: unknown
		Call(HelperRingbufOutput),
		Mov64Imm(R0, 0),
		Exit(),
	)
	wantReject(t, a.MustAssemble(), maps, "known constant")
}

func TestVerifierRingbufQueryChecks(t *testing.T) {
	maps := map[int32]Map{
		1: NewRingBuf("rb", 4096),
		2: NewHashMap("h", 8, 8, 4),
	}
	good := func() []Instruction {
		a := NewAssembler()
		a.EmitWide(LoadMapFD(R1, 1))
		a.Emit(
			Mov64Imm(R2, RingbufAvailData),
			Call(HelperRingbufQuery),
			Exit(),
		)
		return a.MustAssemble()
	}
	wantAccept(t, good(), maps)

	// ringbuf_query on a hash map must fail.
	bad := good()
	bad[0].Imm = 2
	wantReject(t, bad, maps, "non-ringbuf")

	// Pointer flags must fail.
	a := NewAssembler()
	a.EmitWide(LoadMapFD(R1, 1))
	a.Emit(
		Mov64Reg(R2, R10),
		Call(HelperRingbufQuery),
		Exit(),
	)
	wantReject(t, a.MustAssemble(), maps, "scalar")
}

func TestVerifierListingOneAccepted(t *testing.T) {
	// The paper's Listing 1 shape: filter pid_tgid and syscall id, stamp
	// entry time into a hash map.
	maps := map[int32]Map{1: NewHashMap("start", 8, 8, 1024)}
	a := NewAssembler()
	a.Emit(Mov64Reg(R6, R1)) // save ctx
	a.Emit(Call(HelperGetCurrentPidTgid))
	a.Emit(Mov64Reg(R7, R0))
	pid := LoadImm64(R2, 0x1234_0000_5678)
	a.EmitWide(pid)
	a.JumpReg(JmpJNE, R7, R2, "out")
	a.Emit(LoadMem(R3, R6, 8, SizeDW)) // args->id
	a.JumpImm(JmpJNE, R3, 232, "out")  // filter epoll_wait
	a.Emit(Call(HelperKtimeGetNS))
	a.Emit(
		StoreMem(R10, -16, R0, SizeDW), // value = ts
		StoreMem(R10, -8, R7, SizeDW),  // key = pid_tgid
	)
	a.EmitWide(LoadMapFD(R1, 1))
	a.Emit(
		Mov64Reg(R2, R10),
		Add64Imm(R2, -8),
		Mov64Reg(R3, R10),
		Add64Imm(R3, -16),
		Mov64Imm(R4, 0),
		Call(HelperMapUpdateElem),
	)
	a.Label("out")
	a.Emit(Mov64Imm(R0, 0), Exit())
	wantAccept(t, a.MustAssemble(), maps)
}

func TestVerifierComplexityLimit(t *testing.T) {
	// A ladder of diverging conditional branches doubles the path count
	// at each rung; the verifier must give up rather than hang.
	b := NewAssembler()
	b.Emit(Mov64Imm(R0, 0))
	for i := 0; i < 40; i++ {
		b.Emit(
			JmpImm(JmpJEQ, R0, int32(i), 1),
			Add64Imm(R0, 1),
			Add64Imm(R0, 2),
		)
	}
	b.Emit(Exit())
	err := loadErr(t, b.MustAssemble(), nil)
	if err == nil || !strings.Contains(err.Error(), "too complex") {
		t.Fatalf("want complexity rejection, got %v", err)
	}
}
