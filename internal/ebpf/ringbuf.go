package ebpf

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
)

// RingBuf is a BPF_MAP_TYPE_RINGBUF: a single byte-addressed ring that
// programs commit variable-sized records into and userspace drains in
// commit order. As on Linux, the capacity is a power of two of bytes and
// every record costs an 8-byte header plus its payload rounded up to 8
// bytes, so drop behaviour under a lagging consumer is bit-for-bit
// reproducible against the real map's accounting. A commit that does not
// fit in the free span between the producer and consumer positions is
// dropped and counted; nothing is ever overwritten.
type RingBuf struct {
	name string
	data []byte // backing store, len == capacity (power of two)
	mask uint64 // capacity - 1

	// prod and cons are monotonically increasing byte positions, as
	// exposed by the kernel's producer/consumer pages. prod-cons is the
	// number of unconsumed bytes; both are always 8-aligned.
	prod uint64
	cons uint64

	dropped      uint64 // records dropped for lack of space
	droppedBytes uint64 // bytes those dropped records would have cost
	written      uint64 // records committed
	pending      int    // records between cons and prod
}

// ringbufHdrSize is the per-record header: a little-endian uint64 payload
// length (the kernel packs length plus busy/discard bits into 32 bits; we
// model the 8-byte reservation cost, which is what the accounting needs).
const ringbufHdrSize = 8

// ringbufRecordCost returns the bytes one committed record of n payload
// bytes consumes: header plus payload rounded up to 8-byte alignment.
func ringbufRecordCost(n int) uint64 {
	return ringbufHdrSize + (uint64(n)+7)&^7
}

// NewRingBuf creates a ring buffer. As with the Linux map type, capacity
// is in bytes and must be a power of two (and at least one header's
// worth); anything else panics.
func NewRingBuf(name string, capacity int) *RingBuf {
	if capacity < ringbufHdrSize || bits.OnesCount(uint(capacity)) != 1 {
		panic(fmt.Sprintf("ebpf: ringbuf capacity %d must be a power of two >= %d", capacity, ringbufHdrSize))
	}
	return &RingBuf{name: name, data: make([]byte, capacity), mask: uint64(capacity) - 1}
}

// Name returns the map's name.
func (m *RingBuf) Name() string { return m.name }

// KeySize is 0: ring buffers are not keyed.
func (m *RingBuf) KeySize() int { return 0 }

// ValueSize is 0: records are variable-sized.
func (m *RingBuf) ValueSize() int { return 0 }

// Lookup is invalid on ring buffers.
func (m *RingBuf) Lookup(key []byte) ([]byte, bool) { return nil, false }

// Update is invalid on ring buffers.
func (m *RingBuf) Update(key, value []byte, flags int) error {
	return errors.New("ebpf: update not supported on ringbuf")
}

// Delete is invalid on ring buffers.
func (m *RingBuf) Delete(key []byte) error {
	return errors.New("ebpf: delete not supported on ringbuf")
}

// Capacity returns the ring size in bytes (BPF_RB_RING_SIZE).
func (m *RingBuf) Capacity() int { return len(m.data) }

// AvailData returns the unconsumed bytes between the consumer and
// producer positions (BPF_RB_AVAIL_DATA), headers included.
func (m *RingBuf) AvailData() uint64 { return m.prod - m.cons }

// ProducerPos returns the monotonic producer byte position.
func (m *RingBuf) ProducerPos() uint64 { return m.prod }

// ConsumerPos returns the monotonic consumer byte position.
func (m *RingBuf) ConsumerPos() uint64 { return m.cons }

// copyIn writes b into the ring starting at monotonic position pos,
// wrapping at the capacity boundary.
func (m *RingBuf) copyIn(pos uint64, b []byte) {
	start := pos & m.mask
	n := copy(m.data[start:], b)
	if n < len(b) {
		copy(m.data, b[n:])
	}
}

// copyOut reads n bytes starting at monotonic position pos.
func (m *RingBuf) copyOut(pos uint64, n int) []byte {
	out := make([]byte, n)
	start := pos & m.mask
	c := copy(out, m.data[start:])
	if c < n {
		copy(out[c:], m.data)
	}
	return out
}

// Output commits one record (copied). Returns false when the record was
// dropped: its header-plus-padded-payload cost exceeds the free space
// left by the consumer, or the payload alone can never fit the ring.
func (m *RingBuf) Output(rec []byte) bool {
	need := ringbufRecordCost(len(rec))
	if need > uint64(len(m.data))-(m.prod-m.cons) {
		m.dropped++
		m.droppedBytes += need
		return false
	}
	var hdr [ringbufHdrSize]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(len(rec)))
	m.copyIn(m.prod, hdr[:])
	m.copyIn(m.prod+ringbufHdrSize, rec)
	m.prod += need
	m.written++
	m.pending++
	return true
}

// Drain returns and removes all pending records in commit order,
// advancing the consumer position and freeing their space.
func (m *RingBuf) Drain() [][]byte {
	if m.pending == 0 {
		return nil
	}
	out := make([][]byte, 0, m.pending)
	for m.cons < m.prod {
		n := int(binary.LittleEndian.Uint64(m.copyOut(m.cons, ringbufHdrSize)))
		out = append(out, m.copyOut(m.cons+ringbufHdrSize, n))
		m.cons += ringbufRecordCost(n)
	}
	m.pending = 0
	return out
}

// Dropped returns the count of records dropped due to a full buffer.
func (m *RingBuf) Dropped() uint64 { return m.dropped }

// DroppedBytes returns the total reservation cost (header plus padded
// payload) of every dropped record — the bytes the ring would have
// needed to avoid the drops.
func (m *RingBuf) DroppedBytes() uint64 { return m.droppedBytes }

// Written returns the count of records successfully committed.
func (m *RingBuf) Written() uint64 { return m.written }

// Pending returns the number of records awaiting Drain.
func (m *RingBuf) Pending() int { return m.pending }

// Query answers a bpf_ringbuf_query flag against the live ring state.
// Unknown flags return 0, as on Linux.
func (m *RingBuf) Query(flag uint64) uint64 {
	switch flag {
	case RingbufAvailData:
		return m.AvailData()
	case RingbufRingSize:
		return uint64(len(m.data))
	case RingbufConsPos:
		return m.cons
	case RingbufProdPos:
		return m.prod
	}
	return 0
}
