package ebpf

import (
	"encoding/binary"
	"fmt"
)

// Register names R0..R10. R0 holds return values, R1-R5 are helper/entry
// arguments and caller-saved, R6-R9 are callee-saved, R10 is the read-only
// frame pointer.
type Register uint8

// The eleven architectural registers, r0 through r10.
const (
	R0 Register = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10

	// NumRegisters is the size of the register file.
	NumRegisters = 11
)

// String returns the register's assembly spelling (r0..r10).
func (r Register) String() string { return fmt.Sprintf("r%d", uint8(r)) }

// Instruction classes (low 3 bits of the opcode).
const (
	ClassLD    = 0x00
	ClassLDX   = 0x01
	ClassST    = 0x02
	ClassSTX   = 0x03
	ClassALU   = 0x04
	ClassJMP   = 0x05
	ClassJMP32 = 0x06
	ClassALU64 = 0x07
)

// ALU/JMP source flag (bit 3): K = immediate operand, X = register operand.
const (
	SrcK = 0x00
	SrcX = 0x08
)

// ALU operation codes (high 4 bits).
const (
	ALUAdd  = 0x00
	ALUSub  = 0x10
	ALUMul  = 0x20
	ALUDiv  = 0x30
	ALUOr   = 0x40
	ALUAnd  = 0x50
	ALULsh  = 0x60
	ALURsh  = 0x70
	ALUNeg  = 0x80
	ALUMod  = 0x90
	ALUXor  = 0xa0
	ALUMov  = 0xb0
	ALUArsh = 0xc0
)

// JMP operation codes (high 4 bits).
const (
	JmpJA   = 0x00
	JmpJEQ  = 0x10
	JmpJGT  = 0x20
	JmpJGE  = 0x30
	JmpJSET = 0x40
	JmpJNE  = 0x50
	JmpJSGT = 0x60
	JmpJSGE = 0x70
	JmpCall = 0x80
	JmpExit = 0x90
	JmpJLT  = 0xa0
	JmpJLE  = 0xb0
	JmpJSLT = 0xc0
	JmpJSLE = 0xd0
)

// Memory access sizes (bits 3-4 of LD/ST opcodes).
const (
	SizeW  = 0x00 // 4 bytes
	SizeH  = 0x08 // 2 bytes
	SizeB  = 0x10 // 1 byte
	SizeDW = 0x18 // 8 bytes
)

// Memory access modes (bits 5-7 of LD/ST opcodes).
const (
	ModeIMM    = 0x00
	ModeMEM    = 0x60
	ModeAtomic = 0xc0 // STX only: atomic operations (BPF_ATOMIC)
)

// Atomic operation immediates (subset: fetch-less add, i.e. the classic
// BPF_XADD counters probes rely on).
const AtomicAdd = 0x00

// OpLdImmDW is the wide 128-bit load-immediate opcode (two slots).
const OpLdImmDW = ClassLD | SizeDW | ModeIMM // 0x18

// PseudoMapFD marks the src register of an LdImmDW as "imm is a map fd"
// rather than a literal constant, as in the Linux uapi.
const PseudoMapFD = 1

// Helper function IDs (matching Linux helper numbering where the helper
// exists there).
const (
	HelperMapLookupElem     = 1
	HelperMapUpdateElem     = 2
	HelperMapDeleteElem     = 3
	HelperKtimeGetNS        = 5
	HelperGetSMPProcID      = 8
	HelperGetCurrentPidTgid = 14
	HelperRingbufOutput     = 130
	HelperRingbufQuery      = 134

	// Sketch-map helpers. These have no Linux equivalent; they live in
	// the 200 range, clear of the real helper numbering, and operate on
	// the CMS / HashPipe map types only (the verifier enforces the
	// handle type, exactly as it does for the ringbuf helpers).
	//
	//	cms_update(map, key_ptr, inc)      -> 0
	//	cms_estimate(map, key_ptr)         -> estimate
	//	hashpipe_insert(map, key_ptr, inc) -> settled stage (0 = dropped)
	HelperCMSUpdate      = 200
	HelperCMSEstimate    = 201
	HelperHashPipeInsert = 202
)

// bpf_ringbuf_query flags, matching the Linux uapi BPF_RB_* values.
const (
	RingbufAvailData = 0 // unconsumed bytes in the ring
	RingbufRingSize  = 1 // ring capacity in bytes
	RingbufConsPos   = 2 // monotonic consumer position
	RingbufProdPos   = 3 // monotonic producer position
)

// MaxInstructions is the verifier's program length limit.
const MaxInstructions = 4096

// StackSize is the fixed per-program stack, addressed as negative offsets
// from R10.
const StackSize = 512

// Instruction is one 64-bit eBPF instruction slot. LdImmDW occupies two
// consecutive slots; the second carries the upper 32 immediate bits and is
// otherwise zero.
type Instruction struct {
	Op  uint8    // opcode: class, source flag, and operation bits
	Dst Register // destination register
	Src Register // source register
	Off int16    // signed offset: memory displacement or branch delta
	Imm int32    // signed 32-bit immediate
}

// Class returns the instruction class bits.
func (i Instruction) Class() uint8 { return i.Op & 0x07 }

// ALUOp returns the ALU operation bits (valid for ALU/ALU64 classes).
func (i Instruction) ALUOp() uint8 { return i.Op & 0xf0 }

// JmpOp returns the jump operation bits (valid for JMP/JMP32 classes).
func (i Instruction) JmpOp() uint8 { return i.Op & 0xf0 }

// Size returns the memory access width in bytes for LD/LDX/ST/STX.
func (i Instruction) Size() int {
	switch i.Op & 0x18 {
	case SizeW:
		return 4
	case SizeH:
		return 2
	case SizeB:
		return 1
	default:
		return 8
	}
}

// UsesImm reports whether the ALU/JMP source operand is the immediate.
func (i Instruction) UsesImm() bool { return i.Op&0x08 == SrcK }

// IsWideLoad reports whether this is the first slot of an LdImmDW pair.
func (i Instruction) IsWideLoad() bool { return i.Op == OpLdImmDW }

// Encode serializes the instruction to its 8-byte wire format
// (little-endian, as on x86 Linux).
func (i Instruction) Encode() [8]byte {
	var b [8]byte
	b[0] = i.Op
	b[1] = uint8(i.Dst)&0x0f | uint8(i.Src)<<4
	binary.LittleEndian.PutUint16(b[2:4], uint16(i.Off))
	binary.LittleEndian.PutUint32(b[4:8], uint32(i.Imm))
	return b
}

// DecodeInstruction parses one 8-byte slot.
func DecodeInstruction(b [8]byte) Instruction {
	return Instruction{
		Op:  b[0],
		Dst: Register(b[1] & 0x0f),
		Src: Register(b[1] >> 4),
		Off: int16(binary.LittleEndian.Uint16(b[2:4])),
		Imm: int32(binary.LittleEndian.Uint32(b[4:8])),
	}
}

// Encode serializes a whole program to bytes.
func Encode(insns []Instruction) []byte {
	out := make([]byte, 0, len(insns)*8)
	for _, in := range insns {
		b := in.Encode()
		out = append(out, b[:]...)
	}
	return out
}

// Decode parses a serialized program. The byte length must be a multiple
// of 8.
func Decode(raw []byte) ([]Instruction, error) {
	if len(raw)%8 != 0 {
		return nil, fmt.Errorf("ebpf: program length %d not a multiple of 8", len(raw))
	}
	out := make([]Instruction, 0, len(raw)/8)
	for i := 0; i < len(raw); i += 8 {
		var b [8]byte
		copy(b[:], raw[i:i+8])
		out = append(out, DecodeInstruction(b))
	}
	return out, nil
}

// aluOpNames maps ALU operation bits to mnemonics.
var aluOpNames = map[uint8]string{
	ALUAdd: "add", ALUSub: "sub", ALUMul: "mul", ALUDiv: "div",
	ALUOr: "or", ALUAnd: "and", ALULsh: "lsh", ALURsh: "rsh",
	ALUNeg: "neg", ALUMod: "mod", ALUXor: "xor", ALUMov: "mov",
	ALUArsh: "arsh",
}

// jmpOpNames maps JMP operation bits to mnemonics.
var jmpOpNames = map[uint8]string{
	JmpJA: "ja", JmpJEQ: "jeq", JmpJGT: "jgt", JmpJGE: "jge",
	JmpJSET: "jset", JmpJNE: "jne", JmpJSGT: "jsgt", JmpJSGE: "jsge",
	JmpCall: "call", JmpExit: "exit", JmpJLT: "jlt", JmpJLE: "jle",
	JmpJSLT: "jslt", JmpJSLE: "jsle",
}

var sizeNames = map[uint8]string{SizeW: "w", SizeH: "h", SizeB: "b", SizeDW: "dw"}

// String disassembles a single instruction (without wide-load pairing).
func (i Instruction) String() string {
	switch i.Class() {
	case ClassALU64, ClassALU:
		suffix := ""
		if i.Class() == ClassALU {
			suffix = "32"
		}
		name := aluOpNames[i.ALUOp()]
		if name == "" {
			return fmt.Sprintf("invalid(op=%#x)", i.Op)
		}
		if i.ALUOp() == ALUNeg {
			return fmt.Sprintf("%s%s %s", name, suffix, i.Dst)
		}
		if i.UsesImm() {
			return fmt.Sprintf("%s%s %s, %d", name, suffix, i.Dst, i.Imm)
		}
		return fmt.Sprintf("%s%s %s, %s", name, suffix, i.Dst, i.Src)
	case ClassJMP, ClassJMP32:
		name := jmpOpNames[i.JmpOp()]
		switch i.JmpOp() {
		case JmpExit:
			return "exit"
		case JmpCall:
			return fmt.Sprintf("call %d", i.Imm)
		case JmpJA:
			return fmt.Sprintf("ja %+d", i.Off)
		}
		if name == "" {
			return fmt.Sprintf("invalid(op=%#x)", i.Op)
		}
		if i.Class() == ClassJMP32 {
			name += "32"
		}
		if i.UsesImm() {
			return fmt.Sprintf("%s %s, %d, %+d", name, i.Dst, i.Imm, i.Off)
		}
		return fmt.Sprintf("%s %s, %s, %+d", name, i.Dst, i.Src, i.Off)
	case ClassLDX:
		return fmt.Sprintf("ldx%s %s, [%s%+d]", sizeNames[i.Op&0x18], i.Dst, i.Src, i.Off)
	case ClassSTX:
		if i.Op&0xe0 == ModeAtomic {
			return fmt.Sprintf("xadd%s [%s%+d], %s", sizeNames[i.Op&0x18], i.Dst, i.Off, i.Src)
		}
		return fmt.Sprintf("stx%s [%s%+d], %s", sizeNames[i.Op&0x18], i.Dst, i.Off, i.Src)
	case ClassST:
		return fmt.Sprintf("st%s [%s%+d], %d", sizeNames[i.Op&0x18], i.Dst, i.Off, i.Imm)
	case ClassLD:
		if i.Op == OpLdImmDW {
			if i.Src == PseudoMapFD {
				return fmt.Sprintf("lddw %s, map_fd(%d)", i.Dst, i.Imm)
			}
			return fmt.Sprintf("lddw %s, %d(lo)", i.Dst, i.Imm)
		}
	}
	return fmt.Sprintf("invalid(op=%#x)", i.Op)
}

// Disassemble renders a program one instruction per line, fusing wide
// loads into a single line.
func Disassemble(insns []Instruction) string {
	out := ""
	for pc := 0; pc < len(insns); pc++ {
		in := insns[pc]
		if in.IsWideLoad() && pc+1 < len(insns) {
			imm := uint64(uint32(in.Imm)) | uint64(uint32(insns[pc+1].Imm))<<32
			if in.Src == PseudoMapFD {
				out += fmt.Sprintf("%4d: lddw %s, map_fd(%d)\n", pc, in.Dst, in.Imm)
			} else {
				out += fmt.Sprintf("%4d: lddw %s, %#x\n", pc, in.Dst, imm)
			}
			pc++
			continue
		}
		out += fmt.Sprintf("%4d: %s\n", pc, in)
	}
	return out
}
