package ebpf

import (
	"encoding/binary"
	"fmt"
	"testing"
)

// TestCMSMapInterface exercises the Map-facing surface of a CMS: Lookup
// snapshots the estimate, Update adds (UpdateAny only), Delete is
// rejected, and the accessors report the configured geometry.
func TestCMSMapInterface(t *testing.T) {
	c := NewCMS("cms", 8, 128, 3)
	if c.Name() != "cms" || c.KeySize() != 8 || c.ValueSize() != 8 {
		t.Fatalf("identity: name %q keySize %d valueSize %d", c.Name(), c.KeySize(), c.ValueSize())
	}
	if c.Width() != 128 || c.Depth() != 3 {
		t.Fatalf("geometry: %dx%d", c.Width(), c.Depth())
	}
	if got, want := c.Bytes(), 128*3*8; got != want {
		t.Fatalf("Bytes() = %d, want %d", got, want)
	}
	key := sketchKey(1)
	val := make([]byte, 8)
	binary.LittleEndian.PutUint64(val, 5)
	if err := c.Update(key, val, UpdateAny); err != nil {
		t.Fatal(err)
	}
	if err := c.Update(key, val, UpdateNoExist); err == nil {
		t.Fatal("Update with UpdateNoExist succeeded on a cms")
	}
	if err := c.Update(key[:4], val, UpdateAny); err == nil {
		t.Fatal("Update with short key succeeded")
	}
	if err := c.Update(key, val[:4], UpdateAny); err == nil {
		t.Fatal("Update with short value succeeded")
	}
	got, ok := c.Lookup(key)
	if !ok {
		t.Fatal("Lookup missed on an updated key")
	}
	if est := binary.LittleEndian.Uint64(got); est != 5 {
		t.Fatalf("Lookup estimate = %d, want 5", est)
	}
	if _, ok := c.Lookup(key[:4]); ok {
		t.Fatal("Lookup with short key hit")
	}
	if err := c.Delete(key); err == nil {
		t.Fatal("Delete succeeded on a cms (counters are not removable)")
	}
	if c.Total() != 5 {
		t.Fatalf("Total = %d, want 5", c.Total())
	}
	c.Reset()
	if c.Total() != 0 || c.Estimate(key) != 0 {
		t.Fatal("Reset left residual counts")
	}
}

// TestHashPipeMapInterface exercises the Map-facing surface of a
// HashPipe and the stage-walk semantics of Insert.
func TestHashPipeMapInterface(t *testing.T) {
	h := NewHashPipe("hp", 8, 3, 4)
	if h.Name() != "hp" || h.KeySize() != 8 || h.ValueSize() != 8 {
		t.Fatalf("identity: name %q keySize %d valueSize %d", h.Name(), h.KeySize(), h.ValueSize())
	}
	if h.Stages() != 3 || h.Slots() != 4 {
		t.Fatalf("geometry: %dx%d", h.Stages(), h.Slots())
	}
	if got, want := h.Bytes(), 3*4*(8+8); got != want {
		t.Fatalf("Bytes() = %d, want %d", got, want)
	}
	key := sketchKey(9)
	if st := h.Insert(key, 3); st != 1 {
		t.Fatalf("first insert settled at stage %d, want 1 (stage 1 always admits)", st)
	}
	if st := h.Insert(key, 2); st != 1 {
		t.Fatalf("re-insert of the resident key settled at stage %d, want 1", st)
	}
	val := make([]byte, 8)
	binary.LittleEndian.PutUint64(val, 4)
	if err := h.Update(key, val, UpdateAny); err != nil {
		t.Fatal(err)
	}
	got, ok := h.Lookup(key)
	if !ok {
		t.Fatal("Lookup missed a resident key")
	}
	if cnt := binary.LittleEndian.Uint64(got); cnt != 9 {
		t.Fatalf("Lookup count = %d, want 9 (3+2+4)", cnt)
	}
	if _, ok := h.Lookup(sketchKey(77)); ok {
		t.Fatal("Lookup hit an absent key")
	}
	if err := h.Delete(key); err == nil {
		t.Fatal("Delete succeeded on a hashpipe")
	}
	entries := h.Entries()
	if len(entries) != 1 || entries[0].Count != 9 {
		t.Fatalf("Entries = %+v, want one entry with count 9", entries)
	}
	top := h.TopK(5)
	if len(top) != 1 {
		t.Fatalf("TopK(5) returned %d entries, want 1", len(top))
	}
	h.Reset()
	if len(h.Entries()) != 0 {
		t.Fatal("Reset left residual entries")
	}
}

// TestSketchConstructorPanics pins that invalid geometry is a
// programming error, not a recoverable condition.
func TestSketchConstructorPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"cms_zero_width", func() { NewCMS("c", 8, 0, 2) }},
		{"cms_zero_depth", func() { NewCMS("c", 8, 8, 0) }},
		{"cms_zero_key", func() { NewCMS("c", 0, 8, 2) }},
		{"hp_zero_stages", func() { NewHashPipe("p", 8, 0, 2) }},
		{"hp_zero_slots", func() { NewHashPipe("p", 8, 2, 0) }},
		{"hp_key_too_big", func() { NewHashPipe("p", hpMaxKey+1, 2, 2) }},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("constructor accepted invalid geometry")
				}
			}()
			tc.fn()
		})
	}
}

// sketchHotProgram builds a compiled program that drives all three
// sketch helpers with the key and increment taken straight from the
// 16-byte ctx (key at 0, inc at 8) — no stack staging, so a run is
// purely sketch-side work.
func sketchHotProgram(t testing.TB) (*Program, *CMS, *HashPipe) {
	t.Helper()
	cms := NewCMS("c", 8, 1024, 4)
	hp := NewHashPipe("p", 8, 4, 64)
	insns := []Instruction{
		Mov64Reg(R6, R1), // save ctx
	}
	insns = append(insns, LoadMapFD(R1, 1)[0], LoadMapFD(R1, 1)[1],
		Mov64Reg(R2, R6),
		LoadMem(R3, R6, 8, SizeDW),
		Call(HelperCMSUpdate))
	insns = append(insns, LoadMapFD(R1, 1)[0], LoadMapFD(R1, 1)[1],
		Mov64Reg(R2, R6),
		Call(HelperCMSEstimate))
	insns = append(insns, LoadMapFD(R1, 2)[0], LoadMapFD(R1, 2)[1],
		Mov64Reg(R2, R6),
		LoadMem(R3, R6, 8, SizeDW),
		Call(HelperHashPipeInsert),
		Exit())
	p, err := Load(ProgramSpec{
		Name:    "sketch-hot",
		Insns:   insns,
		Maps:    map[int32]Map{1: cms, 2: hp},
		CtxSize: 16,
		Backend: BackendCompiled,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p, cms, hp
}

// TestSketchHelpersZeroAllocs pins cms_update, cms_estimate, and
// hashpipe_insert on the compiled backend at zero allocations per run
// once the run state is warm — the same discipline as the exact-map
// hot path (TestCompiledRunZeroAllocs).
func TestSketchHelpersZeroAllocs(t *testing.T) {
	p, cms, hp := sketchHotProgram(t)
	ctx := make([]byte, 16)
	env := &FixedEnv{}
	seq := uint64(0)
	run := func() {
		seq++
		binary.LittleEndian.PutUint64(ctx[0:8], seq%64)
		binary.LittleEndian.PutUint64(ctx[8:16], 1)
		if _, _, err := p.Run(ctx, env); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm the pooled run state
	allocs := testing.AllocsPerRun(1000, run)
	if allocs != 0 {
		t.Fatalf("sketch helpers allocated %v allocs/op on the compiled backend, want 0", allocs)
	}
	if cms.Total() == 0 {
		t.Fatal("cms saw no updates — the pin measured nothing")
	}
	if len(hp.Entries()) == 0 {
		t.Fatal("hashpipe saw no inserts — the pin measured nothing")
	}
}

// TestSketchHelperReturnValues checks the BPF-visible contract end to
// end on both backends: cms_estimate returns the min-over-rows count
// and hashpipe_insert returns the 1-based settled stage.
func TestSketchHelperReturnValues(t *testing.T) {
	for _, backend := range []Backend{BackendInterpreter, BackendCompiled} {
		backend := backend
		t.Run(fmt.Sprintf("backend_%d", backend), func(t *testing.T) {
			cms := NewCMS("c", 8, 256, 3)
			hp := NewHashPipe("p", 8, 2, 8)
			p, err := Load(ProgramSpec{
				Name: "ret",
				Insns: append(append([]Instruction{
					Mov64Reg(R6, R1)},
					LoadMapFD(R1, 1)[0], LoadMapFD(R1, 1)[1],
					Mov64Reg(R2, R6),
					LoadMem(R3, R6, 8, SizeDW),
					Call(HelperCMSUpdate),
					LoadMapFD(R1, 1)[0], LoadMapFD(R1, 1)[1],
					Mov64Reg(R2, R6),
					Call(HelperCMSEstimate),
					Mov64Reg(R7, R0)), // stash estimate
					LoadMapFD(R1, 2)[0], LoadMapFD(R1, 2)[1],
					Mov64Reg(R2, R6),
					LoadMem(R3, R6, 8, SizeDW),
					Call(HelperHashPipeInsert),
					// ret = estimate<<8 + settled stage (stage < 256)
					Lsh64Imm(R7, 8),
					Add64Reg(R0, R7),
					Exit(),
				),
				Maps:    map[int32]Map{1: cms, 2: hp},
				CtxSize: 16,
				Backend: backend,
			})
			if err != nil {
				t.Fatal(err)
			}
			ctx := make([]byte, 16)
			binary.LittleEndian.PutUint64(ctx[0:8], 0xfeedface)
			binary.LittleEndian.PutUint64(ctx[8:16], 7)
			ret, _, err := p.Run(ctx, &FixedEnv{})
			if err != nil {
				t.Fatal(err)
			}
			if est := ret >> 8; est != 7 {
				t.Fatalf("cms_estimate returned %d after one +7 update, want 7", est)
			}
			if st := ret & 0xff; st != 1 {
				t.Fatalf("hashpipe_insert settled at stage %d on an empty pipe, want 1", st)
			}
			if cms.Estimate(ctx[0:8]) != 7 {
				t.Fatalf("userspace estimate = %d, want 7", cms.Estimate(ctx[0:8]))
			}
		})
	}
}

// TestSketchMergeShardingDeterminism pins the read-out convention the
// fleet layer depends on: folding per-node sketches in node-ID order
// yields bit-identical state no matter how the nodes' update streams
// were sharded across workers. This is the map-space analogue of
// RunPoints' any-Parallelism guarantee.
func TestSketchMergeShardingDeterminism(t *testing.T) {
	const nodes = 8
	build := func(shards int) (*CMS, *HashPipe) {
		// Each "node" applies a deterministic per-node stream; shards
		// only changes which worker builds which node, never content.
		cs := make([]*CMS, nodes)
		hs := make([]*HashPipe, nodes)
		done := make(chan int, nodes)
		for w := 0; w < shards; w++ {
			go func(w int) {
				for n := w; n < nodes; n += shards {
					c := NewCMS("c", 8, 512, 4)
					h := NewHashPipe("p", 8, 4, 32)
					for i := 0; i < 5000; i++ {
						k := sketchKey(uint64(n*31+i) % 400)
						c.Add(k, 1)
						h.Insert(k, 1)
					}
					cs[n], hs[n] = c, h
					done <- n
				}
			}(w)
		}
		for i := 0; i < nodes; i++ {
			<-done
		}
		// Fold in node-ID order, exactly as the fleet rollup does.
		mc, mh := cs[0].Clone(), hs[0].Clone()
		for n := 1; n < nodes; n++ {
			if err := mc.Merge(cs[n]); err != nil {
				t.Fatal(err)
			}
			if err := mh.Merge(hs[n]); err != nil {
				t.Fatal(err)
			}
		}
		return mc, mh
	}
	refC, refH := build(1)
	for _, shards := range []int{2, 3, 8} {
		c, h := build(shards)
		for i := range refC.rows {
			if c.rows[i] != refC.rows[i] {
				t.Fatalf("shards=%d: cms counter %d = %d, want %d", shards, i, c.rows[i], refC.rows[i])
			}
		}
		if c.total != refC.total {
			t.Fatalf("shards=%d: cms total %d, want %d", shards, c.total, refC.total)
		}
		for i := range refH.table {
			x, y := h.table[i], refH.table[i]
			if x.used != y.used || x.count != y.count || x.key != y.key {
				t.Fatalf("shards=%d: pipe cell %d diverged", shards, i)
			}
		}
	}
}
