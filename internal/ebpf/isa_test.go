package ebpf

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	ins := Instruction{Op: ClassALU64 | ALUAdd | SrcK, Dst: R3, Src: R7, Off: -42, Imm: 123456}
	got := DecodeInstruction(ins.Encode())
	if got != ins {
		t.Fatalf("roundtrip: %+v != %+v", got, ins)
	}
}

// Property: every instruction survives encode/decode, for all field values
// that fit the wire format (registers are 4 bits).
func TestPropertyEncodeDecodeRoundTrip(t *testing.T) {
	f := func(op uint8, dst, src uint8, off int16, imm int32) bool {
		ins := Instruction{Op: op, Dst: Register(dst & 0x0f), Src: Register(src & 0x0f), Off: off, Imm: imm}
		return DecodeInstruction(ins.Encode()) == ins
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestProgramEncodeDecode(t *testing.T) {
	prog := []Instruction{
		Mov64Imm(R0, 7),
		Add64Reg(R0, R1),
		Exit(),
	}
	raw := Encode(prog)
	if len(raw) != 24 {
		t.Fatalf("encoded %d bytes, want 24", len(raw))
	}
	back, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	for i := range prog {
		if back[i] != prog[i] {
			t.Fatalf("insn %d: %+v != %+v", i, back[i], prog[i])
		}
	}
}

func TestDecodeRejectsBadLength(t *testing.T) {
	if _, err := Decode(make([]byte, 13)); err == nil {
		t.Fatal("expected error for non-multiple-of-8 length")
	}
}

func TestInstructionSize(t *testing.T) {
	cases := []struct {
		op   uint8
		want int
	}{
		{ClassLDX | ModeMEM | SizeB, 1},
		{ClassLDX | ModeMEM | SizeH, 2},
		{ClassLDX | ModeMEM | SizeW, 4},
		{ClassLDX | ModeMEM | SizeDW, 8},
	}
	for _, c := range cases {
		if got := (Instruction{Op: c.op}).Size(); got != c.want {
			t.Errorf("size(op=%#x) = %d, want %d", c.op, got, c.want)
		}
	}
}

func TestDisassembleMnemonics(t *testing.T) {
	a := NewAssembler()
	a.EmitWide(LoadMapFD(R1, 3))
	a.Emit(
		Mov64Imm(R0, 0),
		Mov64Reg(R6, R1),
		LoadMem(R2, R1, 8, SizeDW),
		StoreMem(R10, -8, R2, SizeDW),
		StoreImm(R10, -16, 99, SizeW),
		Call(HelperKtimeGetNS),
		JmpImm(JmpJEQ, R0, 0, 1),
		Ja(0),
		Exit(),
	)
	insns, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	dis := Disassemble(insns)
	for _, want := range []string{
		"lddw r1, map_fd(3)",
		"mov r0, 0",
		"mov r6, r1",
		"ldxdw r2, [r1+8]",
		"stxdw [r10-8], r2",
		"stw [r10-16], 99",
		"call 5",
		"jeq r0, 0",
		"exit",
	} {
		if !strings.Contains(dis, want) {
			t.Errorf("disassembly missing %q:\n%s", want, dis)
		}
	}
}

func TestLoadImm64Halves(t *testing.T) {
	pair := LoadImm64(R4, 0xdeadbeefcafef00d)
	if uint32(pair[0].Imm) != 0xcafef00d {
		t.Fatalf("low half = %#x", uint32(pair[0].Imm))
	}
	if uint32(pair[1].Imm) != 0xdeadbeef {
		t.Fatalf("high half = %#x", uint32(pair[1].Imm))
	}
	if !pair[0].IsWideLoad() {
		t.Fatal("first slot should be a wide load")
	}
}

func TestAssemblerLabels(t *testing.T) {
	a := NewAssembler()
	a.Emit(Mov64Imm(R0, 0))
	a.JumpImm(JmpJEQ, R1, 0, "out") // placeholder jump over one insn
	a.Emit(Mov64Imm(R0, 1))
	a.Label("out")
	a.Emit(Exit())
	insns, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	if insns[1].Off != 1 {
		t.Fatalf("resolved offset = %d, want 1", insns[1].Off)
	}
}

func TestAssemblerBackwardJumpResolves(t *testing.T) {
	// The assembler resolves backward labels (the verifier rejects the
	// loop later; assembly itself must work).
	a := NewAssembler()
	a.Label("top")
	a.Emit(Mov64Imm(R0, 0))
	a.Jump("top")
	insns, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	if insns[1].Off != -2 {
		t.Fatalf("backward offset = %d, want -2", insns[1].Off)
	}
}

func TestAssemblerUndefinedLabel(t *testing.T) {
	a := NewAssembler()
	a.Jump("nowhere")
	if _, err := a.Assemble(); err == nil {
		t.Fatal("expected undefined label error")
	}
}

func TestAssemblerDuplicateLabel(t *testing.T) {
	a := NewAssembler()
	a.Label("x")
	a.Emit(Exit())
	a.Label("x")
	if _, err := a.Assemble(); err == nil {
		t.Fatal("expected duplicate label error")
	}
}

func TestRegisterString(t *testing.T) {
	if R7.String() != "r7" {
		t.Fatalf("R7.String() = %q", R7.String())
	}
}
