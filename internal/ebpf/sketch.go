package ebpf

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
)

// Sketch maps answer the high-cardinality question the exact map types
// cannot: per-PID / per-connection attribution at key populations in
// the millions, where one hash-map entry per key would dwarf the
// kernel's memory budget. Two structures from the measurement
// literature cover it:
//
//   - CMS (BPF_MAP_TYPE_CMS) is a count-min sketch: depth rows of
//     width counters, one pairwise-independent-style hash per row.
//     An update adds the increment to one counter per row; an estimate
//     takes the minimum over the rows. Estimates never underestimate,
//     and overestimate by more than εN (ε = e/width, N = total mass)
//     with probability at most δ = e^-depth per query.
//   - HashPipe (BPF_MAP_TYPE_HASHPIPE) is a d-stage pipelined hash
//     table for top-K heavy hitters: stage 1 always admits the new
//     key, evicting the incumbent into stage 2, and later stages keep
//     the larger of (resident, carried) so small flows — not big ones —
//     fall off the end of the pipe.
//
// BPF programs reach them only through the dedicated helpers
// (HelperCMSUpdate, HelperCMSEstimate, HelperHashPipeInsert); the
// verifier rejects the generic map helpers on sketch handles, since a
// sketch has no per-key value cell a map_lookup_elem pointer could
// name. The Map interface is still implemented for userspace readers
// (Lookup returns an estimate snapshot, not live storage).

// ErrSketchGeometry is returned by Merge when the two sketches'
// (keySize, width/depth or stages/slots) shapes differ: element-wise
// folding is only defined over identical geometry, since the per-row
// hash functions are derived from position.
var ErrSketchGeometry = errors.New("ebpf: sketch geometry mismatch")

// sketchSeed derives the fixed per-row hash seed. Seeds depend only on
// the row index — never on the map name — so any two sketches with the
// same geometry hash identically and can be merged element-wise.
func sketchSeed(row int) uint64 {
	// splitmix64 of the row index: cheap, and decorrelates rows.
	z := uint64(row+1) * 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// sketchHash hashes key under seed: seeded FNV-1a with a final
// avalanche so the low bits (consumed by the modulo row index) diffuse
// the whole key.
func sketchHash(seed uint64, key []byte) uint64 {
	h := seed ^ 14695981039346656037
	for _, b := range key {
		h ^= uint64(b)
		h *= 1099511628211
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

// CMS is a BPF_MAP_TYPE_CMS count-min sketch: depth×width uint64
// counters. The zero value is unusable; use NewCMS.
type CMS struct {
	name    string
	keySize int
	width   int
	depth   int
	rows    []uint64 // depth rows of width counters, row-major
	total   uint64   // N: sum of all increments ever applied (incl. merged)
	scratch [8]byte  // Lookup read-out buffer
}

// NewCMS creates a count-min sketch. keySize, width and depth must be
// positive; width is the per-row counter count (ε = e/width), depth the
// row count (δ = e^-depth).
func NewCMS(name string, keySize, width, depth int) *CMS {
	if keySize <= 0 || width <= 0 || depth <= 0 {
		panic(fmt.Sprintf("ebpf: invalid cms geometry %d/%d/%d", keySize, width, depth))
	}
	return &CMS{
		name: name, keySize: keySize, width: width, depth: depth,
		rows: make([]uint64, width*depth),
	}
}

// Name returns the map's name.
func (c *CMS) Name() string { return c.name }

// KeySize returns the fixed key size in bytes.
func (c *CMS) KeySize() int { return c.keySize }

// ValueSize is 8: estimates read out as one little-endian uint64.
func (c *CMS) ValueSize() int { return 8 }

// Width returns the per-row counter count.
func (c *CMS) Width() int { return c.width }

// Depth returns the row count.
func (c *CMS) Depth() int { return c.depth }

// Total returns N, the total mass added to the sketch.
func (c *CMS) Total() uint64 { return c.total }

// Bytes returns the sketch's map-space footprint: the counter array.
func (c *CMS) Bytes() int { return c.width * c.depth * 8 }

// Epsilon returns the relative error factor ε = e/width of the εN
// overestimate bound.
func (c *CMS) Epsilon() float64 { return math.E / float64(c.width) }

// Delta returns δ = e^-depth, the per-query probability the εN bound
// is exceeded.
func (c *CMS) Delta() float64 { return math.Exp(-float64(c.depth)) }

// ErrorBound returns εN, the overestimate bound that holds per query
// with probability at least 1−δ.
func (c *CMS) ErrorBound() uint64 {
	return uint64(math.Ceil(c.Epsilon() * float64(c.total)))
}

// Add folds inc into the sketch for key. Allocation-free.
func (c *CMS) Add(key []byte, inc uint64) {
	if len(key) != c.keySize {
		return
	}
	w := uint64(c.width)
	for d := 0; d < c.depth; d++ {
		idx := sketchHash(sketchSeed(d), key) % w
		c.rows[uint64(d)*w+idx] += inc
	}
	c.total += inc
}

// Estimate returns the count estimate for key: the minimum over the
// sketch's rows. Never underestimates the true count. Allocation-free.
func (c *CMS) Estimate(key []byte) uint64 {
	if len(key) != c.keySize {
		return 0
	}
	w := uint64(c.width)
	min := ^uint64(0)
	for d := 0; d < c.depth; d++ {
		idx := sketchHash(sketchSeed(d), key) % w
		if v := c.rows[uint64(d)*w+idx]; v < min {
			min = v
		}
	}
	return min
}

// Lookup implements Map for userspace readers: it writes the current
// estimate for key into an internal snapshot buffer and returns it.
// Unlike the exact maps, the returned slice is NOT live sketch storage
// (a sketch has no per-key cell) and is reused by the next Lookup. BPF
// programs cannot reach this path — the verifier rejects generic map
// helpers on sketch handles.
func (c *CMS) Lookup(key []byte) ([]byte, bool) {
	if len(key) != c.keySize {
		return nil, false
	}
	binary.LittleEndian.PutUint64(c.scratch[:], c.Estimate(key))
	return c.scratch[:], true
}

// Update implements Map for userspace writers: the little-endian uint64
// in value is added to the sketch for key (sketches have no overwrite,
// so every update is an increment; flags other than UpdateAny are
// rejected).
func (c *CMS) Update(key, value []byte, flags int) error {
	if len(key) != c.keySize {
		return ErrBadKeySize
	}
	if len(value) != 8 {
		return ErrBadValSize
	}
	if flags != UpdateAny {
		return errors.New("ebpf: cms update supports only UpdateAny")
	}
	c.Add(key, binary.LittleEndian.Uint64(value))
	return nil
}

// Delete is invalid on a count-min sketch (counts cannot be unfolded).
func (c *CMS) Delete(key []byte) error {
	return errors.New("ebpf: delete not supported on cms")
}

// Merge folds other into c element-wise. Merging is commutative and
// associative — counter addition — so any fold order over a set of
// per-node sketches yields bit-identical rows and totals. Geometry
// (keySize, width, depth) must match.
func (c *CMS) Merge(other *CMS) error {
	if other.keySize != c.keySize || other.width != c.width || other.depth != c.depth {
		return ErrSketchGeometry
	}
	for i, v := range other.rows {
		c.rows[i] += v
	}
	c.total += other.total
	return nil
}

// Clone returns a deep copy (a scrape-time snapshot the aggregation
// plane can merge later without racing the live probe).
func (c *CMS) Clone() *CMS {
	n := NewCMS(c.name, c.keySize, c.width, c.depth)
	copy(n.rows, c.rows)
	n.total = c.total
	return n
}

// Reset zeroes the sketch.
func (c *CMS) Reset() {
	for i := range c.rows {
		c.rows[i] = 0
	}
	c.total = 0
}

// hpMaxKey bounds HashPipe key sizes so slots can hold keys inline
// (fixed arrays, no per-entry allocation).
const hpMaxKey = 16

// hpSlot is one HashPipe table cell. Keys are stored inline; used
// distinguishes an empty slot from a live zero key.
type hpSlot struct {
	key   [hpMaxKey]byte
	count uint64
	used  bool
}

// HashPipe is a BPF_MAP_TYPE_HASHPIPE d-stage top-K heavy-hitter
// table. The zero value is unusable; use NewHashPipe.
type HashPipe struct {
	name    string
	keySize int
	stages  int
	slots   int      // per stage
	table   []hpSlot // stages*slots, stage-major
	scratch [8]byte  // Lookup read-out buffer
}

// NewHashPipe creates a HashPipe with stages×slots cells. keySize must
// be 1..16 so keys store inline; stages and slots must be positive.
func NewHashPipe(name string, keySize, stages, slots int) *HashPipe {
	if keySize <= 0 || keySize > hpMaxKey || stages <= 0 || slots <= 0 {
		panic(fmt.Sprintf("ebpf: invalid hashpipe geometry %d/%d/%d", keySize, stages, slots))
	}
	return &HashPipe{
		name: name, keySize: keySize, stages: stages, slots: slots,
		table: make([]hpSlot, stages*slots),
	}
}

// Name returns the map's name.
func (h *HashPipe) Name() string { return h.name }

// KeySize returns the fixed key size in bytes.
func (h *HashPipe) KeySize() int { return h.keySize }

// ValueSize is 8: counts read out as one little-endian uint64.
func (h *HashPipe) ValueSize() int { return 8 }

// Stages returns the pipeline depth.
func (h *HashPipe) Stages() int { return h.stages }

// Slots returns the per-stage slot count.
func (h *HashPipe) Slots() int { return h.slots }

// Bytes returns the map-space footprint of the modeled structure:
// every cell holds a key and a count.
func (h *HashPipe) Bytes() int { return h.stages * h.slots * (h.keySize + 8) }

func (h *HashPipe) slotKeyEqual(s *hpSlot, key []byte) bool {
	return bytes.Equal(s.key[:h.keySize], key)
}

// Insert folds inc into the pipe for key, following the HashPipe
// algorithm: stage 1 always admits the incoming key (evicting the
// incumbent into the carry), later stages keep the larger of resident
// and carried entry and push the smaller onward; a carry surviving the
// last stage is dropped. The return value is the 1-based stage where
// the carried entry settled, or 0 if it fell off the end — a
// deterministic function of the insertion history, pinned by the
// differential suite. Allocation-free.
func (h *HashPipe) Insert(key []byte, inc uint64) uint64 {
	if len(key) != h.keySize {
		return 0
	}
	var carry [hpMaxKey]byte
	copy(carry[:], key)
	carryCount := inc

	// Stage 1: match or always-insert.
	idx := sketchHash(sketchSeed(0), carry[:h.keySize]) % uint64(h.slots)
	s := &h.table[idx]
	if !s.used {
		s.key, s.count, s.used = carry, carryCount, true
		return 1
	}
	if h.slotKeyEqual(s, carry[:h.keySize]) {
		s.count += carryCount
		return 1
	}
	s.key, carry = carry, s.key
	s.count, carryCount = carryCount, s.count

	// Stages 2..d: keep the larger, carry the smaller.
	for st := 1; st < h.stages; st++ {
		idx := sketchHash(sketchSeed(st), carry[:h.keySize]) % uint64(h.slots)
		s := &h.table[st*h.slots+int(idx)]
		if !s.used {
			s.key, s.count, s.used = carry, carryCount, true
			return uint64(st + 1)
		}
		if h.slotKeyEqual(s, carry[:h.keySize]) {
			s.count += carryCount
			return uint64(st + 1)
		}
		if s.count < carryCount {
			s.key, carry = carry, s.key
			s.count, carryCount = carryCount, s.count
		}
	}
	return 0 // the final carry's mass is discarded (the approximation)
}

// HPEntry is one resident (key, count) pair read out of a HashPipe.
type HPEntry struct {
	// Key is a copy of the resident key (KeySize bytes).
	Key []byte
	// Count is the resident count (summed across stages).
	Count uint64
}

// Entries returns every resident entry, counts summed across stages
// for keys resident in more than one (possible after merges), sorted
// by descending count with byte-order key ties — a deterministic
// userspace read-out, not a BPF-visible operation.
func (h *HashPipe) Entries() []HPEntry {
	acc := make(map[string]uint64, h.stages*h.slots)
	for i := range h.table {
		s := &h.table[i]
		if s.used {
			acc[string(s.key[:h.keySize])] += s.count
		}
	}
	out := make([]HPEntry, 0, len(acc))
	for k, v := range acc {
		out = append(out, HPEntry{Key: []byte(k), Count: v})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return bytes.Compare(out[i].Key, out[j].Key) < 0
	})
	return out
}

// TopK returns the k highest-count resident entries (fewer if the pipe
// holds fewer keys).
func (h *HashPipe) TopK(k int) []HPEntry {
	e := h.Entries()
	if k < len(e) {
		e = e[:k]
	}
	return e
}

// Lookup implements Map for userspace readers: the resident count for
// key (summed across stages), through an internal snapshot buffer. A
// key not resident in any stage reports !ok — HashPipe forgets small
// flows by design.
func (h *HashPipe) Lookup(key []byte) ([]byte, bool) {
	if len(key) != h.keySize {
		return nil, false
	}
	var sum uint64
	found := false
	for i := range h.table {
		s := &h.table[i]
		if s.used && h.slotKeyEqual(s, key) {
			sum += s.count
			found = true
		}
	}
	if !found {
		return nil, false
	}
	binary.LittleEndian.PutUint64(h.scratch[:], sum)
	return h.scratch[:], true
}

// Update implements Map for userspace writers: the little-endian
// uint64 in value is inserted for key via Insert. Only UpdateAny is
// meaningful on a pipe.
func (h *HashPipe) Update(key, value []byte, flags int) error {
	if len(key) != h.keySize {
		return ErrBadKeySize
	}
	if len(value) != 8 {
		return ErrBadValSize
	}
	if flags != UpdateAny {
		return errors.New("ebpf: hashpipe update supports only UpdateAny")
	}
	h.Insert(key, binary.LittleEndian.Uint64(value))
	return nil
}

// Delete is invalid on a HashPipe.
func (h *HashPipe) Delete(key []byte) error {
	return errors.New("ebpf: delete not supported on hashpipe")
}

// Merge folds other's resident entries into h. The union of both
// pipes' entries is summed per key and re-inserted into a cleared h in
// descending-count order (key-byte ties), so the result is a
// deterministic, symmetric function of the two entry sets: merge(a,b)
// and merge(b,a) leave bit-identical tables. Geometry must match.
func (h *HashPipe) Merge(other *HashPipe) error {
	if other.keySize != h.keySize || other.stages != h.stages || other.slots != h.slots {
		return ErrSketchGeometry
	}
	mine := h.Entries()
	theirs := other.Entries()
	acc := make(map[string]uint64, len(mine)+len(theirs))
	for _, e := range mine {
		acc[string(e.Key)] += e.Count
	}
	for _, e := range theirs {
		acc[string(e.Key)] += e.Count
	}
	merged := make([]HPEntry, 0, len(acc))
	for k, v := range acc {
		merged = append(merged, HPEntry{Key: []byte(k), Count: v})
	}
	sort.Slice(merged, func(i, j int) bool {
		if merged[i].Count != merged[j].Count {
			return merged[i].Count > merged[j].Count
		}
		return bytes.Compare(merged[i].Key, merged[j].Key) < 0
	})
	h.Reset()
	for _, e := range merged {
		h.Insert(e.Key, e.Count)
	}
	return nil
}

// Clone returns a deep copy (a scrape-time snapshot).
func (h *HashPipe) Clone() *HashPipe {
	n := NewHashPipe(h.name, h.keySize, h.stages, h.slots)
	copy(n.table, h.table)
	return n
}

// Reset empties the pipe.
func (h *HashPipe) Reset() {
	for i := range h.table {
		h.table[i] = hpSlot{}
	}
}

// isSketch reports whether m is one of the helper-only sketch types
// the generic map helpers must not touch.
func isSketch(m Map) bool {
	switch m.(type) {
	case *CMS, *HashPipe:
		return true
	}
	return false
}
