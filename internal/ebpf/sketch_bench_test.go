package ebpf

import (
	"encoding/binary"
	"testing"
)

// BenchmarkSketchHotPath measures the compiled sketch helper chain the
// attribution probe rides — one cms_update + cms_estimate +
// hashpipe_insert per program run — and reports, alongside ns/op, the
// sustained update rate and the count-min estimate error observed at
// the program's width×depth after the run. scripts/bench.sh records
// these in BENCH_sketch.json so successive PRs can diff both the cost
// and the accuracy of the fixed-space path.
func BenchmarkSketchHotPath(b *testing.B) {
	const keys = 512
	p, cms, _ := sketchHotProgram(b)
	ctx := make([]byte, 16)
	env := &FixedEnv{}
	binary.LittleEndian.PutUint64(ctx[8:16], 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		binary.LittleEndian.PutUint64(ctx[0:8], uint64(i)%keys)
		if _, _, err := p.Run(ctx, env); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "updates/s")

	// Round-robin truth: key k received ceil/floor(N/keys) increments.
	// Mean absolute estimate error over all keys is the accuracy figure
	// for this width×depth at this fill level.
	key := make([]byte, 8)
	var errSum float64
	for k := uint64(0); k < keys; k++ {
		truth := uint64(b.N) / keys
		if k < uint64(b.N)%keys {
			truth++
		}
		binary.LittleEndian.PutUint64(key, k)
		est := cms.Estimate(key)
		if est < truth {
			b.Fatalf("key %d: underestimate %d < %d", k, est, truth)
		}
		errSum += float64(est - truth)
	}
	b.ReportMetric(errSum/keys, "err/query")
	b.ReportMetric(float64(cms.Bytes()), "sketchB")
}
