package ebpf

import (
	"math/rand"
	"testing"
)

// TestFuzzVerifierSoundness is the verifier's core safety property under
// random inputs: for arbitrary instruction streams the verifier must
// never panic, and any program it ACCEPTS must execute without a runtime
// fault for any context contents. This is the same contract the Linux
// verifier owes the kernel.
func TestFuzzVerifierSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	maps := map[int32]Map{
		1: NewHashMap("h", 8, 8, 32),
		2: NewArrayMap("a", 16, 4),
		3: NewRingBuf("r", 4096),
	}
	env := &FixedEnv{TimeNS: 123, PidTgid: 42<<32 | 7, CPU: 1}

	const trials = 4000
	accepted := 0
	for trial := 0; trial < trials; trial++ {
		n := 1 + rng.Intn(24)
		insns := make([]Instruction, n)
		for i := range insns {
			insns[i] = randomInsn(rng, n)
		}
		// Random streams rarely end in exit; help half of them.
		if rng.Intn(2) == 0 {
			insns = append(insns, Mov64Imm(R0, 0), Exit())
		}

		prog, err := func() (p *Program, err error) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("verifier panicked on trial %d: %v\n%s", trial, r, Disassemble(insns))
				}
			}()
			return Load(ProgramSpec{Name: "fuzz", Insns: insns, Maps: maps, CtxSize: 64})
		}()
		if err != nil {
			continue
		}
		accepted++
		ctx := make([]byte, 64)
		rng.Read(ctx)
		if _, _, err := prog.Run(ctx, env); err != nil {
			t.Fatalf("verified program faulted on trial %d: %v\n%s", trial, err, Disassemble(insns))
		}
	}
	if accepted == 0 {
		t.Fatal("fuzzer accepted nothing; generator too hostile to be meaningful")
	}
	t.Logf("accepted %d/%d random programs", accepted, trials)
}

// randomInsn draws from a weighted mix of plausible instructions so a
// useful fraction of programs reach the verifier's deeper passes.
func randomInsn(rng *rand.Rand, progLen int) Instruction {
	reg := func() Register { return Register(rng.Intn(11)) }
	off := func() int16 { return int16(rng.Intn(2*progLen) - progLen) }
	stackOff := func() int16 { return int16(-8 * (1 + rng.Intn(8))) }
	switch rng.Intn(12) {
	case 0:
		return Mov64Imm(reg(), int32(rng.Intn(1024)))
	case 1:
		return Mov64Reg(reg(), reg())
	case 2:
		return Add64Imm(reg(), int32(rng.Intn(64)-32))
	case 3:
		return Add64Reg(reg(), reg())
	case 4:
		return LoadMem(reg(), reg(), stackOff(), SizeDW)
	case 5:
		return StoreMem(reg(), stackOff(), reg(), SizeDW)
	case 6:
		return JmpImm(JmpJEQ, reg(), int32(rng.Intn(16)), off())
	case 7:
		return JmpImm32(JmpJLT, reg(), int32(rng.Intn(16)), off())
	case 8:
		return Call([]int32{HelperKtimeGetNS, HelperGetCurrentPidTgid, HelperMapLookupElem}[rng.Intn(3)])
	case 9:
		return AtomicAdd64(reg(), stackOff(), reg())
	case 10:
		return Exit()
	default:
		return Instruction{
			Op:  uint8(rng.Intn(256)),
			Dst: Register(rng.Intn(16)),
			Src: Register(rng.Intn(16)),
			Off: off(),
			Imm: int32(rng.Uint32()),
		}
	}
}
