package ebpf

import (
	"math/rand"
	"testing"
)

// TestFuzzVerifierSoundness is the verifier's core safety property under
// random inputs: for arbitrary instruction streams the verifier must
// never panic, and any program it ACCEPTS must execute without a runtime
// fault for any context contents. This is the same contract the Linux
// verifier owes the kernel.
func TestFuzzVerifierSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	maps := map[int32]Map{
		1: NewHashMap("h", 8, 8, 32),
		2: NewArrayMap("a", 16, 4),
		3: NewRingBuf("r", 4096),
	}
	env := &FixedEnv{TimeNS: 123, PidTgid: 42<<32 | 7, CPU: 1}

	const trials = 4000
	accepted := 0
	for trial := 0; trial < trials; trial++ {
		n := 1 + rng.Intn(24)
		insns := make([]Instruction, n)
		for i := range insns {
			insns[i] = randomInsn(rng, n)
		}
		// Random streams rarely end in exit; help half of them.
		if rng.Intn(2) == 0 {
			insns = append(insns, Mov64Imm(R0, 0), Exit())
		}

		prog, err := func() (p *Program, err error) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("verifier panicked on trial %d: %v\n%s", trial, r, Disassemble(insns))
				}
			}()
			return Load(ProgramSpec{Name: "fuzz", Insns: insns, Maps: maps, CtxSize: 64})
		}()
		if err != nil {
			continue
		}
		accepted++
		ctx := make([]byte, 64)
		rng.Read(ctx)
		if _, _, err := prog.Run(ctx, env); err != nil {
			t.Fatalf("verified program faulted on trial %d: %v\n%s", trial, err, Disassemble(insns))
		}
	}
	if accepted == 0 {
		t.Fatal("fuzzer accepted nothing; generator too hostile to be meaningful")
	}
	t.Logf("accepted %d/%d random programs", accepted, trials)
}

// FuzzVerifier is the native fuzz entry point over encoded instruction
// streams (8 bytes per slot, the wire format). The seed corpus includes
// well-formed programs for every helper — notably the ringbuf output and
// query opcodes — so mutation starts from inputs that reach the deep
// helper-argument checks instead of dying in structural validation.
func FuzzVerifier(f *testing.F) {
	// Seed: a full ringbuf_output sequence (build record on stack, load
	// the ring handle, call helper 130) followed by a ringbuf_query.
	a := NewAssembler()
	a.Emit(
		Mov64Imm(R2, 7),
		StoreMem(R10, -8, R2, SizeDW),
	)
	a.EmitWide(LoadMapFD(R1, 3))
	a.Emit(
		Mov64Reg(R2, R10),
		Add64Imm(R2, -8),
		Mov64Imm(R3, 8),
		Mov64Imm(R4, 0),
		Call(HelperRingbufOutput),
	)
	a.EmitWide(LoadMapFD(R1, 3))
	a.Emit(
		Mov64Imm(R2, RingbufAvailData),
		Call(HelperRingbufQuery),
		Exit(),
	)
	f.Add(Encode(a.MustAssemble()))
	// Seed: a map lookup with a null check, the other deep helper path.
	b := NewAssembler()
	b.Emit(
		Mov64Imm(R2, 1),
		StoreMem(R10, -8, R2, SizeDW),
	)
	b.EmitWide(LoadMapFD(R1, 1))
	b.Emit(
		Mov64Reg(R2, R10),
		Add64Imm(R2, -8),
		Call(HelperMapLookupElem),
	)
	b.JumpImm(JmpJEQ, R0, 0, "miss")
	b.Emit(LoadMem(R0, R0, 0, SizeDW))
	b.Label("miss")
	b.Emit(Mov64Imm(R0, 0), Exit())
	f.Add(Encode(b.MustAssemble()))
	f.Add(Encode([]Instruction{Mov64Imm(R0, 0), Exit()}))
	// Seeds from the differential generator: verifier-accepted programs
	// mixing ALU, stack/ctx memory, pointer spills, branches, and every
	// helper, so mutation starts deep inside the accepted grammar.
	gen := rand.New(rand.NewSource(23))
	for i := 0; i < 4; i++ {
		f.Add(Encode(genProgram(gen)))
	}

	f.Fuzz(func(t *testing.T, raw []byte) {
		insns, err := Decode(raw)
		if err != nil || len(insns) == 0 {
			return
		}
		maps := map[int32]Map{
			1: NewHashMap("h", 8, 8, 32),
			2: NewArrayMap("a", 16, 4),
			3: NewRingBuf("r", 4096),
		}
		prog, err := Load(ProgramSpec{Name: "fuzz", Insns: insns, Maps: maps, CtxSize: 64})
		if err != nil {
			return
		}
		env := &FixedEnv{TimeNS: 123, PidTgid: 42<<32 | 7, CPU: 1}
		if _, _, err := prog.Run(make([]byte, 64), env); err != nil {
			t.Fatalf("verified program faulted: %v\n%s", err, Disassemble(insns))
		}
	})
}

// randomInsn draws from a weighted mix of plausible instructions so a
// useful fraction of programs reach the verifier's deeper passes.
func randomInsn(rng *rand.Rand, progLen int) Instruction {
	reg := func() Register { return Register(rng.Intn(11)) }
	off := func() int16 { return int16(rng.Intn(2*progLen) - progLen) }
	stackOff := func() int16 { return int16(-8 * (1 + rng.Intn(8))) }
	switch rng.Intn(12) {
	case 0:
		return Mov64Imm(reg(), int32(rng.Intn(1024)))
	case 1:
		return Mov64Reg(reg(), reg())
	case 2:
		return Add64Imm(reg(), int32(rng.Intn(64)-32))
	case 3:
		return Add64Reg(reg(), reg())
	case 4:
		return LoadMem(reg(), reg(), stackOff(), SizeDW)
	case 5:
		return StoreMem(reg(), stackOff(), reg(), SizeDW)
	case 6:
		return JmpImm(JmpJEQ, reg(), int32(rng.Intn(16)), off())
	case 7:
		return JmpImm32(JmpJLT, reg(), int32(rng.Intn(16)), off())
	case 8:
		return Call([]int32{
			HelperKtimeGetNS, HelperGetCurrentPidTgid, HelperMapLookupElem,
			HelperRingbufOutput, HelperRingbufQuery,
		}[rng.Intn(5)])
	case 9:
		return AtomicAdd64(reg(), stackOff(), reg())
	case 10:
		return Exit()
	default:
		return Instruction{
			Op:  uint8(rng.Intn(256)),
			Dst: Register(rng.Intn(16)),
			Src: Register(rng.Intn(16)),
			Off: off(),
			Imm: int32(rng.Uint32()),
		}
	}
}
