package ebpf

import (
	"encoding/binary"
	"testing"
	"testing/quick"
)

var testEnv = &FixedEnv{TimeNS: 1_000_000, PidTgid: 42<<32 | 43, CPU: 2}

func runProg(t *testing.T, insns []Instruction, maps map[int32]Map, ctx []byte) uint64 {
	t.Helper()
	ctxSize := len(ctx)
	p, err := Load(ProgramSpec{Name: "t", Insns: insns, Maps: maps, CtxSize: ctxSize})
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	ret, _, err := p.Run(ctx, testEnv)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return ret
}

func TestVMReturnConstant(t *testing.T) {
	got := runProg(t, []Instruction{Mov64Imm(R0, 1234), Exit()}, nil, nil)
	if got != 1234 {
		t.Fatalf("ret = %d", got)
	}
}

func TestVMALUOps(t *testing.T) {
	cases := []struct {
		name string
		prog []Instruction
		want uint64
	}{
		{"add", []Instruction{Mov64Imm(R0, 7), Add64Imm(R0, 5), Exit()}, 12},
		{"sub", []Instruction{Mov64Imm(R0, 7), Sub64Imm(R0, 5), Exit()}, 2},
		{"mul", []Instruction{Mov64Imm(R0, 7), Mul64Imm(R0, 5), Exit()}, 35},
		{"div", []Instruction{Mov64Imm(R0, 36), Div64Imm(R0, 5), Exit()}, 7},
		{"mod", []Instruction{Mov64Imm(R0, 36), Mod64Imm(R0, 5), Exit()}, 1},
		{"and", []Instruction{Mov64Imm(R0, 0xff), And64Imm(R0, 0x0f), Exit()}, 0x0f},
		{"or", []Instruction{Mov64Imm(R0, 0xf0), Or64Imm(R0, 0x0f), Exit()}, 0xff},
		{"lsh", []Instruction{Mov64Imm(R0, 1), Lsh64Imm(R0, 8), Exit()}, 256},
		{"rsh", []Instruction{Mov64Imm(R0, 256), Rsh64Imm(R0, 4), Exit()}, 16},
		{"neg-as-sub", []Instruction{Mov64Imm(R0, 0), Sub64Imm(R0, 5), Exit()}, ^uint64(4)},
		{"arsh", []Instruction{Mov64Imm(R0, -16), Arsh64Imm(R0, 2), Exit()}, ^uint64(3)},
		{"regreg", []Instruction{Mov64Imm(R1, 20), Mov64Imm(R0, 22), Add64Reg(R0, R1), Exit()}, 42},
		{"xor-self", []Instruction{Mov64Imm(R0, 99), Mov64Reg(R1, R0), Xor64Reg(R0, R1), Exit()}, 0},
		{"neg", []Instruction{Mov64Imm(R0, 5), Neg64(R0), Exit()}, ^uint64(4)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := runProg(t, c.prog, nil, nil); got != c.want {
				t.Fatalf("ret = %#x, want %#x", got, c.want)
			}
		})
	}
}

func TestVMDivModByZeroRegister(t *testing.T) {
	// Linux semantics: x/0 == 0, x%0 == x.
	div := []Instruction{
		Mov64Imm(R0, 10),
		Mov64Imm(R1, 0),
		Div64Reg(R0, R1),
		Exit(),
	}
	if got := runProg(t, div, nil, nil); got != 0 {
		t.Fatalf("div by zero = %d, want 0", got)
	}
}

func TestVMWideLoad(t *testing.T) {
	a := NewAssembler()
	a.EmitWide(LoadImm64(R0, 0xdeadbeefcafef00d))
	a.Emit(Exit())
	if got := runProg(t, a.MustAssemble(), nil, nil); got != 0xdeadbeefcafef00d {
		t.Fatalf("ret = %#x", got)
	}
}

func TestVMCtxReads(t *testing.T) {
	ctx := make([]byte, 24)
	binary.LittleEndian.PutUint64(ctx[8:], 232)
	prog := []Instruction{
		LoadMem(R0, R1, 8, SizeDW),
		Exit(),
	}
	if got := runProg(t, prog, nil, ctx); got != 232 {
		t.Fatalf("ctx read = %d", got)
	}
}

func TestVMNarrowLoads(t *testing.T) {
	ctx := []byte{0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88}
	for _, c := range []struct {
		size uint8
		want uint64
	}{
		{SizeB, 0x11},
		{SizeH, 0x2211},
		{SizeW, 0x44332211},
		{SizeDW, 0x8877665544332211},
	} {
		prog := []Instruction{LoadMem(R0, R1, 0, c.size), Exit()}
		if got := runProg(t, prog, nil, ctx); got != c.want {
			t.Fatalf("size %#x: got %#x, want %#x", c.size, got, c.want)
		}
	}
}

func TestVMStackStoreLoad(t *testing.T) {
	prog := []Instruction{
		Mov64Imm(R2, 777),
		StoreMem(R10, -8, R2, SizeDW),
		LoadMem(R0, R10, -8, SizeDW),
		Exit(),
	}
	if got := runProg(t, prog, nil, nil); got != 777 {
		t.Fatalf("stack roundtrip = %d", got)
	}
}

func TestVMStoreImmNarrow(t *testing.T) {
	prog := []Instruction{
		StoreImm(R10, -8, -1, SizeDW),
		StoreImm(R10, -8, 0xab, SizeB), // overwrite lowest byte
		LoadMem(R0, R10, -8, SizeB),
		Exit(),
	}
	if got := runProg(t, prog, nil, nil); got != 0xab {
		t.Fatalf("narrow store = %#x", got)
	}
}

func TestVMBranches(t *testing.T) {
	mk := func(op uint8, lhs int32, rhs int32) []Instruction {
		a := NewAssembler()
		a.Emit(Mov64Imm(R1, lhs))
		a.JumpImm(op, R1, rhs, "taken")
		a.Emit(Mov64Imm(R0, 0))
		a.Emit(Exit())
		a.Label("taken")
		a.Emit(Mov64Imm(R0, 1))
		a.Emit(Exit())
		return a.MustAssemble()
	}
	cases := []struct {
		name     string
		op       uint8
		lhs, rhs int32
		want     uint64
	}{
		{"jeq-t", JmpJEQ, 5, 5, 1},
		{"jeq-f", JmpJEQ, 5, 6, 0},
		{"jne-t", JmpJNE, 5, 6, 1},
		{"jgt-t", JmpJGT, 6, 5, 1},
		{"jgt-f", JmpJGT, 5, 5, 0},
		{"jge-t", JmpJGE, 5, 5, 1},
		{"jlt-t", JmpJLT, 4, 5, 1},
		{"jle-t", JmpJLE, 5, 5, 1},
		{"jset-t", JmpJSET, 6, 2, 1},
		{"jset-f", JmpJSET, 4, 2, 0},
		{"jsgt-negative", JmpJSGT, -1, -2, 1},
		{"jslt-negative", JmpJSLT, -2, -1, 1},
		{"jsge-t", JmpJSGE, -1, -1, 1},
		{"jsle-t", JmpJSLE, -5, -1, 1},
		{"unsigned-vs-signed", JmpJGT, -1, 1, 1}, // -1 is huge unsigned
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := runProg(t, mk(c.op, c.lhs, c.rhs), nil, nil); got != c.want {
				t.Fatalf("got %d, want %d", got, c.want)
			}
		})
	}
}

func TestVMHelpersAmbient(t *testing.T) {
	for _, c := range []struct {
		name string
		id   int32
		want uint64
	}{
		{"ktime", HelperKtimeGetNS, testEnv.TimeNS},
		{"pidtgid", HelperGetCurrentPidTgid, testEnv.PidTgid},
		{"cpu", HelperGetSMPProcID, uint64(testEnv.CPU)},
	} {
		t.Run(c.name, func(t *testing.T) {
			prog := []Instruction{Call(c.id), Exit()}
			if got := runProg(t, prog, nil, nil); got != c.want {
				t.Fatalf("helper %d = %d, want %d", c.id, got, c.want)
			}
		})
	}
}

// mapRWProg stores key=1 value=7, reads it back, and returns the value.
func mapRWProg() []Instruction {
	a := NewAssembler()
	a.Emit(
		Mov64Imm(R2, 1),
		StoreMem(R10, -8, R2, SizeDW), // key
		Mov64Imm(R3, 7),
		StoreMem(R10, -16, R3, SizeDW), // value
	)
	a.EmitWide(LoadMapFD(R1, 1))
	a.Emit(
		Mov64Reg(R2, R10),
		Add64Imm(R2, -8),
		Mov64Reg(R3, R10),
		Add64Imm(R3, -16),
		Mov64Imm(R4, 0),
		Call(HelperMapUpdateElem),
	)
	a.EmitWide(LoadMapFD(R1, 1))
	a.Emit(
		Mov64Reg(R2, R10),
		Add64Imm(R2, -8),
		Call(HelperMapLookupElem),
	)
	a.JumpImm(JmpJEQ, R0, 0, "miss")
	a.Emit(LoadMem(R0, R0, 0, SizeDW))
	a.Emit(Exit())
	a.Label("miss")
	a.Emit(Mov64Imm(R0, ^int32(0)), Exit())
	return a.MustAssemble()
}

func TestVMMapUpdateLookup(t *testing.T) {
	m := NewHashMap("m", 8, 8, 16)
	got := runProg(t, mapRWProg(), map[int32]Map{1: m}, nil)
	if got != 7 {
		t.Fatalf("map roundtrip = %d, want 7", got)
	}
	if m.Len() != 1 {
		t.Fatalf("map len = %d", m.Len())
	}
}

func TestVMMapLookupMiss(t *testing.T) {
	a := NewAssembler()
	a.Emit(
		Mov64Imm(R2, 99),
		StoreMem(R10, -8, R2, SizeDW),
	)
	a.EmitWide(LoadMapFD(R1, 1))
	a.Emit(
		Mov64Reg(R2, R10),
		Add64Imm(R2, -8),
		Call(HelperMapLookupElem),
	)
	a.JumpImm(JmpJEQ, R0, 0, "miss")
	a.Emit(Mov64Imm(R0, 1), Exit())
	a.Label("miss")
	a.Emit(Mov64Imm(R0, 2), Exit())
	got := runProg(t, a.MustAssemble(), map[int32]Map{1: NewHashMap("m", 8, 8, 4)}, nil)
	if got != 2 {
		t.Fatalf("miss path = %d, want 2", got)
	}
}

func TestVMMapValueInPlaceUpdate(t *testing.T) {
	// Increment a counter living in the map value, as the paper's
	// in-kernel statistics programs do.
	m := NewHashMap("m", 8, 8, 4)
	key := u64key(5)
	if err := m.Update(key, u64key(10), UpdateAny); err != nil {
		t.Fatal(err)
	}
	a := NewAssembler()
	a.Emit(
		Mov64Imm(R2, 5),
		StoreMem(R10, -8, R2, SizeDW),
	)
	a.EmitWide(LoadMapFD(R1, 1))
	a.Emit(
		Mov64Reg(R2, R10),
		Add64Imm(R2, -8),
		Call(HelperMapLookupElem),
	)
	a.JumpImm(JmpJEQ, R0, 0, "miss")
	a.Emit(
		LoadMem(R1, R0, 0, SizeDW),
		Add64Imm(R1, 1),
		StoreMem(R0, 0, R1, SizeDW),
		Mov64Imm(R0, 0),
		Exit(),
	)
	a.Label("miss")
	a.Emit(Mov64Imm(R0, 1), Exit())
	if got := runProg(t, a.MustAssemble(), map[int32]Map{1: m}, nil); got != 0 {
		t.Fatalf("ret = %d", got)
	}
	v, _ := m.Lookup(key)
	if binary.LittleEndian.Uint64(v) != 11 {
		t.Fatalf("counter = %d, want 11", binary.LittleEndian.Uint64(v))
	}
}

func TestVMMapDelete(t *testing.T) {
	m := NewHashMap("m", 8, 8, 4)
	if err := m.Update(u64key(1), u64key(1), UpdateAny); err != nil {
		t.Fatal(err)
	}
	a := NewAssembler()
	a.Emit(
		Mov64Imm(R2, 1),
		StoreMem(R10, -8, R2, SizeDW),
	)
	a.EmitWide(LoadMapFD(R1, 1))
	a.Emit(
		Mov64Reg(R2, R10),
		Add64Imm(R2, -8),
		Call(HelperMapDeleteElem),
		Mov64Imm(R0, 0),
		Exit(),
	)
	runProg(t, a.MustAssemble(), map[int32]Map{1: m}, nil)
	if m.Len() != 0 {
		t.Fatal("delete did not remove the key")
	}
}

func TestVMRingbufOutput(t *testing.T) {
	rb := NewRingBuf("rb", 4096)
	a := NewAssembler()
	a.Emit(
		Mov64Imm(R2, 0x0a0b),
		StoreMem(R10, -8, R2, SizeDW),
	)
	a.EmitWide(LoadMapFD(R1, 1))
	a.Emit(
		Mov64Reg(R2, R10),
		Add64Imm(R2, -8),
		Mov64Imm(R3, 8),
		Mov64Imm(R4, 0),
		Call(HelperRingbufOutput),
		Exit(),
	)
	if got := runProg(t, a.MustAssemble(), map[int32]Map{1: rb}, nil); got != 0 {
		t.Fatalf("ringbuf_output ret = %d", got)
	}
	recs := rb.Drain()
	if len(recs) != 1 || binary.LittleEndian.Uint64(recs[0]) != 0x0a0b {
		t.Fatalf("records = %v", recs)
	}
}

func TestVMRunStatsCounting(t *testing.T) {
	p := MustLoad(ProgramSpec{Name: "s", Insns: []Instruction{
		Mov64Imm(R0, 0),
		Call(HelperKtimeGetNS),
		Exit(),
	}})
	_, st, err := p.Run(nil, testEnv)
	if err != nil {
		t.Fatal(err)
	}
	if st.Instructions != 3 {
		t.Fatalf("Instructions = %d, want 3", st.Instructions)
	}
	if st.HelperCalls != 1 {
		t.Fatalf("HelperCalls = %d, want 1", st.HelperCalls)
	}
	if p.Runs() != 1 {
		t.Fatalf("Runs = %d", p.Runs())
	}
}

func TestVMCtxSizeMismatch(t *testing.T) {
	p := MustLoad(ProgramSpec{Name: "s", Insns: []Instruction{Mov64Imm(R0, 0), Exit()}, CtxSize: 8})
	if _, _, err := p.Run(make([]byte, 16), testEnv); err == nil {
		t.Fatal("ctx size mismatch should error")
	}
}

func TestVM32BitOpsTruncate(t *testing.T) {
	a := NewAssembler()
	a.EmitWide(LoadImm64(R0, 0xffffffff_00000001))
	a.Emit(
		Instruction{Op: ClassALU | ALUAdd | SrcK, Dst: R0, Imm: 1}, // 32-bit add
		Exit(),
	)
	if got := runProg(t, a.MustAssemble(), nil, nil); got != 2 {
		t.Fatalf("32-bit add = %#x, want 2 (upper bits cleared)", got)
	}
}

// Property: the interpreter's scalar ALU agrees with Go's own arithmetic
// for random operand pairs across ops.
func TestPropertyVMALUMatchesGo(t *testing.T) {
	type alu struct {
		build func(a *Assembler, x, y uint64)
		gold  func(x, y uint64) uint64
	}
	ops := []alu{
		{func(a *Assembler, x, y uint64) {
			a.EmitWide(LoadImm64(R0, x))
			a.EmitWide(LoadImm64(R1, y))
			a.Emit(Add64Reg(R0, R1))
		}, func(x, y uint64) uint64 { return x + y }},
		{func(a *Assembler, x, y uint64) {
			a.EmitWide(LoadImm64(R0, x))
			a.EmitWide(LoadImm64(R1, y))
			a.Emit(Sub64Reg(R0, R1))
		}, func(x, y uint64) uint64 { return x - y }},
		{func(a *Assembler, x, y uint64) {
			a.EmitWide(LoadImm64(R0, x))
			a.EmitWide(LoadImm64(R1, y))
			a.Emit(Mul64Reg(R0, R1))
		}, func(x, y uint64) uint64 { return x * y }},
		{func(a *Assembler, x, y uint64) {
			a.EmitWide(LoadImm64(R0, x))
			a.EmitWide(LoadImm64(R1, y))
			a.Emit(Div64Reg(R0, R1))
		}, func(x, y uint64) uint64 {
			if y == 0 {
				return 0
			}
			return x / y
		}},
		{func(a *Assembler, x, y uint64) {
			a.EmitWide(LoadImm64(R0, x))
			a.EmitWide(LoadImm64(R1, y))
			a.Emit(Xor64Reg(R0, R1))
		}, func(x, y uint64) uint64 { return x ^ y }},
	}
	f := func(x, y uint64, sel uint8) bool {
		op := ops[int(sel)%len(ops)]
		a := NewAssembler()
		op.build(a, x, y)
		a.Emit(Exit())
		p, err := Load(ProgramSpec{Name: "q", Insns: a.MustAssemble()})
		if err != nil {
			return false
		}
		got, _, err := p.Run(nil, testEnv)
		return err == nil && got == op.gold(x, y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: programs accepted by the verifier never fault at runtime for
// a family of randomly parameterized map/stack programs.
func TestPropertyVerifiedProgramsDoNotFault(t *testing.T) {
	f := func(key, val uint64, slot uint8) bool {
		off := -8 * (1 + int16(slot%16)) // aligned stack slots
		m := NewHashMap("m", 8, 8, 64)
		a := NewAssembler()
		a.EmitWide(LoadImm64(R2, key))
		a.Emit(StoreMem(R10, off, R2, SizeDW))
		a.EmitWide(LoadImm64(R3, val))
		a.Emit(StoreMem(R10, off-8, R3, SizeDW))
		a.EmitWide(LoadMapFD(R1, 1))
		a.Emit(
			Mov64Reg(R2, R10),
			Add64Imm(R2, int32(off)),
			Mov64Reg(R3, R10),
			Add64Imm(R3, int32(off)-8),
			Mov64Imm(R4, 0),
			Call(HelperMapUpdateElem),
		)
		a.EmitWide(LoadMapFD(R1, 1))
		a.Emit(
			Mov64Reg(R2, R10),
			Add64Imm(R2, int32(off)),
			Call(HelperMapLookupElem),
		)
		a.JumpImm(JmpJEQ, R0, 0, "miss")
		a.Emit(LoadMem(R0, R0, 0, SizeDW), Exit())
		a.Label("miss")
		a.Emit(Mov64Imm(R0, 0), Exit())
		p, err := Load(ProgramSpec{Name: "q", Insns: a.MustAssemble(), Maps: map[int32]Map{1: m}})
		if err != nil {
			return false
		}
		got, _, err := p.Run(nil, testEnv)
		return err == nil && got == val
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestVMListingOneSemantics(t *testing.T) {
	// Execute the Listing 1 sys_enter program: matching pid and syscall
	// id stores the timestamp keyed by pid_tgid.
	start := NewHashMap("start", 8, 8, 1024)
	mkProg := func(pidTgid uint64, id int64) *Program {
		a := NewAssembler()
		a.Emit(Mov64Reg(R6, R1))
		a.Emit(Call(HelperGetCurrentPidTgid))
		a.Emit(Mov64Reg(R7, R0))
		a.EmitWide(LoadImm64(R2, pidTgid))
		a.JumpReg(JmpJNE, R7, R2, "out")
		a.Emit(LoadMem(R3, R6, 8, SizeDW))
		a.JumpImm(JmpJNE, R3, int32(id), "out")
		a.Emit(Call(HelperKtimeGetNS))
		a.Emit(
			StoreMem(R10, -16, R0, SizeDW),
			StoreMem(R10, -8, R7, SizeDW),
		)
		a.EmitWide(LoadMapFD(R1, 1))
		a.Emit(
			Mov64Reg(R2, R10),
			Add64Imm(R2, -8),
			Mov64Reg(R3, R10),
			Add64Imm(R3, -16),
			Mov64Imm(R4, 0),
			Call(HelperMapUpdateElem),
		)
		a.Label("out")
		a.Emit(Mov64Imm(R0, 0), Exit())
		return MustLoad(ProgramSpec{
			Name: "sys_enter", Insns: a.MustAssemble(),
			Maps: map[int32]Map{1: start}, CtxSize: 64,
		})
	}

	ctx := make([]byte, 64)
	binary.LittleEndian.PutUint64(ctx[8:], 232) // epoll_wait

	// Wrong pid: no map write.
	p := mkProg(testEnv.PidTgid+1, 232)
	if _, _, err := p.Run(ctx, testEnv); err != nil {
		t.Fatal(err)
	}
	if start.Len() != 0 {
		t.Fatal("filtered pid should not write")
	}

	// Wrong syscall: no map write.
	p = mkProg(testEnv.PidTgid, 999)
	if _, _, err := p.Run(ctx, testEnv); err != nil {
		t.Fatal(err)
	}
	if start.Len() != 0 {
		t.Fatal("filtered syscall should not write")
	}

	// Match: timestamp stored under pid_tgid.
	p = mkProg(testEnv.PidTgid, 232)
	if _, _, err := p.Run(ctx, testEnv); err != nil {
		t.Fatal(err)
	}
	v, ok := start.Lookup(u64key(testEnv.PidTgid))
	if !ok || binary.LittleEndian.Uint64(v) != testEnv.TimeNS {
		t.Fatalf("stored ts = %v, %v", v, ok)
	}
}
