// Package ebpf implements a faithful, self-contained eBPF execution
// environment: the classic 64-bit register ISA with the real
// instruction encoding, an assembler and disassembler, hash/array/
// ring-buffer maps, a static verifier enforcing the kernel's headline
// constraints (no back-edges, bounded stack, checked pointer
// arithmetic, mandatory null checks on map lookups), and two execution
// backends that charge a deterministic per-instruction cost so probe
// overhead can be measured (the Section VI study).
//
// # Execution backends
//
// A loaded Program executes on one of two backends selected by
// ProgramSpec.Backend (default: DefaultBackend, normally
// BackendCompiled):
//
//   - The interpreter (vm.go) decodes each instruction slot on every
//     run — a switch over opcode class per step — and allocates fresh
//     run state per run. It is the debugging baseline.
//   - The compiled backend (compile.go) translates the verified stream
//     once, at Load time, into pre-bound Go closures: branch targets
//     become closure indices, helpers and map handles are resolved up
//     front, and adjacent instruction idioms (lea, call+mov, mov+exit)
//     are fused. Run state — stack, registers, spill slots, map-value
//     regions — comes from a per-Program pooled arena, so steady-state
//     execution performs zero heap allocations and runs ~5x faster
//     (BENCH_interpreter.json vs BENCH_jit.json).
//
// The backends are semantically identical — return values, faults
// (string, program counter, and partial RunStats included), register
// files, stack images, and map contents all match. The differential
// suite (differential_test.go) enforces this three ways: interpreter
// vs compiled vs an independently written reference evaluator, over
// hundreds of seeded random programs and a fuzzer.
//
// The subset implemented is the subset the paper's probes need (Listing
// 1 and the in-kernel statistics programs), but the encoding and the
// verifier rules follow the Linux uapi so the programs read like real
// BPF: JMP32, atomic adds (BPF_XADD), LRU hashes, and ring buffers are
// supported, and the verifier is fuzzed for soundness.
//
// Key entry points:
//
//   - NewAssembler — build programs from instruction constructors
//     (Mov64Reg, JumpImm, LoadMapFD, ...); Disassemble prints them
//     (`cmd/bpfasm` shows the probe listings).
//   - Load / MustLoad — verify a ProgramSpec and return a runnable
//     Program; Program.Run executes it against a context and a
//     HelperEnv on the backend chosen at Load (see ParseBackend /
//     SetDefaultBackend for the flag surface).
//   - NewHashMap / NewLRUHashMap / NewArrayMap / NewRingBuf — map
//     types; Map is their shared interface. RingBuf follows the kernel's
//     BPF_MAP_TYPE_RINGBUF model: power-of-two byte capacity, monotonic
//     producer/consumer positions, 8-byte length header plus 8-byte
//     alignment per record, and never-overwrite drop semantics with a
//     producer-side drop counter.
//   - HelperEnv — the helper surface programs call
//     (ktime_get_ns, get_current_pid_tgid, map ops, ringbuf_output,
//     ringbuf_query).
//
// internal/probes assembles the paper's actual programs against this
// package; internal/kernel dispatches them on syscall tracepoints and
// charges their cost to the traced thread.
package ebpf
