// Package ebpf implements a faithful, self-contained eBPF execution
// environment: the classic 64-bit register ISA with the real
// instruction encoding, an assembler and disassembler, hash/array/
// ring-buffer maps, a static verifier enforcing the kernel's headline
// constraints (no back-edges, bounded stack, checked pointer
// arithmetic, mandatory null checks on map lookups), and an interpreter
// that charges a deterministic per-instruction cost so probe overhead
// can be measured (the Section VI study).
//
// The subset implemented is the subset the paper's probes need (Listing
// 1 and the in-kernel statistics programs), but the encoding and the
// verifier rules follow the Linux uapi so the programs read like real
// BPF: JMP32, atomic adds (BPF_XADD), LRU hashes, and ring buffers are
// supported, and the verifier is fuzzed for soundness.
//
// Key entry points:
//
//   - NewAssembler — build programs from instruction constructors
//     (Mov64Reg, JumpImm, LoadMapFD, ...); Disassemble prints them
//     (`cmd/bpfasm` shows the probe listings).
//   - Load / MustLoad — verify a ProgramSpec and return a runnable
//     Program; Program.Run interprets it against a context and a
//     HelperEnv.
//   - NewHashMap / NewLRUHashMap / NewArrayMap / NewRingBuf — map
//     types; Map is their shared interface. RingBuf follows the kernel's
//     BPF_MAP_TYPE_RINGBUF model: power-of-two byte capacity, monotonic
//     producer/consumer positions, 8-byte length header plus 8-byte
//     alignment per record, and never-overwrite drop semantics with a
//     producer-side drop counter.
//   - HelperEnv — the helper surface programs call
//     (ktime_get_ns, get_current_pid_tgid, map ops, ringbuf_output,
//     ringbuf_query).
//
// internal/probes assembles the paper's actual programs against this
// package; internal/kernel dispatches them on syscall tracepoints and
// charges their cost to the traced thread.
package ebpf
