package ebpf

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
)

// Map update flags, matching the Linux uapi.
const (
	UpdateAny     = 0 // create or overwrite
	UpdateNoExist = 1 // create only
	UpdateExist   = 2 // overwrite only
)

// Errors returned by map operations.
var (
	ErrKeyNotExist = errors.New("ebpf: key does not exist")
	ErrKeyExist    = errors.New("ebpf: key already exists")
	ErrMapFull     = errors.New("ebpf: map is full")
	ErrBadKeySize  = errors.New("ebpf: wrong key size")
	ErrBadValSize  = errors.New("ebpf: wrong value size")
)

// Map is the interface shared by all map types. Lookup returns the live
// backing slice of the value so programs can update values in place, as
// real BPF map values are updated through the returned kernel pointer.
type Map interface {
	Name() string
	KeySize() int
	ValueSize() int
	Lookup(key []byte) ([]byte, bool)
	Update(key, value []byte, flags int) error
	Delete(key []byte) error
}

// HashMap is a BPF_MAP_TYPE_HASH: fixed-size keys and values with a
// capacity limit.
type HashMap struct {
	name       string
	keySize    int
	valueSize  int
	maxEntries int
	entries    map[string][]byte
}

// NewHashMap creates a hash map. Sizes must be positive.
func NewHashMap(name string, keySize, valueSize, maxEntries int) *HashMap {
	if keySize <= 0 || valueSize <= 0 || maxEntries <= 0 {
		panic(fmt.Sprintf("ebpf: invalid hash map geometry %d/%d/%d", keySize, valueSize, maxEntries))
	}
	return &HashMap{
		name: name, keySize: keySize, valueSize: valueSize,
		maxEntries: maxEntries, entries: make(map[string][]byte),
	}
}

// Name returns the map's name.
func (m *HashMap) Name() string { return m.name }

// KeySize returns the fixed key size in bytes.
func (m *HashMap) KeySize() int { return m.keySize }

// ValueSize returns the fixed value size in bytes.
func (m *HashMap) ValueSize() int { return m.valueSize }

// Len returns the number of entries.
func (m *HashMap) Len() int { return len(m.entries) }

// Lookup returns the live value slice for key.
func (m *HashMap) Lookup(key []byte) ([]byte, bool) {
	if len(key) != m.keySize {
		return nil, false
	}
	v, ok := m.entries[string(key)]
	return v, ok
}

// Update inserts or replaces the value for key according to flags. The
// value is copied. Overwrites of existing keys are allocation-free
// (the map[string(b)] lookup form avoids the key conversion), which
// keeps the per-event probe path — update the same per-thread entry on
// every hit — off the allocator entirely.
func (m *HashMap) Update(key, value []byte, flags int) error {
	if len(key) != m.keySize {
		return ErrBadKeySize
	}
	if len(value) != m.valueSize {
		return ErrBadValSize
	}
	old, exists := m.entries[string(key)]
	switch flags {
	case UpdateNoExist:
		if exists {
			return ErrKeyExist
		}
	case UpdateExist:
		if !exists {
			return ErrKeyNotExist
		}
	}
	if exists {
		copy(old, value)
		return nil
	}
	if len(m.entries) >= m.maxEntries {
		return ErrMapFull
	}
	v := make([]byte, m.valueSize)
	copy(v, value)
	m.entries[string(key)] = v
	return nil
}

// Delete removes key.
func (m *HashMap) Delete(key []byte) error {
	if len(key) != m.keySize {
		return ErrBadKeySize
	}
	if _, ok := m.entries[string(key)]; !ok {
		return ErrKeyNotExist
	}
	delete(m.entries, string(key))
	return nil
}

// Keys returns all keys in deterministic (sorted) order — a userspace
// iteration convenience, not a BPF-visible operation.
func (m *HashMap) Keys() [][]byte {
	ks := make([]string, 0, len(m.entries))
	for k := range m.entries {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	out := make([][]byte, len(ks))
	for i, k := range ks {
		out[i] = []byte(k)
	}
	return out
}

// ArrayMap is a BPF_MAP_TYPE_ARRAY: u32 keys indexing preallocated
// zero-filled values. Delete is invalid, as on Linux.
type ArrayMap struct {
	name      string
	valueSize int
	values    [][]byte
}

// NewArrayMap creates an array map with nEntries preallocated slots.
func NewArrayMap(name string, valueSize, nEntries int) *ArrayMap {
	if valueSize <= 0 || nEntries <= 0 {
		panic(fmt.Sprintf("ebpf: invalid array map geometry %d/%d", valueSize, nEntries))
	}
	vs := make([][]byte, nEntries)
	for i := range vs {
		vs[i] = make([]byte, valueSize)
	}
	return &ArrayMap{name: name, valueSize: valueSize, values: vs}
}

// Name returns the map's name.
func (m *ArrayMap) Name() string { return m.name }

// KeySize is always 4 (u32 index).
func (m *ArrayMap) KeySize() int { return 4 }

// ValueSize returns the fixed value size in bytes.
func (m *ArrayMap) ValueSize() int { return m.valueSize }

// Len returns the number of slots.
func (m *ArrayMap) Len() int { return len(m.values) }

// Lookup returns the live value slice at the index encoded in key.
func (m *ArrayMap) Lookup(key []byte) ([]byte, bool) {
	if len(key) != 4 {
		return nil, false
	}
	idx := int(binary.LittleEndian.Uint32(key))
	if idx >= len(m.values) {
		return nil, false
	}
	return m.values[idx], true
}

// At returns the live value slice at index i (userspace convenience).
func (m *ArrayMap) At(i int) []byte {
	if i < 0 || i >= len(m.values) {
		return nil
	}
	return m.values[i]
}

// Update overwrites the slot at the index encoded in key.
func (m *ArrayMap) Update(key, value []byte, flags int) error {
	if len(key) != 4 {
		return ErrBadKeySize
	}
	if len(value) != m.valueSize {
		return ErrBadValSize
	}
	if flags == UpdateNoExist {
		return ErrKeyExist // array slots always exist
	}
	idx := int(binary.LittleEndian.Uint32(key))
	if idx >= len(m.values) {
		return ErrKeyNotExist
	}
	copy(m.values[idx], value)
	return nil
}

// Delete is invalid on array maps.
func (m *ArrayMap) Delete(key []byte) error {
	return errors.New("ebpf: delete not supported on array map")
}

// LRUHashMap is a BPF_MAP_TYPE_LRU_HASH: when full, inserting a new key
// evicts the least-recently-used entry instead of failing. Real tracing
// deployments prefer it for per-flow/per-thread state that must not
// error out under churn (exactly the paper's start-timestamp maps on
// busy servers).
type LRUHashMap struct {
	name       string
	keySize    int
	valueSize  int
	maxEntries int
	entries    map[string]*lruEntry
	clock      uint64
	evictions  uint64
}

type lruEntry struct {
	value []byte
	used  uint64
}

// NewLRUHashMap creates an LRU hash map.
func NewLRUHashMap(name string, keySize, valueSize, maxEntries int) *LRUHashMap {
	if keySize <= 0 || valueSize <= 0 || maxEntries <= 0 {
		panic(fmt.Sprintf("ebpf: invalid lru map geometry %d/%d/%d", keySize, valueSize, maxEntries))
	}
	return &LRUHashMap{
		name: name, keySize: keySize, valueSize: valueSize,
		maxEntries: maxEntries, entries: make(map[string]*lruEntry),
	}
}

// Name returns the map's name.
func (m *LRUHashMap) Name() string { return m.name }

// KeySize returns the fixed key size in bytes.
func (m *LRUHashMap) KeySize() int { return m.keySize }

// ValueSize returns the fixed value size in bytes.
func (m *LRUHashMap) ValueSize() int { return m.valueSize }

// Len returns the number of live entries.
func (m *LRUHashMap) Len() int { return len(m.entries) }

// Evictions returns how many entries were displaced by inserts.
func (m *LRUHashMap) Evictions() uint64 { return m.evictions }

// Lookup returns the live value slice and refreshes the entry's recency.
func (m *LRUHashMap) Lookup(key []byte) ([]byte, bool) {
	if len(key) != m.keySize {
		return nil, false
	}
	e, ok := m.entries[string(key)]
	if !ok {
		return nil, false
	}
	m.clock++
	e.used = m.clock
	return e.value, true
}

// Update inserts or replaces the value for key, evicting the LRU entry
// when the map is full. As with HashMap, overwrites of existing keys
// are allocation-free.
func (m *LRUHashMap) Update(key, value []byte, flags int) error {
	if len(key) != m.keySize {
		return ErrBadKeySize
	}
	if len(value) != m.valueSize {
		return ErrBadValSize
	}
	e, exists := m.entries[string(key)]
	switch flags {
	case UpdateNoExist:
		if exists {
			return ErrKeyExist
		}
	case UpdateExist:
		if !exists {
			return ErrKeyNotExist
		}
	}
	m.clock++
	if exists {
		copy(e.value, value)
		e.used = m.clock
		return nil
	}
	if len(m.entries) >= m.maxEntries {
		var oldestKey string
		oldest := uint64(1<<63 - 1)
		for kk, ee := range m.entries {
			if ee.used < oldest {
				oldest = ee.used
				oldestKey = kk
			}
		}
		delete(m.entries, oldestKey)
		m.evictions++
	}
	v := make([]byte, m.valueSize)
	copy(v, value)
	m.entries[string(key)] = &lruEntry{value: v, used: m.clock}
	return nil
}

// Delete removes key.
func (m *LRUHashMap) Delete(key []byte) error {
	if len(key) != m.keySize {
		return ErrBadKeySize
	}
	k := string(key)
	if _, ok := m.entries[k]; !ok {
		return ErrKeyNotExist
	}
	delete(m.entries, k)
	return nil
}
