package ebpf

// Differential testing of the eBPF interpreter: every verifier-accepted
// program is executed both by the production VM (vm.go) and by refExec,
// an independently written reference evaluator, and the two must agree
// on the return value, the full register file, execution stats, the
// final stack image, all map contents, and the ring buffer's records
// and drop accounting. genProgram builds random verifier-accepted
// programs from a grammar that covers scalar ALU (both widths), stack
// and ctx memory, pointer spill/restore, branches, and every helper;
// FuzzDifferential extends the property to arbitrary mutated byte
// streams that happen to pass the verifier.

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// ---------------------------------------------------------------------
// Shadow maps: small, independent reimplementations of the map
// semantics the helpers expose. Deliberately not the production types.
// ---------------------------------------------------------------------

type shadowHash struct {
	max int
	m   map[string][]byte
}

func (h *shadowHash) lookup(k []byte) ([]byte, bool) {
	v, ok := h.m[string(k)]
	return v, ok
}

func (h *shadowHash) update(k, v []byte, flags uint64) bool {
	old, exists := h.m[string(k)]
	switch int(flags) {
	case UpdateNoExist:
		if exists {
			return false
		}
	case UpdateExist:
		if !exists {
			return false
		}
	}
	if exists {
		copy(old, v) // in place: live lookup pointers observe the write
		return true
	}
	if len(h.m) >= h.max {
		return false
	}
	h.m[string(k)] = append([]byte(nil), v...)
	return true
}

func (h *shadowHash) delete(k []byte) bool {
	if _, ok := h.m[string(k)]; !ok {
		return false
	}
	delete(h.m, string(k))
	return true
}

type shadowArray struct {
	slots [][]byte
}

func (a *shadowArray) lookup(k []byte) ([]byte, bool) {
	idx := int(binary.LittleEndian.Uint32(k))
	if idx >= len(a.slots) {
		return nil, false
	}
	return a.slots[idx], true
}

func (a *shadowArray) update(k, v []byte, flags uint64) bool {
	if int(flags) == UpdateNoExist {
		return false // array slots always exist
	}
	idx := int(binary.LittleEndian.Uint32(k))
	if idx >= len(a.slots) {
		return false
	}
	copy(a.slots[idx], v)
	return true
}

type shadowRing struct {
	cap    uint64
	prod   uint64
	cons   uint64
	drops  uint64
	writes uint64
	recs   [][]byte
}

func (r *shadowRing) output(rec []byte) bool {
	need := 8 + (uint64(len(rec))+7)&^7
	if need > r.cap-(r.prod-r.cons) {
		r.drops++
		return false
	}
	r.recs = append(r.recs, append([]byte(nil), rec...))
	r.prod += need
	r.writes++
	return true
}

func (r *shadowRing) query(flag uint64) uint64 {
	switch flag {
	case RingbufAvailData:
		return r.prod - r.cons
	case RingbufRingSize:
		return r.cap
	case RingbufConsPos:
		return r.cons
	case RingbufProdPos:
		return r.prod
	}
	return 0
}

// shadowHashRow recomputes the sketch hash from its spec (seeded
// FNV-1a, splitmix row seeds, murmur-style finalizer) in a separate
// style from sketch.go.
func shadowHashRow(row int, key []byte) uint64 {
	seed := uint64(row+1) * 0x9e3779b97f4a7c15
	seed = (seed ^ (seed >> 30)) * 0xbf58476d1ce4e5b9
	seed = (seed ^ (seed >> 27)) * 0x94d049bb133111eb
	seed ^= seed >> 31

	h := seed ^ 0xcbf29ce484222325
	for i := 0; i < len(key); i++ {
		h = (h ^ uint64(key[i])) * 0x100000001b3
	}
	for _, mul := range []uint64{0xff51afd7ed558ccd} {
		h = (h ^ (h >> 33)) * mul
	}
	return h ^ (h >> 33)
}

type shadowCMS struct {
	w, d  int
	cnt   [][]uint64 // one slice per row
	total uint64
}

func newShadowCMS(w, d int) *shadowCMS {
	c := &shadowCMS{w: w, d: d}
	for i := 0; i < d; i++ {
		c.cnt = append(c.cnt, make([]uint64, w))
	}
	return c
}

func (c *shadowCMS) add(key []byte, inc uint64) {
	for row := 0; row < c.d; row++ {
		c.cnt[row][shadowHashRow(row, key)%uint64(c.w)] += inc
	}
	c.total += inc
}

func (c *shadowCMS) estimate(key []byte) uint64 {
	best := ^uint64(0)
	for row := 0; row < c.d; row++ {
		if v := c.cnt[row][shadowHashRow(row, key)%uint64(c.w)]; v < best {
			best = v
		}
	}
	return best
}

type shadowPipeSlot struct {
	key   []byte // nil = empty
	count uint64
}

type shadowPipe struct {
	stages, slots int
	cells         [][]shadowPipeSlot // [stage][slot]
}

func newShadowPipe(stages, slots int) *shadowPipe {
	p := &shadowPipe{stages: stages, slots: slots}
	for i := 0; i < stages; i++ {
		p.cells = append(p.cells, make([]shadowPipeSlot, slots))
	}
	return p
}

func (p *shadowPipe) insert(key []byte, inc uint64) uint64 {
	carryKey := append([]byte(nil), key...)
	carryCount := inc
	for st := 0; st < p.stages; st++ {
		cell := &p.cells[st][shadowHashRow(st, carryKey)%uint64(p.slots)]
		if cell.key == nil {
			cell.key, cell.count = carryKey, carryCount
			return uint64(st + 1)
		}
		if bytes.Equal(cell.key, carryKey) {
			cell.count += carryCount
			return uint64(st + 1)
		}
		// Stage 1 always admits; later stages keep the larger.
		if st == 0 || cell.count < carryCount {
			cell.key, carryKey = carryKey, cell.key
			cell.count, carryCount = carryCount, cell.count
		}
	}
	return 0
}

// ---------------------------------------------------------------------
// Reference evaluator.
// ---------------------------------------------------------------------

const (
	rScalar = iota
	rStackPtr
	rCtxPtr
	rMapValPtr
	rMapHandle
)

// refVal is the reference machine's word: a scalar, a pointer (offset
// into a named region), or a map handle. tok distinguishes map-value
// regions: each lookup mints a fresh region identity, exactly as the VM
// allocates a fresh region struct per lookup.
type refVal struct {
	tag int
	n   uint64
	off int64
	mem []byte
	tok int
	fd  int32
}

func refScalarVal(v uint64) refVal { return refVal{tag: rScalar, n: v} }

func (v refVal) isScalar() bool { return v.tag == rScalar }
func (v refVal) isPointer() bool {
	return v.tag == rStackPtr || v.tag == rCtxPtr || v.tag == rMapValPtr
}
func (v refVal) truthy() bool { return v.tag != rScalar || v.n != 0 }

// sameRegion reports whether two pointers address the same region
// instance (stack and ctx are singletons; map values compare by token).
func sameRegion(a, b refVal) bool {
	if a.tag != b.tag {
		return false
	}
	return a.tag != rMapValPtr || a.tok == b.tok
}

type refMachine struct {
	insns   []Instruction
	env     HelperEnv
	regs    [NumRegisters]refVal
	stack   [StackSize]byte
	spills  map[int64]refVal
	ctx     []byte
	hash    *shadowHash
	arr     *shadowArray
	ring    *shadowRing
	cms     *shadowCMS
	pipe    *shadowPipe
	nextTok int
	insnN   int
	helperN int
}

func newRefMachine(insns []Instruction, ctx []byte, env HelperEnv) *refMachine {
	m := &refMachine{
		insns:  insns,
		env:    env,
		spills: make(map[int64]refVal),
		ctx:    ctx,
		hash:   &shadowHash{max: diffHashMax, m: make(map[string][]byte)},
		arr:    &shadowArray{},
		ring:   &shadowRing{cap: diffRingCap},
		cms:    newShadowCMS(diffCMSWidth, diffCMSDepth),
		pipe:   newShadowPipe(diffPipeStages, diffPipeSlots),
	}
	for i := 0; i < diffArrayLen; i++ {
		m.arr.slots = append(m.arr.slots, make([]byte, diffArrayVal))
	}
	m.regs[R1] = refVal{tag: rCtxPtr}
	m.regs[R10] = refVal{tag: rStackPtr, off: StackSize}
	return m
}

var errRefFault = fmt.Errorf("reference machine fault")

func (m *refMachine) keySize(fd int32) int {
	switch fd {
	case 1:
		return 8
	case 2:
		return 4
	case 4, 5:
		return 8
	}
	return 0
}

func (m *refMachine) valSize(fd int32) int {
	switch fd {
	case 1:
		return 8
	case 2:
		return diffArrayVal
	}
	return 0
}

// memory resolves a pointer to its backing bytes and readonly flag.
func (m *refMachine) memory(v refVal) (data []byte, readonly bool) {
	switch v.tag {
	case rStackPtr:
		return m.stack[:], false
	case rCtxPtr:
		return m.ctx, true
	case rMapValPtr:
		return v.mem, false
	}
	return nil, false
}

func (m *refMachine) slice(base refVal, off int64, size int) ([]byte, error) {
	if size == 0 {
		return nil, nil
	}
	if !base.isPointer() {
		return nil, errRefFault
	}
	data, _ := m.memory(base)
	start := base.off + off
	if start < 0 || start+int64(size) > int64(len(data)) {
		return nil, errRefFault
	}
	return data[start : start+int64(size)], nil
}

func (m *refMachine) loadN(base refVal, off int64, size int) (uint64, error) {
	b, err := m.slice(base, off, size)
	if err != nil {
		return 0, err
	}
	switch size {
	case 1:
		return uint64(b[0]), nil
	case 2:
		return uint64(binary.LittleEndian.Uint16(b)), nil
	case 4:
		return uint64(binary.LittleEndian.Uint32(b)), nil
	}
	return binary.LittleEndian.Uint64(b), nil
}

func (m *refMachine) storeN(base refVal, off int64, size int, v uint64) error {
	if _, ro := m.memory(base); ro && base.isPointer() {
		return errRefFault
	}
	b, err := m.slice(base, off, size)
	if err != nil {
		return err
	}
	if base.tag == rStackPtr {
		start := base.off + off
		for slot := range m.spills {
			if slot < start+int64(size) && slot+8 > start {
				delete(m.spills, slot)
			}
		}
	}
	switch size {
	case 1:
		b[0] = byte(v)
	case 2:
		binary.LittleEndian.PutUint16(b, uint16(v))
	case 4:
		binary.LittleEndian.PutUint32(b, uint32(v))
	default:
		binary.LittleEndian.PutUint64(b, v)
	}
	return nil
}

func (m *refMachine) operand(in Instruction) refVal {
	if in.UsesImm() {
		return refScalarVal(uint64(int64(in.Imm)))
	}
	return m.regs[in.Src]
}

func (m *refMachine) alu(in Instruction, is32 bool) error {
	dst := m.regs[in.Dst]
	src := m.operand(in)
	op := in.ALUOp()

	if dst.isPointer() || src.isPointer() {
		if is32 {
			return errRefFault
		}
		switch op {
		case ALUMov:
			m.regs[in.Dst] = src
			return nil
		case ALUAdd:
			switch {
			case dst.isPointer() && src.isScalar():
				dst.off += int64(src.n)
				m.regs[in.Dst] = dst
				return nil
			case src.isPointer() && dst.isScalar():
				src.off += int64(dst.n)
				m.regs[in.Dst] = src
				return nil
			}
		case ALUSub:
			if dst.isPointer() && src.isScalar() {
				dst.off -= int64(src.n)
				m.regs[in.Dst] = dst
				return nil
			}
			if dst.isPointer() && src.isPointer() && sameRegion(dst, src) {
				m.regs[in.Dst] = refScalarVal(uint64(dst.off - src.off))
				return nil
			}
		}
		return errRefFault
	}
	if dst.tag == rMapHandle || src.tag == rMapHandle {
		if op == ALUMov && !is32 {
			m.regs[in.Dst] = src
			return nil
		}
		return errRefFault
	}

	a, b := dst.n, src.n
	if is32 {
		a, b = uint64(uint32(a)), uint64(uint32(b))
	}
	var out uint64
	switch op {
	case ALUAdd:
		out = a + b
	case ALUSub:
		out = a - b
	case ALUMul:
		out = a * b
	case ALUDiv:
		if b == 0 {
			out = 0
		} else {
			out = a / b
		}
	case ALUMod:
		if b == 0 {
			out = a
		} else {
			out = a % b
		}
	case ALUOr:
		out = a | b
	case ALUAnd:
		out = a & b
	case ALUXor:
		out = a ^ b
	case ALULsh:
		out = a << (b & 63)
	case ALURsh:
		out = a >> (b & 63)
	case ALUArsh:
		if is32 {
			out = uint64(uint32(int32(a) >> (b & 31)))
		} else {
			out = uint64(int64(a) >> (b & 63))
		}
	case ALUNeg:
		out = -a
	case ALUMov:
		out = b
	default:
		return errRefFault
	}
	if is32 {
		out = uint64(uint32(out))
	}
	m.regs[in.Dst] = refScalarVal(out)
	return nil
}

func (m *refMachine) branch(in Instruction) (bool, error) {
	dst := m.regs[in.Dst]
	src := m.operand(in)

	if !dst.isScalar() || !src.isScalar() {
		switch in.JmpOp() {
		case JmpJEQ:
			if src.isScalar() && src.n == 0 {
				return !dst.truthy(), nil
			}
			if dst.isScalar() && dst.n == 0 {
				return !src.truthy(), nil
			}
			if dst.isPointer() && src.isPointer() && sameRegion(dst, src) {
				return dst.off == src.off, nil
			}
		case JmpJNE:
			if src.isScalar() && src.n == 0 {
				return dst.truthy(), nil
			}
			if dst.isScalar() && dst.n == 0 {
				return src.truthy(), nil
			}
			if dst.isPointer() && src.isPointer() && sameRegion(dst, src) {
				return dst.off != src.off, nil
			}
		}
		return false, errRefFault
	}

	a, b := dst.n, src.n
	if in.Class() == ClassJMP32 {
		a, b = uint64(uint32(a)), uint64(uint32(b))
		switch in.JmpOp() {
		case JmpJSGT:
			return int32(a) > int32(b), nil
		case JmpJSGE:
			return int32(a) >= int32(b), nil
		case JmpJSLT:
			return int32(a) < int32(b), nil
		case JmpJSLE:
			return int32(a) <= int32(b), nil
		}
	}
	switch in.JmpOp() {
	case JmpJEQ:
		return a == b, nil
	case JmpJNE:
		return a != b, nil
	case JmpJGT:
		return a > b, nil
	case JmpJGE:
		return a >= b, nil
	case JmpJLT:
		return a < b, nil
	case JmpJLE:
		return a <= b, nil
	case JmpJSET:
		return a&b != 0, nil
	case JmpJSGT:
		return int64(a) > int64(b), nil
	case JmpJSGE:
		return int64(a) >= int64(b), nil
	case JmpJSLT:
		return int64(a) < int64(b), nil
	case JmpJSLE:
		return int64(a) <= int64(b), nil
	}
	return false, errRefFault
}

func (m *refMachine) call(id int32) error {
	m.helperN++
	setR0 := func(v refVal) {
		m.regs[R0] = v
		for r := R1; r <= R5; r++ {
			m.regs[r] = refScalarVal(0)
		}
	}
	mapArg := func() (int32, bool) {
		if m.regs[R1].tag != rMapHandle {
			return 0, false
		}
		return m.regs[R1].fd, true
	}
	switch id {
	case HelperKtimeGetNS:
		setR0(refScalarVal(m.env.KtimeGetNS()))
	case HelperGetCurrentPidTgid:
		setR0(refScalarVal(m.env.CurrentPidTgid()))
	case HelperGetSMPProcID:
		setR0(refScalarVal(uint64(m.env.SMPProcessorID())))
	case HelperMapLookupElem:
		fd, ok := mapArg()
		if !ok {
			return errRefFault
		}
		key, err := m.slice(m.regs[R2], 0, m.keySize(fd))
		if err != nil {
			return err
		}
		var val []byte
		var hit bool
		switch fd {
		case 1:
			val, hit = m.hash.lookup(key)
		case 2:
			val, hit = m.arr.lookup(key)
		}
		if !hit {
			setR0(refScalarVal(0))
			return nil
		}
		m.nextTok++
		setR0(refVal{tag: rMapValPtr, mem: val, tok: m.nextTok})
	case HelperMapUpdateElem:
		fd, ok := mapArg()
		if !ok {
			return errRefFault
		}
		key, err := m.slice(m.regs[R2], 0, m.keySize(fd))
		if err != nil {
			return err
		}
		val, err := m.slice(m.regs[R3], 0, m.valSize(fd))
		if err != nil {
			return err
		}
		if !m.regs[R4].isScalar() {
			return errRefFault
		}
		flags := m.regs[R4].n
		okUpd := false
		switch fd {
		case 1:
			okUpd = m.hash.update(key, val, flags)
		case 2:
			okUpd = m.arr.update(key, val, flags)
		}
		if okUpd {
			setR0(refScalarVal(0))
		} else {
			setR0(refScalarVal(^uint64(0)))
		}
	case HelperMapDeleteElem:
		fd, ok := mapArg()
		if !ok {
			return errRefFault
		}
		key, err := m.slice(m.regs[R2], 0, m.keySize(fd))
		if err != nil {
			return err
		}
		okDel := false
		if fd == 1 {
			okDel = m.hash.delete(key)
		}
		if okDel {
			setR0(refScalarVal(0))
		} else {
			setR0(refScalarVal(^uint64(0)))
		}
	case HelperRingbufOutput:
		fd, ok := mapArg()
		if !ok || fd != 3 {
			return errRefFault
		}
		if !m.regs[R3].isScalar() {
			return errRefFault
		}
		data, err := m.slice(m.regs[R2], 0, int(m.regs[R3].n))
		if err != nil {
			return err
		}
		if m.ring.output(data) {
			setR0(refScalarVal(0))
		} else {
			setR0(refScalarVal(^uint64(0)))
		}
	case HelperRingbufQuery:
		fd, ok := mapArg()
		if !ok || fd != 3 {
			return errRefFault
		}
		if !m.regs[R2].isScalar() {
			return errRefFault
		}
		setR0(refScalarVal(m.ring.query(m.regs[R2].n)))
	case HelperCMSUpdate, HelperCMSEstimate:
		fd, ok := mapArg()
		if !ok || fd != 4 {
			return errRefFault
		}
		key, err := m.slice(m.regs[R2], 0, m.keySize(fd))
		if err != nil {
			return err
		}
		if id == HelperCMSUpdate {
			if !m.regs[R3].isScalar() {
				return errRefFault
			}
			m.cms.add(key, m.regs[R3].n)
			setR0(refScalarVal(0))
		} else {
			setR0(refScalarVal(m.cms.estimate(key)))
		}
	case HelperHashPipeInsert:
		fd, ok := mapArg()
		if !ok || fd != 5 {
			return errRefFault
		}
		key, err := m.slice(m.regs[R2], 0, m.keySize(fd))
		if err != nil {
			return err
		}
		if !m.regs[R3].isScalar() {
			return errRefFault
		}
		setR0(refScalarVal(m.pipe.insert(key, m.regs[R3].n)))
	default:
		return errRefFault
	}
	return nil
}

func (m *refMachine) exec() (uint64, error) {
	pc := 0
	for steps := 0; ; steps++ {
		if steps > 4*MaxInstructions {
			return 0, errRefFault
		}
		if pc < 0 || pc >= len(m.insns) {
			return 0, errRefFault
		}
		in := m.insns[pc]
		m.insnN++
		switch in.Class() {
		case ClassALU64, ClassALU:
			if err := m.alu(in, in.Class() == ClassALU); err != nil {
				return 0, err
			}
			pc++
		case ClassLD:
			if !in.IsWideLoad() || pc+1 >= len(m.insns) {
				return 0, errRefFault
			}
			if in.Src == PseudoMapFD {
				m.regs[in.Dst] = refVal{tag: rMapHandle, fd: in.Imm}
			} else {
				v := uint64(uint32(in.Imm)) | uint64(uint32(m.insns[pc+1].Imm))<<32
				m.regs[in.Dst] = refScalarVal(v)
			}
			m.insnN++
			pc += 2
		case ClassLDX:
			base := m.regs[in.Src]
			if in.Size() == 8 && base.tag == rStackPtr {
				if start := base.off + int64(in.Off); start%8 == 0 && start >= 0 && start+8 <= StackSize {
					if w, ok := m.spills[start]; ok {
						m.regs[in.Dst] = w
						pc++
						continue
					}
				}
			}
			v, err := m.loadN(base, int64(in.Off), in.Size())
			if err != nil {
				return 0, err
			}
			m.regs[in.Dst] = refScalarVal(v)
			pc++
		case ClassSTX:
			src := m.regs[in.Src]
			if in.Op&0xe0 == ModeAtomic {
				if !src.isScalar() || in.Imm != AtomicAdd {
					return 0, errRefFault
				}
				size := in.Size()
				if size != 4 && size != 8 {
					return 0, errRefFault
				}
				base := m.regs[in.Dst]
				if _, ro := m.memory(base); ro && base.isPointer() {
					return 0, errRefFault
				}
				cur, err := m.loadN(base, int64(in.Off), size)
				if err != nil {
					return 0, err
				}
				if err := m.storeN(base, int64(in.Off), size, cur+src.n); err != nil {
					return 0, err
				}
				pc++
				continue
			}
			if !src.isScalar() {
				// Pointer/handle spill: aligned 8-byte stack slot; the raw
				// bytes are the word's region offset.
				base := m.regs[in.Dst]
				if base.tag != rStackPtr || in.Size() != 8 {
					return 0, errRefFault
				}
				start := base.off + int64(in.Off)
				if start%8 != 0 {
					return 0, errRefFault
				}
				if err := m.storeN(base, int64(in.Off), 8, uint64(src.off)); err != nil {
					return 0, err
				}
				if src.isPointer() {
					m.spills[start] = src
				}
				pc++
				continue
			}
			if err := m.storeN(m.regs[in.Dst], int64(in.Off), in.Size(), src.n); err != nil {
				return 0, err
			}
			pc++
		case ClassST:
			if err := m.storeN(m.regs[in.Dst], int64(in.Off), in.Size(), uint64(int64(in.Imm))); err != nil {
				return 0, err
			}
			pc++
		case ClassJMP32:
			taken, err := m.branch(in)
			if err != nil {
				return 0, err
			}
			if taken {
				pc += 1 + int(in.Off)
			} else {
				pc++
			}
		case ClassJMP:
			switch in.JmpOp() {
			case JmpExit:
				if !m.regs[R0].isScalar() {
					return 0, errRefFault
				}
				return m.regs[R0].n, nil
			case JmpCall:
				if err := m.call(in.Imm); err != nil {
					return 0, err
				}
				pc++
			case JmpJA:
				pc += 1 + int(in.Off)
			default:
				taken, err := m.branch(in)
				if err != nil {
					return 0, err
				}
				if taken {
					pc += 1 + int(in.Off)
				} else {
					pc++
				}
			}
		default:
			return 0, errRefFault
		}
	}
}

// ---------------------------------------------------------------------
// Differential driver.
// ---------------------------------------------------------------------

// Map geometry shared by the production and shadow sides. The hash map
// is deliberately tiny so random programs hit the map-full path, and the
// ring small enough that random output sequences overflow it.
const (
	diffHashMax  = 4
	diffArrayLen = 4
	diffArrayVal = 16
	diffRingCap  = 256
	diffCtxSize  = 64
	// The sketches are deliberately tiny so random key streams force
	// counter collisions (CMS) and eviction/carry-drop traffic
	// (HashPipe) — the interesting divergent-semantics surface.
	diffCMSWidth   = 8
	diffCMSDepth   = 2
	diffPipeStages = 2
	diffPipeSlots  = 2
)

func diffMaps() map[int32]Map {
	return map[int32]Map{
		1: NewHashMap("h", 8, 8, diffHashMax),
		2: NewArrayMap("a", diffArrayVal, diffArrayLen),
		3: NewRingBuf("r", diffRingCap),
		4: NewCMS("c", 8, diffCMSWidth, diffCMSDepth),
		5: NewHashPipe("p", 8, diffPipeStages, diffPipeSlots),
	}
}

func vmRegDesc(w word) string {
	switch {
	case w.m != nil:
		return fmt.Sprintf("map(%s)", w.m.Name())
	case w.region != nil:
		return fmt.Sprintf("%s+%d", w.region.kind, w.off)
	default:
		return fmt.Sprintf("scalar(%#x)", w.scalar)
	}
}

func refRegDesc(v refVal) string {
	switch v.tag {
	case rMapHandle:
		return fmt.Sprintf("map(%s)", map[int32]string{1: "h", 2: "a", 3: "r", 4: "c", 5: "p"}[v.fd])
	case rStackPtr:
		return fmt.Sprintf("stack+%d", v.off)
	case rCtxPtr:
		return fmt.Sprintf("ctx+%d", v.off)
	case rMapValPtr:
		return fmt.Sprintf("map_value+%d", v.off)
	default:
		return fmt.Sprintf("scalar(%#x)", v.n)
	}
}

// runDifferential executes one verifier-accepted program on all three
// machines — the interpreter, the compiled backend, and the reference
// evaluator — and reports the first disagreement. Each execution gets
// its own map instances so map mutations cannot couple the runs.
func runDifferential(t *testing.T, prog *Program, insns []Instruction, ctx []byte) {
	t.Helper()
	env := &FixedEnv{TimeNS: 112233, PidTgid: 42<<32 | 7, CPU: 3}

	fail := func(format string, args ...any) {
		t.Helper()
		t.Fatalf("%s\nprogram:\n%s", fmt.Sprintf(format, args...), Disassemble(insns))
	}

	m := &vm{
		prog:  prog,
		env:   env,
		stack: region{kind: regionStack, data: make([]byte, StackSize)},
		ctx:   region{kind: regionCtx, data: ctx, readonly: true},
	}
	m.regs[R1] = word{region: &m.ctx}
	m.regs[R10] = word{region: &m.stack, off: StackSize}
	vmRet, vmErr := m.exec()

	// Compiled backend: a second Program over the same instruction
	// stream, driven through getVM directly (no putVM recycle) so the
	// final register file and stack image stay inspectable.
	cprog, err := Load(ProgramSpec{Name: "diff-compiled", Insns: insns, Maps: diffMaps(), CtxSize: len(ctx), Backend: BackendCompiled})
	if err != nil {
		fail("compiled load rejected a program the interpreter load accepted: %v", err)
	}
	cm := getVM(cprog, ctx, env)
	cRet, cErr := cprog.execCompiled(cm)

	ref := newRefMachine(insns, ctx, env)
	refRet, refErr := ref.exec()

	if vmErr != nil {
		fail("verified program faulted in the VM: %v", vmErr)
	}
	if cErr != nil {
		fail("verified program faulted in the compiled backend: %v", cErr)
	}
	if refErr != nil {
		fail("verified program faulted in the reference evaluator: %v", refErr)
	}
	if vmRet != refRet {
		fail("return value: vm %#x, ref %#x", vmRet, refRet)
	}
	if cRet != refRet {
		fail("return value: compiled %#x, ref %#x", cRet, refRet)
	}
	if m.stats.Instructions != ref.insnN || m.stats.HelperCalls != ref.helperN {
		fail("stats: vm (%d insns, %d helpers), ref (%d, %d)",
			m.stats.Instructions, m.stats.HelperCalls, ref.insnN, ref.helperN)
	}
	if cm.stats != m.stats {
		fail("stats: compiled %+v, vm %+v", cm.stats, m.stats)
	}
	for r := 0; r < NumRegisters; r++ {
		want := refRegDesc(ref.regs[r])
		if got := vmRegDesc(m.regs[r]); got != want {
			fail("register r%d: vm %s, ref %s", r, got, want)
		}
		if got := vmRegDesc(cm.regs[r]); got != want {
			fail("register r%d: compiled %s, ref %s", r, got, want)
		}
	}
	if !bytes.Equal(m.stack.data, ref.stack[:]) {
		fail("final stack image differs (vm vs ref)")
	}
	if !bytes.Equal(cm.stack.data, ref.stack[:]) {
		fail("final stack image differs (compiled vs ref)")
	}

	diffCompareMaps(fail, "vm", prog.maps, ref)
	diffCompareMaps(fail, "compiled", cprog.maps, ref)
}

// diffCompareMaps checks one production map set — hash contents, array
// slots, and ring records/accounting — against the reference machine's
// shadow maps. Drains the ring.
func diffCompareMaps(fail func(string, ...any), label string, maps map[int32]Map, ref *refMachine) {
	hash := maps[1].(*HashMap)
	var hashKeys []string
	for k := range ref.hash.m {
		hashKeys = append(hashKeys, k)
	}
	sort.Strings(hashKeys)
	realKeys := hash.Keys()
	if len(realKeys) != len(hashKeys) {
		fail("hash map size: %s %d keys, ref %d keys", label, len(realKeys), len(hashKeys))
	}
	for i, k := range hashKeys {
		if !bytes.Equal(realKeys[i], []byte(k)) {
			fail("hash map key %d: %s %x, ref %x", i, label, realKeys[i], k)
		}
		v, _ := hash.Lookup([]byte(k))
		if !bytes.Equal(v, ref.hash.m[k]) {
			fail("hash map value for key %x: %s %x, ref %x", k, label, v, ref.hash.m[k])
		}
	}
	arr := maps[2].(*ArrayMap)
	for i := 0; i < diffArrayLen; i++ {
		if !bytes.Equal(arr.At(i), ref.arr.slots[i]) {
			fail("array slot %d: %s %x, ref %x", i, label, arr.At(i), ref.arr.slots[i])
		}
	}
	ring := maps[3].(*RingBuf)
	if ring.Dropped() != ref.ring.drops || ring.Written() != ref.ring.writes {
		fail("ring accounting: %s %d written/%d dropped, ref %d/%d",
			label, ring.Written(), ring.Dropped(), ref.ring.writes, ref.ring.drops)
	}
	if ring.ProducerPos() != ref.ring.prod {
		fail("ring producer pos: %s %d, ref %d", label, ring.ProducerPos(), ref.ring.prod)
	}
	recs := ring.Drain()
	if len(recs) != len(ref.ring.recs) {
		fail("ring records: %s %d, ref %d", label, len(recs), len(ref.ring.recs))
	}
	for i := range recs {
		if !bytes.Equal(recs[i], ref.ring.recs[i]) {
			fail("ring record %d: %s %x, ref %x", i, label, recs[i], ref.ring.recs[i])
		}
	}
	cms := maps[4].(*CMS)
	if cms.total != ref.cms.total {
		fail("cms total: %s %d, ref %d", label, cms.total, ref.cms.total)
	}
	for row := 0; row < diffCMSDepth; row++ {
		for col := 0; col < diffCMSWidth; col++ {
			got := cms.rows[row*diffCMSWidth+col]
			if want := ref.cms.cnt[row][col]; got != want {
				fail("cms counter [%d][%d]: %s %d, ref %d", row, col, label, got, want)
			}
		}
	}
	pipe := maps[5].(*HashPipe)
	for st := 0; st < diffPipeStages; st++ {
		for sl := 0; sl < diffPipeSlots; sl++ {
			got := pipe.table[st*diffPipeSlots+sl]
			want := ref.pipe.cells[st][sl]
			if got.used != (want.key != nil) {
				fail("pipe cell [%d][%d] occupancy: %s %v, ref %v", st, sl, label, got.used, want.key != nil)
			}
			if !got.used {
				continue
			}
			if !bytes.Equal(got.key[:8], want.key) || got.count != want.count {
				fail("pipe cell [%d][%d]: %s (%x, %d), ref (%x, %d)",
					st, sl, label, got.key[:8], got.count, want.key, want.count)
			}
		}
	}
}

// ---------------------------------------------------------------------
// Random verifier-accepted program generator.
// ---------------------------------------------------------------------

// genProgram emits a random program the verifier accepts by
// construction: R6 pins the ctx pointer, R0/R7/R8/R9 stay scalar, and
// helper idioms go through the canonical store-key / load-fd / call
// shapes, with null checks on every lookup.
func genProgram(rng *rand.Rand) []Instruction {
	a := NewAssembler()
	label := 0
	scal := func() Register { return []Register{R0, R7, R8, R9}[rng.Intn(4)] }
	imm := func() int32 { return int32(rng.Uint32()) }
	key := func() int32 { return int32(rng.Intn(6)) }
	// Data slots -8..-64 from the frame top, always written as full
	// 8-byte words before any narrower traffic.
	slot := func() int16 { return int16(-8 * (1 + rng.Intn(8))) }
	initialized := map[int16]bool{}
	initSlot := func() int16 {
		s := slot()
		if !initialized[s] {
			a.Emit(StoreImm(R10, s, imm(), SizeDW))
			initialized[s] = true
		}
		return s
	}
	sizes := []uint8{SizeB, SizeH, SizeW, SizeDW}
	sizeBytes := map[uint8]int64{SizeB: 1, SizeH: 2, SizeW: 4, SizeDW: 8}

	a.Emit(
		Mov64Reg(R6, R1), // pin ctx: R6 survives helper calls
		Mov64Imm(R0, imm()),
		Mov64Imm(R7, imm()),
		Mov64Imm(R8, imm()),
		Mov64Imm(R9, imm()),
	)

	aluOps := []uint8{ALUAdd, ALUSub, ALUMul, ALUDiv, ALUMod, ALUOr, ALUAnd, ALUXor, ALULsh, ALURsh, ALUArsh, ALUMov}
	jmpOps := []uint8{JmpJEQ, JmpJNE, JmpJGT, JmpJGE, JmpJLT, JmpJLE, JmpJSET, JmpJSGT, JmpJSGE, JmpJSLT, JmpJSLE}

	steps := 15 + rng.Intn(30)
	// Path exploration doubles per conditional branch; stay well under
	// the verifier's state limit.
	branchBudget := 8
	for s := 0; s < steps; s++ {
		prod := rng.Intn(17)
		if (prod == 7 || prod == 9) && branchBudget == 0 {
			prod = 0
		}
		if prod == 7 || prod == 9 {
			branchBudget--
		}
		switch prod {
		case 0: // ALU imm, both widths
			op := aluOps[rng.Intn(len(aluOps))]
			class := uint8(ClassALU64)
			if rng.Intn(2) == 0 {
				class = ClassALU
			}
			iv := imm()
			if (op == ALUDiv || op == ALUMod) && iv == 0 {
				iv = 1
			}
			a.Emit(Instruction{Op: class | op | SrcK, Dst: scal(), Imm: iv})
		case 1: // ALU reg
			op := aluOps[rng.Intn(len(aluOps))]
			class := uint8(ClassALU64)
			if rng.Intn(2) == 0 {
				class = ClassALU
			}
			a.Emit(Instruction{Op: class | op | SrcX, Dst: scal(), Src: scal()})
		case 2: // neg, both widths
			class := uint8(ClassALU64)
			if rng.Intn(2) == 0 {
				class = ClassALU
			}
			a.Emit(Instruction{Op: class | ALUNeg, Dst: scal()})
		case 3: // stack store (dw establishes the slot, then any width)
			s := initSlot()
			size := sizes[rng.Intn(len(sizes))]
			off := s + int16(rng.Int63n(9-sizeBytes[size]))
			if rng.Intn(2) == 0 {
				a.Emit(StoreMem(R10, off, scal(), size))
			} else {
				a.Emit(StoreImm(R10, off, imm(), size))
			}
		case 4: // stack load from an initialized slot
			s := initSlot()
			size := sizes[rng.Intn(len(sizes))]
			off := s + int16(rng.Int63n(9-sizeBytes[size]))
			a.Emit(LoadMem(scal(), R10, off, size))
		case 5: // ctx load
			size := sizes[rng.Intn(len(sizes))]
			off := int16(rng.Int63n(int64(diffCtxSize) + 1 - sizeBytes[size]))
			a.Emit(LoadMem(scal(), R6, off, size))
		case 6: // scalar helpers
			a.Emit(Call([]int32{HelperKtimeGetNS, HelperGetCurrentPidTgid, HelperGetSMPProcID}[rng.Intn(3)]))
		case 7: // conditional skip over a scalar block
			label++
			l := fmt.Sprintf("L%d", label)
			op := jmpOps[rng.Intn(len(jmpOps))]
			use32 := rng.Intn(2) == 0
			block := 1 + rng.Intn(3)
			if use32 {
				a.Emit(JmpImm32(op, scal(), imm(), int16(block)))
			} else if rng.Intn(2) == 0 {
				a.JumpImm(op, scal(), imm(), l)
			} else {
				a.JumpReg(op, scal(), scal(), l)
			}
			for b := 0; b < block; b++ {
				a.Emit(Instruction{Op: ClassALU64 | aluOps[rng.Intn(3)] | SrcK, Dst: scal(), Imm: imm()})
			}
			if !use32 {
				a.Label(l)
			}
		case 8: // hash update
			a.Emit(StoreImm(R10, -8, key(), SizeDW), StoreImm(R10, -16, imm(), SizeDW))
			initialized[-8], initialized[-16] = true, true
			a.EmitWide(LoadMapFD(R1, 1))
			a.Emit(
				Mov64Reg(R2, R10), Add64Imm(R2, -8),
				Mov64Reg(R3, R10), Add64Imm(R3, -16),
				Mov64Imm(R4, int32(rng.Intn(3))),
				Call(HelperMapUpdateElem),
			)
		case 9: // map lookup with null-checked dereference
			fd := int32(1 + rng.Intn(2))
			if fd == 1 {
				a.Emit(StoreImm(R10, -8, key(), SizeDW))
			} else {
				a.Emit(StoreImm(R10, -8, key(), SizeW), StoreImm(R10, -4, 0, SizeW))
			}
			initialized[-8] = true
			a.EmitWide(LoadMapFD(R1, fd))
			a.Emit(Mov64Reg(R2, R10), Add64Imm(R2, -8), Call(HelperMapLookupElem))
			label++
			l := fmt.Sprintf("L%d", label)
			a.JumpImm(JmpJEQ, R0, 0, l)
			valSize := int64(8)
			if fd == 2 {
				valSize = diffArrayVal
			}
			// R0 holds the map-value pointer here; only use R7-R9 so the
			// pointer survives the whole guarded block.
			sc := func() Register { return []Register{R7, R8, R9}[rng.Intn(3)] }
			for n := 1 + rng.Intn(2); n > 0; n-- {
				switch rng.Intn(4) {
				case 0:
					size := sizes[rng.Intn(len(sizes))]
					a.Emit(LoadMem(sc(), R0, int16(rng.Int63n(valSize+1-sizeBytes[size])), size))
				case 1:
					size := sizes[rng.Intn(len(sizes))]
					a.Emit(StoreMem(R0, int16(rng.Int63n(valSize+1-sizeBytes[size])), sc(), size))
				case 2:
					a.Emit(AtomicAdd64(R0, int16(8*rng.Int63n(valSize/8)), sc()))
				default:
					a.Emit(AtomicAdd32(R0, int16(4*rng.Int63n(valSize/4)), sc()))
				}
			}
			a.Label(l)
			a.Emit(Mov64Imm(R0, imm())) // re-unify R0 to a scalar
		case 10: // hash delete
			a.Emit(StoreImm(R10, -8, key(), SizeDW))
			initialized[-8] = true
			a.EmitWide(LoadMapFD(R1, 1))
			a.Emit(Mov64Reg(R2, R10), Add64Imm(R2, -8), Call(HelperMapDeleteElem))
		case 11: // ringbuf output of 8..24 stack bytes
			words := 1 + rng.Intn(3)
			for w := 0; w < words; w++ {
				off := int16(-32 + 8*w)
				a.Emit(StoreImm(R10, off, imm(), SizeDW))
				initialized[off] = true
			}
			a.EmitWide(LoadMapFD(R1, 3))
			a.Emit(
				Mov64Reg(R2, R10), Add64Imm(R2, -32),
				Mov64Imm(R3, int32(8*words)),
				Mov64Imm(R4, 0),
				Call(HelperRingbufOutput),
			)
		case 12: // ringbuf query (flag 4 is unknown -> 0, as on Linux)
			a.EmitWide(LoadMapFD(R1, 3))
			a.Emit(Mov64Imm(R2, int32(rng.Intn(5))), Call(HelperRingbufQuery))
		case 14: // cms update (small key domain forces counter collisions)
			a.Emit(StoreImm(R10, -8, key(), SizeDW))
			initialized[-8] = true
			a.EmitWide(LoadMapFD(R1, 4))
			a.Emit(
				Mov64Reg(R2, R10), Add64Imm(R2, -8),
				Mov64Imm(R3, imm()),
				Call(HelperCMSUpdate),
			)
		case 15: // cms estimate
			a.Emit(StoreImm(R10, -8, key(), SizeDW))
			initialized[-8] = true
			a.EmitWide(LoadMapFD(R1, 4))
			a.Emit(Mov64Reg(R2, R10), Add64Imm(R2, -8), Call(HelperCMSEstimate))
		case 16: // hashpipe insert (tiny pipe forces evictions and drops)
			a.Emit(StoreImm(R10, -8, key(), SizeDW))
			initialized[-8] = true
			a.EmitWide(LoadMapFD(R1, 5))
			a.Emit(
				Mov64Reg(R2, R10), Add64Imm(R2, -8),
				Mov64Imm(R3, 1+int32(rng.Intn(16))),
				Call(HelperHashPipeInsert),
			)
		default: // atomic add on an initialized stack slot
			s := initSlot()
			if rng.Intn(2) == 0 {
				a.Emit(AtomicAdd64(R10, s, scal()))
			} else {
				a.Emit(AtomicAdd32(R10, s+int16(4*rng.Int63n(2)), scal()))
			}
		}

		// Occasionally spill a pointer, restore it, and use it — the
		// idiom the verifier models with its spill map.
		if rng.Intn(8) == 0 {
			switch rng.Intn(3) {
			case 0: // spill ctx, restore into a scratch arg reg, read through it
				a.Emit(
					StoreMem(R10, -72, R6, SizeDW),
					LoadMem(R5, R10, -72, SizeDW),
					LoadMem(scal(), R5, int16(rng.Intn(diffCtxSize-7)), SizeDW),
				)
			case 1: // spill the frame pointer and load a slot through the restored copy
				s := initSlot()
				a.Emit(
					StoreMem(R10, -80, R10, SizeDW),
					LoadMem(R4, R10, -80, SizeDW),
					LoadMem(scal(), R4, s, SizeDW),
				)
			default: // overwrite a spill slot: the re-read must be a raw scalar
				a.Emit(
					StoreMem(R10, -72, R6, SizeDW),
					StoreImm(R10, -72, imm(), SizeDW),
					LoadMem(scal(), R10, -72, SizeDW),
				)
			}
			initialized[-72] = true
			initialized[-80] = true
		}
	}

	// Stack-pointer comparison epilogue, then a scalar return.
	label++
	l := fmt.Sprintf("L%d", label)
	a.Emit(Mov64Reg(R3, R10), Add64Imm(R3, int32(slot())))
	a.JumpReg(JmpJNE, R3, R10, l)
	a.Emit(Mov64Imm(R7, 1))
	a.Label(l)
	a.Emit(Mov64Imm(R0, imm()), Exit())
	return a.MustAssemble()
}

// TestDifferentialVM cross-checks the interpreter against the reference
// evaluator on a few hundred random verifier-accepted programs.
func TestDifferentialVM(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		insns := genProgram(rng)
		prog, err := Load(ProgramSpec{Name: "diff", Insns: insns, Maps: diffMaps(), CtxSize: diffCtxSize})
		if err != nil {
			t.Fatalf("generator emitted a rejected program (trial %d): %v\n%s", trial, err, Disassemble(insns))
		}
		ctx := make([]byte, diffCtxSize)
		rng.Read(ctx)
		runDifferential(t, prog, insns, ctx)
	}
}

// TestSpillRestorePrograms pins the pointer spill/restore semantics the
// verifier models: spilled pointers round-trip through the stack, and a
// clobbered spill slot reads back as raw bytes.
func TestSpillRestorePrograms(t *testing.T) {
	// Spill ctx ptr, restore it, read ctx through the restored copy.
	prog := MustLoad(ProgramSpec{Name: "spill", Insns: []Instruction{
		Mov64Reg(R6, R1),
		StoreMem(R10, -8, R6, SizeDW),
		LoadMem(R2, R10, -8, SizeDW),
		LoadMem(R0, R2, 0, SizeDW),
		Exit(),
	}, CtxSize: 8})
	ctx := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	ret, _, err := prog.Run(ctx, &FixedEnv{})
	if err != nil {
		t.Fatalf("spill/restore program faulted: %v", err)
	}
	if want := binary.LittleEndian.Uint64(ctx); ret != want {
		t.Fatalf("restored ctx read = %#x, want %#x", ret, want)
	}

	// Clobbering the spill slot turns the re-read into a plain scalar,
	// which then cannot be dereferenced: the verifier must reject.
	_, err = Load(ProgramSpec{Name: "clobber", Insns: []Instruction{
		Mov64Reg(R6, R1),
		StoreMem(R10, -8, R6, SizeDW),
		StoreImm(R10, -8, 9, SizeDW),
		LoadMem(R2, R10, -8, SizeDW),
		LoadMem(R0, R2, 0, SizeDW), // deref of a scalar
		Exit(),
	}, CtxSize: 8})
	if err == nil {
		t.Fatal("verifier accepted a dereference through a clobbered spill slot")
	}

	// An atomic RMW on the spill slot likewise destroys the pointer.
	_, err = Load(ProgramSpec{Name: "atomic-clobber", Insns: []Instruction{
		Mov64Reg(R6, R1),
		Mov64Imm(R3, 1),
		StoreMem(R10, -8, R6, SizeDW),
		AtomicAdd64(R10, -8, R3),
		LoadMem(R2, R10, -8, SizeDW),
		LoadMem(R0, R2, 0, SizeDW),
		Exit(),
	}, CtxSize: 8})
	if err == nil {
		t.Fatal("verifier accepted a dereference through an atomically-clobbered spill slot")
	}

	// Zero-size helper accesses (ring buffers have KeySize 0) must not
	// fault even though R2 holds no pointer.
	prog = MustLoad(ProgramSpec{Name: "zerokey", Insns: append(append([]Instruction{},
		LoadMapFD(R1, 3)[0], LoadMapFD(R1, 3)[1]),
		Call(HelperMapLookupElem), // ring lookup: always a miss
		JmpImm(JmpJEQ, R0, 0, 2),
		Mov64Imm(R0, 1),
		Ja(1),
		Mov64Imm(R0, 0),
		Exit(),
	), Maps: diffMaps(), CtxSize: 0})
	ret, _, err = prog.Run(nil, &FixedEnv{})
	if err != nil {
		t.Fatalf("zero-size key lookup faulted: %v", err)
	}
	if ret != 0 {
		t.Fatalf("ring lookup returned %#x, want 0 (null miss)", ret)
	}
}

// FuzzDifferential extends the differential property to arbitrary
// verifier-accepted byte streams: whatever mutation survives the
// verifier must execute identically on both machines.
func FuzzDifferential(f *testing.F) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 8; i++ {
		f.Add(Encode(genProgram(rng)))
	}
	// Dedicated sketch-helper seeds: a cms_update/cms_estimate
	// round-trip and a hashpipe_insert burst that overflows the tiny
	// pipe, so mutation starts from programs that already reach the
	// sketch code paths.
	a := NewAssembler()
	a.Emit(StoreImm(R10, -8, 3, SizeDW))
	a.EmitWide(LoadMapFD(R1, 4))
	a.Emit(Mov64Reg(R2, R10), Add64Imm(R2, -8), Mov64Imm(R3, 7), Call(HelperCMSUpdate))
	a.EmitWide(LoadMapFD(R1, 4))
	a.Emit(Mov64Reg(R2, R10), Add64Imm(R2, -8), Call(HelperCMSEstimate), Exit())
	f.Add(Encode(a.MustAssemble()))

	a = NewAssembler()
	for k := int32(0); k < 6; k++ {
		a.Emit(StoreImm(R10, -8, k, SizeDW))
		a.EmitWide(LoadMapFD(R1, 5))
		a.Emit(Mov64Reg(R2, R10), Add64Imm(R2, -8), Mov64Imm(R3, k+1), Call(HelperHashPipeInsert))
	}
	a.Emit(Exit())
	f.Add(Encode(a.MustAssemble()))
	f.Fuzz(func(t *testing.T, raw []byte) {
		insns, err := Decode(raw)
		if err != nil || len(insns) == 0 {
			return
		}
		prog, err := Load(ProgramSpec{Name: "diff-fuzz", Insns: insns, Maps: diffMaps(), CtxSize: diffCtxSize})
		if err != nil {
			return
		}
		runDifferential(t, prog, insns, make([]byte, diffCtxSize))
	})
}
