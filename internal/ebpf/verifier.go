package ebpf

import (
	"fmt"
)

// VerifierError reports why a program was rejected, with the offending
// program counter.
type VerifierError struct {
	PC     int    // instruction slot the verifier rejected
	Reason string // human-readable rejection reason
}

// Error formats the rejection with its program counter.
func (e *VerifierError) Error() string {
	return fmt.Sprintf("ebpf: verifier: pc=%d: %s", e.PC, e.Reason)
}

// maxVerifierStates caps path exploration, mirroring the kernel's
// complexity limit.
const maxVerifierStates = 1 << 17

// Abstract register types tracked by the verifier.
type absType uint8

const (
	tUninit absType = iota
	tScalar
	tCtx
	tStack
	tMapValue
	tMapValueOrNull
	tMapHandle
)

func (t absType) String() string {
	switch t {
	case tUninit:
		return "uninit"
	case tScalar:
		return "scalar"
	case tCtx:
		return "ctx"
	case tStack:
		return "stack_ptr"
	case tMapValue:
		return "map_value"
	case tMapValueOrNull:
		return "map_value_or_null"
	case tMapHandle:
		return "map_handle"
	}
	return "?"
}

// absReg is the verifier's knowledge about one register.
type absReg struct {
	t     absType
	m     Map    // for map handle / value types
	off   int64  // pointer offset (stack: distance from frame base 0..512)
	known bool   // scalar with known constant value
	val   uint64 // the constant, when known
}

func scalarReg() absReg           { return absReg{t: tScalar} }
func knownScalar(v uint64) absReg { return absReg{t: tScalar, known: true, val: v} }

// stackMark tracks per-byte initialization of the program stack.
type stackMark uint8

const (
	stackUnwritten stackMark = iota
	stackWritten
	stackSpilledPtr // part of an 8-byte slot holding a spilled pointer
)

// absState is one abstract machine state during path exploration.
type absState struct {
	regs   [NumRegisters]absReg
	stack  [StackSize]stackMark
	spills map[int64]absReg // stack offset (0..504, 8-aligned) -> spilled pointer
}

func (s *absState) clone() *absState {
	n := &absState{regs: s.regs, stack: s.stack}
	n.spills = make(map[int64]absReg, len(s.spills))
	for k, v := range s.spills {
		n.spills[k] = v
	}
	return n
}

type verifier struct {
	insns   []Instruction
	maps    map[int32]Map
	ctxSize int
	visited int
}

// verify runs structural checks, the loop check, and abstract
// interpretation over every path. It returns the number of abstract
// states explored (the verifier's dynamic cost, exposed through
// Program.VerifierStates for telemetry) and nil exactly when the
// program is safe.
func verify(insns []Instruction, maps map[int32]Map, ctxSize int) (int, error) {
	if len(insns) == 0 {
		return 0, &VerifierError{PC: 0, Reason: "empty program"}
	}
	if len(insns) > MaxInstructions {
		return 0, &VerifierError{PC: 0, Reason: fmt.Sprintf("program too long: %d > %d instructions", len(insns), MaxInstructions)}
	}
	v := &verifier{insns: insns, maps: maps, ctxSize: ctxSize}
	if err := v.structural(); err != nil {
		return v.visited, err
	}
	if err := v.rejectBackEdges(); err != nil {
		return v.visited, err
	}
	init := &absState{spills: make(map[int64]absReg)}
	init.regs[R1] = absReg{t: tCtx}
	init.regs[R10] = absReg{t: tStack, off: StackSize}
	err := v.explore(0, init)
	return v.visited, err
}

// wideSecond reports whether pc is the second slot of an LdImmDW pair.
func (v *verifier) wideSecond(pc int) bool {
	return pc > 0 && v.insns[pc-1].IsWideLoad()
}

func (v *verifier) structural() error {
	for pc, in := range v.insns {
		if v.wideSecond(pc) {
			continue
		}
		// The wire format carries 4-bit register fields; r11-r15 are
		// invalid everywhere.
		if in.Dst >= NumRegisters || in.Src >= NumRegisters {
			return &VerifierError{PC: pc, Reason: fmt.Sprintf("invalid register r%d", max8(uint8(in.Dst), uint8(in.Src)))}
		}
		if in.IsWideLoad() {
			if pc+1 >= len(v.insns) {
				return &VerifierError{PC: pc, Reason: "truncated lddw pair"}
			}
			if v.insns[pc+1].Op != 0 {
				return &VerifierError{PC: pc, Reason: "malformed lddw second slot"}
			}
			if in.Src == PseudoMapFD {
				if _, ok := v.maps[in.Imm]; !ok {
					return &VerifierError{PC: pc, Reason: fmt.Sprintf("unknown map fd %d", in.Imm)}
				}
			} else if in.Src != 0 {
				return &VerifierError{PC: pc, Reason: "invalid lddw src register"}
			}
			if in.Dst >= R10 {
				return &VerifierError{PC: pc, Reason: "lddw into r10"}
			}
			continue
		}
		switch in.Class() {
		case ClassALU, ClassALU64:
			if _, ok := aluOpNames[in.ALUOp()]; !ok {
				return &VerifierError{PC: pc, Reason: fmt.Sprintf("invalid ALU op %#x", in.Op)}
			}
			if in.Dst >= R10 {
				return &VerifierError{PC: pc, Reason: "write to frame pointer r10"}
			}
			if (in.ALUOp() == ALUDiv || in.ALUOp() == ALUMod) && in.UsesImm() && in.Imm == 0 {
				return &VerifierError{PC: pc, Reason: "division by zero immediate"}
			}
		case ClassJMP:
			op := in.JmpOp()
			if _, ok := jmpOpNames[op]; !ok {
				return &VerifierError{PC: pc, Reason: fmt.Sprintf("invalid jump op %#x", in.Op)}
			}
			switch op {
			case JmpExit:
			case JmpCall:
				if !helperKnown(in.Imm) {
					return &VerifierError{PC: pc, Reason: fmt.Sprintf("unknown helper function %d", in.Imm)}
				}
			default:
				target := pc + 1 + int(in.Off)
				if target < 0 || target >= len(v.insns) {
					return &VerifierError{PC: pc, Reason: fmt.Sprintf("jump target %d out of range", target)}
				}
				if v.wideSecond(target) {
					return &VerifierError{PC: pc, Reason: "jump into the middle of lddw"}
				}
			}
		case ClassJMP32:
			op := in.JmpOp()
			switch op {
			case JmpJA, JmpCall, JmpExit:
				return &VerifierError{PC: pc, Reason: "ja/call/exit are 64-bit JMP class only"}
			}
			if _, ok := jmpOpNames[op]; !ok {
				return &VerifierError{PC: pc, Reason: fmt.Sprintf("invalid jump op %#x", in.Op)}
			}
			target := pc + 1 + int(in.Off)
			if target < 0 || target >= len(v.insns) {
				return &VerifierError{PC: pc, Reason: fmt.Sprintf("jump target %d out of range", target)}
			}
			if v.wideSecond(target) {
				return &VerifierError{PC: pc, Reason: "jump into the middle of lddw"}
			}
		case ClassLDX, ClassSTX, ClassST:
			mode := in.Op & 0xe0
			if mode == ModeAtomic {
				if in.Class() != ClassSTX {
					return &VerifierError{PC: pc, Reason: "atomic mode requires STX class"}
				}
				if in.Imm != AtomicAdd {
					return &VerifierError{PC: pc, Reason: fmt.Sprintf("unsupported atomic op %#x", in.Imm)}
				}
				if in.Size() != 4 && in.Size() != 8 {
					return &VerifierError{PC: pc, Reason: "atomic add requires 4- or 8-byte width"}
				}
			} else if mode != ModeMEM {
				return &VerifierError{PC: pc, Reason: "unsupported memory mode"}
			}
			if in.Class() == ClassLDX && in.Dst >= R10 {
				return &VerifierError{PC: pc, Reason: "load into frame pointer r10"}
			}
		case ClassLD:
			return &VerifierError{PC: pc, Reason: "invalid LD-class instruction"}
		}
	}
	return nil
}

// successors returns the possible next pcs of the instruction at pc.
func (v *verifier) successors(pc int) []int {
	in := v.insns[pc]
	if in.IsWideLoad() {
		return []int{pc + 2}
	}
	if in.Class() == ClassJMP32 {
		return []int{pc + 1, pc + 1 + int(in.Off)}
	}
	if in.Class() != ClassJMP {
		return []int{pc + 1}
	}
	switch in.JmpOp() {
	case JmpExit:
		return nil
	case JmpJA:
		return []int{pc + 1 + int(in.Off)}
	case JmpCall:
		return []int{pc + 1}
	default:
		return []int{pc + 1, pc + 1 + int(in.Off)}
	}
}

// rejectBackEdges performs an iterative DFS over the CFG and rejects any
// edge to a node currently on the DFS stack — i.e. loops, which the eBPF
// verifier forbids (bounded-loop support notwithstanding; the paper's
// probes are loop-free as all classic tracepoint probes are).
func (v *verifier) rejectBackEdges() error {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]byte, len(v.insns))
	type frame struct {
		pc   int
		next int
	}
	var stack []frame
	push := func(pc int) {
		color[pc] = gray
		stack = append(stack, frame{pc: pc})
	}
	push(0)
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		succ := v.successors(f.pc)
		if f.next >= len(succ) {
			color[f.pc] = black
			stack = stack[:len(stack)-1]
			continue
		}
		next := succ[f.next]
		f.next++
		if next >= len(v.insns) {
			return &VerifierError{PC: f.pc, Reason: "control flow falls off the end of the program"}
		}
		switch color[next] {
		case gray:
			return &VerifierError{PC: f.pc, Reason: fmt.Sprintf("back-edge to %d: loops are not allowed", next)}
		case white:
			push(next)
		}
	}
	return nil
}

func helperKnown(id int32) bool {
	switch id {
	case HelperMapLookupElem, HelperMapUpdateElem, HelperMapDeleteElem,
		HelperKtimeGetNS, HelperGetSMPProcID, HelperGetCurrentPidTgid,
		HelperRingbufOutput, HelperRingbufQuery,
		HelperCMSUpdate, HelperCMSEstimate, HelperHashPipeInsert:
		return true
	}
	return false
}

func (v *verifier) errf(pc int, format string, args ...any) error {
	return &VerifierError{PC: pc, Reason: fmt.Sprintf(format, args...)}
}

// explore walks one path; it recurses at conditional branches with a
// cloned state. The CFG is a DAG (rejectBackEdges ran first) so this
// terminates; visited caps pathological exponential blowups.
func (v *verifier) explore(pc int, st *absState) error {
	for {
		v.visited++
		if v.visited > maxVerifierStates {
			return v.errf(pc, "program too complex: state limit exceeded")
		}
		if pc < 0 || pc >= len(v.insns) {
			return v.errf(pc, "control flow falls off the end of the program")
		}
		in := v.insns[pc]
		switch {
		case in.IsWideLoad():
			if in.Src == PseudoMapFD {
				st.regs[in.Dst] = absReg{t: tMapHandle, m: v.maps[in.Imm]}
			} else {
				imm := uint64(uint32(in.Imm)) | uint64(uint32(v.insns[pc+1].Imm))<<32
				st.regs[in.Dst] = knownScalar(imm)
			}
			pc += 2
		case in.Class() == ClassALU || in.Class() == ClassALU64:
			if err := v.checkALU(pc, in, st); err != nil {
				return err
			}
			pc++
		case in.Class() == ClassLDX:
			if err := v.checkLoad(pc, in, st); err != nil {
				return err
			}
			pc++
		case in.Class() == ClassSTX || in.Class() == ClassST:
			if err := v.checkStore(pc, in, st); err != nil {
				return err
			}
			pc++
		case in.Class() == ClassJMP32:
			takenState, fallState, err := v.checkBranch(pc, in, st)
			if err != nil {
				return err
			}
			if err := v.explore(pc+1+int(in.Off), takenState); err != nil {
				return err
			}
			pc, st = pc+1, fallState
		case in.Class() == ClassJMP:
			switch in.JmpOp() {
			case JmpExit:
				r0 := st.regs[R0]
				if r0.t != tScalar {
					return v.errf(pc, "R0 is %s at exit, need scalar return value", r0.t)
				}
				return nil
			case JmpCall:
				if err := v.checkCall(pc, in.Imm, st); err != nil {
					return err
				}
				pc++
			case JmpJA:
				pc += 1 + int(in.Off)
			default:
				takenPC := pc + 1 + int(in.Off)
				fallPC := pc + 1
				takenState, fallState, err := v.checkBranch(pc, in, st)
				if err != nil {
					return err
				}
				if err := v.explore(takenPC, takenState); err != nil {
					return err
				}
				pc, st = fallPC, fallState
			}
		default:
			// structural() admits no other class; reaching here is a
			// verifier bug, not a program error.
			panic(fmt.Sprintf("ebpf: verifier: unchecked class %#x at pc %d", in.Class(), pc))
		}
	}
}

func (v *verifier) readReg(pc int, st *absState, r Register) (absReg, error) {
	reg := st.regs[r]
	if reg.t == tUninit {
		return reg, v.errf(pc, "read of uninitialized register %s", r)
	}
	return reg, nil
}

func (v *verifier) aluSrc(pc int, in Instruction, st *absState) (absReg, error) {
	if in.UsesImm() {
		return knownScalar(uint64(int64(in.Imm))), nil
	}
	return v.readReg(pc, st, in.Src)
}

func isPointerType(t absType) bool {
	return t == tCtx || t == tStack || t == tMapValue
}

func (v *verifier) checkALU(pc int, in Instruction, st *absState) error {
	src, err := v.aluSrc(pc, in, st)
	if err != nil {
		return err
	}
	op := in.ALUOp()
	// MOV only reads dst's old value for no ops; NEG reads dst only.
	var dst absReg
	if op == ALUMov {
		dst = st.regs[in.Dst] // may be uninit; it is overwritten
	} else {
		dst, err = v.readReg(pc, st, in.Dst)
		if err != nil {
			return err
		}
	}
	is32 := in.Class() == ClassALU

	if op == ALUMov {
		if src.t == tMapValueOrNull {
			return v.errf(pc, "copying possibly-null map value; null check required first")
		}
		if is32 {
			if src.t != tScalar {
				return v.errf(pc, "32-bit mov of %s", src.t)
			}
			out := src
			if out.known {
				out.val = uint64(uint32(out.val))
			}
			st.regs[in.Dst] = out
			return nil
		}
		st.regs[in.Dst] = src
		return nil
	}

	dstPtr := isPointerType(dst.t)
	srcPtr := isPointerType(src.t)
	if dst.t == tMapValueOrNull || src.t == tMapValueOrNull {
		return v.errf(pc, "arithmetic on possibly-null map value; null check required first")
	}
	if dst.t == tMapHandle || src.t == tMapHandle {
		return v.errf(pc, "arithmetic on map handle")
	}

	if dstPtr || srcPtr {
		if is32 {
			return v.errf(pc, "32-bit arithmetic on pointer")
		}
		switch op {
		case ALUAdd:
			ptr, scal := dst, src
			if srcPtr {
				if dstPtr {
					return v.errf(pc, "adding two pointers")
				}
				ptr, scal = src, dst
			}
			if scal.t != tScalar || !scal.known {
				return v.errf(pc, "pointer arithmetic with unknown scalar")
			}
			ptr.off += int64(scal.val)
			st.regs[in.Dst] = ptr
			return nil
		case ALUSub:
			if dstPtr && src.t == tScalar {
				if !src.known {
					return v.errf(pc, "pointer arithmetic with unknown scalar")
				}
				dst.off -= int64(src.val)
				st.regs[in.Dst] = dst
				return nil
			}
			if dstPtr && srcPtr && dst.t == src.t && dst.t == tStack {
				st.regs[in.Dst] = knownScalar(uint64(dst.off - src.off))
				return nil
			}
			return v.errf(pc, "invalid pointer subtraction (%s - %s)", dst.t, src.t)
		default:
			return v.errf(pc, "invalid op %s on pointer", aluOpNames[op])
		}
	}

	// scalar op scalar: propagate constants when both sides known.
	out := scalarReg()
	if dst.known && src.known {
		a, b := dst.val, src.val
		if is32 {
			a, b = uint64(uint32(a)), uint64(uint32(b))
		}
		known := true
		var val uint64
		switch op {
		case ALUAdd:
			val = a + b
		case ALUSub:
			val = a - b
		case ALUMul:
			val = a * b
		case ALUDiv:
			if b == 0 {
				val = 0
			} else {
				val = a / b
			}
		case ALUMod:
			if b == 0 {
				val = a
			} else {
				val = a % b
			}
		case ALUOr:
			val = a | b
		case ALUAnd:
			val = a & b
		case ALUXor:
			val = a ^ b
		case ALULsh:
			val = a << (b & 63)
		case ALURsh:
			val = a >> (b & 63)
		case ALUArsh:
			val = uint64(int64(a) >> (b & 63))
		case ALUNeg:
			val = -a
		default:
			known = false
		}
		if known {
			if is32 {
				val = uint64(uint32(val))
			}
			out = knownScalar(val)
		}
	}
	st.regs[in.Dst] = out
	return nil
}

// checkMem validates an access of size bytes at base+off and (for writes)
// updates stack initialization marks. isRead selects read or write rules.
func (v *verifier) checkMem(pc int, st *absState, base absReg, off int64, size int, isRead bool) error {
	switch base.t {
	case tMapValueOrNull:
		return v.errf(pc, "dereference of possibly-null map value; null check required first")
	case tMapHandle:
		return v.errf(pc, "dereference of map handle")
	case tScalar, tUninit:
		return v.errf(pc, "memory access through %s", base.t)
	case tCtx:
		if !isRead {
			return v.errf(pc, "write to read-only ctx")
		}
		start := base.off + off
		if start < 0 || start+int64(size) > int64(v.ctxSize) {
			return v.errf(pc, "ctx access [%d,%d) out of bounds [0,%d)", start, start+int64(size), v.ctxSize)
		}
		return nil
	case tMapValue:
		start := base.off + off
		if start < 0 || start+int64(size) > int64(base.m.ValueSize()) {
			return v.errf(pc, "map value access [%d,%d) out of bounds [0,%d)", start, start+int64(size), base.m.ValueSize())
		}
		return nil
	default: // tStack: the only remaining region type
		start := base.off + off
		end := start + int64(size)
		if start < 0 || end > StackSize {
			return v.errf(pc, "stack access [%d,%d) out of bounds [0,%d)", start, end, StackSize)
		}
		if isRead {
			for i := start; i < end; i++ {
				if st.stack[i] == stackUnwritten {
					return v.errf(pc, "read of uninitialized stack byte %d", i)
				}
			}
		}
		return nil
	}
}

func (v *verifier) checkLoad(pc int, in Instruction, st *absState) error {
	base, err := v.readReg(pc, st, in.Src)
	if err != nil {
		return err
	}
	size := in.Size()
	if err := v.checkMem(pc, st, base, int64(in.Off), size, true); err != nil {
		return err
	}
	// Restoring a spilled pointer: an aligned 8-byte load from a spill slot.
	if base.t == tStack {
		start := base.off + int64(in.Off)
		if size == 8 && start%8 == 0 {
			if sp, ok := st.spills[start]; ok {
				st.regs[in.Dst] = sp
				return nil
			}
		}
		// Partial overlap with a spilled pointer reads raw bytes; treat
		// as scalar (pointer identity is lost).
	}
	st.regs[in.Dst] = scalarReg()
	return nil
}

func (v *verifier) checkStore(pc int, in Instruction, st *absState) error {
	base, err := v.readReg(pc, st, in.Dst)
	if err != nil {
		return err
	}
	size := in.Size()
	var srcReg absReg
	if in.Class() == ClassSTX {
		srcReg, err = v.readReg(pc, st, in.Src)
		if err != nil {
			return err
		}
		if srcReg.t == tMapValueOrNull {
			return v.errf(pc, "spilling possibly-null map value; null check required first")
		}
	} else {
		srcReg = knownScalar(uint64(int64(in.Imm)))
	}
	if in.Op&0xe0 == ModeAtomic {
		if srcReg.t != tScalar {
			return v.errf(pc, "atomic add of a pointer")
		}
		if base.t == tCtx {
			return v.errf(pc, "write to read-only ctx")
		}
		start := base.off + int64(in.Off)
		if start%int64(size) != 0 {
			return v.errf(pc, "atomic access must be %d-byte aligned", size)
		}
		// Read-modify-write: the location must already be initialized.
		if err := v.checkMem(pc, st, base, int64(in.Off), size, true); err != nil {
			return err
		}
		if err := v.checkMem(pc, st, base, int64(in.Off), size, false); err != nil {
			return err
		}
		// The RMW scalar-overwrites the slot, so any spilled pointer
		// overlapping it is gone (the runtime agrees: a later 8-byte load
		// yields the raw bytes as a scalar, not a pointer).
		if base.t == tStack {
			start := base.off + int64(in.Off)
			end := start + int64(size)
			for slot := range st.spills {
				if slot < end && slot+8 > start {
					delete(st.spills, slot)
				}
			}
			for i := start; i < end; i++ {
				st.stack[i] = stackWritten
			}
		}
		return nil
	}

	if srcReg.t != tScalar && srcReg.t != tMapHandle {
		// Spilling a pointer: only full 8-byte aligned stores to the stack.
		if base.t != tStack || size != 8 {
			return v.errf(pc, "pointer can only be spilled to an aligned 8-byte stack slot")
		}
	}
	if err := v.checkMem(pc, st, base, int64(in.Off), size, false); err != nil {
		return err
	}
	if base.t == tStack {
		start := base.off + int64(in.Off)
		end := start + int64(size)
		// Any overwrite invalidates overlapping spill slots.
		for slot := range st.spills {
			if slot < end && slot+8 > start {
				delete(st.spills, slot)
			}
		}
		mark := stackWritten
		if srcReg.t != tScalar && srcReg.t != tMapHandle && in.Class() == ClassSTX {
			if start%8 != 0 {
				return v.errf(pc, "pointer spill must be 8-byte aligned")
			}
			st.spills[start] = srcReg
			mark = stackSpilledPtr
		}
		for i := start; i < end; i++ {
			st.stack[i] = mark
		}
	}
	return nil
}

// checkBranch validates a conditional jump and returns the refined states
// for the taken and fall-through edges.
func (v *verifier) checkBranch(pc int, in Instruction, st *absState) (taken, fall *absState, err error) {
	dst, err := v.readReg(pc, st, in.Dst)
	if err != nil {
		return nil, nil, err
	}
	src, err := v.aluSrc(pc, in, st)
	if err != nil {
		return nil, nil, err
	}

	if in.Class() == ClassJMP32 && (dst.t != tScalar || src.t != tScalar) {
		return nil, nil, v.errf(pc, "32-bit comparison of %s with %s", dst.t, src.t)
	}

	// Null-check refinement: JEQ/JNE of a maybe-null map value against 0.
	if in.Class() == ClassJMP && dst.t == tMapValueOrNull && src.t == tScalar && src.known && src.val == 0 {
		op := in.JmpOp()
		if op != JmpJEQ && op != JmpJNE {
			return nil, nil, v.errf(pc, "possibly-null map value may only be compared with == or != 0")
		}
		nullSt := st.clone()
		okSt := st.clone()
		nullSt.regs[in.Dst] = knownScalar(0)
		okSt.regs[in.Dst] = absReg{t: tMapValue, m: dst.m, off: dst.off}
		if op == JmpJEQ {
			return nullSt, okSt, nil // taken: was null
		}
		return okSt, nullSt, nil // JNE taken: non-null
	}
	if dst.t == tMapValueOrNull || src.t == tMapValueOrNull {
		return nil, nil, v.errf(pc, "possibly-null map value in comparison; null check against 0 required")
	}
	if dst.t != tScalar || src.t != tScalar {
		// Allow same-kind stack pointer equality (rare but sound).
		if dst.t == tStack && src.t == tStack && (in.JmpOp() == JmpJEQ || in.JmpOp() == JmpJNE) {
			return st.clone(), st.clone(), nil
		}
		return nil, nil, v.errf(pc, "comparison of %s with %s", dst.t, src.t)
	}
	return st.clone(), st.clone(), nil
}

// checkReadable validates that reg points to size readable bytes.
func (v *verifier) checkReadable(pc int, st *absState, reg absReg, size int, what string) error {
	if size == 0 {
		return nil
	}
	if !isPointerType(reg.t) {
		return v.errf(pc, "%s must be a pointer, got %s", what, reg.t)
	}
	return v.checkMem(pc, st, reg, 0, size, true)
}

func (v *verifier) checkCall(pc int, id int32, st *absState) error {
	arg := func(r Register) absReg { return st.regs[r] }
	requireScalar := func(r Register, what string) error {
		a := arg(r)
		if a.t != tScalar {
			return v.errf(pc, "%s must be a scalar, got %s", what, a.t)
		}
		return nil
	}
	var ret absReg
	switch id {
	case HelperKtimeGetNS, HelperGetCurrentPidTgid, HelperGetSMPProcID:
		ret = scalarReg()
	case HelperMapLookupElem, HelperMapDeleteElem:
		m := arg(R1)
		if m.t != tMapHandle {
			return v.errf(pc, "helper arg R1 must be a map handle, got %s", m.t)
		}
		if isSketch(m.m) {
			return v.errf(pc, "generic map helper on sketch map %q (use the cms/hashpipe helpers)", m.m.Name())
		}
		if err := v.checkReadable(pc, st, arg(R2), m.m.KeySize(), "map key (R2)"); err != nil {
			return err
		}
		if id == HelperMapLookupElem {
			ret = absReg{t: tMapValueOrNull, m: m.m}
		} else {
			ret = scalarReg()
		}
	case HelperMapUpdateElem:
		m := arg(R1)
		if m.t != tMapHandle {
			return v.errf(pc, "helper arg R1 must be a map handle, got %s", m.t)
		}
		if isSketch(m.m) {
			return v.errf(pc, "generic map helper on sketch map %q (use the cms/hashpipe helpers)", m.m.Name())
		}
		if err := v.checkReadable(pc, st, arg(R2), m.m.KeySize(), "map key (R2)"); err != nil {
			return err
		}
		if err := v.checkReadable(pc, st, arg(R3), m.m.ValueSize(), "map value (R3)"); err != nil {
			return err
		}
		if err := requireScalar(R4, "map update flags (R4)"); err != nil {
			return err
		}
		ret = scalarReg()
	case HelperRingbufOutput:
		m := arg(R1)
		if m.t != tMapHandle {
			return v.errf(pc, "helper arg R1 must be a map handle, got %s", m.t)
		}
		if _, ok := m.m.(*RingBuf); !ok {
			return v.errf(pc, "ringbuf_output on non-ringbuf map %q", m.m.Name())
		}
		sz := arg(R3)
		if sz.t != tScalar || !sz.known {
			return v.errf(pc, "ringbuf_output size (R3) must be a known constant")
		}
		if sz.val > StackSize {
			return v.errf(pc, "ringbuf_output size %d too large", sz.val)
		}
		if err := v.checkReadable(pc, st, arg(R2), int(sz.val), "ringbuf record (R2)"); err != nil {
			return err
		}
		if err := requireScalar(R4, "ringbuf flags (R4)"); err != nil {
			return err
		}
		ret = scalarReg()
	case HelperRingbufQuery:
		m := arg(R1)
		if m.t != tMapHandle {
			return v.errf(pc, "helper arg R1 must be a map handle, got %s", m.t)
		}
		if _, ok := m.m.(*RingBuf); !ok {
			return v.errf(pc, "ringbuf_query on non-ringbuf map %q", m.m.Name())
		}
		if err := requireScalar(R2, "ringbuf_query flags (R2)"); err != nil {
			return err
		}
		ret = scalarReg()
	case HelperCMSUpdate, HelperCMSEstimate:
		m := arg(R1)
		if m.t != tMapHandle {
			return v.errf(pc, "helper arg R1 must be a map handle, got %s", m.t)
		}
		if _, ok := m.m.(*CMS); !ok {
			return v.errf(pc, "cms helper on non-cms map %q", m.m.Name())
		}
		if err := v.checkReadable(pc, st, arg(R2), m.m.KeySize(), "cms key (R2)"); err != nil {
			return err
		}
		if id == HelperCMSUpdate {
			if err := requireScalar(R3, "cms increment (R3)"); err != nil {
				return err
			}
		}
		ret = scalarReg()
	case HelperHashPipeInsert:
		m := arg(R1)
		if m.t != tMapHandle {
			return v.errf(pc, "helper arg R1 must be a map handle, got %s", m.t)
		}
		if _, ok := m.m.(*HashPipe); !ok {
			return v.errf(pc, "hashpipe_insert on non-hashpipe map %q", m.m.Name())
		}
		if err := v.checkReadable(pc, st, arg(R2), m.m.KeySize(), "hashpipe key (R2)"); err != nil {
			return err
		}
		if err := requireScalar(R3, "hashpipe increment (R3)"); err != nil {
			return err
		}
		ret = scalarReg()
	default:
		// structural() already rejected unknown helper ids via
		// helperKnown; reaching here is a verifier bug.
		panic(fmt.Sprintf("ebpf: verifier: unchecked helper %d at pc %d", id, pc))
	}
	st.regs[R0] = ret
	for r := R1; r <= R5; r++ {
		st.regs[r] = absReg{t: tUninit}
	}
	return nil
}

func max8(a, b uint8) uint8 {
	if a > b {
		return a
	}
	return b
}
