package ebpf

import (
	"encoding/binary"
	"sync"
)

// Compile-to-closures backend. At Load time the verified instruction
// stream is translated, one slot at a time, into a slice of pre-bound
// Go closures (ops): every instruction field is decoded exactly once,
// branch targets become closure indices, map handles resolve to their
// Map values, and the common instruction forms (mov, add, compare,
// load, store, the scalar helpers) get fully specialized closures that
// skip the interpreter's per-step opcode switch. Execution is then a
// tight index-advance loop: each op returns the index of its successor
// (a captured constant for straight-line code, one of two captured
// constants for branches) or exitOp when the program returns.
//
// The backend preserves the interpreter's semantics bit for bit,
// including runtime fault messages and RunStats accounting; the
// differential suite (differential_test.go) executes every generated
// and fuzzed program on interpreter, compiled backend, and reference
// evaluator and requires full-state agreement.
//
// Run state is pooled (vmPool): the register file, the stack, the
// spill tracking, and the map-value region arena all live in one
// reusable allocation, reset on every acquisition, so steady-state
// compiled execution performs zero heap allocations. Pooled state is
// returned only on normal completion — a panic unwinding through a run
// (a cooperative sim.Clock timeout, chaos injection) abandons the
// state to the garbage collector, so a recovered panic can never leak
// one run's registers or stack into a later run (the invariant
// resilience.Run's recovery relies on).

// cop is one compiled operation: it executes against the run state and
// returns the index of the next op, or exitOp when the program exits
// with m.ret set.
type cop func(m *vm) (int, error)

// exitOp is the successor index meaning "program returned".
const exitOp = -1

// spillSlots is the number of 8-byte-aligned stack slots that can hold
// a spilled pointer; the compiled backend tracks their liveness in a
// single uint64 bitmask (spillMask) instead of the interpreter's map.
const spillSlots = StackSize / 8

// vmPool recycles compiled-backend run state across Program.Run calls.
// It is shared process-wide: run state is program-independent (fixed
// stack and register file; the arena grows to the busiest program's
// per-run lookup count and stays).
var vmPool = sync.Pool{New: func() any { return new(vm) }}

// getVM acquires and resets pooled run state bound to (p, ctx, env).
// The steady-state source is the state parked on the Program by the
// previous run (no pool round-trip, no synchronization — Run is
// single-goroutine per Program); vmPool backs the first run and any
// run whose predecessor's state was abandoned by a panic. The stack
// buffer and spill array are allocated on first use of a pooled vm and
// retained with it; steady-state acquisition only clears them.
func getVM(p *Program, ctx []byte, env HelperEnv) *vm {
	m := p.rsCache
	if m == nil {
		m = vmPool.Get().(*vm)
	} else {
		p.rsCache = nil
	}
	if m.stackMem == nil {
		m.stackMem = make([]byte, StackSize)
		m.spillW = new([spillSlots]word)
	} else if m.stackLo < StackSize {
		clear(m.stackMem[m.stackLo:])
	}
	m.stackLo = StackSize
	m.prog, m.env = p, env
	m.steps = 0
	m.regs = [NumRegisters]word{}
	m.stack = region{kind: regionStack, data: m.stackMem}
	m.ctx = region{kind: regionCtx, data: ctx, readonly: true}
	m.stats = RunStats{}
	m.spillMask = 0
	m.mvArena = m.mvArena[:0]
	m.ret = 0
	m.pooled = true
	m.regs[R1] = word{region: &m.ctx}
	m.regs[R10] = word{region: &m.stack, off: StackSize}
	return m
}

// putVM releases run state, dropping references to caller-owned memory
// (the ctx slice, the helper env). It parks the state on the Program
// for the next run when the slot is free, else returns it to vmPool.
func putVM(p *Program, m *vm) {
	m.prog, m.env = nil, nil
	m.ctx = region{}
	m.stack = region{}
	if p.rsCache == nil {
		p.rsCache = m
		return
	}
	vmPool.Put(m)
}

// runCompiled executes the compiled program once against pooled run
// state. State is recycled on normal return and on runtime faults
// (fault errors copy what they report); it is deliberately NOT
// recycled when a panic unwinds through the run — see the package
// comment above.
func (p *Program) runCompiled(ctx []byte, env HelperEnv) (uint64, RunStats, error) {
	m := getVM(p, ctx, env)
	ret, err := p.execCompiled(m)
	st := m.stats
	putVM(p, m)
	return ret, st, err
}

// maxVMSteps is the dispatch budget shared with the interpreter's loop
// guard; verified programs are loop-free DAGs and cannot reach it.
const maxVMSteps = 4 * MaxInstructions

// chainCap bounds the dispatch weight of one chained block, which also
// bounds how far a block can run past the fast loop's budget guard.
const chainCap = 16

// execCompiled is the compiled dispatch loop. The fast loop dispatches
// fused/chained ops, accounting their weight against the budget up
// front — safe because its guard leaves more headroom than any one
// block can consume. Within a block of the budget it falls back to the
// unfused table with the interpreter's exact per-dispatch check, so a
// budget fault fires at the same instruction, with the same partial
// RunStats, on both backends. The pc bounds check mirrors the
// interpreter's defense in depth for stray (unverified) jumps.
func (p *Program) execCompiled(m *vm) (uint64, error) {
	ops, weights := p.ops, p.opWeights
	pc := 0
	for m.steps <= maxVMSteps-2*chainCap {
		if pc < 0 || pc >= len(ops) {
			return 0, m.fault(pc, "pc out of range")
		}
		m.steps += int(weights[pc])
		next, err := ops[pc](m)
		if err != nil {
			return 0, err
		}
		if next < 0 {
			return m.ret, nil
		}
		pc = next
	}
	single := p.opsSingle
	for {
		if m.steps > maxVMSteps {
			return 0, m.fault(pc, "instruction budget exhausted")
		}
		if pc < 0 || pc >= len(single) {
			return 0, m.fault(pc, "pc out of range")
		}
		next, err := single[pc](m)
		m.steps++
		if err != nil {
			return 0, err
		}
		if next < 0 {
			return m.ret, nil
		}
		pc = next
	}
}

// setR0Scalar installs a helper's scalar return value and clobbers the
// caller-saved argument registers, as vm.call does.
func (m *vm) setR0Scalar(v uint64) {
	m.regs[R0] = word{scalar: v}
	for reg := R1; reg <= R5; reg++ {
		m.regs[reg] = word{}
	}
}

// setR0Word is setR0Scalar for non-scalar returns (map-value pointers).
func (m *vm) setR0Word(w word) {
	m.regs[R0] = w
	for reg := R1; reg <= R5; reg++ {
		m.regs[reg] = word{}
	}
}

// cstore is the compiled backend's store primitive: identical to
// vm.store except that overlapping spill-slot invalidation clears bits
// in spillMask instead of deleting from the interpreter's spill map.
func (m *vm) cstore(pc int, base word, off int64, size int, v uint64) error {
	if base.region != nil && base.region.readonly {
		return m.fault(pc, "store to read-only %s", base.region.kind)
	}
	data, ok := fastSlice(base, off, size)
	if !ok {
		var err error
		data, err = m.slice(pc, base, off, size)
		if err != nil {
			return err
		}
	}
	if base.region != nil && base.region.kind == regionStack {
		start := base.off + off // in-bounds after slice: 0 <= start < StackSize
		if start < m.stackLo {
			m.stackLo = start
		}
		if m.spillMask != 0 {
			lo := uint64(start) >> 3
			hi := uint64(start+int64(size)-1) >> 3
			for s := lo; s <= hi && s < spillSlots; s++ {
				m.spillMask &^= 1 << s
			}
		}
	}
	switch size {
	case 1:
		data[0] = byte(v)
	case 2:
		binary.LittleEndian.PutUint16(data, uint16(v))
	case 4:
		binary.LittleEndian.PutUint32(data, uint32(v))
	default:
		binary.LittleEndian.PutUint64(data, v)
	}
	return nil
}

// compileProgram translates a verified instruction stream into its op
// slice. It never fails for verifier-accepted programs; statically
// malformed slots (a truncated wide load, the second slot of a wide
// pair reached as a jump target) compile to ops that reproduce the
// interpreter's runtime fault, keeping the two backends' observable
// behavior identical even for programs that bypass the verifier.
func compileProgram(insns []Instruction, maps map[int32]Map) (fast, single []cop, weights []uint16) {
	n := len(insns)
	single = make([]cop, n)
	wideSecond := make([]bool, n)
	for pc := 0; pc < n; pc++ {
		if insns[pc].IsWideLoad() && pc+1 < n && !wideSecond[pc] {
			wideSecond[pc+1] = true
		}
	}
	// isTarget marks slots some jump can land on. Fused pairs and
	// chained blocks hide their non-leader members from dispatch, which
	// is only sound when nothing can enter a block in the middle — and
	// eBPF has no indirect jumps, so the static target set is exact.
	isTarget := make([]bool, n)
	for pc, in := range insns {
		if wideSecond[pc] {
			continue
		}
		switch in.Class() {
		case ClassJMP, ClassJMP32:
			switch in.JmpOp() {
			case JmpCall, JmpExit:
			default:
				if t := pc + 1 + int(in.Off); t >= 0 && t < n {
					isTarget[t] = true
				}
			}
		}
	}
	for pc := range insns {
		if wideSecond[pc] {
			// Reached only as a stray jump target; the interpreter
			// decodes the slot as a malformed ClassLD.
			pc := pc
			single[pc] = func(m *vm) (int, error) {
				m.stats.Instructions++
				return 0, m.fault(pc, "invalid LD instruction")
			}
			continue
		}
		single[pc] = compileOne(insns, pc, maps)
	}

	// Fusion pass: replace recognized pairs with one op of dispatch
	// weight 2. The member slots keep their single ops (unreachable —
	// fusePair refuses jump targets — but they keep the table total and
	// serve the slow table).
	fast = make([]cop, n)
	copy(fast, single)
	weights = make([]uint16, n)
	for i := range weights {
		weights[i] = 1
	}
	fusedAt := make([]bool, n)
	consumed := make([]bool, n)
	for pc := 0; pc < n; pc++ {
		if wideSecond[pc] || consumed[pc] {
			continue
		}
		if op := fusePair(insns, pc, wideSecond, isTarget); op != nil {
			fast[pc] = op
			weights[pc] = 2
			fusedAt[pc] = true
			consumed[pc+1] = true
		}
	}

	// Chaining pass: collapse each maximal straight-line run into one
	// left-nested closure. The payoff is branch prediction: the
	// dispatch loop's single indirect call site changes target every
	// step and mispredicts chronically, while every call site inside a
	// chain has exactly one target for the program's lifetime.
	width := func(pc int) int {
		if fusedAt[pc] {
			return 2
		}
		if in := insns[pc]; in.Class() == ClassLD && in.IsWideLoad() && pc+1 < n {
			return 2
		}
		return 1
	}
	// isTerm reports whether the op at pc can leave the straight line:
	// branches, exits, and the fused mov+exit epilogue.
	isTerm := func(pc int) bool {
		in := insns[pc]
		if fusedAt[pc] {
			nx := insns[pc+1]
			return nx.Class() == ClassJMP && nx.JmpOp() == JmpExit
		}
		switch in.Class() {
		case ClassJMP32:
			return true
		case ClassJMP:
			return in.JmpOp() != JmpCall
		}
		return false
	}
	for pc := 0; pc < n; {
		if wideSecond[pc] || consumed[pc] {
			pc++
			continue
		}
		start := pc
		chain := fast[pc]
		cw := int(weights[pc])
		cur := pc
		for {
			if isTerm(cur) {
				cur += width(cur)
				break
			}
			succ := cur + width(cur)
			if succ >= n || isTarget[succ] || cw >= chainCap {
				cur = succ
				break
			}
			chain = combine(chain, fast[succ], succ)
			cw += int(weights[succ])
			cur = succ
		}
		if cur-start > width(start) {
			fast[start] = chain
			weights[start] = uint16(cw)
		}
		pc = cur
	}
	return fast, single, weights
}

// combine chains two consecutive straight-line ops into one closure.
// The mid-chain `n != yIdx` guard is defensive: a non-terminal member
// always returns its static successor or an error.
func combine(x, y cop, yIdx int) cop {
	return func(m *vm) (int, error) {
		n, err := x(m)
		if err != nil || n != yIdx {
			return n, err
		}
		return y(m)
	}
}

// fusePair recognizes the two hottest straight-line pairs and compiles
// them into a single op (one dispatch for two slots):
//
//   - mov64 dst, src ; add64 dst, imm — the pointer-materialization
//     idiom (mov rX, r10; add rX, -off) every map call leads with;
//   - call <env helper> ; mov64 dst, r0 — capturing a timestamp or
//     pid/tgid into a callee-saved register.
//
// Fusion preserves per-slot RunStats accounting and the interpreter's
// fault points: the mov half is applied before the add half can fault.
// It returns nil when the slots at pc do not match or the second slot
// is a jump target.
func fusePair(insns []Instruction, pc int, wideSecond, isTarget []bool) cop {
	if pc+1 >= len(insns) || wideSecond[pc+1] || isTarget[pc+1] {
		return nil
	}
	a, b := insns[pc], insns[pc+1]
	next := pc + 2
	if a.Class() == ClassALU64 && a.ALUOp() == ALUMov && !a.UsesImm() &&
		b.Class() == ClassALU64 && b.ALUOp() == ALUAdd && b.UsesImm() && b.Dst == a.Dst {
		dst, src := a.Dst, a.Src
		k := int64(b.Imm)
		faultPC := pc + 1
		return func(m *vm) (int, error) {
			m.stats.Instructions += 2
			d := m.regs[src]
			switch {
			case d.region == nil && d.m == nil:
				d.scalar += uint64(k)
			case d.region != nil:
				d.off += k
			default:
				m.regs[dst] = d // the mov executed before the add faulted
				return 0, m.fault(faultPC, "arithmetic on map handle")
			}
			m.regs[dst] = d
			return next, nil
		}
	}
	if a.Class() == ClassALU64 && a.ALUOp() == ALUMov && a.UsesImm() && a.Dst == R0 &&
		b.Class() == ClassJMP && b.JmpOp() == JmpExit {
		k := uint64(int64(a.Imm))
		return func(m *vm) (int, error) {
			m.stats.Instructions += 2
			m.regs[R0] = word{scalar: k}
			m.ret = k
			return exitOp, nil
		}
	}
	if a.Class() == ClassJMP && a.JmpOp() == JmpCall &&
		b.Class() == ClassALU64 && b.ALUOp() == ALUMov && !b.UsesImm() && b.Src == R0 {
		dst := b.Dst
		switch a.Imm {
		case HelperKtimeGetNS:
			return func(m *vm) (int, error) {
				m.stats.Instructions += 2
				m.stats.HelperCalls++
				m.setR0Scalar(m.env.KtimeGetNS())
				m.regs[dst] = m.regs[R0]
				return next, nil
			}
		case HelperGetCurrentPidTgid:
			return func(m *vm) (int, error) {
				m.stats.Instructions += 2
				m.stats.HelperCalls++
				m.setR0Scalar(m.env.CurrentPidTgid())
				m.regs[dst] = m.regs[R0]
				return next, nil
			}
		case HelperGetSMPProcID:
			return func(m *vm) (int, error) {
				m.stats.Instructions += 2
				m.stats.HelperCalls++
				m.setR0Scalar(uint64(m.env.SMPProcessorID()))
				m.regs[dst] = m.regs[R0]
				return next, nil
			}
		}
	}
	return nil
}

// compileOne builds the op for the instruction at pc.
func compileOne(insns []Instruction, pc int, maps map[int32]Map) cop {
	in := insns[pc]
	next := pc + 1
	switch in.Class() {
	case ClassALU64:
		return compileALU(in, pc, next, false)
	case ClassALU:
		return compileALU(in, pc, next, true)
	case ClassLD:
		return compileWideLoad(insns, pc, maps)
	case ClassLDX:
		return compileLoad(in, pc, next)
	case ClassSTX:
		if in.Op&0xe0 == ModeAtomic {
			return compileAtomic(in, pc, next)
		}
		return compileStoreReg(in, pc, next)
	case ClassST:
		return compileStoreImm(in, pc, next)
	case ClassJMP32:
		return compileBranch(in, pc, next, true)
	case ClassJMP:
		switch in.JmpOp() {
		case JmpExit:
			return func(m *vm) (int, error) {
				m.stats.Instructions++
				r0 := m.regs[R0]
				if r0.region != nil || r0.m != nil {
					return 0, m.fault(pc, "exit with non-scalar R0")
				}
				m.ret = r0.scalar
				return exitOp, nil
			}
		case JmpCall:
			return compileCall(in, pc, next)
		case JmpJA:
			tgt := pc + 1 + int(in.Off)
			return func(m *vm) (int, error) {
				m.stats.Instructions++
				return tgt, nil
			}
		default:
			return compileBranch(in, pc, next, false)
		}
	}
	op := in.Op
	return func(m *vm) (int, error) {
		m.stats.Instructions++
		return 0, m.fault(pc, "unsupported class %#x", op&0x07)
	}
}

// compileALU specializes the hot ALU forms (mov and add in both
// operand modes) and falls back to the interpreter's generic vm.alu
// for the rest — the decode, not the semantics, is what the
// compilation pass removes.
func compileALU(in Instruction, pc, next int, is32 bool) cop {
	dst, src := in.Dst, in.Src
	switch {
	case !is32 && in.ALUOp() == ALUMov && in.UsesImm():
		k := uint64(int64(in.Imm))
		return func(m *vm) (int, error) {
			m.stats.Instructions++
			m.regs[dst] = word{scalar: k}
			return next, nil
		}
	case !is32 && in.ALUOp() == ALUMov && !in.UsesImm():
		// 64-bit register mov copies scalars, pointers, and map
		// handles alike, exactly as every interpreter path does.
		return func(m *vm) (int, error) {
			m.stats.Instructions++
			m.regs[dst] = m.regs[src]
			return next, nil
		}
	case is32 && in.ALUOp() == ALUMov && in.UsesImm():
		k := uint64(uint32(in.Imm))
		return func(m *vm) (int, error) {
			m.stats.Instructions++
			d := m.regs[dst]
			if d.region != nil {
				return 0, m.fault(pc, "32-bit ALU on pointer")
			}
			if d.m != nil {
				return 0, m.fault(pc, "arithmetic on map handle")
			}
			m.regs[dst] = word{scalar: k}
			return next, nil
		}
	case !is32 && in.ALUOp() == ALUAdd && in.UsesImm():
		k := int64(in.Imm)
		return func(m *vm) (int, error) {
			m.stats.Instructions++
			d := &m.regs[dst]
			switch {
			case d.region == nil && d.m == nil:
				d.scalar += uint64(k)
			case d.region != nil:
				d.off += k
			default:
				return 0, m.fault(pc, "arithmetic on map handle")
			}
			return next, nil
		}
	case !is32 && in.ALUOp() == ALUAdd && !in.UsesImm():
		inCopy := in
		return func(m *vm) (int, error) {
			m.stats.Instructions++
			d, s := &m.regs[dst], m.regs[src]
			if d.region == nil && d.m == nil && s.region == nil && s.m == nil {
				d.scalar += s.scalar
				return next, nil
			}
			if err := m.alu(pc, inCopy, false); err != nil {
				return 0, err
			}
			return next, nil
		}
	}
	inCopy := in
	return func(m *vm) (int, error) {
		m.stats.Instructions++
		if err := m.alu(pc, inCopy, is32); err != nil {
			return 0, err
		}
		return next, nil
	}
}

// compileWideLoad handles LdImmDW pairs: 64-bit constants materialize
// as a captured scalar, map fds resolve to the Map handle at compile
// time. Both count two instruction slots, as the interpreter does.
func compileWideLoad(insns []Instruction, pc int, maps map[int32]Map) cop {
	in := insns[pc]
	if !in.IsWideLoad() || pc+1 >= len(insns) {
		return func(m *vm) (int, error) {
			m.stats.Instructions++
			return 0, m.fault(pc, "invalid LD instruction")
		}
	}
	dst, next := in.Dst, pc+2
	if in.Src == PseudoMapFD {
		mp, ok := maps[in.Imm]
		if !ok {
			fd := in.Imm
			return func(m *vm) (int, error) {
				m.stats.Instructions++
				return 0, m.fault(pc, "unknown map fd %d", fd)
			}
		}
		return func(m *vm) (int, error) {
			m.stats.Instructions += 2
			m.regs[dst] = word{m: mp}
			return next, nil
		}
	}
	v := uint64(uint32(in.Imm)) | uint64(uint32(insns[pc+1].Imm))<<32
	return func(m *vm) (int, error) {
		m.stats.Instructions += 2
		m.regs[dst] = word{scalar: v}
		return next, nil
	}
}

// compileLoad builds a ClassLDX op, specialized on the (static) access
// width so the decode is a single fixed-width read. An aligned 8-byte
// load from a live spill slot restores the spilled word (checked
// against spillMask); anything else reads raw bytes. Out-of-bounds or
// non-pointer bases fall back to vm.load for the interpreter's exact
// fault.
func compileLoad(in Instruction, pc, next int) cop {
	dst, src := in.Dst, in.Src
	off := int64(in.Off)
	size := in.Size()
	switch size {
	case 8:
		return func(m *vm) (int, error) {
			m.stats.Instructions++
			base := m.regs[src]
			if base.region != nil && base.region.kind == regionStack {
				if start := base.off + off; start&7 == 0 {
					if idx := uint64(start) >> 3; idx < spillSlots && m.spillMask&(1<<idx) != 0 {
						m.regs[dst] = m.spillW[idx]
						return next, nil
					}
				}
			}
			if data, ok := fastSlice(base, off, 8); ok {
				m.regs[dst] = word{scalar: binary.LittleEndian.Uint64(data)}
				return next, nil
			}
			v, err := m.load(pc, base, off, size)
			if err != nil {
				return 0, err
			}
			m.regs[dst] = word{scalar: v}
			return next, nil
		}
	case 4:
		return func(m *vm) (int, error) {
			m.stats.Instructions++
			base := m.regs[src]
			if data, ok := fastSlice(base, off, 4); ok {
				m.regs[dst] = word{scalar: uint64(binary.LittleEndian.Uint32(data))}
				return next, nil
			}
			v, err := m.load(pc, base, off, size)
			if err != nil {
				return 0, err
			}
			m.regs[dst] = word{scalar: v}
			return next, nil
		}
	case 2:
		return func(m *vm) (int, error) {
			m.stats.Instructions++
			base := m.regs[src]
			if data, ok := fastSlice(base, off, 2); ok {
				m.regs[dst] = word{scalar: uint64(binary.LittleEndian.Uint16(data))}
				return next, nil
			}
			v, err := m.load(pc, base, off, size)
			if err != nil {
				return 0, err
			}
			m.regs[dst] = word{scalar: v}
			return next, nil
		}
	default:
		return func(m *vm) (int, error) {
			m.stats.Instructions++
			base := m.regs[src]
			if data, ok := fastSlice(base, off, 1); ok {
				m.regs[dst] = word{scalar: uint64(data[0])}
				return next, nil
			}
			v, err := m.load(pc, base, off, size)
			if err != nil {
				return 0, err
			}
			m.regs[dst] = word{scalar: v}
			return next, nil
		}
	}
}

// compileStoreReg builds a non-atomic ClassSTX op. Whether the source
// register holds a scalar or a pointer is a runtime property, so the
// op decides between a raw store and a spill per execution.
func compileStoreReg(in Instruction, pc, next int) cop {
	dst, src := in.Dst, in.Src
	off := int64(in.Off)
	size := in.Size()
	return func(m *vm) (int, error) {
		m.stats.Instructions++
		s := m.regs[src]
		if s.region == nil && s.m == nil {
			base := m.regs[dst]
			// Inline the hot form — an in-bounds 8-byte scalar store to
			// writable memory — and leave every other shape to cstore.
			if size == 8 && base.region != nil && !base.region.readonly {
				if data, ok := fastSlice(base, off, 8); ok {
					if base.region.kind == regionStack {
						start := base.off + off
						if start < m.stackLo {
							m.stackLo = start
						}
						if m.spillMask != 0 {
							lo := uint64(start) >> 3
							hi := uint64(start+7) >> 3
							for sl := lo; sl <= hi && sl < spillSlots; sl++ {
								m.spillMask &^= 1 << sl
							}
						}
					}
					binary.LittleEndian.PutUint64(data, s.scalar)
					return next, nil
				}
			}
			if err := m.cstore(pc, base, off, size, s.scalar); err != nil {
				return 0, err
			}
			return next, nil
		}
		// Pointer/handle spill: verifier-restricted to aligned 8-byte
		// stack slots; the raw bytes hold the word's region offset.
		base := m.regs[dst]
		if base.region == nil || base.region.kind != regionStack || size != 8 {
			return 0, m.fault(pc, "pointer can only be spilled to an aligned 8-byte stack slot")
		}
		start := base.off + off
		if start%8 != 0 {
			return 0, m.fault(pc, "pointer spill must be 8-byte aligned")
		}
		if err := m.cstore(pc, base, off, 8, uint64(s.off)); err != nil {
			return 0, err
		}
		if s.region != nil {
			idx := uint64(start) >> 3
			m.spillW[idx] = s
			m.spillMask |= 1 << idx
		}
		return next, nil
	}
}

// compileStoreImm builds a ClassST op.
func compileStoreImm(in Instruction, pc, next int) cop {
	dst := in.Dst
	off := int64(in.Off)
	size := in.Size()
	v := uint64(int64(in.Imm))
	return func(m *vm) (int, error) {
		m.stats.Instructions++
		if err := m.cstore(pc, m.regs[dst], off, size, v); err != nil {
			return 0, err
		}
		return next, nil
	}
}

// compileAtomic builds a BPF_ATOMIC STX op (AtomicAdd). Statically
// invalid forms compile to ops reproducing the interpreter's faults.
func compileAtomic(in Instruction, pc, next int) cop {
	if in.Imm != AtomicAdd {
		imm := in.Imm
		return func(m *vm) (int, error) {
			m.stats.Instructions++
			s := m.regs[in.Src]
			if s.region != nil || s.m != nil {
				return 0, m.fault(pc, "atomic add of a pointer")
			}
			return 0, m.fault(pc, "unsupported atomic op %#x", imm)
		}
	}
	dst, src := in.Dst, in.Src
	off := int64(in.Off)
	size := in.Size()
	if size != 4 && size != 8 {
		return func(m *vm) (int, error) {
			m.stats.Instructions++
			s := m.regs[src]
			if s.region != nil || s.m != nil {
				return 0, m.fault(pc, "atomic add of a pointer")
			}
			return 0, m.fault(pc, "atomic add requires 4- or 8-byte width")
		}
	}
	return func(m *vm) (int, error) {
		m.stats.Instructions++
		s := m.regs[src]
		if s.region != nil || s.m != nil {
			return 0, m.fault(pc, "atomic add of a pointer")
		}
		base := m.regs[dst]
		if base.region != nil && base.region.readonly {
			return 0, m.fault(pc, "atomic on read-only %s", base.region.kind)
		}
		cur, err := m.load(pc, base, off, size)
		if err != nil {
			return 0, err
		}
		if err := m.cstore(pc, base, off, size, cur+s.scalar); err != nil {
			return 0, err
		}
		return next, nil
	}
}

// compileBranch builds a conditional jump with both successor indices
// resolved. The all-scalar immediate compares — the null checks and
// syscall filters every probe leads with — run fully specialized; the
// pointer-comparison and register-operand forms reuse vm.branch.
func compileBranch(in Instruction, pc, next int, is32 bool) cop {
	tgt := pc + 1 + int(in.Off)
	if !is32 && in.UsesImm() {
		dst := in.Dst
		k := uint64(int64(in.Imm))
		switch in.JmpOp() {
		case JmpJEQ:
			return func(m *vm) (int, error) {
				m.stats.Instructions++
				d := m.regs[dst]
				if d.region == nil && d.m == nil {
					if d.scalar == k {
						return tgt, nil
					}
					return next, nil
				}
				return m.branchSlow(pc, in, tgt, next)
			}
		case JmpJNE:
			return func(m *vm) (int, error) {
				m.stats.Instructions++
				d := m.regs[dst]
				if d.region == nil && d.m == nil {
					if d.scalar != k {
						return tgt, nil
					}
					return next, nil
				}
				return m.branchSlow(pc, in, tgt, next)
			}
		}
	}
	inCopy := in
	return func(m *vm) (int, error) {
		m.stats.Instructions++
		return m.branchSlow(pc, inCopy, tgt, next)
	}
}

// branchSlow evaluates a branch through the interpreter's generic
// vm.branch and maps taken/not-taken onto the compiled indices.
func (m *vm) branchSlow(pc int, in Instruction, tgt, next int) (int, error) {
	taken, err := m.branch(pc, in)
	if err != nil {
		return 0, err
	}
	if taken {
		return tgt, nil
	}
	return next, nil
}

// compileCall specializes the three ambient-state helpers (no
// arguments beyond the env, scalar return); map and ringbuf helpers
// keep the interpreter's vm.call, which routes map-value regions
// through the pooled arena when run state is pooled.
func compileCall(in Instruction, pc, next int) cop {
	switch in.Imm {
	case HelperKtimeGetNS:
		return func(m *vm) (int, error) {
			m.stats.Instructions++
			m.stats.HelperCalls++
			m.setR0Scalar(m.env.KtimeGetNS())
			return next, nil
		}
	case HelperGetCurrentPidTgid:
		return func(m *vm) (int, error) {
			m.stats.Instructions++
			m.stats.HelperCalls++
			m.setR0Scalar(m.env.CurrentPidTgid())
			return next, nil
		}
	case HelperGetSMPProcID:
		return func(m *vm) (int, error) {
			m.stats.Instructions++
			m.stats.HelperCalls++
			m.setR0Scalar(uint64(m.env.SMPProcessorID()))
			return next, nil
		}
	case HelperMapLookupElem:
		return func(m *vm) (int, error) {
			m.stats.Instructions++
			m.stats.HelperCalls++
			m.stats.MapOps++
			mp := m.regs[R1].m
			if mp == nil {
				return 0, m.fault(pc, "map_lookup_elem: R1 is not a map")
			}
			key, ok := fastSlice(m.regs[R2], 0, mp.KeySize())
			if !ok {
				var err error
				key, err = m.slice(pc, m.regs[R2], 0, mp.KeySize())
				if err != nil {
					return 0, err
				}
			}
			v, ok := mp.Lookup(key)
			if !ok {
				m.setR0Scalar(0)
				return next, nil
			}
			m.setR0Word(word{region: m.mapValRegion(v)})
			return next, nil
		}
	case HelperMapUpdateElem:
		return func(m *vm) (int, error) {
			m.stats.Instructions++
			m.stats.HelperCalls++
			m.stats.MapOps++
			mp := m.regs[R1].m
			if mp == nil {
				return 0, m.fault(pc, "map_update_elem: R1 is not a map")
			}
			// Devirtualize the dominant map type so the size reads and
			// the update are direct calls.
			var ks, vs int
			hm, isHash := mp.(*HashMap)
			if isHash {
				ks, vs = hm.keySize, hm.valueSize
			} else {
				ks, vs = mp.KeySize(), mp.ValueSize()
			}
			key, ok := fastSlice(m.regs[R2], 0, ks)
			if !ok {
				var err error
				key, err = m.slice(pc, m.regs[R2], 0, ks)
				if err != nil {
					return 0, err
				}
			}
			val, ok := fastSlice(m.regs[R3], 0, vs)
			if !ok {
				var err error
				val, err = m.slice(pc, m.regs[R3], 0, vs)
				if err != nil {
					return 0, err
				}
			}
			flags := m.regs[R4]
			if !flags.isScalar() {
				return 0, m.fault(pc, "map_update_elem: flags not scalar")
			}
			var err error
			if isHash {
				err = hm.Update(key, val, int(flags.scalar))
			} else {
				err = mp.Update(key, val, int(flags.scalar))
			}
			if err != nil {
				m.setR0Scalar(^uint64(0)) // -EEXIST and friends collapse to -1
				return next, nil
			}
			m.setR0Scalar(0)
			return next, nil
		}
	case HelperMapDeleteElem:
		return func(m *vm) (int, error) {
			m.stats.Instructions++
			m.stats.HelperCalls++
			m.stats.MapOps++
			mp := m.regs[R1].m
			if mp == nil {
				return 0, m.fault(pc, "map_delete_elem: R1 is not a map")
			}
			key, ok := fastSlice(m.regs[R2], 0, mp.KeySize())
			if !ok {
				var err error
				key, err = m.slice(pc, m.regs[R2], 0, mp.KeySize())
				if err != nil {
					return 0, err
				}
			}
			if err := mp.Delete(key); err != nil {
				m.setR0Scalar(^uint64(0))
				return next, nil
			}
			m.setR0Scalar(0)
			return next, nil
		}
	case HelperCMSUpdate:
		return func(m *vm) (int, error) {
			m.stats.Instructions++
			m.stats.HelperCalls++
			m.stats.MapOps++
			cs, ok := m.regs[R1].m.(*CMS)
			if !ok {
				return 0, m.fault(pc, "cms_update: R1 is not a cms")
			}
			key, ok := fastSlice(m.regs[R2], 0, cs.keySize)
			if !ok {
				var err error
				key, err = m.slice(pc, m.regs[R2], 0, cs.keySize)
				if err != nil {
					return 0, err
				}
			}
			inc := m.regs[R3]
			if !inc.isScalar() {
				return 0, m.fault(pc, "cms_update: increment not scalar")
			}
			cs.Add(key, inc.scalar)
			m.setR0Scalar(0)
			return next, nil
		}
	case HelperCMSEstimate:
		return func(m *vm) (int, error) {
			m.stats.Instructions++
			m.stats.HelperCalls++
			m.stats.MapOps++
			cs, ok := m.regs[R1].m.(*CMS)
			if !ok {
				return 0, m.fault(pc, "cms_estimate: R1 is not a cms")
			}
			key, ok := fastSlice(m.regs[R2], 0, cs.keySize)
			if !ok {
				var err error
				key, err = m.slice(pc, m.regs[R2], 0, cs.keySize)
				if err != nil {
					return 0, err
				}
			}
			m.setR0Scalar(cs.Estimate(key))
			return next, nil
		}
	case HelperHashPipeInsert:
		return func(m *vm) (int, error) {
			m.stats.Instructions++
			m.stats.HelperCalls++
			m.stats.MapOps++
			hp, ok := m.regs[R1].m.(*HashPipe)
			if !ok {
				return 0, m.fault(pc, "hashpipe_insert: R1 is not a hashpipe")
			}
			key, ok := fastSlice(m.regs[R2], 0, hp.keySize)
			if !ok {
				var err error
				key, err = m.slice(pc, m.regs[R2], 0, hp.keySize)
				if err != nil {
					return 0, err
				}
			}
			inc := m.regs[R3]
			if !inc.isScalar() {
				return 0, m.fault(pc, "hashpipe_insert: increment not scalar")
			}
			m.setR0Scalar(hp.Insert(key, inc.scalar))
			return next, nil
		}
	}
	id := in.Imm
	return func(m *vm) (int, error) {
		m.stats.Instructions++
		if err := m.call(pc, id); err != nil {
			return 0, err
		}
		return next, nil
	}
}
