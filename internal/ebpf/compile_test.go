package ebpf

import (
	"testing"
)

func TestBackendString(t *testing.T) {
	cases := []struct {
		b    Backend
		want string
	}{
		{BackendAuto, "auto"},
		{BackendInterpreter, "interpreter"},
		{BackendCompiled, "compiled"},
		{Backend(9), "backend(9)"},
	}
	for _, c := range cases {
		if got := c.b.String(); got != c.want {
			t.Errorf("Backend(%d).String() = %q, want %q", c.b, got, c.want)
		}
	}
}

func TestParseBackend(t *testing.T) {
	for _, s := range []string{"auto", "interpreter", "compiled", ""} {
		b, err := ParseBackend(s)
		if err != nil {
			t.Fatalf("ParseBackend(%q): %v", s, err)
		}
		if s != "" && b.String() != s {
			t.Errorf("ParseBackend(%q) = %v, not a round-trip", s, b)
		}
	}
	if _, err := ParseBackend("jit"); err == nil {
		t.Fatal("ParseBackend accepted an unknown backend name")
	}
}

func TestSetDefaultBackendRestore(t *testing.T) {
	prev := SetDefaultBackend(BackendInterpreter)
	defer SetDefaultBackend(prev)
	if DefaultBackend() != BackendInterpreter {
		t.Fatal("SetDefaultBackend did not take effect")
	}
	p := MustLoad(ProgramSpec{Name: "d", Insns: []Instruction{Mov64Imm(R0, 1), Exit()}, CtxSize: 0})
	if p.Backend() != BackendInterpreter {
		t.Fatalf("BackendAuto resolved to %v, want interpreter", p.Backend())
	}
	if SetDefaultBackend(BackendAuto); DefaultBackend() != BackendCompiled {
		t.Fatal("SetDefaultBackend(BackendAuto) did not restore the built-in default")
	}
}

// runBothBackends loads insns once per backend (fresh maps each) and
// requires identical return values and stats. It returns the shared
// result.
func runBothBackends(t *testing.T, insns []Instruction, mkMaps func() map[int32]Map, ctxSize int, ctx []byte) (uint64, RunStats) {
	t.Helper()
	env := &FixedEnv{TimeNS: 5, PidTgid: 99<<32 | 3, CPU: 1}
	var rets [2]uint64
	var stats [2]RunStats
	for i, backend := range []Backend{BackendInterpreter, BackendCompiled} {
		var maps map[int32]Map
		if mkMaps != nil {
			maps = mkMaps()
		}
		p, err := Load(ProgramSpec{Name: "parity", Insns: insns, Maps: maps, CtxSize: ctxSize, Backend: backend})
		if err != nil {
			t.Fatalf("load (%v): %v", backend, err)
		}
		rets[i], stats[i], err = p.Run(ctx, env)
		if err != nil {
			t.Fatalf("run (%v): %v", backend, err)
		}
	}
	if rets[0] != rets[1] {
		t.Fatalf("return: interpreter %#x, compiled %#x\n%s", rets[0], rets[1], Disassemble(insns))
	}
	if stats[0] != stats[1] {
		t.Fatalf("stats: interpreter %+v, compiled %+v\n%s", stats[0], stats[1], Disassemble(insns))
	}
	return rets[0], stats[0]
}

// TestCompiledFusionParity pins the pair-fusion peepholes (lea idiom,
// call+mov, mov+exit) to interpreter-identical results and stats.
func TestCompiledFusionParity(t *testing.T) {
	// mov64 r0, imm + exit — the fused epilogue.
	ret, st := runBothBackends(t, []Instruction{Mov64Imm(R0, 42), Exit()}, nil, 0, nil)
	if ret != 42 || st.Instructions != 2 {
		t.Fatalf("fused mov+exit: ret %d stats %+v", ret, st)
	}

	// call env-helper + mov64 dst, r0 — the fused result capture.
	ret, st = runBothBackends(t, []Instruction{
		Call(HelperKtimeGetNS),
		Mov64Reg(R7, R0),
		Mov64Reg(R0, R7),
		Exit(),
	}, nil, 0, nil)
	if ret != 5 || st.HelperCalls != 1 {
		t.Fatalf("fused call+mov: ret %d stats %+v", ret, st)
	}

	// mov64 reg + add64 imm — the lea idiom feeding a map key pointer.
	ret, _ = runBothBackends(t, []Instruction{
		StoreImm(R10, -8, 7, SizeDW),
		StoreImm(R10, -16, 123, SizeDW),
		LoadMapFD(R1, 1)[0], LoadMapFD(R1, 1)[1],
		Mov64Reg(R2, R10), Add64Imm(R2, -8),
		Mov64Reg(R3, R10), Add64Imm(R3, -16),
		Mov64Imm(R4, 0),
		Call(HelperMapUpdateElem),
		LoadMapFD(R1, 1)[0], LoadMapFD(R1, 1)[1],
		Mov64Reg(R2, R10), Add64Imm(R2, -8),
		Call(HelperMapLookupElem),
		JmpImm(JmpJEQ, R0, 0, 1),
		LoadMem(R0, R0, 0, SizeDW),
		Exit(),
	}, diffMaps, 0, nil)
	if ret != 123 {
		t.Fatalf("fused lea + map round-trip: ret %d, want 123", ret)
	}
}

// TestCompiledJumpIntoPairParity covers the fusion guard: when a branch
// targets what would be the second half of a fused pair, the pair must
// stay unfused and the jump must land exactly there.
func TestCompiledJumpIntoPairParity(t *testing.T) {
	ret, st := runBothBackends(t, []Instruction{
		Mov64Imm(R0, 5),
		Mov64Imm(R7, 0),
		JmpImm(JmpJEQ, R7, 0, 1), // taken: lands on the Exit below
		Mov64Imm(R0, 1),          // would-be first half of a mov+exit pair
		Exit(),                   // branch target: must stay unfused
	}, nil, 0, nil)
	if ret != 5 {
		t.Fatalf("jump into pair: ret %d, want 5 (branch must skip the mov)", ret)
	}
	if st.Instructions != 4 {
		t.Fatalf("jump into pair: %d instructions, want 4", st.Instructions)
	}
}

// TestCompiledSpillParity runs the pointer spill/restore idiom on both
// backends.
func TestCompiledSpillParity(t *testing.T) {
	ctx := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	ret, _ := runBothBackends(t, []Instruction{
		Mov64Reg(R6, R1),
		StoreMem(R10, -8, R6, SizeDW),
		LoadMem(R2, R10, -8, SizeDW),
		LoadMem(R0, R2, 0, SizeDW),
		Exit(),
	}, nil, len(ctx), ctx)
	if want := uint64(0x0807060504030201); ret != want {
		t.Fatalf("spill/restore: ret %#x, want %#x", ret, want)
	}
}

// TestCompiledAtomicParity runs atomic adds (both widths) on both
// backends.
func TestCompiledAtomicParity(t *testing.T) {
	ret, _ := runBothBackends(t, []Instruction{
		StoreImm(R10, -8, 10, SizeDW),
		Mov64Imm(R3, 32),
		AtomicAdd64(R10, -8, R3),
		Mov64Imm(R4, 100),
		AtomicAdd32(R10, -4, R4),
		LoadMem(R0, R10, -8, SizeDW),
		Exit(),
	}, nil, 0, nil)
	want := uint64(10+32) | uint64(100)<<32
	if ret != want {
		t.Fatalf("atomic adds: ret %#x, want %#x", ret, want)
	}
}

// TestCompiledRunReusesState verifies the per-Program run-state cache:
// after a run the vm parks on the Program, and the next run picks the
// same instance back up instead of allocating.
func TestCompiledRunReusesState(t *testing.T) {
	p := MustLoad(ProgramSpec{Name: "reuse", Insns: []Instruction{
		StoreImm(R10, -8, 7, SizeDW),
		LoadMem(R0, R10, -8, SizeDW),
		Exit(),
	}, CtxSize: 0, Backend: BackendCompiled})
	if _, _, err := p.Run(nil, &FixedEnv{}); err != nil {
		t.Fatal(err)
	}
	parked := p.rsCache
	if parked == nil {
		t.Fatal("no run state parked on the Program after a run")
	}
	if _, _, err := p.Run(nil, &FixedEnv{}); err != nil {
		t.Fatal(err)
	}
	if p.rsCache != parked {
		t.Fatal("second run did not recycle the parked state")
	}
}

// TestCompiledRunZeroAllocs pins the compiled hot path — including a
// hash-map update and lookup, so map scratch buffers are exercised — at
// zero allocations per run once the Program's run state is warm.
func TestCompiledRunZeroAllocs(t *testing.T) {
	maps := map[int32]Map{1: NewHashMap("h", 8, 8, 4)}
	p := MustLoad(ProgramSpec{Name: "hot", Insns: []Instruction{
		Call(HelperKtimeGetNS),
		StoreMem(R10, -16, R0, SizeDW),
		StoreImm(R10, -8, 7, SizeDW),
		LoadMapFD(R1, 1)[0], LoadMapFD(R1, 1)[1],
		Mov64Reg(R2, R10), Add64Imm(R2, -8),
		Mov64Reg(R3, R10), Add64Imm(R3, -16),
		Mov64Imm(R4, 0),
		Call(HelperMapUpdateElem),
		LoadMapFD(R1, 1)[0], LoadMapFD(R1, 1)[1],
		Mov64Reg(R2, R10), Add64Imm(R2, -8),
		Call(HelperMapLookupElem),
		JmpImm(JmpJEQ, R0, 0, 1),
		LoadMem(R0, R0, 0, SizeDW),
		Exit(),
	}, Maps: maps, CtxSize: 0, Backend: BackendCompiled})
	env := &FixedEnv{TimeNS: 77}
	if _, _, err := p.Run(nil, env); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if _, _, err := p.Run(nil, env); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("compiled Run allocated %v allocs/op, want 0", allocs)
	}
}
