package ebpf

import (
	"bytes"
	"encoding/binary"
	"testing"
)

func TestRingBufAccounting(t *testing.T) {
	rb := NewRingBuf("rb", 64)
	if rb.Capacity() != 64 {
		t.Fatalf("Capacity = %d", rb.Capacity())
	}
	if rb.AvailData() != 0 || rb.ProducerPos() != 0 || rb.ConsumerPos() != 0 {
		t.Fatal("fresh ring should be empty at position 0")
	}
	// 5 payload bytes cost 8 header + 8 padded payload = 16.
	rb.Output([]byte("hello"))
	if rb.AvailData() != 16 {
		t.Fatalf("AvailData = %d, want 16 (header + padded payload)", rb.AvailData())
	}
	if rb.ProducerPos() != 16 || rb.ConsumerPos() != 0 {
		t.Fatalf("prod/cons = %d/%d", rb.ProducerPos(), rb.ConsumerPos())
	}
	recs := rb.Drain()
	if len(recs) != 1 || string(recs[0]) != "hello" {
		t.Fatalf("drain = %q", recs)
	}
	// Positions are monotonic: drain advances cons, never rewinds prod.
	if rb.AvailData() != 0 || rb.ConsumerPos() != 16 || rb.ProducerPos() != 16 {
		t.Fatalf("after drain prod/cons = %d/%d", rb.ProducerPos(), rb.ConsumerPos())
	}
	if rb.Query(RingbufRingSize) != 64 || rb.Query(RingbufProdPos) != 16 ||
		rb.Query(RingbufConsPos) != 16 || rb.Query(RingbufAvailData) != 0 {
		t.Fatal("Query disagrees with accessors")
	}
	if rb.Query(99) != 0 {
		t.Fatal("unknown query flag should return 0")
	}
}

func TestRingBufWraparound(t *testing.T) {
	// A 32-byte ring fits two 16-byte records; steady output/drain cycles
	// force every record boundary to sweep across the wrap point.
	rb := NewRingBuf("rb", 32)
	seq := byte(0)
	for i := 0; i < 100; i++ {
		var rec [5]byte
		for j := range rec {
			seq++
			rec[j] = seq
		}
		if !rb.Output(rec[:]) {
			t.Fatalf("iteration %d: output dropped with an empty ring", i)
		}
		got := rb.Drain()
		if len(got) != 1 || !bytes.Equal(got[0], rec[:]) {
			t.Fatalf("iteration %d: drained %v, want %v", i, got, rec)
		}
	}
	if rb.Written() != 100 || rb.Dropped() != 0 {
		t.Fatalf("written=%d dropped=%d", rb.Written(), rb.Dropped())
	}
	if rb.ProducerPos() != 1600 {
		t.Fatalf("prod = %d, want 100*16", rb.ProducerPos())
	}
}

func TestRingBufRejectsOversizedRecord(t *testing.T) {
	rb := NewRingBuf("rb", 32)
	// 32 payload bytes cost 40 > capacity: can never fit, always dropped.
	if rb.Output(make([]byte, 32)) {
		t.Fatal("record larger than the ring should drop")
	}
	if rb.Dropped() != 1 || rb.AvailData() != 0 {
		t.Fatalf("dropped=%d avail=%d", rb.Dropped(), rb.AvailData())
	}
}

func TestRingBufInterleavedDrain(t *testing.T) {
	rb := NewRingBuf("rb", 128)
	for i := 0; i < 4; i++ {
		rec := make([]byte, 8)
		binary.LittleEndian.PutUint64(rec, uint64(i))
		rb.Output(rec)
	}
	recs := rb.Drain()
	if len(recs) != 4 {
		t.Fatalf("drained %d records", len(recs))
	}
	for i, r := range recs {
		if binary.LittleEndian.Uint64(r) != uint64(i) {
			t.Fatalf("record %d out of order: %v", i, r)
		}
	}
	if rb.Drain() != nil {
		t.Fatal("second drain should be empty")
	}
}

func TestVMRingbufQuery(t *testing.T) {
	rb := NewRingBuf("rb", 4096)
	rb.Output(make([]byte, 24)) // 8 header + 24 payload = 32 avail
	a := NewAssembler()
	a.EmitWide(LoadMapFD(R1, 1))
	a.Emit(
		Mov64Imm(R2, RingbufAvailData),
		Call(HelperRingbufQuery),
		Exit(),
	)
	if got := runProg(t, a.MustAssemble(), map[int32]Map{1: rb}, nil); got != 32 {
		t.Fatalf("ringbuf_query(AVAIL_DATA) = %d, want 32", got)
	}
	a = NewAssembler()
	a.EmitWide(LoadMapFD(R1, 1))
	a.Emit(
		Mov64Imm(R2, RingbufRingSize),
		Call(HelperRingbufQuery),
		Exit(),
	)
	if got := runProg(t, a.MustAssemble(), map[int32]Map{1: rb}, nil); got != 4096 {
		t.Fatalf("ringbuf_query(RING_SIZE) = %d, want 4096", got)
	}
}

// BenchmarkRingbufThroughput measures the producer/consumer path the
// streaming observers ride: fixed 32-byte records committed through
// Output with a periodic Drain keeping the consumer ahead.
func BenchmarkRingbufThroughput(b *testing.B) {
	const recSize = 32
	rb := NewRingBuf("bench", 1<<16)
	rec := make([]byte, recSize)
	b.SetBytes(recSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		binary.LittleEndian.PutUint64(rec, uint64(i))
		if !rb.Output(rec) {
			b.Fatal("drop with a draining consumer")
		}
		// Drain in batches, like the StreamObserver's periodic poll.
		if rb.AvailData() > uint64(rb.Capacity())/2 {
			rb.Drain()
		}
	}
	b.StopTimer()
	if rb.Dropped() != 0 {
		b.Fatalf("dropped %d records", rb.Dropped())
	}
}
