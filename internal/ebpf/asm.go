package ebpf

import "fmt"

// Instruction constructors. Naming follows bpf assembler conventions:
// the 64 suffix means ALU64 class; Reg/Imm selects the source operand.

// Mov64Imm: dst = imm (sign-extended to 64 bits).
func Mov64Imm(dst Register, imm int32) Instruction {
	return Instruction{Op: ClassALU64 | ALUMov | SrcK, Dst: dst, Imm: imm}
}

// Mov64Reg: dst = src.
func Mov64Reg(dst, src Register) Instruction {
	return Instruction{Op: ClassALU64 | ALUMov | SrcX, Dst: dst, Src: src}
}

// Add64Imm: dst += imm.
func Add64Imm(dst Register, imm int32) Instruction {
	return Instruction{Op: ClassALU64 | ALUAdd | SrcK, Dst: dst, Imm: imm}
}

// Add64Reg: dst += src.
func Add64Reg(dst, src Register) Instruction {
	return Instruction{Op: ClassALU64 | ALUAdd | SrcX, Dst: dst, Src: src}
}

// Sub64Imm: dst -= imm.
func Sub64Imm(dst Register, imm int32) Instruction {
	return Instruction{Op: ClassALU64 | ALUSub | SrcK, Dst: dst, Imm: imm}
}

// Sub64Reg: dst -= src.
func Sub64Reg(dst, src Register) Instruction {
	return Instruction{Op: ClassALU64 | ALUSub | SrcX, Dst: dst, Src: src}
}

// Mul64Imm: dst *= imm.
func Mul64Imm(dst Register, imm int32) Instruction {
	return Instruction{Op: ClassALU64 | ALUMul | SrcK, Dst: dst, Imm: imm}
}

// Mul64Reg: dst *= src.
func Mul64Reg(dst, src Register) Instruction {
	return Instruction{Op: ClassALU64 | ALUMul | SrcX, Dst: dst, Src: src}
}

// Div64Imm: dst /= imm (unsigned).
func Div64Imm(dst Register, imm int32) Instruction {
	return Instruction{Op: ClassALU64 | ALUDiv | SrcK, Dst: dst, Imm: imm}
}

// Div64Reg: dst /= src (unsigned; src==0 yields dst=0, as on Linux).
func Div64Reg(dst, src Register) Instruction {
	return Instruction{Op: ClassALU64 | ALUDiv | SrcX, Dst: dst, Src: src}
}

// Mod64Imm: dst %= imm (unsigned).
func Mod64Imm(dst Register, imm int32) Instruction {
	return Instruction{Op: ClassALU64 | ALUMod | SrcK, Dst: dst, Imm: imm}
}

// And64Imm: dst &= imm.
func And64Imm(dst Register, imm int32) Instruction {
	return Instruction{Op: ClassALU64 | ALUAnd | SrcK, Dst: dst, Imm: imm}
}

// Or64Imm: dst |= imm.
func Or64Imm(dst Register, imm int32) Instruction {
	return Instruction{Op: ClassALU64 | ALUOr | SrcK, Dst: dst, Imm: imm}
}

// Xor64Reg: dst ^= src.
func Xor64Reg(dst, src Register) Instruction {
	return Instruction{Op: ClassALU64 | ALUXor | SrcX, Dst: dst, Src: src}
}

// Lsh64Imm: dst <<= imm.
func Lsh64Imm(dst Register, imm int32) Instruction {
	return Instruction{Op: ClassALU64 | ALULsh | SrcK, Dst: dst, Imm: imm}
}

// Rsh64Imm: dst >>= imm (logical).
func Rsh64Imm(dst Register, imm int32) Instruction {
	return Instruction{Op: ClassALU64 | ALURsh | SrcK, Dst: dst, Imm: imm}
}

// Arsh64Imm: dst >>= imm (arithmetic).
func Arsh64Imm(dst Register, imm int32) Instruction {
	return Instruction{Op: ClassALU64 | ALUArsh | SrcK, Dst: dst, Imm: imm}
}

// Neg64: dst = -dst.
func Neg64(dst Register) Instruction {
	return Instruction{Op: ClassALU64 | ALUNeg, Dst: dst}
}

// LoadImm64 materializes a full 64-bit constant; expands to two slots.
func LoadImm64(dst Register, v uint64) [2]Instruction {
	return [2]Instruction{
		{Op: OpLdImmDW, Dst: dst, Imm: int32(uint32(v))},
		{Imm: int32(uint32(v >> 32))},
	}
}

// LoadMapFD materializes a map reference; expands to two slots with the
// pseudo source marker, as the kernel loader expects.
func LoadMapFD(dst Register, fd int32) [2]Instruction {
	return [2]Instruction{
		{Op: OpLdImmDW, Dst: dst, Src: PseudoMapFD, Imm: fd},
		{},
	}
}

// LoadMem: dst = *(size*)(src + off).
func LoadMem(dst, src Register, off int16, size uint8) Instruction {
	return Instruction{Op: ClassLDX | ModeMEM | size, Dst: dst, Src: src, Off: off}
}

// StoreMem: *(size*)(dst + off) = src.
func StoreMem(dst Register, off int16, src Register, size uint8) Instruction {
	return Instruction{Op: ClassSTX | ModeMEM | size, Dst: dst, Src: src, Off: off}
}

// StoreImm: *(size*)(dst + off) = imm.
func StoreImm(dst Register, off int16, imm int32, size uint8) Instruction {
	return Instruction{Op: ClassST | ModeMEM | size, Dst: dst, Off: off, Imm: imm}
}

// Ja: unconditional relative jump.
func Ja(off int16) Instruction {
	return Instruction{Op: ClassJMP | JmpJA, Off: off}
}

// JmpImm: conditional jump comparing dst against imm.
func JmpImm(op uint8, dst Register, imm int32, off int16) Instruction {
	return Instruction{Op: ClassJMP | op | SrcK, Dst: dst, Imm: imm, Off: off}
}

// JmpReg: conditional jump comparing dst against src.
func JmpReg(op uint8, dst, src Register, off int16) Instruction {
	return Instruction{Op: ClassJMP | op | SrcX, Dst: dst, Src: src, Off: off}
}

// Call invokes helper id.
func Call(id int32) Instruction {
	return Instruction{Op: ClassJMP | JmpCall, Imm: id}
}

// Exit returns from the program with R0 as the result.
func Exit() Instruction {
	return Instruction{Op: ClassJMP | JmpExit}
}

// Assembler builds instruction streams with symbolic labels so probe
// programs can be written without hand-computing jump offsets.
//
//	a := NewAssembler()
//	a.Emit(Mov64Imm(R0, 0))
//	a.JumpImm(JmpJEQ, R1, 0, "miss")
//	...
//	a.Label("miss")
//	a.Emit(Exit())
//	prog, err := a.Assemble()
type Assembler struct {
	insns  []Instruction
	labels map[string]int
	fixups []fixup
	err    error
}

type fixup struct {
	pc    int
	label string
}

// NewAssembler returns an empty assembler.
func NewAssembler() *Assembler {
	return &Assembler{labels: make(map[string]int)}
}

// Emit appends instructions verbatim.
func (a *Assembler) Emit(ins ...Instruction) *Assembler {
	a.insns = append(a.insns, ins...)
	return a
}

// EmitWide appends a two-slot pair from LoadImm64/LoadMapFD.
func (a *Assembler) EmitWide(pair [2]Instruction) *Assembler {
	a.insns = append(a.insns, pair[0], pair[1])
	return a
}

// Label binds name to the next emitted instruction. Duplicate labels are
// reported by Assemble.
func (a *Assembler) Label(name string) *Assembler {
	if _, dup := a.labels[name]; dup {
		a.err = fmt.Errorf("ebpf: duplicate label %q", name)
		return a
	}
	a.labels[name] = len(a.insns)
	return a
}

// JumpImm emits a conditional jump to a label, comparing dst with imm.
func (a *Assembler) JumpImm(op uint8, dst Register, imm int32, label string) *Assembler {
	a.fixups = append(a.fixups, fixup{pc: len(a.insns), label: label})
	a.insns = append(a.insns, JmpImm(op, dst, imm, 0))
	return a
}

// JumpReg emits a conditional jump to a label, comparing dst with src.
func (a *Assembler) JumpReg(op uint8, dst, src Register, label string) *Assembler {
	a.fixups = append(a.fixups, fixup{pc: len(a.insns), label: label})
	a.insns = append(a.insns, JmpReg(op, dst, src, 0))
	return a
}

// Jump emits an unconditional jump to a label.
func (a *Assembler) Jump(label string) *Assembler {
	a.fixups = append(a.fixups, fixup{pc: len(a.insns), label: label})
	a.insns = append(a.insns, Ja(0))
	return a
}

// Assemble resolves labels and returns the instruction stream.
func (a *Assembler) Assemble() ([]Instruction, error) {
	if a.err != nil {
		return nil, a.err
	}
	out := make([]Instruction, len(a.insns))
	copy(out, a.insns)
	for _, f := range a.fixups {
		target, ok := a.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("ebpf: undefined label %q", f.label)
		}
		rel := target - f.pc - 1
		if rel > 0x7fff || rel < -0x8000 {
			return nil, fmt.Errorf("ebpf: jump to %q out of 16-bit range", f.label)
		}
		out[f.pc].Off = int16(rel)
	}
	return out, nil
}

// MustAssemble is Assemble but panics on error; for statically-known
// programs constructed at init time.
func (a *Assembler) MustAssemble() []Instruction {
	insns, err := a.Assemble()
	if err != nil {
		panic(err)
	}
	return insns
}

// AtomicAdd64: *(u64*)(dst + off) += src, atomically (BPF_XADD). The
// bread-and-butter of counting probes: hash/array map counters updated
// concurrently from every CPU.
func AtomicAdd64(dst Register, off int16, src Register) Instruction {
	return Instruction{Op: ClassSTX | ModeAtomic | SizeDW, Dst: dst, Src: src, Off: off, Imm: AtomicAdd}
}

// AtomicAdd32: *(u32*)(dst + off) += src, atomically.
func AtomicAdd32(dst Register, off int16, src Register) Instruction {
	return Instruction{Op: ClassSTX | ModeAtomic | SizeW, Dst: dst, Src: src, Off: off, Imm: AtomicAdd}
}

// JmpImm32 / JmpReg32 build 32-bit conditional jumps (JMP32 class):
// the comparison reads only the low 32 bits of the operands.
func JmpImm32(op uint8, dst Register, imm int32, off int16) Instruction {
	return Instruction{Op: ClassJMP32 | op | SrcK, Dst: dst, Imm: imm, Off: off}
}

// JmpReg32 is JmpImm32 with a register source.
func JmpReg32(op uint8, dst, src Register, off int16) Instruction {
	return Instruction{Op: ClassJMP32 | op | SrcX, Dst: dst, Src: src, Off: off}
}
