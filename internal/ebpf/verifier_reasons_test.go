package ebpf

import (
	"errors"
	"os"
	"regexp"
	"strings"
	"testing"
)

// This file pins the verifier's rejection surface: every reason string
// in verifier.go must be producible by a minimal program in the table
// below. TestVerifierReasonCoverage scans the verifier source for
// reason literals and fails when a reason has no table case, so adding
// a new rejection without a test breaks the build.

func reasonMaps() map[int32]Map {
	return map[int32]Map{
		1: NewHashMap("h", 8, 8, 16),
		2: NewArrayMap("a", 16, 4),
		3: NewRingBuf("r", 4096),
		4: NewCMS("c", 8, 64, 2),
		5: NewHashPipe("p", 8, 2, 8),
	}
}

// wide flattens an lddw pair plus trailing instructions into one slice.
func wide(p [2]Instruction, rest ...Instruction) []Instruction {
	return append([]Instruction{p[0], p[1]}, rest...)
}

func cat(chunks ...[]Instruction) []Instruction {
	var out []Instruction
	for _, c := range chunks {
		out = append(out, c...)
	}
	return out
}

// lookup leaves R0 = map_value_or_null from hash map fd 1, then runs tail.
func lookup(tail ...Instruction) []Instruction {
	return cat(
		[]Instruction{Mov64Imm(R2, 0), StoreMem(R10, -8, R2, SizeDW)},
		wide(LoadMapFD(R1, 1),
			Mov64Reg(R2, R10),
			Add64Imm(R2, -8),
			Call(HelperMapLookupElem)),
		tail,
	)
}

// checkedLookup null-checks the lookup so tail sees R0 = map_value.
func checkedLookup(tail ...Instruction) []Instruction {
	return lookup(append([]Instruction{
		JmpImm(JmpJNE, R0, 0, 1),
		Exit(), // null path: R0 is the known scalar 0
	}, tail...)...)
}

func ret0(tail ...Instruction) []Instruction {
	return append(tail, Mov64Imm(R0, 0), Exit())
}

type rejectionCase struct {
	name  string
	insns []Instruction
	want  string // substring of the expected VerifierError.Reason
}

func rejectionCases() []rejectionCase {
	tooLong := make([]Instruction, MaxInstructions+1)
	for i := range tooLong {
		tooLong[i] = Mov64Imm(R0, 0)
	}
	tooLong[len(tooLong)-1] = Exit()

	// Each conditional forks abstract exploration; enough of them in a
	// row overflow the path-state budget long before the instruction cap.
	complex := []Instruction{Mov64Imm(R0, 0)}
	for i := 0; i < 18; i++ {
		complex = append(complex, JmpImm(JmpJEQ, R0, 0, 0))
	}
	complex = append(complex, Exit())

	return []rejectionCase{
		// --- structural checks ---
		{"empty_program", nil, "empty program"},
		{"program_too_long", tooLong, "program too long"},
		{"invalid_register",
			ret0(Instruction{Op: ClassALU64 | ALUMov | SrcK, Dst: 12, Imm: 1}),
			"invalid register r12"},
		{"truncated_lddw",
			[]Instruction{{Op: OpLdImmDW, Dst: R1, Imm: 1}},
			"truncated lddw pair"},
		{"malformed_lddw_second_slot",
			[]Instruction{{Op: OpLdImmDW, Dst: R1, Imm: 1}, Mov64Imm(R0, 0), Exit()},
			"malformed lddw second slot"},
		{"unknown_map_fd",
			wide(LoadMapFD(R1, 99), Mov64Imm(R0, 0), Exit()),
			"unknown map fd 99"},
		{"invalid_lddw_src",
			ret0(Instruction{Op: OpLdImmDW, Dst: R1, Src: 2}, Instruction{}),
			"invalid lddw src register"},
		{"lddw_into_r10",
			wide(LoadImm64(R10, 1), Mov64Imm(R0, 0), Exit()),
			"lddw into r10"},
		{"invalid_alu_op",
			ret0(Instruction{Op: ClassALU64 | 0xe0 | SrcK, Dst: R0}),
			"invalid ALU op"},
		{"write_to_r10",
			ret0(Mov64Imm(R10, 1)),
			"write to frame pointer r10"},
		{"div_by_zero_imm",
			ret0(Instruction{Op: ClassALU64 | ALUDiv | SrcK, Dst: R0, Imm: 0}),
			"division by zero immediate"},
		{"invalid_jump_op",
			ret0(Instruction{Op: ClassJMP | 0xe0, Dst: R0}),
			"invalid jump op"},
		{"invalid_jump32_op",
			ret0(Instruction{Op: ClassJMP32 | 0xe0, Dst: R0}),
			"invalid jump op"},
		{"unknown_helper",
			ret0(Call(99)),
			"unknown helper function 99"},
		{"jump_out_of_range",
			[]Instruction{JmpImm(JmpJEQ, R0, 0, 5), Exit()},
			"jump target 6 out of range"},
		{"jump32_out_of_range",
			[]Instruction{JmpImm32(JmpJEQ, R0, 0, -3), Exit()},
			"out of range"},
		{"jump_into_lddw",
			cat([]Instruction{JmpImm(JmpJEQ, R0, 0, 1)},
				wide(LoadImm64(R1, 1), Mov64Imm(R0, 0), Exit())),
			"jump into the middle of lddw"},
		{"jump32_into_lddw",
			cat([]Instruction{JmpImm32(JmpJEQ, R0, 0, 1)},
				wide(LoadImm64(R1, 1), Mov64Imm(R0, 0), Exit())),
			"jump into the middle of lddw"},
		{"exit_in_jmp32_class",
			[]Instruction{{Op: ClassJMP32 | JmpExit}},
			"ja/call/exit are 64-bit JMP class only"},
		{"atomic_needs_stx",
			ret0(Instruction{Op: ClassST | ModeAtomic | SizeDW, Dst: R10, Off: -8, Imm: AtomicAdd}),
			"atomic mode requires STX class"},
		{"unsupported_atomic_op",
			ret0(Instruction{Op: ClassSTX | ModeAtomic | SizeDW, Dst: R10, Src: R0, Off: -8, Imm: 1}),
			"unsupported atomic op"},
		{"atomic_bad_width",
			ret0(Instruction{Op: ClassSTX | ModeAtomic | SizeH, Dst: R10, Src: R0, Off: -8, Imm: AtomicAdd}),
			"atomic add requires 4- or 8-byte width"},
		{"unsupported_memory_mode",
			ret0(Instruction{Op: ClassLDX | 0x20 | SizeDW, Dst: R0, Src: R10, Off: -8}),
			"unsupported memory mode"},
		{"load_into_r10",
			ret0(LoadMem(R10, R1, 0, SizeDW)),
			"load into frame pointer r10"},
		{"invalid_ld_class",
			ret0(Instruction{Op: ClassLD | ModeMEM | SizeW}),
			"invalid LD-class instruction"},

		// --- control-flow graph checks ---
		{"falls_off_end",
			[]Instruction{Mov64Imm(R0, 0)},
			"control flow falls off the end"},
		{"back_edge",
			[]Instruction{Ja(-1)},
			"back-edge to 0"},
		{"state_limit",
			complex,
			"program too complex: state limit exceeded"},

		// --- abstract interpretation: registers and ALU ---
		{"uninit_r0_at_exit",
			[]Instruction{Exit()},
			"R0 is uninit at exit"},
		{"uninit_register_read",
			ret0(Mov64Reg(R0, R2)),
			"read of uninitialized register r2"},
		{"copy_maybe_null",
			lookup(ret0(Mov64Reg(R7, R0))...),
			"copying possibly-null map value"},
		{"mov32_of_pointer",
			ret0(Instruction{Op: ClassALU | ALUMov | SrcX, Dst: R2, Src: R10}),
			"32-bit mov of stack_ptr"},
		{"arith_on_maybe_null",
			lookup(ret0(Add64Imm(R0, 1))...),
			"arithmetic on possibly-null map value"},
		{"arith_on_map_handle",
			wide(LoadMapFD(R1, 1), ret0(Add64Imm(R1, 1))...),
			"arithmetic on map handle"},
		{"alu32_on_pointer",
			ret0(Mov64Reg(R2, R10),
				Instruction{Op: ClassALU | ALUAdd | SrcK, Dst: R2, Imm: 1}),
			"32-bit arithmetic on pointer"},
		{"adding_two_pointers",
			ret0(Mov64Reg(R2, R10), Add64Reg(R2, R10)),
			"adding two pointers"},
		{"pointer_add_unknown_scalar",
			ret0(Call(HelperKtimeGetNS), Mov64Reg(R2, R10), Add64Reg(R2, R0)),
			"pointer arithmetic with unknown scalar"},
		{"pointer_sub_unknown_scalar",
			ret0(Call(HelperKtimeGetNS), Mov64Reg(R2, R10),
				Instruction{Op: ClassALU64 | ALUSub | SrcX, Dst: R2, Src: R0}),
			"pointer arithmetic with unknown scalar"},
		{"invalid_pointer_sub",
			ret0(Mov64Reg(R2, R10),
				Instruction{Op: ClassALU64 | ALUSub | SrcX, Dst: R2, Src: R1}),
			"invalid pointer subtraction (stack_ptr - ctx)"},
		{"invalid_op_on_pointer",
			ret0(Mov64Reg(R2, R10),
				Instruction{Op: ClassALU64 | ALUMul | SrcK, Dst: R2, Imm: 2}),
			"invalid op mul on pointer"},

		// --- abstract interpretation: memory ---
		{"deref_maybe_null",
			lookup(ret0(LoadMem(R3, R0, 0, SizeDW))...),
			"dereference of possibly-null map value"},
		{"deref_map_handle",
			wide(LoadMapFD(R1, 1), ret0(LoadMem(R2, R1, 0, SizeDW))...),
			"dereference of map handle"},
		{"deref_scalar",
			ret0(Mov64Imm(R2, 8), LoadMem(R0, R2, 0, SizeDW)),
			"memory access through scalar"},
		{"ctx_write",
			ret0(Mov64Imm(R0, 1), StoreMem(R1, 0, R0, SizeDW)),
			"write to read-only ctx"},
		{"ctx_oob",
			ret0(LoadMem(R0, R1, 60, SizeDW)),
			"ctx access [60,68) out of bounds [0,64)"},
		{"map_value_oob",
			checkedLookup(ret0(LoadMem(R3, R0, 4, SizeDW))...),
			"map value access [4,12) out of bounds [0,8)"},
		{"stack_oob",
			ret0(LoadMem(R0, R10, 0, SizeDW)),
			"stack access [512,520) out of bounds [0,512)"},
		{"uninit_stack_read",
			ret0(LoadMem(R0, R10, -8, SizeDW)),
			"read of uninitialized stack byte"},
		{"spill_maybe_null",
			lookup(ret0(StoreMem(R10, -16, R0, SizeDW))...),
			"spilling possibly-null map value"},
		{"atomic_add_pointer",
			ret0(Mov64Imm(R2, 1), StoreMem(R10, -8, R2, SizeDW),
				AtomicAdd64(R10, -8, R10)),
			"atomic add of a pointer"},
		{"atomic_ctx_write",
			ret0(Mov64Imm(R0, 1), AtomicAdd64(R1, 0, R0)),
			"write to read-only ctx"},
		{"atomic_misaligned",
			ret0(Mov64Imm(R2, 1),
				StoreMem(R10, -8, R2, SizeDW),
				StoreMem(R10, -16, R2, SizeDW),
				AtomicAdd64(R10, -12, R2)),
			"atomic access must be 8-byte aligned"},
		{"narrow_pointer_spill",
			ret0(StoreMem(R10, -8, R10, SizeW)),
			"pointer can only be spilled to an aligned 8-byte stack slot"},
		{"misaligned_pointer_spill",
			ret0(StoreMem(R10, -12, R10, SizeDW)),
			"pointer spill must be 8-byte aligned"},

		// --- abstract interpretation: branches ---
		{"cmp32_pointer",
			ret0(JmpImm32(JmpJEQ, R10, 0, 0)),
			"32-bit comparison of stack_ptr with scalar"},
		{"maybe_null_bad_cmp_op",
			lookup(ret0(JmpImm(JmpJGT, R0, 0, 0))...),
			"possibly-null map value may only be compared with == or != 0"},
		{"maybe_null_cmp_nonzero",
			lookup(ret0(JmpImm(JmpJEQ, R0, 5, 0))...),
			"possibly-null map value in comparison; null check against 0 required"},
		{"cmp_pointer_kinds",
			ret0(JmpReg(JmpJEQ, R10, R1, 0)),
			"comparison of stack_ptr with ctx"},

		// --- helper argument checks ---
		{"helper_arg_not_pointer",
			wide(LoadMapFD(R1, 1),
				ret0(Mov64Imm(R2, 0), Call(HelperMapLookupElem))...),
			"map key (R2) must be a pointer, got scalar"},
		{"helper_r1_not_map",
			ret0(Mov64Imm(R1, 1), Call(HelperMapLookupElem)),
			"helper arg R1 must be a map handle, got scalar"},
		{"helper_flags_not_scalar",
			cat([]Instruction{
				Mov64Imm(R2, 0),
				StoreMem(R10, -8, R2, SizeDW),
				StoreMem(R10, -16, R2, SizeDW)},
				wide(LoadMapFD(R1, 1),
					ret0(Mov64Reg(R2, R10), Add64Imm(R2, -8),
						Mov64Reg(R3, R10), Add64Imm(R3, -16),
						Mov64Reg(R4, R10),
						Call(HelperMapUpdateElem))...)),
			"map update flags (R4) must be a scalar, got stack_ptr"},
		{"ringbuf_output_wrong_map",
			cat([]Instruction{Mov64Imm(R2, 1), StoreMem(R10, -8, R2, SizeDW)},
				wide(LoadMapFD(R1, 1),
					ret0(Mov64Reg(R2, R10), Add64Imm(R2, -8),
						Mov64Imm(R3, 8), Mov64Imm(R4, 0),
						Call(HelperRingbufOutput))...)),
			`ringbuf_output on non-ringbuf map "h"`},
		{"ringbuf_output_unknown_size",
			cat([]Instruction{Call(HelperKtimeGetNS), Mov64Reg(R3, R0)},
				wide(LoadMapFD(R1, 3),
					ret0(Call(HelperRingbufOutput))...)),
			"ringbuf_output size (R3) must be a known constant"},
		{"ringbuf_output_size_too_large",
			wide(LoadMapFD(R1, 3),
				ret0(Mov64Imm(R3, 600), Call(HelperRingbufOutput))...),
			"ringbuf_output size 600 too large"},
		{"ringbuf_query_wrong_map",
			wide(LoadMapFD(R1, 2),
				ret0(Mov64Imm(R2, 0), Call(HelperRingbufQuery))...),
			`ringbuf_query on non-ringbuf map "a"`},
		{"ringbuf_query_flags_not_scalar",
			wide(LoadMapFD(R1, 3),
				ret0(Mov64Reg(R2, R10), Call(HelperRingbufQuery))...),
			"ringbuf_query flags (R2) must be a scalar, got stack_ptr"},
		{"cms_helper_wrong_map",
			wide(LoadMapFD(R1, 1),
				ret0(Mov64Reg(R2, R10), Add64Imm(R2, -8),
					Call(HelperCMSEstimate))...),
			`cms helper on non-cms map "h"`},
		{"hashpipe_insert_wrong_map",
			wide(LoadMapFD(R1, 4),
				ret0(Mov64Reg(R2, R10), Add64Imm(R2, -8),
					Mov64Imm(R3, 1), Call(HelperHashPipeInsert))...),
			`hashpipe_insert on non-hashpipe map "c"`},
		{"generic_helper_on_sketch",
			cat([]Instruction{Mov64Imm(R2, 0), StoreMem(R10, -8, R2, SizeDW)},
				wide(LoadMapFD(R1, 4),
					ret0(Mov64Reg(R2, R10), Add64Imm(R2, -8),
						Call(HelperMapLookupElem))...)),
			`generic map helper on sketch map "c"`},
	}
}

// TestVerifierRejectionTable checks every case produces exactly the
// rejection it claims.
func TestVerifierRejectionTable(t *testing.T) {
	for _, tc := range rejectionCases() {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Load(ProgramSpec{Name: "reject", Insns: tc.insns, Maps: reasonMaps(), CtxSize: 64})
			if err == nil {
				t.Fatalf("verifier accepted program (want reason containing %q):\n%s",
					tc.want, Disassemble(tc.insns))
			}
			var ve *VerifierError
			if !errors.As(err, &ve) {
				t.Fatalf("not a VerifierError: %v", err)
			}
			if !strings.Contains(ve.Reason, tc.want) {
				t.Fatalf("reason %q does not contain %q", ve.Reason, tc.want)
			}
		})
	}
}

// reasonLitRe matches the reason string literal in either rejection
// idiom used by verifier.go: `Reason: "..."` / `Reason: fmt.Sprintf("..."`
// and `v.errf(pc, "..."`.
var reasonLitRe = regexp.MustCompile(`(?:Reason: (?:fmt\.Sprintf\()?|errf\(pc, )"((?:[^"\\]|\\.)*)"`)

// verbRe matches fmt verbs inside an extracted reason format string.
var verbRe = regexp.MustCompile(`%#?[a-z]`)

// verifierReasonPatterns extracts every distinct rejection reason from
// the verifier source as an anchored regexp (fmt verbs become
// wildcards).
func verifierReasonPatterns(t *testing.T) map[string]*regexp.Regexp {
	t.Helper()
	src, err := os.ReadFile("verifier.go")
	if err != nil {
		t.Fatalf("reading verifier source: %v", err)
	}
	out := make(map[string]*regexp.Regexp)
	for _, m := range reasonLitRe.FindAllStringSubmatch(string(src), -1) {
		lit := m[1]
		if _, dup := out[lit]; dup {
			continue
		}
		pat := "^" + verbRe.ReplaceAllString(regexp.QuoteMeta(lit), ".+") + "$"
		out[lit] = regexp.MustCompile(pat)
	}
	return out
}

// TestVerifierReasonCoverage fails when verifier.go contains a
// rejection reason that no table case produces, keeping the table
// exhaustive as the verifier grows.
func TestVerifierReasonCoverage(t *testing.T) {
	patterns := verifierReasonPatterns(t)
	if len(patterns) < 40 {
		t.Fatalf("source scan found only %d reason strings; the extraction regexp is likely stale", len(patterns))
	}

	var observed []string
	for _, tc := range rejectionCases() {
		_, err := Load(ProgramSpec{Name: "reject", Insns: tc.insns, Maps: reasonMaps(), CtxSize: 64})
		var ve *VerifierError
		if err != nil && errors.As(err, &ve) {
			observed = append(observed, ve.Reason)
		}
	}

	for lit, re := range patterns {
		hit := false
		for _, r := range observed {
			if re.MatchString(r) {
				hit = true
				break
			}
		}
		if !hit {
			t.Errorf("rejection reason %q in verifier.go has no case in rejectionCases()", lit)
		}
	}
}
