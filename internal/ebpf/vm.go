package ebpf

import (
	"encoding/binary"
	"fmt"
)

// HelperEnv supplies the ambient kernel state that helper functions read.
// The simulated kernel implements this against virtual time and the
// current thread; tests can supply fixtures.
type HelperEnv interface {
	// KtimeGetNS returns the current monotonic time in nanoseconds
	// (bpf_ktime_get_ns).
	KtimeGetNS() uint64
	// CurrentPidTgid returns tgid<<32 | tid (bpf_get_current_pid_tgid).
	CurrentPidTgid() uint64
	// SMPProcessorID returns the current CPU (bpf_get_smp_processor_id).
	SMPProcessorID() uint32
}

// RunStats reports the dynamic cost of one program execution, used by the
// kernel to charge probe overhead to the traced thread. MapOps is
// telemetry-only: the cost model charges instructions and helper calls,
// and map operations are a subset of the latter. Both execution
// backends produce identical RunStats for identical runs, so the
// charged probe cost — and therefore every simulation result — is
// backend-independent.
type RunStats struct {
	// Instructions is the number of instruction slots executed; a wide
	// LdImmDW counts both of its slots, matching the kernel's insn
	// accounting. The kernel charges perInsnCost for each.
	Instructions int
	// HelperCalls is the number of helper invocations, charged at
	// perHelperCost each (helpers leave JITed code for the kernel
	// proper, which is why they cost ~10x an instruction).
	HelperCalls int
	// MapOps counts the subset of HelperCalls that touch a map
	// (lookup/update/delete/ringbuf). Telemetry-only: surfaced as
	// vm_map_ops_total, never charged separately.
	MapOps int
}

type regionKind uint8

const (
	regionStack regionKind = iota
	regionCtx
	regionMapValue
)

func (k regionKind) String() string {
	switch k {
	case regionStack:
		return "stack"
	case regionCtx:
		return "ctx"
	case regionMapValue:
		return "map_value"
	}
	return "?"
}

// region is a bounds-checked memory area addressable by the program.
type region struct {
	kind     regionKind
	data     []byte
	readonly bool
}

// word is a register or stack slot value: a scalar, a pointer into a
// region, or a map handle.
type word struct {
	scalar uint64
	region *region
	off    int64
	m      Map
}

func scalarWord(v uint64) word { return word{scalar: v} }

func (w word) isScalar() bool  { return w.region == nil && w.m == nil }
func (w word) isPointer() bool { return w.region != nil }

// truthy reports whether the word compares non-zero (pointers and map
// handles are always non-zero; null lookups return scalar 0).
func (w word) truthy() bool {
	if w.region != nil || w.m != nil {
		return true
	}
	return w.scalar != 0
}

// RuntimeError is a fault during interpretation. A verified program
// should never produce one; it exists as defense in depth and for tests
// that bypass the verifier.
type RuntimeError struct {
	PC     int    // instruction slot that faulted
	Reason string // human-readable fault reason
}

// Error formats the fault with its program counter.
func (e *RuntimeError) Error() string {
	return fmt.Sprintf("ebpf: runtime fault at pc=%d: %s", e.PC, e.Reason)
}

// vm is the run state shared by both execution backends: the register
// file, the stack, the context window, and spill tracking. The
// interpreter allocates one per run; the compiled backend recycles
// them through vmPool (compile.go) with the pooled fields below.
type vm struct {
	prog  *Program
	env   HelperEnv
	regs  [NumRegisters]word
	stack region
	ctx   region
	stats RunStats
	// spills tracks pointer words spilled to aligned 8-byte stack slots,
	// keyed by absolute stack offset — the runtime twin of the verifier's
	// spill map. The slot's raw bytes hold the pointer's region offset so
	// partial re-reads (which lose pointer identity, as in the verifier's
	// model) stay deterministic. Interpreter-only: the compiled backend
	// tracks the same liveness in spillMask/spillW.
	spills map[int64]word

	// Pooled (compiled-backend) state, allocated once per pooled vm and
	// retained across runs so steady-state compiled execution never
	// touches the heap. They are pointers/slices rather than inline
	// arrays so the interpreter's per-run vm allocation stays small.
	// stackMem backs stack.data (cleared, not reallocated, per run);
	// spillMask bit i marks stack slot [8i,8i+8) as holding the live
	// spilled word spillW[i]; mvArena is a bump arena for map-value
	// regions, reset (not freed) per run; ret carries the exit value out
	// of the compiled dispatch loop. pooled routes mapValRegion through
	// the arena.
	stackMem  []byte
	spillW    *[spillSlots]word
	spillMask uint64
	mvArena   []region
	ret       uint64
	pooled    bool
	// stackLo is the lowest stack offset the run has written (StackSize
	// when untouched). Probes address downward from R10, so [stackLo,
	// StackSize) is a superset of the dirty bytes and is all getVM must
	// clear to hand the next run a zeroed stack.
	stackLo int64
	// steps counts completed dispatches against the instruction budget,
	// in the interpreter's units (a wide LdImmDW is one dispatch, each
	// half of a fused pair is one). Compiled-backend only; the
	// interpreter keeps its counter in a loop variable.
	steps int
}

// mapValRegion mints the fresh region identity a map lookup returns.
// Pooled run state serves it from the per-run arena (zero steady-state
// allocations — the arena keeps its capacity across runs); interpreter
// runs allocate, as they always have. Identity semantics are the same
// either way: each lookup yields a distinct *region.
func (m *vm) mapValRegion(v []byte) *region {
	if !m.pooled {
		return &region{kind: regionMapValue, data: v}
	}
	m.mvArena = append(m.mvArena, region{kind: regionMapValue, data: v})
	return &m.mvArena[len(m.mvArena)-1]
}

// run interprets the program against ctx. ctx may be nil for programs
// that never touch R1.
func (p *Program) run(ctx []byte, env HelperEnv) (uint64, RunStats, error) {
	m := &vm{
		prog:  p,
		env:   env,
		stack: region{kind: regionStack, data: make([]byte, StackSize)},
		ctx:   region{kind: regionCtx, data: ctx, readonly: true},
	}
	m.regs[R1] = word{region: &m.ctx}
	m.regs[R10] = word{region: &m.stack, off: StackSize}
	ret, err := m.exec()
	return ret, m.stats, err
}

func (m *vm) fault(pc int, format string, args ...any) error {
	return &RuntimeError{PC: pc, Reason: fmt.Sprintf(format, args...)}
}

func (m *vm) exec() (uint64, error) {
	insns := m.prog.insns
	pc := 0
	for steps := 0; ; steps++ {
		if steps > 4*MaxInstructions {
			return 0, m.fault(pc, "instruction budget exhausted")
		}
		if pc < 0 || pc >= len(insns) {
			return 0, m.fault(pc, "pc out of range")
		}
		in := insns[pc]
		m.stats.Instructions++
		switch in.Class() {
		case ClassALU64:
			if err := m.alu(pc, in, false); err != nil {
				return 0, err
			}
			pc++
		case ClassALU:
			if err := m.alu(pc, in, true); err != nil {
				return 0, err
			}
			pc++
		case ClassLD:
			if !in.IsWideLoad() || pc+1 >= len(insns) {
				return 0, m.fault(pc, "invalid LD instruction")
			}
			next := insns[pc+1]
			if in.Src == PseudoMapFD {
				mp, ok := m.prog.maps[in.Imm]
				if !ok {
					return 0, m.fault(pc, "unknown map fd %d", in.Imm)
				}
				m.regs[in.Dst] = word{m: mp}
			} else {
				v := uint64(uint32(in.Imm)) | uint64(uint32(next.Imm))<<32
				m.regs[in.Dst] = scalarWord(v)
			}
			m.stats.Instructions++ // second slot
			pc += 2
		case ClassLDX:
			if w, ok := m.unspill(m.regs[in.Src], int64(in.Off), in.Size()); ok {
				m.regs[in.Dst] = w
				pc++
				continue
			}
			v, err := m.load(pc, m.regs[in.Src], int64(in.Off), in.Size())
			if err != nil {
				return 0, err
			}
			m.regs[in.Dst] = scalarWord(v)
			pc++
		case ClassSTX:
			src := m.regs[in.Src]
			if in.Op&0xe0 == ModeAtomic {
				if !src.isScalar() {
					return 0, m.fault(pc, "atomic add of a pointer")
				}
				if err := m.atomic(pc, in, src.scalar); err != nil {
					return 0, err
				}
				pc++
				continue
			}
			if !src.isScalar() {
				if err := m.spill(pc, in, src); err != nil {
					return 0, err
				}
				pc++
				continue
			}
			if err := m.store(pc, m.regs[in.Dst], int64(in.Off), in.Size(), src.scalar); err != nil {
				return 0, err
			}
			pc++
		case ClassST:
			if err := m.store(pc, m.regs[in.Dst], int64(in.Off), in.Size(), uint64(int64(in.Imm))); err != nil {
				return 0, err
			}
			pc++
		case ClassJMP32:
			taken, err := m.branch(pc, in)
			if err != nil {
				return 0, err
			}
			if taken {
				pc += 1 + int(in.Off)
			} else {
				pc++
			}
		case ClassJMP:
			switch in.JmpOp() {
			case JmpExit:
				r0 := m.regs[R0]
				if !r0.isScalar() {
					return 0, m.fault(pc, "exit with non-scalar R0")
				}
				return r0.scalar, nil
			case JmpCall:
				if err := m.call(pc, in.Imm); err != nil {
					return 0, err
				}
				pc++
			case JmpJA:
				pc += 1 + int(in.Off)
			default:
				taken, err := m.branch(pc, in)
				if err != nil {
					return 0, err
				}
				if taken {
					pc += 1 + int(in.Off)
				} else {
					pc++
				}
			}
		default:
			return 0, m.fault(pc, "unsupported class %#x", in.Class())
		}
	}
}

func (m *vm) aluOperand(in Instruction) (word, bool) {
	if in.UsesImm() {
		return scalarWord(uint64(int64(in.Imm))), true
	}
	return m.regs[in.Src], false
}

func (m *vm) alu(pc int, in Instruction, is32 bool) error {
	dst := m.regs[in.Dst]
	src, _ := m.aluOperand(in)
	op := in.ALUOp()

	// Pointer arithmetic: only 64-bit add/sub with a scalar, or mov.
	if dst.isPointer() || src.isPointer() {
		if is32 {
			return m.fault(pc, "32-bit ALU on pointer")
		}
		switch op {
		case ALUMov:
			m.regs[in.Dst] = src
			return nil
		case ALUAdd:
			switch {
			case dst.isPointer() && src.isScalar():
				dst.off += int64(src.scalar)
				m.regs[in.Dst] = dst
				return nil
			case src.isPointer() && dst.isScalar():
				src.off += int64(dst.scalar)
				m.regs[in.Dst] = src
				return nil
			}
		case ALUSub:
			if dst.isPointer() && src.isScalar() {
				dst.off -= int64(src.scalar)
				m.regs[in.Dst] = dst
				return nil
			}
			if dst.isPointer() && src.isPointer() && dst.region == src.region {
				m.regs[in.Dst] = scalarWord(uint64(dst.off - src.off))
				return nil
			}
		}
		return m.fault(pc, "invalid pointer arithmetic op=%#x", op)
	}
	if dst.m != nil || src.m != nil {
		if op == ALUMov && !is32 {
			m.regs[in.Dst] = src
			return nil
		}
		return m.fault(pc, "arithmetic on map handle")
	}

	a, b := dst.scalar, src.scalar
	if is32 {
		a, b = uint64(uint32(a)), uint64(uint32(b))
	}
	var out uint64
	switch op {
	case ALUAdd:
		out = a + b
	case ALUSub:
		out = a - b
	case ALUMul:
		out = a * b
	case ALUDiv:
		if b == 0 {
			out = 0 // Linux semantics: div by zero yields 0
		} else {
			out = a / b
		}
	case ALUMod:
		if b == 0 {
			out = a // Linux semantics: mod by zero leaves dst
		} else {
			out = a % b
		}
	case ALUOr:
		out = a | b
	case ALUAnd:
		out = a & b
	case ALUXor:
		out = a ^ b
	case ALULsh:
		out = a << (b & 63)
	case ALURsh:
		out = a >> (b & 63)
	case ALUArsh:
		if is32 {
			out = uint64(uint32(int32(a) >> (b & 31)))
		} else {
			out = uint64(int64(a) >> (b & 63))
		}
	case ALUNeg:
		out = -a
	case ALUMov:
		out = b
	default:
		return m.fault(pc, "unsupported ALU op %#x", op)
	}
	if is32 {
		out = uint64(uint32(out))
	}
	m.regs[in.Dst] = scalarWord(out)
	return nil
}

func (m *vm) branch(pc int, in Instruction) (bool, error) {
	dst := m.regs[in.Dst]
	src, _ := m.aluOperand(in)

	// Pointer comparisons: only equality against zero (null checks) or
	// same-region pointers.
	if !dst.isScalar() || !src.isScalar() {
		switch in.JmpOp() {
		case JmpJEQ:
			if src.isScalar() && src.scalar == 0 {
				return !dst.truthy(), nil
			}
			if dst.isScalar() && dst.scalar == 0 {
				return !src.truthy(), nil
			}
			if dst.region != nil && src.region == dst.region {
				return dst.off == src.off, nil
			}
		case JmpJNE:
			if src.isScalar() && src.scalar == 0 {
				return dst.truthy(), nil
			}
			if dst.isScalar() && dst.scalar == 0 {
				return src.truthy(), nil
			}
			if dst.region != nil && src.region == dst.region {
				return dst.off != src.off, nil
			}
		}
		return false, m.fault(pc, "invalid pointer comparison")
	}

	a, b := dst.scalar, src.scalar
	if in.Class() == ClassJMP32 {
		a, b = uint64(uint32(a)), uint64(uint32(b))
		// Signed 32-bit comparisons sign-extend the low words.
		switch in.JmpOp() {
		case JmpJSGT:
			return int32(a) > int32(b), nil
		case JmpJSGE:
			return int32(a) >= int32(b), nil
		case JmpJSLT:
			return int32(a) < int32(b), nil
		case JmpJSLE:
			return int32(a) <= int32(b), nil
		}
	}
	switch in.JmpOp() {
	case JmpJEQ:
		return a == b, nil
	case JmpJNE:
		return a != b, nil
	case JmpJGT:
		return a > b, nil
	case JmpJGE:
		return a >= b, nil
	case JmpJLT:
		return a < b, nil
	case JmpJLE:
		return a <= b, nil
	case JmpJSET:
		return a&b != 0, nil
	case JmpJSGT:
		return int64(a) > int64(b), nil
	case JmpJSGE:
		return int64(a) >= int64(b), nil
	case JmpJSLT:
		return int64(a) < int64(b), nil
	case JmpJSLE:
		return int64(a) <= int64(b), nil
	}
	return false, m.fault(pc, "unsupported jump op %#x", in.JmpOp())
}

func (m *vm) load(pc int, base word, off int64, size int) (uint64, error) {
	data, ok := fastSlice(base, off, size)
	if !ok {
		var err error
		data, err = m.slice(pc, base, off, size)
		if err != nil {
			return 0, err
		}
	}
	switch size {
	case 1:
		return uint64(data[0]), nil
	case 2:
		return uint64(binary.LittleEndian.Uint16(data)), nil
	case 4:
		return uint64(binary.LittleEndian.Uint32(data)), nil
	default:
		return binary.LittleEndian.Uint64(data), nil
	}
}

func (m *vm) store(pc int, base word, off int64, size int, v uint64) error {
	if base.isPointer() && base.region.readonly {
		return m.fault(pc, "store to read-only %s", base.region.kind)
	}
	data, err := m.slice(pc, base, off, size)
	if err != nil {
		return err
	}
	// Any stack overwrite invalidates overlapping spilled pointers, as in
	// the verifier's model.
	if base.isPointer() && base.region.kind == regionStack {
		start := base.off + off
		for slot := range m.spills {
			if slot < start+int64(size) && slot+8 > start {
				delete(m.spills, slot)
			}
		}
	}
	switch size {
	case 1:
		data[0] = byte(v)
	case 2:
		binary.LittleEndian.PutUint16(data, uint16(v))
	case 4:
		binary.LittleEndian.PutUint32(data, uint32(v))
	default:
		binary.LittleEndian.PutUint64(data, v)
	}
	return nil
}

// spill stores a pointer or map handle word to the stack. The verifier
// restricts these to aligned 8-byte stack slots. Map handles are written
// as raw bytes only (re-reading one yields a scalar); pointers are
// additionally recorded for restoration by an aligned 8-byte load.
func (m *vm) spill(pc int, in Instruction, src word) error {
	base := m.regs[in.Dst]
	if !base.isPointer() || base.region.kind != regionStack || in.Size() != 8 {
		return m.fault(pc, "pointer can only be spilled to an aligned 8-byte stack slot")
	}
	start := base.off + int64(in.Off)
	if start%8 != 0 {
		return m.fault(pc, "pointer spill must be 8-byte aligned")
	}
	if err := m.store(pc, base, int64(in.Off), 8, uint64(src.off)); err != nil {
		return err
	}
	if src.region != nil {
		if m.spills == nil {
			m.spills = make(map[int64]word)
		}
		m.spills[start] = src
	}
	return nil
}

// unspill restores a spilled pointer: an aligned 8-byte load from a live
// spill slot. Any other access reads the slot's raw bytes.
func (m *vm) unspill(base word, off int64, size int) (word, bool) {
	if size != 8 || !base.isPointer() || base.region.kind != regionStack {
		return word{}, false
	}
	start := base.off + off
	if start%8 != 0 || start < 0 || start+8 > int64(len(base.region.data)) {
		return word{}, false
	}
	w, ok := m.spills[start]
	return w, ok
}

// slice bounds-checks a memory access and returns the addressed bytes.
// Stack accesses address downward from R10 (off is negative).
func (m *vm) slice(pc int, base word, off int64, size int) ([]byte, error) {
	if size == 0 {
		// Zero-size accesses touch no memory; the verifier skips them
		// (e.g. ring buffers have KeySize 0), so they must not fault here
		// either, whatever the base register holds.
		return nil, nil
	}
	if !base.isPointer() {
		return nil, m.fault(pc, "memory access through non-pointer")
	}
	start := base.off + off
	end := start + int64(size)
	if start < 0 || end > int64(len(base.region.data)) {
		return nil, m.fault(pc, "%s access [%d,%d) out of bounds [0,%d)",
			base.region.kind, start, end, len(base.region.data))
	}
	return base.region.data[start:end], nil
}

// fastSlice resolves the common in-bounds access without slice's fault
// machinery; ok=false means "fall back to slice for the diagnostic",
// not "fault". It is small enough for the compiler to inline into the
// compiled backend's memory ops.
func fastSlice(base word, off int64, size int) ([]byte, bool) {
	if base.region == nil || size <= 0 {
		return nil, false
	}
	start := base.off + off
	if start < 0 || start+int64(size) > int64(len(base.region.data)) {
		return nil, false
	}
	return base.region.data[start : start+int64(size)], true
}

// atomic executes a BPF_ATOMIC STX (currently AtomicAdd): a
// read-modify-write on map-value or stack memory.
func (m *vm) atomic(pc int, in Instruction, add uint64) error {
	if in.Imm != AtomicAdd {
		return m.fault(pc, "unsupported atomic op %#x", in.Imm)
	}
	size := in.Size()
	if size != 4 && size != 8 {
		return m.fault(pc, "atomic add requires 4- or 8-byte width")
	}
	base := m.regs[in.Dst]
	if base.isPointer() && base.region.readonly {
		return m.fault(pc, "atomic on read-only %s", base.region.kind)
	}
	cur, err := m.load(pc, base, int64(in.Off), size)
	if err != nil {
		return err
	}
	return m.store(pc, base, int64(in.Off), size, cur+add)
}

func (m *vm) call(pc int, id int32) error {
	m.stats.HelperCalls++
	r := func(reg Register) word { return m.regs[reg] }
	setR0 := func(w word) {
		m.regs[R0] = w
		// R1-R5 are caller-saved and clobbered by the call.
		for reg := R1; reg <= R5; reg++ {
			m.regs[reg] = scalarWord(0)
		}
	}

	switch id {
	case HelperMapLookupElem, HelperMapUpdateElem, HelperMapDeleteElem,
		HelperRingbufOutput, HelperRingbufQuery,
		HelperCMSUpdate, HelperCMSEstimate, HelperHashPipeInsert:
		m.stats.MapOps++
	}

	switch id {
	case HelperKtimeGetNS:
		setR0(scalarWord(m.env.KtimeGetNS()))
		return nil
	case HelperGetCurrentPidTgid:
		setR0(scalarWord(m.env.CurrentPidTgid()))
		return nil
	case HelperGetSMPProcID:
		setR0(scalarWord(uint64(m.env.SMPProcessorID())))
		return nil
	case HelperMapLookupElem:
		mp := r(R1).m
		if mp == nil {
			return m.fault(pc, "map_lookup_elem: R1 is not a map")
		}
		key, err := m.slice(pc, r(R2), 0, mp.KeySize())
		if err != nil {
			return err
		}
		v, ok := mp.Lookup(key)
		if !ok {
			setR0(scalarWord(0))
			return nil
		}
		setR0(word{region: m.mapValRegion(v)})
		return nil
	case HelperMapUpdateElem:
		mp := r(R1).m
		if mp == nil {
			return m.fault(pc, "map_update_elem: R1 is not a map")
		}
		key, err := m.slice(pc, r(R2), 0, mp.KeySize())
		if err != nil {
			return err
		}
		val, err := m.slice(pc, r(R3), 0, mp.ValueSize())
		if err != nil {
			return err
		}
		flags := r(R4)
		if !flags.isScalar() {
			return m.fault(pc, "map_update_elem: flags not scalar")
		}
		if err := mp.Update(key, val, int(flags.scalar)); err != nil {
			setR0(scalarWord(^uint64(0))) // -EEXIST and friends collapse to -1
			return nil
		}
		setR0(scalarWord(0))
		return nil
	case HelperMapDeleteElem:
		mp := r(R1).m
		if mp == nil {
			return m.fault(pc, "map_delete_elem: R1 is not a map")
		}
		key, err := m.slice(pc, r(R2), 0, mp.KeySize())
		if err != nil {
			return err
		}
		if err := mp.Delete(key); err != nil {
			setR0(scalarWord(^uint64(0)))
			return nil
		}
		setR0(scalarWord(0))
		return nil
	case HelperRingbufOutput:
		rb, ok := r(R1).m.(*RingBuf)
		if !ok {
			return m.fault(pc, "ringbuf_output: R1 is not a ringbuf")
		}
		size := r(R3)
		if !size.isScalar() {
			return m.fault(pc, "ringbuf_output: size not scalar")
		}
		data, err := m.slice(pc, r(R2), 0, int(size.scalar))
		if err != nil {
			return err
		}
		if rb.Output(data) {
			setR0(scalarWord(0))
		} else {
			setR0(scalarWord(^uint64(0)))
		}
		return nil
	case HelperRingbufQuery:
		rb, ok := r(R1).m.(*RingBuf)
		if !ok {
			return m.fault(pc, "ringbuf_query: R1 is not a ringbuf")
		}
		flags := r(R2)
		if !flags.isScalar() {
			return m.fault(pc, "ringbuf_query: flags not scalar")
		}
		setR0(scalarWord(rb.Query(flags.scalar)))
		return nil
	case HelperCMSUpdate:
		cs, ok := r(R1).m.(*CMS)
		if !ok {
			return m.fault(pc, "cms_update: R1 is not a cms")
		}
		key, err := m.slice(pc, r(R2), 0, cs.KeySize())
		if err != nil {
			return err
		}
		inc := r(R3)
		if !inc.isScalar() {
			return m.fault(pc, "cms_update: increment not scalar")
		}
		cs.Add(key, inc.scalar)
		setR0(scalarWord(0))
		return nil
	case HelperCMSEstimate:
		cs, ok := r(R1).m.(*CMS)
		if !ok {
			return m.fault(pc, "cms_estimate: R1 is not a cms")
		}
		key, err := m.slice(pc, r(R2), 0, cs.KeySize())
		if err != nil {
			return err
		}
		setR0(scalarWord(cs.Estimate(key)))
		return nil
	case HelperHashPipeInsert:
		hp, ok := r(R1).m.(*HashPipe)
		if !ok {
			return m.fault(pc, "hashpipe_insert: R1 is not a hashpipe")
		}
		key, err := m.slice(pc, r(R2), 0, hp.KeySize())
		if err != nil {
			return err
		}
		inc := r(R3)
		if !inc.isScalar() {
			return m.fault(pc, "hashpipe_insert: increment not scalar")
		}
		setR0(scalarWord(hp.Insert(key, inc.scalar)))
		return nil
	}
	return m.fault(pc, "unknown helper %d", id)
}
