package ebpf

import (
	"fmt"
	"sync/atomic"
)

// Backend selects how a loaded Program executes its verified
// instruction stream. Both backends implement identical semantics —
// the differential suite cross-checks them instruction-for-instruction
// against an independent reference evaluator — they differ only in
// dispatch cost and allocation behavior:
//
//   - BackendInterpreter decodes each instruction slot on every
//     execution (a switch over the opcode class per step) and
//     allocates its run state per run. It is the debugging baseline
//     and the anchor for BENCH_interpreter.json.
//   - BackendCompiled translates the instruction stream once, at Load
//     time, into a slice of pre-bound closures: branch targets are
//     resolved to closure indices, map handles and helpers are
//     pre-looked-up, and run state (stack, register file, spill slots,
//     map-value regions) comes from a pooled arena, so steady-state
//     execution performs zero heap allocations. It is the default and
//     the subject of BENCH_jit.json.
type Backend uint8

const (
	// BackendAuto resolves to the package default (DefaultBackend) at
	// Load time. It is the zero value, so a ProgramSpec that does not
	// name a backend gets the default.
	BackendAuto Backend = iota
	// BackendInterpreter selects the decode-per-step interpreter.
	BackendInterpreter
	// BackendCompiled selects the compile-to-closures backend.
	BackendCompiled
)

// String returns the backend's flag-value spelling.
func (b Backend) String() string {
	switch b {
	case BackendAuto:
		return "auto"
	case BackendInterpreter:
		return "interpreter"
	case BackendCompiled:
		return "compiled"
	}
	return fmt.Sprintf("backend(%d)", uint8(b))
}

// ParseBackend parses a -backend flag value ("auto", "interpreter",
// "compiled").
func ParseBackend(s string) (Backend, error) {
	switch s {
	case "auto", "":
		return BackendAuto, nil
	case "interpreter":
		return BackendInterpreter, nil
	case "compiled":
		return BackendCompiled, nil
	}
	return BackendAuto, fmt.Errorf("ebpf: unknown backend %q (want auto, interpreter, or compiled)", s)
}

// defaultBackend is what BackendAuto resolves to. Atomic because
// program loads can happen concurrently on the parallel experiment
// engine's workers while a driver (cmd/reqlens -backend) configures it.
var defaultBackend atomic.Uint32

func init() { defaultBackend.Store(uint32(BackendCompiled)) }

// DefaultBackend returns the backend BackendAuto resolves to
// (BackendCompiled unless overridden by SetDefaultBackend).
func DefaultBackend() Backend { return Backend(defaultBackend.Load()) }

// SetDefaultBackend overrides what BackendAuto resolves to for
// subsequent Loads; already-loaded programs keep their backend. Setting
// BackendAuto restores the built-in default (BackendCompiled). It
// returns the previous default so callers can restore it.
func SetDefaultBackend(b Backend) Backend {
	if b == BackendAuto {
		b = BackendCompiled
	}
	return Backend(defaultBackend.Swap(uint32(b)))
}
