package ebpf

import (
	"bytes"
	"encoding/binary"
	"testing"
	"testing/quick"
)

func u64key(v uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, v)
	return b
}

func TestHashMapBasicOps(t *testing.T) {
	m := NewHashMap("t", 8, 8, 16)
	if m.Name() != "t" || m.KeySize() != 8 || m.ValueSize() != 8 {
		t.Fatal("geometry accessors wrong")
	}
	if _, ok := m.Lookup(u64key(1)); ok {
		t.Fatal("lookup on empty map succeeded")
	}
	if err := m.Update(u64key(1), u64key(100), UpdateAny); err != nil {
		t.Fatal(err)
	}
	v, ok := m.Lookup(u64key(1))
	if !ok || binary.LittleEndian.Uint64(v) != 100 {
		t.Fatalf("lookup = %v, %v", v, ok)
	}
	// Live value semantics: mutating the returned slice is visible.
	binary.LittleEndian.PutUint64(v, 200)
	v2, _ := m.Lookup(u64key(1))
	if binary.LittleEndian.Uint64(v2) != 200 {
		t.Fatal("map values should be live slices")
	}
	if err := m.Delete(u64key(1)); err != nil {
		t.Fatal(err)
	}
	if err := m.Delete(u64key(1)); err != ErrKeyNotExist {
		t.Fatalf("double delete: %v", err)
	}
}

func TestHashMapUpdateFlags(t *testing.T) {
	m := NewHashMap("t", 8, 8, 16)
	if err := m.Update(u64key(1), u64key(1), UpdateExist); err != ErrKeyNotExist {
		t.Fatalf("UpdateExist on missing: %v", err)
	}
	if err := m.Update(u64key(1), u64key(1), UpdateNoExist); err != nil {
		t.Fatal(err)
	}
	if err := m.Update(u64key(1), u64key(2), UpdateNoExist); err != ErrKeyExist {
		t.Fatalf("UpdateNoExist on present: %v", err)
	}
	if err := m.Update(u64key(1), u64key(2), UpdateExist); err != nil {
		t.Fatal(err)
	}
}

func TestHashMapCapacity(t *testing.T) {
	m := NewHashMap("t", 8, 8, 2)
	if err := m.Update(u64key(1), u64key(1), UpdateAny); err != nil {
		t.Fatal(err)
	}
	if err := m.Update(u64key(2), u64key(2), UpdateAny); err != nil {
		t.Fatal(err)
	}
	if err := m.Update(u64key(3), u64key(3), UpdateAny); err != ErrMapFull {
		t.Fatalf("over capacity: %v", err)
	}
	// Overwriting an existing key is fine at capacity.
	if err := m.Update(u64key(1), u64key(9), UpdateAny); err != nil {
		t.Fatal(err)
	}
}

func TestHashMapSizeChecks(t *testing.T) {
	m := NewHashMap("t", 8, 8, 4)
	if err := m.Update([]byte{1}, u64key(1), UpdateAny); err != ErrBadKeySize {
		t.Fatalf("short key: %v", err)
	}
	if err := m.Update(u64key(1), []byte{1}, UpdateAny); err != ErrBadValSize {
		t.Fatalf("short value: %v", err)
	}
	if err := m.Delete([]byte{1}); err != ErrBadKeySize {
		t.Fatalf("short delete key: %v", err)
	}
	if _, ok := m.Lookup([]byte{1}); ok {
		t.Fatal("short lookup key succeeded")
	}
}

func TestHashMapUpdateCopiesValue(t *testing.T) {
	m := NewHashMap("t", 8, 8, 4)
	val := u64key(42)
	if err := m.Update(u64key(1), val, UpdateAny); err != nil {
		t.Fatal(err)
	}
	val[0] = 0xff // mutating the caller's buffer must not affect the map
	got, _ := m.Lookup(u64key(1))
	if binary.LittleEndian.Uint64(got) != 42 {
		t.Fatal("Update did not copy the value")
	}
}

func TestHashMapKeysSorted(t *testing.T) {
	m := NewHashMap("t", 8, 8, 16)
	for _, k := range []uint64{5, 1, 3} {
		if err := m.Update(u64key(k), u64key(k), UpdateAny); err != nil {
			t.Fatal(err)
		}
	}
	ks := m.Keys()
	if len(ks) != 3 {
		t.Fatalf("Keys() len = %d", len(ks))
	}
	for i := 1; i < len(ks); i++ {
		if bytes.Compare(ks[i-1], ks[i]) >= 0 {
			t.Fatal("Keys() not sorted")
		}
	}
	if m.Len() != 3 {
		t.Fatalf("Len = %d", m.Len())
	}
}

// Property: a HashMap behaves like a plain Go map under random op
// sequences.
func TestPropertyHashMapModel(t *testing.T) {
	type op struct {
		Kind  uint8
		Key   uint8
		Value uint64
	}
	f := func(ops []op) bool {
		m := NewHashMap("t", 8, 8, 1024)
		model := map[uint64]uint64{}
		for _, o := range ops {
			k := uint64(o.Key)
			switch o.Kind % 3 {
			case 0:
				_ = m.Update(u64key(k), u64key(o.Value), UpdateAny)
				model[k] = o.Value
			case 1:
				_ = m.Delete(u64key(k))
				delete(model, k)
			case 2:
				v, ok := m.Lookup(u64key(k))
				mv, mok := model[k]
				if ok != mok {
					return false
				}
				if ok && binary.LittleEndian.Uint64(v) != mv {
					return false
				}
			}
		}
		return m.Len() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestArrayMapOps(t *testing.T) {
	m := NewArrayMap("a", 8, 4)
	if m.KeySize() != 4 || m.ValueSize() != 8 || m.Len() != 4 {
		t.Fatal("geometry wrong")
	}
	key := make([]byte, 4)
	binary.LittleEndian.PutUint32(key, 2)
	v, ok := m.Lookup(key)
	if !ok {
		t.Fatal("array slots should always exist")
	}
	if binary.LittleEndian.Uint64(v) != 0 {
		t.Fatal("slots should be zero-initialized")
	}
	if err := m.Update(key, u64key(77), UpdateAny); err != nil {
		t.Fatal(err)
	}
	if got := binary.LittleEndian.Uint64(m.At(2)); got != 77 {
		t.Fatalf("At(2) = %d", got)
	}
	binary.LittleEndian.PutUint32(key, 10)
	if _, ok := m.Lookup(key); ok {
		t.Fatal("out-of-range index should fail")
	}
	if err := m.Update(key, u64key(1), UpdateAny); err != ErrKeyNotExist {
		t.Fatalf("out-of-range update: %v", err)
	}
	if err := m.Delete(key); err == nil {
		t.Fatal("delete on array map should fail")
	}
	if m.At(-1) != nil || m.At(4) != nil {
		t.Fatal("At out of range should be nil")
	}
	binary.LittleEndian.PutUint32(key, 0)
	if err := m.Update(key, u64key(1), UpdateNoExist); err != ErrKeyExist {
		t.Fatalf("NoExist on array: %v", err)
	}
}

func TestRingBufOps(t *testing.T) {
	rb := NewRingBuf("rb", 64)
	if !rb.Output([]byte("hello")) {
		t.Fatal("output failed")
	}
	if !rb.Output([]byte("world")) {
		t.Fatal("output failed")
	}
	if rb.Pending() != 2 || rb.Written() != 2 {
		t.Fatalf("pending=%d written=%d", rb.Pending(), rb.Written())
	}
	recs := rb.Drain()
	if len(recs) != 2 || string(recs[0]) != "hello" || string(recs[1]) != "world" {
		t.Fatalf("drain = %q", recs)
	}
	if rb.Pending() != 0 {
		t.Fatal("drain should clear pending")
	}
}

func TestRingBufDropsWhenFull(t *testing.T) {
	// Each 8-byte record costs 8 header + 8 payload = 16 bytes, so a
	// 32-byte ring holds exactly two.
	rb := NewRingBuf("rb", 32)
	if !rb.Output(make([]byte, 8)) {
		t.Fatal("first output should fit")
	}
	if !rb.Output(make([]byte, 8)) {
		t.Fatal("second output should fit")
	}
	if rb.Output(make([]byte, 8)) {
		t.Fatal("third output should be dropped")
	}
	if rb.Dropped() != 1 {
		t.Fatalf("Dropped = %d", rb.Dropped())
	}
	rb.Drain()
	if !rb.Output(make([]byte, 8)) {
		t.Fatal("after drain, space should be reclaimed")
	}
}

func TestRingBufOutputCopies(t *testing.T) {
	rb := NewRingBuf("rb", 64)
	buf := []byte{1, 2, 3}
	rb.Output(buf)
	buf[0] = 99
	if rb.Drain()[0][0] != 1 {
		t.Fatal("Output did not copy the record")
	}
}

func TestRingBufInvalidOps(t *testing.T) {
	rb := NewRingBuf("rb", 64)
	if _, ok := rb.Lookup(nil); ok {
		t.Fatal("Lookup should fail on ringbuf")
	}
	if err := rb.Update(nil, nil, 0); err == nil {
		t.Fatal("Update should fail on ringbuf")
	}
	if err := rb.Delete(nil); err == nil {
		t.Fatal("Delete should fail on ringbuf")
	}
}

func TestMapConstructorPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewHashMap("x", 0, 8, 8) },
		func() { NewArrayMap("x", 8, 0) },
		func() { NewRingBuf("x", 0) },
		func() { NewRingBuf("x", 24) }, // not a power of two
		func() { NewRingBuf("x", 4) },  // below one header
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for invalid geometry")
				}
			}()
			fn()
		}()
	}
}
