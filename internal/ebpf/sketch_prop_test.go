package ebpf

// Property tests for the sketch maps' probabilistic guarantees, pinned
// against exact-counter oracles over seeded random streams:
//
//   - count-min never underestimates, and overestimates by more than
//     εN (ε = e/width) on at most a δ = e^-depth fraction of queries —
//     the classic per-query confidence bound, checked empirically on
//     uniform and Zipf-skewed key streams;
//   - HashPipe recall@K against the exact top-K stays above a
//     reference threshold under heavy-tailed (Zipf) traffic.
//
// Streams are seeded, so every run checks the same instances; a
// failure here is a semantic regression, not flake.

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"testing"
)

// sketchKey widens a small key ID into a well-mixed 8-byte key, so the
// key bytes exercise the whole hash input space.
func sketchKey(id uint64) []byte {
	z := (id + 1) * 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	k := make([]byte, 8)
	binary.LittleEndian.PutUint64(k, z^(z>>27))
	return k
}

// stream generates n (keyID, inc) update pairs. zipf skews the key
// choice heavy-tailed (s=1.2), as per-PID traffic is in practice;
// uniform spreads it flat.
func stream(rng *rand.Rand, n, keys int, zipfSkew bool) [][2]uint64 {
	var z *rand.Zipf
	if zipfSkew {
		z = rand.NewZipf(rng, 1.2, 1, uint64(keys-1))
	}
	out := make([][2]uint64, n)
	for i := range out {
		var id uint64
		if zipfSkew {
			id = z.Uint64()
		} else {
			id = uint64(rng.Intn(keys))
		}
		out[i] = [2]uint64{id, uint64(1 + rng.Intn(4))}
	}
	return out
}

func TestCMSBoundsProperty(t *testing.T) {
	cases := []struct {
		width, depth int
		keys         int
		updates      int
		zipf         bool
	}{
		{width: 256, depth: 4, keys: 2000, updates: 50_000, zipf: false},
		{width: 256, depth: 4, keys: 2000, updates: 50_000, zipf: true},
		{width: 1024, depth: 4, keys: 20_000, updates: 100_000, zipf: true},
		{width: 4096, depth: 4, keys: 50_000, updates: 200_000, zipf: true},
		{width: 512, depth: 8, keys: 10_000, updates: 100_000, zipf: false},
		{width: 64, depth: 2, keys: 5000, updates: 50_000, zipf: true},
	}
	for ci, tc := range cases {
		tc := tc
		name := fmt.Sprintf("w%d_d%d_keys%d_zipf%v", tc.width, tc.depth, tc.keys, tc.zipf)
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(1000 + ci)))
			c := NewCMS("c", 8, tc.width, tc.depth)
			oracle := make(map[uint64]uint64)
			for _, up := range stream(rng, tc.updates, tc.keys, tc.zipf) {
				c.Add(sketchKey(up[0]), up[1])
				oracle[up[0]] += up[1]
			}

			bound := c.ErrorBound()
			if want := uint64(float64(c.Total()) * c.Epsilon()); bound < want {
				t.Fatalf("ErrorBound %d below εN = %d", bound, want)
			}
			var violations int
			for id, truth := range oracle {
				est := c.Estimate(sketchKey(id))
				if est < truth {
					t.Fatalf("cms underestimated key %d: est %d < true %d", id, est, truth)
				}
				if est-truth > bound {
					violations++
				}
			}
			// The εN bound holds per query with probability >= 1−δ;
			// check the empirical violation fraction against δ.
			frac := float64(violations) / float64(len(oracle))
			if frac > c.Delta() {
				t.Fatalf("εN bound violated on %.4f of %d keys, above δ = %.4f (bound %d, N %d)",
					frac, len(oracle), c.Delta(), bound, c.Total())
			}
			t.Logf("keys %d, N %d, bound %d, violations %.4f (δ %.4f)",
				len(oracle), c.Total(), bound, frac, c.Delta())
		})
	}
}

func TestHashPipeRecallProperty(t *testing.T) {
	cases := []struct {
		stages, slots, k int
		keys, updates    int
		threshold        float64
	}{
		{stages: 4, slots: 256, k: 10, keys: 20_000, updates: 200_000, threshold: 0.9},
		{stages: 6, slots: 512, k: 20, keys: 50_000, updates: 300_000, threshold: 0.9},
		{stages: 2, slots: 1024, k: 10, keys: 100_000, updates: 400_000, threshold: 0.9},
	}
	for ci, tc := range cases {
		tc := tc
		name := fmt.Sprintf("st%d_sl%d_k%d_keys%d", tc.stages, tc.slots, tc.k, tc.keys)
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(2000 + ci)))
			h := NewHashPipe("p", 8, tc.stages, tc.slots)
			oracle := make(map[uint64]uint64)
			for _, up := range stream(rng, tc.updates, tc.keys, true) {
				h.Insert(sketchKey(up[0]), up[1])
				oracle[up[0]] += up[1]
			}
			got := recallAtK(h, oracle, tc.k)
			if got < tc.threshold {
				t.Fatalf("recall@%d = %.3f, below threshold %.3f", tc.k, got, tc.threshold)
			}
			t.Logf("recall@%d = %.3f (threshold %.3f)", tc.k, got, tc.threshold)
		})
	}
}

// recallAtK computes |pipe topK ∩ exact topK| / K against an exact
// counter oracle keyed by key ID.
func recallAtK(h *HashPipe, oracle map[uint64]uint64, k int) float64 {
	exact := exactTopK(oracle, k)
	got := make(map[string]bool, k)
	for _, e := range h.TopK(k) {
		got[string(e.Key)] = true
	}
	hits := 0
	for _, id := range exact {
		if got[string(sketchKey(id))] {
			hits++
		}
	}
	return float64(hits) / float64(len(exact))
}

// exactTopK ranks the oracle's key IDs by descending true count (ID
// ties ascending) and returns the top k.
func exactTopK(oracle map[uint64]uint64, k int) []uint64 {
	ids := make([]uint64, 0, len(oracle))
	for id := range oracle {
		ids = append(ids, id)
	}
	// Selection sort over the top k: deterministic, and k is tiny.
	for i := 0; i < k && i < len(ids); i++ {
		best := i
		for j := i + 1; j < len(ids); j++ {
			ci, cb := oracle[ids[j]], oracle[ids[best]]
			if ci > cb || (ci == cb && ids[j] < ids[best]) {
				best = j
			}
		}
		ids[i], ids[best] = ids[best], ids[i]
	}
	if k < len(ids) {
		ids = ids[:k]
	}
	return ids
}

// TestCMSMergeCommutative pins the merge invariant the fleet
// aggregation plane relies on: splitting one stream across two sketches
// and merging — in either order — reproduces the single-sketch state
// bit-for-bit.
func TestCMSMergeCommutative(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	whole := NewCMS("w", 8, 512, 4)
	a := NewCMS("a", 8, 512, 4)
	b := NewCMS("b", 8, 512, 4)
	for i, up := range stream(rng, 40_000, 3000, true) {
		k := sketchKey(up[0])
		whole.Add(k, up[1])
		if i%2 == 0 {
			a.Add(k, up[1])
		} else {
			b.Add(k, up[1])
		}
	}
	ab := a.Clone()
	if err := ab.Merge(b); err != nil {
		t.Fatal(err)
	}
	ba := b.Clone()
	if err := ba.Merge(a); err != nil {
		t.Fatal(err)
	}
	for i := range whole.rows {
		if ab.rows[i] != whole.rows[i] || ba.rows[i] != whole.rows[i] {
			t.Fatalf("merge diverged from the unsplit sketch at counter %d: whole %d, a+b %d, b+a %d",
				i, whole.rows[i], ab.rows[i], ba.rows[i])
		}
	}
	if ab.total != whole.total || ba.total != whole.total {
		t.Fatalf("merge totals: whole %d, a+b %d, b+a %d", whole.total, ab.total, ba.total)
	}
	if err := a.Merge(NewCMS("x", 8, 256, 4)); err != ErrSketchGeometry {
		t.Fatalf("geometry mismatch merge: got %v, want ErrSketchGeometry", err)
	}
}

// TestHashPipeMergeSymmetric pins that merge(a,b) and merge(b,a) leave
// bit-identical tables (the deterministic union-reinsert contract).
func TestHashPipeMergeSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	a := NewHashPipe("a", 8, 4, 64)
	b := NewHashPipe("b", 8, 4, 64)
	for i, up := range stream(rng, 30_000, 2000, true) {
		k := sketchKey(up[0])
		if i%2 == 0 {
			a.Insert(k, up[1])
		} else {
			b.Insert(k, up[1])
		}
	}
	ab := a.Clone()
	if err := ab.Merge(b); err != nil {
		t.Fatal(err)
	}
	ba := b.Clone()
	if err := ba.Merge(a); err != nil {
		t.Fatal(err)
	}
	for i := range ab.table {
		x, y := ab.table[i], ba.table[i]
		if x.used != y.used || x.count != y.count || x.key != y.key {
			t.Fatalf("merge order changed pipe cell %d: a+b (%v,%x,%d), b+a (%v,%x,%d)",
				i, x.used, x.key, x.count, y.used, y.key, y.count)
		}
	}
	if err := a.Merge(NewHashPipe("x", 8, 3, 64)); err != ErrSketchGeometry {
		t.Fatalf("geometry mismatch merge: got %v, want ErrSketchGeometry", err)
	}
}
