// Package resilience supervises experiment points so a multi-hour sweep
// degrades instead of dying.
//
// The harness engine (internal/harness.RunPoints) fans independent,
// deterministic points across a worker pool. Without supervision the
// pool inherits Go's default failure semantics: one panicking probe
// point kills the whole process, and a rig whose event heap never
// drains stalls its worker forever. This package wraps each point in a
// Supervisor that
//
//   - recovers panics into a typed *PointError carrying the panic
//     value, the goroutine stack, and the point's label/seed/index —
//     the process survives and sibling points are untouched;
//   - enforces a per-attempt wall-clock deadline through a sim.Clock
//     handed to the point function: the rig wires it into its
//     environment, the event loop checks it cooperatively, and an
//     exhausted budget unwinds as a sim.Timeout that the supervisor
//     classifies as a deadline kill;
//   - retries failed attempts with capped exponential backoff. The
//     point function is pure in its derived seed, so a retried attempt
//     replays the identical simulation — a success on attempt 3 is
//     bit-identical to a success on attempt 0, which is what keeps
//     resumed and retried sweeps byte-comparable to clean runs;
//   - optionally injects chaos (first-attempt panics and hangs, chosen
//     deterministically by point index) so the whole
//     supervise-retry-recover stack can be proven end to end against
//     real rigs.
//
// Every supervisor decision is counted in an optional
// telemetry.Registry (resilience_* instruments), so `-metrics` output
// shows how hard a run had to fight to complete.
//
// Entry points: New, Run, Chaos, DefaultChaos.
package resilience
