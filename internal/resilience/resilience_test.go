package resilience

import (
	"strings"
	"testing"
	"time"

	"reqlens/internal/sim"
	"reqlens/internal/telemetry"
)

// noSleep collects requested backoffs without sleeping.
func noSleep(log *[]time.Duration) func(time.Duration) {
	return func(d time.Duration) { *log = append(*log, d) }
}

func TestRunRecoversPanicIntoTypedError(t *testing.T) {
	reg := telemetry.New()
	s := New(Options{Telemetry: reg})
	p := Point{Label: "silo level=0.50", Index: 3, Seed: 42}

	v, perr := Run(s, p, func(attempt int, clock *sim.Clock) int {
		panic("probe exploded")
	})
	if v != 0 || perr == nil {
		t.Fatalf("want zero value + error, got %v, %v", v, perr)
	}
	if perr.Kind != KindPanic || perr.Attempts != 1 {
		t.Fatalf("error = %+v", perr)
	}
	if !strings.Contains(perr.Cause, "probe exploded") {
		t.Fatalf("cause lost: %q", perr.Cause)
	}
	if len(perr.Stack) == 0 {
		t.Fatal("stack not captured")
	}
	if perr.Label != p.Label || perr.Seed != 42 || perr.Index != 3 {
		t.Fatalf("point identity lost: %+v", perr.Point)
	}
	if !strings.Contains(perr.Error(), "silo level=0.50") {
		t.Fatalf("Error() = %q", perr.Error())
	}
	if got := reg.Counter("resilience_panics_recovered_total").Value(); got != 1 {
		t.Fatalf("panic counter = %d", got)
	}
	if got := reg.Counter("resilience_gaps_total").Value(); got != 1 {
		t.Fatalf("gap counter = %d", got)
	}
}

func TestRunClassifiesTimeoutAsDeadline(t *testing.T) {
	reg := telemetry.New()
	s := New(Options{Telemetry: reg})
	_, perr := Run(s, Point{Label: "hung"}, func(attempt int, clock *sim.Clock) int {
		panic(sim.Timeout{At: 5, Events: 99})
	})
	if perr == nil || perr.Kind != KindDeadline {
		t.Fatalf("error = %+v", perr)
	}
	if !strings.Contains(perr.Cause, "99 events") {
		t.Fatalf("timeout detail lost: %q", perr.Cause)
	}
	if got := reg.Counter("resilience_deadline_kills_total").Value(); got != 1 {
		t.Fatalf("deadline counter = %d", got)
	}
}

// TestRetrySameResultAsFirstTrySuccess is the seed-preservation
// contract: a function pure in its inputs that fails transiently
// returns, on the successful retry, exactly what an unperturbed call
// returns.
func TestRetrySameResultAsFirstTrySuccess(t *testing.T) {
	compute := func(i int) []int64 { return []int64{int64(i) * 3, int64(i) * 7} }

	var backoffs []time.Duration
	reg := telemetry.New()
	s := New(Options{Retries: 3, Backoff: time.Millisecond, MaxBackoff: 4 * time.Millisecond,
		Sleep: noSleep(&backoffs), Telemetry: reg})

	v, perr := Run(s, Point{Index: 9}, func(attempt int, clock *sim.Clock) []int64 {
		if attempt < 2 {
			panic("transient")
		}
		return compute(9)
	})
	if perr != nil {
		t.Fatalf("retries should have recovered: %v", perr)
	}
	want := compute(9)
	if v[0] != want[0] || v[1] != want[1] {
		t.Fatalf("retried result %v != pure result %v", v, want)
	}
	if got := reg.Counter("resilience_retries_total").Value(); got != 2 {
		t.Fatalf("retry counter = %d, want 2", got)
	}
	if got := reg.Counter("resilience_gaps_total").Value(); got != 0 {
		t.Fatalf("gap counter = %d, want 0 (recovered)", got)
	}
	// Capped exponential: 1ms, 2ms (the third attempt succeeds).
	if len(backoffs) != 2 || backoffs[0] != time.Millisecond || backoffs[1] != 2*time.Millisecond {
		t.Fatalf("backoffs = %v", backoffs)
	}
}

func TestBackoffCap(t *testing.T) {
	var backoffs []time.Duration
	s := New(Options{Retries: 5, Backoff: time.Millisecond, MaxBackoff: 3 * time.Millisecond,
		Sleep: noSleep(&backoffs)})
	_, perr := Run(s, Point{}, func(int, *sim.Clock) int { panic("always") })
	if perr == nil || perr.Attempts != 6 {
		t.Fatalf("error = %+v", perr)
	}
	// 1, 2, then clamped to 3 for the rest.
	want := []time.Duration{1, 2, 3, 3, 3}
	for i, b := range backoffs {
		if b != want[i]*time.Millisecond {
			t.Fatalf("backoffs = %v", backoffs)
		}
	}
}

// TestChaosDeterministicByIndex: injection depends only on the point
// index and attempt, never on timing or ordering.
func TestChaosDeterministicByIndex(t *testing.T) {
	c := &Chaos{PanicNth: 2, HangNth: 3}
	outcome := func(idx int) string {
		clock := sim.NewClock(0)
		defer func() { recover() }()
		c.inject(Point{Index: idx}, 0, clock)
		if clock.Expired() {
			return "hang"
		}
		return "ok"
	}
	// Index 1 (2nd point) panics, index 2 (3rd) hangs, index 5 (6th,
	// divisible by both) hangs — the clock wins.
	if got := outcome(0); got != "ok" {
		t.Fatalf("point 0 = %q", got)
	}
	if got := outcome(2); got != "hang" {
		t.Fatalf("point 2 = %q", got)
	}
	if got := outcome(5); got != "hang" {
		t.Fatalf("point 5 = %q", got)
	}
	// Second attempts are never injected.
	clock := sim.NewClock(0)
	c.inject(Point{Index: 1}, 1, clock)
	if clock.Expired() {
		t.Fatal("attempt 1 must be chaos-free")
	}

	s := New(Options{Retries: 1, Chaos: c, Sleep: func(time.Duration) {}})
	v, perr := Run(s, Point{Index: 1}, func(attempt int, clock *sim.Clock) int {
		return 77 // attempt 0 is panicked by chaos; attempt 1 lands here
	})
	if perr != nil || v != 77 {
		t.Fatalf("chaos + retry: v=%d err=%v", v, perr)
	}
	if DefaultChaos().PanicNth <= 0 || DefaultChaos().HangNth <= 0 {
		t.Fatal("DefaultChaos must inject something")
	}
}

// TestChaosHangKillsRealEventLoop: a chaos-expired clock wired into an
// Env unwinds via the cooperative budget check, and the supervisor
// classifies it as a deadline kill.
func TestChaosHangKillsRealEventLoop(t *testing.T) {
	reg := telemetry.New()
	s := New(Options{Chaos: &Chaos{HangNth: 1}, Telemetry: reg})
	_, perr := Run(s, Point{Index: 0, Label: "rig"}, func(attempt int, clock *sim.Clock) int {
		env := sim.NewEnv(1)
		env.SetClock(clock)
		var tick func()
		tick = func() { env.Schedule(time.Microsecond, tick) }
		env.Schedule(0, tick)
		env.RunFor(time.Second)
		return 1
	})
	if perr == nil || perr.Kind != KindDeadline {
		t.Fatalf("error = %+v", perr)
	}
	if got := reg.Counter("resilience_deadline_kills_total").Value(); got != 1 {
		t.Fatalf("deadline counter = %d", got)
	}
}

func TestNilTelemetryAndDefaults(t *testing.T) {
	s := New(Options{})
	if s.opt.Backoff != 10*time.Millisecond || s.opt.MaxBackoff != time.Second {
		t.Fatalf("defaults = %+v", s.opt)
	}
	if s.Options().Retries != 0 {
		t.Fatalf("Options() = %+v", s.Options())
	}
	v, perr := Run(s, Point{}, func(int, *sim.Clock) string { return "ok" })
	if v != "ok" || perr != nil {
		t.Fatalf("plain success: %q, %v", v, perr)
	}
}
