package resilience

import (
	"fmt"
	"runtime/debug"
	"time"

	"reqlens/internal/sim"
	"reqlens/internal/telemetry"
)

// Failure kinds recorded in a PointError.
const (
	// KindPanic is a recovered panic from the point function (or from a
	// chaos injection).
	KindPanic = "panic"
	// KindDeadline is an exhausted execution budget: the rig's event
	// loop raised sim.Timeout, or a watchdog expired the clock.
	KindDeadline = "deadline"
)

// Point identifies one experiment point under supervision. Seed is the
// run's root seed; the label names the derived point (workload, config,
// level), which together with the root seed pins the point's entire
// input.
type Point struct {
	Label string
	Index int
	Seed  int64
}

// PointError is the typed failure of one point after all retry attempts.
// It is a value the engine reports in its Gaps list, never a reason to
// terminate the process.
type PointError struct {
	Point
	Kind     string // KindPanic or KindDeadline
	Cause    string // panic value or timeout detail, rendered
	Attempts int    // attempts consumed, including the first
	Stack    []byte // goroutine stack at the recovered panic
}

func (e *PointError) Error() string {
	return fmt.Sprintf("point %d %q (seed %d): %s after %d attempt(s): %s",
		e.Index, e.Label, e.Seed, e.Kind, e.Attempts, e.Cause)
}

// Options configures a Supervisor. The zero value supervises with no
// deadline and no retries: panics are still recovered into PointErrors.
type Options struct {
	// Deadline is the wall-clock budget of a single attempt; each
	// attempt gets a fresh sim.Clock primed with it. 0 = unlimited.
	Deadline time.Duration
	// Retries is how many additional attempts a failed point gets.
	Retries int
	// Backoff is the sleep before the first retry; it doubles per retry
	// up to MaxBackoff. 0 defaults to 10ms.
	Backoff time.Duration
	// MaxBackoff caps the exponential backoff. 0 defaults to 1s.
	MaxBackoff time.Duration
	// Sleep replaces time.Sleep between attempts (tests inject a no-op
	// so retry storms finish instantly). Nil = time.Sleep.
	Sleep func(time.Duration)
	// Chaos, when non-nil, injects deterministic first-attempt failures
	// ahead of the point function. Retries then recover them, proving
	// the supervision stack end to end.
	Chaos *Chaos
	// Telemetry, when non-nil, receives the supervisor counters
	// (resilience_panics_recovered_total, resilience_deadline_kills_total,
	// resilience_retries_total, resilience_gaps_total). Nil disables
	// them at the usual one-nil-check cost.
	Telemetry *telemetry.Registry
}

// Supervisor runs point functions under panic isolation, deadlines and
// retries. One Supervisor serves a whole batch; Run is safe to call
// from concurrent engine workers.
type Supervisor struct {
	opt Options

	panics    *telemetry.Counter
	deadlines *telemetry.Counter
	retries   *telemetry.Counter
	gaps      *telemetry.Counter
}

// New returns a Supervisor for opt, filling backoff defaults and wiring
// the telemetry counters (nil-safe).
func New(opt Options) *Supervisor {
	if opt.Backoff <= 0 {
		opt.Backoff = 10 * time.Millisecond
	}
	if opt.MaxBackoff <= 0 {
		opt.MaxBackoff = time.Second
	}
	if opt.Sleep == nil {
		opt.Sleep = time.Sleep
	}
	return &Supervisor{
		opt:       opt,
		panics:    opt.Telemetry.Counter("resilience_panics_recovered_total"),
		deadlines: opt.Telemetry.Counter("resilience_deadline_kills_total"),
		retries:   opt.Telemetry.Counter("resilience_retries_total"),
		gaps:      opt.Telemetry.Counter("resilience_gaps_total"),
	}
}

// Options returns the supervisor's resolved configuration.
func (s *Supervisor) Options() Options { return s.opt }

// backoffFor returns the capped exponential sleep before retry n
// (n >= 1).
func (s *Supervisor) backoffFor(n int) time.Duration {
	d := s.opt.Backoff
	for i := 1; i < n; i++ {
		d *= 2
		if d >= s.opt.MaxBackoff {
			return s.opt.MaxBackoff
		}
	}
	if d > s.opt.MaxBackoff {
		d = s.opt.MaxBackoff
	}
	return d
}

// Run executes fn under s's supervision and returns its result, or the
// zero T plus a *PointError once every attempt has failed.
//
// fn receives the attempt number (0 on the first try) and the attempt's
// budget clock; a point that builds a rig must wire the clock into the
// rig so the event loop can honor the deadline. Each retry calls fn
// with the same index-derived inputs, so — fn being pure in its seed —
// a successful retry returns bytes identical to a first-try success.
func Run[T any](s *Supervisor, p Point, fn func(attempt int, clock *sim.Clock) T) (T, *PointError) {
	var last *PointError
	for attempt := 0; attempt <= s.opt.Retries; attempt++ {
		if attempt > 0 {
			s.retries.Inc()
			s.opt.Sleep(s.backoffFor(attempt))
		}
		v, perr := runAttempt(s, p, attempt, fn)
		if perr == nil {
			return v, nil
		}
		last = perr
	}
	last.Attempts = s.opt.Retries + 1
	s.gaps.Inc()
	var zero T
	return zero, last
}

// runAttempt runs one attempt with a fresh budget clock, converting any
// panic into a classified *PointError.
func runAttempt[T any](s *Supervisor, p Point, attempt int, fn func(int, *sim.Clock) T) (v T, perr *PointError) {
	clock := sim.NewClock(s.opt.Deadline)
	defer func() {
		if r := recover(); r != nil {
			perr = s.classify(p, attempt, r, debug.Stack())
		}
	}()
	s.opt.Chaos.inject(p, attempt, clock)
	v = fn(attempt, clock)
	return v, nil
}

// classify turns a recovered panic value into a PointError and bumps
// the matching counter. sim.Timeout — the budget check unwinding a hung
// rig — is a deadline kill; everything else is a recovered panic.
func (s *Supervisor) classify(p Point, attempt int, r any, stack []byte) *PointError {
	pe := &PointError{Point: p, Attempts: attempt + 1, Stack: stack}
	if to, ok := r.(sim.Timeout); ok {
		pe.Kind = KindDeadline
		pe.Cause = to.Error()
		s.deadlines.Inc()
		return pe
	}
	pe.Kind = KindPanic
	pe.Cause = fmt.Sprint(r)
	s.panics.Inc()
	return pe
}

// Chaos injects deterministic failures ahead of a point's first
// attempt, composing with whatever fault plan the point itself arms.
// Selection is by point index, so an injection schedule is identical at
// any engine parallelism.
type Chaos struct {
	// PanicNth makes the first attempt of every PanicNth-th point
	// (1-based) panic before the point function runs. 0 disables.
	PanicNth int
	// HangNth expires the budget clock of every HangNth-th point's
	// first attempt before the point function runs: the rig then hits
	// the cooperative budget check in its event loop and unwinds as a
	// deadline kill, exactly as a genuinely hung rig would. The point
	// must honor its clock (rigs built through the harness do). 0
	// disables.
	HangNth int
}

// DefaultChaos is the schedule the robustness matrix's chaos mode and
// the resilient-sweep example use: a panic every 5th point, a hang
// every 7th.
func DefaultChaos() *Chaos { return &Chaos{PanicNth: 5, HangNth: 7} }

// inject applies the schedule to one attempt. Points hit by both rules
// hang (the clock expires first).
func (c *Chaos) inject(p Point, attempt int, clock *sim.Clock) {
	if c == nil || attempt > 0 {
		return
	}
	if c.HangNth > 0 && (p.Index+1)%c.HangNth == 0 {
		clock.Expire()
		return
	}
	if c.PanicNth > 0 && (p.Index+1)%c.PanicNth == 0 {
		panic(fmt.Sprintf("chaos: injected panic at point %d (%s)", p.Index, p.Label))
	}
}
