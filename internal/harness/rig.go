package harness

import (
	"time"

	"reqlens/internal/core"
	"reqlens/internal/faults"
	"reqlens/internal/kernel"
	"reqlens/internal/loadgen"
	"reqlens/internal/machine"
	"reqlens/internal/netsim"
	"reqlens/internal/probes"
	"reqlens/internal/sim"
	"reqlens/internal/telemetry"
	"reqlens/internal/workloads"
)

// RigOptions configures one experiment instance.
type RigOptions struct {
	Seed    int64
	Profile machine.Profile // server hardware; zero value = AMD
	Netem   netsim.Config   // link shaping (Section V)
	Rate    float64         // offered RPS
	Conns   int             // client connections (0 = 4x workers)
	Probes  bool            // attach the eBPF probes

	// Stream additionally attaches the streaming observer (ring-buffer
	// event pipeline) alongside whatever Probes selects, so batch and
	// streaming views of the same kernel can be compared.
	Stream bool
	// StreamBytes sizes the streaming ring buffer (power of two; 0 =
	// core.DefaultStreamBytes). Deliberately undersizing it exercises
	// the drop path.
	StreamBytes int

	// Attribution attaches the sketch-based attribution pipeline
	// (core.Attribution): an unfiltered sys_enter probe attributing
	// syscall activity to every process through count-min + HashPipe
	// maps instead of exact per-PID state.
	Attribution bool

	// WaitStates attaches the scheduler-state observer
	// (core.WaitProfile): sched_switch/sched_wakeup programs decomposing
	// the server process's time into on-CPU / runnable / blocked — the
	// explanatory counterpart to the poll slack signal.
	WaitStates bool
	// AttributionOracle additionally maintains the exact per-tgid
	// counter map inside the attribution probe, for accuracy audits.
	// Implies nothing unless Attribution is set.
	AttributionOracle bool

	// SeparateClient puts the load generator on its own machine instead
	// of co-locating it with the server (the paper co-locates both
	// containers on one host; separation is an ablation).
	SeparateClient bool
	// Poisson switches the client to exponential interarrivals instead
	// of fixed-rate pacing (ablation).
	Poisson bool

	// CaptureArrivals, when positive, records the virtual send time of
	// up to that many client requests (loadgen.Client.Arrivals), for
	// determinism audits.
	CaptureArrivals int

	// Telemetry, when non-nil, instruments the rig's hot paths into the
	// given registry: simulation events, the server kernel's scheduler
	// and tracer, and any attached observers' ring accounting and
	// verifier cost. Telemetry is write-only — nothing in the rig reads
	// an instrument back — so an instrumented rig produces bit-identical
	// results to an uninstrumented one. Nil (the default) leaves every
	// hot-path counter a nil no-op: one nil check per event. The fleet
	// layer reads the registry back *after the fact* through the node's
	// Prometheus export (Node.Reg); that aggregation-plane read cannot
	// reach back into the simulation.
	Telemetry *telemetry.Registry

	// Clock, when non-nil, is the supervisor's execution budget for this
	// rig: the event loop checks it cooperatively every few hundred
	// events and unwinds with sim.Timeout once it expires, so a hung or
	// runaway rig is abandoned instead of stalling its engine worker. An
	// unexpired clock never perturbs the simulation. Nil = no budget.
	Clock *sim.Clock
}

// streamDrainEvery is how much simulated time Advance lets pass between
// ring-buffer drains when a streaming observer is attached. Fixed (and
// independent of the requested advance) so drain points land at
// deterministic simulation instants: drop counts under an undersized
// ring are then reproducible for a given seed.
const streamDrainEvery = 50 * time.Millisecond

// Node is one served instance: a server kernel running one workload
// with the observer(s) under evaluation attached, plus the node's own
// telemetry registry — everything a fleet member exports, and nothing
// client-side. It is the unit internal/fleet replicates: a Rig is one
// Node wired to a co-located load generator; a fleet.Cluster is many
// Nodes, each on a private simulation timeline, with the load plane
// split across them and the aggregation plane scraping Reg.
type Node struct {
	Env     *sim.Env
	ServerK *kernel.Kernel
	Net     *netsim.Network
	Server  workloads.Server

	// Obs is the attached core.Observer — the library under evaluation.
	// Nil when RigOptions.Probes is false.
	Obs *core.Observer

	// Stream is the attached core.StreamObserver — the ring-buffer event
	// pipeline. Nil when RigOptions.Stream is false.
	Stream *core.StreamObserver

	// Attr is the attached sketch-based attribution pipeline. Nil when
	// RigOptions.Attribution is false.
	Attr *core.Attribution

	// Wait is the attached scheduler-state observer. Nil when
	// RigOptions.WaitStates is false.
	Wait *core.WaitProfile

	// Faults is the armed fault controller. Nil until Arm is called.
	Faults *faults.Controller

	// Reg is the registry the node's hot paths are instrumented into
	// (RigOptions.Telemetry; nil when uninstrumented). The fleet scraper
	// serializes it with telemetry.WriteProm — this is the node's
	// "metrics endpoint".
	Reg *telemetry.Registry
}

// NewNode builds and starts the server side of an experiment on env: a
// server kernel with the given hardware profile, the workload, the
// observers selected by opt, and hot-path telemetry into opt.Telemetry.
// It does not create a client; NewRig adds the co-located load
// generator, and internal/fleet attaches one load-share client per
// node. opt.Rate, Conns, Poisson, SeparateClient and CaptureArrivals
// are client-side options and ignored here.
func NewNode(env *sim.Env, spec workloads.Spec, opt RigOptions) *Node {
	if opt.Profile.Name == "" {
		opt.Profile = machine.AMD()
	}
	serverProf := opt.Profile
	// The workload calibration assumes workloads.ServerCores cores; pin
	// the server allocation while keeping the profile's cost parameters.
	serverProf.Sockets = 1
	serverProf.CoresPerSock = workloads.ServerCores
	serverProf.ThreadsPerCore = 1

	n := &Node{
		Env:     env,
		ServerK: kernel.New(env, serverProf),
		Net:     netsim.New(env),
		Reg:     opt.Telemetry,
	}
	n.Server = workloads.Launch(n.ServerK, n.Net, spec, opt.Netem)

	cfg := core.Config{
		TGID:         n.Server.Process().TGID(),
		SendSyscalls: []int{spec.SendNR},
		RecvSyscalls: []int{spec.RecvNR},
		PollSyscalls: []int{spec.PollNR},
	}
	if opt.Probes {
		n.Obs = core.MustAttach(n.ServerK, cfg)
	}
	if opt.Stream {
		n.Stream = core.MustAttachStream(n.ServerK, cfg, opt.StreamBytes)
	}
	if opt.Attribution {
		n.Attr = core.MustAttachAttribution(n.ServerK, probes.AttributionConfig{
			SendSyscalls: []int{spec.SendNR},
			Oracle:       opt.AttributionOracle,
		})
	}
	if opt.WaitStates {
		n.Wait = core.MustAttachWaitProfile(n.ServerK, cfg.TGID, probes.WaitStateConfig{TrackTGID: cfg.TGID})
	}
	if opt.Telemetry != nil {
		// The server kernel carries the signals under study; a separate
		// client kernel stays uninstrumented so its ideal-machine
		// scheduling does not pollute the scheduler counters.
		env.Instrument(opt.Telemetry)
		n.ServerK.Instrument(opt.Telemetry)
		if n.Obs != nil {
			n.Obs.Instrument(opt.Telemetry)
		}
		if n.Stream != nil {
			n.Stream.Instrument(opt.Telemetry)
		}
		if n.Attr != nil {
			n.Attr.Instrument(opt.Telemetry)
		}
		if n.Wait != nil {
			n.Wait.Instrument(opt.Telemetry)
		}
	}
	return n
}

// Arm schedules plan's faults against the node's kernel (and the batch
// observer, for probe-churn), with offsets relative to the current
// simulated time — call it after warmup so fault windows land inside
// the measurement. The plan's Netem field is not applied here: link
// shaping is a whole-run property that experiments fold into
// RigOptions.Netem when building the node.
func (n *Node) Arm(plan faults.Plan) *faults.Controller {
	tgt := faults.Target{Kernel: n.ServerK, Net: n.Net}
	if n.Obs != nil {
		tgt.Probes = n.Obs
	}
	n.Faults = faults.MustArm(plan, tgt)
	return n.Faults
}

// Advance drives the node's simulation forward by d. With a streaming
// observer attached, it advances in fixed streamDrainEvery chunks and
// drains the ring after each, keeping the consumer ahead of the
// producers at deterministic simulation instants; without one it is
// Env.RunFor.
func (n *Node) Advance(d time.Duration) {
	if n.Stream == nil {
		n.Env.RunFor(d)
		return
	}
	for d > 0 {
		step := streamDrainEvery
		if d < step {
			step = d
		}
		n.Env.RunFor(step)
		// A RingStall fault pauses the consumer: producers keep filling
		// the ring and start dropping once it is full, exactly like a
		// wedged userspace reader.
		if n.Faults == nil || !n.Faults.RingStalled() {
			n.Stream.Poll()
		}
		d -= step
	}
}

// Close terminates all simulation goroutines of the node's environment.
// The node (and anything else sharing the environment) is unusable
// after.
func (n *Node) Close() { n.Env.Shutdown() }

// Rig is one fully wired experiment: a Node (simulation, server kernel,
// network, workload, observers) plus the client side — the ground-truth
// load generator, co-located or on its own machine.
type Rig struct {
	Node
	ClientK *kernel.Kernel
	Client  *loadgen.Client
}

// NewRig builds and starts a rig for spec. Traffic flows as soon as the
// simulation runs; call Warmup then Measure.
func NewRig(spec workloads.Spec, opt RigOptions) *Rig {
	env := sim.NewEnv(opt.Seed)
	env.SetClock(opt.Clock)
	r := &Rig{Node: *NewNode(env, spec, opt)}
	if opt.SeparateClient {
		clientProf := machine.Profile{
			Name: "client", Sockets: 1, CoresPerSock: 8, ThreadsPerCore: 1,
			TimeSlice: time.Millisecond, // ideal client: no syscall/switch cost
		}
		r.ClientK = kernel.New(env, clientProf)
	} else {
		// Paper setup: client and server containers share the machine.
		r.ClientK = r.ServerK
	}

	conns := opt.Conns
	if conns <= 0 {
		conns = 4 * spec.Workers
	}
	perOp := spec.ClientPerOpCost()
	if opt.SeparateClient {
		perOp = 0
	}
	r.Client = loadgen.New(r.ClientK, r.Server.Listener(), loadgen.Options{
		Rate:            opt.Rate,
		Conns:           conns,
		ReqSize:         spec.ReqSize,
		PerOpCost:       perOp,
		Poisson:         opt.Poisson,
		CaptureArrivals: opt.CaptureArrivals,
	})
	return r
}

// Warmup advances the simulation without measuring.
func (r *Rig) Warmup(d time.Duration) {
	r.Advance(d)
	if r.Obs != nil {
		r.Obs.Sample() // discard: rebases the observation window
	}
	if r.Stream != nil {
		r.Stream.Sample()
	}
	if r.Wait != nil {
		r.Wait.Sample()
	}
}

// Measurement is one window's paired ground truth and eBPF observations.
type Measurement struct {
	Load loadgen.Results
	Obs  core.Window // the library's view of the same window

	// Stream is the streaming observer's view of the same window (zero
	// when RigOptions.Stream is false). Its embedded Window equals Obs
	// bit-for-bit whenever Stream.Dropped stayed zero.
	Stream core.StreamWindow

	// Wait is the scheduler-state decomposition of the same window (zero
	// when RigOptions.WaitStates is false).
	Wait core.WaitWindow

	RPSObsv    float64 // Eq. 1 estimate from the send probe
	SendVarUS2 float64 // Eq. 2 variance of send deltas
	RecvVarUS2 float64
	PollMeanNS float64 // Fig. 4 slack signal
}

// Measure runs one measurement window of duration d and returns the
// paired observations.
func (r *Rig) Measure(d time.Duration) Measurement {
	r.Client.StartMeasurement()
	if r.Obs != nil {
		r.Obs.Sample() // rebase
	}
	if r.Stream != nil {
		r.Stream.Sample() // rebase
	}
	if r.Wait != nil {
		r.Wait.Sample() // rebase
	}
	r.Advance(d)
	m := Measurement{Load: r.Client.Snapshot()}
	if r.Obs != nil {
		w := r.Obs.Sample()
		m.Obs = w
		m.RPSObsv = w.Send.RatePerSec
		m.SendVarUS2 = w.Send.VarianceUS2
		m.RecvVarUS2 = w.Recv.VarianceUS2
		m.PollMeanNS = float64(w.Poll.MeanDuration)
	}
	if r.Stream != nil {
		m.Stream = r.Stream.Sample()
	}
	if r.Wait != nil {
		m.Wait = r.Wait.Sample()
	}
	return m
}
