package harness

import (
	"strings"
	"testing"
	"time"

	"reqlens/internal/netsim"
)

// These tests pin the renderers' gap contract (ISSUE satellite: audit
// render.go): a point lost to a supervision gap renders as the gap
// mark, never as a zero measurement, and no renderer emits NaN or Inf
// even on degenerate (empty / all-gap) inputs.

func assertClean(t *testing.T, s string) {
	t.Helper()
	for _, bad := range []string{"NaN", "Inf", "inf"} {
		if strings.Contains(s, bad) {
			t.Fatalf("render output contains %q:\n%s", bad, s)
		}
	}
}

func gappedSweep() SweepResult {
	return SweepResult{
		Workload: "silo",
		QoS:      500 * time.Microsecond,
		Points: []SweepPoint{
			{Level: 0.3, RealRPS: 3000, ObsvRPS: 2990, SendVarUS2: 10, PollMeanNS: 1000, P99: 100 * time.Microsecond},
			{Level: 0.6, Gap: true},
			{Level: 0.9, RealRPS: 9000, ObsvRPS: 8900, SendVarUS2: 90, PollMeanNS: 9000, P99: 900 * time.Microsecond, QoSFail: true},
		},
		QoSCrossIdx: 1, // the gapped point: the marker must be suppressed
	}
}

func TestRenderFig2Gaps(t *testing.T) {
	r := Fig2Result{
		Workload: "silo",
		Estimates: []Estimate{
			{Level: 0.3, RealRPS: 3000, ObsvRPS: 2990},
			{Level: 0.9, RealRPS: 9000, ObsvRPS: 8900},
		},
		Gaps: []string{"silo level=0.60"},
	}
	out := RenderFig2(r)
	assertClean(t, out)
	if !strings.Contains(out, gapMark) || !strings.Contains(out, "silo level=0.60") {
		t.Fatalf("gap footnote missing:\n%s", out)
	}
	if strings.Contains(RenderFig2(Fig2Result{Workload: "silo"}), gapMark) {
		t.Fatal("complete (if empty) result must not mention gaps")
	}
	assertClean(t, RenderFig2(Fig2Result{Workload: "silo"}))
}

func TestRenderFig3Fig4Gaps(t *testing.T) {
	r := gappedSweep()
	for name, render := range map[string]func(SweepResult) string{
		"fig3": RenderFig3, "fig4": RenderFig4,
	} {
		out := render(r)
		assertClean(t, out)
		if !strings.Contains(out, "gap levels") || !strings.Contains(out, "0.60") {
			t.Fatalf("%s: gap footnote missing:\n%s", name, out)
		}
		// The gapped point's zero measurements must not be plotted: a
		// zero SendVarUS2/PollMeanNS would drag normalization to 0.
		if strings.Contains(out, "0.00 ") && strings.Count(out, "*") > 2 {
			t.Fatalf("%s: gapped point appears plotted:\n%s", name, out)
		}
	}

	// All-gap sweep: no data at all, still no panic / NaN.
	all := SweepResult{Workload: "silo", QoSCrossIdx: -1,
		Points: []SweepPoint{{Level: 0.3, Gap: true}, {Level: 0.6, Gap: true}}}
	for _, render := range []func(SweepResult) string{RenderFig3, RenderFig4} {
		out := render(all)
		assertClean(t, out)
		if !strings.Contains(out, "(no data)") {
			t.Fatalf("all-gap sweep should render as no data:\n%s", out)
		}
	}
}

func TestRenderFig5Gaps(t *testing.T) {
	sw := gappedSweep()
	cfgs := []netsim.Config{{}, {Delay: 5 * time.Millisecond, Loss: 0.005}}
	r := Fig5Result{Workload: "silo", Configs: cfgs, Sweeps: []SweepResult{sw, sw}}
	out := RenderFig5(r)
	assertClean(t, out)
	if strings.Count(out, gapMark) != 4 { // 2 sweeps x (p99 + poll) for level 0.6
		t.Fatalf("want 4 gap cells, got %d:\n%s", strings.Count(out, gapMark), out)
	}
	empty := RenderFig5(Fig5Result{Workload: "silo"})
	assertClean(t, empty)
	if !strings.Contains(empty, "(no data)") {
		t.Fatalf("empty Fig5 should render as no data:\n%s", empty)
	}
}

func TestRenderTable2Gaps(t *testing.T) {
	rows := []Table2Row{
		{Workload: "silo", R2: []float64{0.99, 0.98}},
		{Workload: "data-caching", R2: []float64{0.97, 0}, Gapped: []bool{false, true}},
	}
	out := RenderTable2(rows, []string{"none", "lossy"})
	assertClean(t, out)
	if strings.Count(out, gapMark) != 2 { // the cell and the footnote
		t.Fatalf("want gapped cell + footnote:\n%s", out)
	}
	if strings.Contains(out, "0.0000") {
		t.Fatalf("gapped cell leaked a zero R^2:\n%s", out)
	}
	complete := RenderTable2(rows[:1], []string{"none", "lossy"})
	if strings.Contains(complete, gapMark) {
		t.Fatalf("complete table must not mention gaps:\n%s", complete)
	}
}

func TestRenderOverheadGaps(t *testing.T) {
	rs := []OverheadResult{
		{Workload: "silo", Level: 0.7, P99Off: 100 * time.Microsecond,
			P99On: 101 * time.Microsecond, OverheadPct: 1, PerSyscall: 50 * time.Nanosecond, CPUSharePct: 0.2},
		{Workload: "data-caching", Level: 0.7, Gaps: []string{"data-caching probes=on"}},
	}
	out := RenderOverhead(rs)
	assertClean(t, out)
	if !strings.Contains(out, "incomplete") || !strings.Contains(out, "data-caching probes=on") {
		t.Fatalf("gapped overhead row must say which arm was lost:\n%s", out)
	}
	// The gapped row must not print a fabricated 0% overhead.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "data-caching") && strings.Contains(line, "+0.00%") {
			t.Fatalf("gapped row leaked zero overhead:\n%s", out)
		}
	}
}

func TestRenderRobustnessGaps(t *testing.T) {
	rows := []RobustnessRow{
		{Workload: "silo", Baseline: 0.99,
			Plans: []PlanR2{{Plan: "cpu-offline", R2: 0.98, Delta: -0.01}},
			Gaps:  []string{"silo plan=cpu-offline level=0.60"}},
	}
	out := RenderRobustness(rows)
	assertClean(t, out)
	if !strings.Contains(out, "lost to supervision gaps") ||
		!strings.Contains(out, "silo plan=cpu-offline level=0.60") {
		t.Fatalf("gap footnote missing:\n%s", out)
	}
	rows[0].Gaps = nil
	if strings.Contains(RenderRobustness(rows), "supervision gaps") {
		t.Fatal("complete matrix must not mention gaps")
	}
}

func TestRenderStreamGaps(t *testing.T) {
	r := StreamAgreementResult{
		Workload: "silo",
		Points: []AgreementPoint{
			{Level: 0.3, Agree: true},
			{Level: 0.6, Gap: true},
		},
	}
	out := RenderStreamAgreement(r)
	assertClean(t, out)
	if strings.Count(out, gapMark) != 5 {
		t.Fatalf("gapped agreement row should blank all 5 cells:\n%s", out)
	}
	if !strings.Contains(out, "1 gap(s)") {
		t.Fatalf("summary must count gaps:\n%s", out)
	}

	dout := RenderStreamDrops(StreamDropProfile{Workload: "silo", RingBytes: 4096, Points: r.Points})
	assertClean(t, dout)
	if strings.Count(dout, gapMark) != 3 {
		t.Fatalf("gapped drop row should blank all 3 cells:\n%s", dout)
	}
}
