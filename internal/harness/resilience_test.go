package harness

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"reqlens/internal/faults"
	"reqlens/internal/resilience"
	"reqlens/internal/telemetry"
	"reqlens/internal/workloads"
)

// tinyOpts is a minimal-scale configuration for supervision tests that
// drive real rigs: small enough that chaos/retry tests re-running whole
// batches stay cheap.
func tinyOpts() ExpOptions {
	return ExpOptions{
		MinSends:  64,
		Estimates: 2,
		Levels:    []float64{0.3, 0.6},
		Warmup:    200 * time.Millisecond,
		OverWarm:  400 * time.Millisecond,
	}
}

// TestRunPointsPanicIsolation is the tentpole isolation contract: a
// panicking point neither terminates the process nor perturbs any other
// point's bytes, at every Parallelism setting.
func TestRunPointsPanicIsolation(t *testing.T) {
	compute := func(i int) []float64 {
		return []float64{float64(i) * 1.5, float64(i*i) / 3}
	}
	n := 7
	labels := make([]string, n)
	for i := range labels {
		labels[i] = fmt.Sprintf("p%d", i)
	}
	clean, _ := RunPoints(ExpOptions{Parallelism: 1}, labels,
		func(_ PointCtx, i int) []float64 { return compute(i) })

	for _, par := range []int{1, 2, 4} {
		reg := telemetry.New()
		var mu sync.Mutex
		var done []PointDone
		opt := ExpOptions{Parallelism: par, Supervise: true, Telemetry: reg,
			Progress: func(p PointDone) { mu.Lock(); done = append(done, p); mu.Unlock() }}
		out, st := RunPoints(opt, labels, func(_ PointCtx, i int) []float64 {
			if i == 2 {
				panic("probe exploded")
			}
			return compute(i)
		})
		for i := range out {
			if i == 2 {
				if out[i] != nil {
					t.Fatalf("par=%d: gapped slot not zero: %v", par, out[i])
				}
				continue
			}
			if !reflect.DeepEqual(out[i], clean[i]) {
				t.Fatalf("par=%d: point %d perturbed: %v != %v", par, i, out[i], clean[i])
			}
		}
		if len(st.Gaps) != 1 || st.Gaps[0].Index != 2 || st.Gaps[0].Kind != resilience.KindPanic {
			t.Fatalf("par=%d: gaps = %+v", par, st.Gaps)
		}
		if !strings.Contains(st.Gaps[0].Cause, "probe exploded") || st.Gaps[0].Label != "p2" {
			t.Fatalf("par=%d: gap detail lost: %+v", par, st.Gaps[0])
		}
		if got := st.GapLabels(); len(got) != 1 || got[0] != "p2" {
			t.Fatalf("par=%d: GapLabels = %v", par, got)
		}
		gapsFlagged := 0
		for _, p := range done {
			if p.Gap {
				gapsFlagged++
				if p.Index != 2 {
					t.Fatalf("par=%d: wrong point flagged: %+v", par, p)
				}
			}
		}
		if gapsFlagged != 1 {
			t.Fatalf("par=%d: progress gap flags = %d", par, gapsFlagged)
		}
		if got := reg.Counter("resilience_panics_recovered_total").Value(); got != 1 {
			t.Fatalf("par=%d: panic counter = %d", par, got)
		}
		if !strings.Contains(st.String(), "1 gaps") {
			t.Fatalf("par=%d: stats summary omits gaps: %s", par, st)
		}
	}
}

// TestSweepDeadlineKill drives a real rig whose budget is exhausted
// before it starts: the event loop's cooperative check unwinds it as a
// deadline kill and the sweep degrades to a gap-marked point instead of
// stalling or crashing.
func TestSweepDeadlineKill(t *testing.T) {
	reg := telemetry.New()
	opt := tinyOpts()
	opt.Parallelism = 1
	opt.Deadline = time.Nanosecond // expires before the first event fires
	opt.Telemetry = reg
	res := SaturationSweep(workloads.Silo(), opt)
	if len(res.Points) != 2 {
		t.Fatalf("points = %d", len(res.Points))
	}
	for i, p := range res.Points {
		if !p.Gap {
			t.Fatalf("point %d survived a 1ns budget: %+v", i, p)
		}
		if p.Level != opt.Levels[i] {
			t.Fatalf("gap point %d lost its level: %+v", i, p)
		}
	}
	if got := reg.Counter("resilience_deadline_kills_total").Value(); got != 2 {
		t.Fatalf("deadline counter = %d", got)
	}
	// A generous budget must not perturb the run.
	gen := tinyOpts()
	gen.Parallelism = 1
	plain := SaturationSweep(workloads.Silo(), gen)
	gen.Deadline = time.Hour
	budgeted := SaturationSweep(workloads.Silo(), gen)
	if !reflect.DeepEqual(plain, budgeted) {
		t.Fatalf("unexpired budget perturbed the sweep:\n%+v\n%+v", plain, budgeted)
	}
}

// TestChaosSweepIdentical is the seed-preserving-retry contract against
// real rigs: a sweep whose first attempts are panicked and hung by chaos
// recovers, through retries, to exactly the unperturbed sweep.
func TestChaosSweepIdentical(t *testing.T) {
	opt := tinyOpts()
	opt.Parallelism = 2
	plain := SaturationSweep(workloads.Silo(), opt)

	chaos := opt
	chaos.Retries = 2
	chaos.Deadline = time.Minute
	chaos.Chaos = &resilience.Chaos{PanicNth: 1, HangNth: 2} // point 0 panics, point 1 hangs
	chaos.Telemetry = telemetry.New()
	recovered := SaturationSweep(workloads.Silo(), chaos)
	if !reflect.DeepEqual(plain, recovered) {
		t.Fatalf("chaos + retries diverged from the clean sweep:\n%+v\n%+v", plain, recovered)
	}
	if got := chaos.Telemetry.Counter("resilience_retries_total").Value(); got < 2 {
		t.Fatalf("retry counter = %d, want >= 2 (both points injected)", got)
	}
	if got := chaos.Telemetry.Counter("resilience_gaps_total").Value(); got != 0 {
		t.Fatalf("gap counter = %d, want 0 (all recovered)", got)
	}
}

// TestRobustnessChaosIdentical: the robustness matrix's chaos level —
// fault plans composed with supervisor-injected panics/hangs — equals
// the unperturbed matrix value-for-value once retries recover every
// injection.
func TestRobustnessChaosIdentical(t *testing.T) {
	specs := []workloads.Spec{workloads.Silo()}
	plans := []faults.Plan{faults.CPUOfflinePlan(2)}
	opt := tinyOpts()
	opt.Parallelism = 2
	plain := RobustnessMatrix(specs, plans, opt)
	chaotic := RobustnessMatrix(specs, plans, ChaosOptions(opt))
	if !reflect.DeepEqual(plain, chaotic) {
		t.Fatalf("chaos matrix diverged:\n%+v\n%+v", plain, chaotic)
	}
	if len(chaotic) != 1 || len(chaotic[0].Gaps) != 0 {
		t.Fatalf("chaos matrix left gaps: %+v", chaotic)
	}
}

// TestResumeEngineSemantics covers the resume cache on a synthetic
// batch: cached points skip recomputation, are re-checkpointed so the
// resumed journal is itself resumable, and checkpoints from a different
// root seed are refused.
func TestResumeEngineSemantics(t *testing.T) {
	labels := []string{"a", "b", "c"}
	compute := func(i int) []float64 { return []float64{float64(i) + 0.25} }

	path := filepath.Join(t.TempDir(), "run.jsonl")
	j, err := telemetry.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	first, _ := RunPoints(ExpOptions{Parallelism: 1, Journal: j},
		labels, func(_ PointCtx, i int) []float64 { return compute(i) })
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate SIGKILL mid-append: drop the last checkpoint and tear the
	// remaining tail mid-line. The reader must keep the intact records.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cut := bytes.LastIndexByte(bytes.TrimRight(data, "\n"), '\n')
	torn := data[:cut+10] // keep a partial final line
	recs, err := telemetry.ReadJournal(bytes.NewReader(torn))
	if err != nil {
		t.Fatalf("torn journal must read: %v", err)
	}
	cps := telemetry.Checkpoints(recs)
	if len(cps) != 2 {
		t.Fatalf("checkpoints after tear = %d, want 2", len(cps))
	}

	// Resume: two cached, one recomputed; results identical.
	recomputed := 0
	reg := telemetry.New()
	j2, err := telemetry.OpenJournal(path + ".resumed")
	if err != nil {
		t.Fatal(err)
	}
	resumed, st := RunPoints(ExpOptions{Parallelism: 1, Resume: cps, Journal: j2, Telemetry: reg},
		labels, func(_ PointCtx, i int) []float64 { recomputed++; return compute(i) })
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, resumed) {
		t.Fatalf("resume diverged: %v != %v", resumed, first)
	}
	if recomputed != 1 || st.Cached != 2 {
		t.Fatalf("recomputed=%d cached=%d, want 1/2", recomputed, st.Cached)
	}
	if got := reg.Counter("harness_points_resumed_total").Value(); got != 2 {
		t.Fatalf("resumed counter = %d", got)
	}

	// Resume-of-resume: the resumed journal checkpoints all 3 points.
	f, err := os.Open(path + ".resumed")
	if err != nil {
		t.Fatal(err)
	}
	recs2, err := telemetry.ReadJournal(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if got := telemetry.Checkpoints(recs2); len(got) != 3 {
		t.Fatalf("resumed journal checkpoints = %d, want 3", len(got))
	}

	// A checkpoint written under another root seed must be refused.
	wrongSeed := ExpOptions{Parallelism: 1, Seed: 43, Resume: cps}
	recomputed = 0
	_, st = RunPoints(wrongSeed, labels, func(_ PointCtx, i int) []float64 { recomputed++; return compute(i) })
	if recomputed != 3 || st.Cached != 0 {
		t.Fatalf("wrong-seed resume: recomputed=%d cached=%d, want 3/0", recomputed, st.Cached)
	}

	// So must one whose recorded index disagrees with the point's batch
	// position — a label match alone is not proof it is the same point.
	shifted := map[string]telemetry.Record{}
	for k, r := range cps {
		r.Index++
		shifted[k] = r
	}
	recomputed = 0
	_, st = RunPoints(ExpOptions{Parallelism: 1, Resume: shifted}, labels,
		func(_ PointCtx, i int) []float64 { recomputed++; return compute(i) })
	if recomputed != 3 || st.Cached != 0 {
		t.Fatalf("index-mismatch resume: recomputed=%d cached=%d, want 3/0", recomputed, st.Cached)
	}
}

// TestResumeExperimentNamespacing is the regression test for checkpoint
// key collisions: SaturationSweep and StreamAgreement label their points
// identically ("<workload> level=X"), so in a journal covering both (as
// `reqlens all -journal F` records) the agreement run's checkpoints
// used to shadow the sweep's — and a resumed sweep silently replayed
// zero-valued SweepPoints unmarshalled from AgreementPoint JSON. With
// experiment-scoped keys both sets coexist and resuming the sweep
// replays the sweep's own bytes.
func TestResumeExperimentNamespacing(t *testing.T) {
	spec := workloads.Silo()
	opt := tinyOpts()
	opt.Parallelism = 1
	clean := SaturationSweep(spec, opt)

	path := filepath.Join(t.TempDir(), "all.jsonl")
	j, err := telemetry.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	jopt := opt
	jopt.Journal = j
	SaturationSweep(spec, jopt)
	StreamAgreement(spec, jopt) // same point labels, different result type
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := telemetry.ReadJournal(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	cps := telemetry.Checkpoints(recs)
	if want := 2 * len(opt.Levels); len(cps) != want {
		t.Fatalf("checkpoints = %d, want %d (both experiments kept)", len(cps), want)
	}

	ropt := opt
	ropt.Resume = cps
	var st RunStats
	ropt.Stats = func(s RunStats) { st = s }
	resumed := SaturationSweep(spec, ropt)
	if st.Cached != len(opt.Levels) {
		t.Fatalf("cached = %d, want %d (all sweep points replayed)", st.Cached, len(opt.Levels))
	}
	if !reflect.DeepEqual(clean, resumed) {
		t.Fatalf("resume replayed another experiment's checkpoints:\n%+v\n%+v", clean, resumed)
	}
}

// TestResumeBitIdentical is the kill-and-resume acceptance criterion:
// interrupt a journaled Fig2 run after k of n points, resume from the
// journal, and the assembled result — and its rendering — is
// byte-identical to the uninterrupted run (pinned by the checked-in
// golden file).
func TestResumeBitIdentical(t *testing.T) {
	if raceEnabled {
		t.Skip("byte-exact regression compare; re-running under -race adds no coverage")
	}
	spec := workloads.Silo()
	path := filepath.Join(t.TempDir(), "fig2.jsonl")
	j, err := telemetry.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	opt := Quick()
	opt.Supervise = true
	opt.Journal = j
	full := Fig2(spec, opt)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// "Kill" the run after 2 of 3 levels: keep only the first two
	// checkpoints, as a SIGKILL between checkpoint flushes would.
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := telemetry.ReadJournal(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	var kept []telemetry.Record
	seen := 0
	for _, r := range recs {
		if r.Kind == telemetry.KindCheckpoint {
			if seen >= 2 {
				continue
			}
			seen++
		}
		kept = append(kept, r)
	}
	cps := telemetry.Checkpoints(kept)
	if len(cps) != 2 {
		t.Fatalf("checkpoints kept = %d, want 2", len(cps))
	}

	for _, par := range []int{1, 3} {
		ropt := Quick()
		ropt.Supervise = true
		ropt.Parallelism = par
		ropt.Resume = cps
		resumed := Fig2(spec, ropt)
		if !reflect.DeepEqual(full, resumed) {
			t.Fatalf("par=%d: resumed Fig2 diverged from the uninterrupted run", par)
		}
		if RenderFig2(full) != RenderFig2(resumed) {
			t.Fatalf("par=%d: resumed rendering diverged", par)
		}
		// The golden file pins the uninterrupted bytes; the resumed run
		// must match it too.
		checkGolden(t, "fig2_silo.json", resumed)
	}
}
