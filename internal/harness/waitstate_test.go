package harness

import (
	"reflect"
	"testing"
	"time"

	"reqlens/internal/workloads"
)

func quickWaitResult(t *testing.T, parallel int) WaitStateResult {
	t.Helper()
	opt := Quick()
	opt.Seed = 42
	opt.Parallelism = parallel
	return WaitStateSweep([]workloads.Spec{workloads.Silo()}, opt)
}

// waitResultPoints flattens every measured cell of a result.
func waitResultPoints(r WaitStateResult) []WaitPoint {
	var ps []WaitPoint
	for _, w := range r.Workloads {
		ps = append(ps, w.Points...)
	}
	for _, d := range r.Diagnosis {
		ps = append(ps, d.Point)
	}
	return ps
}

// The decomposition is a partition: on any window with scheduler
// activity the three shares must sum to exactly 1 (within float
// division noise) and each lie in [0,1].
func TestWaitSharesSumToOne(t *testing.T) {
	measured := 0
	for _, p := range waitResultPoints(quickWaitResult(t, 0)) {
		if p.Gap {
			continue
		}
		if p.OnCPU+p.Runnable+p.Blocked <= 0 {
			t.Fatalf("%s level=%.2f: no accounted time", p.Workload, p.Level)
		}
		measured++
		sum := p.OnCPUShare + p.RunnableShare + p.BlockedShare
		if sum < 1-1e-9 || sum > 1+1e-9 {
			t.Fatalf("%s level=%.2f: shares sum to %v", p.Workload, p.Level, sum)
		}
		for _, s := range []float64{p.OnCPUShare, p.RunnableShare, p.BlockedShare} {
			if s < 0 || s > 1 {
				t.Fatalf("%s level=%.2f: share %v out of range", p.Workload, p.Level, s)
			}
		}
	}
	if measured == 0 {
		t.Fatal("no measured points")
	}
}

func TestWaitStateSweepParallelDeterminism(t *testing.T) {
	seq := quickWaitResult(t, 1)
	par := quickWaitResult(t, 2)
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("parallel sweep differs from sequential:\nseq %+v\npar %+v", seq, par)
	}
	if RenderWaitStates(seq) != RenderWaitStates(par) || RenderWaitFolded(seq) != RenderWaitFolded(par) {
		t.Fatal("rendered output differs across Parallelism")
	}
}

// The headline claim: wait-state shares attribute an inflated p99 to
// its cause. Saturation and a noisy tenant move time into runnable
// (CPU queueing); a delayed link moves it into blocked and leaves the
// run queue empty.
func TestWaitStateDiagnosisAttribution(t *testing.T) {
	r := quickWaitResult(t, 0)
	byName := map[string]WaitPoint{}
	for _, d := range r.Diagnosis {
		if d.Point.Gap {
			t.Fatalf("diagnosis %s lost to a gap", d.Scenario)
		}
		byName[d.Scenario] = d.Point
	}
	base, ok := byName["baseline"]
	if !ok {
		t.Fatal("no baseline scenario")
	}
	over := byName["overload"]
	netem := byName["netem-delay-10ms"]
	noisy := byName["noisy-neighbor"]

	if over.RunnableShare < base.RunnableShare+0.05 {
		t.Fatalf("overload runnable %.3f vs baseline %.3f: saturation not visible",
			over.RunnableShare, base.RunnableShare)
	}
	if noisy.RunnableShare < base.RunnableShare+0.05 {
		t.Fatalf("noisy runnable %.3f vs baseline %.3f: contention not visible",
			noisy.RunnableShare, base.RunnableShare)
	}
	if netem.BlockedShare <= base.BlockedShare {
		t.Fatalf("netem blocked %.3f vs baseline %.3f: delay should deepen blocking",
			netem.BlockedShare, base.BlockedShare)
	}
	if netem.RunnableShare > base.RunnableShare+0.02 {
		t.Fatalf("netem runnable %.3f vs baseline %.3f: a delayed link must not look like queueing",
			netem.RunnableShare, base.RunnableShare)
	}
	// The delayed node is slow by the client's clock but idle by the
	// scheduler's — the pair no single signal provides.
	if netem.P99 < 2*base.P99 {
		t.Fatalf("netem p99 %v vs baseline %v: delay not visible client-side", netem.P99, base.P99)
	}

	// Sweep side: the runnable share inflects upward as load approaches
	// the failure point.
	pts := r.Workloads[0].Points
	if first, last := pts[0], pts[len(pts)-1]; last.RunnableShare <= first.RunnableShare {
		t.Fatalf("runnable share did not grow with load: %.4f -> %.4f",
			first.RunnableShare, last.RunnableShare)
	}
}

// TestGoldenWaitStates pins the quick silo wait-state study — raw JSON
// plus the exact text the `reqlens waitstates -quick -workload silo`
// invocation prints (table + folded stacks), which make check diffs
// against the real binary.
func TestGoldenWaitStates(t *testing.T) {
	if raceEnabled {
		t.Skip("byte-exact regression compare; re-running under -race adds no coverage")
	}
	r := quickWaitResult(t, 0)
	checkGolden(t, "waitstates.json", r)
	txt := RenderWaitStates(r) + "\n" + RenderWaitFolded(r)
	checkGoldenBytes(t, "waitstates.txt", []byte(txt))
}

// The wait-state pair fires on every scheduler transition — far more
// often than the syscall probes — so its cost needs its own Section VI
// style pin: observing the server at memcached's event rate must tax
// the machine (ServerCores over the run) by less than 1%. The per-tgid
// early filter is what keeps the co-located client's own context
// switches out of that budget.
func TestWaitStateProbeCPUShareBelowOnePercent(t *testing.T) {
	opt := Quick()
	opt.MinSends = 256
	spec := workloads.DataCaching()
	rate := 0.7 * spec.FailureRPS
	rig := NewRig(spec, RigOptions{Seed: 42, Rate: rate, WaitStates: true})
	defer rig.Close()
	start := time.Duration(rig.ServerK.Now())
	rig.Warmup(opt.Warmup)
	rig.Measure(windowFor(opt.MinSends, rate))
	if n := rig.ServerK.Tracer().RunErrors(); n != 0 {
		t.Fatalf("%d probe faults: %v", n, rig.ServerK.Tracer().LastError())
	}
	elapsed := time.Duration(rig.ServerK.Now()) - start
	var cost time.Duration
	for _, th := range rig.Server.Process().Threads() {
		cost += th.ProbeCost()
	}
	if cost <= 0 {
		t.Fatal("wait-state probes charged no cost — measuring nothing")
	}
	share := 100 * float64(cost) / float64(elapsed*workloads.ServerCores)
	if share >= 1 {
		t.Fatalf("wait-state probe machine share = %.3f%%, want < 1%%", share)
	}
}
