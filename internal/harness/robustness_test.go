package harness

import (
	"reflect"
	"testing"
	"time"

	"reqlens/internal/faults"
	"reqlens/internal/netsim"
	"reqlens/internal/workloads"
)

// TestRobustnessMatrixParallelDeterminism is the matrix's engine
// guarantee: for a fixed seed the full workload x plan x level grid is
// bit-identical across Parallelism settings, fault injections included.
func TestRobustnessMatrixParallelDeterminism(t *testing.T) {
	opt := Quick()
	opt.Levels = []float64{0.4, 0.8}
	plans := []faults.Plan{
		faults.CPUOfflinePlan(2),
		faults.ClockJitterPlan(5 * time.Microsecond),
		faults.DelayPlan(5 * time.Millisecond),
	}
	seq := opt
	seq.Parallelism = 1
	par := opt
	par.Parallelism = 4

	specs := []workloads.Spec{workloads.Silo()}
	a := RobustnessMatrix(specs, plans, seq)
	b := RobustnessMatrix(specs, plans, par)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("parallel robustness matrix differs from sequential:\nseq %+v\npar %+v", a, b)
	}
}

// TestRobustnessBaselineMatchesTable2 checks the matrix's implicit
// fault-free plan reproduces the plain Fig2/Table2 windows exactly:
// same R^2 bit-for-bit, because the empty plan arms nothing and draws
// nothing.
func TestRobustnessBaselineMatchesTable2(t *testing.T) {
	opt := Quick()
	specs := []workloads.Spec{workloads.Silo()}
	rows := RobustnessMatrix(specs, nil, opt)
	if len(rows) != 1 || len(rows[0].Plans) != 0 {
		t.Fatalf("unexpected matrix shape: %+v", rows)
	}
	t2 := Table2(specs, []netsim.Config{{}}, opt)
	if rows[0].Baseline != t2[0].R2[0] {
		t.Fatalf("baseline R2 %v != Table2 clean R2 %v (no-fault plan must be bit-identical)",
			rows[0].Baseline, t2[0].R2[0])
	}
	f2 := Fig2(specs[0], opt)
	if rows[0].Baseline != f2.Fit.R2 {
		t.Fatalf("baseline R2 %v != Fig2 R2 %v", rows[0].Baseline, f2.Fit.R2)
	}
}

// TestRobustnessNetemDeltas reproduces the paper's Table II finding
// through the fault-plan path: injected delay and loss leave the Eq. 1
// correlation essentially unchanged (|R^2 delta| < 0.02).
func TestRobustnessNetemDeltas(t *testing.T) {
	opt := Quick()
	plans := []faults.Plan{
		faults.DelayPlan(10 * time.Millisecond),
		faults.LossPlan(0.01),
	}
	rows := RobustnessMatrix([]workloads.Spec{workloads.Silo()}, plans, opt)
	row := rows[0]
	if row.Baseline < 0.95 {
		t.Fatalf("degenerate baseline R2 %v", row.Baseline)
	}
	for _, p := range row.Plans {
		if d := p.Delta; d < -0.02 || d > 0.02 {
			t.Errorf("plan %s: R2 delta %+.4f exceeds the paper's robustness bound", p.Plan, d)
		}
	}
}

// TestKernelFaultPlansPerturbButCorrelate arms the kernel-side
// injectors and checks two things: the faults demonstrably ran
// (Applied is non-empty at rig level), and the correlation survives
// with a usable R^2 — the claim that motivates in-kernel metrics.
func TestKernelFaultPlansPerturbButCorrelate(t *testing.T) {
	if raceEnabled {
		t.Skip("single-threaded physics check; re-running under -race adds no coverage")
	}
	opt := Quick()
	opt.Levels = []float64{0.4, 0.8}
	plans := []faults.Plan{
		faults.MigrationStormPlan(500 * time.Microsecond),
		faults.NoisyNeighborPlan(4),
		faults.ClockJitterPlan(5 * time.Microsecond),
	}
	rows := RobustnessMatrix([]workloads.Spec{workloads.DataCaching()}, plans, opt)
	for _, p := range rows[0].Plans {
		if p.R2 < 0.9 {
			t.Errorf("plan %s: R2 %v collapsed under a kernel-side fault", p.Plan, p.R2)
		}
	}
}

// TestRigArmAppliesFaults exercises the rig-level integration directly:
// a plan armed on a live rig perturbs the kernel and restores it.
func TestRigArmAppliesFaults(t *testing.T) {
	spec := workloads.Silo()
	rig := NewRig(spec, RigOptions{Seed: 5, Rate: 0.4 * spec.FailureRPS, Probes: true})
	defer rig.Close()
	rig.Warmup(200 * time.Millisecond)
	plan := faults.Plan{Name: "mix", Seed: 2, Faults: []faults.Fault{
		{Kind: faults.CPUOffline, CPUs: 3, Duration: 40 * time.Millisecond},
		{Kind: faults.ProbeChurn, Start: 10 * time.Millisecond, Duration: 20 * time.Millisecond},
	}}
	attached := rig.ServerK.Tracer().Attached()
	ctl := rig.Arm(plan)
	rig.Advance(time.Millisecond) // faults apply at their scheduled instants
	if rig.ServerK.OnlineCPUs() != workloads.ServerCores-3 {
		t.Fatalf("offline fault not applied: %d CPUs online", rig.ServerK.OnlineCPUs())
	}
	rig.Advance(14 * time.Millisecond)
	if got := rig.ServerK.Tracer().Attached(); got != 0 {
		t.Fatalf("churn window: %d links still attached, want 0", got)
	}
	rig.Advance(100 * time.Millisecond)
	if got := rig.ServerK.Tracer().Attached(); got != attached {
		t.Fatalf("after churn window: %d links, want %d", got, attached)
	}
	if rig.ServerK.OnlineCPUs() != workloads.ServerCores {
		t.Fatalf("CPUs not restored: %d online", rig.ServerK.OnlineCPUs())
	}
	ap := ctl.Applied()
	if ap["cpu-offline"] != 1 || ap["probe-churn"] != 1 {
		t.Fatalf("Applied = %v", ap)
	}
	if ctl.Err() != nil {
		t.Fatalf("controller error: %v", ctl.Err())
	}
	// The observer keeps counting after reattach.
	rig.Obs.Sample()
	rig.Advance(100 * time.Millisecond)
	if w := rig.Obs.Sample(); w.Send.Calls == 0 {
		t.Fatal("no sends observed after probe reattach")
	}
}

// TestRingStallForcesDrops opens a stall window longer than the ring
// can absorb and checks the producer-side drop path fires; the same
// rig without the stall keeps the ring lossless.
func TestRingStallForcesDrops(t *testing.T) {
	spec := workloads.DataCaching()
	run := func(stall bool) uint64 {
		rig := NewRig(spec, RigOptions{
			Seed: 9, Rate: 0.2 * spec.FailureRPS,
			Probes: true, Stream: true, StreamBytes: 1 << 18,
		})
		defer rig.Close()
		rig.Warmup(200 * time.Millisecond)
		if stall {
			rig.Arm(faults.RingStallPlan(10*time.Millisecond, 400*time.Millisecond))
		}
		rig.Measure(600 * time.Millisecond)
		return rig.Stream.Sample().Dropped
	}
	if d := run(false); d != 0 {
		t.Fatalf("unstalled ring dropped %d events (ring too small for the test's rate)", d)
	}
	if d := run(true); d == 0 {
		t.Fatal("stalled ring dropped nothing: stall window did not pressure the ring")
	}
}
