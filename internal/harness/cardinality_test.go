package harness

import "testing"

// quickCards is the reduced sweep used by tests and the CI smoke leg.
func quickCards() []int { return []int{100, 1_000, 10_000} }

// TestCardinalitySweepBounds checks the sweep's own acceptance
// criteria at quick scale: the count-min violation fraction stays
// within δ at every cardinality and top-K recall is perfect while the
// key space still fits the pipe.
func TestCardinalitySweepBounds(t *testing.T) {
	r := CardinalitySweep(quickCards(), Quick())
	if len(r.Points) != 3 {
		t.Fatalf("got %d points, want 3", len(r.Points))
	}
	for _, p := range r.Points {
		if p.Gap {
			t.Fatalf("unexpected gap at keys=%d", p.Keys)
		}
		if !p.WithinBound {
			t.Fatalf("keys=%d: violation fraction %.4f above δ %.4f", p.Keys, p.ViolationFrac, p.Delta)
		}
		if p.RecallAtK < 0.9 {
			t.Fatalf("keys=%d: recall@%d = %.2f, want >= 0.9", p.Keys, p.K, p.RecallAtK)
		}
		if p.Updates != 3*uint64(p.Keys) {
			t.Fatalf("keys=%d: updates = %d, want %d (one pass + 2x zipf)", p.Keys, p.Updates, 3*p.Keys)
		}
	}
	// Memory crossover: the fixed sketch loses at 100 keys and wins by
	// 10^4; full scale (1e6) reaches the >= 100x regime.
	if r.Points[0].MemRatio >= 1 {
		t.Fatalf("100 keys: mem ratio %.2f, expected exact map to win", r.Points[0].MemRatio)
	}
	if r.Points[2].MemRatio <= 1 {
		t.Fatalf("10k keys: mem ratio %.2f, expected sketch to win", r.Points[2].MemRatio)
	}
}

// TestCardinalitySweepParallelDeterminism pins the engine convention:
// the sweep's bytes are identical at any Parallelism.
func TestCardinalitySweepParallelDeterminism(t *testing.T) {
	seq := Quick()
	seq.Parallelism = 1
	par := Quick()
	par.Parallelism = 3
	a := CardinalitySweep(quickCards(), seq)
	b := CardinalitySweep(quickCards(), par)
	if len(a.Points) != len(b.Points) {
		t.Fatalf("point counts differ: %d vs %d", len(a.Points), len(b.Points))
	}
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			t.Fatalf("point %d differs across parallelism:\n  seq: %+v\n  par: %+v",
				i, a.Points[i], b.Points[i])
		}
	}
}

// TestGoldenCardinality pins the quick sweep byte-for-byte: the sketch
// hash functions, the compiled helper path and the Zipf stream all
// feed these numbers.
func TestGoldenCardinality(t *testing.T) {
	if raceEnabled {
		t.Skip("byte-exact regression compare; re-running under -race adds no coverage")
	}
	r := CardinalitySweep(quickCards(), Quick())
	checkGolden(t, "cardinality.json", r)
	// The rendered table is goldened too: `make check` diffs the real
	// binary's `reqlens cardinality -quick` output against this file.
	checkGoldenBytes(t, "cardinality.txt", []byte(RenderCardinality(r)))
}
