package harness

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"reqlens/internal/telemetry"
	"reqlens/internal/workloads"
)

// simSnapshot filters a registry snapshot down to simulation-derived
// instruments: everything except the engine's harness_* wall-clock
// metrics, which legitimately vary run to run.
func simSnapshot(r *telemetry.Registry) map[string]float64 {
	out := map[string]float64{}
	for k, v := range r.Snapshot() {
		if strings.HasPrefix(k, "harness_") {
			continue
		}
		out[k] = v
	}
	return out
}

// TestTelemetryParallelDeterminism is the tentpole invariant: enabling
// telemetry must not change experiment results, and the merged run-level
// counters must themselves be bit-identical across Parallelism settings
// (per-point registries fold by commutative addition).
func TestTelemetryParallelDeterminism(t *testing.T) {
	spec := workloads.DataCaching()

	base := Fig2(spec, Quick()) // telemetry off: the reference result

	run := func(parallelism int) (Fig2Result, map[string]float64) {
		opt := Quick()
		opt.Parallelism = parallelism
		opt.Telemetry = telemetry.New()
		res := Fig2(spec, opt)
		return res, simSnapshot(opt.Telemetry)
	}
	seqRes, seqMetrics := run(1)
	parRes, parMetrics := run(4)

	if !reflect.DeepEqual(base, seqRes) {
		t.Fatalf("telemetry changed results:\noff = %+v\non  = %+v", base, seqRes)
	}
	if !reflect.DeepEqual(seqRes, parRes) {
		t.Fatalf("results diverged across Parallelism:\nseq = %+v\npar = %+v", seqRes, parRes)
	}
	if !reflect.DeepEqual(seqMetrics, parMetrics) {
		t.Fatalf("merged counters diverged across Parallelism:\nseq = %v\npar = %v", seqMetrics, parMetrics)
	}
	for _, name := range []string{
		"sim_events_total",
		"sched_dispatches_total",
		"sched_ctx_switches_total",
		"trace_tracepoint_fires_total",
		"vm_runs_total",
		"vm_instructions_total",
		"vm_helper_calls_total",
		"vm_map_ops_total",
		"verifier_states_total",
		"verifier_programs_total",
	} {
		if seqMetrics[name] == 0 {
			t.Errorf("%s = 0; a probed Fig2 run must exercise it", name)
		}
	}
	if seqMetrics["vm_run_errors_total"] != 0 {
		t.Errorf("vm_run_errors_total = %v, want 0", seqMetrics["vm_run_errors_total"])
	}
}

// TestTelemetryPromJournalRoundTrip drives one instrumented, journaled
// experiment and checks both export paths end to end: the Prometheus
// text dump parses back to the registry's values, and the JSONL journal
// reads back and renders.
func TestTelemetryPromJournalRoundTrip(t *testing.T) {
	var jbuf bytes.Buffer
	opt := Quick()
	opt.Telemetry = telemetry.New()
	opt.Journal = telemetry.NewJournal(&jbuf)
	spec := workloads.DataCaching()
	Fig2(spec, opt)

	var pbuf bytes.Buffer
	if err := opt.Telemetry.WriteProm(&pbuf); err != nil {
		t.Fatalf("WriteProm: %v", err)
	}
	parsed, err := telemetry.ParseProm(bytes.NewReader(pbuf.Bytes()))
	if err != nil {
		t.Fatalf("ParseProm: %v", err)
	}
	if got, want := parsed["sim_events_total"], float64(opt.Telemetry.Counter("sim_events_total").Value()); got != want {
		t.Fatalf("round-tripped sim_events_total = %v, want %v", got, want)
	}
	if parsed["harness_points_total"] != float64(len(opt.Levels)) {
		t.Fatalf("harness_points_total = %v, want %d", parsed["harness_points_total"], len(opt.Levels))
	}

	recs, err := telemetry.ReadJournal(bytes.NewReader(jbuf.Bytes()))
	if err != nil {
		t.Fatalf("ReadJournal: %v", err)
	}
	kinds := map[string]int{}
	for _, rec := range recs {
		kinds[rec.Kind]++
		if rec.DurNS < 0 {
			t.Fatalf("record %q has negative duration %d", rec.Name, rec.DurNS)
		}
	}
	if kinds[telemetry.KindExperiment] != 1 {
		t.Fatalf("journal has %d experiment spans, want 1", kinds[telemetry.KindExperiment])
	}
	if kinds[telemetry.KindPoint] != len(opt.Levels) {
		t.Fatalf("journal has %d point spans, want %d", kinds[telemetry.KindPoint], len(opt.Levels))
	}
	if want := len(opt.Levels) * opt.Estimates; kinds[telemetry.KindWindow] != want {
		t.Fatalf("journal has %d window spans, want %d", kinds[telemetry.KindWindow], want)
	}

	rendered := telemetry.RenderJournal(recs, 3)
	for _, want := range []string{"phase", "point", "window", "experiment"} {
		if !strings.Contains(rendered, want) {
			t.Fatalf("rendered journal missing %q:\n%s", want, rendered)
		}
	}
}
