//go:build race

package harness

// raceEnabled reports whether this test binary was built with -race.
// Pure regression tests (byte-exact golden compares, R² physics
// checks) skip under the race gate: they re-execute the same
// single-threaded simulation many times slower without adding any
// concurrency coverage, and the gate's job is the parallel engine.
const raceEnabled = true
