package harness

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"reqlens/internal/ebpf"
)

// Cardinality-sweep geometry: one count-min sketch and one HashPipe,
// shared by every swept cardinality so the table reads as "fixed
// memory, growing key space". The exact-map comparison charges 16
// bytes per key (8-byte key + 8-byte counter), the entry payload a
// BPF_MAP_TYPE_HASH would store — kernel bucket overhead is ignored,
// which only understates the sketch's advantage.
const (
	cardCMSWidth        = 2048
	cardCMSDepth        = 4
	cardTopStages       = 4
	cardTopSlots        = 512
	cardTopK            = 10
	cardExactEntryBytes = 16
)

// DefaultCardinalities is the paper-scale sweep: 1e2 .. 1e6 distinct
// keys through fixed sketch memory.
func DefaultCardinalities() []int {
	return []int{100, 1_000, 10_000, 100_000, 1_000_000}
}

// CardinalityPoint is one row of the accuracy-vs-memory table: a fixed
// sketch geometry loaded with a key space of the given cardinality.
type CardinalityPoint struct {
	Keys    int    // distinct keys streamed (every key appears)
	Updates uint64 // total increments (N)

	SketchBytes int     // CMS + HashPipe footprint
	ExactBytes  int     // exact per-key map at 16 B/entry
	MemRatio    float64 // ExactBytes / SketchBytes

	Bound         uint64  // εN with ε = e/width
	MaxErr        uint64  // worst per-key overestimate
	MeanErr       float64 // mean per-key overestimate
	ViolationFrac float64 // fraction of keys with error > Bound
	Delta         float64 // δ = e^-depth, the allowed violation fraction
	WithinBound   bool    // ViolationFrac <= Delta

	RecallAtK float64 // HashPipe top-K recall vs the exact oracle
	K         int

	// Gap marks a cardinality that failed under supervision; only Keys
	// is meaningful. Absent from JSON on complete runs.
	Gap bool `json:",omitempty"`
}

// CardinalityResult is the full sweep.
type CardinalityResult struct {
	CMSWidth, CMSDepth  int
	TopStages, TopSlots int
	K                   int
	Points              []CardinalityPoint
}

// cardProgram builds the compiled feeder program: every Run applies
// cms_update and hashpipe_insert with the key and increment read
// straight from the 16-byte ctx, so the sweep measures the same map
// path a production probe executes.
func cardProgram(cms *ebpf.CMS, pipe *ebpf.HashPipe) *ebpf.Program {
	return ebpf.MustLoad(ebpf.ProgramSpec{
		Name: "cardinality",
		Insns: []ebpf.Instruction{
			ebpf.Mov64Reg(ebpf.R6, ebpf.R1),
			ebpf.LoadMapFD(ebpf.R1, 1)[0], ebpf.LoadMapFD(ebpf.R1, 1)[1],
			ebpf.Mov64Reg(ebpf.R2, ebpf.R6),
			ebpf.LoadMem(ebpf.R3, ebpf.R6, 8, ebpf.SizeDW),
			ebpf.Call(ebpf.HelperCMSUpdate),
			ebpf.LoadMapFD(ebpf.R1, 2)[0], ebpf.LoadMapFD(ebpf.R1, 2)[1],
			ebpf.Mov64Reg(ebpf.R2, ebpf.R6),
			ebpf.LoadMem(ebpf.R3, ebpf.R6, 8, ebpf.SizeDW),
			ebpf.Call(ebpf.HelperHashPipeInsert),
			ebpf.Exit(),
		},
		Maps:    map[int32]ebpf.Map{1: cms, 2: pipe},
		CtxSize: 16,
		Backend: ebpf.BackendCompiled,
	})
}

// cardinalityPoint loads one cardinality through a fresh sketch pair:
// one pass over every key (so the cardinality is exact), then 2x extra
// Zipf-skewed draws (s = 1.2, the heavy tail per-PID traffic shows),
// all pushed through the compiled program. Pure in (keys, seed).
func cardinalityPoint(keys int, seed int64) CardinalityPoint {
	cms := ebpf.NewCMS("card_cms", 8, cardCMSWidth, cardCMSDepth)
	pipe := ebpf.NewHashPipe("card_top", 8, cardTopStages, cardTopSlots)
	prog := cardProgram(cms, pipe)
	env := &ebpf.FixedEnv{}
	ctx := make([]byte, 16)
	binary.LittleEndian.PutUint64(ctx[8:16], 1) // inc = 1

	oracle := make(map[uint64]uint64, keys)
	push := func(id uint64) {
		binary.LittleEndian.PutUint64(ctx[0:8], id)
		if _, _, err := prog.Run(ctx, env); err != nil {
			panic(fmt.Sprintf("cardinality feeder fault: %v", err))
		}
		oracle[id]++
	}
	for id := 0; id < keys; id++ {
		push(uint64(id))
	}
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, 1.2, 1, uint64(keys-1))
	for i := 0; i < 2*keys; i++ {
		push(z.Uint64())
	}

	p := CardinalityPoint{
		Keys:        keys,
		Updates:     cms.Total(),
		SketchBytes: cms.Bytes() + pipe.Bytes(),
		ExactBytes:  keys * cardExactEntryBytes,
		Bound:       cms.ErrorBound(),
		Delta:       cms.Delta(),
		K:           cardTopK,
	}
	p.MemRatio = float64(p.ExactBytes) / float64(p.SketchBytes)

	var key [8]byte
	var sumErr, violations uint64
	for id, truth := range oracle {
		binary.LittleEndian.PutUint64(key[:], id)
		est := cms.Estimate(key[:])
		if est < truth {
			panic(fmt.Sprintf("cardinality: cms underestimated key %d (%d < %d)", id, est, truth))
		}
		err := est - truth
		sumErr += err
		if err > p.MaxErr {
			p.MaxErr = err
		}
		if err > p.Bound {
			violations++
		}
	}
	p.MeanErr = float64(sumErr) / float64(len(oracle))
	p.ViolationFrac = float64(violations) / float64(len(oracle))
	p.WithinBound = p.ViolationFrac <= p.Delta

	// recall@K: HashPipe candidates vs the exact oracle ranking
	// (count desc, key asc — both sides deterministic).
	ids := make([]uint64, 0, len(oracle))
	for id := range oracle {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		ci, cj := oracle[ids[i]], oracle[ids[j]]
		if ci != cj {
			return ci > cj
		}
		return ids[i] < ids[j]
	})
	if len(ids) > cardTopK {
		ids = ids[:cardTopK]
	}
	got := make(map[uint64]bool, cardTopK)
	for _, e := range pipe.TopK(cardTopK) {
		got[binary.LittleEndian.Uint64(e.Key)] = true
	}
	hits := 0
	for _, id := range ids {
		if got[id] {
			hits++
		}
	}
	p.RecallAtK = float64(hits) / float64(len(ids))
	return p
}

// CardinalitySweep pushes each cardinality in cards through the fixed
// sketch geometry and reports accuracy (count-min error vs the εN
// bound, HashPipe recall@K) against memory (sketch vs exact map).
// Cardinalities run as engine points: deterministic at any
// Parallelism, checkpointable, resumable. Nil cards defaults to
// DefaultCardinalities.
func CardinalitySweep(cards []int, opt ExpOptions) CardinalityResult {
	if len(cards) == 0 {
		cards = DefaultCardinalities()
	}
	opt = opt.withDefaults()
	opt, sp := opt.expScope("cardinality")
	defer opt.expEnd(sp)
	labels := make([]string, len(cards))
	for i, k := range cards {
		labels[i] = fmt.Sprintf("cardinality keys=%d", k)
	}
	points, st := RunPoints(opt, labels, func(pc PointCtx, i int) CardinalityPoint {
		pt := opt.pointBegin(labels[i])
		defer pt.done()
		return cardinalityPoint(cards[i], opt.Seed+int64(i))
	})
	for _, g := range st.Gaps {
		if g.Index >= 0 && g.Index < len(points) {
			points[g.Index] = CardinalityPoint{Keys: cards[g.Index], Gap: true}
		}
	}
	return CardinalityResult{
		CMSWidth: cardCMSWidth, CMSDepth: cardCMSDepth,
		TopStages: cardTopStages, TopSlots: cardTopSlots,
		K: cardTopK, Points: points,
	}
}

// RenderCardinality formats the accuracy-vs-memory table.
func RenderCardinality(r CardinalityResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Cardinality: sketch accuracy vs memory (CMS %dx%d, HashPipe %dx%d, K=%d)\n",
		r.CMSWidth, r.CMSDepth, r.TopStages, r.TopSlots, r.K)
	fmt.Fprintf(&b, "%9s | %9s | %9s | %10s | %7s | %9s | %8s | %7s | %6s | %9s | %s\n",
		"keys", "updates", "sketch B", "exact B", "mem x", "εN bound", "max err",
		"viol %", "δ %", "recall@K", "bound ok")
	b.WriteString(strings.Repeat("-", 118) + "\n")
	for _, p := range r.Points {
		if p.Gap {
			fmt.Fprintf(&b, "%9d | %s point lost to supervision gap\n", p.Keys, gapMark)
			continue
		}
		ok := "yes"
		if !p.WithinBound {
			ok = "NO"
		}
		fmt.Fprintf(&b, "%9d | %9d | %9d | %10d | %6.1fx | %9d | %8d | %6.2f%% | %5.2f%% | %9.2f | %s\n",
			p.Keys, p.Updates, p.SketchBytes, p.ExactBytes, p.MemRatio, p.Bound,
			p.MaxErr, 100*p.ViolationFrac, 100*p.Delta, p.RecallAtK, ok)
	}
	return b.String()
}
