package harness

import (
	"fmt"
	"strings"
	"time"

	"reqlens/internal/control"
	"reqlens/internal/core"
	"reqlens/internal/faults"
	"reqlens/internal/loadgen"
	"reqlens/internal/netsim"
	"reqlens/internal/workloads"
)

// This file closes the loop on the wait-state and attribution studies:
// AttributionMatrix scores the online detector + cause attributor
// against injected faults with known ground-truth onsets, and
// AutoscaleScenario drives the capacity controller end to end and
// measures QoS recovery time as a function of actuation latency. Both
// fan out on RunPoints like every other driver, so results are
// bit-identical at any Parallelism and resumable from a journal.

// Attribution trials run the fixed diagnosis workload (Silo) at the
// wait-state study's nominal level: loaded enough that every fault
// class produces visible queueing, healthy enough that the baseline
// phase stays quiet.
const (
	attrLevel = waitDiagLevel
	// attrDetWarm is the detector's self-calibration span in windows.
	attrDetWarm = 8
	// attrHealthy is the armed healthy span: windows observed after the
	// charts arm but before the fault, where any alarm is a false
	// positive.
	attrHealthy = 6
	// attrFault is the faulted span in windows; an undetected fault
	// after attrFault windows scores as a miss.
	attrFault = 10
	// attrSurge is the extra offered load (fraction of failure RPS) the
	// overload scenario adds on top of attrLevel.
	attrSurge = 0.6
	// attrTopK bounds the sketch ranking read per window; the rigs host
	// at most four processes, so eight never truncates.
	attrTopK = 8
)

// attrScenario is one supervised trial configuration: a named fault
// with its ground-truth cause class. Exactly one of plan/surge is set
// (baseline sets neither).
type attrScenario struct {
	name  string
	cause control.Cause
	plan  faults.Plan // armed at the fault onset; open-ended
	surge float64     // extra load fraction spawned at the onset
}

// attrOpenPlan wraps one open-ended fault (Duration 0: active until the
// trial ends) so the onset is exactly the arming instant.
func attrOpenPlan(name string, seed int64, f faults.Fault) faults.Plan {
	return faults.Plan{Name: name, Seed: seed, Faults: []faults.Fault{f}}
}

// attrScenarios returns the scored set: a fault-free control plus one
// scenario per cause class. The netem shift carries jitter as well as
// delay (tc netem delay 10ms 2ms): a constant delay only phase-shifts a
// paced arrival process and is invisible to server-side probes in
// steady state, while jitter perturbs every arrival gap and inflates
// the Eq. 2 variance for as long as it lasts. The noisy-neighbor tenant
// is an oversubscribing variant of the wait-state study's heavy plan
// (80% duty across sixteen threads — more demand than the whole
// machine); cpu-offline removes five of the eight server CPUs so the
// remaining capacity sits well under the offered level.
func attrScenarios() []attrScenario {
	return []attrScenario{
		{name: "baseline", cause: control.CauseNone},
		{name: "overload", cause: control.CauseOverload, surge: attrSurge},
		{name: "netem-loss", cause: control.CauseNetem,
			plan: attrOpenPlan("netem-loss", 31, faults.Fault{
				Kind:  faults.NetemShift,
				Netem: netsim.Config{Delay: 10 * time.Millisecond, Loss: 0.08},
			})},
		{name: "noisy-neighbor", cause: control.CauseNoisyNeighbor,
			plan: attrOpenPlan("noisy-heavy", 14, faults.Fault{
				Kind: faults.NoisyNeighbor, Threads: 16,
				Period: 100 * time.Microsecond, Burn: 400 * time.Microsecond,
			})},
		{name: "cpu-offline", cause: control.CauseCPUOffline,
			plan: attrOpenPlan("cpu-offline", 47, faults.Fault{
				Kind: faults.CPUOffline, CPUs: 5,
			})},
	}
}

// AttributionTrial is one supervised trial: a fault injected at a known
// onset, the detector's verdict and delay, and the attributor's cause
// classification.
type AttributionTrial struct {
	Scenario string
	Trial    int
	True     control.Cause

	// FalseAlarms counts alarms raised during the armed healthy span —
	// windows where ground truth says nothing is wrong.
	FalseAlarms int

	Detected bool
	Signal   control.Signal // which chart tripped first (valid when Detected)
	Delay    time.Duration  // fault onset -> end of the alarming window
	// Predicted is the attributor's verdict over the post-alarm windows
	// (CauseNone when the fault was never detected).
	Predicted control.Cause

	// Gap marks a trial lost to supervision; only Scenario/Trial/True
	// are meaningful. Absent from JSON on complete runs.
	Gap bool `json:",omitempty"`
}

// AttributionScore aggregates one cause class across trials.
type AttributionScore struct {
	Cause     control.Cause
	Trials    int // trials whose ground truth is this class
	Detected  int // of those, trials where the detector alarmed
	Predicted int // trials (any truth) the attributor classified as this class
	Correct   int // predicted AND true
	Precision float64
	Recall    float64
	MeanDelay time.Duration // over this class's detected trials
}

// AttributionResult is the scored matrix.
type AttributionResult struct {
	Workload string
	Level    float64
	Trials   int // per scenario
	Window   time.Duration

	Points []AttributionTrial // scenario-major, trial-minor
	Scores []AttributionScore // one per control.Causes() entry

	// FalsePositives counts healthy-span alarms across every trial plus
	// fault-span detections in baseline trials (where nothing was ever
	// injected). The acceptance bar is zero.
	FalsePositives int

	// Gaps lists labels of trials lost to supervision; gapped trials are
	// excluded from Scores and FalsePositives. Absent on complete runs.
	Gaps []string `json:",omitempty"`
}

// attrSketchCursor diffs the attribution probe's cumulative sketch
// rankings into per-window foreign syscall share.
type attrSketchCursor struct {
	attr  *core.Attribution
	allow map[int]bool // tgids whose syscalls are expected (server, clients)
	prev  map[uint64]uint64
}

func newAttrSketchCursor(attr *core.Attribution) *attrSketchCursor {
	return &attrSketchCursor{attr: attr, allow: make(map[int]bool), prev: make(map[uint64]uint64)}
}

// expect allowlists a process whose syscalls are legitimate traffic.
func (c *attrSketchCursor) expect(tgid int) { c.allow[tgid] = true }

// foreignShare scrapes the sketches and returns the fraction of
// syscalls since the previous scrape attributed to tgids outside the
// allowlist. Count-min estimates are cumulative and monotone, so
// per-window activity is the delta between scrapes.
func (c *attrSketchCursor) foreignShare() float64 {
	var foreign, total float64
	for _, o := range c.attr.TopOffenders(attrTopK) {
		d := float64(o.Syscalls) - float64(c.prev[o.TGID])
		c.prev[o.TGID] = o.Syscalls
		if d <= 0 {
			continue
		}
		total += d
		if !c.allow[int(o.TGID)] {
			foreign += d
		}
	}
	if total == 0 {
		return 0
	}
	return foreign / total
}

// attrTrial runs one supervised trial on a private rig: calibrate the
// detector on a healthy span, inject the scenario's fault at a recorded
// onset, and score detection plus attribution against that ground
// truth. Pure in (sc, trial, opt, seed).
func attrTrial(sc attrScenario, trial int, opt ExpOptions, pc PointCtx, seed int64, pt pointTelemetry) AttributionTrial {
	spec := waitDiagSpec()
	rate := attrLevel * spec.FailureRPS
	rig := NewRig(spec, RigOptions{
		Seed: seed, Profile: opt.Profile, Netem: opt.Netem,
		Rate: rate, Probes: true, WaitStates: true, Attribution: true,
		Poisson:   opt.Poisson,
		Telemetry: pt.reg, Clock: pc.Clock,
	})
	defer rig.Close()
	rig.Warmup(opt.Warmup)

	det := control.NewSaturationDetector(control.DetectorConfig{
		Warmup: attrDetWarm, Telemetry: pt.reg,
	})
	attr := control.NewAttributor(control.AttributorConfig{})
	cursor := newAttrSketchCursor(rig.Attr)
	cursor.expect(rig.Server.Process().TGID())
	cursor.expect(rig.Client.TGID())
	cursor.foreignShare() // prime: first window diffs against warmup, not attach

	win := windowFor(opt.MinSends, rate)
	now := opt.Warmup
	res := AttributionTrial{Scenario: sc.name, Trial: trial, True: sc.cause}

	// observe runs one estimation window and folds it into the charts.
	observe := func() (control.Alarm, bool, control.Evidence) {
		m := rig.Measure(win)
		now += win
		on, run, blk := m.Wait.Shares()
		ev := control.Evidence{
			OnCPUShare: on, RunnableShare: run, BlockedShare: blk,
			ForeignShare: cursor.foreignShare(), RPS: m.RPSObsv,
			SendVarUS2: m.SendVarUS2, PollMeanNS: m.PollMeanNS,
		}
		a, tripped := det.Observe(now, control.Sample{
			SendVarUS2: m.SendVarUS2, RPS: m.RPSObsv, PollMeanNS: m.PollMeanNS,
		})
		return a, tripped, ev
	}

	// Healthy span: detector warmup plus armed healthy windows. Every
	// window trains the attributor's baseline; armed-span alarms are
	// false positives (ground truth: nothing is wrong yet).
	for w := 0; w < attrDetWarm+attrHealthy; w++ {
		_, tripped, ev := observe()
		if tripped {
			res.FalseAlarms++
		}
		attr.Learn(ev)
	}

	// Fault onset, at a known instant.
	onset := now
	if sc.surge > 0 {
		surge := loadgen.New(rig.ClientK, rig.Server.Listener(), loadgen.Options{
			Rate:      sc.surge * spec.FailureRPS,
			Conns:     2 * spec.Workers,
			ReqSize:   spec.ReqSize,
			PerOpCost: spec.ClientPerOpCost(),
		})
		cursor.expect(surge.TGID()) // more load is overload, not a foreign tenant
	}
	if !sc.plan.Empty() {
		rig.Arm(sc.plan)
	}

	// Faulted span: first alarm fixes the detection delay; the alarming
	// window and everything after feed the attributor's post phase.
	for w := 0; w < attrFault; w++ {
		a, tripped, ev := observe()
		if tripped && !res.Detected {
			res.Detected = true
			res.Signal = a.Signal
			res.Delay = a.At - onset
		}
		if res.Detected {
			attr.Note(ev)
		}
	}
	if res.Detected {
		res.Predicted = attr.Classify()
	}
	return res
}

// scoreAttribution folds completed trials into per-class precision,
// recall and mean detection delay.
func scoreAttribution(res *AttributionResult) {
	type agg struct {
		trials, detected, predicted, correct int
		delay                                time.Duration
	}
	byCause := map[control.Cause]*agg{}
	for _, c := range control.Causes() {
		byCause[c] = &agg{}
	}
	for _, p := range res.Points {
		if p.Gap {
			continue
		}
		res.FalsePositives += p.FalseAlarms
		if p.True == control.CauseNone {
			if p.Detected {
				res.FalsePositives++
			}
		} else if a := byCause[p.True]; a != nil {
			a.trials++
			if p.Detected {
				a.detected++
				a.delay += p.Delay
			}
			if p.Predicted == p.True {
				a.correct++
			}
		}
		if a := byCause[p.Predicted]; a != nil && p.Detected {
			a.predicted++
		}
	}
	for _, c := range control.Causes() {
		a := byCause[c]
		s := AttributionScore{
			Cause: c, Trials: a.trials, Detected: a.detected,
			Predicted: a.predicted, Correct: a.correct,
		}
		if a.predicted > 0 {
			s.Precision = float64(a.correct) / float64(a.predicted)
		}
		if a.trials > 0 {
			s.Recall = float64(a.correct) / float64(a.trials)
		}
		if a.detected > 0 {
			s.MeanDelay = a.delay / time.Duration(a.detected)
		}
		res.Scores = append(res.Scores, s)
	}
}

// AttributionMatrix runs the supervised attribution study: trials
// repetitions of every scenario (trials <= 0 defaults to 5), each on a
// private rig with an index-derived seed. Every (scenario, trial) cell
// is one engine point, so the matrix parallelizes, checkpoints and
// resumes like any sweep, and gapped trials are excluded from scores
// rather than counted as zeros.
func AttributionMatrix(opt ExpOptions, trials int) AttributionResult {
	if trials <= 0 {
		trials = 5
	}
	opt = opt.withDefaults()
	opt, sp := opt.expScope("attribution")
	defer opt.expEnd(sp)

	scens := attrScenarios()
	labels := make([]string, 0, len(scens)*trials)
	for _, sc := range scens {
		for t := 0; t < trials; t++ {
			labels = append(labels, fmt.Sprintf("attribution %s trial=%d", sc.name, t))
		}
	}
	points, st := RunPoints(opt, labels, func(pc PointCtx, i int) AttributionTrial {
		pt := opt.pointBegin(labels[i])
		defer pt.done()
		return attrTrial(scens[i/trials], i%trials, opt, pc, opt.Seed+int64(i), pt)
	})
	for _, g := range st.Gaps {
		if g.Index < 0 || g.Index >= len(points) {
			continue
		}
		sc := scens[g.Index/trials]
		points[g.Index] = AttributionTrial{
			Scenario: sc.name, Trial: g.Index % trials, True: sc.cause, Gap: true,
		}
	}

	spec := waitDiagSpec()
	res := AttributionResult{
		Workload: spec.Name, Level: attrLevel, Trials: trials,
		Window: windowFor(opt.MinSends, attrLevel*spec.FailureRPS),
		Points: points, Gaps: st.GapLabels(),
	}
	scoreAttribution(&res)
	return res
}

// RenderAttribution formats the matrix as the per-class scorecard plus
// the trial-level detail grid.
func RenderAttribution(r AttributionResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Attribution matrix: online detector + cause attributor vs ground-truth faults\n")
	fmt.Fprintf(&b, "workload %s at level %.2f, %d trials per scenario, window %v\n\n",
		r.Workload, r.Level, r.Trials, r.Window.Round(time.Millisecond))

	fmt.Fprintf(&b, "%-15s | %6s | %8s | %9s | %6s | %10s\n",
		"class", "trials", "detected", "precision", "recall", "mean delay")
	b.WriteString(strings.Repeat("-", 70) + "\n")
	for _, s := range r.Scores {
		prec := "   n/a"
		if s.Predicted > 0 {
			prec = fmt.Sprintf("%6.2f", s.Precision)
		}
		delay := "       n/a"
		if s.Detected > 0 {
			delay = fmt.Sprintf("%10v", s.MeanDelay.Round(time.Millisecond))
		}
		fmt.Fprintf(&b, "%-15s | %6d | %8d | %9s | %6.2f | %s\n",
			s.Cause, s.Trials, s.Detected, prec, s.Recall, delay)
	}
	fmt.Fprintf(&b, "\nfalse positives (healthy spans + baseline trials): %d\n", r.FalsePositives)

	fmt.Fprintf(&b, "\n%-18s | %5s | %8s | %8s | %10s | %s\n",
		"trial", "truth", "detected", "signal", "delay", "predicted")
	b.WriteString(strings.Repeat("-", 80) + "\n")
	for _, p := range r.Points {
		head := fmt.Sprintf("%s/%d", p.Scenario, p.Trial)
		if p.Gap {
			fmt.Fprintf(&b, "%-18s | %s trial lost to supervision gap\n", head, gapMark)
			continue
		}
		det, sig, delay := "miss", "-", "-"
		if p.Detected {
			det = "yes"
			sig = p.Signal.String()
			delay = p.Delay.Round(time.Millisecond).String()
		}
		fmt.Fprintf(&b, "%-18s | %5s | %8s | %8s | %10s | %s\n",
			head, short(p.True), det, sig, delay, p.Predicted)
	}
	if len(r.Gaps) > 0 {
		fmt.Fprintf(&b, "\n%d trial(s) lost to supervision gaps; scores span the survivors\n", len(r.Gaps))
	}
	return b.String()
}

// short abbreviates a cause for the fixed-width truth column.
func short(c control.Cause) string {
	switch c {
	case control.CauseNone:
		return "none"
	case control.CauseOverload:
		return "over"
	case control.CauseNetem:
		return "netem"
	case control.CauseNoisyNeighbor:
		return "noisy"
	case control.CauseCPUOffline:
		return "cpu"
	}
	return c.String()
}

// Autoscale scenario constants: the service starts on autoCPUs of the
// machine's cores at autoBase load, then a surge lifts demand past that
// allocation and the controller must grow the pool back under QoS.
const (
	autoBase  = 0.35
	autoSurge = 0.45
	autoCPUs  = 4
	// autoDetWarm and autoHealthy mirror the attribution spans.
	autoDetWarm = 8
	autoHealthy = 2
	// autoFault is the surge span in windows: long enough that even the
	// slowest actuation latency can land and drain the backlog.
	autoFault = 16
)

// AutoscalePoint is one latency setting's closed-loop outcome.
type AutoscalePoint struct {
	Latency time.Duration // modeled scale-up actuation latency

	Breached  bool          // per-window p99 exceeded QoS during the surge
	Recovered bool          // p99 returned under QoS before the span ended
	Recovery  time.Duration // surge onset -> end of first recovered window
	PeakP99   time.Duration // worst per-window p99 in the surge span

	ScaleUps   int
	ScaleDowns int
	FinalCPUs  int // controller target when the span ended

	// Gap marks a point lost to supervision; only Latency is
	// meaningful. Absent from JSON on complete runs.
	Gap bool `json:",omitempty"`
}

// AutoscaleResult is the latency sweep.
type AutoscaleResult struct {
	Workload  string
	QoS       time.Duration
	Base      float64 // healthy load fraction
	Surge     float64 // extra load fraction at the onset
	StartCPUs int
	Window    time.Duration
	Points    []AutoscalePoint

	Gaps []string `json:",omitempty"`
}

// DefaultAutoscaleLatencies is the actuation-latency sweep the CLI
// runs: instant, container-restart, pod-schedule, and VM-boot class.
func DefaultAutoscaleLatencies() []time.Duration {
	return []time.Duration{0, 500 * time.Millisecond, time.Second, 2 * time.Second}
}

// autoscalePoint runs one closed-loop trial: the detector and the slack
// estimator feed the controller each window, and committed decisions
// actuate kernel.SetOnlineCPUs after the modeled latency — entirely
// inside the simulation clock, so the loop is deterministic.
func autoscalePoint(latency time.Duration, opt ExpOptions, pc PointCtx, seed int64, pt pointTelemetry) AutoscalePoint {
	spec := waitDiagSpec()
	rate := autoBase * spec.FailureRPS
	rig := NewRig(spec, RigOptions{
		Seed: seed, Profile: opt.Profile, Netem: opt.Netem,
		Rate: rate, Probes: true,
		Poisson:   opt.Poisson,
		Telemetry: pt.reg, Clock: pc.Clock,
	})
	defer rig.Close()
	rig.ServerK.SetOnlineCPUs(autoCPUs) // nominal allocation before traffic settles
	rig.Warmup(opt.Warmup)

	win := windowFor(opt.MinSends, rate)
	det := control.NewSaturationDetector(control.DetectorConfig{
		Warmup: autoDetWarm, Telemetry: pt.reg,
	})
	slack := core.NewSlackEstimator()
	as := control.NewAutoscaler(autoCPUs, control.AutoscalerConfig{
		Min: autoCPUs, Max: workloads.ServerCores,
		Cooldown: 4 * win, Latency: latency,
		Telemetry: pt.reg,
	})

	res := AutoscalePoint{Latency: latency}
	now := opt.Warmup

	// step runs one window and closes the loop: measure, detect, decide,
	// and schedule the actuation inside the simulation.
	step := func() loadgen.Results {
		m := rig.Measure(win)
		now += win
		_, alarmed := det.Observe(now, control.Sample{
			SendVarUS2: m.SendVarUS2, RPS: m.RPSObsv, PollMeanNS: m.PollMeanNS,
		})
		sl := slack.Observe(time.Duration(m.PollMeanNS))
		if d, ok := as.Observe(now, alarmed, sl); ok {
			switch d.Action {
			case control.ActionScaleUp:
				res.ScaleUps++
			case control.ActionScaleDown:
				res.ScaleDowns++
			}
			to := d.To
			if d.EffectiveAt <= now {
				rig.ServerK.SetOnlineCPUs(to)
			} else {
				rig.Env.Schedule(d.EffectiveAt-now, func() {
					rig.ServerK.SetOnlineCPUs(to)
				})
			}
		}
		return m.Load
	}

	for w := 0; w < autoDetWarm+autoHealthy; w++ {
		step()
	}

	onset := now
	loadgen.New(rig.ClientK, rig.Server.Listener(), loadgen.Options{
		Rate:      autoSurge * spec.FailureRPS,
		Conns:     2 * spec.Workers,
		ReqSize:   spec.ReqSize,
		PerOpCost: spec.ClientPerOpCost(),
	})
	for w := 0; w < autoFault; w++ {
		load := step()
		if load.P99 > res.PeakP99 {
			res.PeakP99 = load.P99
		}
		if load.P99 > spec.QoS {
			res.Breached = true
		} else if res.Breached && !res.Recovered {
			res.Recovered = true
			res.Recovery = now - onset
		}
	}
	res.FinalCPUs = as.Target()
	return res
}

// AutoscaleScenario sweeps the closed-loop controller across actuation
// latencies (nil = DefaultAutoscaleLatencies). Each latency is one
// engine point on a private rig.
func AutoscaleScenario(latencies []time.Duration, opt ExpOptions) AutoscaleResult {
	if len(latencies) == 0 {
		latencies = DefaultAutoscaleLatencies()
	}
	opt = opt.withDefaults()
	opt, sp := opt.expScope("autoscale")
	defer opt.expEnd(sp)

	labels := make([]string, len(latencies))
	for i, l := range latencies {
		labels[i] = fmt.Sprintf("autoscale latency=%v", l)
	}
	points, st := RunPoints(opt, labels, func(pc PointCtx, i int) AutoscalePoint {
		pt := opt.pointBegin(labels[i])
		defer pt.done()
		return autoscalePoint(latencies[i], opt, pc, opt.Seed+int64(i), pt)
	})
	for _, g := range st.Gaps {
		if g.Index < 0 || g.Index >= len(points) {
			continue
		}
		points[g.Index] = AutoscalePoint{Latency: latencies[g.Index], Gap: true}
	}

	spec := waitDiagSpec()
	return AutoscaleResult{
		Workload: spec.Name, QoS: spec.QoS,
		Base: autoBase, Surge: autoSurge, StartCPUs: autoCPUs,
		Window: windowFor(opt.MinSends, autoBase*spec.FailureRPS),
		Points: points, Gaps: st.GapLabels(),
	}
}

// RenderAutoscale formats the latency sweep.
func RenderAutoscale(r AutoscaleResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Closed-loop autoscale: QoS recovery vs actuation latency\n")
	fmt.Fprintf(&b, "workload %s, %d of %d CPUs, load %.2f -> %.2f of failure RPS, QoS %v, window %v\n\n",
		r.Workload, r.StartCPUs, workloads.ServerCores, r.Base, r.Base+r.Surge,
		r.QoS.Round(time.Microsecond), r.Window.Round(time.Millisecond))
	fmt.Fprintf(&b, "%-10s | %8s | %9s | %10s | %10s | %4s | %5s | %s\n",
		"latency", "breached", "recovered", "recovery", "peak p99", "ups", "downs", "final CPUs")
	b.WriteString(strings.Repeat("-", 86) + "\n")
	for _, p := range r.Points {
		if p.Gap {
			fmt.Fprintf(&b, "%-10v | %s point lost to supervision gap\n", p.Latency, gapMark)
			continue
		}
		rec := "-"
		if p.Recovered {
			rec = p.Recovery.Round(time.Millisecond).String()
		}
		fmt.Fprintf(&b, "%-10v | %8v | %9v | %10s | %10v | %4d | %5d | %d\n",
			p.Latency, p.Breached, p.Recovered, rec,
			p.PeakP99.Round(time.Millisecond), p.ScaleUps, p.ScaleDowns, p.FinalCPUs)
	}
	if len(r.Gaps) > 0 {
		fmt.Fprintf(&b, "\n%d point(s) lost to supervision gaps\n", len(r.Gaps))
	}
	return b.String()
}
