package harness

import (
	"strings"
	"testing"
	"time"

	"reqlens/internal/machine"
	"reqlens/internal/netsim"
	"reqlens/internal/workloads"
)

func TestRigEndToEnd(t *testing.T) {
	spec := workloads.DataCaching()
	r := NewRig(spec, RigOptions{Seed: 1, Rate: 0.3 * spec.FailureRPS, Probes: true})
	r.Warmup(300 * time.Millisecond)
	m := r.Measure(200 * time.Millisecond)
	r.Close()
	if m.Load.RealRPS < 0.25*spec.FailureRPS {
		t.Fatalf("RealRPS = %v", m.Load.RealRPS)
	}
	if m.RPSObsv == 0 || m.PollMeanNS == 0 {
		t.Fatalf("missing observations: %+v", m)
	}
	// Eq. 1 tracks the real rate closely at steady load.
	ratio := m.RPSObsv / m.Load.RealRPS
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("RPSObsv/RealRPS = %v", ratio)
	}
}

func TestRigSeparateClientAblation(t *testing.T) {
	spec := workloads.Silo()
	r := NewRig(spec, RigOptions{Seed: 1, Rate: 0.3 * spec.FailureRPS, Probes: true, SeparateClient: true})
	if r.ClientK == r.ServerK {
		t.Fatal("SeparateClient should use a second machine")
	}
	r.Warmup(200 * time.Millisecond)
	m := r.Measure(200 * time.Millisecond)
	r.Close()
	if m.Load.RealRPS == 0 {
		t.Fatal("no throughput with separate client")
	}
}

func TestFig2CorrelationShape(t *testing.T) {
	opt := Quick()
	res := Fig2(workloads.Silo(), opt)
	if len(res.Estimates) != len(opt.Levels)*opt.Estimates {
		t.Fatalf("estimates = %d", len(res.Estimates))
	}
	if res.Fit.R2 < 0.95 {
		t.Fatalf("silo R^2 = %v, paper reports > 0.94", res.Fit.R2)
	}
	// Slope ~1: one send per response.
	if res.Fit.Slope < 0.85 || res.Fit.Slope > 1.15 {
		t.Fatalf("slope = %v, want ~1", res.Fit.Slope)
	}
	out := RenderFig2(res)
	if !strings.Contains(out, "R^2") || !strings.Contains(out, "residuals") {
		t.Fatalf("render missing parts:\n%s", out)
	}
}

func TestFig2WebSearchDoubleCounts(t *testing.T) {
	res := Fig2(workloads.WebSearch(), Quick())
	// The front-end writes an internal forward plus 1-3 drifting response
	// chunks per request, so the regression slope sits well below 1 and
	// the fit is noticeably noisier than other workloads — the paper's
	// web-search outlier (R^2 = 0.86 vs > 0.94 elsewhere).
	if res.Fit.Slope < 0.2 || res.Fit.Slope > 0.55 {
		t.Fatalf("web-search slope = %v, want ~1/3", res.Fit.Slope)
	}
	if res.Fit.R2 < 0.5 || res.Fit.R2 > 0.995 {
		t.Fatalf("web-search R^2 = %v, want noisier than other workloads", res.Fit.R2)
	}
}

func TestSaturationSweepShapes(t *testing.T) {
	opt := Quick()
	opt.Levels = []float64{0.5, 0.8, 1.0, 1.2}
	opt.MinSends = 768 // variance needs wider windows than Quick's default
	opt.OverWarm = 10 * time.Second
	res := SaturationSweep(workloads.ImgDNN(), opt)
	if len(res.Points) != 4 {
		t.Fatalf("points = %d", len(res.Points))
	}
	// Fig. 4 shape: poll duration decreases monotonically with load.
	for i := 1; i < len(res.Points); i++ {
		if res.Points[i].PollMeanNS > res.Points[i-1].PollMeanNS {
			t.Fatalf("poll duration should fall with load: %+v", res.Points)
		}
	}
	// QoS crossing detected at or past full load.
	if res.QoSCrossIdx < 0 {
		t.Fatal("no QoS crossing detected in sweep to 1.15x")
	}
	if res.Points[0].QoSFail {
		t.Fatal("half load should not fail QoS")
	}
	// Fig. 3 shape: variance past the knee exceeds the pre-knee minimum.
	minPre := res.Points[0].SendVarUS2
	for _, p := range res.Points[:res.QoSCrossIdx] {
		if p.SendVarUS2 < minPre {
			minPre = p.SendVarUS2
		}
	}
	last := res.Points[len(res.Points)-1].SendVarUS2
	if last < minPre {
		t.Fatalf("variance after QoS (%v) below pre-knee minimum (%v)", last, minPre)
	}
	for _, render := range []string{RenderFig3(res), RenderFig4(res)} {
		if !strings.Contains(render, "*") {
			t.Fatalf("plot missing points:\n%s", render)
		}
	}
}

func TestFig5LossImpact(t *testing.T) {
	opt := Quick()
	opt.Levels = []float64{0.6}
	opt.MinSends = 400
	cfgs := []netsim.Config{{}, {Delay: 10 * time.Millisecond, Loss: 0.01}}
	res := Fig5(workloads.TritonGRPC(), cfgs, opt)
	if len(res.Sweeps) != 2 {
		t.Fatalf("sweeps = %d", len(res.Sweeps))
	}
	clean := res.Sweeps[0].Points[0]
	lossy := res.Sweeps[1].Points[0]
	// Top row: loss inflates tail latency (RTO-scale penalties land on
	// ~2% of requests, pushing the tail past the clean p99).
	if float64(lossy.P99) < 1.15*float64(clean.P99) {
		t.Fatalf("p99 clean=%v lossy=%v, expected inflation", clean.P99, lossy.P99)
	}
	// Bottom row: the epoll-duration signal barely moves.
	ratio := lossy.PollMeanNS / clean.PollMeanNS
	if ratio < 0.6 || ratio > 1.6 {
		t.Fatalf("poll duration ratio = %v, should be robust to loss", ratio)
	}
	if out := RenderFig5(res); !strings.Contains(out, "loss") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestTable2Robustness(t *testing.T) {
	opt := Quick()
	cfgs := []netsim.Config{{}, {Delay: 10 * time.Millisecond, Loss: 0.01}}
	rows := Table2([]workloads.Spec{workloads.Silo(), workloads.DataCaching()}, cfgs, opt)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if len(r.R2) != 2 {
			t.Fatalf("row %s has %d configs", r.Workload, len(r.R2))
		}
		for i, v := range r.R2 {
			if v < 0.9 {
				t.Fatalf("%s config %d: R^2 = %v, netem should not break Eq.1", r.Workload, i, v)
			}
		}
	}
	out := RenderTable2(rows, []string{"clean", "10ms/1%"})
	if !strings.Contains(out, "silo") || !strings.Contains(out, "Table II") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestOverheadBelowOnePercentish(t *testing.T) {
	opt := Quick()
	opt.MinSends = 256
	res := Overhead(workloads.DataCaching(), 0.7, opt)
	if res.P99On == 0 || res.P99Off == 0 {
		t.Fatalf("missing measurements: %+v", res)
	}
	// The paper reports < 1%; allow small-window noise either direction.
	if res.OverheadPct > 5 || res.OverheadPct < -5 {
		t.Fatalf("overhead = %v%%, outside plausible band", res.OverheadPct)
	}
	if res.PerSyscall <= 0 || res.PerSyscall > 2*time.Microsecond {
		t.Fatalf("per-syscall probe cost = %v", res.PerSyscall)
	}
	// The Section VI claim in analytic form: probes cost well under 1%
	// of the server's CPU.
	if res.CPUSharePct <= 0 || res.CPUSharePct > 1 {
		t.Fatalf("probe CPU share = %v%%, want (0,1%%]", res.CPUSharePct)
	}
	if out := RenderOverhead([]OverheadResult{res}); !strings.Contains(out, "overhead") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestIOUringBlindSpot(t *testing.T) {
	res := IOUring(0.5, Quick())
	if res.RealRPS < 1000 {
		t.Fatalf("io_uring server RealRPS = %v, should be serving", res.RealRPS)
	}
	if res.ObsvRPS > 0.01*res.RealRPS {
		t.Fatalf("send probe sees %v RPS of %v served: should be blind", res.ObsvRPS, res.RealRPS)
	}
	if res.PollCount != 0 {
		t.Fatalf("epoll activity = %d on an io_uring server", res.PollCount)
	}
	if res.IoUringRate == 0 {
		t.Fatal("io_uring_enter should still be visible")
	}
	if out := RenderIOUring(res); !strings.Contains(out, "blind") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestFig1PhasesAndCensus(t *testing.T) {
	res := Fig1(workloads.DataCaching(), 0.4, 150*time.Millisecond, Quick())
	if len(res.Events) == 0 {
		t.Fatal("no events captured")
	}
	if len(res.Segments) == 0 {
		t.Fatal("no phase segments")
	}
	if res.Segments[0].Phase != 0 { // trace.PhaseSetup
		t.Fatalf("first segment should be setup, got %v", res.Segments[0].Phase)
	}
	if res.Counts["read"] == 0 || res.Counts["sendmsg"] == 0 || res.Counts["epoll_wait"] == 0 {
		t.Fatalf("census missing request syscalls: %v", res.Counts)
	}
	if res.Counts["accept"] == 0 {
		t.Fatalf("census missing setup syscalls: %v", res.Counts)
	}
	out := RenderFig1(res)
	for _, want := range []string{"setup", "request", "[x] epoll_wait"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestIntelProfileAlsoWorks(t *testing.T) {
	// The paper's hardware-generality claim: the same signals appear on
	// the Intel profile.
	opt := Quick()
	opt.Profile = machine.Intel()
	res := Fig2(workloads.Silo(), opt)
	if res.Fit.R2 < 0.9 {
		t.Fatalf("Intel profile R^2 = %v", res.Fit.R2)
	}
}
