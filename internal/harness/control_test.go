package harness

import (
	"reflect"
	"testing"
	"time"

	"reqlens/internal/control"
)

// TestAttributionMatrixQuick runs the full supervised matrix at quick
// scale and holds it to the acceptance bar: zero false positives on
// healthy spans and the baseline scenario, and precision/recall >= 0.8
// for every fault class.
func TestAttributionMatrixQuick(t *testing.T) {
	res := AttributionMatrix(Quick(), 2)
	t.Logf("\n%s", RenderAttribution(res))
	if res.FalsePositives != 0 {
		t.Errorf("false positives = %d, want 0", res.FalsePositives)
	}
	if len(res.Gaps) != 0 {
		t.Fatalf("unexpected gaps: %v", res.Gaps)
	}
	for _, s := range res.Scores {
		if s.Trials == 0 {
			t.Errorf("%v: no trials scored", s.Cause)
			continue
		}
		if s.Precision < 0.8 {
			t.Errorf("%v: precision %.2f < 0.8", s.Cause, s.Precision)
		}
		if s.Recall < 0.8 {
			t.Errorf("%v: recall %.2f < 0.8", s.Cause, s.Recall)
		}
		if s.Detected > 0 && s.MeanDelay <= 0 {
			t.Errorf("%v: detected but non-positive mean delay", s.Cause)
		}
	}
}

// TestAttributionParallelDeterminism asserts the matrix is bit-identical
// at any engine parallelism.
func TestAttributionParallelDeterminism(t *testing.T) {
	seq := Quick()
	seq.Parallelism = 1
	par := Quick()
	par.Parallelism = 4
	a := AttributionMatrix(seq, 1)
	b := AttributionMatrix(par, 1)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("attribution matrix differs across parallelism:\nseq: %+v\npar: %+v", a, b)
	}
}

// TestAutoscaleQuick drives the closed loop at two actuation latencies:
// the surge must breach QoS, the controller must scale up, and the
// instant-actuation run must recover.
func TestAutoscaleQuick(t *testing.T) {
	res := AutoscaleScenario([]time.Duration{0, 500 * time.Millisecond}, Quick())
	t.Logf("\n%s", RenderAutoscale(res))
	if len(res.Gaps) != 0 {
		t.Fatalf("unexpected gaps: %v", res.Gaps)
	}
	for _, p := range res.Points {
		if !p.Breached {
			t.Errorf("latency %v: surge never breached QoS", p.Latency)
		}
		if p.ScaleUps == 0 {
			t.Errorf("latency %v: controller never scaled up", p.Latency)
		}
		if p.FinalCPUs <= autoCPUs {
			t.Errorf("latency %v: final CPUs %d, want > %d", p.Latency, p.FinalCPUs, autoCPUs)
		}
	}
	if p := res.Points[0]; !p.Recovered {
		t.Errorf("instant actuation: never recovered under QoS (peak p99 %v)", p.PeakP99)
	}
}

// TestGoldenAttribution pins the exact text `reqlens attribution -quick
// -trials 2` prints (scorecard + trial grid), which make check diffs
// against the real binary, plus the full result struct. The whole
// detector/attributor stack feeds these bytes, so unintended drift
// anywhere in the control path shows up here.
func TestGoldenAttribution(t *testing.T) {
	if raceEnabled {
		t.Skip("byte-exact regression compare; re-running under -race adds no coverage")
	}
	res := AttributionMatrix(Quick(), 2)
	checkGolden(t, "attribution.json", res)
	checkGoldenBytes(t, "attribution.txt", []byte(RenderAttribution(res)))
}

// TestGoldenAutoscale pins the `reqlens autoscale -quick` table the same
// way.
func TestGoldenAutoscale(t *testing.T) {
	if raceEnabled {
		t.Skip("byte-exact regression compare; re-running under -race adds no coverage")
	}
	res := AutoscaleScenario(DefaultAutoscaleLatencies(), Quick())
	checkGoldenBytes(t, "autoscale.txt", []byte(RenderAutoscale(res)))
}

// TestAttributionScoring exercises the aggregation arithmetic on a
// hand-built trial set, independent of any simulation.
func TestAttributionScoring(t *testing.T) {
	res := AttributionResult{Points: []AttributionTrial{
		{Scenario: "baseline", True: control.CauseNone},
		{Scenario: "baseline", True: control.CauseNone, Detected: true,
			Predicted: control.CauseOverload}, // baseline detection = FP
		{Scenario: "overload", True: control.CauseOverload, Detected: true,
			Predicted: control.CauseOverload, Delay: 2 * time.Second},
		{Scenario: "overload", True: control.CauseOverload, FalseAlarms: 1,
			Detected: true, Predicted: control.CauseCPUOffline, Delay: 4 * time.Second},
		{Scenario: "netem", True: control.CauseNetem}, // miss
		{Scenario: "gap", True: control.CauseNetem, Gap: true},
	}}
	scoreAttribution(&res)
	if res.FalsePositives != 2 { // 1 healthy-span alarm + 1 baseline detection
		t.Errorf("false positives = %d, want 2", res.FalsePositives)
	}
	byCause := map[control.Cause]AttributionScore{}
	for _, s := range res.Scores {
		byCause[s.Cause] = s
	}
	ov := byCause[control.CauseOverload]
	if ov.Trials != 2 || ov.Detected != 2 || ov.Correct != 1 {
		t.Errorf("overload agg = %+v", ov)
	}
	// Predictions of overload: one true overload + one baseline FP.
	if ov.Predicted != 2 || ov.Precision != 0.5 {
		t.Errorf("overload precision = %+v", ov)
	}
	if ov.Recall != 0.5 || ov.MeanDelay != 3*time.Second {
		t.Errorf("overload recall/delay = %+v", ov)
	}
	ne := byCause[control.CauseNetem]
	if ne.Trials != 1 || ne.Detected != 0 || ne.Recall != 0 {
		t.Errorf("netem agg = %+v", ne) // the gapped trial must not count
	}
	cpu := byCause[control.CauseCPUOffline]
	if cpu.Predicted != 1 || cpu.Precision != 0 {
		t.Errorf("cpu-offline agg = %+v", cpu)
	}
}
