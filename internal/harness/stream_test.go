package harness

import (
	"reflect"
	"strings"
	"testing"

	"reqlens/internal/workloads"
)

// TestStreamBatchAgreement is the tentpole guarantee: with a ring that
// never overflows, the streaming observer's windows equal the batch
// observer's bit-for-bit at every load level.
func TestStreamBatchAgreement(t *testing.T) {
	opt := Quick()
	opt.Levels = []float64{0.3, 0.7, 1.0}
	res := StreamAgreement(workloads.DataCaching(), opt)
	if len(res.Points) != 3 {
		t.Fatalf("points = %d", len(res.Points))
	}
	if res.TotalDropped != 0 {
		t.Fatalf("default ring dropped %d events", res.TotalDropped)
	}
	if res.Disagreements != 0 {
		for _, p := range res.Points {
			if !p.Agree {
				t.Errorf("level %.2f:\nbatch  = %+v\nstream = %+v", p.Level, p.Batch, p.Stream.Window)
			}
		}
		t.Fatalf("%d/%d windows diverged", res.Disagreements, len(res.Points))
	}
	for _, p := range res.Points {
		if p.Stream.Events == 0 {
			t.Fatalf("level %.2f consumed no events", p.Level)
		}
		if p.Batch.Send.Calls == 0 {
			t.Fatalf("level %.2f saw no traffic", p.Level)
		}
	}
	out := RenderStreamAgreement(res)
	if !strings.Contains(out, "agree bit-for-bit") {
		t.Fatalf("render missing agreement line:\n%s", out)
	}
}

// TestStreamDropDeterminism undersizes the ring so it overflows between
// drains, and asserts the loss profile is (a) nonzero, (b) bit-identical
// across runs, and (c) independent of engine parallelism.
func TestStreamDropDeterminism(t *testing.T) {
	opt := Quick()
	opt.Levels = []float64{0.6, 1.0}

	const ring = 4096
	seq := opt
	seq.Parallelism = 1
	par := opt
	par.Parallelism = 4

	spec := workloads.DataCaching()
	a := StreamDrops(spec, ring, seq)
	b := StreamDrops(spec, ring, par)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("drop profile differs across parallelism:\nseq: %+v\npar: %+v", a, b)
	}
	var dropped uint64
	for _, p := range a.Points {
		dropped += p.Stream.Dropped
		if p.Stream.Events+p.Stream.Dropped == 0 {
			t.Fatalf("level %.2f produced no events at all", p.Level)
		}
	}
	if dropped == 0 {
		t.Fatalf("a %d-byte ring should overflow under load: %+v", ring, a.Points)
	}
	// Same-seed rerun: identical to the first.
	c := StreamDrops(spec, ring, seq)
	if !reflect.DeepEqual(a, c) {
		t.Fatal("same-seed rerun diverged")
	}
	if out := RenderStreamDrops(a); !strings.Contains(out, "Ring overflow profile") {
		t.Fatalf("render output malformed:\n%s", out)
	}
}

// TestRigStreamOnly checks that a rig can run the streaming observer
// without the batch probes attached.
func TestRigStreamOnly(t *testing.T) {
	spec := workloads.DataCaching()
	rig := NewRig(spec, RigOptions{
		Seed: 7, Rate: 0.5 * spec.FailureRPS, Stream: true,
	})
	defer rig.Close()
	if rig.Obs != nil {
		t.Fatal("batch observer attached without Probes")
	}
	rig.Warmup(200 * 1e6) // 200ms
	m := rig.Measure(100 * 1e6)
	if m.Stream.Events == 0 {
		t.Fatalf("stream saw no events: %+v", m.Stream)
	}
	if m.Stream.Send.Calls == 0 || m.Stream.Poll.Calls == 0 {
		t.Fatalf("stream window empty: %+v", m.Stream.Window)
	}
	if m.RPSObsv != 0 {
		t.Fatal("batch fields should stay zero without Probes")
	}
}
