package harness

import (
	"testing"
	"time"
)

func TestWindowFor(t *testing.T) {
	cases := []struct {
		name     string
		minSends int
		rate     float64
		want     time.Duration
	}{
		// 2048 sends at 1000 rps: 2.048s * 1.2 slack.
		{"paper scale", 2048, 1000, time.Duration(2.048 * 1.2 * float64(time.Second))},
		// High rate: the computed window collapses below the floor.
		{"floor at high rate", 128, 100000, 50 * time.Millisecond},
		// Degenerate inputs must not divide by zero or overflow.
		{"zero rate", 2048, 0, 50 * time.Millisecond},
		{"negative rate", 2048, -5, 50 * time.Millisecond},
		{"zero sends", 0, 1000, 50 * time.Millisecond},
		{"negative sends", -1, 1000, 50 * time.Millisecond},
		// Tiny MinSends at modest rate still lands on the floor.
		{"tiny sends", 1, 1000, 50 * time.Millisecond},
	}
	for _, c := range cases {
		if got := windowFor(c.minSends, c.rate); got != c.want {
			t.Errorf("%s: windowFor(%d, %v) = %v, want %v",
				c.name, c.minSends, c.rate, got, c.want)
		}
		if got := windowFor(c.minSends, c.rate); got < 50*time.Millisecond {
			t.Errorf("%s: window %v below the 50ms floor", c.name, got)
		}
	}
}

func TestWithDefaultsZeroValue(t *testing.T) {
	o := ExpOptions{}.withDefaults()
	if o.MinSends != 2048 || o.Estimates != 10 || o.Seed != 42 {
		t.Fatalf("paper-scale defaults wrong: %+v", o)
	}
	if len(o.Levels) != 10 || o.Levels[0] != 0.1 || o.Levels[9] != 1.0 {
		t.Fatalf("default levels: %v", o.Levels)
	}
	if o.Warmup != 2*time.Second || o.OverWarm != 12*time.Second {
		t.Fatalf("default warmups: %v / %v", o.Warmup, o.OverWarm)
	}
	// Fields whose zero value is meaningful must stay zero.
	if o.Parallelism != 0 || o.Poisson || o.SeparateClient {
		t.Fatalf("withDefaults must not touch execution fields: %+v", o)
	}
	if o.Progress != nil || o.Stats != nil {
		t.Fatal("withDefaults must not install callbacks")
	}
}

func TestWithDefaultsPreservesExplicitValues(t *testing.T) {
	in := ExpOptions{
		Seed:        7,
		MinSends:    64,
		Estimates:   2,
		Levels:      []float64{0.5},
		Warmup:      time.Millisecond,
		OverWarm:    2 * time.Millisecond,
		Parallelism: 3,
	}
	o := in.withDefaults()
	if o.Seed != 7 || o.MinSends != 64 || o.Estimates != 2 ||
		len(o.Levels) != 1 || o.Warmup != time.Millisecond ||
		o.OverWarm != 2*time.Millisecond || o.Parallelism != 3 {
		t.Fatalf("explicit values clobbered: %+v", o)
	}
	// Idempotence: the engine and the flattened drivers (Fig5, Table2)
	// rely on withDefaults(withDefaults(x)) == withDefaults(x).
	if o2 := o.withDefaults(); o2.Seed != o.Seed || o2.MinSends != o.MinSends ||
		o2.Estimates != o.Estimates || len(o2.Levels) != len(o.Levels) {
		t.Fatalf("withDefaults not idempotent: %+v vs %+v", o, o2)
	}
}

func TestQuickPicksUpRemainingDefaults(t *testing.T) {
	q := Quick().withDefaults()
	if q.MinSends != 128 || q.Estimates != 3 || len(q.Levels) != 3 {
		t.Fatalf("Quick scale clobbered by defaults: %+v", q)
	}
	if q.Seed != 42 {
		t.Fatalf("Quick should default the seed: %+v", q)
	}
}
