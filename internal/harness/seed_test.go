package harness

import (
	"reflect"
	"testing"
	"time"

	"reqlens/internal/faults"
	"reqlens/internal/sim"
	"reqlens/internal/workloads"
)

// TestLoadgenSeedStability is the load generator's determinism
// contract: identical seeds produce identical arrival sequences (a)
// across engine Parallelism settings and (b) after a fault plan is
// armed and then cleared before firing — arming must consume no
// simulation entropy.
func TestLoadgenSeedStability(t *testing.T) {
	spec := workloads.Silo()
	collect := func(par int, armClear bool) [][]sim.Time {
		opt := ExpOptions{Parallelism: par}
		out, _ := RunPoints(opt, []string{"p0", "p1"}, func(_ PointCtx, i int) []sim.Time {
			// Poisson pacing so arrivals depend on the seed (fixed-rate
			// pacing is deliberately seed-independent).
			rig := NewRig(spec, RigOptions{
				Seed: 7 + int64(i), Rate: 0.5 * spec.FailureRPS,
				Probes: true, Poisson: true, CaptureArrivals: 250,
			})
			defer rig.Close()
			if armClear {
				// Every injector kind, scheduled far in the future, then
				// cleared before anything fires.
				ctl := rig.Arm(faults.Plan{Name: "pending", Seed: 99, Faults: []faults.Fault{
					{Kind: faults.CPUOffline, Start: time.Second},
					{Kind: faults.MigrationStorm, Start: time.Second},
					{Kind: faults.ClockJitter, Start: time.Second},
					{Kind: faults.NoisyNeighbor, Start: time.Second},
					{Kind: faults.RingStall, Start: time.Second, Duration: time.Second},
					{Kind: faults.ProbeChurn, Start: time.Second, Duration: time.Second},
				}})
				rig.Advance(10 * time.Millisecond)
				ctl.Clear()
				rig.Advance(290 * time.Millisecond)
			} else {
				rig.Advance(300 * time.Millisecond)
			}
			return rig.Client.Arrivals()
		})
		return out
	}

	base := collect(1, false)
	for i, a := range base {
		if len(a) != 250 {
			t.Fatalf("point %d captured %d arrivals, want 250", i, len(a))
		}
	}
	if base[0][0] == base[1][0] && base[0][249] == base[1][249] {
		t.Fatal("different seeds produced identical arrival sequences")
	}
	if par := collect(4, false); !reflect.DeepEqual(base, par) {
		t.Fatal("arrival sequences differ across Parallelism settings")
	}
	if cleared := collect(1, true); !reflect.DeepEqual(base, cleared) {
		t.Fatal("arming-then-clearing a fault plan perturbed the arrival sequence")
	}
}
