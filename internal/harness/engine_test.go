package harness

import (
	"fmt"
	"reflect"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"reqlens/internal/netsim"
	"reqlens/internal/workloads"
)

// TestParallelSweepDeterminism is the engine's core guarantee: for the
// same seed, a parallel sweep is bit-identical to the sequential one.
func TestParallelSweepDeterminism(t *testing.T) {
	opt := Quick()
	opt.Levels = []float64{0.4, 0.7, 1.0, 1.15}
	// Streaming on: the ring-buffer pipeline (event folding, drain
	// cadence, drop accounting) must be as deterministic as the maps.
	opt.Stream = true

	seq := opt
	seq.Parallelism = 1
	par := opt
	par.Parallelism = 4

	spec := workloads.Silo()
	a := SaturationSweep(spec, seq)
	b := SaturationSweep(spec, par)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("parallel sweep differs from sequential:\nseq: %+v\npar: %+v", a, b)
	}
	for _, p := range a.Points {
		if !p.StreamAgree || p.StreamDropped != 0 {
			t.Fatalf("point %+v: stream window should match batch with a default ring", p)
		}
	}
}

func TestParallelFig2Determinism(t *testing.T) {
	opt := Quick()
	seq := opt
	seq.Parallelism = 1
	par := opt
	par.Parallelism = 3

	a := Fig2(workloads.DataCaching(), seq)
	b := Fig2(workloads.DataCaching(), par)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("parallel Fig2 differs from sequential:\nseq fit %+v\npar fit %+v", a.Fit, b.Fit)
	}
}

func TestParallelFig5AndTable2Determinism(t *testing.T) {
	opt := Quick()
	opt.Levels = []float64{0.5, 0.9}
	cfgs := []netsim.Config{{}, {Delay: 5 * time.Millisecond, Loss: 0.005}}
	seq := opt
	seq.Parallelism = 1
	par := opt
	par.Parallelism = 4

	spec := workloads.TritonGRPC()
	if a, b := Fig5(spec, cfgs, seq), Fig5(spec, cfgs, par); !reflect.DeepEqual(a, b) {
		t.Fatalf("parallel Fig5 differs from sequential")
	}
	specs := []workloads.Spec{workloads.Silo(), workloads.DataCaching()}
	if a, b := Table2(specs, cfgs, seq), Table2(specs, cfgs, par); !reflect.DeepEqual(a, b) {
		t.Fatalf("parallel Table2 differs from sequential:\nseq %+v\npar %+v", a, b)
	}
}

func TestParallelOverheadDeterminism(t *testing.T) {
	opt := Quick()
	opt.MinSends = 256
	seq := opt
	seq.Parallelism = 1
	par := opt
	par.Parallelism = 2

	a := Overhead(workloads.DataCaching(), 0.6, seq)
	b := Overhead(workloads.DataCaching(), 0.6, par)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("parallel Overhead differs from sequential:\nseq %+v\npar %+v", a, b)
	}
}

// TestConcurrentRigIsolation drives several independent rigs on bare
// goroutines. Under `go test -race` this fails loudly if rigs share any
// mutable state (the engine's safety precondition).
func TestConcurrentRigIsolation(t *testing.T) {
	spec := workloads.ImgDNN()
	const rigs = 4
	got := make([]float64, rigs)
	var wg sync.WaitGroup
	for i := 0; i < rigs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := NewRig(spec, RigOptions{Seed: 7, Rate: 0.5 * spec.FailureRPS, Probes: true})
			r.Warmup(300 * time.Millisecond)
			m := r.Measure(200 * time.Millisecond)
			r.Close()
			got[i] = m.Load.RealRPS
		}(i)
	}
	wg.Wait()
	for i := 1; i < rigs; i++ {
		if got[i] != got[0] {
			t.Fatalf("same-seed rigs diverged under concurrency: %v", got)
		}
	}
	if got[0] == 0 {
		t.Fatal("no throughput measured")
	}
}

func TestRunPointsOrderingAndProgress(t *testing.T) {
	opt := ExpOptions{Parallelism: 3}
	labels := make([]string, 7)
	for i := range labels {
		labels[i] = fmt.Sprintf("p%d", i)
	}
	var mu sync.Mutex
	var done []PointDone
	opt.Progress = func(p PointDone) {
		mu.Lock()
		done = append(done, p)
		mu.Unlock()
	}
	var statsSeen RunStats
	opt.Stats = func(s RunStats) { statsSeen = s }

	out, st := RunPoints(opt, labels, func(_ PointCtx, i int) int {
		time.Sleep(time.Duration(7-i) * time.Millisecond) // finish out of order
		return i * i
	})
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d (ordering broken)", i, v, i*i)
		}
	}
	if st.Points != 7 || st.Workers != 3 || len(st.PointWall) != 7 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Wall <= 0 || st.TotalPointWall() <= 0 || st.Concurrency() <= 0 {
		t.Fatalf("degenerate timing: %+v", st)
	}
	if statsSeen.Points != st.Points {
		t.Fatalf("Stats callback saw %+v", statsSeen)
	}
	if len(done) != 7 {
		t.Fatalf("progress calls = %d, want 7", len(done))
	}
	sort.Slice(done, func(a, b int) bool { return done[a].Index < done[b].Index })
	for i, p := range done {
		if p.Index != i || p.Total != 7 || p.Label != labels[i] {
			t.Fatalf("progress[%d] = %+v", i, p)
		}
		if p.Worker < 0 || p.Worker >= st.Workers {
			t.Fatalf("worker slot out of range: %+v", p)
		}
	}
}

func TestRunPointsEmptyAndSequential(t *testing.T) {
	out, st := RunPoints(ExpOptions{}, nil, func(_ PointCtx, i int) int { return i })
	if len(out) != 0 || st.Points != 0 {
		t.Fatalf("empty batch: out=%v stats=%+v", out, st)
	}
	// Parallelism 1 must use the caller's goroutine (sequential path).
	opt := ExpOptions{Parallelism: 1}
	var order []int
	outs, st := RunPoints(opt, []string{"a", "b", "c"}, func(_ PointCtx, i int) int {
		order = append(order, i) // safe: sequential path, no goroutines
		return i
	})
	if !reflect.DeepEqual(order, []int{0, 1, 2}) {
		t.Fatalf("sequential order = %v", order)
	}
	if !reflect.DeepEqual(outs, []int{0, 1, 2}) || st.Workers != 1 {
		t.Fatalf("outs=%v stats=%+v", outs, st)
	}
}

func TestWorkersResolution(t *testing.T) {
	cases := []struct {
		par, points, want int
	}{
		{0, 100, runtime.GOMAXPROCS(0)}, // default: bounded by GOMAXPROCS
		{4, 100, 4},                     // explicit
		{8, 3, 3},                       // capped at point count
		{-2, 1, 1},                      // negative behaves like default, capped
		{1, 0, 1},                       // floor of one worker slot
	}
	for _, c := range cases {
		o := ExpOptions{Parallelism: c.par}
		if got := o.workers(c.points); got != c.want {
			t.Errorf("workers(par=%d, points=%d) = %d, want %d", c.par, c.points, got, c.want)
		}
	}
}
