package harness

import (
	"fmt"
	"time"

	"reqlens/internal/faults"
	"reqlens/internal/machine"
	"reqlens/internal/netsim"
	"reqlens/internal/probes"
	"reqlens/internal/resilience"
	"reqlens/internal/stats"
	"reqlens/internal/telemetry"
	"reqlens/internal/trace"
	"reqlens/internal/workloads"
)

// ExpOptions controls experiment scale and execution. The zero value is
// paper scale; Quick shrinks everything for tests, and withDefaults
// fills any field left zero. Every figure/table driver accepts one.
//
// Determinism: for a fixed Seed, results are bit-identical across runs
// and across Parallelism settings — each load-level point runs on an
// isolated Rig seeded with Seed + int64(levelIndex), so neither real
// time nor goroutine scheduling can leak into results.
type ExpOptions struct {
	// Seed is the root seed of every simulation the experiment builds.
	// Point li of a sweep uses Seed + int64(li). 0 defaults to 42.
	Seed int64

	// Profile selects the server hardware model (Table I). The zero
	// value is the AMD EPYC 7302 profile; machine.Intel() is the other.
	Profile machine.Profile

	// Netem shapes the client-server link (delay/jitter/loss), as tc
	// netem does in the paper's Section V. Zero value: ideal link.
	Netem netsim.Config

	// Plan is a fault-injection schedule armed on every measured point
	// (after warmup, so fault windows land inside the measurement). The
	// zero Plan is the fault-free baseline and leaves the run untouched
	// bit-for-bit. A plan carrying a Netem config replaces opt.Netem for
	// the whole run, since link shaping is not a windowed event.
	Plan faults.Plan

	// MinSends is the minimum number of send-family syscalls an
	// estimation window must contain; windowFor sizes the measurement
	// window as MinSends/rate with 20% slack (floor 50ms). The paper
	// uses >= 2048. 0 defaults to 2048.
	MinSends int

	// Estimates is the number of estimation windows taken per load
	// level in Fig2-style protocols (paper: 10). 0 defaults to 10.
	Estimates int

	// Levels are the load points of a sweep, as fractions of the
	// workload's failure RPS (1.0 = the paper's reported failure point;
	// >1.0 drives the server past saturation). Empty defaults to
	// 0.1..1.0 in steps of 0.1.
	Levels []float64

	// Warmup is simulated time driven before measuring each point, so
	// connections are established and queues reach steady state.
	// 0 defaults to 2s (simulated, not wall-clock).
	Warmup time.Duration

	// OverWarm replaces Warmup for overloaded points (level >= 0.95),
	// giving backlogs time to accumulate — the Fig. 3 variance knee
	// needs the queue-management stalls that only a developed backlog
	// produces. 0 defaults to 12s.
	OverWarm time.Duration

	// Stream attaches the streaming (ring-buffer event) observer
	// alongside the batch probes in sweep-style experiments, pairing
	// every batch window with its event-stream reconstruction.
	Stream bool

	// StreamBytes sizes the streaming ring buffer (power of two; 0 =
	// core.DefaultStreamBytes). Undersizing it deliberately forces the
	// drop path; drop counts are deterministic for a fixed Seed.
	StreamBytes int

	// Poisson switches the load generator from fixed-rate pacing to
	// exponential interarrivals (ablation; the paper paces).
	Poisson bool

	// SeparateClient places the load generator on its own simulated
	// machine instead of co-locating it with the server (ablation; the
	// paper co-locates both containers on one host).
	SeparateClient bool

	// Parallelism bounds how many independent experiment points the
	// engine (RunPoints) runs concurrently: 0 means GOMAXPROCS, 1
	// forces the sequential path. Results are identical at any setting;
	// only wall-clock time changes. Quick() leaves it 0.
	Parallelism int

	// Progress, when non-nil, is invoked once per completed experiment
	// point (serialized, from engine goroutines). Completion order is
	// nondeterministic under parallelism; PointDone.Index identifies
	// the point.
	Progress func(PointDone)

	// Stats, when non-nil, receives aggregate wall-clock accounting
	// after each point batch an experiment driver issues.
	Stats func(RunStats)

	// Telemetry, when non-nil, collects the run's metrics: each point
	// builds its rig against a private registry and merges it in as the
	// point completes (commutative addition, so totals are independent
	// of completion order and Parallelism), and the engine adds its own
	// wall-clock instruments (harness_*). Telemetry is write-only and
	// cannot affect results; nil — the default — keeps every hot path on
	// the one-nil-check disabled route.
	Telemetry *telemetry.Registry

	// Journal, when non-nil, receives one span per experiment, point
	// and estimation window, timestamped with real wall-clock time —
	// and, from the engine, one checkpoint per completed point carrying
	// the point's serialized result, which is what makes a killed run
	// resumable. Journals are observational (timings vary run to run);
	// the results they describe stay deterministic.
	Journal *telemetry.Journal

	// Supervise forces supervised execution even with no deadline,
	// retries or chaos configured: panicking points become RunStats.Gaps
	// entries instead of crashing the process. Setting any of the three
	// fields below implies it.
	Supervise bool

	// Deadline is the wall-clock budget of a single point attempt.
	// Supervised points receive a budget clock through PointCtx and wire
	// it into their rig (RigOptions.Clock); the simulation event loop
	// checks it cooperatively, so a hung rig unwinds as a deadline kill
	// instead of stalling its worker forever. 0 = unlimited.
	Deadline time.Duration

	// Retries is how many extra attempts a failed point gets, with
	// capped exponential backoff between attempts. Every attempt reuses
	// the same index-derived seed, so a successful retry is bit-identical
	// to a first-try success.
	Retries int

	// Chaos, when non-nil, deterministically injects first-attempt
	// panics and hangs by point index (see resilience.Chaos) to prove
	// the supervision stack against real rigs. With Retries >= 1 a
	// chaos run's results equal an unperturbed run's exactly.
	Chaos *resilience.Chaos

	// Resume maps telemetry.CheckpointKey(experiment, label) to ok
	// checkpoints from a previous run's journal (telemetry.Checkpoints).
	// Matching points are satisfied from their recorded results instead
	// of recomputed; the assembled output is byte-identical to an
	// uninterrupted run.
	Resume map[string]telemetry.Record

	// exp is the experiment scope RunPoints namespaces checkpoints and
	// resume lookups under; drivers set it through expScope. Different
	// experiments reuse identical point labels, so the scope is what
	// keeps one journal's checkpoints from colliding.
	exp string
}

// Supervised reports whether RunPoints should wrap points in a
// resilience.Supervisor.
func (o ExpOptions) Supervised() bool {
	return o.Supervise || o.Deadline > 0 || o.Retries > 0 || o.Chaos != nil
}

// withDefaults fills zero-valued scale fields; see the field docs for
// the default of each. Parallelism, Netem, Profile, and the callbacks
// are left as given (their zero values are meaningful).
func (o ExpOptions) withDefaults() ExpOptions {
	if o.MinSends == 0 {
		o.MinSends = 2048
	}
	if o.Estimates == 0 {
		o.Estimates = 10
	}
	if len(o.Levels) == 0 {
		o.Levels = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	}
	if o.Warmup == 0 {
		o.Warmup = 2 * time.Second
	}
	if o.OverWarm == 0 {
		o.OverWarm = 12 * time.Second
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	return o
}

// WithDefaults is the exported form of withDefaults, for experiment
// drivers outside this package (internal/fleet): fleet sweeps must
// resolve Seed and Levels exactly as the in-package drivers do, or
// their checkpoint keys and derived rig seeds would drift from what
// RunPoints records.
func (o ExpOptions) WithDefaults() ExpOptions { return o.withDefaults() }

// Quick returns a reduced-scale configuration for unit tests: small
// windows (128 sends), 3 estimates over 3 levels, short warmups. Fields
// it leaves zero (Seed, Parallelism, ...) still pick up withDefaults.
func Quick() ExpOptions {
	return ExpOptions{
		MinSends:  128,
		Estimates: 3,
		Levels:    []float64{0.3, 0.6, 0.9},
		Warmup:    500 * time.Millisecond,
		OverWarm:  time.Second,
	}
}

// planNetem resolves the link configuration for a measured point: a
// plan carrying a netem config overrides opt.Netem for the whole run.
func planNetem(opt ExpOptions) netsim.Config {
	if opt.Plan.HasNetem() {
		return opt.Plan.Netem
	}
	return opt.Netem
}

// windowFor sizes a measurement window to gather at least minSends send
// syscalls at the given rate, with 20% slack and a 50ms floor. A
// non-positive rate or send budget returns the floor.
func windowFor(minSends int, rate float64) time.Duration {
	if minSends <= 0 || rate <= 0 {
		return 50 * time.Millisecond
	}
	w := time.Duration(float64(minSends) / rate * float64(time.Second) * 1.2)
	if w < 50*time.Millisecond {
		w = 50 * time.Millisecond
	}
	return w
}

// Estimate is one paired (RPS_real, RPS_obsv) estimation — one green dot
// in the paper's Fig. 2.
type Estimate struct {
	Level   float64 // load fraction of failure RPS
	RealRPS float64
	ObsvRPS float64
}

// Fig2Result is the per-workload correlation study of Fig. 2.
type Fig2Result struct {
	Workload  string
	Estimates []Estimate
	Fit       stats.LinearFit // ObsvRPS -> RealRPS, as the paper regresses
	Residuals []float64

	// Gaps lists the labels of load levels that failed under supervision
	// and contribute no estimates; the fit spans the surviving levels.
	// Empty (and absent from JSON) on complete runs.
	Gaps []string `json:",omitempty"`
}

// fig2Level measures one load level of the Fig. 2 protocol on a private
// rig: opt.Estimates windows of >= MinSends sends, each paired with the
// client-reported RPS of the whole level. Pure in (spec, opt, li); safe
// to run concurrently with other levels.
func fig2Level(spec workloads.Spec, opt ExpOptions, pc PointCtx, li int) []Estimate {
	level := opt.Levels[li]
	rate := level * spec.FailureRPS
	label := fmt.Sprintf("%s level=%.2f", spec.Name, level)
	pt := opt.pointBegin(label)
	defer pt.done()
	rig := NewRig(spec, RigOptions{
		Seed: opt.Seed + int64(li), Profile: opt.Profile, Netem: planNetem(opt),
		Rate: rate, Probes: true,
		Poisson: opt.Poisson, SeparateClient: opt.SeparateClient,
		Telemetry: pt.reg, Clock: pc.Clock,
	})
	defer rig.Close()
	rig.Warmup(opt.Warmup)
	if !opt.Plan.Empty() {
		rig.Arm(opt.Plan)
	}
	win := windowFor(opt.MinSends, rate)
	// The paper pairs each estimation window's RPS_obsv with the
	// benchmark-reported RPS of the whole load level, so the client
	// measures across all windows while the probe is sampled per
	// window.
	rig.Client.StartMeasurement()
	obsvs := make([]float64, 0, opt.Estimates)
	for e := 0; e < opt.Estimates; e++ {
		wsp := pt.window(fmt.Sprintf("%s window=%d", label, e))
		rig.Env.RunFor(win)
		w := rig.Obs.Sample()
		wsp.End(nil)
		obsvs = append(obsvs, w.RPSObsv())
	}
	real := rig.Client.Snapshot().RealRPS
	ests := make([]Estimate, 0, opt.Estimates)
	for _, ob := range obsvs {
		ests = append(ests, Estimate{Level: level, RealRPS: real, ObsvRPS: ob})
	}
	return ests
}

// fig2Assemble flattens per-level estimates (in level order) and fits
// the paper's ObsvRPS -> RealRPS regression.
func fig2Assemble(workload string, perLevel [][]Estimate) Fig2Result {
	res := Fig2Result{Workload: workload}
	for _, ests := range perLevel {
		res.Estimates = append(res.Estimates, ests...)
	}
	x := make([]float64, len(res.Estimates))
	y := make([]float64, len(res.Estimates))
	for i, e := range res.Estimates {
		x[i] = e.ObsvRPS
		y[i] = e.RealRPS
	}
	res.Fit = stats.FitLinear(x, y)
	res.Residuals = res.Fit.Residuals(x, y)
	return res
}

// Fig2 runs the paper's Fig. 2 protocol for one workload: at each load
// level, take opt.Estimates windows of >= MinSends send syscalls, pair
// the eBPF RPS estimate (Eq. 1) with the client-reported RPS, and fit a
// linear regression. Load levels run on the parallel engine.
func Fig2(spec workloads.Spec, opt ExpOptions) Fig2Result {
	opt = opt.withDefaults()
	opt, sp := opt.expScope("fig2 " + spec.Name)
	perLevel, st := RunPoints(opt, levelLabels(spec.Name, opt.Levels),
		func(pc PointCtx, li int) []Estimate { return fig2Level(spec, opt, pc, li) })
	res := fig2Assemble(spec.Name, perLevel)
	res.Gaps = st.GapLabels()
	opt.expEnd(sp)
	return res
}

// SweepPoint is one load level of a saturation sweep (Figs. 3-5 share it).
type SweepPoint struct {
	Level      float64
	RealRPS    float64
	ObsvRPS    float64
	SendVarUS2 float64 // Eq. 2 on send deltas
	RecvVarUS2 float64
	PollMeanNS float64 // mean epoll/select duration
	P99        time.Duration
	QoSFail    bool

	// Streaming-observer pairing (zero unless ExpOptions.Stream).
	StreamObsvRPS float64 // Eq. 1 reconstructed from the event stream
	StreamEvents  uint64  // events folded into the window
	StreamDropped uint64  // cumulative ring drops at sample time
	StreamAgree   bool    // stream window == batch window bit-for-bit

	// Gap marks a level that failed under supervision: only Level is
	// meaningful, every measurement is zero, and renderers print the
	// cell as missing instead of folding zeros into aggregates. Absent
	// from JSON on complete runs.
	Gap bool `json:",omitempty"`
}

// SweepResult is a full load sweep with the QoS crossing located.
type SweepResult struct {
	Workload string
	QoS      time.Duration
	Points   []SweepPoint
	// QoSCrossIdx is the first point violating QoS, or -1.
	QoSCrossIdx int
}

// sweepLevel measures one load level of a saturation sweep on a private
// rig. Pure in (spec, opt, li); safe to run concurrently with other
// levels.
func sweepLevel(spec workloads.Spec, opt ExpOptions, pc PointCtx, li int) SweepPoint {
	level := opt.Levels[li]
	rate := level * spec.FailureRPS
	pt := opt.pointBegin(fmt.Sprintf("%s level=%.2f", spec.Name, level))
	defer pt.done()
	rig := NewRig(spec, RigOptions{
		Seed: opt.Seed + int64(li), Profile: opt.Profile, Netem: planNetem(opt),
		Rate: rate, Probes: true,
		Stream: opt.Stream, StreamBytes: opt.StreamBytes,
		Poisson: opt.Poisson, SeparateClient: opt.SeparateClient,
		Telemetry: pt.reg, Clock: pc.Clock,
	})
	// Deferred so a deadline kill unwinding out of the event loop still
	// drains the rig's goroutines instead of leaking them.
	defer rig.Close()
	warm := opt.Warmup
	if level >= 0.95 {
		warm = opt.OverWarm // let overload queues accumulate
	}
	rig.Warmup(warm)
	if !opt.Plan.Empty() {
		rig.Arm(opt.Plan)
	}
	win := windowFor(opt.MinSends, rate)
	m := rig.Measure(win)
	p := SweepPoint{
		Level:      level,
		RealRPS:    m.Load.RealRPS,
		ObsvRPS:    m.RPSObsv,
		SendVarUS2: m.SendVarUS2,
		RecvVarUS2: m.RecvVarUS2,
		PollMeanNS: m.PollMeanNS,
		P99:        m.Load.P99,
		QoSFail:    m.Load.P99 > spec.QoS,
	}
	if opt.Stream {
		p.StreamObsvRPS = m.Stream.Send.RatePerSec
		p.StreamEvents = m.Stream.Events
		p.StreamDropped = m.Stream.Dropped
		p.StreamAgree = m.Stream.Window == m.Obs
	}
	return p
}

// assembleSweep orders points into a SweepResult and locates the QoS
// crossing.
func assembleSweep(spec workloads.Spec, points []SweepPoint) SweepResult {
	res := SweepResult{Workload: spec.Name, QoS: spec.QoS, QoSCrossIdx: -1}
	for _, p := range points {
		if p.QoSFail && res.QoSCrossIdx < 0 {
			res.QoSCrossIdx = len(res.Points)
		}
		res.Points = append(res.Points, p)
	}
	return res
}

// SaturationSweep drives one workload across load levels and records
// the Fig. 3 (send-delta variance) and Fig. 4 (poll duration) signals
// against the client-observed QoS state. Load levels run on the
// parallel engine; the result is identical at any Parallelism.
func SaturationSweep(spec workloads.Spec, opt ExpOptions) SweepResult {
	opt = opt.withDefaults()
	opt, sp := opt.expScope("sweep " + spec.Name)
	points, st := RunPoints(opt, levelLabels(spec.Name, opt.Levels),
		func(pc PointCtx, li int) SweepPoint { return sweepLevel(spec, opt, pc, li) })
	markSweepGaps(points, opt.Levels, st)
	res := assembleSweep(spec, points)
	opt.expEnd(sp)
	return res
}

// markSweepGaps flags gapped sweep points and restores their Level (the
// zero value the engine left would mislabel the hole as level 0). It
// handles flat (config x level) grids too: batch index i maps to level
// i mod len(levels).
func markSweepGaps(points []SweepPoint, levels []float64, st RunStats) {
	for _, g := range st.Gaps {
		if g.Index < 0 || g.Index >= len(points) {
			continue
		}
		points[g.Index] = SweepPoint{Level: levels[g.Index%len(levels)], Gap: true}
	}
}

// Fig5Result compares tail latency and the epoll-duration signal under
// two network configurations (Fig. 5: Triton gRPC, 0% vs 1% loss).
type Fig5Result struct {
	Workload string
	Configs  []netsim.Config
	Sweeps   []SweepResult // one per config
}

// Fig5 runs the loss-impact study. All (config, level) cells fan out as
// one engine batch, so parallelism spans configurations as well as load
// levels.
func Fig5(spec workloads.Spec, configs []netsim.Config, opt ExpOptions) Fig5Result {
	opt = opt.withDefaults()
	opt, sp := opt.expScope("fig5 " + spec.Name)
	defer opt.expEnd(sp)
	nl := len(opt.Levels)
	labels := make([]string, 0, len(configs)*nl)
	for ci := range configs {
		for _, l := range opt.Levels {
			labels = append(labels, fmt.Sprintf("%s cfg=%d level=%.2f", spec.Name, ci, l))
		}
	}
	points, st := RunPoints(opt, labels, func(pc PointCtx, i int) SweepPoint {
		o := opt
		o.Netem = configs[i/nl]
		return sweepLevel(spec, o, pc, i%nl)
	})
	markSweepGaps(points, opt.Levels, st)
	res := Fig5Result{Workload: spec.Name, Configs: configs}
	for ci := range configs {
		res.Sweeps = append(res.Sweeps, assembleSweep(spec, points[ci*nl:(ci+1)*nl]))
	}
	return res
}

// Table2Row is one workload's R^2 under each network configuration.
type Table2Row struct {
	Workload string
	R2       []float64

	// Gapped, when non-nil, flags configurations whose regression lost
	// one or more load levels to supervision gaps; renderers mark those
	// cells instead of presenting a partial R^2 as complete. Nil (and
	// absent from JSON) on complete runs.
	Gapped []bool `json:",omitempty"`
}

// Table2 reproduces the paper's Table II: the coefficient of
// determination of the Fig. 2 regression under each netem configuration.
// The whole workload x config x level grid fans out as one engine batch.
func Table2(specs []workloads.Spec, configs []netsim.Config, opt ExpOptions) []Table2Row {
	opt = opt.withDefaults()
	opt, sp := opt.expScope("table2")
	defer opt.expEnd(sp)
	nl := len(opt.Levels)
	labels := make([]string, 0, len(specs)*len(configs)*nl)
	for _, spec := range specs {
		for ci := range configs {
			for _, l := range opt.Levels {
				labels = append(labels, fmt.Sprintf("%s cfg=%d level=%.2f", spec.Name, ci, l))
			}
		}
	}
	ests, st := RunPoints(opt, labels, func(pc PointCtx, i int) []Estimate {
		si, ci, li := i/(len(configs)*nl), (i/nl)%len(configs), i%nl
		o := opt
		o.Netem = configs[ci]
		return fig2Level(specs[si], o, pc, li)
	})
	gapped := map[int]bool{} // batch index of each gapped cell's config block
	for _, g := range st.Gaps {
		gapped[g.Index/nl] = true
	}
	rows := make([]Table2Row, 0, len(specs))
	for si, spec := range specs {
		row := Table2Row{Workload: spec.Name}
		for ci := range configs {
			block := si*len(configs) + ci
			f2 := fig2Assemble(spec.Name, ests[block*nl:(block+1)*nl])
			row.R2 = append(row.R2, f2.Fit.R2)
			if gapped[block] {
				if row.Gapped == nil {
					row.Gapped = make([]bool, len(configs))
				}
				row.Gapped[ci] = true
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// OverheadResult quantifies the probe cost on tail latency (Section VI).
type OverheadResult struct {
	Workload    string
	Level       float64
	P99Off      time.Duration // probes detached
	P99On       time.Duration // probes attached
	OverheadPct float64       // (on-off)/off * 100
	PerSyscall  time.Duration // mean probe cost charged per traced syscall
	// CPUSharePct is the probes' share of the server's total CPU time —
	// the analytic bound on any latency impact, resolvable even when the
	// p99 shift is below histogram resolution.
	CPUSharePct float64

	// Gaps lists the arms ("probes=off"/"probes=on" labels) lost to
	// supervision gaps; the comparison is meaningless with either arm
	// missing and renderers say so. Absent from JSON on complete runs.
	Gaps []string `json:",omitempty"`
}

// overheadRun is one arm of the Overhead A/B pair. Fields are exported
// so the engine can checkpoint and resume an arm through JSON.
type overheadRun struct {
	P99   time.Duration
	Per   time.Duration
	Share float64
}

// Overhead measures the paper's Section VI claim: attach the full probe
// set, compare client p99 against an unprobed run at the same load. The
// probes-off and probes-on arms run as two engine points (both from
// opt.Seed, as an A/B pair must).
func Overhead(spec workloads.Spec, level float64, opt ExpOptions) OverheadResult {
	opt = opt.withDefaults()
	opt, esp := opt.expScope("overhead " + spec.Name)
	defer opt.expEnd(esp)
	rate := level * spec.FailureRPS
	win := windowFor(4*opt.MinSends, rate)

	run := func(pc PointCtx, probesOn bool) overheadRun {
		arm := "off"
		if probesOn {
			arm = "on"
		}
		pt := opt.pointBegin(fmt.Sprintf("%s probes=%s", spec.Name, arm))
		defer pt.done()
		rig := NewRig(spec, RigOptions{
			Seed: opt.Seed, Profile: opt.Profile, Netem: opt.Netem,
			Rate: rate, Probes: probesOn,
			Poisson: opt.Poisson, SeparateClient: opt.SeparateClient,
			Telemetry: pt.reg, Clock: pc.Clock,
		})
		defer rig.Close()
		rig.Warmup(opt.Warmup)
		m := rig.Measure(win)
		var r overheadRun
		if probesOn {
			var total, cpu time.Duration
			var calls uint64
			for _, th := range rig.Server.Process().Threads() {
				total += th.ProbeCost()
				cpu += th.CPUTime()
				calls += th.SyscallCount()
			}
			if calls > 0 {
				r.Per = total / time.Duration(calls)
			}
			if cpu > 0 {
				r.Share = 100 * float64(total) / float64(cpu)
			}
		}
		r.P99 = m.Load.P99
		return r
	}

	labels := []string{spec.Name + " probes=off", spec.Name + " probes=on"}
	runs, st := RunPoints(opt, labels, func(pc PointCtx, i int) overheadRun { return run(pc, i == 1) })
	off, on := runs[0], runs[1]
	res := OverheadResult{
		Workload: spec.Name, Level: level,
		P99Off: off.P99, P99On: on.P99, PerSyscall: on.Per, CPUSharePct: on.Share,
		Gaps: st.GapLabels(),
	}
	if off.P99 > 0 && len(res.Gaps) == 0 {
		res.OverheadPct = 100 * float64(on.P99-off.P99) / float64(off.P99)
	}
	return res
}

// IOUringResult demonstrates the Section V-C blind spot: the same cache
// workload served through io_uring produces (almost) no recv/send
// syscalls, so Eq. 1 reads ~zero while the server is busy.
type IOUringResult struct {
	RealRPS     float64
	ObsvRPS     float64 // from the send probe: should be ~0
	PollCount   uint64  // epoll activity: should be ~0
	IoUringRate float64 // io_uring_enter calls per second
}

// IOUring runs the blind-spot demonstration at the given load fraction.
func IOUring(level float64, opt ExpOptions) IOUringResult {
	opt = opt.withDefaults()
	esp := opt.expBegin("iouring")
	defer opt.expEnd(esp)
	spec := workloads.DataCachingIOUring()
	rate := level * spec.FailureRPS
	pt := opt.pointBegin(fmt.Sprintf("%s level=%.2f", spec.Name, level))
	defer pt.done()
	rig := NewRig(spec, RigOptions{
		Seed: opt.Seed, Rate: rate, Probes: true,
		Poisson: opt.Poisson, SeparateClient: opt.SeparateClient,
		Telemetry: pt.reg,
	})
	defer rig.Close()
	uring := probes.MustNewDeltaProbe("uring", rig.Server.Process().TGID(),
		[]int{kernelIoUringEnter})
	if err := uring.Attach(rig.ServerK.Tracer()); err != nil {
		panic(err)
	}
	rig.Warmup(opt.Warmup)
	win := windowFor(opt.MinSends, rate)
	m := rig.Measure(win)
	u := uring.Snapshot()
	return IOUringResult{
		RealRPS:     m.Load.RealRPS,
		ObsvRPS:     m.RPSObsv,
		PollCount:   m.Obs.Poll.Calls,
		IoUringRate: u.RateObsv(),
	}
}

// Fig1Result is the trace-structure study of Fig. 1: the raw stream, its
// phase segmentation, and the request-oriented subset.
type Fig1Result struct {
	Events   []probes.StreamEvent
	Segments []trace.PhaseSummary
	Counts   map[string]uint64
	Dropped  uint64
}

// Fig1 captures a short raw syscall stream of one workload through the
// streaming eBPF probe and segments it into lifecycle phases.
func Fig1(spec workloads.Spec, level float64, capture time.Duration, opt ExpOptions) Fig1Result {
	opt = opt.withDefaults()
	esp := opt.expBegin("fig1 " + spec.Name)
	defer opt.expEnd(esp)
	pt := opt.pointBegin(fmt.Sprintf("%s level=%.2f capture=%v", spec.Name, level, capture))
	defer pt.done()
	rig := NewRig(spec, RigOptions{
		Seed: opt.Seed, Rate: level * spec.FailureRPS, Probes: false,
		Poisson: opt.Poisson, SeparateClient: opt.SeparateClient,
		Telemetry: pt.reg,
	})
	defer rig.Close()
	sp := probes.MustNewStreamProbe("raw", rig.Server.Process().TGID(), 64<<20)
	if err := sp.Attach(rig.ServerK.Tracer()); err != nil {
		panic(err)
	}
	rig.Env.RunFor(capture)
	evs := sp.Drain()
	dropped := sp.Dropped()

	tev := make([]trace.Event, len(evs))
	for i, e := range evs {
		tev[i] = trace.Event{Time: e.Time, PidTgid: e.PidTgid, NR: e.NR, Enter: e.Enter, Ret: e.Ret}
	}
	return Fig1Result{
		Events:   evs,
		Segments: trace.Segment(tev),
		Counts:   trace.CountByName(tev),
		Dropped:  dropped,
	}
}

// kernelIoUringEnter mirrors kernel.SysIoUringEnter without widening the
// experiments' import surface.
const kernelIoUringEnter = 426
