package harness

import (
	"time"

	"reqlens/internal/machine"
	"reqlens/internal/netsim"
	"reqlens/internal/probes"
	"reqlens/internal/stats"
	"reqlens/internal/trace"
	"reqlens/internal/workloads"
)

// ExpOptions controls experiment scale. The zero value is paper scale;
// Quick() shrinks everything for tests.
type ExpOptions struct {
	Seed           int64
	Profile        machine.Profile // zero = AMD
	Netem          netsim.Config
	MinSends       int       // sends per estimation window (paper: >= 2048)
	Estimates      int       // estimation windows per load level (paper: 10)
	Levels         []float64 // load fractions of the paper's failure RPS
	Warmup         time.Duration
	OverWarm       time.Duration // extra warmup for overloaded points
	Poisson        bool
	SeparateClient bool
}

func (o ExpOptions) withDefaults() ExpOptions {
	if o.MinSends == 0 {
		o.MinSends = 2048
	}
	if o.Estimates == 0 {
		o.Estimates = 10
	}
	if len(o.Levels) == 0 {
		o.Levels = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	}
	if o.Warmup == 0 {
		o.Warmup = 2 * time.Second
	}
	if o.OverWarm == 0 {
		o.OverWarm = 12 * time.Second
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	return o
}

// Quick returns a reduced-scale configuration for unit tests.
func Quick() ExpOptions {
	return ExpOptions{
		MinSends:  128,
		Estimates: 3,
		Levels:    []float64{0.3, 0.6, 0.9},
		Warmup:    500 * time.Millisecond,
		OverWarm:  time.Second,
	}
}

// windowFor sizes a measurement window to gather at least minSends send
// syscalls at the given rate.
func windowFor(minSends int, rate float64) time.Duration {
	w := time.Duration(float64(minSends) / rate * float64(time.Second) * 1.2)
	if w < 50*time.Millisecond {
		w = 50 * time.Millisecond
	}
	return w
}

// Estimate is one paired (RPS_real, RPS_obsv) estimation — one green dot
// in the paper's Fig. 2.
type Estimate struct {
	Level   float64 // load fraction of failure RPS
	RealRPS float64
	ObsvRPS float64
}

// Fig2Result is the per-workload correlation study of Fig. 2.
type Fig2Result struct {
	Workload  string
	Estimates []Estimate
	Fit       stats.LinearFit // ObsvRPS -> RealRPS, as the paper regresses
	Residuals []float64
}

// Fig2 runs the paper's Fig. 2 protocol for one workload: at each load
// level, take opt.Estimates windows of >= MinSends send syscalls, pair
// the eBPF RPS estimate (Eq. 1) with the client-reported RPS, and fit a
// linear regression.
func Fig2(spec workloads.Spec, opt ExpOptions) Fig2Result {
	opt = opt.withDefaults()
	res := Fig2Result{Workload: spec.Name}
	for li, level := range opt.Levels {
		rate := level * spec.FailureRPS
		rig := NewRig(spec, RigOptions{
			Seed: opt.Seed + int64(li), Profile: opt.Profile, Netem: opt.Netem,
			Rate: rate, Probes: true,
			Poisson: opt.Poisson, SeparateClient: opt.SeparateClient,
		})
		rig.Warmup(opt.Warmup)
		win := windowFor(opt.MinSends, rate)
		// The paper pairs each estimation window's RPS_obsv with the
		// benchmark-reported RPS of the whole load level, so the client
		// measures across all windows while the probe is sampled per
		// window.
		rig.Client.StartMeasurement()
		obsvs := make([]float64, 0, opt.Estimates)
		for e := 0; e < opt.Estimates; e++ {
			rig.Env.RunFor(win)
			w := rig.Obs.Sample()
			obsvs = append(obsvs, w.RPSObsv())
		}
		real := rig.Client.Snapshot().RealRPS
		for _, ob := range obsvs {
			res.Estimates = append(res.Estimates, Estimate{
				Level: level, RealRPS: real, ObsvRPS: ob,
			})
		}
		rig.Close()
	}
	x := make([]float64, len(res.Estimates))
	y := make([]float64, len(res.Estimates))
	for i, e := range res.Estimates {
		x[i] = e.ObsvRPS
		y[i] = e.RealRPS
	}
	res.Fit = stats.FitLinear(x, y)
	res.Residuals = res.Fit.Residuals(x, y)
	return res
}

// SweepPoint is one load level of a saturation sweep (Figs. 3-5 share it).
type SweepPoint struct {
	Level      float64
	RealRPS    float64
	ObsvRPS    float64
	SendVarUS2 float64 // Eq. 2 on send deltas
	RecvVarUS2 float64
	PollMeanNS float64 // mean epoll/select duration
	P99        time.Duration
	QoSFail    bool
}

// SweepResult is a full load sweep with the QoS crossing located.
type SweepResult struct {
	Workload string
	QoS      time.Duration
	Points   []SweepPoint
	// QoSCrossIdx is the first point violating QoS, or -1.
	QoSCrossIdx int
}

// SaturationSweep drives one workload across load levels and records
// the Fig. 3 (send-delta variance) and Fig. 4 (poll duration) signals
// against the client-observed QoS state.
func SaturationSweep(spec workloads.Spec, opt ExpOptions) SweepResult {
	opt = opt.withDefaults()
	res := SweepResult{Workload: spec.Name, QoS: spec.QoS, QoSCrossIdx: -1}
	for li, level := range opt.Levels {
		rate := level * spec.FailureRPS
		rig := NewRig(spec, RigOptions{
			Seed: opt.Seed + int64(li), Profile: opt.Profile, Netem: opt.Netem,
			Rate: rate, Probes: true,
			Poisson: opt.Poisson, SeparateClient: opt.SeparateClient,
		})
		warm := opt.Warmup
		if level >= 0.95 {
			warm = opt.OverWarm // let overload queues accumulate
		}
		rig.Warmup(warm)
		win := windowFor(opt.MinSends, rate)
		m := rig.Measure(win)
		rig.Close()
		p := SweepPoint{
			Level:      level,
			RealRPS:    m.Load.RealRPS,
			ObsvRPS:    m.RPSObsv,
			SendVarUS2: m.SendVarUS2,
			RecvVarUS2: m.RecvVarUS2,
			PollMeanNS: m.PollMeanNS,
			P99:        m.Load.P99,
			QoSFail:    m.Load.P99 > spec.QoS,
		}
		if p.QoSFail && res.QoSCrossIdx < 0 {
			res.QoSCrossIdx = len(res.Points)
		}
		res.Points = append(res.Points, p)
	}
	return res
}

// Fig5Result compares tail latency and the epoll-duration signal under
// two network configurations (Fig. 5: Triton gRPC, 0% vs 1% loss).
type Fig5Result struct {
	Workload string
	Configs  []netsim.Config
	Sweeps   []SweepResult // one per config
}

// Fig5 runs the loss-impact study.
func Fig5(spec workloads.Spec, configs []netsim.Config, opt ExpOptions) Fig5Result {
	res := Fig5Result{Workload: spec.Name, Configs: configs}
	for _, cfg := range configs {
		o := opt
		o.Netem = cfg
		res.Sweeps = append(res.Sweeps, SaturationSweep(spec, o))
	}
	return res
}

// Table2Row is one workload's R^2 under each network configuration.
type Table2Row struct {
	Workload string
	R2       []float64
}

// Table2 reproduces the paper's Table II: the coefficient of
// determination of the Fig. 2 regression under each netem configuration.
func Table2(specs []workloads.Spec, configs []netsim.Config, opt ExpOptions) []Table2Row {
	rows := make([]Table2Row, 0, len(specs))
	for _, spec := range specs {
		row := Table2Row{Workload: spec.Name}
		for _, cfg := range configs {
			o := opt
			o.Netem = cfg
			f2 := Fig2(spec, o)
			row.R2 = append(row.R2, f2.Fit.R2)
		}
		rows = append(rows, row)
	}
	return rows
}

// OverheadResult quantifies the probe cost on tail latency (Section VI).
type OverheadResult struct {
	Workload    string
	Level       float64
	P99Off      time.Duration // probes detached
	P99On       time.Duration // probes attached
	OverheadPct float64       // (on-off)/off * 100
	PerSyscall  time.Duration // mean probe cost charged per traced syscall
	// CPUSharePct is the probes' share of the server's total CPU time —
	// the analytic bound on any latency impact, resolvable even when the
	// p99 shift is below histogram resolution.
	CPUSharePct float64
}

// Overhead measures the paper's Section VI claim: attach the full probe
// set, compare client p99 against an unprobed run at the same load.
func Overhead(spec workloads.Spec, level float64, opt ExpOptions) OverheadResult {
	opt = opt.withDefaults()
	rate := level * spec.FailureRPS
	win := windowFor(4*opt.MinSends, rate)

	run := func(probesOn bool) (time.Duration, time.Duration, float64) {
		rig := NewRig(spec, RigOptions{
			Seed: opt.Seed, Profile: opt.Profile, Netem: opt.Netem,
			Rate: rate, Probes: probesOn,
			Poisson: opt.Poisson, SeparateClient: opt.SeparateClient,
		})
		rig.Warmup(opt.Warmup)
		m := rig.Measure(win)
		var per time.Duration
		var share float64
		if probesOn {
			var total, cpu time.Duration
			var calls uint64
			for _, th := range rig.Server.Process().Threads() {
				total += th.ProbeCost()
				cpu += th.CPUTime()
				calls += th.SyscallCount()
			}
			if calls > 0 {
				per = total / time.Duration(calls)
			}
			if cpu > 0 {
				share = 100 * float64(total) / float64(cpu)
			}
		}
		rig.Close()
		return m.Load.P99, per, share
	}

	off, _, _ := run(false)
	on, per, share := run(true)
	res := OverheadResult{
		Workload: spec.Name, Level: level,
		P99Off: off, P99On: on, PerSyscall: per, CPUSharePct: share,
	}
	if off > 0 {
		res.OverheadPct = 100 * float64(on-off) / float64(off)
	}
	return res
}

// IOUringResult demonstrates the Section V-C blind spot: the same cache
// workload served through io_uring produces (almost) no recv/send
// syscalls, so Eq. 1 reads ~zero while the server is busy.
type IOUringResult struct {
	RealRPS     float64
	ObsvRPS     float64 // from the send probe: should be ~0
	PollCount   uint64  // epoll activity: should be ~0
	IoUringRate float64 // io_uring_enter calls per second
}

// IOUring runs the blind-spot demonstration at the given load fraction.
func IOUring(level float64, opt ExpOptions) IOUringResult {
	opt = opt.withDefaults()
	spec := workloads.DataCachingIOUring()
	rate := level * spec.FailureRPS
	rig := NewRig(spec, RigOptions{
		Seed: opt.Seed, Rate: rate, Probes: true,
		Poisson: opt.Poisson, SeparateClient: opt.SeparateClient,
	})
	uring := probes.MustNewDeltaProbe("uring", rig.Server.Process().TGID(),
		[]int{kernelIoUringEnter})
	if err := uring.Attach(rig.ServerK.Tracer()); err != nil {
		panic(err)
	}
	rig.Warmup(opt.Warmup)
	win := windowFor(opt.MinSends, rate)
	m := rig.Measure(win)
	u := uring.Snapshot()
	rig.Close()
	return IOUringResult{
		RealRPS:     m.Load.RealRPS,
		ObsvRPS:     m.RPSObsv,
		PollCount:   m.Obs.Poll.Calls,
		IoUringRate: u.RateObsv(),
	}
}

// Fig1Result is the trace-structure study of Fig. 1: the raw stream, its
// phase segmentation, and the request-oriented subset.
type Fig1Result struct {
	Events   []probes.StreamEvent
	Segments []trace.PhaseSummary
	Counts   map[string]uint64
	Dropped  uint64
}

// Fig1 captures a short raw syscall stream of one workload through the
// streaming eBPF probe and segments it into lifecycle phases.
func Fig1(spec workloads.Spec, level float64, capture time.Duration, opt ExpOptions) Fig1Result {
	opt = opt.withDefaults()
	rig := NewRig(spec, RigOptions{
		Seed: opt.Seed, Rate: level * spec.FailureRPS, Probes: false,
		Poisson: opt.Poisson, SeparateClient: opt.SeparateClient,
	})
	sp := probes.MustNewStreamProbe("raw", rig.Server.Process().TGID(), 64<<20)
	if err := sp.Attach(rig.ServerK.Tracer()); err != nil {
		panic(err)
	}
	rig.Env.RunFor(capture)
	evs := sp.Drain()
	dropped := sp.Dropped()
	rig.Close()

	tev := make([]trace.Event, len(evs))
	for i, e := range evs {
		tev[i] = trace.Event{Time: e.Time, PidTgid: e.PidTgid, NR: e.NR, Enter: e.Enter, Ret: e.Ret}
	}
	return Fig1Result{
		Events:   evs,
		Segments: trace.Segment(tev),
		Counts:   trace.CountByName(tev),
		Dropped:  dropped,
	}
}

// kernelIoUringEnter mirrors kernel.SysIoUringEnter without widening the
// experiments' import surface.
const kernelIoUringEnter = 426
