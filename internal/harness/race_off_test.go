//go:build !race

package harness

// raceEnabled reports whether this test binary was built with -race.
const raceEnabled = false
