package harness

import (
	"fmt"
	"runtime"
	"sync"
	"time"
)

// This file is the parallel experiment engine. Every figure/table driver
// in this package decomposes its protocol into independent *points* — a
// (workload, netem, load level) tuple measured on its own Rig — and hands
// them to RunPoints, which fans them out across a bounded worker pool.
//
// The engine preserves the sequential drivers' semantics exactly:
//
//   - Each point derives its own seed (the drivers use opt.Seed +
//     int64(levelIndex)), builds a private Rig with a private sim.Env,
//     and never shares mutable state with other points. A point's result
//     therefore depends only on its inputs, not on scheduling.
//   - Results are written to the slot matching the point's index, so the
//     assembled output is bit-identical to a sequential run regardless of
//     completion order or worker count. TestParallelSweepDeterminism
//     asserts this.
//
// Only wall-clock accounting (RunStats, PointDone.Wall) reflects real
// time and real scheduling; it never feeds back into results.

// PointDone reports the completion of one experiment point to an
// ExpOptions.Progress callback. Under parallelism points complete in
// nondeterministic order; Index identifies the point within its batch.
type PointDone struct {
	Index  int           // point index within the batch, 0-based
	Total  int           // number of points in the batch
	Label  string        // human-readable point description, e.g. "silo level=0.50"
	Wall   time.Duration // real wall-clock time the point took
	Worker int           // worker slot that ran the point (0..Workers-1)
}

// RunStats is the engine's aggregate wall-clock accounting for one
// RunPoints batch. It is reported through ExpOptions.Stats and returned
// by RunPoints; it is deliberately kept out of experiment results so
// that parallel and sequential runs produce identical result values.
type RunStats struct {
	Points    int             // points in the batch
	Workers   int             // resolved worker count
	Wall      time.Duration   // wall-clock of the whole batch
	PointWall []time.Duration // per-point wall-clock, in point order
}

// TotalPointWall returns the summed per-point wall-clock. Note that
// under parallelism each point's wall includes time spent descheduled
// in favor of other points, so this sum can exceed what a sequential
// run would pay; true speedup is measured by comparing the Wall of two
// runs (see BenchmarkSweepParallelism).
func (s RunStats) TotalPointWall() time.Duration {
	var t time.Duration
	for _, w := range s.PointWall {
		t += w
	}
	return t
}

// Concurrency returns TotalPointWall/Wall: the average number of points
// in flight over the batch (1 for sequential runs, →Workers when the
// pool stays saturated).
func (s RunStats) Concurrency() float64 {
	if s.Wall <= 0 {
		return 0
	}
	return float64(s.TotalPointWall()) / float64(s.Wall)
}

// String formats the stats as a one-line summary.
func (s RunStats) String() string {
	return fmt.Sprintf("%d points / %d workers in %v (point sum %v, concurrency %.2fx)",
		s.Points, s.Workers, s.Wall.Round(time.Millisecond),
		s.TotalPointWall().Round(time.Millisecond), s.Concurrency())
}

// workers resolves the effective worker count for a batch of n points:
// ExpOptions.Parallelism when positive, else GOMAXPROCS, capped at n.
func (o ExpOptions) workers(n int) int {
	w := o.Parallelism
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// RunPoints runs fn(i) for every point i in [0, len(labels)) across a
// bounded worker pool and returns the results in point order. fn must be
// a pure function of its index (each call typically builds, drives, and
// closes one Rig); it must not share mutable state across points. The
// labels name the points for progress reporting.
//
// The worker count is opt.Parallelism, or GOMAXPROCS when zero; a count
// of 1 degenerates to a plain sequential loop. Whatever the count,
// results are identical — parallelism changes only wall-clock time.
// opt.Progress (if set) is invoked exactly once per completed point,
// serialized; opt.Stats (if set) receives the batch's aggregate timing.
func RunPoints[T any](opt ExpOptions, labels []string, fn func(i int) T) ([]T, RunStats) {
	n := len(labels)
	out := make([]T, n)
	stats := RunStats{
		Points:    n,
		Workers:   opt.workers(n),
		PointWall: make([]time.Duration, n),
	}
	if n == 0 {
		if opt.Stats != nil {
			opt.Stats(stats)
		}
		return out, stats
	}

	// Engine-level instruments (no-ops on a nil registry): points in
	// flight, per-point wall-clock, and a completion counter. They track
	// real time and real scheduling, never simulated results.
	inflight := opt.Telemetry.Gauge("harness_points_in_flight")
	wallHist := opt.Telemetry.Histogram("harness_point_wall_ns")
	pointsDone := opt.Telemetry.Counter("harness_points_total")

	start := time.Now()
	var mu sync.Mutex // serializes Progress callbacks
	runOne := func(i, worker int) {
		inflight.Add(1)
		t0 := time.Now()
		out[i] = fn(i)
		wall := time.Since(t0)
		inflight.Add(-1)
		wallHist.Observe(wall.Nanoseconds())
		pointsDone.Inc()
		stats.PointWall[i] = wall
		if opt.Progress != nil {
			mu.Lock()
			opt.Progress(PointDone{
				Index: i, Total: n, Label: labels[i],
				Wall: wall, Worker: worker,
			})
			mu.Unlock()
		}
	}

	if stats.Workers == 1 {
		for i := 0; i < n; i++ {
			runOne(i, 0)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < stats.Workers; w++ {
			wg.Add(1)
			go func(worker int) {
				defer wg.Done()
				for i := range idx {
					runOne(i, worker)
				}
			}(w)
		}
		for i := 0; i < n; i++ {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}

	stats.Wall = time.Since(start)
	if opt.Stats != nil {
		opt.Stats(stats)
	}
	return out, stats
}

// levelLabels names one point per load level, e.g. "silo level=0.50".
func levelLabels(prefix string, levels []float64) []string {
	ls := make([]string, len(levels))
	for i, l := range levels {
		ls[i] = fmt.Sprintf("%s level=%.2f", prefix, l)
	}
	return ls
}
