package harness

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"reqlens/internal/resilience"
	"reqlens/internal/sim"
	"reqlens/internal/telemetry"
)

// This file is the parallel experiment engine. Every figure/table driver
// in this package decomposes its protocol into independent *points* — a
// (workload, netem, load level) tuple measured on its own Rig — and hands
// them to RunPoints, which fans them out across a bounded worker pool.
//
// The engine preserves the sequential drivers' semantics exactly:
//
//   - Each point derives its own seed (the drivers use opt.Seed +
//     int64(levelIndex)), builds a private Rig with a private sim.Env,
//     and never shares mutable state with other points. A point's result
//     therefore depends only on its inputs, not on scheduling.
//   - Results are written to the slot matching the point's index, so the
//     assembled output is bit-identical to a sequential run regardless of
//     completion order or worker count. TestParallelSweepDeterminism
//     asserts this.
//
// Only wall-clock accounting (RunStats, PointDone.Wall) reflects real
// time and real scheduling; it never feeds back into results.

// PointCtx is the execution context RunPoints hands each point
// function. Clock is the attempt's budget clock under supervision (nil
// otherwise); points that build rigs wire it into RigOptions.Clock so
// the event loop honors the deadline. Attempt is 0 on the first try and
// increments per retry — the point's *inputs* never depend on it, which
// is what makes a retried success bit-identical to a first-try one.
type PointCtx struct {
	Clock   *sim.Clock
	Attempt int
}

// PointDone reports the completion of one experiment point to an
// ExpOptions.Progress callback. Under parallelism points complete in
// nondeterministic order; Index identifies the point within its batch.
type PointDone struct {
	Index  int           // point index within the batch, 0-based
	Total  int           // number of points in the batch
	Label  string        // human-readable point description, e.g. "silo level=0.50"
	Wall   time.Duration // real wall-clock time the point took
	Worker int           // worker slot that ran the point (0..Workers-1)
	Cached bool          // satisfied from a resume checkpoint, not recomputed
	Gap    bool          // failed after all supervision attempts; result is zero
}

// RunStats is the engine's aggregate wall-clock accounting for one
// RunPoints batch. It is reported through ExpOptions.Stats and returned
// by RunPoints; it is deliberately kept out of experiment results so
// that parallel and sequential runs produce identical result values.
type RunStats struct {
	Points    int             // points in the batch
	Workers   int             // resolved worker count
	Wall      time.Duration   // wall-clock of the whole batch
	PointWall []time.Duration // per-point wall-clock, in point order

	// Cached counts points satisfied from resume checkpoints.
	Cached int
	// Gaps lists the points that failed after every supervision attempt,
	// sorted by point index. Their result slots hold the zero value;
	// drivers propagate the holes so renderers can mark them instead of
	// reporting poisoned aggregates.
	Gaps []*resilience.PointError
}

// GapLabels returns the labels of the gapped points, in point order.
func (s RunStats) GapLabels() []string {
	if len(s.Gaps) == 0 {
		return nil
	}
	ls := make([]string, len(s.Gaps))
	for i, g := range s.Gaps {
		ls[i] = g.Label
	}
	return ls
}

// TotalPointWall returns the summed per-point wall-clock. Note that
// under parallelism each point's wall includes time spent descheduled
// in favor of other points, so this sum can exceed what a sequential
// run would pay; true speedup is measured by comparing the Wall of two
// runs (see BenchmarkSweepParallelism).
func (s RunStats) TotalPointWall() time.Duration {
	var t time.Duration
	for _, w := range s.PointWall {
		t += w
	}
	return t
}

// Concurrency returns TotalPointWall/Wall: the average number of points
// in flight over the batch (1 for sequential runs, →Workers when the
// pool stays saturated).
func (s RunStats) Concurrency() float64 {
	if s.Wall <= 0 {
		return 0
	}
	return float64(s.TotalPointWall()) / float64(s.Wall)
}

// String formats the stats as a one-line summary.
func (s RunStats) String() string {
	base := fmt.Sprintf("%d points / %d workers in %v (point sum %v, concurrency %.2fx)",
		s.Points, s.Workers, s.Wall.Round(time.Millisecond),
		s.TotalPointWall().Round(time.Millisecond), s.Concurrency())
	if s.Cached > 0 {
		base += fmt.Sprintf(", %d resumed from checkpoints", s.Cached)
	}
	if len(s.Gaps) > 0 {
		base += fmt.Sprintf(", %d gaps", len(s.Gaps))
	}
	return base
}

// workers resolves the effective worker count for a batch of n points:
// ExpOptions.Parallelism when positive, else GOMAXPROCS, capped at n.
func (o ExpOptions) workers(n int) int {
	w := o.Parallelism
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// RunPoints runs fn for every point i in [0, len(labels)) across a
// bounded worker pool and returns the results in point order. fn must be
// a pure function of its index (each call typically builds, drives, and
// closes one Rig); it must not share mutable state across points. The
// labels name the points for progress reporting; under supervision and
// resume they also key checkpoints, so they must be unique within the
// batch.
//
// The worker count is opt.Parallelism, or GOMAXPROCS when zero; a count
// of 1 degenerates to a plain sequential loop. Whatever the count,
// results are identical — parallelism changes only wall-clock time.
// opt.Progress (if set) is invoked exactly once per completed point,
// serialized; opt.Stats (if set) receives the batch's aggregate timing.
//
// Supervision (opt.Supervised() true): each point runs under a
// resilience.Supervisor — panics become RunStats.Gaps entries instead of
// crashing the process, a Deadline hands the point a budget clock via
// PointCtx, and failed attempts retry with the same derived inputs. A
// point that fails every attempt leaves the zero T in its slot and is
// reported in Gaps.
//
// Checkpointing (opt.Journal non-nil): every completed point is recorded
// as a checkpoint carrying its JSON-serialized result, keyed by the
// driver's experiment scope plus the point label — labels repeat across
// experiments (sweep and stream-agreement both use "<workload>
// level=X"), so the scope is what keeps one journal's checkpoints from
// shadowing each other. Resume (opt.Resume non-nil): points whose
// (experiment, label) key maps to an ok checkpoint with a matching root
// seed and point index are satisfied from the journal without
// recomputation — and re-checkpointed, so a resumed run's journal is
// itself resumable.
func RunPoints[T any](opt ExpOptions, labels []string, fn func(pc PointCtx, i int) T) ([]T, RunStats) {
	n := len(labels)
	out := make([]T, n)
	stats := RunStats{
		Points:    n,
		Workers:   opt.workers(n),
		PointWall: make([]time.Duration, n),
	}
	if n == 0 {
		if opt.Stats != nil {
			opt.Stats(stats)
		}
		return out, stats
	}

	var sup *resilience.Supervisor
	if opt.Supervised() {
		sup = resilience.New(resilience.Options{
			Deadline: opt.Deadline, Retries: opt.Retries,
			Chaos: opt.Chaos, Telemetry: opt.Telemetry,
		})
	}

	// Engine-level instruments (no-ops on a nil registry): points in
	// flight, per-point wall-clock, and a completion counter. They track
	// real time and real scheduling, never simulated results.
	inflight := opt.Telemetry.Gauge("harness_points_in_flight")
	wallHist := opt.Telemetry.Histogram("harness_point_wall_ns")
	pointsDone := opt.Telemetry.Counter("harness_points_total")
	cachedPts := opt.Telemetry.Counter("harness_points_resumed_total")

	seed := opt.withDefaults().Seed
	checkpoint := func(i, attempts int, perr *resilience.PointError) {
		if opt.Journal == nil {
			return
		}
		rec := telemetry.Record{Experiment: opt.exp, Name: labels[i], Index: i, Seed: seed, Attempts: attempts}
		if perr != nil {
			rec.Status = telemetry.CheckpointFailed
			rec.Error = perr.Error()
		} else {
			rec.Status = telemetry.CheckpointOK
			if data, err := json.Marshal(out[i]); err == nil {
				rec.Result = data
			}
		}
		opt.Journal.Checkpoint(rec)
	}

	start := time.Now()
	var mu sync.Mutex // serializes Progress callbacks and shared stats
	runOne := func(i, worker int) {
		// Resume: an ok checkpoint with the right root seed and point
		// index replays the recorded result byte-for-byte (Go numbers
		// round-trip JSON exactly). A checkpoint from another seed or
		// batch position, a failed one, or one whose payload no longer
		// parses falls through to recomputation.
		if rec, ok := opt.Resume[telemetry.CheckpointKey(opt.exp, labels[i])]; ok &&
			rec.Index == i && rec.Seed == seed &&
			rec.Status == telemetry.CheckpointOK && len(rec.Result) > 0 {
			t0 := time.Now()
			var v T
			if err := json.Unmarshal(rec.Result, &v); err == nil {
				out[i] = v
				cachedPts.Inc()
				checkpoint(i, rec.Attempts, nil) // keep the resumed journal complete
				// Replay wall time is tiny but real; recording it keeps
				// TotalPointWall/Concurrency honest on resumed runs.
				wall := time.Since(t0)
				wallHist.Observe(wall.Nanoseconds())
				stats.PointWall[i] = wall
				mu.Lock()
				stats.Cached++
				if opt.Progress != nil {
					opt.Progress(PointDone{Index: i, Total: n, Label: labels[i],
						Wall: wall, Worker: worker, Cached: true})
				}
				mu.Unlock()
				return
			}
		}

		inflight.Add(1)
		t0 := time.Now()
		var perr *resilience.PointError
		attempts := 1
		if sup != nil {
			out[i], perr = resilience.Run(sup,
				resilience.Point{Label: labels[i], Index: i, Seed: seed},
				func(attempt int, clock *sim.Clock) T {
					attempts = attempt + 1
					return fn(PointCtx{Clock: clock, Attempt: attempt}, i)
				})
			if perr != nil {
				attempts = perr.Attempts
			}
		} else {
			out[i] = fn(PointCtx{}, i)
		}
		wall := time.Since(t0)
		inflight.Add(-1)
		wallHist.Observe(wall.Nanoseconds())
		pointsDone.Inc()
		stats.PointWall[i] = wall
		checkpoint(i, attempts, perr)
		mu.Lock()
		if perr != nil {
			stats.Gaps = append(stats.Gaps, perr)
		}
		if opt.Progress != nil {
			opt.Progress(PointDone{
				Index: i, Total: n, Label: labels[i],
				Wall: wall, Worker: worker, Gap: perr != nil,
			})
		}
		mu.Unlock()
	}

	if stats.Workers == 1 {
		for i := 0; i < n; i++ {
			runOne(i, 0)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < stats.Workers; w++ {
			wg.Add(1)
			go func(worker int) {
				defer wg.Done()
				for i := range idx {
					runOne(i, worker)
				}
			}(w)
		}
		for i := 0; i < n; i++ {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}

	// Workers append gaps in completion order; point order is the stable
	// report order at any Parallelism.
	sort.Slice(stats.Gaps, func(a, b int) bool {
		return stats.Gaps[a].Index < stats.Gaps[b].Index
	})

	stats.Wall = time.Since(start)
	if opt.Stats != nil {
		opt.Stats(stats)
	}
	return out, stats
}

// levelLabels names one point per load level, e.g. "silo level=0.50".
func levelLabels(prefix string, levels []float64) []string {
	ls := make([]string, len(levels))
	for i, l := range levels {
		ls[i] = fmt.Sprintf("%s level=%.2f", prefix, l)
	}
	return ls
}
