package harness

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"reqlens/internal/kernel"
	"reqlens/internal/stats"
	"reqlens/internal/trace"
)

// asciiPlot renders y against x on a character grid. A vertical marker
// column is drawn at markX (NaN-safe: pass -1 to omit).
func asciiPlot(title, xlab, ylab string, xs, ys []float64, markX float64) string {
	const w, h = 64, 14
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	if len(xs) == 0 {
		b.WriteString("  (no data)\n")
		return b.String()
	}
	minX, maxX := xs[0], xs[0]
	minY, maxY := ys[0], ys[0]
	for i := range xs {
		if xs[i] < minX {
			minX = xs[i]
		}
		if xs[i] > maxX {
			maxX = xs[i]
		}
		if ys[i] < minY {
			minY = ys[i]
		}
		if ys[i] > maxY {
			maxY = ys[i]
		}
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, h)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", w))
	}
	col := func(x float64) int {
		c := int((x - minX) / (maxX - minX) * float64(w-1))
		if c < 0 {
			c = 0
		}
		if c >= w {
			c = w - 1
		}
		return c
	}
	if markX >= minX && markX <= maxX {
		c := col(markX)
		for r := 0; r < h; r++ {
			grid[r][c] = '|'
		}
	}
	for i := range xs {
		r := int((ys[i] - minY) / (maxY - minY) * float64(h-1))
		if r < 0 {
			r = 0
		}
		if r >= h {
			r = h - 1
		}
		grid[h-1-r][col(xs[i])] = '*'
	}
	for r := 0; r < h; r++ {
		lab := "        "
		if r == 0 {
			lab = fmt.Sprintf("%7.2f ", maxY)
		}
		if r == h-1 {
			lab = fmt.Sprintf("%7.2f ", minY)
		}
		fmt.Fprintf(&b, "%s|%s\n", lab, string(grid[r]))
	}
	fmt.Fprintf(&b, "        +%s\n", strings.Repeat("-", w))
	fmt.Fprintf(&b, "        %-10.3g%*s%10.3g   x=%s y=%s\n", minX, w-18, "", maxX, xlab, ylab)
	return b.String()
}

// gapMark is the cell renderers print for data lost to supervision
// gaps, so a hole reads as "missing", never as a zero measurement.
const gapMark = "—"

// RenderFig2 formats one workload's Fig. 2 panel: the correlation plot,
// fit quality and residual spread. Gapped levels are called out below
// the plot; the fit already spans only the surviving estimates.
func RenderFig2(r Fig2Result) string {
	var b strings.Builder
	xs := make([]float64, len(r.Estimates))
	ys := make([]float64, len(r.Estimates))
	for i, e := range r.Estimates {
		xs[i] = e.ObsvRPS
		ys[i] = e.RealRPS
	}
	b.WriteString(asciiPlot(
		fmt.Sprintf("Fig.2 %s: RPS_real vs RPS_obsv (R^2=%.4f, slope=%.3f)", r.Workload, r.Fit.R2, r.Fit.Slope),
		"RPS_obsv", "RPS_real", stats.Normalize(xs), stats.Normalize(ys), -1))
	if len(r.Residuals) > 0 {
		q := stats.Quantiles(r.Residuals, 0.05, 0.5, 0.95)
		mean := stats.Mean(r.Residuals)
		fmt.Fprintf(&b, "residuals: mean=%+.1f p5=%+.1f p50=%+.1f p95=%+.1f (RPS)\n",
			mean, q[0], q[1], q[2])
	}
	if len(r.Gaps) > 0 {
		fmt.Fprintf(&b, "gaps (%s): %s\n", gapMark, strings.Join(r.Gaps, ", "))
	}
	return b.String()
}

// sweepSeries extracts (RealRPS, y) pairs from the non-gapped points of
// a sweep, so holes neither plot as zeros nor poison normalization.
func sweepSeries(r SweepResult, y func(SweepPoint) float64) (xs, ys []float64, gaps []float64) {
	for _, p := range r.Points {
		if p.Gap {
			gaps = append(gaps, p.Level)
			continue
		}
		xs = append(xs, p.RealRPS)
		ys = append(ys, y(p))
	}
	return xs, ys, gaps
}

// gapFootnote renders the levels a sweep plot had to omit.
func gapFootnote(gaps []float64) string {
	if len(gaps) == 0 {
		return ""
	}
	parts := make([]string, len(gaps))
	for i, l := range gaps {
		parts[i] = fmt.Sprintf("%.2f", l)
	}
	return fmt.Sprintf("gap levels (%s): %s\n", gapMark, strings.Join(parts, ", "))
}

// RenderFig3 formats one workload's Fig. 3 panel: normalized send-delta
// variance vs normalized RPS with the QoS-crossing line.
func RenderFig3(r SweepResult) string {
	xs, ys, gaps := sweepSeries(r, func(p SweepPoint) float64 { return p.SendVarUS2 })
	mark := -1.0
	if r.QoSCrossIdx >= 0 && !r.Points[r.QoSCrossIdx].Gap {
		mark = normOf(xs, r.Points[r.QoSCrossIdx].RealRPS)
	}
	return asciiPlot(
		fmt.Sprintf("Fig.3 %s: normalized var(dt_send) vs normalized RPS (| = QoS fail)", r.Workload),
		"RPS (norm)", "var (norm)", stats.Normalize(xs), stats.NormalizeByMax(ys), mark) +
		gapFootnote(gaps)
}

// RenderFig4 formats one workload's Fig. 4 panel: normalized mean poll
// duration vs normalized RPS with the QoS-crossing line.
func RenderFig4(r SweepResult) string {
	xs, ys, gaps := sweepSeries(r, func(p SweepPoint) float64 { return p.PollMeanNS })
	mark := -1.0
	if r.QoSCrossIdx >= 0 && !r.Points[r.QoSCrossIdx].Gap {
		mark = normOf(xs, r.Points[r.QoSCrossIdx].RealRPS)
	}
	return asciiPlot(
		fmt.Sprintf("Fig.4 %s: normalized epoll duration vs RPS (| = QoS fail)", r.Workload),
		"RPS (norm)", "poll dur (norm)", stats.Normalize(xs), stats.NormalizeByMax(ys), mark) +
		gapFootnote(gaps)
}

func normOf(xs []float64, v float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	if hi == lo {
		return 0
	}
	return (v - lo) / (hi - lo)
}

// RenderFig5 formats the loss-impact comparison: p99 (top) and poll
// duration (bottom) per network config.
func RenderFig5(r Fig5Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig.5 %s: network loss impact\n", r.Workload)
	if len(r.Sweeps) == 0 || len(r.Sweeps[0].Points) == 0 {
		b.WriteString("  (no data)\n")
		return b.String()
	}
	fmt.Fprintf(&b, "%-8s", "level")
	for _, cfg := range r.Configs {
		fmt.Fprintf(&b, " | %14s", fmt.Sprintf("%v/%.0f%%loss p99", cfg.Delay, cfg.Loss*100))
	}
	for range r.Configs {
		fmt.Fprintf(&b, " | %12s", "epoll dur")
	}
	b.WriteByte('\n')
	for i := range r.Sweeps[0].Points {
		fmt.Fprintf(&b, "%-8.2f", r.Sweeps[0].Points[i].Level)
		for _, sw := range r.Sweeps {
			if sw.Points[i].Gap {
				fmt.Fprintf(&b, " | %14s", gapMark)
			} else {
				fmt.Fprintf(&b, " | %14v", sw.Points[i].P99.Round(time.Microsecond))
			}
		}
		for _, sw := range r.Sweeps {
			if sw.Points[i].Gap {
				fmt.Fprintf(&b, " | %12s", gapMark)
			} else {
				fmt.Fprintf(&b, " | %12v", time.Duration(sw.Points[i].PollMeanNS).Round(time.Microsecond))
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderTable2 formats the Table II grid.
func RenderTable2(rows []Table2Row, configNames []string) string {
	var b strings.Builder
	b.WriteString("Table II: R^2 of RPS_obsv under network configurations\n")
	fmt.Fprintf(&b, "%-22s", "workload")
	for _, n := range configNames {
		fmt.Fprintf(&b, " | %16s", n)
	}
	b.WriteByte('\n')
	b.WriteString(strings.Repeat("-", 22+19*len(configNames)) + "\n")
	gapsSeen := false
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s", r.Workload)
		for ci, v := range r.R2 {
			if ci < len(r.Gapped) && r.Gapped[ci] {
				fmt.Fprintf(&b, " | %16s", gapMark)
				gapsSeen = true
			} else {
				fmt.Fprintf(&b, " | %16.4f", v)
			}
		}
		b.WriteByte('\n')
	}
	if gapsSeen {
		fmt.Fprintf(&b, "%s = cell incomplete (one or more levels lost to supervision gaps)\n", gapMark)
	}
	return b.String()
}

// RenderOverhead formats the Section VI overhead rows.
func RenderOverhead(rs []OverheadResult) string {
	var b strings.Builder
	b.WriteString("eBPF probe overhead on tail latency (Section VI)\n")
	fmt.Fprintf(&b, "%-22s | %6s | %12s | %12s | %9s | %12s | %9s\n",
		"workload", "load", "p99 off", "p99 on", "overhead", "per syscall", "cpu share")
	for _, r := range rs {
		if len(r.Gaps) > 0 {
			fmt.Fprintf(&b, "%-22s | %5.0f%% | %s incomplete: lost %s\n",
				r.Workload, 100*r.Level, gapMark, strings.Join(r.Gaps, ", "))
			continue
		}
		fmt.Fprintf(&b, "%-22s | %5.0f%% | %12v | %12v | %+8.2f%% | %12v | %8.3f%%\n",
			r.Workload, 100*r.Level, r.P99Off.Round(time.Microsecond),
			r.P99On.Round(time.Microsecond), r.OverheadPct, r.PerSyscall, r.CPUSharePct)
	}
	return b.String()
}

// RenderIOUring formats the Section V-C blind-spot demonstration.
func RenderIOUring(r IOUringResult) string {
	return fmt.Sprintf(
		"io_uring blind spot (Section V-C)\n"+
			"  server throughput (client-measured): %8.1f RPS\n"+
			"  RPS_obsv from send-family probe:     %8.1f RPS  <- blind\n"+
			"  epoll_wait calls observed:           %8d\n"+
			"  io_uring_enter rate:                 %8.1f /s\n",
		r.RealRPS, r.ObsvRPS, r.PollCount, r.IoUringRate)
}

// RenderFig1 formats the Fig. 1 trace study: phase segments and the
// syscall census with the request-oriented subset marked.
func RenderFig1(r Fig1Result) string {
	var b strings.Builder
	b.WriteString("Fig.1: syscall stream phases\n")
	for _, s := range r.Segments {
		fmt.Fprintf(&b, "  %-8s %8d calls  [%v .. %v]\n",
			s.Phase, s.Calls, time.Duration(s.Start).Round(time.Microsecond),
			time.Duration(s.End).Round(time.Microsecond))
	}
	b.WriteString("syscall census (x = request-oriented subset of Fig.1c):\n")
	names := make([]string, 0, len(r.Counts))
	for n := range r.Counts {
		names = append(names, n)
	}
	// Tie-break equal counts by name: names come out of map iteration in
	// random order and sort.Slice is unstable, so a count-only comparator
	// would break the byte-identical-output contract run to run.
	sort.Slice(names, func(i, j int) bool {
		if r.Counts[names[i]] != r.Counts[names[j]] {
			return r.Counts[names[i]] > r.Counts[names[j]]
		}
		return names[i] < names[j]
	})
	for _, n := range names {
		mark := " "
		if nrByName(n) >= 0 && trace.RequestOriented(nrByName(n)) {
			mark = "x"
		}
		fmt.Fprintf(&b, "  [%s] %-14s %8d\n", mark, n, r.Counts[n])
	}
	if r.Dropped > 0 {
		fmt.Fprintf(&b, "  (%d records dropped by ring buffer)\n", r.Dropped)
	}
	return b.String()
}

// nrByName reverses kernel.SyscallName for the names used in reports.
func nrByName(name string) int {
	for _, nr := range []int{0, 1, 3, 9, 23, 35, 41, 43, 44, 45, 46, 47, 49, 50, 56, 202, 232, 233, 257, 426} {
		if kernel.SyscallName(nr) == name {
			return nr
		}
	}
	return -1
}
