package harness

import (
	"fmt"
	"strings"
	"time"

	"reqlens/internal/faults"
	"reqlens/internal/workloads"
)

// Wait-state diagnosis scenarios run against this fixed workload and
// nominal level: cheap enough for the quick gate, loaded enough that
// queueing is visible when a fault induces it.
const (
	waitDiagLevel     = 0.6
	waitDiagOverLevel = 1.0
)

// waitDiagSpec is the workload the diagnosis scenarios share.
func waitDiagSpec() workloads.Spec { return workloads.Silo() }

// waitScenario is one diagnosis cell: a named perturbation of the fixed
// diagnosis workload.
type waitScenario struct {
	name  string
	level float64
	plan  faults.Plan
}

// waitNoisyPlan is a heavy-tenant variant of faults.NoisyNeighborPlan:
// eight threads at ~80% duty (400us burns every 100us of sleep) occupy
// most of the machine, so server wakeups land behind tenant burns and
// queue. The standard plan's 20%-duty tenant perturbs the timing
// signals but rarely fills every CPU at once, which is the wrong
// severity for demonstrating runnable-share attribution.
func waitNoisyPlan() faults.Plan {
	return faults.Plan{Name: "noisy-heavy", Seed: 14, Faults: []faults.Fault{{
		Kind: faults.NoisyNeighbor, Threads: 8,
		Period: 100 * time.Microsecond, Burn: 400 * time.Microsecond,
	}}}
}

// waitScenarios returns the diagnosis set: the same node healthy,
// overloaded, behind a delayed link, and sharing its CPUs with a noisy
// tenant. The last three all inflate client-side p99; only the
// wait-state shares tell them apart — queueing for the CPU (runnable)
// is saturation or contention, while an inflated p99 over an unchanged,
// blocked-dominated profile is the network's fault, not the node's.
func waitScenarios() []waitScenario {
	return []waitScenario{
		{"baseline", waitDiagLevel, faults.Baseline()},
		{"overload", waitDiagOverLevel, faults.Baseline()},
		{"netem-delay-10ms", waitDiagLevel, faults.DelayPlan(10 * time.Millisecond)},
		{"noisy-neighbor", waitDiagLevel, waitNoisyPlan()},
	}
}

// WaitPoint is one measured cell of the wait-state study: a workload at
// a load level, with the server process's window decomposed into
// on-CPU / runnable / blocked time alongside the client ground truth
// and the existing in-kernel signals it explains.
type WaitPoint struct {
	Workload string
	Level    float64

	RealRPS float64
	P99     time.Duration
	QoSFail bool

	// Absolute per-state time in the measurement window (all server
	// threads summed).
	OnCPU    time.Duration
	Runnable time.Duration
	Blocked  time.Duration

	// Shares of the accounted time; they sum to 1 on any window with
	// scheduler activity.
	OnCPUShare    float64
	RunnableShare float64
	BlockedShare  float64

	PollMeanNS float64 // Fig. 4 slack signal, for side-by-side reading
	SendVarUS2 float64 // Eq. 2 variance, same

	// Gap marks a cell that failed under supervision; only Workload and
	// Level are meaningful. Absent from JSON on complete runs.
	Gap bool `json:",omitempty"`
}

// WaitWorkload groups one workload's sweep points in level order.
type WaitWorkload struct {
	Workload string
	Points   []WaitPoint
}

// WaitScenarioResult is one diagnosis cell's outcome.
type WaitScenarioResult struct {
	Scenario string
	Point    WaitPoint
}

// WaitStateResult is the full study: the per-workload saturation sweep
// plus the fixed-workload fault diagnosis.
type WaitStateResult struct {
	Levels    []float64
	Workloads []WaitWorkload
	Diagnosis []WaitScenarioResult
}

// waitPoint measures one cell on a private rig: warmup, arm the plan,
// then one window pairing the wait-state decomposition with the client
// ground truth. Pure in (spec, level, plan, opt, seed).
func waitPoint(spec workloads.Spec, level float64, plan faults.Plan, opt ExpOptions, pc PointCtx, seed int64, pt pointTelemetry) WaitPoint {
	rate := level * spec.FailureRPS
	netem := opt.Netem
	if plan.HasNetem() {
		netem = plan.Netem
	}
	rig := NewRig(spec, RigOptions{
		Seed: seed, Profile: opt.Profile, Netem: netem,
		Rate: rate, Probes: true, WaitStates: true,
		Poisson: opt.Poisson, SeparateClient: opt.SeparateClient,
		Telemetry: pt.reg, Clock: pc.Clock,
	})
	defer rig.Close()
	warm := opt.Warmup
	if level >= 0.95 {
		warm = opt.OverWarm
	}
	rig.Warmup(warm)
	if !plan.Empty() {
		rig.Arm(plan)
	}
	m := rig.Measure(windowFor(opt.MinSends, rate))
	on, run, blk := m.Wait.Shares()
	return WaitPoint{
		Workload: spec.Name, Level: level,
		RealRPS: m.Load.RealRPS, P99: m.Load.P99, QoSFail: m.Load.P99 > spec.QoS,
		OnCPU: m.Wait.OnCPU, Runnable: m.Wait.Runnable, Blocked: m.Wait.Blocked,
		OnCPUShare: on, RunnableShare: run, BlockedShare: blk,
		PollMeanNS: m.PollMeanNS, SendVarUS2: m.SendVarUS2,
	}
}

// WaitStateSweep runs the wait-state study: every workload in specs
// across opt.Levels (nil specs = all nine), plus the fixed diagnosis
// scenarios. Each cell is one engine point on a private rig, so the
// result is bit-identical at any Parallelism and resumable from a
// journal like every other sweep. opt.Plan, when set, perturbs the
// sweep cells (the diagnosis cells carry their own plans).
func WaitStateSweep(specs []workloads.Spec, opt ExpOptions) WaitStateResult {
	if len(specs) == 0 {
		specs = workloads.All()
	}
	opt = opt.withDefaults()
	opt, sp := opt.expScope("waitstates")
	defer opt.expEnd(sp)

	nl := len(opt.Levels)
	scens := waitScenarios()
	sweepN := len(specs) * nl
	labels := make([]string, 0, sweepN+len(scens))
	for _, s := range specs {
		for _, lv := range opt.Levels {
			labels = append(labels, fmt.Sprintf("waitstate %s level=%.2f", s.Name, lv))
		}
	}
	for _, sc := range scens {
		labels = append(labels, "waitstate diag "+sc.name)
	}

	points, st := RunPoints(opt, labels, func(pc PointCtx, i int) WaitPoint {
		pt := opt.pointBegin(labels[i])
		defer pt.done()
		if i < sweepN {
			return waitPoint(specs[i/nl], opt.Levels[i%nl], opt.Plan, opt, pc, opt.Seed+int64(i), pt)
		}
		sc := scens[i-sweepN]
		return waitPoint(waitDiagSpec(), sc.level, sc.plan, opt, pc, opt.Seed+int64(i), pt)
	})
	for _, g := range st.Gaps {
		if g.Index < 0 || g.Index >= len(points) {
			continue
		}
		gp := WaitPoint{Gap: true}
		if g.Index < sweepN {
			gp.Workload = specs[g.Index/nl].Name
			gp.Level = opt.Levels[g.Index%nl]
		} else {
			gp.Workload = waitDiagSpec().Name
			gp.Level = scens[g.Index-sweepN].level
		}
		points[g.Index] = gp
	}

	res := WaitStateResult{Levels: opt.Levels}
	for wi, s := range specs {
		res.Workloads = append(res.Workloads, WaitWorkload{
			Workload: s.Name,
			Points:   points[wi*nl : (wi+1)*nl],
		})
	}
	for si, sc := range scens {
		res.Diagnosis = append(res.Diagnosis, WaitScenarioResult{
			Scenario: sc.name,
			Point:    points[sweepN+si],
		})
	}
	return res
}

// waitRow formats one table row shared by the sweep and diagnosis
// sections.
func waitRow(b *strings.Builder, head string, p WaitPoint) {
	if p.Gap {
		fmt.Fprintf(b, "%-18s | %s point lost to supervision gap\n", head, gapMark)
		return
	}
	qos := "ok"
	if p.QoSFail {
		qos = "FAIL"
	}
	fmt.Fprintf(b, "%-18s | %8.0f | %6.2f%% | %6.2f%% | %6.2f%% | %9.2fms | %11.0f | %s\n",
		head, p.RealRPS,
		100*p.OnCPUShare, 100*p.RunnableShare, 100*p.BlockedShare,
		float64(p.P99)/float64(time.Millisecond), p.PollMeanNS, qos)
}

// RenderWaitStates formats the study: one block per workload with the
// share decomposition against load, then the diagnosis table.
func RenderWaitStates(r WaitStateResult) string {
	var b strings.Builder
	b.WriteString("Wait states: server time decomposed by sched_switch/sched_wakeup probes\n")
	header := fmt.Sprintf("%-18s | %8s | %7s | %7s | %7s | %11s | %11s | %s\n",
		"point", "real RPS", "on-cpu", "runnbl", "blocked", "p99", "poll mean ns", "QoS")
	rule := strings.Repeat("-", 100) + "\n"
	for _, w := range r.Workloads {
		fmt.Fprintf(&b, "\n%s\n", w.Workload)
		b.WriteString(header)
		b.WriteString(rule)
		for _, p := range w.Points {
			waitRow(&b, fmt.Sprintf("level=%.2f", p.Level), p)
		}
	}
	b.WriteString("\ndiagnosis (" + waitDiagSpec().Name + ")\n")
	b.WriteString(header)
	b.WriteString(rule)
	for _, d := range r.Diagnosis {
		waitRow(&b, d.Scenario, d.Point)
	}
	return b.String()
}

// RenderWaitFolded emits the study as folded stacks — one
// `frames... value` line per state cell, value in nanoseconds —
// the input format flame-graph tools consume. Gap cells are omitted
// (missing data stays missing rather than rendering as zero-width
// frames).
func RenderWaitFolded(r WaitStateResult) string {
	var b strings.Builder
	emit := func(scope string, p WaitPoint) {
		if p.Gap {
			return
		}
		fmt.Fprintf(&b, "%s;oncpu %d\n", scope, p.OnCPU.Nanoseconds())
		fmt.Fprintf(&b, "%s;runnable %d\n", scope, p.Runnable.Nanoseconds())
		fmt.Fprintf(&b, "%s;blocked %d\n", scope, p.Blocked.Nanoseconds())
	}
	for _, w := range r.Workloads {
		for _, p := range w.Points {
			emit(fmt.Sprintf("%s;level=%.2f", w.Workload, p.Level), p)
		}
	}
	for _, d := range r.Diagnosis {
		emit(fmt.Sprintf("diag;%s", d.Scenario), d.Point)
	}
	return b.String()
}
