package harness

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"reqlens/internal/netsim"
	"reqlens/internal/workloads"
)

// updateGolden rewrites the golden files instead of comparing against
// them: `make golden` (== go test ./internal/harness -run TestGolden
// -update) after an intentional change to the measurement pipeline.
var updateGolden = flag.Bool("update", false, "rewrite golden files under testdata/golden")

// checkGolden marshals v and compares it byte-for-byte against the
// checked-in golden file. Any drift — a changed window count, a single
// float bit — fails, which is the point: the whole simulation stack
// (scheduler, netsim, eBPF VM, probes, stats) feeds these numbers, so
// an unintended semantic change anywhere shows up here.
//
// The comparison is exact, so the goldens are tied to strict IEEE-754
// evaluation (amd64; on platforms where the compiler fuses multiply-add
// differently the floats could drift harmlessly).
func checkGolden(t *testing.T, name string, v any) {
	t.Helper()
	got, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	checkGoldenBytes(t, name, append(got, '\n'))
}

// checkGoldenBytes is checkGolden for pre-serialized content — rendered
// tables the CLI also prints, so `make check` can diff the real
// binary's output against the same fixture.
func checkGoldenBytes(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run `make golden` to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden (run `make golden` only if the change is intentional):\n%s",
			name, firstDiff(want, got))
	}
}

// firstDiff renders the first differing line of two byte slices.
func firstDiff(want, got []byte) string {
	wl := bytes.Split(want, []byte("\n"))
	gl := bytes.Split(got, []byte("\n"))
	n := len(wl)
	if len(gl) < n {
		n = len(gl)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(wl[i], gl[i]) {
			return fmt.Sprintf("line %d:\n  golden: %s\n  got:    %s", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("line counts differ: golden %d, got %d", len(wl), len(gl))
}

// TestGoldenFig2Windows pins the per-seed Fig. 2 estimation windows
// (every RealRPS/ObsvRPS pair plus the regression) for two workloads at
// Quick scale, seed 42.
func TestGoldenFig2Windows(t *testing.T) {
	if raceEnabled {
		t.Skip("byte-exact regression compare; re-running under -race adds no coverage")
	}
	for _, spec := range []workloads.Spec{workloads.Silo(), workloads.DataCaching()} {
		res := Fig2(spec, Quick())
		checkGolden(t, "fig2_"+spec.Name+".json", res)
	}
}

// TestGoldenTable2Windows pins the Table II R^2 grid — the same
// workloads under the paper's two netem settings — for seed 42.
func TestGoldenTable2Windows(t *testing.T) {
	if raceEnabled {
		t.Skip("byte-exact regression compare; re-running under -race adds no coverage")
	}
	cfgs := []netsim.Config{{}, {Delay: 10 * time.Millisecond, Loss: 0.01}}
	rows := Table2([]workloads.Spec{workloads.Silo(), workloads.DataCaching()}, cfgs, Quick())
	checkGolden(t, "table2.json", rows)
}
