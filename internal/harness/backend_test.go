package harness

import (
	"reflect"
	"testing"

	"reqlens/internal/ebpf"
	"reqlens/internal/workloads"
)

// TestSweepBackendEquivalence runs the same saturation sweep under both
// VM backends and requires bit-identical results: the compiled backend
// must be invisible to the experiment layer — same metrics, same
// per-request costs, same stream accounting. This is the end-to-end
// companion to the instruction-level differential suite in
// internal/ebpf.
func TestSweepBackendEquivalence(t *testing.T) {
	opt := Quick()
	opt.Levels = []float64{0.5, 1.0}
	opt.Stream = true
	spec := workloads.Silo()

	run := func(b ebpf.Backend) SweepResult {
		prev := ebpf.SetDefaultBackend(b)
		defer ebpf.SetDefaultBackend(prev)
		return SaturationSweep(spec, opt)
	}
	interp := run(ebpf.BackendInterpreter)
	compiled := run(ebpf.BackendCompiled)
	if !reflect.DeepEqual(interp, compiled) {
		t.Fatalf("sweep differs across backends:\ninterpreter: %+v\ncompiled: %+v", interp, compiled)
	}
}
