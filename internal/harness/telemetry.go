package harness

import (
	"reqlens/internal/telemetry"
)

// This file wires the telemetry registry and run journal into the
// experiment drivers. The contract mirrors the engine's determinism
// story: telemetry is write-only (no driver reads an instrument back),
// per-point registries merge into the run-level registry by commutative
// addition, and journal records carry wall-clock timestamps that never
// feed back into simulated results. With ExpOptions.Telemetry and
// Journal both nil — the default — every operation below is a nil
// receiver no-op and the drivers run byte-identically to an
// uninstrumented build.

// pointTelemetry is one experiment point's telemetry context: a fresh
// per-rig registry (nil when the run is uninstrumented) and an open
// point span (nil when unjournaled). The zero value is inert.
type pointTelemetry struct {
	opt ExpOptions
	reg *telemetry.Registry
	sp  *telemetry.Span
}

// pointBegin opens a point's telemetry: a private registry for the
// point's rig when opt.Telemetry is set, and a journal span named after
// the point label. Callers pass pt.reg to RigOptions.Telemetry and must
// call pt.done() when the point completes.
func (o ExpOptions) pointBegin(label string) pointTelemetry {
	pt := pointTelemetry{opt: o}
	if o.Telemetry != nil {
		pt.reg = telemetry.New()
	}
	pt.sp = o.Journal.Begin(telemetry.KindPoint, label)
	return pt
}

// window opens a nested estimation-window span under the point.
func (pt pointTelemetry) window(label string) *telemetry.Span {
	return pt.opt.Journal.Begin(telemetry.KindWindow, label)
}

// done folds the point's registry into the run-level registry —
// commutative addition, so run totals are independent of the order in
// which parallel points complete — and ends the point span with the
// point's own metric snapshot.
func (pt pointTelemetry) done() {
	pt.opt.Telemetry.Merge(pt.reg)
	pt.sp.End(pt.reg.Snapshot())
}

// Scope is the exported form of expScope for experiment drivers that
// live outside this package (internal/fleet): it opens the
// experiment-level journal span and returns a copy of o carrying name
// as the checkpoint namespace for RunPoints. Pair with EndScope.
func (o ExpOptions) Scope(name string) (ExpOptions, *telemetry.Span) {
	return o.expScope(name)
}

// EndScope closes a Scope's experiment span, attaching the run
// registry's cumulative snapshot.
func (o ExpOptions) EndScope(sp *telemetry.Span) { o.expEnd(sp) }

// PointTelemetry opens per-point telemetry for an out-of-package
// driver: a fresh private registry when the run is instrumented (pass
// it to the point's rigs) and a journal point span. done must be called
// when the point completes; it merges the private registry into the
// run-level one and closes the span.
func (o ExpOptions) PointTelemetry(label string) (reg *telemetry.Registry, done func()) {
	pt := o.pointBegin(label)
	return pt.reg, pt.done
}

// expBegin opens the experiment-level span. Pair with expEnd.
func (o ExpOptions) expBegin(name string) *telemetry.Span {
	return o.Journal.Begin(telemetry.KindExperiment, name)
}

// expScope opens the experiment-level span like expBegin and returns a
// copy of o carrying name as the checkpoint namespace: RunPoints keys
// checkpoint records and resume lookups by (experiment, label), so
// experiments that reuse identical point labels cannot shadow each
// other inside one journal. Drivers that fan points out through
// RunPoints use this instead of expBegin. Pair with expEnd.
func (o ExpOptions) expScope(name string) (ExpOptions, *telemetry.Span) {
	o.exp = name
	return o, o.expBegin(name)
}

// expEnd closes the experiment span, attaching the run registry's
// cumulative snapshot (every point merged so far).
func (o ExpOptions) expEnd(sp *telemetry.Span) {
	sp.End(o.Telemetry.Snapshot())
}
