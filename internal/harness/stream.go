package harness

import (
	"fmt"
	"strings"
	"time"

	"reqlens/internal/core"
	"reqlens/internal/workloads"
)

// AgreementPoint pairs the batch and streaming views of one load level.
type AgreementPoint struct {
	Level  float64
	Batch  core.Window
	Stream core.StreamWindow

	// Agree is true when the stream-reconstructed window equals the
	// aggregate-map window bit-for-bit. It must hold whenever
	// Stream.Dropped is zero: every program on a tracepoint sees the
	// same virtual-clock timestamp, so a lossless event stream carries
	// exactly the values the maps accumulate.
	Agree bool

	// Gap marks a level lost to a supervision gap: only Level is
	// meaningful and the point is excluded from agreement accounting.
	// Absent from JSON on complete runs.
	Gap bool `json:",omitempty"`
}

// StreamAgreementResult is the side-by-side validation of the ring-buffer
// event pipeline against the batch observer across a load sweep.
type StreamAgreementResult struct {
	Workload  string
	RingBytes int // 0 = core.DefaultStreamBytes

	Points []AgreementPoint

	// Disagreements counts points whose windows differ; with a
	// never-overflowing ring it must be zero.
	Disagreements int
	// TotalDropped sums ring drops across all levels (each level runs on
	// a private rig with its own ring).
	TotalDropped uint64
}

// streamAgreementLevel measures one load level with both observers
// attached to the same kernel. Pure in (spec, opt, li); safe to run
// concurrently with other levels.
func streamAgreementLevel(spec workloads.Spec, opt ExpOptions, pc PointCtx, li int) AgreementPoint {
	level := opt.Levels[li]
	rate := level * spec.FailureRPS
	pt := opt.pointBegin(fmt.Sprintf("%s level=%.2f", spec.Name, level))
	defer pt.done()
	rig := NewRig(spec, RigOptions{
		Seed: opt.Seed + int64(li), Profile: opt.Profile, Netem: opt.Netem,
		Rate: rate, Probes: true, Stream: true, StreamBytes: opt.StreamBytes,
		Poisson: opt.Poisson, SeparateClient: opt.SeparateClient,
		Telemetry: pt.reg, Clock: pc.Clock,
	})
	defer rig.Close()
	warm := opt.Warmup
	if level >= 0.95 {
		warm = opt.OverWarm
	}
	rig.Warmup(warm)
	m := rig.Measure(windowFor(opt.MinSends, rate))
	return AgreementPoint{
		Level:  level,
		Batch:  m.Obs,
		Stream: m.Stream,
		Agree:  m.Stream.Window == m.Obs,
	}
}

// StreamAgreement runs batch and streaming observers side by side at
// every load level and records whether their windows agree exactly. Load
// levels run on the parallel engine; results are identical at any
// Parallelism.
func StreamAgreement(spec workloads.Spec, opt ExpOptions) StreamAgreementResult {
	opt = opt.withDefaults()
	opt, sp := opt.expScope("stream-agreement " + spec.Name)
	defer opt.expEnd(sp)
	points, st := RunPoints(opt, levelLabels(spec.Name, opt.Levels),
		func(pc PointCtx, li int) AgreementPoint { return streamAgreementLevel(spec, opt, pc, li) })
	for _, g := range st.Gaps {
		if g.Index >= 0 && g.Index < len(points) {
			points[g.Index] = AgreementPoint{Level: opt.Levels[g.Index], Gap: true}
		}
	}
	res := StreamAgreementResult{Workload: spec.Name, RingBytes: opt.StreamBytes, Points: points}
	for _, p := range points {
		if p.Gap {
			continue
		}
		if !p.Agree {
			res.Disagreements++
		}
		res.TotalDropped += p.Stream.Dropped
	}
	return res
}

// RenderStreamAgreement formats the batch-vs-stream comparison table.
func RenderStreamAgreement(r StreamAgreementResult) string {
	var b strings.Builder
	ring := "default"
	if r.RingBytes != 0 {
		ring = fmt.Sprintf("%d B", r.RingBytes)
	}
	fmt.Fprintf(&b, "Streaming vs batch observer: %s (ring %s)\n", r.Workload, ring)
	fmt.Fprintf(&b, "%-6s | %12s | %12s | %8s | %8s | %6s\n",
		"level", "batch RPS", "stream RPS", "events", "dropped", "agree")
	gaps := 0
	for _, p := range r.Points {
		if p.Gap {
			fmt.Fprintf(&b, "%-6.2f | %12s | %12s | %8s | %8s | %6s\n",
				p.Level, gapMark, gapMark, gapMark, gapMark, gapMark)
			gaps++
			continue
		}
		fmt.Fprintf(&b, "%-6.2f | %12.1f | %12.1f | %8d | %8d | %6v\n",
			p.Level, p.Batch.Send.RatePerSec, p.Stream.Send.RatePerSec,
			p.Stream.Events, p.Stream.Dropped, p.Agree)
	}
	if r.Disagreements == 0 && r.TotalDropped == 0 && gaps == 0 {
		b.WriteString("all windows agree bit-for-bit; no events dropped\n")
	} else {
		fmt.Fprintf(&b, "%d/%d windows diverged, %d events dropped, %d gap(s)\n",
			r.Disagreements, len(r.Points), r.TotalDropped, gaps)
	}
	return b.String()
}

// StreamDropProfile sweeps the same workload with a deliberately
// undersized ring and reports the (deterministic) loss profile per level.
type StreamDropProfile struct {
	Workload  string
	RingBytes int
	Points    []AgreementPoint
}

// StreamDrops runs the agreement protocol with a small ring to
// characterize overflow behaviour: how many events each load level loses
// when the consumer drains at the fixed cadence. For a fixed seed the
// profile is bit-identical across runs and Parallelism settings.
func StreamDrops(spec workloads.Spec, ringBytes int, opt ExpOptions) StreamDropProfile {
	opt.StreamBytes = ringBytes
	res := StreamAgreement(spec, opt)
	return StreamDropProfile{Workload: spec.Name, RingBytes: ringBytes, Points: res.Points}
}

// RenderStreamDrops formats the loss profile.
func RenderStreamDrops(r StreamDropProfile) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ring overflow profile: %s (ring %d B, drain every %v)\n",
		r.Workload, r.RingBytes, streamDrainEvery)
	fmt.Fprintf(&b, "%-6s | %8s | %8s | %9s\n", "level", "events", "dropped", "loss")
	for _, p := range r.Points {
		if p.Gap {
			fmt.Fprintf(&b, "%-6.2f | %8s | %8s | %9s\n", p.Level, gapMark, gapMark, gapMark)
			continue
		}
		total := p.Stream.Events + p.Stream.Dropped
		loss := 0.0
		if total > 0 {
			loss = 100 * float64(p.Stream.Dropped) / float64(total)
		}
		fmt.Fprintf(&b, "%-6.2f | %8d | %8d | %8.2f%%\n",
			p.Level, p.Stream.Events, p.Stream.Dropped, loss)
	}
	return b.String()
}

// StreamDrainInterval returns the fixed simulated-time cadence at which
// Rig.Advance drains an attached streaming observer.
func StreamDrainInterval() time.Duration { return streamDrainEvery }
