package harness

import (
	"fmt"
	"strings"

	"reqlens/internal/faults"
	"reqlens/internal/resilience"
	"reqlens/internal/workloads"
)

// PlanR2 is one fault plan's correlation quality for one workload.
type PlanR2 struct {
	Plan string
	// R2 is the Fig. 2 regression's coefficient of determination with
	// the plan armed on every measured level.
	R2 float64
	// Delta is R2 minus the fault-free baseline R2 of the same workload
	// (index 0 of the matrix row). Near zero means the syscall-derived
	// metric survived the perturbation — the paper's Table II claim
	// extended to kernel-side faults.
	Delta float64
}

// RobustnessRow is one workload's R² across all fault plans.
type RobustnessRow struct {
	Workload string
	Baseline float64  // fault-free R²
	Plans    []PlanR2 // one per requested plan, in input order

	// Gaps lists the labels of cells this workload lost to supervision
	// gaps; affected plans' R² spans the surviving levels only. Absent
	// from JSON on complete runs.
	Gaps []string `json:",omitempty"`
}

// RobustnessMatrix runs the Fig. 2 correlation protocol for every
// (workload, fault plan, load level) cell and reports each plan's R²
// delta against the fault-free baseline of the same workload. The
// whole grid fans out as one engine batch, so parallelism spans
// workloads and plans as well as levels; for a fixed Seed the matrix
// is bit-identical at any Parallelism. An implicit baseline (empty
// plan) is always run first — it reproduces the plain Fig2/Table2
// windows exactly.
func RobustnessMatrix(specs []workloads.Spec, plans []faults.Plan, opt ExpOptions) []RobustnessRow {
	opt = opt.withDefaults()
	opt, sp := opt.expScope("robustness")
	defer opt.expEnd(sp)
	all := append([]faults.Plan{{Name: "baseline"}}, plans...)
	nl, np := len(opt.Levels), len(all)
	labels := make([]string, 0, len(specs)*np*nl)
	for _, spec := range specs {
		for _, p := range all {
			for _, l := range opt.Levels {
				labels = append(labels, fmt.Sprintf("%s plan=%s level=%.2f", spec.Name, p.Name, l))
			}
		}
	}
	ests, st := RunPoints(opt, labels, func(pc PointCtx, i int) []Estimate {
		si, pi, li := i/(np*nl), (i/nl)%np, i%nl
		o := opt
		o.Plan = all[pi]
		return fig2Level(specs[si], o, pc, li)
	})
	gapsBySpec := map[int][]string{}
	for _, g := range st.Gaps {
		si := g.Index / (np * nl)
		gapsBySpec[si] = append(gapsBySpec[si], g.Label)
	}
	rows := make([]RobustnessRow, 0, len(specs))
	for si, spec := range specs {
		row := RobustnessRow{Workload: spec.Name, Gaps: gapsBySpec[si]}
		r2 := make([]float64, np)
		for pi := range all {
			base := (si*np + pi) * nl
			r2[pi] = fig2Assemble(spec.Name, ests[base:base+nl]).Fit.R2
		}
		row.Baseline = r2[0]
		for pi, p := range plans {
			row.Plans = append(row.Plans, PlanR2{
				Plan: p.Name, R2: r2[pi+1], Delta: r2[pi+1] - row.Baseline,
			})
		}
		rows = append(rows, row)
	}
	return rows
}

// ChaosOptions arms opt for the robustness matrix's chaos level: the
// default chaos schedule (a panic every 5th point, a hang every 7th)
// layered on top of whatever fault plans the matrix already runs, with
// enough retries that every injection recovers. Because retries replay
// the same derived seed, a chaos matrix equals the unperturbed matrix
// value-for-value — the strongest end-to-end statement the supervision
// stack can make (TestRobustnessChaosIdentical pins it).
func ChaosOptions(opt ExpOptions) ExpOptions {
	opt.Chaos = resilience.DefaultChaos()
	if opt.Retries < 1 {
		opt.Retries = 2
	}
	opt.Supervise = true
	return opt
}

// RenderRobustness formats the robustness matrix: one row per workload,
// one column per plan, each cell R² with its delta against the
// fault-free baseline.
func RenderRobustness(rows []RobustnessRow) string {
	var b strings.Builder
	b.WriteString("Robustness matrix: R^2 of Eq. 1 vs RPS_real under fault plans (delta vs fault-free)\n")
	if len(rows) == 0 {
		return b.String()
	}
	width := 8
	for _, p := range rows[0].Plans {
		if len(p.Plan) > width {
			width = len(p.Plan)
		}
	}
	fmt.Fprintf(&b, "%-22s | %8s", "workload", "baseline")
	for _, p := range rows[0].Plans {
		fmt.Fprintf(&b, " | %*s", width+10, p.Plan)
	}
	b.WriteString("\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s | %8.4f", r.Workload, r.Baseline)
		for _, p := range r.Plans {
			cell := fmt.Sprintf("%.4f (%+.4f)", p.R2, p.Delta)
			fmt.Fprintf(&b, " | %*s", width+10, cell)
		}
		b.WriteString("\n")
	}
	for _, r := range rows {
		if len(r.Gaps) > 0 {
			fmt.Fprintf(&b, "%s: %d cell(s) lost to supervision gaps: %s\n",
				r.Workload, len(r.Gaps), strings.Join(r.Gaps, ", "))
		}
	}
	worst := 0.0
	for _, r := range rows {
		for _, p := range r.Plans {
			if d := p.Delta; d < worst {
				worst = d
			}
		}
	}
	fmt.Fprintf(&b, "worst delta: %+.4f (thresholds: |delta| < 0.02 reproduces the paper's robustness claim)\n", worst)
	return b.String()
}
