// Package harness assembles full experiments and regenerates every
// figure and table of the paper's evaluation: a simulated server
// machine running one workload, a client machine generating open-loop
// load over a netem-shaped link, and the paper's eBPF probes attached
// to the server's tracepoints.
//
// # Rigs
//
// A Rig is one fully wired experiment instance — sim.Env, kernels,
// network, workload server, load client, and (optionally) the
// core.Observer under evaluation. NewRig builds one from a
// workloads.Spec and RigOptions; Warmup advances it to steady state;
// Measure returns one window of paired ground truth and eBPF
// observations; Close reclaims its goroutines. Rigs share no mutable
// state, so independent rigs may run concurrently.
//
// RigOptions.Stream additionally attaches the ring-buffer streaming
// observer (core.StreamObserver) beside the batch probes. Rig.Advance
// then drains the ring on a fixed 50 ms simulated-time cadence, so drop
// counts under an undersized ring are deterministic for a given seed,
// and Measurement pairs every batch window with its stream-reconstructed
// twin.
//
// # Experiment drivers
//
// Each paper artifact has a driver taking an ExpOptions:
//
//   - Fig1 — raw syscall stream capture and phase segmentation.
//   - Fig2 — the RPS_obsv vs RPS_real correlation study (Eq. 1).
//   - SaturationSweep — the Fig. 3 (send-delta variance) and Fig. 4
//     (poll duration) load sweeps with the QoS crossing located.
//   - Fig5 — tail latency vs in-kernel signals under packet loss.
//   - Table2 — R^2 of the Fig. 2 fit under netem configurations.
//   - Overhead — the Section VI probe-cost A/B study.
//   - IOUring — the Section V-C blind-spot demonstration.
//   - StreamAgreement / StreamDrops — batch vs streaming observer
//     side-by-side: exact window agreement with a healthy ring, and the
//     deterministic loss profile of a deliberately undersized one.
//
// RenderFig1..RenderOverhead print each result as the ASCII analogue of
// the paper's figure (`cmd/reqlens` wraps them all).
//
// # The parallel experiment engine
//
// Drivers decompose their protocol into independent points — one
// (workload, netem, load level) measurement on its own Rig — and hand
// them to RunPoints, a bounded worker pool (ExpOptions.Parallelism;
// GOMAXPROCS by default). Per-point seeds are derived as ExpOptions.Seed
// + int64(levelIndex) and results are reassembled in point order, so
// output is bit-identical to a sequential run at any parallelism —
// TestParallelSweepDeterminism asserts it. ExpOptions.Progress streams
// per-point completions; ExpOptions.Stats reports batch timing
// (RunStats).
//
// Quick returns the reduced scale used by tests; the zero ExpOptions is
// paper scale.
package harness
