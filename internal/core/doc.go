// Package core is the reproduction's primary contribution: a library
// for in-kernel observability of request-level metrics of
// latency-sensitive applications, built purely from eBPF syscall
// tracing — no userspace cooperation from the observed application.
//
// An Observer attaches the paper's probe set to a process and exposes
// windowed request-level metrics:
//
//   - Window.RPSObsv — throughput estimated from send-family
//     inter-syscall deltas (Eq. 1: RPS = 1/mean(dt_send)), the Fig. 2 /
//     Table II estimator;
//   - send/recv delta variance (Eq. 2) — the saturation signal of
//     Fig. 3;
//   - mean poll (epoll_wait/select) duration — the idleness/saturation
//     slack signal of Fig. 4.
//
// SaturationDetector and SlackEstimator turn those raw signals into
// decisions a management runtime (DVFS governor, core allocator,
// autoscaler) can act on, as motivated in Sections I and VI; see
// examples/saturation-monitor and examples/blackbox-autoscaler.
//
// Key entry points:
//
//   - Attach / MustAttach — wire the probe set to a kernel.Kernel for
//     one tgid (Config selects the send/recv/poll syscall families);
//     Observer.Sample closes the current observation window and opens
//     the next.
//   - AttachStream / MustAttachStream — the streaming variant: the
//     probes emit one fixed-size event per observation into a bounded
//     ring buffer, and StreamObserver folds the drained events into
//     online (Welford) statistics plus map-identical integer
//     aggregates, exposing the same Window the batch Observer produces
//     together with a producer-side Dropped counter. A lossless stream
//     reconstructs the batch windows bit-for-bit.
//   - NewSaturationDetector — variance-anomaly alarm over Eq. 2.
//   - NewSlackEstimator — normalized idle headroom from poll durations.
//   - AttachStages / MultiObserver — per-stage observers across a
//     multi-process pipeline, naming the bottleneck stage (the Section
//     V-B prescription for microservice-style workloads).
//
// The experiment harness (internal/harness) evaluates this library
// against client-side ground truth; this package itself never reads
// anything an in-kernel deployment wouldn't have.
package core
