package core

import (
	"fmt"
	"time"

	"reqlens/internal/ebpf"
	"reqlens/internal/kernel"
	"reqlens/internal/probes"
	"reqlens/internal/telemetry"
)

// Config selects the process and syscall families to observe. The
// syscall lists come from the application's I/O signature (Section IV-A
// tabulates them for the paper's workloads); Defaults covers the common
// families when the signature is unknown.
type Config struct {
	TGID int // process to observe (0 = everything; rarely useful)

	SendSyscalls []int
	RecvSyscalls []int
	PollSyscalls []int
}

// Defaults returns a Config tracing the full request-oriented syscall
// families of Section III for tgid.
func Defaults(tgid int) Config {
	return Config{
		TGID:         tgid,
		SendSyscalls: []int{kernel.SysSendto, kernel.SysSendmsg, kernel.SysWrite},
		RecvSyscalls: []int{kernel.SysRecvfrom, kernel.SysRecvmsg, kernel.SysRead},
		PollSyscalls: []int{kernel.SysEpollWait, kernel.SysSelect},
	}
}

// Observer is an attached probe set with window bookkeeping.
type Observer struct {
	send *probes.DeltaProbe
	recv *probes.DeltaProbe
	poll *probes.PollProbe

	k        *kernel.Kernel
	lastSend probes.DeltaSnapshot
	lastRecv probes.DeltaSnapshot
	lastPoll probes.PollSnapshot
	lastAt   time.Duration
}

// Attach builds, verifies and attaches the probe set on k's tracer.
func Attach(k *kernel.Kernel, cfg Config) (*Observer, error) {
	if len(cfg.SendSyscalls) == 0 || len(cfg.RecvSyscalls) == 0 || len(cfg.PollSyscalls) == 0 {
		return nil, fmt.Errorf("core: config must name send, recv and poll syscalls")
	}
	send, err := probes.NewDeltaProbe("send", cfg.TGID, cfg.SendSyscalls)
	if err != nil {
		return nil, fmt.Errorf("core: send probe: %w", err)
	}
	recv, err := probes.NewDeltaProbe("recv", cfg.TGID, cfg.RecvSyscalls)
	if err != nil {
		return nil, fmt.Errorf("core: recv probe: %w", err)
	}
	poll, err := probes.NewPollProbe("poll", cfg.TGID, cfg.PollSyscalls)
	if err != nil {
		return nil, fmt.Errorf("core: poll probe: %w", err)
	}
	o := &Observer{send: send, recv: recv, poll: poll, k: k}
	tr := k.Tracer()
	if err := send.Attach(tr); err != nil {
		return nil, err
	}
	if err := recv.Attach(tr); err != nil {
		send.Detach()
		return nil, err
	}
	if err := poll.Attach(tr); err != nil {
		send.Detach()
		recv.Detach()
		return nil, err
	}
	o.rebase()
	return o, nil
}

// MustAttach is Attach but panics on error.
func MustAttach(k *kernel.Kernel, cfg Config) *Observer {
	o, err := Attach(k, cfg)
	if err != nil {
		panic(err)
	}
	return o
}

// Detach removes all probes.
func (o *Observer) Detach() {
	o.send.Detach()
	o.recv.Detach()
	o.poll.Detach()
}

// Reattach restores a detached probe set on the same tracer. The maps
// survive the detach window, so counters resume from their pre-detach
// values — exactly what a restarted agent re-attaching its programs to
// pinned maps observes. Calling it while attached is a no-op reattach
// (detach first, then attach).
func (o *Observer) Reattach() error {
	o.Detach()
	tr := o.k.Tracer()
	if err := o.send.Attach(tr); err != nil {
		return fmt.Errorf("core: reattach send: %w", err)
	}
	if err := o.recv.Attach(tr); err != nil {
		o.send.Detach()
		return fmt.Errorf("core: reattach recv: %w", err)
	}
	if err := o.poll.Attach(tr); err != nil {
		o.send.Detach()
		o.recv.Detach()
		return fmt.Errorf("core: reattach poll: %w", err)
	}
	return nil
}

func (o *Observer) rebase() {
	o.lastSend = o.send.Snapshot()
	o.lastRecv = o.recv.Snapshot()
	o.lastPoll = o.poll.Snapshot()
	o.lastAt = time.Duration(o.k.Now())
}

// DeltaStats summarizes one syscall family over a window.
type DeltaStats struct {
	Calls       uint64
	RatePerSec  float64 // Eq. 1 estimate
	MeanDelta   time.Duration
	VarianceUS2 float64 // Eq. 2
}

// PollStats summarizes the poll family over a window.
type PollStats struct {
	Calls        uint64
	MeanDuration time.Duration
}

// Window is one sampled observation interval.
type Window struct {
	Duration time.Duration
	Send     DeltaStats
	Recv     DeltaStats
	Poll     PollStats
}

// RPSObsv is the headline throughput estimate (responses per second).
func (w Window) RPSObsv() float64 { return w.Send.RatePerSec }

// Sample reads all probes, returns the metrics accumulated since the
// previous Sample (or Attach), and starts a new window.
func (o *Observer) Sample() Window {
	now := time.Duration(o.k.Now())
	w := Window{Duration: now - o.lastAt}

	s := o.send.Snapshot().Sub(o.lastSend)
	w.Send = DeltaStats{
		Calls:       s.Calls,
		RatePerSec:  s.RateObsv(),
		MeanDelta:   time.Duration(s.MeanDeltaNS()),
		VarianceUS2: s.VarianceUS2(),
	}
	r := o.recv.Snapshot().Sub(o.lastRecv)
	w.Recv = DeltaStats{
		Calls:       r.Calls,
		RatePerSec:  r.RateObsv(),
		MeanDelta:   time.Duration(r.MeanDeltaNS()),
		VarianceUS2: r.VarianceUS2(),
	}
	p := o.poll.Snapshot().Sub(o.lastPoll)
	w.Poll = PollStats{
		Calls:        p.Count,
		MeanDuration: time.Duration(p.MeanNS()),
	}
	o.rebase()
	return w
}

// ProbePrograms returns the verified instruction counts of the attached
// programs (diagnostics and documentation).
func (o *Observer) ProbePrograms() map[string]int {
	return map[string]int{
		"send":       o.send.Program().Len(),
		"recv":       o.recv.Program().Len(),
		"poll_enter": o.poll.EnterProgram().Len(),
		"poll_exit":  o.poll.ExitProgram().Len(),
	}
}

// Instrument records the probe set's one-time verification cost into r:
// verifier_programs_total (programs admitted) and verifier_states_total
// (abstract states the verifier explored across them). A nil registry is
// a no-op.
func (o *Observer) Instrument(r *telemetry.Registry) {
	recordVerifierCost(r, o.send.Program(), o.recv.Program(),
		o.poll.EnterProgram(), o.poll.ExitProgram())
}

// recordVerifierCost adds each program's verifier state count to the
// registry's load-time totals.
func recordVerifierCost(r *telemetry.Registry, progs ...*ebpf.Program) {
	if r == nil {
		return
	}
	states := r.Counter("verifier_states_total")
	count := r.Counter("verifier_programs_total")
	for _, p := range progs {
		states.Add(uint64(p.VerifierStates()))
		count.Inc()
	}
}
