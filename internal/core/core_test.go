package core

import (
	"testing"
	"time"

	"reqlens/internal/kernel"
	"reqlens/internal/machine"
	"reqlens/internal/sim"
)

func rig() (*sim.Env, *kernel.Kernel) {
	env := sim.NewEnv(17)
	prof := machine.Profile{
		Name: "t", Sockets: 1, CoresPerSock: 2, ThreadsPerCore: 1,
		TimeSlice: time.Millisecond,
	}
	return env, kernel.New(env, prof)
}

func TestAttachRequiresSyscalls(t *testing.T) {
	_, k := rig()
	if _, err := Attach(k, Config{TGID: 1}); err == nil {
		t.Fatal("empty config should fail")
	}
}

func TestObserverEndToEnd(t *testing.T) {
	env, k := rig()
	srv := k.NewProcess("srv")
	obs := MustAttach(k, Config{
		TGID:         srv.TGID(),
		SendSyscalls: []int{kernel.SysSendto},
		RecvSyscalls: []int{kernel.SysRecvfrom},
		PollSyscalls: []int{kernel.SysEpollWait},
	})
	// Simulated request loop: poll (2ms idle), recv, send, 1000/s.
	srv.SpawnThread("w", func(th *kernel.Thread) {
		for i := 0; i < 500; i++ {
			th.Invoke(kernel.SysEpollWait, [6]uint64{}, func() int64 {
				th.Sleep(600 * time.Microsecond)
				return 1
			})
			th.Invoke(kernel.SysRecvfrom, [6]uint64{}, func() int64 { return 64 })
			th.Compute(300 * time.Microsecond)
			th.Invoke(kernel.SysSendto, [6]uint64{}, func() int64 { return 64 })
		}
	})
	env.RunFor(100 * time.Millisecond)
	obs.Sample() // discard warmup
	env.RunFor(200 * time.Millisecond)
	w := obs.Sample()

	if w.Duration < 190*time.Millisecond {
		t.Fatalf("window duration = %v", w.Duration)
	}
	// The loop runs at ~1/(0.6+0.3+overhead)ms ~ 1000-1100/s.
	if w.RPSObsv() < 800 || w.RPSObsv() > 1300 {
		t.Fatalf("RPSObsv = %v, want ~1000", w.RPSObsv())
	}
	if w.Recv.Calls != w.Send.Calls {
		t.Fatalf("recv %d vs send %d calls", w.Recv.Calls, w.Send.Calls)
	}
	if w.Poll.MeanDuration < 500*time.Microsecond || w.Poll.MeanDuration > time.Millisecond {
		t.Fatalf("poll mean = %v, want ~600us", w.Poll.MeanDuration)
	}
	if k.Tracer().RunErrors() != 0 {
		t.Fatalf("probe faults: %v", k.Tracer().LastError())
	}
	progs := obs.ProbePrograms()
	for name, n := range progs {
		if n == 0 {
			t.Fatalf("program %s has no instructions", name)
		}
	}
	obs.Detach()
	before := k.Tracer().Runs()
	env.RunFor(10 * time.Millisecond)
	if k.Tracer().Runs() != before {
		t.Fatal("probes still firing after Detach")
	}
}

func TestObserverWindowsAreDisjoint(t *testing.T) {
	env, k := rig()
	srv := k.NewProcess("srv")
	obs := MustAttach(k, Defaults(srv.TGID()))
	srv.SpawnThread("w", func(th *kernel.Thread) {
		for i := 0; i < 300; i++ {
			th.Invoke(kernel.SysWrite, [6]uint64{}, func() int64 { return 1 })
			th.Sleep(time.Millisecond)
		}
	})
	env.RunFor(50 * time.Millisecond)
	w1 := obs.Sample()
	env.RunFor(50 * time.Millisecond)
	w2 := obs.Sample()
	total := w1.Send.Calls + w2.Send.Calls
	if total < 90 || total > 110 {
		t.Fatalf("windows should partition calls, got %d+%d", w1.Send.Calls, w2.Send.Calls)
	}
}

func TestSaturationDetectorWarmupAndAlarm(t *testing.T) {
	d := NewSaturationDetector(4, 8)
	for i := 0; i < 8; i++ {
		if d.Observe(100) {
			t.Fatal("alarm during warmup")
		}
	}
	if !d.Warm() {
		t.Fatal("should be warm after History windows")
	}
	if d.Observe(150) {
		t.Fatal("within-threshold variance should not alarm")
	}
	if !d.Observe(1000) {
		t.Fatal("10x variance should alarm")
	}
	// The anomaly must not poison the baseline.
	if d.Baseline() > 200 {
		t.Fatalf("baseline = %v after anomaly", d.Baseline())
	}
	// Still alarming on sustained overload.
	if !d.Observe(900) {
		t.Fatal("sustained overload should keep alarming")
	}
}

func TestSaturationDetectorDefaults(t *testing.T) {
	d := NewSaturationDetector(0, 0)
	if d.Factor != 4 || d.History != 16 {
		t.Fatalf("defaults = %+v", d)
	}
	if d.Observe(-5) || d.Observe(0) {
		t.Fatal("nonpositive variance should never alarm")
	}
}

func TestSlackEstimator(t *testing.T) {
	s := NewSlackEstimator()
	// First observation defines the idle ceiling.
	if got := s.Observe(10 * time.Millisecond); got != 1 {
		t.Fatalf("slack at idle = %v", got)
	}
	mid := s.Observe(5 * time.Millisecond)
	if mid <= 0.3 || mid >= 0.7 {
		t.Fatalf("slack at half idle = %v, want ~0.5", mid)
	}
	low := s.Observe(60 * time.Microsecond)
	if low > 0.01 {
		t.Fatalf("slack near floor = %v, want ~0", low)
	}
	if got := s.Observe(0); got != 0 {
		t.Fatalf("slack at zero poll = %v", got)
	}
	if s.MaxIdle() != 10*time.Millisecond {
		t.Fatalf("MaxIdle = %v", s.MaxIdle())
	}
}

func TestSlackEstimatorNoBaseline(t *testing.T) {
	s := NewSlackEstimator()
	if s.Slack(0) != 1 {
		t.Fatal("without an idle reference, slack defaults to 1")
	}
}
