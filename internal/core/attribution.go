package core

import (
	"reqlens/internal/kernel"
	"reqlens/internal/probes"
	"reqlens/internal/telemetry"
)

// Attribution is the attached sketch-based attribution pipeline: one
// unfiltered sys_enter program feeding count-min and HashPipe maps, so
// "who is hammering this node" is answered wholly from map space at
// O(sketch) memory regardless of how many processes exist. It
// complements Observer, which tracks one tgid exactly; Attribution
// tracks every tgid approximately.
type Attribution struct {
	probe *probes.AttributionProbe
	k     *kernel.Kernel
}

// AttachAttribution builds, verifies and attaches the attribution probe
// on k's tracer.
func AttachAttribution(k *kernel.Kernel, cfg probes.AttributionConfig) (*Attribution, error) {
	p, err := probes.NewAttributionProbe("attr", cfg)
	if err != nil {
		return nil, err
	}
	if err := p.Attach(k.Tracer()); err != nil {
		return nil, err
	}
	return &Attribution{probe: p, k: k}, nil
}

// MustAttachAttribution is AttachAttribution but panics on error.
func MustAttachAttribution(k *kernel.Kernel, cfg probes.AttributionConfig) *Attribution {
	a, err := AttachAttribution(k, cfg)
	if err != nil {
		panic(err)
	}
	return a
}

// Detach removes the probe.
func (a *Attribution) Detach() { a.probe.Detach() }

// Probe exposes the underlying probe (map inspection, diagnostics).
func (a *Attribution) Probe() *probes.AttributionProbe { return a.probe }

// Scrape clones the cumulative sketch state. Scrapes are counters, not
// windows: aggregators merge them across nodes and diff them across
// time, exactly like Prometheus counter series.
func (a *Attribution) Scrape() probes.AttrSketches { return a.probe.Sketches() }

// TopOffenders is a convenience read-out of the current top-K busiest
// tgids from a fresh scrape.
func (a *Attribution) TopOffenders(k int) []probes.Offender {
	return a.Scrape().TopOffenders(k)
}

// ExactCounts returns the oracle's ground truth (nil without Oracle).
func (a *Attribution) ExactCounts() map[uint64]uint64 { return a.probe.ExactCounts() }

// Bytes is the sketch-side map footprint.
func (a *Attribution) Bytes() int { return a.probe.Bytes() }

// Instrument records the probe's verification cost into r.
func (a *Attribution) Instrument(r *telemetry.Registry) {
	recordVerifierCost(r, a.probe.Program())
}
